// Package buffer models the AI Core's scratch-pad memories and global
// memory. Each buffer is a separate address space that the kernel manages
// explicitly — there is no hardware cache coherence; the programmer
// "needs to specify which data should be brought to each buffer"
// (paper §III-A).
package buffer

import (
	"fmt"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Align is the allocation alignment: vector operands address 32-byte blocks.
const Align = 32

// Config carries the buffer capacities of one AI Core. Zero values take the
// Ascend 910 defaults.
type Config struct {
	L1Size  int
	L0ASize int
	L0BSize int
	L0CSize int
	UBSize  int
	GMSize  int // initial global-memory reservation; grows on demand
}

// Ascend 910 AI Core capacities (DaVinci Hot Chips presentation).
const (
	DefaultL1Size  = 1 << 20 // 1 MiB
	DefaultL0ASize = 64 << 10
	DefaultL0BSize = 64 << 10
	DefaultL0CSize = 256 << 10
	DefaultUBSize  = 256 << 10
	defaultGMSize  = 1 << 20
)

// Normalized returns the config with every zero field replaced by its
// Ascend 910 default. Plan-cache keys (internal/ops) use the normalized
// form so that an explicit default and a zero value map to the same plan.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.L1Size, DefaultL1Size)
	def(&c.L0ASize, DefaultL0ASize)
	def(&c.L0BSize, DefaultL0BSize)
	def(&c.L0CSize, DefaultL0CSize)
	def(&c.UBSize, DefaultUBSize)
	def(&c.GMSize, defaultGMSize)
	return c
}

// Capacities returns the capacity in bytes of each address space implied
// by the config (defaults applied). Global memory reports 0: it grows on
// demand, so no static bound applies.
func (c Config) Capacities() [isa.NumBufs]int {
	c = c.withDefaults()
	var caps [isa.NumBufs]int
	caps[isa.L1] = c.L1Size
	caps[isa.L0A] = c.L0ASize
	caps[isa.L0B] = c.L0BSize
	caps[isa.L0C] = c.L0CSize
	caps[isa.UB] = c.UBSize
	return caps
}

// ErrNoSpace is wrapped by allocation failures.
var ErrNoSpace = fmt.Errorf("buffer: out of space")

// Space is one address space with a bump allocator.
type Space struct {
	ID       isa.BufID
	size     int
	data     []byte
	off      int
	growable bool // only global memory grows
}

// NewSpace creates a fixed-capacity scratch-pad space.
func NewSpace(id isa.BufID, size int) *Space {
	return &Space{ID: id, size: size, data: make([]byte, size)}
}

// Size returns the capacity in bytes (current capacity for global memory).
func (s *Space) Size() int { return s.size }

// Used returns the bytes currently allocated.
func (s *Space) Used() int { return s.off }

// Free returns the bytes still available.
func (s *Space) Free() int { return s.size - s.off }

// Data exposes the raw backing store.
func (s *Space) Data() []byte { return s.data }

// Alloc reserves n bytes, 32-byte aligned, and returns the address.
func (s *Space) Alloc(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("buffer: negative allocation %d in %v", n, s.ID)
	}
	addr := (s.off + Align - 1) / Align * Align
	if addr+n > s.size {
		if !s.growable {
			return 0, fmt.Errorf("%w: %v needs %d bytes, %d free of %d",
				ErrNoSpace, s.ID, n, s.size-addr, s.size)
		}
		newSize := s.size * 2
		for addr+n > newSize {
			newSize *= 2
		}
		grown := make([]byte, newSize)
		copy(grown, s.data)
		s.data, s.size = grown, newSize
	}
	s.off = addr + n
	return addr, nil
}

// MustAlloc is Alloc that panics on failure; kernels use it after sizing
// tiles against the capacity, so failure is a programming error.
func (s *Space) MustAlloc(n int) int {
	addr, err := s.Alloc(n)
	if err != nil {
		panic(err)
	}
	return addr
}

// Reset releases all allocations (data contents are left in place, like
// real scratch-pads between kernel invocations).
func (s *Space) Reset() { s.off = 0 }

// Set is the complete memory system of one AI Core. It implements the
// memory view the simulator executes against.
type Set struct {
	spaces [isa.NumBufs]*Space
	cfg    Config
}

// NewSet builds the memory system from a config.
func NewSet(cfg Config) *Set {
	cfg = cfg.withDefaults()
	s := &Set{cfg: cfg}
	s.spaces[isa.GM] = &Space{ID: isa.GM, size: cfg.GMSize, data: make([]byte, cfg.GMSize), growable: true}
	s.spaces[isa.L1] = NewSpace(isa.L1, cfg.L1Size)
	s.spaces[isa.L0A] = NewSpace(isa.L0A, cfg.L0ASize)
	s.spaces[isa.L0B] = NewSpace(isa.L0B, cfg.L0BSize)
	s.spaces[isa.L0C] = NewSpace(isa.L0C, cfg.L0CSize)
	s.spaces[isa.UB] = NewSpace(isa.UB, cfg.UBSize)
	return s
}

// Space returns the address space for id.
func (s *Set) Space(id isa.BufID) *Space { return s.spaces[id] }

// Config returns the (normalized) configuration the set was built from.
func (s *Set) Config() Config { return s.cfg }

// Capacities returns the capacity in bytes of each address space. Global
// memory reports 0: it grows on demand, so no static bound applies.
func (s *Set) Capacities() [isa.NumBufs]int {
	var caps [isa.NumBufs]int
	for id := isa.BufID(0); id < isa.NumBufs; id++ {
		if id != isa.GM {
			caps[id] = s.spaces[id].size
		}
	}
	return caps
}

// Mem returns the raw backing store for id.
func (s *Set) Mem(id isa.BufID) []byte { return s.spaces[id].data }

// ResetLocal releases all scratch-pad allocations, keeping global memory.
func (s *Set) ResetLocal() {
	for id := isa.BufID(0); id < isa.NumBufs; id++ {
		if id != isa.GM {
			s.spaces[id].Reset()
		}
	}
}

// PlaceTensor allocates room for t in space id and copies its data in,
// returning the base address.
func (s *Set) PlaceTensor(id isa.BufID, t *tensor.Tensor) (int, error) {
	addr, err := s.spaces[id].Alloc(t.Bytes())
	if err != nil {
		return 0, err
	}
	copy(s.spaces[id].data[addr:addr+t.Bytes()], t.Data)
	return addr, nil
}

// ReadTensor copies a tensor of the given shape out of space id at addr.
func (s *Set) ReadTensor(id isa.BufID, addr int, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	copy(t.Data, s.spaces[id].data[addr:addr+t.Bytes()])
	return t
}

// ZeroRange clears bytes [addr, addr+n) in space id.
func (s *Set) ZeroRange(id isa.BufID, addr, n int) {
	b := s.spaces[id].data[addr : addr+n]
	for i := range b {
		b[i] = 0
	}
}

// FillRange writes n Float16 copies of v starting at addr in space id.
func (s *Set) FillRange(id isa.BufID, addr, n int, v fp16.Float16) {
	fp16.Fill(s.spaces[id].data, addr, n, v)
}
