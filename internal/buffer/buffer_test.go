package buffer

import (
	"errors"
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

func TestDefaults(t *testing.T) {
	s := NewSet(Config{})
	if got := s.Space(isa.L1).Size(); got != DefaultL1Size {
		t.Errorf("L1 size %d", got)
	}
	if got := s.Space(isa.UB).Size(); got != DefaultUBSize {
		t.Errorf("UB size %d", got)
	}
	if got := s.Space(isa.L0A).Size(); got != DefaultL0ASize {
		t.Errorf("L0A size %d", got)
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	s := NewSpace(isa.UB, 128)
	a, err := s.Alloc(10)
	if err != nil || a != 0 {
		t.Fatalf("first alloc %d, %v", a, err)
	}
	b, err := s.Alloc(32)
	if err != nil || b != 32 {
		t.Fatalf("second alloc %d (want 32-aligned), %v", b, err)
	}
	if s.Used() != 64 || s.Free() != 64 {
		t.Errorf("used=%d free=%d", s.Used(), s.Free())
	}
	if _, err := s.Alloc(65); !errors.Is(err, ErrNoSpace) {
		t.Errorf("oversized alloc err = %v, want ErrNoSpace", err)
	}
	if _, err := s.Alloc(64); err != nil {
		t.Errorf("exact-fit alloc failed: %v", err)
	}
	s.Reset()
	if s.Used() != 0 {
		t.Error("Reset did not release")
	}
	if _, err := s.Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestMustAllocPanics(t *testing.T) {
	s := NewSpace(isa.UB, 32)
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc over capacity did not panic")
		}
	}()
	s.MustAlloc(64)
}

func TestGlobalMemoryGrows(t *testing.T) {
	s := NewSet(Config{GMSize: 1024})
	gm := s.Space(isa.GM)
	if _, err := gm.Alloc(4096); err != nil {
		t.Fatalf("GM grow failed: %v", err)
	}
	if gm.Size() < 4096 {
		t.Errorf("GM size %d after grow", gm.Size())
	}
	// Data written before growth must survive.
	s2 := NewSet(Config{GMSize: 64})
	a, _ := s2.Space(isa.GM).Alloc(32)
	s2.Mem(isa.GM)[a] = 0xAB
	if _, err := s2.Space(isa.GM).Alloc(1 << 12); err != nil {
		t.Fatal(err)
	}
	if s2.Mem(isa.GM)[a] != 0xAB {
		t.Error("growth lost data")
	}
}

func TestPlaceAndReadTensor(t *testing.T) {
	s := NewSet(Config{})
	x := tensor.FromFloat32s([]float32{1, 2, 3, 4}, 2, 2)
	addr, err := s.PlaceTensor(isa.GM, x)
	if err != nil {
		t.Fatal(err)
	}
	y := s.ReadTensor(isa.GM, addr, 2, 2)
	if tensor.MaxAbsDiff(x, y) != 0 {
		t.Error("round trip mismatch")
	}
}

func TestResetLocalKeepsGM(t *testing.T) {
	s := NewSet(Config{})
	gmAddr, _ := s.Space(isa.GM).Alloc(64)
	s.Space(isa.UB).MustAlloc(64)
	s.ResetLocal()
	if s.Space(isa.UB).Used() != 0 {
		t.Error("UB not reset")
	}
	if s.Space(isa.GM).Used() == 0 {
		t.Error("GM was reset")
	}
	_ = gmAddr
}

func TestZeroAndFillRange(t *testing.T) {
	s := NewSet(Config{})
	s.FillRange(isa.UB, 64, 4, fp16.One)
	if got := fp16.Load(s.Mem(isa.UB), 64+6); got != fp16.One {
		t.Errorf("FillRange wrote %#04x", got)
	}
	s.ZeroRange(isa.UB, 64, 8)
	if got := fp16.Load(s.Mem(isa.UB), 64); got != fp16.Zero {
		t.Errorf("ZeroRange left %#04x", got)
	}
}
