package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/isa"
	"davinci/internal/obs"
)

func TestAccountSyntheticTrace(t *testing.T) {
	// MTE2 copies [0,40); the vector op waits on it (RAW) and runs
	// [40,50); a second vector op issues back-to-back [50,60).
	tr := &aicore.Trace{Entries: []aicore.TraceEntry{
		{Idx: 0, Pipe: isa.PipeMTE2, Start: 0, End: 40, Text: "copy",
			Stall: aicore.Stall{Cause: aicore.StallNone, Producer: -1}},
		{Idx: 1, Pipe: isa.PipeVector, Start: 40, End: 50, Text: "vmax",
			Stall: aicore.Stall{Cause: aicore.StallRAW, Cycles: 40, Buf: isa.UB, Producer: 0}},
		{Idx: 2, Pipe: isa.PipeVector, Start: 50, End: 60, Text: "vmax",
			Stall: aicore.Stall{Cause: aicore.StallPipeBusy, Producer: -1}},
	}}
	a, err := obs.Account(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 60 {
		t.Errorf("makespan %d", a.Makespan)
	}
	mte2 := a.Pipes[isa.PipeMTE2]
	if mte2.Busy != 40 || mte2.Stall != 0 || mte2.Idle != 20 {
		t.Errorf("MTE2 account %+v", mte2)
	}
	vec := a.Pipes[isa.PipeVector]
	if vec.Busy != 20 || vec.Stall != 40 || vec.Idle != 0 || vec.Instrs != 2 {
		t.Errorf("VEC account %+v", vec)
	}
	if vec.ByCause[aicore.StallRAW] != 40 {
		t.Errorf("VEC RAW cycles %d", vec.ByCause[aicore.StallRAW])
	}
	if a.TotalBusy != 60 || a.TotalStall != 40 || a.ByCause[aicore.StallRAW] != 40 {
		t.Errorf("totals busy %d stall %d byCause %v", a.TotalBusy, a.TotalStall, a.ByCause)
	}

	var buf bytes.Buffer
	a.Format(&buf)
	out := buf.String()
	for _, want := range []string{"makespan 60", "VEC", "raw 40"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestAccountRejectsUncoveredGap(t *testing.T) {
	// The instruction issues 10 cycles after its pipe freed but claims
	// zero stall: the identity must flag the mis-attribution.
	tr := &aicore.Trace{Entries: []aicore.TraceEntry{
		{Idx: 0, Pipe: isa.PipeVector, Start: 10, End: 20, Text: "vmax",
			Stall: aicore.Stall{Cause: aicore.StallNone, Producer: -1}},
	}}
	if _, err := obs.Account(tr); err == nil || !strings.Contains(err.Error(), "issue gap") {
		t.Fatalf("uncovered gap not rejected: %v", err)
	}
}

func TestAccountRejectsOverclaimedStall(t *testing.T) {
	tr := &aicore.Trace{Entries: []aicore.TraceEntry{
		{Idx: 0, Pipe: isa.PipeVector, Start: 5, End: 20, Text: "vmax",
			Stall: aicore.Stall{Cause: aicore.StallRAW, Cycles: 9, Buf: isa.UB, Producer: -1}},
	}}
	if _, err := obs.Account(tr); err == nil {
		t.Fatal("overclaimed stall not rejected")
	}
}

func TestAccountEmptyTrace(t *testing.T) {
	a, err := obs.Account(&aicore.Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 0 || a.TotalBusy != 0 || a.TotalStall != 0 {
		t.Errorf("empty account %+v", a)
	}
}
