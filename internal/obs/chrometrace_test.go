package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/tensor"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smallKernelTrace schedules the small maxpool_fwd/im2col kernel (8x8,
// kernel 3, stride 2) on a traced core. Plan emission and the cost model
// are deterministic, so the trace — and its JSON export — is too.
func smallKernelTrace(t *testing.T) *aicore.Trace {
	t.Helper()
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	pl, err := ops.PlanMaxPoolForward("im2col", ops.Spec{}, p)
	if err != nil {
		t.Fatal(err)
	}
	core := aicore.New(buffer.Config{}, nil)
	core.Trace = &aicore.Trace{}
	in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
	for i := 0; i < in.Len(); i++ {
		// Deterministic fill; data values don't affect timing anyway.
		in.SetFlat(i, fp16.FromFloat64(float64(i%97)))
	}
	if _, _, err := pl.Run(core, in); err != nil {
		t.Fatal(err)
	}
	return core.Trace
}

// TestChromeTraceGolden pins the exported trace of one small kernel
// byte-for-byte. Regenerate with: go test ./internal/obs -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, smallKernelTrace(t)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "maxpool_im2col_8x8.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exported trace differs from golden %s (run with -update after intentional schedule changes)", golden)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, smallKernelTrace(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  *int   `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	counts := map[string]int{}
	stalls := 0
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
		if e.Pid == nil {
			t.Fatalf("event %q missing pid", e.Name)
		}
		if e.Ph == "X" {
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("slice %q has ts %d dur %d", e.Name, e.Ts, e.Dur)
			}
			if e.Cat == "stall" {
				stalls++
			}
		}
	}
	if counts["M"] == 0 || counts["X"] == 0 {
		t.Errorf("event phases %v: want metadata and slices", counts)
	}
	if stalls == 0 {
		t.Error("no stall slices in a kernel with cross-pipe dependencies")
	}
}

// TestChromeTraceFlagFlows checks that set/wait flag pairs export as
// paired flow events ("s" at the setter, "f" at the waiter).
func TestChromeTraceFlagFlows(t *testing.T) {
	src, dst := int(isa.PipeMTE2), int(isa.PipeVector)
	tr := &aicore.Trace{Entries: []aicore.TraceEntry{
		{Idx: 0, Pipe: isa.PipeMTE2, Start: 0, End: 40, Text: "copy",
			Stall: aicore.Stall{Cause: aicore.StallNone, Producer: -1}},
		{Idx: 1, Pipe: isa.PipeMTE2, Start: 40, End: 41, Text: "set_flag",
			Kind: aicore.KindSetFlag, Flag: [3]int{src, dst, 0},
			Stall: aicore.Stall{Cause: aicore.StallPipeBusy, Producer: -1}},
		{Idx: 2, Pipe: isa.PipeVector, Start: 41, End: 42, Text: "wait_flag",
			Kind: aicore.KindWaitFlag, Flag: [3]int{src, dst, 0},
			Stall: aicore.Stall{Cause: aicore.StallFlagWait, Cycles: 41, Producer: 1}},
		{Idx: 3, Pipe: isa.PipeVector, Start: 42, End: 50, Text: "vmax",
			Stall: aicore.Stall{Cause: aicore.StallPipeBusy, Producer: -1}},
	}}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID int    `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var starts, finishes []int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			starts = append(starts, e.ID)
		case "f":
			finishes = append(finishes, e.ID)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 || starts[0] != finishes[0] {
		t.Errorf("flow events: starts %v finishes %v, want one matched pair", starts, finishes)
	}
}
