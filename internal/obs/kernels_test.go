package obs_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/kernelcases"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// TestAccountingIdentityEveryKernelEveryLayer is the acceptance bar of
// this package: for every built-in kernel on every Table I layer, the
// attributed trace must satisfy, per pipe, busy + stalls + idle ==
// makespan exactly (Account errors otherwise); total attributed stalls
// must cover the gap between the simulated cycles and the static busy
// bound of internal/lint/perf; and the exported Chrome trace must parse
// as valid JSON with a non-empty traceEvents array.
func TestAccountingIdentityEveryKernelEveryLayer(t *testing.T) {
	layers := workloads.TableI
	if testing.Short() {
		layers = workloads.InceptionV3Fig7()
	}
	rng := rand.New(rand.NewSource(11))
	spec := ops.Spec{}
	checked := 0
	for _, layer := range layers {
		p := layer.Params()
		for _, kc := range kernelcases.All() {
			pl, err := kc.Plan(spec, p)
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					continue
				}
				t.Fatalf("%s %dx%dx%d: compile: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			core := aicore.New(buffer.Config{}, nil)
			core.Trace = &aicore.Trace{}
			_, st, err := pl.Run(core, kc.Inputs(rng, p)...)
			if err != nil {
				t.Fatalf("%s %dx%dx%d: run: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			acct, err := obs.Account(core.Trace)
			if err != nil {
				t.Fatalf("%s %dx%dx%d: accounting identity: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			if acct.Makespan != st.Cycles {
				t.Errorf("%s %dx%dx%d: accounted makespan %d != simulated %d",
					kc.Name, layer.H, layer.W, layer.C, acct.Makespan, st.Cycles)
			}
			if acct.TotalStall < st.Cycles-pl.Perf.BusyBound {
				t.Errorf("%s %dx%dx%d: attributed stalls %d do not cover simulated %d - busy bound %d",
					kc.Name, layer.H, layer.W, layer.C, acct.TotalStall, st.Cycles, pl.Perf.BusyBound)
			}
			var buf bytes.Buffer
			if err := obs.WriteChromeTrace(&buf, core.Trace); err != nil {
				t.Fatalf("%s %dx%dx%d: export: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("%s %dx%dx%d: trace is not valid JSON: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Errorf("%s %dx%dx%d: empty traceEvents", kc.Name, layer.H, layer.W, layer.C)
			}
			checked++
		}
	}
	t.Logf("accounting identity checked on %d kernel x layer programs", checked)
}
