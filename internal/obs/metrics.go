package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a dependency-free metrics registry: named, labeled counters,
// gauges and histograms backed by atomics. Registration takes a lock;
// updates are lock-free, so hot paths (per-tile replay across goroutines)
// grab their instrument once and Add/Observe under -race safely.
// Snapshots are deterministic: instruments sort by name, then labels.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// labelsOf pairs up a variadic key, value, key, value, ... list, sorted by
// key for a canonical identity.
func labelsOf(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key, value pairs)", kv))
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func keyOf(name string, ls []Label) string {
	if len(ls) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a value that can move both ways.
type Gauge struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	name   string
	labels []Label
	bounds []int64 // ascending finite upper bounds (value <= bound)
	counts []atomic.Int64
	over   atomic.Int64 // observations above the last bound
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.sum.Add(v)
	h.n.Add(1)
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(h.bounds) {
		h.over.Add(1)
		return
	}
	h.counts[lo].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the smallest bucket bound at or below which at least ceil(q*count)
// observations fall. Observations beyond the last finite bound saturate at
// that bound, so a p99 equal to the final bound means "at or beyond".
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	counts := make([]int64, len(h.bounds)+1)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	counts[len(h.bounds)] = h.over.Load()
	return quantile(q, h.bounds, counts, h.n.Load())
}

// P50, P90 and P99 are the conventional latency quantiles.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }
func (h *Histogram) P90() int64 { return h.Quantile(0.90) }
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// quantile computes the bucketed quantile over a consistent counts slice
// (len(bounds)+1 with overflow last). Shared by the live accessor and the
// snapshot so both report identical values for the same state.
func quantile(q float64, bounds, counts []int64, n int64) int64 {
	if n <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) || rank == 0 {
		rank++ // ceil, at least 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] // overflow saturates at the last bound
			}
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// DefaultCycleBounds are power-of-two histogram bounds wide enough for any
// per-tile cycle count the benchmarks produce.
func DefaultCycleBounds() []int64 {
	bounds := make([]int64, 28)
	for i := range bounds {
		bounds[i] = 1 << (i + 4) // 16 .. 2^31
	}
	return bounds
}

// DefaultNanoBounds are power-of-two bounds for host wall-clock
// nanosecond latencies: ~1µs up to ~137s.
func DefaultNanoBounds() []int64 {
	bounds := make([]int64, 28)
	for i := range bounds {
		bounds[i] = 1 << (i + 10) // 1024ns .. 2^37ns
	}
	return bounds
}

// DefaultAttemptBounds are unit bounds for small discrete counts such as
// tile retry attempts (1 = clean first try).
func DefaultAttemptBounds() []int64 {
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// Counter returns (registering on first use) the counter with the given
// name and key, value, ... labels.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	ls := labelsOf(kv)
	key := keyOf(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	r.counters[key] = c
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	ls := labelsOf(kv)
	key := keyOf(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	r.gauges[key] = g
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name and labels. bounds are ascending finite upper bounds; nil
// takes DefaultCycleBounds. The first registration fixes the bounds.
func (r *Registry) Histogram(name string, bounds []int64, kv ...string) *Histogram {
	ls := labelsOf(kv)
	key := keyOf(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultCycleBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", key, bounds))
		}
	}
	h := &Histogram{name: name, labels: ls, bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	r.hists[key] = h
	return h
}

// MetricValue is one counter or gauge in a snapshot.
type MetricValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts has one entry per
// finite bound plus a final overflow bucket. P50/P90/P99 are bucketed
// upper-bound quantile estimates (see Histogram.Quantile), zero when the
// histogram is empty.
type HistogramValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	Sum    int64             `json:"sum"`
	Bounds []int64           `json:"bounds"`
	Counts []int64           `json:"counts"`
	P50    int64             `json:"p50"`
	P90    int64             `json:"p90"`
	P99    int64             `json:"p99"`
}

// Quantile returns the bucketed upper-bound q-quantile of the snapshotted
// histogram, consistent with Histogram.Quantile on the live instrument.
func (hv *HistogramValue) Quantile(q float64) int64 {
	return quantile(q, hv.Bounds, hv.Counts, hv.Count)
}

// Snapshot is a point-in-time, JSON-serializable view of a registry.
// TakenUnixNanos is not set by Snapshot() — the instruments themselves
// stay deterministic — but artifact writers (davinci-bench, davinci-serve)
// stamp it before serializing so bench.TrendDir can order artifacts by
// when they were taken rather than by filesystem modtime, which CI
// artifact restores do not preserve.
type Snapshot struct {
	TakenUnixNanos int64            `json:"taken_unix_nanos,omitempty"`
	Counters       []MetricValue    `json:"counters"`
	Gauges         []MetricValue    `json:"gauges"`
	Histograms     []HistogramValue `json:"histograms"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every instrument. Concurrent updates may land between
// individual loads, but each value is itself a consistent atomic read.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make([]MetricValue, 0, len(r.counters)),
		Gauges:     make([]MetricValue, 0, len(r.gauges)),
		Histograms: make([]HistogramValue, 0, len(r.hists)),
	}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: c.name, Labels: labelMap(c.labels), Value: c.Load()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: g.name, Labels: labelMap(g.labels), Value: g.Load()})
	}
	for _, h := range r.hists {
		hv := HistogramValue{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.Count(), Sum: h.Sum(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.bounds)+1),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		hv.Counts[len(h.bounds)] = h.over.Load()
		hv.P50 = hv.Quantile(0.50)
		hv.P90 = hv.Quantile(0.90)
		hv.P99 = hv.Quantile(0.99)
		s.Histograms = append(s.Histograms, hv)
	}
	sortMetrics(s.Counters)
	sortMetrics(s.Gauges)
	sort.Slice(s.Histograms, func(i, j int) bool {
		return metricLess(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

func sortMetrics(ms []MetricValue) {
	sort.Slice(ms, func(i, j int) bool {
		return metricLess(ms[i].Name, ms[i].Labels, ms[j].Name, ms[j].Labels)
	})
}

func metricLess(an string, al map[string]string, bn string, bl map[string]string) bool {
	if an != bn {
		return an < bn
	}
	return flattenLabels(al) < flattenLabels(bl)
}

func flattenLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}

// CounterValue returns the value of the named counter in the snapshot,
// matching labels given as alternating key/value pairs (the same form
// Registry.Counter takes). The second result is false when no such
// counter was registered — which is distinct from a counter at zero.
func (s *Snapshot) CounterValue(name string, labels ...string) (int64, bool) {
	want := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		want[labels[i]] = labels[i+1]
	}
	for _, c := range s.Counters {
		if c.Name != name || len(c.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if c.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue returns the value of the named gauge in the snapshot,
// matching labels like CounterValue.
func (s *Snapshot) GaugeValue(name string, labels ...string) (int64, bool) {
	want := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		want[labels[i]] = labels[i+1]
	}
	for _, g := range s.Gauges {
		if g.Name == name && labelsMatch(g.Labels, want) {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramValue returns the named histogram in the snapshot, matching
// labels like CounterValue.
func (s *Snapshot) HistogramValue(name string, labels ...string) (*HistogramValue, bool) {
	want := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		want[labels[i]] = labels[i+1]
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		if h.Name == name && labelsMatch(h.Labels, want) {
			return h, true
		}
	}
	return nil, false
}

func labelsMatch(have, want map[string]string) bool {
	if len(have) != len(want) {
		return false
	}
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// WriteJSON writes the snapshot as indented JSON — the payload of
// davinci-bench -metrics and the CI BENCH_<rev>.json artifacts.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
