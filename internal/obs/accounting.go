package obs

import (
	"fmt"
	"io"

	"davinci/internal/aicore"
	"davinci/internal/isa"
)

// PipeAccount partitions one pipeline's share of the makespan.
type PipeAccount struct {
	// Instrs is the number of instructions scheduled on the pipe.
	Instrs int
	// Busy is the total execution time.
	Busy int64
	// Stall is the total attributed issue-gap time: cycles the pipe sat
	// with its next instruction blocked on another pipe's work.
	Stall int64
	// Idle is the trailing time after the pipe's last completion: cycles
	// with no instruction pending. Busy + Stall + Idle == Makespan.
	Idle int64
	// LastEnd is the pipe's last completion time (Busy + Stall).
	LastEnd int64
	// ByCause splits Stall by aicore.StallCause.
	ByCause [aicore.NumStallCauses]int64
}

// Accounting is the cycle-accounting view of one traced run: for every
// pipe, busy + attributed stalls + idle = makespan, exactly.
type Accounting struct {
	Makespan   int64
	Pipes      [isa.NumPipes]PipeAccount
	TotalBusy  int64
	TotalStall int64
	// ByCause sums each pipe's per-cause stalls.
	ByCause [aicore.NumStallCauses]int64
}

// Account folds an attributed trace into per-pipe cycle accounts and
// verifies the accounting identity: on every pipe, each issue gap must be
// covered by exactly the stall cycles the scheduler attributed, and
// busy + stall + trailing idle must equal the makespan. A violation means
// the scheduler mis-attributed a wait and is reported as an error — it is
// a simulator bug, never a property of the program.
func Account(tr *aicore.Trace) (*Accounting, error) {
	a := &Accounting{Makespan: tr.Makespan()}
	var prev [isa.NumPipes]int64
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.Pipe < 0 || e.Pipe >= isa.NumPipes {
			return nil, fmt.Errorf("obs: instr %d (%s): pipe %v out of range", e.Idx, e.Text, e.Pipe)
		}
		p := &a.Pipes[e.Pipe]
		if gap := e.Start - prev[e.Pipe]; gap != e.Stall.Cycles {
			return nil, fmt.Errorf("obs: instr %d (%s) on %v: issue gap is %d cycles but attributed stall is %d (%s)",
				e.Idx, e.Text, e.Pipe, gap, e.Stall.Cycles, e.Stall)
		}
		p.Instrs++
		p.Busy += e.End - e.Start
		p.Stall += e.Stall.Cycles
		p.ByCause[e.Stall.Cause] += e.Stall.Cycles
		prev[e.Pipe] = e.End
		p.LastEnd = e.End
	}
	for pi := range a.Pipes {
		p := &a.Pipes[pi]
		if p.Busy+p.Stall != p.LastEnd {
			return nil, fmt.Errorf("obs: pipe %v: busy %d + stall %d != last completion %d",
				isa.Pipe(pi), p.Busy, p.Stall, p.LastEnd)
		}
		p.Idle = a.Makespan - p.LastEnd
		if p.Idle < 0 {
			return nil, fmt.Errorf("obs: pipe %v: completion %d beyond makespan %d", isa.Pipe(pi), p.LastEnd, a.Makespan)
		}
		a.TotalBusy += p.Busy
		a.TotalStall += p.Stall
		for c, v := range p.ByCause {
			a.ByCause[c] += v
		}
	}
	return a, nil
}

// Format renders the accounting as an aligned per-pipe breakdown with the
// dominant stall causes, the view davinci-sim prints under -trace/-gantt.
func (a *Accounting) Format(w io.Writer) {
	fmt.Fprintf(w, "cycle accounting (makespan %d): busy + stalls + idle = makespan per pipe\n", a.Makespan)
	for pi := range a.Pipes {
		p := &a.Pipes[pi]
		if p.Instrs == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-6s %8d busy (%5.1f%%)  %8d stall (%5.1f%%)  %8d idle (%5.1f%%)",
			isa.Pipe(pi), p.Busy, pct(p.Busy, a.Makespan), p.Stall, pct(p.Stall, a.Makespan), p.Idle, pct(p.Idle, a.Makespan))
		sep := "  <- "
		for c := aicore.StallCause(0); c < aicore.NumStallCauses; c++ {
			if p.ByCause[c] > 0 {
				fmt.Fprintf(w, "%s%s %d", sep, c, p.ByCause[c])
				sep = ", "
			}
		}
		fmt.Fprintln(w)
	}
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}
