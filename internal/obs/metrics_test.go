package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryLabelsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "impl", "im2col", "experiment", "fig7a")
	b := r.Counter("reqs", "experiment", "fig7a", "impl", "im2col")
	if a != b {
		t.Fatal("label order created two instruments for one identity")
	}
	c := r.Counter("reqs", "experiment", "fig7a", "impl", "standard")
	if a == c {
		t.Fatal("different label values aliased")
	}
	a.Add(3)
	c.Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 2 {
		t.Fatalf("snapshot has %d counters, want 2", len(snap.Counters))
	}
	if snap.Counters[0].Value != 3 || snap.Counters[0].Labels["impl"] != "im2col" {
		t.Errorf("sorted first counter = %+v", snap.Counters[0])
	}
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("x", "key-without-value")
}

func TestGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Errorf("gauge = %d", g.Load())
	}
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 1000, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 6022 {
		t.Errorf("count %d sum %d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hv := snap.Histograms[0]
	// value <= bound buckets: {1,10} <= 10; {11} <= 100; {1000} <= 1000;
	// {5000} overflows.
	want := []int64{2, 1, 1, 1}
	if len(hv.Counts) != len(want) {
		t.Fatalf("bucket counts %v", hv.Counts)
	}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hv.Counts[i], w)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry()
		r.Counter("b", "x", "2").Add(2)
		r.Counter("b", "x", "1").Add(1)
		r.Counter("a").Add(9)
		r.Gauge("g", "k", "v").Set(4)
		r.Histogram("h", []int64{8}).Observe(3)
		return r.Snapshot()
	}
	var first bytes.Buffer
	if err := build().WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := build().WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	var decoded Snapshot
	if err := json.Unmarshal(first.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters[0].Name != "a" || decoded.Counters[1].Labels["x"] != "1" {
		t.Errorf("sort order: %+v", decoded.Counters)
	}
}

// TestRegistryConcurrent hammers registration and updates from many
// goroutines; run under -race this is the registry's thread-safety proof
// (the chip updates these from one goroutine per simulated core).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("cycles", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Counter("shared").Add(1) // re-registration path
				h.Observe(int64(i))
				r.Gauge("last").Set(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must be safe too
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared").Load(); got != workers*iters*2 {
		t.Errorf("shared counter = %d, want %d", got, workers*iters*2)
	}
	if got := r.Histogram("cycles", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}
