package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"davinci/internal/aicore"
	"davinci/internal/isa"
	"davinci/internal/trace"
)

// WriteChromeTrace exports an attributed trace as Chrome trace-event JSON,
// loadable by Perfetto (https://ui.perfetto.dev) and chrome://tracing:
//
//   - one thread ("track") per pipeline, named and sorted in pipe order;
//   - one complete slice per instruction (category "instr", "flag" or
//     "barrier"), with the instruction index and text;
//   - one "stall" slice per attributed issue gap, placed immediately
//     before the stalled instruction and carrying cause, blocking buffer
//     and producer index;
//   - a flow arrow from every set_flag to the wait_flag that consumed its
//     token, so cross-pipe synchronization reads as edges in the UI.
//
// One simulated cycle maps to one trace tick (microsecond); only ratios
// are meaningful, as with the cycle counts themselves.
func WriteChromeTrace(w io.Writer, tr *aicore.Trace) error {
	return WriteChromeTraceWithSpans(w, tr, nil)
}

// WriteChromeTraceWithSpans exports a merged Perfetto file with two
// processes: pid 0 carries the cycle-level pipe tracks of tr (when
// non-nil), exactly as WriteChromeTrace; pid 1 carries the host-side
// spans as wall-clock tracks. The two domains share one timeline only
// nominally — cycle tracks tick one "µs" per cycle from zero, host spans
// tick real microseconds normalized to the earliest span — so the file
// reads as two aligned-at-zero lanes of the same run, and span args carry
// cyc_start/cyc_end for spans that also exist on the cycle timeline.
// Span links (plan, retry_of, after) render as flow arrows.
func WriteChromeTraceWithSpans(w io.Writer, tr *aicore.Trace, spans []trace.Span) error {
	bw := bufio.NewWriter(w)
	ew := &eventWriter{w: bw}
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	if tr != nil {
		writeCycleEvents(ew, tr)
	}
	if len(spans) > 0 {
		writeSpanEvents(ew, spans)
	}
	bw.WriteString("\n]}\n")
	if ew.err != nil {
		return ew.err
	}
	return bw.Flush()
}

func writeCycleEvents(ew *eventWriter, tr *aicore.Trace) {
	ew.meta("process_name", -1, `{"name":"AI Core"}`)
	var used [isa.NumPipes]bool
	for _, e := range tr.Entries {
		used[e.Pipe] = true
	}
	for p := isa.Pipe(0); p < isa.NumPipes; p++ {
		if !used[p] {
			continue
		}
		ew.meta("thread_name", int(p), fmt.Sprintf(`{"name":%s}`, quote(p.String())))
		ew.meta("thread_sort_index", int(p), fmt.Sprintf(`{"sort_index":%d}`, int(p)))
	}

	// Pending set_flag tokens per (src, dst, event) channel, consumed in
	// FIFO order exactly like the schedulers consume them.
	type setter struct {
		idx  int
		pipe isa.Pipe
		end  int64
	}
	pending := map[[3]int][]setter{}
	flowID := 0
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.Stall.Cycles > 0 {
			args := fmt.Sprintf(`{"cause":%s,"producer":%d`, quote(e.Stall.Cause.String()), e.Stall.Producer)
			if e.Stall.Cause.IsHazard() {
				args += fmt.Sprintf(`,"buffer":%s`, quote(e.Stall.Buf.String()))
			}
			args += "}"
			ew.slice("stall: "+e.Stall.String(), "stall", int(e.Pipe), e.Start-e.Stall.Cycles, e.Stall.Cycles, args)
		}
		cat := "instr"
		switch e.Kind {
		case aicore.KindSetFlag, aicore.KindWaitFlag:
			cat = "flag"
		case aicore.KindBarrier:
			cat = "barrier"
		}
		ew.slice(e.Text, cat, int(e.Pipe), e.Start, e.End-e.Start, fmt.Sprintf(`{"idx":%d}`, e.Idx))

		switch e.Kind {
		case aicore.KindSetFlag:
			pending[e.Flag] = append(pending[e.Flag], setter{idx: e.Idx, pipe: e.Pipe, end: e.End})
		case aicore.KindWaitFlag:
			q := pending[e.Flag]
			if len(q) == 0 {
				break // implicit-sync traces may order waits before sets; skip the edge
			}
			s := q[0]
			pending[e.Flag] = q[1:]
			flowID++
			// Anchor the arrow inside the setter's slice (its last tick)
			// so Perfetto binds it to the right slices on both ends.
			ts := s.end - 1
			if ts < 0 {
				ts = 0
			}
			ew.event(fmt.Sprintf(`{"name":"flag","cat":"flag","ph":"s","id":%d,"pid":0,"tid":%d,"ts":%d}`, flowID, int(s.pipe), ts))
			ew.event(fmt.Sprintf(`{"name":"flag","cat":"flag","ph":"f","bp":"e","id":%d,"pid":0,"tid":%d,"ts":%d}`, flowID, int(e.Pipe), e.Start))
		}
	}
}

// writeSpanEvents lays host spans out on pid 1. Tracks are allocated per
// (tree depth, overlap lane): children sit on deeper rows than their
// parents, and concurrent siblings (tiles racing across cores) spill into
// extra lanes instead of overdrawing one row. Wall-clock nanoseconds are
// normalized to the earliest span and scaled to trace microseconds.
func writeSpanEvents(ew *eventWriter, spans []trace.Span) {
	ew.event(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"Host pipeline"}}`)
	ew.event(`{"name":"process_sort_index","ph":"M","pid":1,"args":{"sort_index":1}}`)

	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	depthOf := func(s *trace.Span) int {
		d := 0
		for p := s.Parent; p != 0; d++ {
			ps, ok := byID[p]
			if !ok || d > len(spans) {
				break
			}
			p = ps.Parent
		}
		return d
	}
	var t0 int64
	for i := range spans {
		if i == 0 || spans[i].StartNS < t0 {
			t0 = spans[i].StartNS
		}
	}
	// Lane allocation: within one depth, a span takes the first lane whose
	// previous occupant ended before it starts. Spans are visited in start
	// order (ties by ID, which is start order under contention).
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &spans[order[a]], &spans[order[b]]
		if sa.StartNS != sb.StartNS {
			return sa.StartNS < sb.StartNS
		}
		return sa.ID < sb.ID
	})
	laneEnds := map[int][]int64{} // depth -> end ns per lane
	rowOf := map[[2]int]int{}     // (depth, lane) -> tid
	nextRow := 0
	type placed struct {
		tid     int
		ts, dur float64
	}
	pos := make(map[trace.SpanID]placed, len(spans))
	for _, i := range order {
		s := &spans[i]
		d := depthOf(s)
		lane := -1
		for l, end := range laneEnds[d] {
			if end <= s.StartNS {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds[d])
			laneEnds[d] = append(laneEnds[d], 0)
		}
		laneEnds[d][lane] = s.EndNS
		key := [2]int{d, lane}
		tid, ok := rowOf[key]
		if !ok {
			tid = nextRow
			nextRow++
			rowOf[key] = tid
			ew.event(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				tid, quote(fmt.Sprintf("host d%d.%d", d, lane))))
			ew.event(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":%d}}`,
				tid, d*1000+lane))
		}
		ts := float64(s.StartNS-t0) / 1e3
		dur := float64(s.EndNS-s.StartNS) / 1e3
		if dur <= 0 {
			dur = 0.001
		}
		pos[s.ID] = placed{tid: tid, ts: ts, dur: dur}
		args := fmt.Sprintf(`{"span":%d`, s.ID)
		for _, a := range s.Attrs {
			args += fmt.Sprintf(`,%s:%s`, quote(a.Key), quote(a.Value))
		}
		if s.HasCycles {
			args += fmt.Sprintf(`,"cyc_start":%d,"cyc_end":%d`, s.CycStart, s.CycEnd)
		}
		args += "}"
		ew.event(fmt.Sprintf(`{"name":%s,"cat":"span","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":%s}`,
			quote(s.Name), pos[s.ID].tid, ts, dur, args))
	}
	// Causal links as flow arrows: from the target span (its last tick)
	// into the linking span's start.
	flow := 1 << 20 // keep ids clear of the cycle-track flag arrows
	for _, i := range order {
		s := &spans[i]
		for _, l := range s.Links {
			tp, ok := pos[l.Target]
			if !ok {
				continue
			}
			sp := pos[s.ID]
			flow++
			ew.event(fmt.Sprintf(`{"name":%s,"cat":"span","ph":"s","id":%d,"pid":1,"tid":%d,"ts":%.3f}`,
				quote(l.Kind), flow, tp.tid, tp.ts+tp.dur-0.001))
			ew.event(fmt.Sprintf(`{"name":%s,"cat":"span","ph":"f","bp":"e","id":%d,"pid":1,"tid":%d,"ts":%.3f}`,
				quote(l.Kind), flow, sp.tid, sp.ts))
		}
	}
}

// eventWriter emits one JSON object per line with comma management.
type eventWriter struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (ew *eventWriter) event(s string) {
	if ew.err != nil {
		return
	}
	if ew.wrote {
		if _, ew.err = ew.w.WriteString(",\n"); ew.err != nil {
			return
		}
	}
	ew.wrote = true
	_, ew.err = ew.w.WriteString(s)
}

// meta emits a metadata event; tid < 0 omits the thread id.
func (ew *eventWriter) meta(name string, tid int, args string) {
	t := ""
	if tid >= 0 {
		t = fmt.Sprintf(`"tid":%d,`, tid)
	}
	ew.event(fmt.Sprintf(`{"name":%s,"ph":"M","pid":0,%s"args":%s}`, quote(name), t, args))
}

// slice emits a complete ("X") event.
func (ew *eventWriter) slice(name, cat string, tid int, ts, dur int64, args string) {
	ew.event(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":%s}`,
		quote(name), quote(cat), tid, ts, dur, args))
}

// quote JSON-encodes a string. Instruction texts are short and ASCII, but
// going through encoding/json keeps the output valid for any input.
func quote(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(b)
}
