package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"davinci/internal/aicore"
	"davinci/internal/isa"
)

// WriteChromeTrace exports an attributed trace as Chrome trace-event JSON,
// loadable by Perfetto (https://ui.perfetto.dev) and chrome://tracing:
//
//   - one thread ("track") per pipeline, named and sorted in pipe order;
//   - one complete slice per instruction (category "instr", "flag" or
//     "barrier"), with the instruction index and text;
//   - one "stall" slice per attributed issue gap, placed immediately
//     before the stalled instruction and carrying cause, blocking buffer
//     and producer index;
//   - a flow arrow from every set_flag to the wait_flag that consumed its
//     token, so cross-pipe synchronization reads as edges in the UI.
//
// One simulated cycle maps to one trace tick (microsecond); only ratios
// are meaningful, as with the cycle counts themselves.
func WriteChromeTrace(w io.Writer, tr *aicore.Trace) error {
	bw := bufio.NewWriter(w)
	ew := &eventWriter{w: bw}
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	ew.meta("process_name", -1, `{"name":"AI Core"}`)
	var used [isa.NumPipes]bool
	for _, e := range tr.Entries {
		used[e.Pipe] = true
	}
	for p := isa.Pipe(0); p < isa.NumPipes; p++ {
		if !used[p] {
			continue
		}
		ew.meta("thread_name", int(p), fmt.Sprintf(`{"name":%s}`, quote(p.String())))
		ew.meta("thread_sort_index", int(p), fmt.Sprintf(`{"sort_index":%d}`, int(p)))
	}

	// Pending set_flag tokens per (src, dst, event) channel, consumed in
	// FIFO order exactly like the schedulers consume them.
	type setter struct {
		idx  int
		pipe isa.Pipe
		end  int64
	}
	pending := map[[3]int][]setter{}
	flowID := 0
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.Stall.Cycles > 0 {
			args := fmt.Sprintf(`{"cause":%s,"producer":%d`, quote(e.Stall.Cause.String()), e.Stall.Producer)
			if e.Stall.Cause.IsHazard() {
				args += fmt.Sprintf(`,"buffer":%s`, quote(e.Stall.Buf.String()))
			}
			args += "}"
			ew.slice("stall: "+e.Stall.String(), "stall", int(e.Pipe), e.Start-e.Stall.Cycles, e.Stall.Cycles, args)
		}
		cat := "instr"
		switch e.Kind {
		case aicore.KindSetFlag, aicore.KindWaitFlag:
			cat = "flag"
		case aicore.KindBarrier:
			cat = "barrier"
		}
		ew.slice(e.Text, cat, int(e.Pipe), e.Start, e.End-e.Start, fmt.Sprintf(`{"idx":%d}`, e.Idx))

		switch e.Kind {
		case aicore.KindSetFlag:
			pending[e.Flag] = append(pending[e.Flag], setter{idx: e.Idx, pipe: e.Pipe, end: e.End})
		case aicore.KindWaitFlag:
			q := pending[e.Flag]
			if len(q) == 0 {
				break // implicit-sync traces may order waits before sets; skip the edge
			}
			s := q[0]
			pending[e.Flag] = q[1:]
			flowID++
			// Anchor the arrow inside the setter's slice (its last tick)
			// so Perfetto binds it to the right slices on both ends.
			ts := s.end - 1
			if ts < 0 {
				ts = 0
			}
			ew.event(fmt.Sprintf(`{"name":"flag","cat":"flag","ph":"s","id":%d,"pid":0,"tid":%d,"ts":%d}`, flowID, int(s.pipe), ts))
			ew.event(fmt.Sprintf(`{"name":"flag","cat":"flag","ph":"f","bp":"e","id":%d,"pid":0,"tid":%d,"ts":%d}`, flowID, int(e.Pipe), e.Start))
		}
	}

	bw.WriteString("\n]}\n")
	if ew.err != nil {
		return ew.err
	}
	return bw.Flush()
}

// eventWriter emits one JSON object per line with comma management.
type eventWriter struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (ew *eventWriter) event(s string) {
	if ew.err != nil {
		return
	}
	if ew.wrote {
		if _, ew.err = ew.w.WriteString(",\n"); ew.err != nil {
			return
		}
	}
	ew.wrote = true
	_, ew.err = ew.w.WriteString(s)
}

// meta emits a metadata event; tid < 0 omits the thread id.
func (ew *eventWriter) meta(name string, tid int, args string) {
	t := ""
	if tid >= 0 {
		t = fmt.Sprintf(`"tid":%d,`, tid)
	}
	ew.event(fmt.Sprintf(`{"name":%s,"ph":"M","pid":0,%s"args":%s}`, quote(name), t, args))
}

// slice emits a complete ("X") event.
func (ew *eventWriter) slice(name, cat string, tid int, ts, dur int64, args string) {
	ew.event(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"args":%s}`,
		quote(name), quote(cat), tid, ts, dur, args))
}

// quote JSON-encodes a string. Instruction texts are short and ASCII, but
// going through encoding/json keeps the output valid for any input.
func quote(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(b)
}
