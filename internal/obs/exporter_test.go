package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"davinci/internal/trace"
)

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("chip_tile_cycles", []int64{10, 20, 40, 80})
	if h.P50() != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 10 observations: 5 in (<=10), 3 in (<=20), 1 in (<=40), 1 overflow.
	for i := 0; i < 5; i++ {
		h.Observe(7)
	}
	for i := 0; i < 3; i++ {
		h.Observe(15)
	}
	h.Observe(33)
	h.Observe(1000)
	if got := h.P50(); got != 10 {
		t.Fatalf("p50 = %d, want 10 (rank 5 falls in first bucket)", got)
	}
	if got := h.P90(); got != 40 {
		t.Fatalf("p90 = %d, want 40 (rank 9)", got)
	}
	if got := h.P99(); got != 80 {
		t.Fatalf("p99 = %d, want 80 (overflow saturates at last bound)", got)
	}
	if got := h.Quantile(1.0); got != 80 {
		t.Fatalf("p100 = %d, want 80", got)
	}
	// Snapshot must agree with the live accessors and serialize the fields.
	s := r.Snapshot()
	hv, ok := s.HistogramValue("chip_tile_cycles")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.P50 != 10 || hv.P90 != 40 || hv.P99 != 80 {
		t.Fatalf("snapshot quantiles = %d/%d/%d, want 10/40/80", hv.P50, hv.P90, hv.P99)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"p99": 80`) {
		t.Fatal("p99 not surfaced in snapshot JSON")
	}
}

func TestGaugeAndHistogramLookup(t *testing.T) {
	r := NewRegistry()
	r.Gauge("bench_cycles", "experiment", "fig7a", "input", "147x147x64").Set(42)
	s := r.Snapshot()
	if v, ok := s.GaugeValue("bench_cycles", "experiment", "fig7a", "input", "147x147x64"); !ok || v != 42 {
		t.Fatalf("GaugeValue = %d, %v", v, ok)
	}
	if _, ok := s.GaugeValue("bench_cycles"); ok {
		t.Fatal("label-less lookup must not match labeled gauge")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("plan_cache_hits").Add(3)
	r.Gauge("bench_cycles", "experiment", "fig7a").Set(99)
	h := r.Histogram("chip_tile_cycles", []int64{10, 20}, "impl", "im2col")
	h.Observe(5)
	h.Observe(15)
	h.Observe(100)

	var buf bytes.Buffer
	WritePrometheus(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"# TYPE plan_cache_hits counter",
		"plan_cache_hits 3",
		"# TYPE bench_cycles gauge",
		`bench_cycles{experiment="fig7a"} 99`,
		"# TYPE chip_tile_cycles histogram",
		`chip_tile_cycles_bucket{impl="im2col",le="10"} 1`,
		`chip_tile_cycles_bucket{impl="im2col",le="20"} 2`, // cumulative
		`chip_tile_cycles_bucket{impl="im2col",le="+Inf"} 3`,
		`chip_tile_cycles_sum{impl="im2col"} 120`,
		`chip_tile_cycles_count{impl="im2col"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExporterEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("plan_cache_hits").Inc()
	tr := trace.New()
	for i := 0; i < 4; i++ {
		tr.Root().StartSpan("tile_exec").End()
	}
	srv := httptest.NewServer((&Exporter{Registry: r, Tracer: tr}).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(body.String(), "plan_cache_hits 1") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/spans?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var spans []trace.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 2 || spans[1].ID != 4 {
		t.Fatalf("/debug/spans tail = %+v", spans)
	}

	// Nil registry and tracer must serve empty documents, not crash.
	srv2 := httptest.NewServer((&Exporter{}).Handler())
	defer srv2.Close()
	if resp, err := srv2.Client().Get(srv2.URL + "/debug/spans"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("nil exporter /debug/spans: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestChromeTraceWithSpansValidJSON(t *testing.T) {
	tr := trace.New()
	var tick int64
	tr.SetClock(func() int64 { tick += 1000; return tick })
	run := tr.Root().StartSpan("chip_run", "impl", "maxpool_fwd/im2col")
	lk := run.Ctx().StartSpan("plan_lookup")
	lk.End()
	t1 := run.Ctx().StartSpan("tile_exec", "core", "0")
	t1.Link("plan", lk.ID())
	t1.SetCycles(0, 500)
	t1.End()
	run.End()

	var buf bytes.Buffer
	if err := WriteChromeTraceWithSpans(&buf, nil, tr.Finished()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]int{}
	var flows int
	for _, e := range doc.TraceEvents {
		if ph, _ := e["ph"].(string); ph == "X" {
			names[e["name"].(string)]++
			if e["pid"].(float64) != 1 {
				t.Fatalf("host span on pid %v, want 1", e["pid"])
			}
		} else if ph == "s" || ph == "f" {
			flows++
		}
	}
	if names["chip_run"] != 1 || names["plan_lookup"] != 1 || names["tile_exec"] != 1 {
		t.Fatalf("span slices = %v", names)
	}
	if flows != 2 {
		t.Fatalf("flow arrow events = %d, want 2 (s+f for the plan link)", flows)
	}
	// Cycle window must ride along in args.
	found := false
	for _, e := range doc.TraceEvents {
		if e["name"] == "tile_exec" {
			args := e["args"].(map[string]any)
			if args["cyc_end"] == float64(500) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("tile_exec span lost its cycle window in the merge")
	}
}
