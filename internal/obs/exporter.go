package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"davinci/internal/trace"
)

// Exporter serves live telemetry over HTTP: the registry snapshot in
// Prometheus text exposition format at /metrics, and the recent span tail
// at /debug/spans. It is the substrate the ROADMAP's serving layer will
// report queue depth and latency through; today davinci-bench -serve and
// any test can mount it.
type Exporter struct {
	Registry *Registry     // nil: /metrics serves an empty snapshot
	Tracer   *trace.Tracer // nil: /debug/spans serves an empty list
}

// Handler returns the exporter's HTTP mux:
//
//	/metrics      Prometheus text exposition format (counters, gauges,
//	              histograms with cumulative le buckets)
//	/debug/spans  JSON array of the most recent spans (?n=COUNT, default 256)
//	/             plain-text index
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/debug/spans", e.serveSpans)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "davinci telemetry\n\n/metrics\n/debug/spans?n=256\n")
	})
	return mux
}

func (e *Exporter) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var s *Snapshot
	if e.Registry != nil {
		// Surface span-retention losses alongside the metrics: a capped
		// tracer silently evicting history would otherwise be invisible.
		if e.Tracer != nil {
			e.Registry.Gauge("trace_spans_dropped").Set(e.Tracer.Dropped())
		}
		s = e.Registry.Snapshot()
	} else {
		s = &Snapshot{}
	}
	WritePrometheus(w, s)
}

func (e *Exporter) serveSpans(w http.ResponseWriter, r *http.Request) {
	n := 256
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	spans := e.Tracer.Tail(n)
	if spans == nil {
		spans = []trace.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans)
}

// WritePrometheus renders a snapshot in Prometheus text exposition
// format. Counters and gauges map directly; histograms emit cumulative
// le-labeled buckets, a +Inf bucket, _sum and _count, per Prometheus
// convention. Output order follows the snapshot (sorted by name then
// labels), so it is deterministic.
func WritePrometheus(w io.Writer, s *Snapshot) {
	typed := map[string]bool{}
	emitType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range s.Counters {
		emitType(c.Name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels, "", 0), c.Value)
	}
	for _, g := range s.Gauges {
		emitType(g.Name, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", g.Name, promLabels(g.Labels, "", 0), g.Value)
	}
	for _, h := range s.Histograms {
		emitType(h.Name, "histogram")
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", float64(bound)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promInfLabels(h.Labels), h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", h.Name, promLabels(h.Labels, "", 0), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", 0), h.Count)
	}
}

// promLabels renders a label set, optionally with a trailing le bucket
// label, sorted key order (snapshot label maps are flattened sorted).
func promLabels(labels map[string]string, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", le, strconv.FormatFloat(bound, 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

func promInfLabels(labels map[string]string) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if !first {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"`)
	b.WriteByte('}')
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; label sets are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
