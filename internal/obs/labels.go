package obs

// CanonicalLabelKeys is the closed set of metric label keys this repo
// uses. Keeping the key vocabulary small and shared is what makes
// snapshots joinable across subsystems — the chip's fault counters, the
// plan cache's optimizer counters and the bench gauges all meet in one
// BENCH_<rev>.json — so new keys are added here deliberately, not minted
// ad hoc at call sites. cmd/davinci-vet enforces that every literal label
// key passed to Counter/Gauge/Histogram is in this set.
var CanonicalLabelKeys = map[string]bool{
	// cause attributes stall cycles to a scoreboard reason (aicore.StallCause).
	"cause": true,
	// experiment names the bench experiment a cell belongs to ("fig7a", "sweep", "optsweep").
	"experiment": true,
	// impl names the kernel implementation or variant measured ("im2col", "maxpool_bwd/standard/opt").
	"impl": true,
	// input identifies the workload shape ("147x147x64").
	"input": true,
	// kind classifies injected faults (faults.Kind).
	"kind": true,
	// pass names an optimizer pass ("coalesce-vec", "reschedule").
	"pass": true,
}
