package obs

// CanonicalLabelKeys is the closed set of metric label keys this repo
// uses. Keeping the key vocabulary small and shared is what makes
// snapshots joinable across subsystems — the chip's fault counters, the
// plan cache's optimizer counters and the bench gauges all meet in one
// BENCH_<rev>.json — so new keys are added here deliberately, not minted
// ad hoc at call sites. cmd/davinci-vet enforces that every literal label
// key passed to Counter/Gauge/Histogram is in this set.
var CanonicalLabelKeys = map[string]bool{
	// cause attributes stall cycles to a scoreboard reason (aicore.StallCause).
	"cause": true,
	// class names a serving priority class ("interactive", "standard", "batch").
	"class": true,
	// experiment names the bench experiment a cell belongs to ("fig7a", "sweep", "optsweep").
	"experiment": true,
	// impl names the kernel implementation or variant measured ("im2col", "maxpool_bwd/standard/opt").
	"impl": true,
	// input identifies the workload shape ("147x147x64").
	"input": true,
	// kind classifies injected faults (faults.Kind).
	"kind": true,
	// pass names an optimizer pass ("coalesce-vec", "reschedule").
	"pass": true,
	// reason classifies a serving rejection or degradation
	// ("queue_full", "shed", "evicted", "deadline", "invalid", "closed",
	// "exec", "overload").
	"reason": true,
}

// CanonicalMetricNames is the closed set of metric names this repo
// publishes. Like the label keys, names are minted here deliberately so
// every snapshot — bench artifacts, chip telemetry, the plan cache's
// optimizer and autoscheduler counters — speaks one vocabulary.
// cmd/davinci-vet enforces that every literal name passed to
// Counter/Gauge/Histogram is in this set.
var CanonicalMetricNames = map[string]bool{
	// Plan cache (internal/ops).
	"plan_cache_hits":     true,
	"plan_cache_misses":   true,
	"plan_cache_compiled": true,
	// Static optimizer outcomes, per compiled plan (internal/ops, from opt.Result).
	"opt_rewrites":     true,
	"opt_cycles_saved": true,
	"opt_rejected":     true,
	// Autoscheduler outcomes, per compiled plan (internal/ops, from ops.AutoSchedReport).
	"sched_candidates":   true,
	"sched_pruned":       true,
	"sched_accepted":     true,
	"sched_cycles_saved": true,
	// Kernels whose planner exposes no searchable schedule axes: the
	// autoscheduler ran no search and reported sched_candidates=0 with an
	// explicit reason (ops.AutoSchedReport.NoSearch).
	"sched_nosearch": true,
	// Acceptance-gate lint legs skipped because a symbolic certificate
	// already proves the candidate lint-clean (ops.AutoSchedReport.LintSkipped).
	"sched_lint_skipped": true,
	// O2 rescheduling passes skipped because the depgraph.Conflicts
	// region-pair scan exhausted its comparison budget.
	"depgraph_budget_exhausted": true,
	// Symbolic certification admissions (internal/lint/sym): a strict
	// compile whose concrete lint was skipped under a sealed certificate
	// (hits), a query for a kernel with no certificates at all (misses),
	// and a query whose shape or schedule fell outside every certified
	// domain, falling back to concrete lint (fallbacks).
	"cert_hits":      true,
	"cert_misses":    true,
	"cert_fallbacks": true,
	// Certificate-admission compile cost comparison (internal/bench
	// certsweep): wall nanos and heap allocations per strict plan compile,
	// labeled impl=strict|certified.
	"cert_compile_nanos":  true,
	"cert_compile_allocs": true,
	// Certificate registry summary (internal/bench certsweep): sealed
	// certificates and the shapes they admit.
	"cert_certificates":    true,
	"cert_admitted_shapes": true,
	// Certificate cross-check summary (internal/bench certsweep): probes
	// compared against concrete lint and the divergences found (any
	// divergence fails the build).
	"cert_crosscheck_programs":    true,
	"cert_crosscheck_divergences": true,
	// Multi-core execution (internal/chip).
	"chip_tiles":               true,
	"chip_tile_cycles":         true,
	"chip_tile_instrs":         true,
	"chip_bytes_in":            true,
	"chip_bytes_out":           true,
	"chip_tile_retries":        true,
	"chip_tile_requeues":       true,
	"chip_tiles_degraded":      true,
	"chip_watchdog_trips":      true,
	"chip_cores_failed":        true,
	"chip_tile_panics":         true,
	"chip_retry_backoff_cycles": true,
	// Per-tile latency distributions (internal/chip): host wall nanoseconds
	// per executed tile attempt, and attempts needed per finished tile (1 =
	// clean first try; the resilient executor pushes the tail right).
	"chip_tile_wall_nanos": true,
	"chip_tile_attempts":   true,
	// Fault injection (internal/faults).
	"faults_injected": true,
	// Benchmark measurements (internal/bench).
	"bench_cycles":         true,
	"bench_stall_cycles":   true,
	"sweep_stall_cycles":   true,
	"sweep_program_cycles": true,
	// Span-retention evictions (internal/trace.Tracer.Dropped), published
	// by the live exporter and davinci-serve so a capped tracer's losses
	// are visible.
	"trace_spans_dropped": true,
	// Serving-fleet request accounting (internal/serve). The conservation
	// invariant ties them together: submitted == completed + degraded +
	// rejected + cancelled once the fleet drains.
	"serve_submitted": true,
	"serve_admitted":  true,
	"serve_completed": true,
	"serve_degraded":  true,
	"serve_rejected":  true,
	"serve_cancelled": true,
	// Serving-fleet dispatch behavior (internal/serve): batches launched,
	// their size distribution, intake-queue occupancy and wait, end-to-end
	// request latency, and circuit-breaker activity.
	"serve_batches":          true,
	"serve_batch_size":       true,
	"serve_queue_depth":      true,
	"serve_queue_wait_nanos": true,
	"serve_latency_nanos":    true,
	"serve_breaker_trips":    true,
	"serve_breaker_probes":   true,
	// Load-generator summary cells (internal/serve.RunLoad via the bench
	// serveload experiment and cmd/davinci-serve). The deterministic smoke
	// cell publishes goodput/shed/lost for the trend gate; the open-loop
	// overload cells publish the offered-vs-outcome profile and latency
	// quantiles.
	"serve_goodput":            true,
	"serve_shed_requests":      true,
	"serve_lost_requests":      true,
	"serve_offered_requests":   true,
	"serve_completed_requests": true,
	"serve_degraded_requests":  true,
	"serve_rejected_requests":  true,
	"serve_cancelled_requests": true,
	"serve_p50_nanos":          true,
	"serve_p99_nanos":          true,
}

// CanonicalSpanNames is the closed set of host-side span names
// (internal/trace) this repo emits. The taxonomy covers the request path
// top to bottom; cmd/davinci-vet enforces that every literal name passed
// to StartSpan is in this set, the same way metric names are enforced.
var CanonicalSpanNames = map[string]bool{
	// One bench experiment (internal/bench, cmd/davinci-bench): parent of
	// every chip_run it performs.
	"bench_experiment": true,
	// One public chip entry call (internal/chip): kernel dispatch across
	// cores, parent of the plan lookup and every tile span.
	"chip_run": true,
	// Plan-cache consultation (internal/ops.PlanCache.Get). Attr outcome =
	// hit|miss; on miss, parents the plan_compile span. Tile spans link
	// "plan" here, covering both the hit and miss cases uniformly.
	"plan_lookup": true,
	// One plan compile (lowering + lint + opt + perf), cache-miss only.
	"plan_compile": true,
	// Certificate-registry consultation on a strict compile
	// (internal/ops/cert.go). Attr outcome = certified|lint.
	"cert_admission": true,
	// Static-optimizer pipeline over a sealed program (internal/opt),
	// reconstructed from the wall-clock windows opt.Result records; one
	// opt_pass child per applied rewrite pass.
	"opt_pipeline": true,
	"opt_pass":     true,
	// Autoschedule search (internal/sched.Search); one sched_candidate
	// child per frontier candidate confirmed on the cycle-accurate model.
	"sched_search":    true,
	"sched_candidate": true,
	// One tile attempt on a core (internal/chip). Attrs core/n/c1/outcome
	// (+attempt under the resilient executor); links "plan" to its
	// plan_lookup span and "retry_of" to the failed attempt it replaces;
	// carries the simulated-cycle window as its second time domain.
	"tile_exec": true,
	// Golden-model fallback after a tile exhausts its retry budget; links
	// "after" to the final failed tile_exec span.
	"tile_degrade": true,
	// One serving request end to end (internal/serve): submit to terminal
	// outcome. Attrs impl/class/outcome; links "batch" to the serve_batch
	// span that carried it.
	"serve_request": true,
	// Admission decision for one request: plan fast-path lookup, deadline
	// budget check, shed controller, queue bound. Attr outcome =
	// admitted|queue_full|shed|deadline|invalid|closed.
	"serve_admit": true,
	// One coalesced same-shape batch dispatched to a fleet chip; parent of
	// the chip_run it performs. Attrs chip/impl/size/outcome.
	"serve_batch": true,
	// One load-shedding eviction: a queued lower-priority request dropped
	// to make room for a newly admitted higher-priority one.
	"serve_shed": true,
}
