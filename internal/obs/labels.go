package obs

// CanonicalLabelKeys is the closed set of metric label keys this repo
// uses. Keeping the key vocabulary small and shared is what makes
// snapshots joinable across subsystems — the chip's fault counters, the
// plan cache's optimizer counters and the bench gauges all meet in one
// BENCH_<rev>.json — so new keys are added here deliberately, not minted
// ad hoc at call sites. cmd/davinci-vet enforces that every literal label
// key passed to Counter/Gauge/Histogram is in this set.
var CanonicalLabelKeys = map[string]bool{
	// cause attributes stall cycles to a scoreboard reason (aicore.StallCause).
	"cause": true,
	// experiment names the bench experiment a cell belongs to ("fig7a", "sweep", "optsweep").
	"experiment": true,
	// impl names the kernel implementation or variant measured ("im2col", "maxpool_bwd/standard/opt").
	"impl": true,
	// input identifies the workload shape ("147x147x64").
	"input": true,
	// kind classifies injected faults (faults.Kind).
	"kind": true,
	// pass names an optimizer pass ("coalesce-vec", "reschedule").
	"pass": true,
}

// CanonicalMetricNames is the closed set of metric names this repo
// publishes. Like the label keys, names are minted here deliberately so
// every snapshot — bench artifacts, chip telemetry, the plan cache's
// optimizer and autoscheduler counters — speaks one vocabulary.
// cmd/davinci-vet enforces that every literal name passed to
// Counter/Gauge/Histogram is in this set.
var CanonicalMetricNames = map[string]bool{
	// Plan cache (internal/ops).
	"plan_cache_hits":     true,
	"plan_cache_misses":   true,
	"plan_cache_compiled": true,
	// Static optimizer outcomes, per compiled plan (internal/ops, from opt.Result).
	"opt_rewrites":     true,
	"opt_cycles_saved": true,
	"opt_rejected":     true,
	// Autoscheduler outcomes, per compiled plan (internal/ops, from ops.AutoSchedReport).
	"sched_candidates":   true,
	"sched_pruned":       true,
	"sched_accepted":     true,
	"sched_cycles_saved": true,
	// Multi-core execution (internal/chip).
	"chip_tiles":               true,
	"chip_tile_cycles":         true,
	"chip_tile_instrs":         true,
	"chip_bytes_in":            true,
	"chip_bytes_out":           true,
	"chip_tile_retries":        true,
	"chip_tile_requeues":       true,
	"chip_tiles_degraded":      true,
	"chip_watchdog_trips":      true,
	"chip_cores_failed":        true,
	"chip_tile_panics":         true,
	"chip_retry_backoff_cycles": true,
	// Fault injection (internal/faults).
	"faults_injected": true,
	// Benchmark measurements (internal/bench).
	"bench_cycles":         true,
	"bench_stall_cycles":   true,
	"sweep_stall_cycles":   true,
	"sweep_program_cycles": true,
}
