// Package obs is the telemetry layer of the simulator: it turns the raw
// schedules and counters the other packages produce into machine-readable
// performance data, the way the paper's evaluation reads per-unit hardware
// cycle counters on the Ascend 910 (§VI).
//
// Three building blocks:
//
//   - Account consumes an attributed aicore.Trace and proves the per-pipe
//     cycle-accounting identity busy + stalls + idle = makespan, breaking
//     the stalls down by cause (pipe-busy, RAW/WAR/WAW hazard, flag wait,
//     barrier join). This is what closes the gap between the static bounds
//     of internal/lint/perf (busy <= simulated <= critpath) and the
//     simulated cycle count: the difference is exactly attributed stall
//     plus idle time.
//
//   - WriteChromeTrace exports the attributed timeline as Chrome
//     trace-event JSON viewable in Perfetto (https://ui.perfetto.dev): one
//     track per pipe, stall slices filling every issue gap, and set_flag ->
//     wait_flag pairs as flow arrows.
//
//   - Registry is a dependency-free metrics registry (atomic counters,
//     gauges and histograms with labeled, deterministic JSON snapshots)
//     that unifies the previously ad-hoc counters of ops.PlanCache,
//     internal/chip and internal/bench, and is safe under -race concurrent
//     tile replay.
package obs
