package ops

import (
	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// planMaxPoolFwdArgmaxIm2col compiles the Fig. 7b accelerated
// implementation: Im2col-based forward Maxpool that additionally saves the
// argmax mask for training. The mask is produced by comparing each patch
// with its maximum — one full-mask vcmp per (kh, kw) slice — and stored in
// the Im2Col output shape, which keeps overlapping patches separated
// (§V-A).
func planMaxPoolFwdArgmaxIm2col(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_fwd_argmax_im2col"
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	b := newPlanner(name, spec, p)
	pl, err := planIm2col(b, p, name, 0, sp)
	if err != nil {
		return nil, err
	}
	core := b.core
	kk := p.Kh * p.Kw
	padded := p.PaddedPatches()
	maskGM, err := core.Mem.Space(isa.GM).Alloc(kk * padded * Block)
	if err != nil {
		return nil, err
	}

	prog := cce.New("maxpool_fwd_argmax_im2col")
	pl.emitInputLoad(prog, p)

	for f0, bi := 0, 0; f0 < pl.fracs; f0, bi = f0+pl.band, bi+1 {
		fb := min(pl.band, pl.fracs-f0)
		colUB, outUB := pl.colUB[bi%pl.buffers], pl.outUB[bi%pl.buffers]
		bandPatches := fb * isa.FractalPatches
		valid := min(pl.patches, (f0+fb)*isa.FractalPatches) - f0*isa.FractalPatches

		src, rowBase, rows := pl.emitBandInput(prog, p, bi, f0, fb)
		prog.EmitIm2ColRange(src, isa.UB, colUB, p, 1, 0, f0*isa.FractalPatches, fb, rowBase, rows)
		prog.EmitDup(isa.UB, outUB, bandPatches*tensor.C0, fp16.NegativeInfinity)
		emitColReduce(prog, sp, isa.VMax, colUB, outUB, kk, fb)

		// Mask: compare each (kh, kw) slice against the broadcast maximum,
		// overwriting the im2col data in place (it is no longer needed).
		reps := fb * 2
		for s := 0; s < kk; s++ {
			slice := isa.Contig(isa.UB, colUB+s*fb*isa.FractalBytes)
			emitVecChunked(prog, sp, isa.VCmpEq, slice, slice, isa.Contig(isa.UB, outUB), 0, isa.FullMask(), reps)
			if tail := bandPatches - valid; tail > 0 {
				// The fractal tail compared 0 == 0; the saved mask keeps
				// tail rows zero (they carry no patch).
				prog.EmitDup(isa.UB, colUB+s*fb*isa.FractalBytes+valid*Block, tail*tensor.C0, fp16.Zero)
			}
		}
		// Store output band and mask band (one strided DMA: Kh*Kw bursts).
		prog.EmitCopy(isa.UB, outUB, isa.GM, pl.outGM+f0*isa.FractalPatches*Block, valid*Block)
		prog.Emit(&isa.CopyInstr{
			SrcBuf: isa.UB, SrcAddr: colUB,
			DstBuf: isa.GM, DstAddr: maskGM + f0*isa.FractalPatches*Block,
			NBurst: kk, BurstBytes: bandPatches * Block,
			SrcGap: 0, DstGap: (padded - bandPatches) * Block,
		})
	}
	b.output(pl.outGM, 1, 1, pl.oh, pl.ow, tensor.C0)
	b.output(maskGM, 1, 1, p.Kh, p.Kw, padded, tensor.C0)
	plan, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	plan.bind = bindTile(name, p)
	plan.Sched = ScheduleParams{
		Mode: sp.Mode, Band: pl.band, Buffers: pl.buffers, RepeatChunk: resolvedRepeatChunk(sp),
	}
	return plan, nil
}

// MaxPoolFwdArgmaxIm2col is the Fig. 7b accelerated implementation as a
// one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForwardArgmax (or a PlanCache)
// and replay the plan per tile; this wrapper compiles through SharedPlans
// and runs in one call.
func MaxPoolFwdArgmaxIm2col(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForwardArgmax(trace.Ctx{}, "im2col", SpecFor(core), p)
	if err != nil {
		return nil, nil, nil, err
	}
	return runArgmax(pl, core, in)
}

// runArgmax replays a (out, mask) plan on core.
func runArgmax(pl *Plan, core *aicore.Core, in *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, *aicore.Stats, error) {
	outs, st, err := pl.Run(core, in)
	if err != nil {
		return nil, nil, nil, err
	}
	return outs[0], outs[1], st, nil
}

// planMaxPoolFwdArgmaxStandard compiles the baseline of Fig. 7b: the
// standard forward lowering followed by per-patch 16-lane comparisons to
// build the argmax mask, which is stored in the same Im2Col shape as the
// accelerated version ("saving this mask is independent of the use of
// Im2Col instructions", §V-A) but costs one vcmp per (oh, ow, kh).
func planMaxPoolFwdArgmaxStandard(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_fwd_argmax_standard"
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.RepeatChunk, "repeat_chunk"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	b := newPlanner(name, spec, p)
	core := b.core
	pp := foldPadding(p)
	oh, ow := pp.OutDims()
	inRowB := pp.Iw * Block
	outRowB := ow * Block
	kk := pp.Kh * pp.Kw
	padded := p.PaddedPatches()

	gm := core.Mem.Space(isa.GM)
	inGM, err := b.input(pp.Ih * inRowB)
	if err != nil {
		return nil, err
	}
	outGM, err := gm.Alloc(oh * outRowB)
	if err != nil {
		return nil, err
	}
	maskGM, err := gm.Alloc(kk * padded * Block)
	if err != nil {
		return nil, err
	}

	saturated := pp.Sw == 1
	switch sp.Saturate {
	case SatAuto:
	case SatFull:
		if pp.Sw != 1 {
			return nil, badSchedule(name, "saturate=full needs consecutive patches (Sw == 1), have Sw=%d", pp.Sw)
		}
	case SatNarrow:
		saturated = false
	default:
		return nil, badSchedule(name, "saturate=%d: unknown mask-width choice", sp.Saturate)
	}

	inRows := func(b int) int { return (b-1)*pp.Sh + pp.Kh }
	band, buffers, err := resolveBand(name, pp, ubAvail(core), oh, sp, func(b, n int) int {
		return n * (inRows(b)*inRowB + b*outRowB + kk*b*outRowB)
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	var inUB, outUB, maskUB [2]int
	for i := 0; i < buffers; i++ {
		inUB[i] = ub.MustAlloc(inRows(band) * inRowB)
		outUB[i] = ub.MustAlloc(band * outRowB)
		maskUB[i] = ub.MustAlloc(kk * band * outRowB)
	}

	prog := cce.New("maxpool_fwd_argmax_standard")
	for oh0, bi := 0, 0; oh0 < oh; oh0, bi = oh0+band, bi+1 {
		b := min(band, oh-oh0)
		iUB, oUB, mUB := inUB[bi%buffers], outUB[bi%buffers], maskUB[bi%buffers]
		bandPatches := b * ow
		prog.EmitCopy(isa.GM, inGM+oh0*pp.Sh*inRowB, isa.UB, iUB, inRows(b)*inRowB)
		prog.EmitDup(isa.UB, oUB, bandPatches*tensor.C0, fp16.NegativeInfinity)
		if saturated {
			emitReduceRowsSaturated(prog, isa.VMax, pp, iUB, oUB, b, ow)
		} else {
			emitReduceStrided(prog, isa.VMax, pp, iUB, oUB, b, ow)
		}
		// Mask: one 16-lane vcmp per (oh, ow, kh), repeating across kw
		// (the mask slices are bandPatches apart, so the destination
		// advances by bandPatches blocks per repeat).
		for i := 0; i < b; i++ {
			for owi := 0; owi < ow; owi++ {
				pt := i*ow + owi
				outBlk := isa.Operand{Buf: isa.UB, Addr: oUB + pt*Block, BlkStride: 1, RepStride: 0}
				for kh := 0; kh < pp.Kh; kh++ {
					dst := isa.Operand{
						Buf:       isa.UB,
						Addr:      mUB + ((kh*pp.Kw)*bandPatches+pt)*Block,
						BlkStride: 1,
						RepStride: bandPatches,
					}
					src := isa.Operand{
						Buf:       isa.UB,
						Addr:      iUB + ((i*pp.Sh+kh)*pp.Iw+owi*pp.Sw)*Block,
						BlkStride: 1,
						RepStride: 1,
					}
					prog.EmitVec(isa.VCmpEq, dst, src, outBlk, 0, isa.MaskFirstN(tensor.C0), pp.Kw)
				}
			}
		}
		prog.EmitCopy(isa.UB, oUB, isa.GM, outGM+oh0*outRowB, b*outRowB)
		prog.Emit(&isa.CopyInstr{
			SrcBuf: isa.UB, SrcAddr: mUB,
			DstBuf: isa.GM, DstAddr: maskGM + oh0*ow*Block,
			NBurst: kk, BurstBytes: bandPatches * Block,
			SrcGap: 0, DstGap: (padded - bandPatches) * Block,
		})
	}
	b.output(outGM, 1, 1, oh, ow, tensor.C0)
	b.output(maskGM, 1, 1, p.Kh, p.Kw, padded, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = bindPaddedTile(name, p)
	pl.Sched = ScheduleParams{
		Mode: sp.Mode, Band: band, Buffers: buffers, Saturate: resolvedSaturate(saturated),
	}
	return pl, nil
}

// MaxPoolFwdArgmaxStandard is the baseline of Fig. 7b as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForwardArgmax (or a PlanCache)
// and replay the plan per tile; this wrapper compiles through SharedPlans
// and runs in one call.
func MaxPoolFwdArgmaxStandard(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForwardArgmax(trace.Ctx{}, "standard", SpecFor(core), p)
	if err != nil {
		return nil, nil, nil, err
	}
	return runArgmax(pl, core, in)
}
