//go:build !race

package ops

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
