// Plan/bind/execute: every kernel in this package is split into a
// shape-dependent compile step and a data-dependent execute step.
//
// Compilation (the plan* constructors) runs the kernel's scheduling logic —
// band sizing, buffer allocation, CCE emission — against a scratch core
// built from a Spec, and produces a Plan: an immutable, validated
// cce.Program plus the global-memory layout it was emitted against. The
// program depends only on (kernel, ConvParams, buffer capacities), never on
// tensor values, so one Plan can be replayed for every tile of a layer and
// shared by all simulated cores. Execution (Plan.Run) is the thin
// data-only step: bind the inputs (padding, weight packing), write their
// bytes at the planned addresses, replay the cached program, read the
// planned outputs back.
//
// A PlanCache keys Plans by (kernel, ConvParams, aux shape ints, Spec) so a
// whole-layer run on internal/chip compiles each variant exactly once;
// hit/miss/compile counters surface in chip.Stats and cmd/davinci-bench.
package ops

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
	"davinci/internal/obs"
	"davinci/internal/opt"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// Spec is the compile-time environment of a plan: the per-core buffer
// capacities the schedule is sized against, and whether the emitted program
// must pass the static verifier (internal/lint) before it is sealed.
// Specs are comparable and form part of the plan-cache key.
type Spec struct {
	// Buffers holds the core's scratch-pad capacities, normalized so zero
	// values and explicit Ascend 910 defaults key identically.
	Buffers buffer.Config
	// Strict lints the program at compile time (amortizing what
	// aicore.Core.Strict previously paid on every run).
	Strict bool
	// Opt selects the static optimizer level applied when the plan is
	// sealed (internal/opt). The optimized program must pass the
	// translation-validation gate — lint-clean, bit-identical global
	// memory, no cycle regression — or the plan keeps the baseline; either
	// way the outcome is recorded in Plan.Opt. Part of the cache key, so
	// optimized and baseline plans of one shape coexist.
	Opt opt.Level
	// AutoSchedule routes plan compilation through the registered
	// schedule search (internal/sched): the searcher enumerates the
	// kernel's ScheduleParams space, ranks candidates with the static
	// critical-path bound, confirms the frontier with the cycle oracle,
	// and returns the searched schedule only if it beats the hand-tuned
	// default and passes the validation gate. The outcome is recorded in
	// Plan.Auto. Part of the cache key, so searched and default plans of
	// one shape coexist.
	AutoSchedule bool
}

// SpecFor derives the Spec matching an existing core, so the legacy
// one-shot kernel entry points compile plans equivalent to what they would
// have emitted against that core.
func SpecFor(core *aicore.Core) Spec {
	return Spec{Buffers: core.Mem.Config(), Strict: core.Strict}
}

func (s Spec) normalized() Spec {
	s.Buffers = s.Buffers.Normalized()
	return s
}

// gmSlot is one global-memory input placement the binder fills at run time.
type gmSlot struct {
	addr, bytes int
}

// gmRead is one global-memory output region read back after replay.
type gmRead struct {
	addr  int
	shape []int
}

// bindFunc validates raw kernel inputs and produces the bound tensors whose
// bytes land in the plan's GM slots (identity, zero-padding, weight
// packing, ...). It must be pure: plans are shared across goroutines.
type bindFunc func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error)

// finishFunc post-processes the tensors read from the plan's output
// regions (e.g. unpacking a fractal weight grid). It must be pure.
type finishFunc func(outs []*tensor.Tensor) []*tensor.Tensor

// timingKey identifies one timing context a plan has been scheduled under.
// Programs are shape-deterministic, so (cost model, serialize) fully
// determine the schedule and the cycle counts can be memoized.
type timingKey struct {
	cost      isa.CostModel
	serialize bool
}

// Plan is a compiled kernel: the emitted, validated (and, under a strict
// Spec, lint-clean) CCE program together with the buffer-layout metadata
// needed to execute it on data. Plans are immutable after compilation and
// safe for concurrent Run on distinct cores.
type Plan struct {
	// Name is the kernel identity ("maxpool_fwd_im2col", ...).
	Name string
	// Params are the layer parameters the plan was compiled for.
	Params isa.ConvParams
	// Prog is the cached instruction stream. Treat as read-only.
	Prog *cce.Program
	// Perf is the static performance analysis of Prog under the default
	// cost model, computed once at compile time: occupancy lower bound,
	// critical-path upper bound, utilization metrics and perf diagnostics.
	// Under an optimizing Spec it describes the optimized program.
	Perf *perf.Report
	// Opt is the optimizer's report when the Spec requested a level above
	// opt.LevelNone (what each pass rewrote, cycles saved, or why the
	// result was rejected and the baseline kept); nil otherwise.
	Opt *opt.Result
	// Sched is the resolved schedule the lowering executed: every knob
	// canonicalized to a concrete value, so recompiling the kernel with
	// Sched reproduces this plan exactly.
	Sched ScheduleParams
	// Auto is the autoscheduler's report when the Spec requested
	// AutoSchedule (candidates considered/pruned/confirmed, the cycles
	// saved or why the searched schedule was rejected); nil otherwise.
	Auto *AutoSchedReport
	// Certified reports that a symbolic certificate (internal/lint/sym)
	// admitted this compile: the Spec was Strict, but the concrete lint
	// pass was skipped because a sealed certificate proves every in-domain
	// shape of this (kernel, schedule) lowering lint-clean.
	Certified bool

	slots  []gmSlot
	outs   []gmRead
	gmTop  int // total GM footprint of the planned layout
	bind   bindFunc
	finish finishFunc

	// timings memoizes the deterministic schedule per timing context, so
	// replays after the first skip the scoreboard entirely.
	timings sync.Map // timingKey -> *aicore.Stats

	// flat lazily caches the flattened functional trace of Prog, used by
	// memoized replays in place of instruction-by-instruction execution.
	flatOnce sync.Once
	flat     *aicore.FlatProgram
}

// Outputs returns the number of tensors Run produces.
func (pl *Plan) Outputs() int { return len(pl.outs) }

// Run executes the plan on one core: bind inputs, write them into the
// planned global-memory layout, replay the cached program, and read the
// planned outputs. The core's scratch-pads and global memory are reset to
// the plan's layout, exactly as if the kernel had been freshly compiled on
// a pristine core — which keeps outputs and cycle counts bit-identical to
// the compile-and-run path.
func (pl *Plan) Run(core *aicore.Core, inputs ...*tensor.Tensor) ([]*tensor.Tensor, *aicore.Stats, error) {
	bound := inputs
	if pl.bind != nil {
		var err error
		if bound, err = pl.bind(inputs); err != nil {
			return nil, nil, err
		}
	}
	if len(bound) != len(pl.slots) {
		return nil, nil, fmt.Errorf("ops: %s: plan wants %d inputs, got %d", pl.Name, len(pl.slots), len(bound))
	}
	core.Mem.ResetLocal()
	gm := core.Mem.Space(isa.GM)
	gm.Reset()
	if _, err := gm.Alloc(pl.gmTop); err != nil {
		return nil, nil, err
	}
	// Replays see the same pristine global memory a fresh core would: the
	// planned footprint starts zeroed (backward kernels accumulate into
	// it), then the bound inputs land at their planned addresses.
	data := gm.Data()
	clear(data[:pl.gmTop])
	for i, s := range pl.slots {
		if bound[i].Bytes() != s.bytes {
			return nil, nil, fmt.Errorf("ops: %s: input %d is %d bytes, plan expects %d",
				pl.Name, i, bound[i].Bytes(), s.bytes)
		}
		copy(data[s.addr:s.addr+s.bytes], bound[i].Data)
	}

	st, err := pl.replay(core)
	if err != nil {
		return nil, nil, err
	}
	outs := make([]*tensor.Tensor, len(pl.outs))
	for i, o := range pl.outs {
		outs[i] = core.Mem.ReadTensor(isa.GM, o.addr, o.shape...)
	}
	if pl.finish != nil {
		outs = pl.finish(outs)
	}
	return outs, st, nil
}

// replay executes the cached program, memoizing the deterministic schedule
// per (cost model, serialize) context: the first replay runs the full
// timing scoreboard, later ones only replay a flattened functional trace
// of the program (see aicore.Flatten) whose data effects are bit-identical
// but whose host cost is a fraction of interpreting every instruction.
// Tracing cores always schedule (the trace needs real start/end times);
// the trace is reset first so each Run yields exactly one timeline instead
// of entries accumulating without bound across replays.
func (pl *Plan) replay(core *aicore.Core) (*aicore.Stats, error) {
	if core.ReplayWith != nil {
		// A replay hook (fault injection) substitutes its own execution of
		// the cached program; its timing is not the plan's deterministic
		// schedule, so nothing is memoized.
		return core.ReplayWith(pl.Prog)
	}
	key := timingKey{cost: *core.Cost, serialize: core.Serialize}
	if core.Trace != nil {
		core.Trace.Reset()
	}
	if core.Trace == nil && core.OnInstr == nil {
		// The flattened fast path bypasses per-instruction hooks, so an
		// armed OnInstr (fault injection) forces interpretation.
		if v, ok := pl.timings.Load(key); ok {
			pl.flatOnce.Do(func() { pl.flat = aicore.Flatten(pl.Prog) })
			if err := core.ExecFlat(pl.flat); err != nil {
				return nil, err
			}
			st := *v.(*aicore.Stats)
			return &st, nil
		}
	}
	st, err := core.Replay(pl.Prog)
	if err != nil {
		return nil, err
	}
	if core.OnInstr == nil {
		memo := *st
		pl.timings.Store(key, &memo)
	}
	return st, nil
}

// planner accumulates a plan during compilation. Its scratch core provides
// the same allocation bookkeeping the kernels previously did against the
// caller's core — but with no data placed, only layout.
type planner struct {
	core *aicore.Core
	pl   *Plan
}

func newPlanner(name string, spec Spec, p isa.ConvParams) *planner {
	return &planner{
		core: aicore.New(spec.Buffers, nil),
		pl:   &Plan{Name: name, Params: p},
	}
}

// input reserves a global-memory slot of n bytes for the next bound input
// and returns its address.
func (b *planner) input(n int) (int, error) {
	addr, err := b.core.Mem.Space(isa.GM).Alloc(n)
	if err != nil {
		return 0, err
	}
	b.pl.slots = append(b.pl.slots, gmSlot{addr: addr, bytes: n})
	return addr, nil
}

// output registers the global-memory region at addr as a result tensor of
// the given shape.
func (b *planner) output(addr int, shape ...int) {
	b.pl.outs = append(b.pl.outs, gmRead{addr: addr, shape: shape})
}

// seal validates the emitted program (and lints it under a strict spec),
// applies the spec's optimizer level, records the plan's global-memory
// footprint, and returns the finished immutable plan. Optimization
// happens here — after validation, before the perf analysis — so every
// downstream consumer (replay, perf reports, traces) sees one program.
func (b *planner) seal(prog *cce.Program, spec Spec) (*Plan, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if spec.Strict {
		diags := lint.CheckWith(lint.Options{Caps: spec.Buffers.Capacities(), Mode: lint.SyncImplicit}, prog)
		if errs := lint.Errors(diags); len(errs) > 0 {
			return nil, fmt.Errorf("ops: %s: strict lint: %d error(s), first: %s", prog.Name, len(errs), errs[0])
		}
	}
	if spec.Opt > opt.LevelNone {
		b.pl.Opt = opt.Optimize(prog, opt.Options{Level: spec.Opt, Buffers: spec.Buffers})
		prog = b.pl.Opt.Prog
	}
	b.pl.Prog = prog
	b.pl.Perf = perf.Analyze(prog, perf.Options{Caps: spec.Buffers.Capacities()})
	b.pl.gmTop = b.core.Mem.Space(isa.GM).Used()
	return b.pl, nil
}

// PlanKey identifies one compiled plan: kernel name, layer parameters, any
// extra shape integers (convolution channel counts), and the compile Spec.
type PlanKey struct {
	Kernel string
	Params isa.ConvParams
	Aux    [2]int
	Spec   Spec
}

// CacheStats is a snapshot of plan-cache counters.
type CacheStats struct {
	// Hits counts lookups served by an already-compiled plan.
	Hits int64
	// Misses counts lookups that triggered a compilation.
	Misses int64
	// Compiled counts plans successfully compiled and retained.
	Compiled int64
}

func (s CacheStats) String() string {
	return fmt.Sprintf("plans: %d compiled, %d hits, %d misses", s.Compiled, s.Hits, s.Misses)
}

// Sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses, Compiled: s.Compiled - o.Compiled}
}

// PlanCache is a concurrency-safe, shape-keyed cache of compiled plans.
// Concurrent lookups of the same key compile once; the losers block until
// the winner's plan (or compile error) is available. Its counters live in
// an obs.Registry (the unified metrics layer), so a cache embedded in a
// larger system — a chip, a benchmark run — reports through the same
// snapshot as the rest of that system's telemetry.
type PlanCache struct {
	entries  sync.Map // PlanKey -> *cacheEntry
	metrics  *obs.Registry
	hits     *obs.Counter
	misses   *obs.Counter
	compiled *obs.Counter
}

type cacheEntry struct {
	once sync.Once
	plan *Plan
	err  error
	// done publishes plan/err to readers that do not go through once.Do
	// (PlanCache.Plans ranges concurrently with in-flight compiles).
	done atomic.Bool
}

// NewPlanCache creates an empty cache with a private metrics registry.
func NewPlanCache() *PlanCache { return NewPlanCacheOn(obs.NewRegistry()) }

// NewPlanCacheOn creates an empty cache whose counters register in r as
// plan_cache_hits / plan_cache_misses / plan_cache_compiled.
func NewPlanCacheOn(r *obs.Registry) *PlanCache {
	return &PlanCache{
		metrics:  r,
		hits:     r.Counter("plan_cache_hits"),
		misses:   r.Counter("plan_cache_misses"),
		compiled: r.Counter("plan_cache_compiled"),
	}
}

// Metrics returns the registry the cache's counters live in.
func (c *PlanCache) Metrics() *obs.Registry { return c.metrics }

// SharedPlans is the process-wide default cache used by the legacy
// one-shot kernel entry points (MaxPoolFwdIm2col, ...), so even callers
// that never see a Plan amortize compilation across repeated shapes.
var SharedPlans = NewPlanCache()

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Compiled: c.compiled.Load()}
}

// Plans returns every successfully compiled plan in the cache, sorted by
// kernel name and layer parameters for deterministic reporting
// (chip.Stats and cmd/davinci-bench surface their perf reports).
func (c *PlanCache) Plans() []*Plan {
	var plans []*Plan
	c.entries.Range(func(_, v any) bool {
		e := v.(*cacheEntry)
		if e.done.Load() && e.err == nil {
			plans = append(plans, e.plan)
		}
		return true
	})
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].Name != plans[j].Name {
			return plans[i].Name < plans[j].Name
		}
		return fmt.Sprint(plans[i].Params) < fmt.Sprint(plans[j].Params)
	})
	return plans
}

// Get returns the plan for key, compiling it with compile on first use.
// Compile errors are cached too: shape-dependent failures (tile too large
// for the UB) are as deterministic as the programs themselves.
//
// tc is the caller's tracing context — conventionally a plan_lookup span.
// Get annotates it with outcome=hit|miss and, when this call actually
// compiles, wraps the compile in a plan_compile child span whose context
// is handed to the compile closure (so certificate admission, optimizer
// and schedule-search spans nest under the compile that triggered them).
// The zero trace.Ctx disables all of it at no cost.
func (c *PlanCache) Get(tc trace.Ctx, key PlanKey, compile func(trace.Ctx) (*Plan, error)) (*Plan, error) {
	key.Spec = key.Spec.normalized()
	e := &cacheEntry{}
	if actual, loaded := c.entries.LoadOrStore(key, e); loaded {
		e = actual.(*cacheEntry)
		c.hits.Inc()
		tc.SetAttr("outcome", "hit")
	} else {
		c.misses.Inc()
		tc.SetAttr("outcome", "miss")
	}
	e.once.Do(func() {
		cs := tc.StartSpan("plan_compile", "impl", key.Kernel)
		e.plan, e.err = compile(cs.Ctx())
		if e.err != nil {
			cs.SetAttr("outcome", "error")
		} else {
			cs.SetAttr("outcome", "ok")
			c.compiled.Inc()
			if r := e.plan.Opt; r != nil {
				for _, rw := range r.Rewrites {
					c.metrics.Counter("opt_rewrites", "pass", rw.Pass).Add(int64(rw.Applied))
				}
				if saved := r.Saved(); saved > 0 {
					c.metrics.Counter("opt_cycles_saved").Add(saved)
				}
				if r.Rejected != "" {
					c.metrics.Counter("opt_rejected").Inc()
				}
			}
			if r := e.plan.Opt; r != nil && r.SkippedReschedule != nil {
				c.metrics.Counter("depgraph_budget_exhausted").Inc()
			}
			if a := e.plan.Auto; a != nil {
				c.metrics.Counter("sched_candidates").Add(int64(a.Considered))
				c.metrics.Counter("sched_pruned").Add(int64(a.Pruned))
				if a.NoSearch {
					c.metrics.Counter("sched_nosearch").Inc()
				}
				if a.Accepted {
					c.metrics.Counter("sched_accepted").Inc()
				}
				if saved := a.Saved(); saved > 0 {
					c.metrics.Counter("sched_cycles_saved").Add(saved)
				}
				if skipped := a.LintSkipped; skipped > 0 {
					c.metrics.Counter("sched_lint_skipped").Add(int64(skipped))
				}
			}
			emitOptSpans(cs.Ctx(), e.plan)
		}
		cs.End()
		e.done.Store(true)
	})
	return e.plan, e.err
}

// emitOptSpans replays the wall-clock windows the optimizer recorded in a
// finished plan's report as opt_pipeline / opt_pass spans under the
// compile span. The optimizer itself stays trace-free (it records plain
// timestamps); the spans are reconstructed here, at the one place every
// cached compile already flows through.
func emitOptSpans(tc trace.Ctx, pl *Plan) {
	r := pl.Opt
	if !tc.Enabled() || r == nil || r.StartNanos == 0 {
		return
	}
	op := tc.StartSpan("opt_pipeline", "impl", pl.Name)
	op.SetAttr("level", r.Level.String())
	if r.Rejected != "" {
		op.SetAttr("outcome", "rejected")
	} else {
		op.SetAttr("outcome", "ok")
	}
	for _, rw := range r.Rewrites {
		ps := op.Ctx().StartSpan("opt_pass", "pass", rw.Pass)
		ps.SetAttr("applied", strconv.Itoa(rw.Applied))
		ps.SetWall(rw.StartNanos, rw.EndNanos)
		ps.End()
	}
	op.SetWall(r.StartNanos, r.EndNanos)
	op.End()
}

// plannerFunc is a schedule-parameterized lowering: it compiles (spec, p)
// under the given ScheduleParams, whose zero value reproduces the
// hand-tuned plan bit-identically.
type plannerFunc func(Spec, isa.ConvParams, ScheduleParams) (*Plan, error)

// kernelFamilies is the unified dispatch table of every searchable kernel
// family and its lowering modes. The lowering mode is itself a schedule
// axis: every variant of a family shares one observable contract (same
// inputs, same outputs), so the autoscheduler may swap it.
// avgpool_cube.go registers the Cube-unit variant in init, mirroring the
// legacy registries.
var kernelFamilies = map[string]map[string]plannerFunc{
	"maxpool_fwd": {
		"standard":  planMaxPoolFwdStandard,
		"im2col":    planMaxPoolFwdIm2col,
		"expansion": planMaxPoolFwdExpansion,
		"xysplit":   planMaxPoolFwdXYSplit,
	},
	"maxpool_fwd_argmax": {
		"standard": planMaxPoolFwdArgmaxStandard,
		"im2col":   planMaxPoolFwdArgmaxIm2col,
	},
	"maxpool_bwd": {
		"standard": planMaxPoolBwdStandard,
		"col2im":   planMaxPoolBwdCol2im,
	},
	"avgpool_fwd": {
		"standard": planAvgPoolFwdStandard,
		"im2col":   planAvgPoolFwdIm2col,
	},
	"avgpool_bwd": {
		"standard": planAvgPoolBwdStandard,
		"col2im":   planAvgPoolBwdCol2im,
	},
	// avgForwardPlanners compatibility: cube registered in init.
}

// legacy table alias kept for the avgpool_cube init registration.
var avgForwardPlanners = kernelFamilies["avgpool_fwd"]

// KernelFamilies returns the searchable kernel family names, sorted.
func KernelFamilies() []string {
	names := make([]string, 0, len(kernelFamilies))
	for f := range kernelFamilies {
		names = append(names, f)
	}
	sort.Strings(names)
	return names
}

// KernelVariants returns the lowering modes of a family, sorted; nil for
// an unknown family.
func KernelVariants(family string) []string {
	table, ok := kernelFamilies[family]
	if !ok {
		return nil
	}
	variants := make([]string, 0, len(table))
	for v := range table {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	return variants
}

func planVariant(tc trace.Ctx, family, kind, variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	fn, ok := kernelFamilies[family][variant]
	if !ok {
		return nil, fmt.Errorf("ops: unknown %s variant %q", kind, variant)
	}
	if spec.AutoSchedule {
		return autoPlan(tc, family+"/"+variant, spec, p)
	}
	return compileCertified(tc, family+"/"+variant, fn, spec, p, ScheduleParams{Mode: variant})
}

// CompileKernel compiles kernel ("family/variant", e.g.
// "maxpool_fwd/im2col") under an explicit schedule. A non-empty sp.Mode
// overrides the variant — the lowering mode is a schedule axis. The
// search never recurses: AutoSchedule is forced off.
func CompileKernel(kernel string, spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	family, variant, ok := strings.Cut(kernel, "/")
	if !ok {
		return nil, fmt.Errorf("ops: kernel %q: want \"family/variant\"", kernel)
	}
	table, tok := kernelFamilies[family]
	if !tok {
		return nil, fmt.Errorf("ops: unknown kernel family %q (have %v)", family, KernelFamilies())
	}
	if sp.Mode != "" {
		variant = sp.Mode
	}
	fn, fok := table[variant]
	if !fok {
		return nil, fmt.Errorf("ops: unknown %s variant %q (have %v)", family, variant, KernelVariants(family))
	}
	spec.AutoSchedule = false
	sp.Mode = variant
	return compileCertified(trace.Ctx{}, family+"/"+variant, fn, spec, p, sp)
}

// PlanMaxPoolForward compiles a forward Maxpool variant ("standard",
// "im2col", "expansion", "xysplit"). Run takes (in) and returns (out).
func PlanMaxPoolForward(variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return planVariant(trace.Ctx{}, "maxpool_fwd", "forward", variant, spec, p)
}

// PlanMaxPoolForwardArgmax compiles a Fig. 7b variant ("standard",
// "im2col"). Run takes (in) and returns (out, mask).
func PlanMaxPoolForwardArgmax(variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return planVariant(trace.Ctx{}, "maxpool_fwd_argmax", "argmax", variant, spec, p)
}

// PlanMaxPoolBackward compiles a Fig. 7c variant ("standard", "col2im").
// Run takes (mask, grad) and returns (dx).
func PlanMaxPoolBackward(variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return planVariant(trace.Ctx{}, "maxpool_bwd", "backward", variant, spec, p)
}

// PlanAvgPoolForward compiles an Avgpool forward variant ("standard",
// "im2col", "cube"). Run takes (in) and returns (out).
func PlanAvgPoolForward(variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return planVariant(trace.Ctx{}, "avgpool_fwd", "avgpool", variant, spec, p)
}

// Cached plan constructors: each compiles at most once per (key, spec) and
// then serves the shared immutable plan. tc is the caller's tracing
// context (see Get); pass trace.Ctx{} when not tracing.

// MaxPoolForward is the cached PlanMaxPoolForward.
func (c *PlanCache) MaxPoolForward(tc trace.Ctx, variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "maxpool_fwd_" + variant, Params: p, Spec: spec}, func(ct trace.Ctx) (*Plan, error) {
		return planVariant(ct, "maxpool_fwd", "forward", variant, spec, p)
	})
}

// MaxPoolForwardArgmax is the cached PlanMaxPoolForwardArgmax.
func (c *PlanCache) MaxPoolForwardArgmax(tc trace.Ctx, variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "maxpool_fwd_argmax_" + variant, Params: p, Spec: spec}, func(ct trace.Ctx) (*Plan, error) {
		return planVariant(ct, "maxpool_fwd_argmax", "argmax", variant, spec, p)
	})
}

// MaxPoolBackward is the cached PlanMaxPoolBackward.
func (c *PlanCache) MaxPoolBackward(tc trace.Ctx, variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "maxpool_bwd_" + variant, Params: p, Spec: spec}, func(ct trace.Ctx) (*Plan, error) {
		return planVariant(ct, "maxpool_bwd", "backward", variant, spec, p)
	})
}

// AvgPoolForward is the cached PlanAvgPoolForward.
func (c *PlanCache) AvgPoolForward(tc trace.Ctx, variant string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "avgpool_fwd_" + variant, Params: p, Spec: spec}, func(ct trace.Ctx) (*Plan, error) {
		return planVariant(ct, "avgpool_fwd", "avgpool", variant, spec, p)
	})
}

// AvgPoolBackward is the cached PlanAvgPoolBackward.
func (c *PlanCache) AvgPoolBackward(tc trace.Ctx, spec Spec, p isa.ConvParams, useCol2im bool) (*Plan, error) {
	kernel := "avgpool_bwd_standard"
	if useCol2im {
		kernel = "avgpool_bwd_col2im"
	}
	return c.Get(tc, PlanKey{Kernel: kernel, Params: p, Spec: spec}, func(trace.Ctx) (*Plan, error) {
		return PlanAvgPoolBackward(spec, p, useCol2im)
	})
}

// Conv2D is the cached PlanConv2D for co x c logical channels.
func (c *PlanCache) Conv2D(tc trace.Ctx, spec Spec, p isa.ConvParams, co, channels int) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "conv2d_im2col_cube", Params: p, Aux: [2]int{co, channels}, Spec: spec}, func(trace.Ctx) (*Plan, error) {
		return PlanConv2D(spec, p, co, channels)
	})
}

// Conv2DBackwardData is the cached PlanConv2DBackwardData.
func (c *PlanCache) Conv2DBackwardData(tc trace.Ctx, spec Spec, p isa.ConvParams, co, channels int) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "conv2d_bwd_data", Params: p, Aux: [2]int{co, channels}, Spec: spec}, func(trace.Ctx) (*Plan, error) {
		return PlanConv2DBackwardData(spec, p, co, channels)
	})
}

// Conv2DBackwardWeights is the cached PlanConv2DBackwardWeights.
func (c *PlanCache) Conv2DBackwardWeights(tc trace.Ctx, spec Spec, p isa.ConvParams, co, channels int) (*Plan, error) {
	return c.Get(tc, PlanKey{Kernel: "conv2d_bwd_weights", Params: p, Aux: [2]int{co, channels}, Spec: spec}, func(trace.Ctx) (*Plan, error) {
		return PlanConv2DBackwardWeights(spec, p, co, channels)
	})
}
