package ops

import (
	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// planMaxPoolFwdStandard compiles the standard TVM Maxpool lowering
// (Listing 1, §V-A): the input tile is DMA'd to the Unified Buffer and
// reduced with vmax directly on the strided NC1HWC0 layout.
//
// For general strides the lowering sets only 16 of 128 mask lanes (the C0
// dimension) and uses repetition only across the patch width Kw, issuing
// vmax Oh*Ow*Kh times. When Sw == 1, consecutive patches are consecutive
// in memory, so the lowering saturates the mask over (Ow, C0) and repeats
// across the row — the effect the paper observes in Fig. 8a.
func planMaxPoolFwdStandard(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planDirectForward("maxpool_fwd_standard", spec, p, isa.VMax, fp16.NegativeInfinity, false, sp)
}

// planAvgPoolFwdStandard compiles the standard Avgpool forward: identical
// access pattern to Maxpool but reducing with vadd instead of vmax, plus
// the element-wise division epilogue (§V-C).
func planAvgPoolFwdStandard(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planDirectForward("avgpool_fwd_standard", spec, p, isa.VAdd, fp16.Zero, true, sp)
}

// planDirectForward is the shared standard (direct, non-Im2Col) forward
// lowering: row bands reduced with op, optionally followed by the
// 1/(Kh*Kw) scaling epilogue. The schedule — band size, buffer rotation,
// mask width, epilogue placement — comes from sp; the zero value resolves
// to the hand-tuned defaults (largest double-buffered band, Sw-dependent
// mask width, fused epilogue).
func planDirectForward(name string, spec Spec, p isa.ConvParams, op isa.VecOp, init fp16.Float16, scale bool, sp ScheduleParams) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.RepeatChunk, "repeat_chunk"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	if !scale {
		if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
			return nil, err
		}
	} else if sp.Epilogue != EpiFused && sp.Epilogue != EpiDeferred {
		return nil, badSchedule(name, "epilogue=%d: unknown epilogue placement", sp.Epilogue)
	}
	b := newPlanner(name, spec, p)
	core := b.core
	pp := foldPadding(p)
	oh, ow := pp.OutDims()
	inRowB := pp.Iw * Block
	outRowB := ow * Block

	saturated := pp.Sw == 1
	switch sp.Saturate {
	case SatAuto:
	case SatFull:
		if pp.Sw != 1 {
			return nil, badSchedule(name, "saturate=full needs consecutive patches (Sw == 1), have Sw=%d", pp.Sw)
		}
	case SatNarrow:
		saturated = false
	default:
		return nil, badSchedule(name, "saturate=%d: unknown mask-width choice", sp.Saturate)
	}

	inGM, err := b.input(pp.Ih * inRowB)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(oh * outRowB)
	if err != nil {
		return nil, err
	}

	// Row bands through rotating in/out areas: with two, the MTE2 load of
	// the next band overlaps the vector work of the current one.
	inRows := func(b int) int { return (b-1)*pp.Sh + pp.Kh }
	band, buffers, err := resolveBand(name, pp, ubAvail(core), oh, sp, func(b, n int) int {
		return n * (inRows(b)*inRowB + b*outRowB)
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	var inUB, outUB [2]int
	for i := 0; i < buffers; i++ {
		inUB[i] = ub.MustAlloc(inRows(band) * inRowB)
		outUB[i] = ub.MustAlloc(band * outRowB)
	}

	prog := cce.New(name)
	for oh0, bi := 0, 0; oh0 < oh; oh0, bi = oh0+band, bi+1 {
		b := min(band, oh-oh0)
		iUB, oUB := inUB[bi%buffers], outUB[bi%buffers]
		h0 := oh0 * pp.Sh
		rows := inRows(b)
		prog.EmitCopy(isa.GM, inGM+h0*inRowB, isa.UB, iUB, rows*inRowB)
		prog.EmitDup(isa.UB, oUB, b*ow*tensor.C0, init)
		if saturated {
			emitReduceRowsSaturated(prog, op, pp, iUB, oUB, b, ow)
		} else {
			emitReduceStrided(prog, op, pp, iUB, oUB, b, ow)
		}
		if scale && sp.Epilogue == EpiFused {
			prog.EmitElementwiseScalar(isa.VMuls, isa.UB, oUB, oUB, 0, b*ow*tensor.C0, avgScale(pp))
		}
		prog.EmitCopy(isa.UB, oUB, isa.GM, outGM+oh0*outRowB, b*outRowB)
	}
	if scale && sp.Epilogue == EpiDeferred {
		emitDeferredScale(prog, pp, outGM, outUB[0], band*outRowB, oh*outRowB)
	}
	b.output(outGM, 1, 1, oh, ow, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = bindPaddedTile(name, p)
	pl.Sched = ScheduleParams{
		Mode: sp.Mode, Band: band, Buffers: buffers,
		Saturate: resolvedSaturate(saturated), Epilogue: sp.Epilogue,
	}
	return pl, nil
}

// MaxPoolFwdStandard is the standard TVM Maxpool lowering (Listing 1,
// §V-A) as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call, so repeated shapes still amortize, but new code should
// hold the Plan directly.
func MaxPoolFwdStandard(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForward(trace.Ctx{}, "standard", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

// runSingle replays a single-output plan on core.
func runSingle(pl *Plan, core *aicore.Core, inputs ...*tensor.Tensor) (*tensor.Tensor, *aicore.Stats, error) {
	outs, st, err := pl.Run(core, inputs...)
	if err != nil {
		return nil, nil, err
	}
	return outs[0], st, nil
}

// emitReduceStrided is the 16-lane lowering: one reduction instruction per
// (oh, ow, kh) with repetition over kw (dst repeat stride 0 accumulates
// into the output).
func emitReduceStrided(prog *cce.Program, op isa.VecOp, pp isa.ConvParams, inUB, outUB, bandOh, ow int) {
	for i := 0; i < bandOh; i++ {
		for owi := 0; owi < ow; owi++ {
			dst := isa.Operand{Buf: isa.UB, Addr: outUB + (i*ow+owi)*Block, BlkStride: 1, RepStride: 0}
			for kh := 0; kh < pp.Kh; kh++ {
				src := isa.Operand{
					Buf:       isa.UB,
					Addr:      inUB + ((i*pp.Sh+kh)*pp.Iw+owi*pp.Sw)*Block,
					BlkStride: 1,
					RepStride: 1, // next kw element each repeat
				}
				prog.EmitVec(op, dst, src, dst, 0, isa.MaskFirstN(tensor.C0), pp.Kw)
			}
		}
	}
}

// emitReduceRowsSaturated is the Sw == 1 lowering: per (oh, kh, kw) a
// single full-mask instruction reduces a whole (Ow, C0) row of consecutive
// patches.
func emitReduceRowsSaturated(prog *cce.Program, op isa.VecOp, pp isa.ConvParams, inUB, outUB, bandOh, ow int) {
	for i := 0; i < bandOh; i++ {
		dRow := outUB + i*ow*Block
		for kh := 0; kh < pp.Kh; kh++ {
			for kw := 0; kw < pp.Kw; kw++ {
				sRow := inUB + ((i*pp.Sh+kh)*pp.Iw+kw)*Block
				prog.EmitElementwise(op, isa.UB, dRow, sRow, dRow, ow*tensor.C0)
			}
		}
	}
}

// im2colPlan is the shared schedule of the Im2col-based forward kernels:
// fractal-aligned patch bands stream through the Unified Buffer. When the
// whole input slice fits L1 it is loaded once (in row chunks, so the first
// Im2Col loads overlap the transfer); otherwise the schedule streams
// per-band row windows through two rotating L1 areas, which is how layers
// like VGG16's 224x224 input run at all.
type im2colPlan struct {
	oh, ow  int
	patches int
	fracs   int
	band    int // fractals per band
	buffers int
	colUB   [2]int // (Kh*Kw, band*16, C0) im2col area
	outUB   [2]int // (band*16, C0) output area
	inGM    int
	outGM   int

	l1Banded bool
	l1Addr   int    // full-input base (l1Banded == false)
	l1Area   [2]int // rotating row windows (l1Banded == true)
	l1Rows   int    // row capacity of each window
}

// rowsForFracs bounds the input rows touched by b fractals of patches.
func rowsForFracs(p isa.ConvParams, ow, b int) int {
	patchRows := (b*isa.FractalPatches+ow-1)/ow + 1
	rows := (patchRows-1)*p.Sh + p.Kh
	if rows > p.Ih {
		rows = p.Ih
	}
	return rows
}

// patchRowRange returns the input-image rows [lo, hi) read by patches
// [pa, pb) (pb clamped to the valid patch count).
func patchRowRange(p isa.ConvParams, ow, patches, pa, pb int) (lo, hi int) {
	if pb > patches {
		pb = patches
	}
	lo = (pa/ow)*p.Sh - p.Pt
	if lo < 0 {
		lo = 0
	}
	hi = ((pb-1)/ow)*p.Sh - p.Pt + p.Kh
	if hi > p.Ih {
		hi = p.Ih
	}
	return lo, hi
}

// planIm2col sizes the shared Im2col forward schedule against the
// planner's scratch core, reserving the input/output global-memory layout.
// sp supplies the band/buffer schedule (fractal units); the L1 row-window
// banding stays automatic but clamps an explicit band it cannot stage.
func planIm2col(b *planner, p isa.ConvParams, name string, extraPerFrac int, sp ScheduleParams) (*im2colPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	core := b.core
	pl := &im2colPlan{}
	pl.oh, pl.ow = p.OutDims()
	pl.patches = p.Patches()
	pl.fracs = p.Fractals()
	inBytes := p.Ih * p.Iw * Block

	var err error
	if pl.inGM, err = b.input(inBytes); err != nil {
		return nil, err
	}
	if pl.outGM, err = core.Mem.Space(isa.GM).Alloc(pl.patches * Block); err != nil {
		return nil, err
	}

	perFrac := (p.Kh*p.Kw+1)*isa.FractalBytes + extraPerFrac
	pl.band, pl.buffers, err = resolveBand(name, p, ubAvail(core), pl.fracs, sp, func(b, n int) int {
		return n * b * perFrac
	})
	if err != nil {
		return nil, err
	}

	l1 := core.Mem.Space(isa.L1)
	rowB := p.Iw * Block
	if inBytes <= l1.Free() {
		pl.l1Addr = l1.MustAlloc(inBytes)
	} else {
		// Banded L1: rotating row windows sized for one patch band — two
		// for load/compute overlap when they fit, one otherwise.
		pl.l1Banded = true
		l1Buffers := 2
		l1Band := maxBand(l1.Free(), pl.band, func(b int) int {
			return 2 * rowsForFracs(p, pl.ow, b) * rowB
		})
		if l1Band == 0 {
			l1Buffers = 1
			l1Band = maxBand(l1.Free(), pl.band, func(b int) int {
				return rowsForFracs(p, pl.ow, b) * rowB
			})
			if l1Band == 0 {
				return nil, errTooLarge(name+" (L1)", p)
			}
		}
		if sp.Band > 0 && l1Band < sp.Band {
			return nil, badSchedule(name, "band=%d needs an L1 row window larger than the %d bytes available", sp.Band, l1.Free())
		}
		pl.band = l1Band
		pl.l1Rows = rowsForFracs(p, pl.ow, pl.band)
		pl.l1Area[0] = l1.MustAlloc(pl.l1Rows * rowB)
		pl.l1Area[1] = pl.l1Area[0]
		if l1Buffers == 2 {
			pl.l1Area[1] = l1.MustAlloc(pl.l1Rows * rowB)
		}
	}

	ub := core.Mem.Space(isa.UB)
	for i := 0; i < pl.buffers; i++ {
		pl.colUB[i] = ub.MustAlloc(p.Kh * p.Kw * pl.band * isa.FractalBytes)
		pl.outUB[i] = ub.MustAlloc(pl.band * isa.FractalBytes)
	}
	return pl, nil
}

// emitInputLoad moves the input slice from global memory to L1 in row
// chunks rather than one monolithic DMA, so the first Im2Col loads can
// start as soon as the rows they read have landed (the transform happens
// "while data is transferred" - the schedule must not serialize it behind
// the whole transfer). In banded-L1 mode the loads are emitted per band by
// emitBandInput instead.
func (pl *im2colPlan) emitInputLoad(prog *cce.Program, p isa.ConvParams) {
	if pl.l1Banded {
		return
	}
	rowB := p.Iw * Block
	chunkRows := max(p.Kh, (32<<10)/rowB)
	for r := 0; r < p.Ih; r += chunkRows {
		rows := min(chunkRows, p.Ih-r)
		prog.EmitCopy(isa.GM, pl.inGM+r*rowB, isa.L1, pl.l1Addr+r*rowB, rows*rowB)
	}
}

// emitBandInput returns the L1 address and row band holding the input for
// patches [f0*16, (f0+fb)*16), emitting the GM->L1 transfer when running
// in banded-L1 mode.
func (pl *im2colPlan) emitBandInput(prog *cce.Program, p isa.ConvParams, bi, f0, fb int) (srcAddr, rowBase, rows int) {
	if !pl.l1Banded {
		return pl.l1Addr, 0, 0
	}
	pa := f0 * isa.FractalPatches
	lo, hi := patchRowRange(p, pl.ow, pl.patches, pa, pa+fb*isa.FractalPatches)
	rowB := p.Iw * Block
	area := pl.l1Area[bi%2]
	prog.EmitCopy(isa.GM, pl.inGM+lo*rowB, isa.L1, area, (hi-lo)*rowB)
	return area, lo, hi - lo
}

// planMaxPoolFwdIm2col compiles the accelerated forward implementation
// (Listing 2, §V-A): the input is loaded to L1, transformed by Im2Col
// loads into the (Kh, Kw, Oh*Ow, C0) layout in the Unified Buffer, and
// reduced with vmax instructions that set all 128 mask lanes and ride the
// repeat parameter — issued only Kh*Kw times per band (modulo the repeat
// cap).
func planMaxPoolFwdIm2col(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planIm2colForward("maxpool_fwd_im2col", spec, p, isa.VMax, fp16.NegativeInfinity, false, sp)
}

// planAvgPoolFwdIm2col compiles the Im2col-based Avgpool forward: the same
// schedule as the Maxpool variant with vadd reductions and the division
// epilogue ("the access pattern stays the same and can benefit from using
// Im2Col", §V-C).
func planAvgPoolFwdIm2col(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planIm2colForward("avgpool_fwd_im2col", spec, p, isa.VAdd, fp16.Zero, true, sp)
}

func planIm2colForward(name string, spec Spec, p isa.ConvParams, op isa.VecOp, init fp16.Float16, scale bool, sp ScheduleParams) (*Plan, error) {
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	if !scale {
		if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
			return nil, err
		}
	} else if sp.Epilogue != EpiFused && sp.Epilogue != EpiDeferred {
		return nil, badSchedule(name, "epilogue=%d: unknown epilogue placement", sp.Epilogue)
	}
	b := newPlanner(name, spec, p)
	pl, err := planIm2col(b, p, name, 0, sp)
	if err != nil {
		return nil, err
	}
	prog := cce.New(name)
	pl.emitInputLoad(prog, p)

	for f0, bi := 0, 0; f0 < pl.fracs; f0, bi = f0+pl.band, bi+1 {
		fb := min(pl.band, pl.fracs-f0)
		colUB, outUB := pl.colUB[bi%pl.buffers], pl.outUB[bi%pl.buffers]
		src, rowBase, rows := pl.emitBandInput(prog, p, bi, f0, fb)
		prog.EmitIm2ColRange(src, isa.UB, colUB, p, 1, 0, f0*isa.FractalPatches, fb, rowBase, rows)
		prog.EmitDup(isa.UB, outUB, fb*isa.FractalPatches*tensor.C0, init)
		emitColReduce(prog, sp, op, colUB, outUB, p.Kh*p.Kw, fb)
		if scale && sp.Epilogue == EpiFused {
			prog.EmitElementwiseScalar(isa.VMuls, isa.UB, outUB, outUB, 0, fb*isa.FractalPatches*tensor.C0, avgScale(p))
		}
		valid := min(pl.patches, (f0+fb)*isa.FractalPatches) - f0*isa.FractalPatches
		prog.EmitCopy(isa.UB, outUB, isa.GM, pl.outGM+f0*isa.FractalPatches*Block, valid*Block)
	}
	if scale && sp.Epilogue == EpiDeferred {
		emitDeferredScale(prog, p, pl.outGM, pl.outUB[0], pl.band*isa.FractalBytes, pl.patches*Block)
	}
	b.output(pl.outGM, 1, 1, pl.oh, pl.ow, tensor.C0)
	plan, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	plan.bind = bindTile(name, p)
	plan.Sched = ScheduleParams{
		Mode: sp.Mode, Band: pl.band, Buffers: pl.buffers,
		RepeatChunk: resolvedRepeatChunk(sp), Epilogue: sp.Epilogue,
	}
	return plan, nil
}

// MaxPoolFwdIm2col is the accelerated forward implementation (Listing 2,
// §V-A) as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func MaxPoolFwdIm2col(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForward(trace.Ctx{}, "im2col", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

// emitColReduce emits the kernel-position reduction over an im2col band:
// one full-mask instruction per (kh, kw) slice with repetition covering
// the whole band (the three innermost dimensions of input and output tiles
// are identical, §V-A), sliced at the schedule's repeat-chunk cap.
func emitColReduce(prog *cce.Program, sp ScheduleParams, op isa.VecOp, colUB, outUB, kk, fb int) {
	reps := fb * isa.FractalBytes / (isa.LanesPerRepeat * fp16.Bytes)
	dst := isa.Contig(isa.UB, outUB)
	for s := 0; s < kk; s++ {
		src := isa.Contig(isa.UB, colUB+s*fb*isa.FractalBytes)
		emitVecChunked(prog, sp, op, dst, src, dst, 0, isa.FullMask(), reps)
	}
}

// planMaxPoolFwdExpansion compiles the "Maxpool with expansion" baseline of
// Fig. 8: regular vector instructions — instead of Im2Col loads —
// rearrange the input into the im2col shape once it is already in the
// Unified Buffer, then the same saturated reduction runs. It beats the
// standard lowering but pays the transform as vector work in a separate
// step (§VI-B).
func planMaxPoolFwdExpansion(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_fwd_expansion"
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.RepeatChunk, "repeat_chunk"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if sp.Gather != GatherVector && sp.Gather != GatherMTE {
		return nil, badSchedule(name, "gather=%d: unknown gather engine", sp.Gather)
	}
	mteGather := sp.Gather == GatherMTE
	b := newPlanner(name, spec, p)
	core := b.core
	pp := foldPadding(p)
	oh, ow := pp.OutDims()
	inRowB := pp.Iw * Block
	outRowB := ow * Block

	inGM, err := b.input(pp.Ih * inRowB)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(oh * outRowB)
	if err != nil {
		return nil, err
	}

	inRows := func(b int) int { return (b-1)*pp.Sh + pp.Kh }
	// With the MTE gather the input band lives in L1, not the UB, so the
	// UB requirement drops to the expansion and output areas.
	band, buffers, err := resolveBand(name, pp, ubAvail(core), oh, sp, func(b, n int) int {
		per := pp.Kh*pp.Kw*b*outRowB + b*outRowB
		if !mteGather {
			per += inRows(b) * inRowB
		}
		return n * per
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	var inUB, expUB, outUB [2]int
	if mteGather {
		// Stage the input band in L1 and gather patches from there on the
		// MTE1 pipe, keeping the Vector Unit free for the reduction.
		l1 := core.Mem.Space(isa.L1)
		l1Band := maxBand(l1.Free(), band, func(b int) int { return buffers * inRows(b) * inRowB })
		if l1Band == 0 {
			return nil, badSchedule(name, "gather=mte needs an L1 row window for %d input rows, more than the %d bytes available",
				inRows(1)*inRowB, l1.Free())
		}
		if sp.Band > 0 && l1Band < sp.Band {
			return nil, badSchedule(name, "band=%d needs an L1 row window larger than the %d bytes available", sp.Band, l1.Free())
		}
		band = l1Band
		for i := 0; i < buffers; i++ {
			inUB[i] = l1.MustAlloc(inRows(band) * inRowB)
		}
	}
	for i := 0; i < buffers; i++ {
		if !mteGather {
			inUB[i] = ub.MustAlloc(inRows(band) * inRowB)
		}
		expUB[i] = ub.MustAlloc(pp.Kh * pp.Kw * band * outRowB)
		outUB[i] = ub.MustAlloc(band * outRowB)
	}

	prog := cce.New(name)
	for oh0, bi := 0, 0; oh0 < oh; oh0, bi = oh0+band, bi+1 {
		b := min(band, oh-oh0)
		iUB, eUB, oUB := inUB[bi%buffers], expUB[bi%buffers], outUB[bi%buffers]
		srcBuf := isa.UB
		if mteGather {
			srcBuf = isa.L1
		}
		prog.EmitCopy(isa.GM, inGM+oh0*pp.Sh*inRowB, srcBuf, iUB, inRows(b)*inRowB)
		// Expansion: one strided row gather per (kh, kw, oh) — vcopy on the
		// Vector pipe, or a strided DMA burst on MTE1.
		bandPatches := b * ow
		for kh := 0; kh < pp.Kh; kh++ {
			for kw := 0; kw < pp.Kw; kw++ {
				slice := eUB + (kh*pp.Kw+kw)*bandPatches*Block
				for i := 0; i < b; i++ {
					src := inUB0RowAddr(iUB, pp, i, kh, kw)
					if mteGather {
						prog.Emit(&isa.CopyInstr{
							SrcBuf: isa.L1, SrcAddr: src,
							DstBuf: isa.UB, DstAddr: slice + i*ow*Block,
							NBurst: ow, BurstBytes: Block,
							SrcGap: (pp.Sw - 1) * Block, DstGap: 0,
						})
					} else {
						emitStridedRowCopy(prog, slice+i*ow*Block, src, ow, pp.Sw)
					}
				}
			}
		}
		prog.EmitDup(isa.UB, oUB, bandPatches*tensor.C0, fp16.NegativeInfinity)
		for s := 0; s < pp.Kh*pp.Kw; s++ {
			prog.EmitElementwise(isa.VMax, isa.UB, oUB, eUB+s*bandPatches*Block, oUB, bandPatches*tensor.C0)
		}
		prog.EmitCopy(isa.UB, oUB, isa.GM, outGM+oh0*outRowB, b*outRowB)
		_ = bi
	}
	b.output(outGM, 1, 1, oh, ow, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = bindPaddedTile(name, p)
	pl.Sched = ScheduleParams{Mode: sp.Mode, Band: band, Buffers: buffers, Gather: sp.Gather}
	return pl, nil
}

// MaxPoolFwdExpansion is the "Maxpool with expansion" baseline of Fig. 8
// as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func MaxPoolFwdExpansion(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForward(trace.Ctx{}, "expansion", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

func inUB0RowAddr(inUB int, pp isa.ConvParams, localOh, kh, kw int) int {
	return inUB + ((localOh*pp.Sh+kh)*pp.Iw+kw)*Block
}

// emitStridedRowCopy copies `blocks` C0 blocks whose source is strided by
// srcStride blocks (gathering one patch element per consecutive patch of a
// row) into a contiguous destination, saturating the mask.
func emitStridedRowCopy(prog *cce.Program, dstAddr, srcAddr, blocks, srcStride int) {
	full := blocks / isa.BlocksPerRepeat
	if full > 0 {
		src := isa.Operand{Buf: isa.UB, Addr: srcAddr, BlkStride: srcStride, RepStride: isa.BlocksPerRepeat * srcStride}
		prog.EmitVec(isa.VCopy, isa.Contig(isa.UB, dstAddr), src, isa.Operand{}, 0, isa.FullMask(), full)
	}
	if tail := blocks % isa.BlocksPerRepeat; tail != 0 {
		src := isa.Operand{
			Buf:       isa.UB,
			Addr:      srcAddr + full*isa.BlocksPerRepeat*srcStride*isa.BlockBytes,
			BlkStride: srcStride,
			RepStride: isa.BlocksPerRepeat * srcStride,
		}
		dst := isa.Contig(isa.UB, dstAddr+full*isa.LanesPerRepeat*fp16.Bytes)
		prog.EmitVec(isa.VCopy, dst, src, isa.Operand{}, 0, isa.MaskFirstN(tail*isa.ElemsPerBlock), 1)
	}
}

// planMaxPoolFwdXYSplit compiles the split reduction: first across the
// width, then across the height, reusing the first reduction (Lai et al.,
// §VI-B). TVM cannot compute in place, so the width reduction materializes
// an intermediate (Ih, Ow, C0) tensor. The width pass is strided
// (16-lane); the height pass is contiguous and saturates the mask.
func planMaxPoolFwdXYSplit(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_fwd_xysplit"
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.RepeatChunk, "repeat_chunk"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	b := newPlanner(name, spec, p)
	core := b.core
	pp := foldPadding(p)
	oh, ow := pp.OutDims()
	inRowB := pp.Iw * Block
	outRowB := ow * Block

	inGM, err := b.input(pp.Ih * inRowB)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(oh * outRowB)
	if err != nil {
		return nil, err
	}

	inRows := func(b int) int { return (b-1)*pp.Sh + pp.Kh }
	band, buffers, err := resolveBand(name, pp, ubAvail(core), oh, sp, func(b, n int) int {
		return n * (inRows(b)*inRowB + inRows(b)*outRowB + b*outRowB)
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	var inUB, tmpUB, outUB [2]int
	for i := 0; i < buffers; i++ {
		inUB[i] = ub.MustAlloc(inRows(band) * inRowB)
		tmpUB[i] = ub.MustAlloc(inRows(band) * outRowB)
		outUB[i] = ub.MustAlloc(band * outRowB)
	}

	prog := cce.New("maxpool_fwd_xysplit")
	for oh0, bi := 0, 0; oh0 < oh; oh0, bi = oh0+band, bi+1 {
		b := min(band, oh-oh0)
		iUB, tUB, oUB := inUB[bi%buffers], tmpUB[bi%buffers], outUB[bi%buffers]
		rows := inRows(b)
		prog.EmitCopy(isa.GM, inGM+oh0*pp.Sh*inRowB, isa.UB, iUB, rows*inRowB)
		// X pass: tmp[r, ow] = max over kw of in[r, ow*Sw+kw] (strided).
		prog.EmitDup(isa.UB, tUB, rows*ow*tensor.C0, fp16.NegativeInfinity)
		for r := 0; r < rows; r++ {
			for owi := 0; owi < ow; owi++ {
				dst := isa.Operand{Buf: isa.UB, Addr: tUB + (r*ow+owi)*Block, BlkStride: 1, RepStride: 0}
				src := isa.Operand{Buf: isa.UB, Addr: iUB + (r*pp.Iw+owi*pp.Sw)*Block, BlkStride: 1, RepStride: 1}
				prog.EmitVec(isa.VMax, dst, src, dst, 0, isa.MaskFirstN(tensor.C0), pp.Kw)
			}
		}
		// Y pass: out[i] = max over kh of tmp[i*Sh+kh] (contiguous rows).
		prog.EmitDup(isa.UB, oUB, b*ow*tensor.C0, fp16.NegativeInfinity)
		for i := 0; i < b; i++ {
			dRow := oUB + i*ow*Block
			for kh := 0; kh < pp.Kh; kh++ {
				sRow := tUB + (i*pp.Sh+kh)*ow*Block
				prog.EmitElementwise(isa.VMax, isa.UB, dRow, sRow, dRow, ow*tensor.C0)
			}
		}
		prog.EmitCopy(isa.UB, oUB, isa.GM, outGM+oh0*outRowB, b*outRowB)
	}
	b.output(outGM, 1, 1, oh, ow, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = bindPaddedTile(name, p)
	pl.Sched = ScheduleParams{Mode: sp.Mode, Band: band, Buffers: buffers}
	return pl, nil
}

// MaxPoolFwdXYSplit is the split-reduction baseline (Lai et al., §VI-B)
// as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func MaxPoolFwdXYSplit(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolForward(trace.Ctx{}, "xysplit", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}
