package ops

import (
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/isa"
	"davinci/internal/workloads"
)

// linearMaxBand is the obviously-correct reference for maxBand: scan every
// band from limit down and return the first that fits.
func linearMaxBand(avail, limit int, need func(int) int) int {
	for b := limit; b >= 1; b-- {
		if need(b) <= avail {
			return b
		}
	}
	return 0
}

// TestMaxBandMatchesLinearReference pins the binary search against the
// linear scan on the cost curves the pooling lowerings actually use —
// row-window curves with the (b-1)*Sh+Kh input overhang, fractal-granular
// step curves, and the double-buffered variants of both — across every
// Table I layer and a spread of capacities around the real UB size. The
// curves are non-decreasing but not strictly increasing (the ceil-to-
// fractal steps plateau), which is exactly the shape a naive bisection
// gets wrong.
func TestMaxBandMatchesLinearReference(t *testing.T) {
	for _, layer := range workloads.TableI {
		p := layer.Params()
		oh, ow := p.OutDims()
		inRowB := p.Iw * Block
		outRowB := ow * Block
		inRows := func(b int) int { return (b-1)*p.Sh + p.Kh }
		rowsFor := func(fracs int) int {
			patches := fracs * isa.FractalPatches
			lastRow := (patches - 1) / ow
			return min(lastRow*p.Sh+p.Kh, p.Ih)
		}
		curves := []struct {
			name  string
			limit int
			need  func(int) int
		}{
			{"rows", oh, func(b int) int { return inRows(b)*inRowB + b*outRowB }},
			{"rows2x", oh, func(b int) int { return 2 * (inRows(b)*inRowB + b*outRowB) }},
			{"fracs", p.Fractals(), func(b int) int { return b*isa.FractalBytes + rowsFor(b)*inRowB }},
			{"fracs2x", p.Fractals(), func(b int) int { return 2*b*isa.FractalBytes + rowsFor(b)*inRowB }},
			{"expand", oh, func(b int) int { return p.Kh*p.Kw*b*outRowB + b*outRowB + inRows(b)*inRowB }},
		}
		avails := []int{
			0, 1,
			buffer.DefaultUBSize / 64,
			buffer.DefaultUBSize / 7,
			buffer.DefaultUBSize / 2,
			buffer.DefaultUBSize - 8*Block,
			buffer.DefaultUBSize * 4,
		}
		for _, c := range curves {
			for _, avail := range avails {
				got := maxBand(avail, c.limit, c.need)
				want := linearMaxBand(avail, c.limit, c.need)
				if got != want {
					t.Fatalf("%dx%dx%d %s avail=%d limit=%d: maxBand=%d, linear reference=%d",
						layer.H, layer.W, layer.C, c.name, avail, c.limit, got, want)
				}
				// Pin the exact-boundary capacities too: the largest band's
				// cost and one byte less straddle the accept/reject edge.
				if want > 0 {
					for _, edge := range []int{c.need(want), c.need(want) - 1} {
						if got, ref := maxBand(edge, c.limit, c.need), linearMaxBand(edge, c.limit, c.need); got != ref {
							t.Fatalf("%dx%dx%d %s avail=%d (edge) limit=%d: maxBand=%d, linear reference=%d",
								layer.H, layer.W, layer.C, c.name, edge, c.limit, got, ref)
						}
					}
				}
			}
		}
	}
}

// TestMaxBandDegenerate pins the contract's edges: a non-positive limit
// and a curve that overflows the capacity at band 1 both return 0, and a
// free curve returns the limit.
func TestMaxBandDegenerate(t *testing.T) {
	flat := func(int) int { return 10 }
	for _, tc := range []struct {
		name         string
		avail, limit int
		need         func(int) int
		want         int
	}{
		{"zero-limit", 100, 0, flat, 0},
		{"negative-limit", 100, -3, flat, 0},
		{"over-at-one", 9, 5, flat, 0},
		{"exact-at-one", 10, 1, flat, 1},
		{"free-curve", 10, 7, flat, 7},
	} {
		if got := maxBand(tc.avail, tc.limit, tc.need); got != tc.want {
			t.Errorf("%s: maxBand(%d, %d)=%d, want %d", tc.name, tc.avail, tc.limit, got, tc.want)
		}
	}
}
