package ops

import (
	"strings"
	"testing"

	"davinci/internal/isa"
)

// TestInvalidScheduleKnobs drives every kernel family's schedule-knob
// validation: each lowering must reject, with a typed
// InvalidScheduleError naming the knob, every schedule axis it does not
// expose and every out-of-range value of the axes it does — the crisp
// edge of the space the autoscheduler's enumerator and the symbolic
// certifier's applicability probes both rely on.
func TestInvalidScheduleKnobs(t *testing.T) {
	// 17x17, kernel 3, stride 2: every family compiles quickly and the
	// stride keeps patches non-consecutive (Sw != 1), which makes
	// saturate=full invalid on the kernels that expose the axis.
	p := isa.ConvParams{Ih: 17, Iw: 17, Kh: 3, Kw: 3, Sh: 2, Sw: 2}

	tests := []struct {
		kernel string
		sp     ScheduleParams
		want   string // substring of the InvalidScheduleError
	}{
		// maxpool_fwd/standard: direct forward, no scaling epilogue.
		{"maxpool_fwd/standard", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"maxpool_fwd/standard", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"maxpool_fwd/standard", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd/standard", ScheduleParams{Saturate: SatFull}, "saturate=full needs consecutive patches"},
		{"maxpool_fwd/standard", ScheduleParams{Saturate: 9}, "unknown mask-width choice"},
		{"maxpool_fwd/standard", ScheduleParams{Buffers: 3}, "buffers=3: want 1 or 2"},
		{"maxpool_fwd/standard", ScheduleParams{Band: -1}, "band=-1 outside"},
		{"maxpool_fwd/standard", ScheduleParams{Band: 1 << 20}, "outside [1,"},

		// maxpool_fwd/im2col: fractal forward, no scaling epilogue.
		{"maxpool_fwd/im2col", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_fwd/im2col", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"maxpool_fwd/im2col", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd/im2col", ScheduleParams{Buffers: 7}, "buffers=7: want 1 or 2"},
		{"maxpool_fwd/im2col", ScheduleParams{Band: 1 << 20}, "outside [1,"},

		// maxpool_fwd/expansion: exposes gather, validates its values.
		{"maxpool_fwd/expansion", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_fwd/expansion", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"maxpool_fwd/expansion", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd/expansion", ScheduleParams{Gather: 5}, "unknown gather engine"},

		// maxpool_fwd/xysplit: no searchable axes beyond band/buffers.
		{"maxpool_fwd/xysplit", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_fwd/xysplit", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"maxpool_fwd/xysplit", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd/xysplit", ScheduleParams{Gather: GatherMTE}, "no gather axis"},

		// maxpool_fwd_argmax/standard: direct with mask, saturate axis.
		{"maxpool_fwd_argmax/standard", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"maxpool_fwd_argmax/standard", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd_argmax/standard", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"maxpool_fwd_argmax/standard", ScheduleParams{Saturate: SatFull}, "saturate=full needs consecutive patches"},
		{"maxpool_fwd_argmax/standard", ScheduleParams{Saturate: 9}, "unknown mask-width choice"},

		// maxpool_fwd_argmax/im2col: fractal with mask, repeat_chunk only.
		{"maxpool_fwd_argmax/im2col", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_fwd_argmax/im2col", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_fwd_argmax/im2col", ScheduleParams{Gather: GatherMTE}, "no gather axis"},

		// maxpool_bwd: both variants share planBackward's validation.
		{"maxpool_bwd/standard", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_bwd/standard", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_bwd/standard", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"maxpool_bwd/col2im", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"maxpool_bwd/col2im", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"maxpool_bwd/col2im", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"maxpool_bwd/col2im", ScheduleParams{Buffers: 3}, "buffers=3: want 1 or 2"},

		// avgpool_fwd/standard: scaling epilogue exposed, values checked.
		{"avgpool_fwd/standard", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"avgpool_fwd/standard", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"avgpool_fwd/standard", ScheduleParams{Epilogue: 9}, "unknown epilogue placement"},
		{"avgpool_fwd/standard", ScheduleParams{Saturate: SatFull}, "saturate=full needs consecutive patches"},

		// avgpool_fwd/im2col: fractal with scaling epilogue.
		{"avgpool_fwd/im2col", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"avgpool_fwd/im2col", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"avgpool_fwd/im2col", ScheduleParams{Epilogue: 9}, "unknown epilogue placement"},

		// avgpool_fwd/cube: the Cube-unit mapping has no schedule axes at
		// all — the lowering is fixed by the MMAD dataflow.
		{"avgpool_fwd/cube", ScheduleParams{Band: 4}, "no band axis"},
		{"avgpool_fwd/cube", ScheduleParams{Buffers: 1}, "no buffers axis"},
		{"avgpool_fwd/cube", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"avgpool_fwd/cube", ScheduleParams{RepeatChunk: 16}, "no repeat_chunk axis"},
		{"avgpool_fwd/cube", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"avgpool_fwd/cube", ScheduleParams{Gather: GatherMTE}, "no gather axis"},

		// avgpool_bwd: both variants share one validation head.
		{"avgpool_bwd/standard", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"avgpool_bwd/standard", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"avgpool_bwd/standard", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"avgpool_bwd/col2im", ScheduleParams{Saturate: SatNarrow}, "no saturate axis"},
		{"avgpool_bwd/col2im", ScheduleParams{Epilogue: EpiDeferred}, "no epilogue axis"},
		{"avgpool_bwd/col2im", ScheduleParams{Gather: GatherMTE}, "no gather axis"},
		{"avgpool_bwd/col2im", ScheduleParams{Band: -3}, "band=-3 outside"},
	}
	for _, tt := range tests {
		name := tt.kernel + "/" + tt.sp.String()
		t.Run(name, func(t *testing.T) {
			_, err := CompileKernel(tt.kernel, Spec{}, p, tt.sp)
			if err == nil {
				t.Fatalf("CompileKernel(%s, %+v) succeeded, want InvalidScheduleError %q", tt.kernel, tt.sp, tt.want)
			}
			if !IsInvalidSchedule(err) {
				t.Fatalf("CompileKernel(%s, %+v) = %v, want a typed *InvalidScheduleError", tt.kernel, tt.sp, err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("CompileKernel(%s, %+v) = %q, want substring %q", tt.kernel, tt.sp, err, tt.want)
			}
		})
	}
}

// TestValidScheduleKnobs is the positive contrast: the axes each
// lowering does expose compile cleanly at their searched values, so the
// rejections above are crisp edges rather than blanket refusals.
func TestValidScheduleKnobs(t *testing.T) {
	p := isa.ConvParams{Ih: 17, Iw: 17, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	tests := []struct {
		kernel string
		sp     ScheduleParams
	}{
		{"maxpool_fwd/standard", ScheduleParams{Saturate: SatNarrow}},
		{"maxpool_fwd/standard", ScheduleParams{Buffers: 1}},
		{"maxpool_fwd/im2col", ScheduleParams{RepeatChunk: 16}},
		{"maxpool_fwd/expansion", ScheduleParams{Gather: GatherMTE}},
		{"maxpool_fwd_argmax/standard", ScheduleParams{Saturate: SatNarrow}},
		{"maxpool_fwd_argmax/im2col", ScheduleParams{RepeatChunk: 16}},
		{"maxpool_bwd/col2im", ScheduleParams{RepeatChunk: 16}},
		{"avgpool_fwd/standard", ScheduleParams{Epilogue: EpiDeferred}},
		{"avgpool_fwd/im2col", ScheduleParams{Epilogue: EpiDeferred}},
		{"avgpool_bwd/col2im", ScheduleParams{Buffers: 1}},
	}
	for _, tt := range tests {
		name := tt.kernel + "/" + tt.sp.String()
		t.Run(name, func(t *testing.T) {
			pl, err := CompileKernel(tt.kernel, Spec{}, p, tt.sp)
			if err != nil {
				t.Fatalf("CompileKernel(%s, %+v): %v", tt.kernel, tt.sp, err)
			}
			if pl.Prog == nil || pl.Prog.Len() == 0 {
				t.Fatalf("CompileKernel(%s, %+v) produced an empty program", tt.kernel, tt.sp)
			}
		})
	}
}
