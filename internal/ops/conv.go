package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// PackWeightsFractal converts a (Co, C, Kh, Kw) weight stack into the
// fractal operand layout the Cube unit consumes from L0B: a
// (K, N, 16, 16) tensor with K = C1*Kh*Kw fractal rows (one per
// (c1, xk, yk), matching the fractals an Im2Col load in repeat mode 0
// produces) and N = Co1 fractal columns. Row c0 / column oc0 of fractal
// (k, n) holds weights[n*16+oc0, c1*16+c0, xk, yk]; positions beyond Co or
// C are zero padding. Frameworks prepare weights in this layout offline.
func PackWeightsFractal(w *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	if len(w.Shape) != 4 || w.Shape[2] != p.Kh || w.Shape[3] != p.Kw {
		panic(fmt.Sprintf("ops: want (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, w.Shape))
	}
	co, c := w.Shape[0], w.Shape[1]
	c1, co1 := tensor.C1Of(c), tensor.C1Of(co)
	out := tensor.New(c1*p.Kh*p.Kw, co1, isa.FractalPatches, isa.FractalC0)
	for oc := 0; oc < co; oc++ {
		for ic := 0; ic < c; ic++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					k := (ic/tensor.C0)*p.Kh*p.Kw + xk*p.Kw + yk
					out.Set(w.At(oc, ic, xk, yk), k, oc/tensor.C0, ic%tensor.C0, oc%tensor.C0)
				}
			}
		}
	}
	return out
}

// bindConv validates and packs the (in, weights) inputs of a forward
// convolution plan compiled for co x c logical channels.
func bindConv(p isa.ConvParams, co, c int) bindFunc {
	c1 := tensor.C1Of(c)
	return func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs("conv2d_im2col_cube", 2, inputs); err != nil {
			return nil, err
		}
		in, weights := inputs[0], inputs[1]
		if len(in.Shape) != 5 || in.Shape[0] != 1 || in.Shape[4] != tensor.C0 {
			return nil, fmt.Errorf("ops: conv wants a (1,C1,H,W,%d) input, got %v", tensor.C0, in.Shape)
		}
		if in.Shape[2] != p.Ih || in.Shape[3] != p.Iw {
			return nil, fmt.Errorf("ops: conv input %v does not match params (%d,%d)", in.Shape, p.Ih, p.Iw)
		}
		if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
			return nil, fmt.Errorf("ops: conv wants (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
		}
		if weights.Shape[0] != co || weights.Shape[1] != c {
			return nil, fmt.Errorf("ops: conv plan compiled for (Co,C)=(%d,%d) weights, got %v", co, c, weights.Shape)
		}
		if in.Shape[1] != c1 {
			return nil, fmt.Errorf("ops: weight channels %d inconsistent with input C1=%d", c, in.Shape[1])
		}
		return []*tensor.Tensor{in, PackWeightsFractal(weights, p)}, nil
	}
}

// PlanConv2D compiles convolution on the Cube unit for co x c logical
// channels, the primary use the Im2Col instruction was designed for
// (§II-A, §III-C): patches are loaded from L1 into L0A with Im2Col in
// repeat mode 0 (one instruction per 16-patch fractal covering every
// (c1, xk, yk)), weights stream into L0B, the MMAD accumulates in fp32 in
// L0C, and the result converts back to Float16 on its way through the
// Unified Buffer.
//
// Run takes an input of shape (1, C1, Ih, Iw, C0) and (Co, C, Kh, Kw)
// weights, and returns a (1, Co1, Oh, Ow, C0) result.
func PlanConv2D(spec Spec, p isa.ConvParams, co, c int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.AutoSchedule {
		// The Cube-unit planner exposes no searchable vector-schedule axes;
		// compile the hand-written lowering and record the degenerate search.
		spec.AutoSchedule = false
		pl, err := PlanConv2D(spec, p, co, c)
		if err == nil {
			attachNoSearchReport(pl, "conv2d_im2col_cube",
				"conv2d_im2col_cube exposes no searchable schedule axes: Cube-unit channel tiling, L0 band split and MMAD accumulation order are fixed")
		}
		return pl, err
	}
	b := newPlanner("conv2d_im2col_cube", spec, p)
	core := b.core
	c1 := tensor.C1Of(c)

	kDim := c1 * p.Kh * p.Kw // fractal rows of the im2col matrix
	nDim := tensor.C1Of(co)  // fractal columns of the weight matrix
	oh, ow := p.OutDims()
	patches := p.Patches()
	fracs := p.Fractals()
	inBytes := c1 * p.Ih * p.Iw * Block
	wBytes := kDim * nDim * isa.FractalBytes

	if wBytes > core.Mem.Space(isa.L0B).Free() {
		return nil, fmt.Errorf("ops: conv weights (%d bytes) exceed L0B; tile Co/C further", wBytes)
	}

	inGM, err := b.input(inBytes)
	if err != nil {
		return nil, err
	}
	wGM, err := b.input(wBytes)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(nDim * patches * Block)
	if err != nil {
		return nil, err
	}
	l1In, err := core.Mem.Space(isa.L1).Alloc(inBytes)
	if err != nil {
		return nil, err
	}
	l1W, err := core.Mem.Space(isa.L1).Alloc(wBytes)
	if err != nil {
		return nil, err
	}
	l0b := core.Mem.Space(isa.L0B).MustAlloc(wBytes)

	// Patch-fractal band sized by L0A, L0C and the UB staging area.
	const fp32Frac = isa.FractalPatches * isa.FractalC0 * 4
	mBandMax := min(
		core.Mem.Space(isa.L0A).Free()/(kDim*isa.FractalBytes),
		core.Mem.Space(isa.L0C).Free()/(nDim*fp32Frac),
	)
	mBandMax = min(mBandMax, ubAvail(core)/(nDim*isa.FractalBytes))
	mBand := min(mBandMax, fracs)
	if mBand < 1 {
		return nil, fmt.Errorf("ops: conv K=%d N=%d does not fit the L0 buffers; tile channels further", kDim, nDim)
	}
	l0a := core.Mem.Space(isa.L0A).MustAlloc(mBand * kDim * isa.FractalBytes)
	l0c := core.Mem.Space(isa.L0C).MustAlloc(mBand * nDim * fp32Frac)
	ubOut := core.Mem.Space(isa.UB).MustAlloc(mBand * nDim * isa.FractalBytes)

	prog := cce.New("conv2d_im2col_cube")
	prog.EmitCopy(isa.GM, inGM, isa.L1, l1In, inBytes)
	prog.EmitCopy(isa.GM, wGM, isa.L1, l1W, wBytes)
	prog.EmitCopy(isa.L1, l1W, isa.L0B, l0b, wBytes)

	for m0 := 0; m0 < fracs; m0 += mBand {
		mb := min(mBand, fracs-m0)
		// Im2Col in repeat mode 0: per patch fractal, one instruction
		// walks every (c1, xk, yk) and deposits K contiguous fractals —
		// exactly the row-major (m, k) operand layout MMAD consumes.
		for m := 0; m < mb; m++ {
			rep := 0
			for _, r := range isa.SplitRepeat(kDim) {
				c1Idx := rep / (p.Kh * p.Kw)
				kpos := rep % (p.Kh * p.Kw)
				prog.Emit(&isa.Im2ColInstr{
					SrcBuf: isa.L1, SrcAddr: l1In,
					DstBuf: isa.L0A, DstAddr: l0a + (m*kDim+rep)*isa.FractalBytes,
					P: p, C1Len: c1, C1Idx: c1Idx,
					Xk: kpos / p.Kw, Yk: kpos % p.Kw,
					Patch0:     (m0 + m) * isa.FractalPatches,
					RepeatMode: isa.Im2ColRepeatKernel, Repeat: r,
				})
				rep += r
			}
		}
		prog.Emit(&isa.MmadInstr{AAddr: l0a, BAddr: l0b, CAddr: l0c, M: mb, K: kDim, N: nDim})
		// Stage fp32 fractals to the UB as Float16, then store per output
		// channel block.
		for m := 0; m < mb; m++ {
			for n := 0; n < nDim; n++ {
				prog.Emit(&isa.ConvCopyInstr{
					SrcAddr: l0c + (m*nDim+n)*fp32Frac,
					DstAddr: ubOut + (n*mBand+m)*isa.FractalBytes,
					Elems:   isa.FractalPatches * isa.FractalC0,
				})
			}
		}
		valid := min(patches, (m0+mb)*isa.FractalPatches) - m0*isa.FractalPatches
		for n := 0; n < nDim; n++ {
			prog.EmitCopy(isa.UB, ubOut+n*mBand*isa.FractalBytes,
				isa.GM, outGM+(n*patches+m0*isa.FractalPatches)*Block, valid*Block)
		}
	}
	b.output(outGM, 1, nDim, oh, ow, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = bindConv(p, co, c)
	return pl, nil
}

// Conv2DIm2colCube computes convolution on the Cube unit as a one-shot
// call. in has shape (1, C1, Ih, Iw, C0); weights (Co, C, Kh, Kw). The
// result has shape (1, Co1, Oh, Ow, C0).
//
// Deprecated: compile once with PlanConv2D (or a PlanCache) and replay the
// plan per tile; this wrapper compiles through SharedPlans and runs in one
// call.
func Conv2DIm2colCube(core *aicore.Core, in, weights *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
		return nil, nil, fmt.Errorf("ops: conv wants (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
	}
	pl, err := SharedPlans.Conv2D(trace.Ctx{}, SpecFor(core), p, weights.Shape[0], weights.Shape[1])
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in, weights)
}
