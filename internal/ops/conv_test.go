package ops

import (
	"math/rand"
	"testing"

	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func convTolerance(a, b *tensor.Tensor, tol float64, t *testing.T, label string) {
	t.Helper()
	if d := tensor.MaxAbsDiff(a, b); d > tol {
		t.Errorf("%s: max diff %v > %v", label, d, tol)
	}
}

func TestConvMatchesReference(t *testing.T) {
	cases := []struct {
		p     isa.ConvParams
		c, co int
	}{
		{isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}, 16, 16},
		{isa.ConvParams{Ih: 12, Iw: 12, Kh: 3, Kw: 3, Sh: 1, Sw: 1}, 16, 8},
		{isa.ConvParams{Ih: 10, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1}, 32, 20},
		{isa.ConvParams{Ih: 14, Iw: 9, Kh: 2, Kw: 3, Sh: 2, Sw: 3}, 7, 33},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.c + tc.co)))
		in := tensor.New(1, tensor.C1Of(tc.c), tc.p.Ih, tc.p.Iw, tensor.C0)
		in.FillRandom(rng, 1)
		// Zero channel padding beyond c, as a real fractal input has.
		for ch := tc.c; ch < tensor.C1Of(tc.c)*tensor.C0; ch++ {
			for h := 0; h < tc.p.Ih; h++ {
				for w := 0; w < tc.p.Iw; w++ {
					in.Set(0, 0, ch/tensor.C0, h, w, ch%tensor.C0)
				}
			}
		}
		weights := tensor.New(tc.co, tc.c, tc.p.Kh, tc.p.Kw)
		weights.FillRandom(rng, 1)

		got, st, err := Conv2DIm2colCube(newTestCore(), in, weights, tc.p)
		if err != nil {
			t.Fatalf("%+v: %v", tc.p, err)
		}
		want := ref.Conv2D(in, weights, tc.p)
		// The Cube accumulates fp32 in a different association order than
		// the reference; one fp16 ULP at magnitude ~Kh*Kw*C is the bound.
		convTolerance(got, want, 0.5, t, "conv")
		if st.PipeInstrs[isa.PipeCube] == 0 {
			t.Error("conv did not use the Cube unit")
		}
		if st.PipeInstrs[isa.PipeMTE1] == 0 {
			t.Error("conv did not use Im2Col loads")
		}
	}
}

func TestConvIdentity(t *testing.T) {
	// 1x1 kernel, identity weight matrix on 16 channels: output == input.
	p := isa.ConvParams{Ih: 6, Iw: 6, Kh: 1, Kw: 1, Sh: 1, Sw: 1}
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(1, 1, 6, 6, tensor.C0)
	in.FillRandom(rng, 2)
	w := tensor.New(16, 16, 1, 1)
	for i := 0; i < 16; i++ {
		w.Set(0x3c00, i, i, 0, 0) // 1.0
	}
	got, _, err := Conv2DIm2colCube(newTestCore(), in, w, p)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 6; h++ {
		for wi := 0; wi < 6; wi++ {
			for c0 := 0; c0 < 16; c0++ {
				if got.At(0, 0, h, wi, c0) != in.At(0, 0, h, wi, c0) {
					t.Fatalf("identity conv mismatch at (%d,%d,%d)", h, wi, c0)
				}
			}
		}
	}
}

func TestConvRejectsOversizedWeights(t *testing.T) {
	// K*N fractals beyond L0B capacity must be rejected, not mis-scheduled.
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 1, Sw: 1}
	in := tensor.New(1, 8, 8, 8, tensor.C0)
	w := tensor.New(256, 128, 3, 3) // 72 K-fractals x 16 N-fractals > 64 KiB
	if _, _, err := Conv2DIm2colCube(newTestCore(), in, w, p); err == nil {
		t.Error("oversized weights accepted")
	}
}

func TestPackWeightsFractal(t *testing.T) {
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	w := tensor.New(3, 18, 2, 2)
	w.FillSeq()
	f := PackWeightsFractal(w, p)
	if f.Shape[0] != 2*2*2 || f.Shape[1] != 1 {
		t.Fatalf("fractal shape %v", f.Shape)
	}
	// Spot-check: weights[oc=2, ic=17, xk=1, yk=0] lands in fractal
	// k = (17/16)*4 + 1*2 + 0 = 6, row 17%16=1, col 2.
	if f.At(6, 0, 1, 2) != w.At(2, 17, 1, 0) {
		t.Error("weight packing misplaced an element")
	}
	// Column padding beyond Co is zero.
	if f.At(0, 0, 0, 5) != 0 {
		t.Error("Co padding not zero")
	}
}
