package ops

import (
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// TestHeadlineRatios147 pins the calibrated timing model to the paper's
// headline results on the largest InceptionV3 input (147,147,64): speedups
// of 3.2x (forward, Fig. 7a), 5x (forward + argmax, Fig. 7b) and 5.8x
// (backward, Fig. 7c). The simulator is not the authors' testbed, so the
// assertion is a band around each paper value, wide enough to survive
// schedule tweaks but tight enough to catch a broken cost model.
func TestHeadlineRatios147(t *testing.T) {
	p := isa.ConvParams{Ih: 147, Iw: 147, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(42, p)

	ratio := func(slow, fast int64) float64 { return float64(slow) / float64(fast) }
	within := func(name string, got, paper, slack float64) {
		t.Helper()
		if got < paper-slack || got > paper+slack {
			t.Errorf("%s speedup %.2fx outside %.1fx +- %.1fx", name, got, paper, slack)
		}
		t.Logf("%s: measured %.2fx (paper %.1fx)", name, got, paper)
	}

	_, stFwdStd, err := MaxPoolFwdStandard(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	_, stFwdIm, err := MaxPoolFwdIm2col(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	within("forward (Fig. 7a)", ratio(stFwdStd.Cycles, stFwdIm.Cycles), 3.2, 1.2)

	_, _, stArgStd, err := MaxPoolFwdArgmaxStandard(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	_, _, stArgIm, err := MaxPoolFwdArgmaxIm2col(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	within("forward+argmax (Fig. 7b)", ratio(stArgStd.Cycles, stArgIm.Cycles), 5.0, 2.0)

	mask := ref.ArgmaxMask(in, p)
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	grad.Fill(fp16.One)
	_, stBwdStd, err := MaxPoolBwdStandard(newTestCore(), mask, grad, p)
	if err != nil {
		t.Fatal(err)
	}
	_, stBwdCi, err := MaxPoolBwdCol2im(newTestCore(), mask, grad, p)
	if err != nil {
		t.Fatal(err)
	}
	within("backward (Fig. 7c)", ratio(stBwdStd.Cycles, stBwdCi.Cycles), 5.8, 2.0)
}
