package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// PlanConv2DBackwardWeights compiles the weight gradient of a convolution
// for co x c logical channels: dW = dY^T x im2col(x), contracted over the
// output patches. Three SCU/Cube features cooperate:
//
//   - Im2Col loads (repeat mode 0) stream im2col(x) fractals into L0B —
//     the same loads the forward pass uses for L0A (§III-C);
//   - the SCU's matrix-tile transposition (§III-A) turns dY fractals into
//     dY^T fractals on their way into L0A;
//   - MMAD accumulates the patch contraction in fp32 across patch bands.
//
// Run takes a (1, Co1, Oh, Ow, C0) gradient and a (1, C1, Ih, Iw, C0)
// input, and returns the (Co, C, Kh, Kw) weight gradient.
func PlanConv2DBackwardWeights(spec Spec, p isa.ConvParams, co, c int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.AutoSchedule {
		// No searchable schedule axes on the Cube unit; see PlanConv2D.
		spec.AutoSchedule = false
		pl, err := PlanConv2DBackwardWeights(spec, p, co, c)
		if err == nil {
			attachNoSearchReport(pl, "conv2d_bwd_weights",
				"conv2d_bwd_weights exposes no searchable schedule axes: Cube-unit channel tiling and MMAD accumulation order are fixed")
		}
		return pl, err
	}
	b := newPlanner("conv2d_bwd_weights", spec, p)
	core := b.core
	oh, ow := p.OutDims()
	co1, c1 := tensor.C1Of(co), tensor.C1Of(c)

	patches := p.Patches()
	padded := p.PaddedPatches()
	fracs := p.Fractals()
	nMM := c1 * p.Kh * p.Kw
	const fp32Frac = isa.FractalPatches * isa.FractalC0 * 4
	gpadBytes := co1 * padded * Block
	xBytes := c1 * p.Ih * p.Iw * Block

	gradGM, err := b.input(gpadBytes)
	if err != nil {
		return nil, err
	}
	xGM, err := b.input(xBytes)
	if err != nil {
		return nil, err
	}
	dwGM, err := core.Mem.Space(isa.GM).Alloc(co1 * nMM * isa.FractalBytes)
	if err != nil {
		return nil, err
	}
	l1Grad, err := core.Mem.Space(isa.L1).Alloc(gpadBytes)
	if err != nil {
		return nil, err
	}
	l1X, err := core.Mem.Space(isa.L1).Alloc(xBytes)
	if err != nil {
		return nil, err
	}

	// Patch-fractal band bounded by L0A (Co1 x band) and L0B (band x nMM);
	// L0C holds the full Co1 x nMM accumulator.
	if co1*nMM*fp32Frac > core.Mem.Space(isa.L0C).Free() {
		return nil, fmt.Errorf("ops: conv dW accumulator Co1=%d N=%d exceeds L0C; tile channels further", co1, nMM)
	}
	mBand := min(
		core.Mem.Space(isa.L0A).Free()/(co1*isa.FractalBytes),
		core.Mem.Space(isa.L0B).Free()/(nMM*isa.FractalBytes),
	)
	mBand = min(mBand, fracs)
	if mBand < 1 {
		return nil, fmt.Errorf("ops: conv dW Co1=%d N=%d does not fit L0A/L0B; tile channels further", co1, nMM)
	}
	if co1*nMM*isa.FractalBytes > ubAvail(core) {
		return nil, fmt.Errorf("ops: conv dW staging exceeds the UB; tile channels further")
	}
	l0a := core.Mem.Space(isa.L0A).MustAlloc(co1 * mBand * isa.FractalBytes)
	l0b := core.Mem.Space(isa.L0B).MustAlloc(mBand * nMM * isa.FractalBytes)
	l0c := core.Mem.Space(isa.L0C).MustAlloc(co1 * nMM * fp32Frac)
	ubOut := core.Mem.Space(isa.UB).MustAlloc(co1 * nMM * isa.FractalBytes)

	prog := cce.New("conv2d_bwd_weights")
	prog.EmitCopy(isa.GM, gradGM, isa.L1, l1Grad, gpadBytes)
	prog.EmitCopy(isa.GM, xGM, isa.L1, l1X, xBytes)

	for m0 := 0; m0 < fracs; m0 += mBand {
		mb := min(mBand, fracs-m0)
		// A = dY^T: one transpose stream per Co1 slice.
		for k := 0; k < co1; k++ {
			prog.Emit(&isa.TransposeInstr{
				SrcBuf: isa.L1, SrcAddr: l1Grad + (k*padded+m0*isa.FractalPatches)*Block,
				DstBuf: isa.L0A, DstAddr: l0a + k*mb*isa.FractalBytes,
				Repeat: mb,
			})
		}
		// B = im2col(x): one mode-0 Im2Col per patch fractal, walking every
		// (c1, xk, yk) — the row-major (pf, n) operand layout.
		for m := 0; m < mb; m++ {
			rep := 0
			for _, r := range isa.SplitRepeat(nMM) {
				c1Idx := rep / (p.Kh * p.Kw)
				kpos := rep % (p.Kh * p.Kw)
				prog.Emit(&isa.Im2ColInstr{
					SrcBuf: isa.L1, SrcAddr: l1X,
					DstBuf: isa.L0B, DstAddr: l0b + (m*nMM+rep)*isa.FractalBytes,
					P: p, C1Len: c1, C1Idx: c1Idx,
					Xk: kpos / p.Kw, Yk: kpos % p.Kw,
					Patch0:     (m0 + m) * isa.FractalPatches,
					RepeatMode: isa.Im2ColRepeatKernel, Repeat: r,
				})
				rep += r
			}
		}
		prog.Emit(&isa.MmadInstr{
			AAddr: l0a, BAddr: l0b, CAddr: l0c,
			M: co1, K: mb, N: nMM,
			Accumulate: m0 > 0, // first band initializes, later bands add
		})
	}
	// Stage the accumulated dW fractals through the UB and store them.
	for i := 0; i < co1*nMM; i++ {
		prog.Emit(&isa.ConvCopyInstr{
			SrcAddr: l0c + i*fp32Frac,
			DstAddr: ubOut + i*isa.FractalBytes,
			Elems:   isa.FractalPatches * isa.FractalC0,
		})
	}
	prog.EmitCopy(isa.UB, ubOut, isa.GM, dwGM, co1*nMM*isa.FractalBytes)

	b.output(dwGM, co1, nMM, isa.FractalPatches, isa.FractalC0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs("conv2d_bwd_weights", 2, inputs); err != nil {
			return nil, err
		}
		grad, x := inputs[0], inputs[1]
		if len(grad.Shape) != 5 || grad.Shape[0] != 1 || grad.Shape[1] != co1 || grad.Shape[2] != oh || grad.Shape[3] != ow {
			return nil, fmt.Errorf("ops: conv dW wants (1,%d,%d,%d,%d) gradients, got %v", co1, oh, ow, tensor.C0, grad.Shape)
		}
		if len(x.Shape) != 5 || x.Shape[0] != 1 || x.Shape[1] != c1 || x.Shape[2] != p.Ih || x.Shape[3] != p.Iw {
			return nil, fmt.Errorf("ops: conv dW wants (1,%d,%d,%d,%d) inputs, got %v", c1, p.Ih, p.Iw, tensor.C0, x.Shape)
		}
		return []*tensor.Tensor{padGrad(grad, ow, patches, padded), x}, nil
	}
	// Unpack the (co1, n, 16, 16) fractal grid into (Co, C, Kh, Kw).
	pl.finish = func(outs []*tensor.Tensor) []*tensor.Tensor {
		frac := outs[0]
		dw := tensor.New(co, c, p.Kh, p.Kw)
		for oc := 0; oc < co; oc++ {
			for ic := 0; ic < c; ic++ {
				for xk := 0; xk < p.Kh; xk++ {
					for yk := 0; yk < p.Kw; yk++ {
						n := ((ic/tensor.C0)*p.Kh+xk)*p.Kw + yk
						dw.Set(frac.At(oc/tensor.C0, n, oc%tensor.C0, ic%tensor.C0), oc, ic, xk, yk)
					}
				}
			}
		}
		return []*tensor.Tensor{dw}
	}
	return pl, nil
}

// Conv2DBackwardWeights computes the weight gradient of a convolution as a
// one-shot call. grad has shape (1, Co1, Oh, Ow, C0); x has shape
// (1, C1, Ih, Iw, C0); the result has the (Co, C, Kh, Kw) weight layout
// for co x c logical channels.
//
// Deprecated: compile once with PlanConv2DBackwardWeights (or a PlanCache)
// and replay the plan per tile; this wrapper compiles through SharedPlans
// and runs in one call.
func Conv2DBackwardWeights(core *aicore.Core, grad, x *tensor.Tensor, p isa.ConvParams, co, c int) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.Conv2DBackwardWeights(trace.Ctx{}, SpecFor(core), p, co, c)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, grad, x)
}
