package ops

// Static-verification coverage: every kernel constructor in this package
// must emit programs that lint clean (internal/lint), both under the
// implicit-sync contract the raw programs are written against and under
// explicit semantics after cce.AutoSync inserts the flags. This is the
// acceptance gate the verifier promises: zero diagnostics on every
// built-in kernel, and guaranteed findings once a flag or a bound is
// broken on purpose.

import (
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

// lintGrid keeps the quadratic passes affordable on the standard-lowering
// variants (which emit one instruction per pooling window) while still
// covering strides, padding, odd shapes and a real InceptionV3 tile.
var lintGrid = []isa.ConvParams{
	{Ih: 20, Iw: 20, Kh: 2, Kw: 2, Sh: 2, Sw: 2},
	{Ih: 17, Iw: 17, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	{Ih: 35, Iw: 35, Kh: 3, Kw: 3, Sh: 2, Sw: 2}, // InceptionV3 input 3
}

// captureCore returns a default core that records every program handed to
// Run/RunExplicit, the same hook cmd/davinci-lint uses.
func captureCore() (*aicore.Core, *[]*cce.Program) {
	core := newTestCore()
	progs := &[]*cce.Program{}
	core.OnProgram = func(p *cce.Program) { *progs = append(*progs, p) }
	return core, progs
}

// assertProgsClean lints every captured program in both modes and fails on
// any diagnostic, warnings included.
func assertProgsClean(t *testing.T, label string, progs []*cce.Program) {
	t.Helper()
	if len(progs) == 0 {
		t.Fatalf("%s: no programs captured", label)
	}
	for _, prog := range progs {
		for _, d := range lint.CheckImplicit(prog) {
			t.Errorf("%s: %s (implicit): %s", label, prog.Name, d)
		}
		for _, d := range lint.Check(cce.AutoSync(prog)) {
			t.Errorf("%s: %s (explicit, autosync): %s", label, prog.Name, d)
		}
	}
}

func TestPoolingKernelsLintClean(t *testing.T) {
	for _, p := range lintGrid {
		in := randTile(int64(p.Ih*1000+p.Iw), p)
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		grad.FillRandom(rand.New(rand.NewSource(int64(p.Ih))), 4)

		for name, fn := range MaxForward {
			core, progs := captureCore()
			if _, _, err := fn(core, in, p); err != nil {
				t.Fatalf("max/%s %+v: %v", name, p, err)
			}
			assertProgsClean(t, "max/"+name, *progs)
		}
		for name, fn := range MaxForwardArgmax {
			core, progs := captureCore()
			if _, _, _, err := fn(core, in, p); err != nil {
				t.Fatalf("argmax/%s %+v: %v", name, p, err)
			}
			assertProgsClean(t, "argmax/"+name, *progs)
		}
		for name, fn := range MaxBackward {
			core, progs := captureCore()
			if _, _, err := fn(core, mask, grad, p); err != nil {
				t.Fatalf("maxbwd/%s %+v: %v", name, p, err)
			}
			assertProgsClean(t, "maxbwd/"+name, *progs)
		}
		for name, fn := range AvgForward {
			core, progs := captureCore()
			if _, _, err := fn(core, in, p); err != nil {
				t.Fatalf("avg/%s %+v: %v", name, p, err)
			}
			assertProgsClean(t, "avg/"+name, *progs)
		}
		for _, useCol2im := range []bool{false, true} {
			core, progs := captureCore()
			if _, _, err := AvgPoolBackward(core, grad, p, useCol2im); err != nil {
				t.Fatalf("avgbwd/col2im=%v %+v: %v", useCol2im, p, err)
			}
			assertProgsClean(t, "avgbwd", *progs)
		}
	}
}

func TestCubeKernelsLintClean(t *testing.T) {
	p := isa.ConvParams{Ih: 10, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	c, co := 32, 20
	rng := rand.New(rand.NewSource(42))
	in := tensor.New(1, tensor.C1Of(c), p.Ih, p.Iw, tensor.C0)
	in.FillRandom(rng, 1)
	weights := tensor.New(co, c, p.Kh, p.Kw)
	weights.FillRandom(rng, 1)
	oh, ow := p.OutDims()
	grad := tensor.New(1, tensor.C1Of(co), oh, ow, tensor.C0)
	grad.FillRandom(rng, 1)

	core, progs := captureCore()
	if _, _, err := Conv2DIm2colCube(core, in, weights, p); err != nil {
		t.Fatalf("conv fwd: %v", err)
	}
	assertProgsClean(t, "conv/fwd", *progs)

	core, progs = captureCore()
	if _, _, err := Conv2DBackwardData(core, grad, weights, p, c); err != nil {
		t.Fatalf("conv bwd data: %v", err)
	}
	assertProgsClean(t, "conv/bwd-data", *progs)

	core, progs = captureCore()
	if _, _, err := Conv2DBackwardWeights(core, grad, in, p, co, c); err != nil {
		t.Fatalf("conv bwd weights: %v", err)
	}
	assertProgsClean(t, "conv/bwd-weights", *progs)

	pool := isa.ConvParams{Ih: 20, Iw: 20, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	core, progs = captureCore()
	if _, _, err := AvgPoolFwdCube(core, randTile(3, pool), pool); err != nil {
		t.Fatalf("avg cube: %v", err)
	}
	assertProgsClean(t, "avg/cube", *progs)
}

// TestWorkloadProgramsLintClean runs the Im2col-family kernels — whose
// program sizes stay small at production shapes — over every Table I layer
// and lints everything they emit.
func TestWorkloadProgramsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("table-wide lint sweep")
	}
	for _, l := range workloads.TableI {
		p := l.Params()
		in := randTile(int64(l.H*10+l.W), p)
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		grad.FillRandom(rand.New(rand.NewSource(int64(l.H))), 4)

		label := l.Network + "/" + string(rune('0'+l.Index))

		core, progs := captureCore()
		if _, _, err := MaxPoolFwdIm2col(core, in, p); err != nil {
			t.Fatalf("%s fwd: %v", label, err)
		}
		assertProgsClean(t, label+"/im2col", *progs)

		core, progs = captureCore()
		if _, _, _, err := MaxPoolFwdArgmaxIm2col(core, in, p); err != nil {
			t.Fatalf("%s argmax: %v", label, err)
		}
		assertProgsClean(t, label+"/argmax-im2col", *progs)

		core, progs = captureCore()
		if _, _, err := MaxPoolBwdCol2im(core, mask, grad, p); err != nil {
			t.Fatalf("%s bwd: %v", label, err)
		}
		assertProgsClean(t, label+"/col2im", *progs)

		core, progs = captureCore()
		if _, _, err := AvgPoolFwdIm2col(core, in, p); err != nil {
			t.Fatalf("%s avg: %v", label, err)
		}
		assertProgsClean(t, label+"/avg-im2col", *progs)
	}
}

// capturedIm2colProgram returns one AutoSync'd program from the Im2col
// forward kernel at the InceptionV3 input-3 shape: the seed for the
// break-it acceptance tests below.
func capturedIm2colProgram(t *testing.T) *cce.Program {
	t.Helper()
	p := isa.ConvParams{Ih: 35, Iw: 35, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	core, progs := captureCore()
	if _, _, err := MaxPoolFwdIm2col(core, randTile(5, p), p); err != nil {
		t.Fatal(err)
	}
	if len(*progs) == 0 {
		t.Fatal("no program captured")
	}
	return cce.AutoSync((*progs)[0])
}

// TestLintFlagsRemovedWait deletes the first wait_flag from a synced
// kernel program: the hazard pass must report the now-uncovered
// cross-pipe dependency.
func TestLintFlagsRemovedWait(t *testing.T) {
	prog := capturedIm2colProgram(t)
	broken := cce.New(prog.Name + "-no-wait")
	removed := false
	for _, in := range prog.Instrs {
		if _, ok := in.(*isa.WaitFlagInstr); ok && !removed {
			removed = true
			continue
		}
		broken.Emit(in)
	}
	if !removed {
		t.Fatal("program has no wait_flag to remove")
	}
	diags := lint.Check(broken)
	var hazard, sync bool
	for _, d := range diags {
		switch d.Pass {
		case "hazard":
			hazard = true
		case "sync":
			sync = true
		}
	}
	if !hazard {
		t.Errorf("removed wait_flag not caught by hazard pass; diags: %v", diags)
	}
	if !sync {
		t.Errorf("removed wait_flag leaves an unconsumed set_flag the sync pass must flag; diags: %v", diags)
	}
}

// TestLintFlagsOutOfBounds bumps one scratch-pad copy destination past the
// buffer capacity: the bounds pass must report the overflow.
func TestLintFlagsOutOfBounds(t *testing.T) {
	prog := capturedIm2colProgram(t)
	caps := buffer.Config{}.Capacities()
	broken := cce.New(prog.Name + "-oob")
	bumped := false
	for _, in := range prog.Instrs {
		if cp, ok := in.(*isa.CopyInstr); ok && !bumped && cp.DstBuf != isa.GM {
			moved := *cp
			moved.DstAddr = caps[moved.DstBuf] - isa.BlockBytes
			broken.Emit(&moved)
			bumped = true
			continue
		}
		broken.Emit(in)
	}
	if !bumped {
		t.Fatal("program has no scratch-pad copy to displace")
	}
	found := false
	for _, d := range lint.Check(broken) {
		if d.Pass == "bounds" && d.Sev == lint.SevError {
			found = true
		}
	}
	if !found {
		t.Error("displaced UB copy not caught by bounds pass")
	}
}

// TestHazardPassIndependentOfAutoSync strips every flag AutoSync inserted:
// the hazard pass must rediscover at least one uncovered cross-pipe
// dependency entirely from the data-flow, proving it does not merely
// parrot AutoSync's own bookkeeping.
func TestHazardPassIndependentOfAutoSync(t *testing.T) {
	prog := capturedIm2colProgram(t)
	stripped := cce.New(prog.Name + "-stripped")
	had := false
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr, *isa.WaitFlagInstr:
			had = true
			continue
		}
		stripped.Emit(in)
	}
	if !had {
		t.Fatal("AutoSync inserted no flags")
	}
	hazards := 0
	for _, d := range lint.Check(stripped) {
		if d.Pass == "hazard" && d.Sev == lint.SevError {
			hazards++
		}
	}
	if hazards == 0 {
		t.Error("stripping all flags produced no hazard diagnostics")
	}
}
