package ops

import (
	"davinci/internal/aicore"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// planAvgPoolFwdCube compiles average pooling on the Cube unit by mapping
// it to convolution — the paper's §VIII future-work direction, following
// the Suita et al. observation (§VII) that Avgpool "can be mapped to
// convolution where the kernel's weights are equal to 1/(Kh*Kw)". Each C0
// channel uses a diagonal weight matrix, so channels stay independent; the
// Im2Col loads feed L0A in repeat mode 0 and the MMAD accumulates in fp32,
// which makes this variant *more* accurate than the Float16 vector-sum
// reduction (results may differ from the vector kernels by final-rounding
// ULPs).
//
// Unlike the vector variants this one cannot produce Maxpool ("CNNs tend
// to use Maxpool, which cannot be fused in the same way", §VII), so it
// complements rather than replaces the Im2col vector kernel. The plan is
// the conv plan with a bind step that synthesizes the diagonal weights, so
// Run takes just (in) like the other forward variants.
func planAvgPoolFwdCube(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	// The Cube lowering delegates its schedule to the conv planner, which
	// exposes no vector-schedule axes; only the mode itself is searchable.
	if err := noKnob("avgpool_fwd_cube", sp.Band, "band"); err != nil {
		return nil, err
	}
	if err := noKnob("avgpool_fwd_cube", sp.Buffers, "buffers"); err != nil {
		return nil, err
	}
	if err := noKnob("avgpool_fwd_cube", sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob("avgpool_fwd_cube", sp.RepeatChunk, "repeat_chunk"); err != nil {
		return nil, err
	}
	if err := noKnob("avgpool_fwd_cube", sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob("avgpool_fwd_cube", sp.Gather, "gather"); err != nil {
		return nil, err
	}
	spec.AutoSchedule = false
	pl, err := PlanConv2D(spec, p, tensor.C0, tensor.C0)
	if err != nil {
		return nil, err
	}
	pl.Sched = ScheduleParams{Mode: sp.Mode}
	convBind := pl.bind
	pl.Name = "avgpool_fwd_cube"
	pl.bind = func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs("avgpool_fwd_cube", 1, inputs); err != nil {
			return nil, err
		}
		in := inputs[0]
		if err := checkTile(in, p); err != nil {
			return nil, err
		}
		// Diagonal 16x16-channel weights scaled by 1/(Kh*Kw).
		w := tensor.New(tensor.C0, tensor.C0, p.Kh, p.Kw)
		inv := avgScale(p)
		for ch := 0; ch < tensor.C0; ch++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					w.Set(inv, ch, ch, xk, yk)
				}
			}
		}
		return convBind([]*tensor.Tensor{in, w})
	}
	return pl, nil
}

// AvgPoolFwdCube computes average pooling on the Cube unit as a one-shot
// call.
//
// Deprecated: compile once with PlanAvgPoolForward("cube", ...) (or a
// PlanCache) and replay the plan per tile; this wrapper compiles through
// SharedPlans and runs in one call.
func AvgPoolFwdCube(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.AvgPoolForward(trace.Ctx{}, "cube", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

// init registers the Cube variant alongside the vector implementations so
// benchmarks and the CLI can select it by name.
func init() {
	AvgForward["cube"] = AvgPoolFwdCube
	avgForwardPlanners["cube"] = planAvgPoolFwdCube
}
