package ops

import (
	"math/rand"
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func TestConvBackwardDataMatchesReference(t *testing.T) {
	cases := []struct {
		p     isa.ConvParams
		c, co int
	}{
		{isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}, 16, 16},
		{isa.ConvParams{Ih: 10, Iw: 12, Kh: 3, Kw: 3, Sh: 1, Sw: 1}, 16, 8},
		{isa.ConvParams{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1}, 20, 16},
		{isa.ConvParams{Ih: 12, Iw: 7, Kh: 2, Kw: 3, Sh: 2, Sw: 1}, 32, 24},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.c*100 + tc.co)))
		oh, ow := tc.p.OutDims()
		grad := tensor.New(1, tensor.C1Of(tc.co), oh, ow, tensor.C0)
		grad.FillRandom(rng, 1)
		// Zero the padded output channels, as a real upstream layer would.
		for oc := tc.co; oc < tensor.C1Of(tc.co)*tensor.C0; oc++ {
			for h := 0; h < oh; h++ {
				for w := 0; w < ow; w++ {
					grad.Set(0, 0, oc/tensor.C0, h, w, oc%tensor.C0)
				}
			}
		}
		weights := tensor.New(tc.co, tc.c, tc.p.Kh, tc.p.Kw)
		weights.FillRandom(rng, 0.5)

		got, st, err := Conv2DBackwardData(newTestCore(), grad, weights, tc.p, tc.c)
		if err != nil {
			t.Fatalf("%+v: %v", tc.p, err)
		}
		want := ref.Conv2DBackwardData(grad, weights, tc.p, tc.c)
		if d := tensor.MaxAbsDiff(got, want); d > 0.1 {
			t.Errorf("%+v c=%d co=%d: max diff %v", tc.p, tc.c, tc.co, d)
		}
		if st.PipeInstrs[isa.PipeCube] == 0 {
			t.Errorf("%+v: backward did not use the Cube unit", tc.p)
		}
		if st.PipeInstrs[isa.PipeVector] == 0 {
			t.Errorf("%+v: backward did not use Col2Im (vector pipe idle)", tc.p)
		}
	}
}

// Gradient check: for a 1x1 stride-1 convolution, backward-data is exactly
// dX = dY x W^T per position; integer-valued tensors make the comparison
// bit-exact after the known single rounding.
func TestConvBackwardDataOneByOne(t *testing.T) {
	p := isa.ConvParams{Ih: 5, Iw: 5, Kh: 1, Kw: 1, Sh: 1, Sw: 1}
	rng := rand.New(rand.NewSource(7))
	grad := tensor.New(1, 1, 5, 5, tensor.C0)
	weights := tensor.New(16, 16, 1, 1)
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
	}
	for i := 0; i < weights.Len(); i++ {
		weights.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(3))))
	}
	got, _, err := Conv2DBackwardData(newTestCore(), grad, weights, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		for w := 0; w < 5; w++ {
			for ic := 0; ic < 16; ic++ {
				var want float32
				for oc := 0; oc < 16; oc++ {
					want += grad.At(0, 0, h, w, oc).Float32() * weights.At(oc, ic, 0, 0).Float32()
				}
				if gotV := got.At(0, 0, h, w, ic).Float32(); gotV != want {
					t.Fatalf("(%d,%d,%d) = %v, want %v", h, w, ic, gotV, want)
				}
			}
		}
	}
}

// Forward/backward adjointness: <conv(x), dy> == <x, convBwd(dy)> up to
// fp16/fp32 rounding — the defining property of a correct backward pass.
func TestConvBackwardAdjointness(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	rng := rand.New(rand.NewSource(13))
	x := tensor.New(1, 1, 8, 8, tensor.C0)
	weights := tensor.New(16, 16, 3, 3)
	oh, ow := p.OutDims()
	dy := tensor.New(1, 1, oh, ow, tensor.C0)
	for i := 0; i < x.Len(); i++ {
		x.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(3))))
	}
	for i := 0; i < weights.Len(); i++ {
		weights.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(2))))
	}
	for i := 0; i < dy.Len(); i++ {
		dy.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(3))))
	}
	y, _, err := Conv2DIm2colCube(newTestCore(), x, weights, p)
	if err != nil {
		t.Fatal(err)
	}
	dx, _, err := Conv2DBackwardData(newTestCore(), dy, weights, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	var lhs, rhs float64
	for i := 0; i < y.Len(); i++ {
		lhs += fp16.ToFloat64(y.AtFlat(i)) * fp16.ToFloat64(dy.AtFlat(i))
	}
	for i := 0; i < x.Len(); i++ {
		rhs += fp16.ToFloat64(x.AtFlat(i)) * fp16.ToFloat64(dx.AtFlat(i))
	}
	diff := lhs - rhs
	if diff < 0 {
		diff = -diff
	}
	rel := diff / (1 + lhs)
	if rel > 0.02 {
		t.Errorf("adjointness violated: <y,dy>=%v, <x,dx>=%v", lhs, rhs)
	}
}

func TestConvBackwardRejectsBadShapes(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	core := newTestCore()
	w := tensor.New(16, 16, 2, 2)
	// Wrong gradient spatial extent.
	if _, _, err := Conv2DBackwardData(core, tensor.New(1, 1, 3, 3, tensor.C0), w, p, 16); err == nil {
		t.Error("bad gradient shape accepted")
	}
	// Co1 mismatch.
	if _, _, err := Conv2DBackwardData(core, tensor.New(1, 2, 4, 4, tensor.C0), w, p, 16); err == nil {
		t.Error("Co1 mismatch accepted")
	}
	// Channel count mismatch.
	if _, _, err := Conv2DBackwardData(core, tensor.New(1, 1, 4, 4, tensor.C0), w, p, 32); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestPackWeightsBackward(t *testing.T) {
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	w := tensor.New(18, 17, 2, 2)
	w.FillSeq()
	f := PackWeightsBackward(w, p)
	if f.Shape[0] != 2 || f.Shape[1] != 2*2*2 {
		t.Fatalf("fractal shape %v", f.Shape)
	}
	// weights[oc=17, ic=16, xk=0, yk=1] -> fractal (co1=1, n=(1,0,1)=5),
	// row 17%16=1, col 16%16=0.
	if f.At(1, 5, 1, 0) != w.At(17, 16, 0, 1) {
		t.Error("backward packing misplaced an element")
	}
	// Padding beyond Co/C is zero.
	if f.At(1, 0, 5, 0) != 0 {
		t.Error("Co padding not zero")
	}
}
