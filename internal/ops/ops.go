// Package ops implements the paper's contribution: DaVinci pooling kernels
// in every variant evaluated in §V–§VI, plus convolution on the Cube unit
// as the substrate the Im2Col/Col2Im instructions were designed for.
//
// Every kernel operates on one (1, 1, Ih, Iw, C0) fractal tile — the unit
// the paper's schedules assign to one AI Core after dividing the
// computation on the C1 dimension (§V-A). internal/chip parallelizes tiles
// across cores. Kernels build a cce.Program (the lowered CCE C instruction
// stream described in the paper for each variant), run it on the simulated
// core, and return the result plus timing stats.
//
// All variants share the zero-padding convention of the Im2Col instruction:
// padded positions contribute zeros (see internal/ref).
package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Block is the byte size of one C0 row (16 Float16 elements).
const Block = isa.ElemsPerBlock * fp16.Bytes

// ForwardFunc is a forward pooling kernel over one tile.
type ForwardFunc func(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error)

// ArgmaxFunc is a forward pooling kernel that also produces the argmax
// mask in the Im2Col shape (1, 1, Kh, Kw, OhOw16, C0).
type ArgmaxFunc func(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (out, mask *tensor.Tensor, st *aicore.Stats, err error)

// BackwardFunc is a backward pooling kernel: mask is in the Im2Col shape,
// grad has shape (1, 1, Oh, Ow, C0), the result has shape (1, 1, Ih, Iw, C0).
type BackwardFunc func(core *aicore.Core, mask, grad *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error)

// Registries of the evaluated implementations, keyed by the names used in
// the figures (§VI).
var (
	// MaxForward holds the four forward Maxpool implementations of Fig. 8.
	MaxForward = map[string]ForwardFunc{
		"standard":  MaxPoolFwdStandard,
		"im2col":    MaxPoolFwdIm2col,
		"expansion": MaxPoolFwdExpansion,
		"xysplit":   MaxPoolFwdXYSplit,
	}
	// MaxForwardArgmax holds the Fig. 7b implementations (forward +
	// argmax mask).
	MaxForwardArgmax = map[string]ArgmaxFunc{
		"standard": MaxPoolFwdArgmaxStandard,
		"im2col":   MaxPoolFwdArgmaxIm2col,
	}
	// MaxBackward holds the Fig. 7c implementations.
	MaxBackward = map[string]BackwardFunc{
		"standard": MaxPoolBwdStandard,
		"col2im":   MaxPoolBwdCol2im,
	}
	// AvgForward holds the Avgpool forward implementations (§V-C).
	AvgForward = map[string]ForwardFunc{
		"standard": AvgPoolFwdStandard,
		"im2col":   AvgPoolFwdIm2col,
	}
)

// checkTile validates the single-tile input convention.
func checkTile(in *tensor.Tensor, p isa.ConvParams) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(in.Shape) != 5 || in.Shape[0] != 1 || in.Shape[1] != 1 || in.Shape[4] != tensor.C0 {
		return fmt.Errorf("ops: want a (1,1,H,W,%d) tile, got %v", tensor.C0, in.Shape)
	}
	if in.Shape[2] != p.Ih || in.Shape[3] != p.Iw {
		return fmt.Errorf("ops: tile %v does not match params (%d,%d)", in.Shape, p.Ih, p.Iw)
	}
	return nil
}

// materializePadding returns the input with spatial zero padding written
// out, plus the equivalent padding-free parameters. Direct (non-Im2Col)
// kernels consume padded tiles, because only the Im2Col/Col2Im
// instructions can synthesize padding during the load (§III-C: "it is also
// possible to add padding during the Im2Col load").
func materializePadding(in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, isa.ConvParams) {
	if p.Pt == 0 && p.Pb == 0 && p.Pl == 0 && p.Pr == 0 {
		return in, p
	}
	padded := tensor.PadFractalHW(in, p.Pt, p.Pb, p.Pl, p.Pr)
	pp := p
	pp.Ih += p.Pt + p.Pb
	pp.Iw += p.Pl + p.Pr
	pp.Pt, pp.Pb, pp.Pl, pp.Pr = 0, 0, 0, 0
	return padded, pp
}

// maxBand returns the largest b in [1, limit] with need(b) <= avail, where
// need is non-decreasing. It returns 0 when even b == 1 does not fit.
func maxBand(avail, limit int, need func(int) int) int {
	if limit < 1 || need(1) > avail {
		return 0
	}
	lo, hi := 1, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if need(mid) <= avail {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ubAvail returns the allocatable UB bytes with headroom for alignment.
func ubAvail(core *aicore.Core) int {
	return core.Mem.Space(isa.UB).Free() - 8*Block
}

// errTooLarge builds the error returned when a tile cannot be scheduled.
func errTooLarge(kernel string, p isa.ConvParams) error {
	return fmt.Errorf("ops: %s: tile (%d,%d) kernel (%d,%d) does not fit the Unified Buffer even at band size 1; tile the input further",
		kernel, p.Ih, p.Iw, p.Kh, p.Kw)
}
