// Package ops implements the paper's contribution: DaVinci pooling kernels
// in every variant evaluated in §V–§VI, plus convolution on the Cube unit
// as the substrate the Im2Col/Col2Im instructions were designed for.
//
// Every kernel operates on one (1, 1, Ih, Iw, C0) fractal tile — the unit
// the paper's schedules assign to one AI Core after dividing the
// computation on the C1 dimension (§V-A). internal/chip parallelizes tiles
// across cores.
//
// Kernels are split into plan and execute (see plan.go): a plan* function
// compiles the shape-dependent schedule into an immutable Plan — the
// lowered cce.Program (the CCE C instruction stream described in the paper
// for each variant) plus its buffer layout — and Plan.Run replays it on a
// core for one tile's data, returning the result plus timing stats. The
// legacy one-shot entry points (MaxPoolFwdIm2col, ...) remain as wrappers
// that compile through the process-wide SharedPlans cache and run.
//
// All variants share the zero-padding convention of the Im2Col instruction:
// padded positions contribute zeros (see internal/ref).
package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Block is the byte size of one C0 row (16 Float16 elements).
const Block = isa.ElemsPerBlock * fp16.Bytes

// ForwardFunc is a forward pooling kernel over one tile. The registered
// implementations are thin wrappers over plans: they compile through
// SharedPlans (once per shape) and replay.
type ForwardFunc func(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error)

// ArgmaxFunc is a forward pooling kernel that also produces the argmax
// mask in the Im2Col shape (1, 1, Kh, Kw, OhOw16, C0). Registered
// implementations wrap plans, like ForwardFunc.
type ArgmaxFunc func(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (out, mask *tensor.Tensor, st *aicore.Stats, err error)

// BackwardFunc is a backward pooling kernel: mask is in the Im2Col shape,
// grad has shape (1, 1, Oh, Ow, C0), the result has shape (1, 1, Ih, Iw, C0).
// Registered implementations wrap plans, like ForwardFunc.
type BackwardFunc func(core *aicore.Core, mask, grad *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error)

// Registries of the evaluated implementations, keyed by the names used in
// the figures (§VI). Callers that replay a shape repeatedly should prefer
// the Plan* constructors (plan.go), which skip the per-call cache lookup
// and bind/validate work the wrappers pay.
var (
	// MaxForward holds the four forward Maxpool implementations of Fig. 8.
	MaxForward = map[string]ForwardFunc{
		"standard":  MaxPoolFwdStandard,
		"im2col":    MaxPoolFwdIm2col,
		"expansion": MaxPoolFwdExpansion,
		"xysplit":   MaxPoolFwdXYSplit,
	}
	// MaxForwardArgmax holds the Fig. 7b implementations (forward +
	// argmax mask).
	MaxForwardArgmax = map[string]ArgmaxFunc{
		"standard": MaxPoolFwdArgmaxStandard,
		"im2col":   MaxPoolFwdArgmaxIm2col,
	}
	// MaxBackward holds the Fig. 7c implementations.
	MaxBackward = map[string]BackwardFunc{
		"standard": MaxPoolBwdStandard,
		"col2im":   MaxPoolBwdCol2im,
	}
	// AvgForward holds the Avgpool forward implementations (§V-C).
	AvgForward = map[string]ForwardFunc{
		"standard": AvgPoolFwdStandard,
		"im2col":   AvgPoolFwdIm2col,
	}
)

// checkTile validates the single-tile input convention.
func checkTile(in *tensor.Tensor, p isa.ConvParams) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(in.Shape) != 5 || in.Shape[0] != 1 || in.Shape[1] != 1 || in.Shape[4] != tensor.C0 {
		return fmt.Errorf("ops: want a (1,1,H,W,%d) tile, got %v", tensor.C0, in.Shape)
	}
	if in.Shape[2] != p.Ih || in.Shape[3] != p.Iw {
		return fmt.Errorf("ops: tile %v does not match params (%d,%d)", in.Shape, p.Ih, p.Iw)
	}
	return nil
}

// materializePadding returns the input with spatial zero padding written
// out, plus the equivalent padding-free parameters. Direct (non-Im2Col)
// kernels consume padded tiles, because only the Im2Col/Col2Im
// instructions can synthesize padding during the load (§III-C: "it is also
// possible to add padding during the Im2Col load").
func materializePadding(in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, isa.ConvParams) {
	if p.Pt == 0 && p.Pb == 0 && p.Pl == 0 && p.Pr == 0 {
		return in, p
	}
	return tensor.PadFractalHW(in, p.Pt, p.Pb, p.Pl, p.Pr), foldPadding(p)
}

// foldPadding returns the padding-free parameters equivalent to p once the
// spatial padding has been written into the tile: the shape-only half of
// materializePadding, used at plan-compile time when no tensor exists yet.
func foldPadding(p isa.ConvParams) isa.ConvParams {
	pp := p
	pp.Ih += p.Pt + p.Pb
	pp.Iw += p.Pl + p.Pr
	pp.Pt, pp.Pb, pp.Pl, pp.Pr = 0, 0, 0, 0
	return pp
}

// wantInputs checks the input arity handed to a plan's bind step.
func wantInputs(name string, n int, inputs []*tensor.Tensor) error {
	if len(inputs) != n {
		return fmt.Errorf("ops: %s: want %d input tensor(s), got %d", name, n, len(inputs))
	}
	return nil
}

// bindTile validates the single-tile input convention for plans whose
// program consumes the raw tile (the Im2Col instruction synthesizes the
// padding during the load).
func bindTile(name string, p isa.ConvParams) bindFunc {
	return func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(name, 1, inputs); err != nil {
			return nil, err
		}
		if err := checkTile(inputs[0], p); err != nil {
			return nil, err
		}
		return inputs, nil
	}
}

// bindPaddedTile is bindTile for direct (non-Im2Col) plans, which consume
// tiles with the spatial zero padding written out.
func bindPaddedTile(name string, p isa.ConvParams) bindFunc {
	return func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(name, 1, inputs); err != nil {
			return nil, err
		}
		if err := checkTile(inputs[0], p); err != nil {
			return nil, err
		}
		padded, _ := materializePadding(inputs[0], p)
		return []*tensor.Tensor{padded}, nil
	}
}

// maxBand returns the largest b in [1, limit] with need(b) <= avail, where
// need is non-decreasing. It returns 0 when even b == 1 does not fit.
func maxBand(avail, limit int, need func(int) int) int {
	if limit < 1 || need(1) > avail {
		return 0
	}
	lo, hi := 1, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if need(mid) <= avail {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ubAvail returns the allocatable UB bytes with headroom for alignment.
func ubAvail(core *aicore.Core) int {
	return core.Mem.Space(isa.UB).Free() - 8*Block
}

// errTooLarge builds the error returned when a tile cannot be scheduled.
func errTooLarge(kernel string, p isa.ConvParams) error {
	return fmt.Errorf("ops: %s: tile (%d,%d) kernel (%d,%d) does not fit the Unified Buffer even at band size 1; tile the input further",
		kernel, p.Ih, p.Iw, p.Kh, p.Kw)
}
