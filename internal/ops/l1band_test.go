package ops

import (
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// tinyL1Core forces the banded-L1 streaming path even on small inputs.
func tinyL1Core() *aicore.Core {
	return aicore.New(buffer.Config{L1Size: 8 << 10, UBSize: 64 << 10}, nil)
}

func TestIm2colKernelsWithBandedL1(t *testing.T) {
	// 40x40x16x2B = 50 KiB input against an 8 KiB L1: several row windows.
	grid := []isa.ConvParams{
		{Ih: 40, Iw: 40, Kh: 3, Kw: 3, Sh: 2, Sw: 2},
		{Ih: 40, Iw: 40, Kh: 3, Kw: 3, Sh: 1, Sw: 1},
		{Ih: 33, Iw: 41, Kh: 2, Kw: 3, Sh: 3, Sw: 2},
		{Ih: 38, Iw: 38, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	}
	for _, p := range grid {
		in := randTile(int64(p.Ih+p.Iw), p)
		wantMax := ref.MaxPoolForward(in, p)

		got, st, err := MaxPoolFwdIm2col(tinyL1Core(), in, p)
		if err != nil {
			t.Fatalf("maxpool %+v: %v", p, err)
		}
		if tensor.MaxAbsDiff(got, wantMax) != 0 {
			t.Errorf("maxpool %+v: banded-L1 output diverges", p)
		}
		if st.PipeInstrs[isa.PipeMTE2] < 3 {
			t.Errorf("maxpool %+v: expected multiple banded loads, got %d MTE2 instrs", p, st.PipeInstrs[isa.PipeMTE2])
		}

		gotAvg, _, err := AvgPoolFwdIm2col(tinyL1Core(), in, p)
		if err != nil {
			t.Fatalf("avgpool %+v: %v", p, err)
		}
		if tensor.MaxAbsDiff(gotAvg, ref.AvgPoolForward(in, p)) != 0 {
			t.Errorf("avgpool %+v: banded-L1 output diverges", p)
		}

		outA, maskA, _, err := MaxPoolFwdArgmaxIm2col(tinyL1Core(), in, p)
		if err != nil {
			t.Fatalf("argmax %+v: %v", p, err)
		}
		if tensor.MaxAbsDiff(outA, wantMax) != 0 {
			t.Errorf("argmax %+v: banded-L1 output diverges", p)
		}
		if tensor.MaxAbsDiff(maskA, ref.ArgmaxMask(in, p)) != 0 {
			t.Errorf("argmax %+v: banded-L1 mask diverges", p)
		}
	}
}

// TestVGG224RunsWithDefaultL1 covers the Table I layer whose input
// (224x224x16x2B per tile = 1.5 MiB) exceeds the 1 MiB L1: the banded-L1
// schedule must stream it.
func TestVGG224RunsWithDefaultL1(t *testing.T) {
	if testing.Short() {
		t.Skip("large layer")
	}
	p := isa.ConvParams{Ih: 224, Iw: 224, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	rng := rand.New(rand.NewSource(224))
	in := tensor.New(1, 1, 224, 224, tensor.C0)
	for i := 0; i < in.Len(); i++ {
		in.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(64))))
	}
	got, st, err := MaxPoolFwdIm2col(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got, ref.MaxPoolForward(in, p)) != 0 {
		t.Error("VGG 224 output diverges")
	}
	// The standard kernel also runs; the k=s=(2,2) layer has no overlap, so
	// im2col still wins but by less than the k3s2 layers.
	_, stStd, err := MaxPoolFwdStandard(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles >= stStd.Cycles {
		t.Errorf("VGG 224: im2col (%d) not faster than standard (%d)", st.Cycles, stStd.Cycles)
	}
	t.Logf("VGG16 224x224: standard %d cycles, im2col (banded L1) %d cycles (%.2fx)",
		stStd.Cycles, st.Cycles, float64(stStd.Cycles)/float64(st.Cycles))
}
