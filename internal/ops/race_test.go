//go:build race

package ops

// raceEnabled reports that the race detector is instrumenting this build;
// wall-clock assertions are skipped because instrumentation skews the
// compile/replay cost ratio.
const raceEnabled = true
