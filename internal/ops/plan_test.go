package ops

import (
	"bytes"
	"sync"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// planCases enumerates one cached-plan constructor per registry variant
// (every Maxpool forward, argmax and backward variant, every Avgpool
// forward variant including the Cube mapping, both Avgpool backward
// merges, and the three convolution kernels), with ready-to-run inputs.
func planCases(t *testing.T, p isa.ConvParams) []struct {
	name   string
	get    func(c *PlanCache, spec Spec) (*Plan, error)
	inputs []*tensor.Tensor
} {
	t.Helper()
	in := randTile(7, p)
	mask := ref.ArgmaxMask(in, p)
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(i%5)))
	}
	w := tensor.New(tensor.C0, tensor.C0, p.Kh, p.Kw)
	w.Fill(fp16.FromFloat64(0.25))

	type planCase = struct {
		name   string
		get    func(c *PlanCache, spec Spec) (*Plan, error)
		inputs []*tensor.Tensor
	}
	var cases []planCase
	for _, v := range []string{"standard", "im2col", "expansion", "xysplit"} {
		variant := v
		cases = append(cases, planCase{"maxpool_fwd_" + variant,
			func(c *PlanCache, spec Spec) (*Plan, error) { return c.MaxPoolForward(trace.Ctx{}, variant, spec, p) },
			[]*tensor.Tensor{in}})
	}
	for _, v := range []string{"standard", "im2col"} {
		variant := v
		cases = append(cases, planCase{"maxpool_fwd_argmax_" + variant,
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.MaxPoolForwardArgmax(trace.Ctx{}, variant, spec, p)
			},
			[]*tensor.Tensor{in}})
		cases = append(cases, planCase{"maxpool_bwd_" + map[string]string{"standard": "standard", "im2col": "col2im"}[variant],
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.MaxPoolBackward(trace.Ctx{}, map[string]string{"standard": "standard", "im2col": "col2im"}[variant], spec, p)
			},
			[]*tensor.Tensor{mask, grad}})
	}
	for _, v := range []string{"standard", "im2col", "cube"} {
		variant := v
		cases = append(cases, planCase{"avgpool_fwd_" + variant,
			func(c *PlanCache, spec Spec) (*Plan, error) { return c.AvgPoolForward(trace.Ctx{}, variant, spec, p) },
			[]*tensor.Tensor{in}})
	}
	for _, col2im := range []bool{false, true} {
		useCol2im := col2im
		name := "avgpool_bwd_standard"
		if useCol2im {
			name = "avgpool_bwd_col2im"
		}
		cases = append(cases, planCase{name,
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.AvgPoolBackward(trace.Ctx{}, spec, p, useCol2im)
			},
			[]*tensor.Tensor{grad}})
	}
	cases = append(cases,
		planCase{"conv2d_im2col_cube",
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.Conv2D(trace.Ctx{}, spec, p, tensor.C0, tensor.C0)
			},
			[]*tensor.Tensor{in, w}},
		planCase{"conv2d_bwd_data",
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.Conv2DBackwardData(trace.Ctx{}, spec, p, tensor.C0, tensor.C0)
			},
			[]*tensor.Tensor{grad, w}},
		planCase{"conv2d_bwd_weights",
			func(c *PlanCache, spec Spec) (*Plan, error) {
				return c.Conv2DBackwardWeights(trace.Ctx{}, spec, p, tensor.C0, tensor.C0)
			},
			[]*tensor.Tensor{grad, in}},
	)
	return cases
}

// TestPlanReplayConcurrent replays one cached plan per registry variant
// from many goroutines on separate cores (run under -race) and checks
// every replay is bit-identical — outputs and cycle counts — to a cold
// compile-and-run of the same kernel. It also pins the cache accounting:
// exactly one miss compiles, every other lookup hits.
func TestPlanReplayConcurrent(t *testing.T) {
	p := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	spec := Spec{}
	const goroutines, iters = 8, 4

	for _, tc := range planCases(t, p) {
		t.Run(tc.name, func(t *testing.T) {
			// Cold path: a fresh cache, one compile, one scheduled run.
			cold, err := tc.get(NewPlanCache(), spec)
			if err != nil {
				t.Fatal(err)
			}
			baseOuts, baseStats, err := cold.Run(newTestCore(), tc.inputs...)
			if err != nil {
				t.Fatal(err)
			}

			shared := NewPlanCache()
			var wg sync.WaitGroup
			errs := make(chan error, goroutines*iters)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					core := aicore.New(buffer.Config{}, nil)
					for it := 0; it < iters; it++ {
						pl, err := tc.get(shared, spec)
						if err != nil {
							errs <- err
							return
						}
						outs, st, err := pl.Run(core, tc.inputs...)
						if err != nil {
							errs <- err
							return
						}
						if st.Cycles != baseStats.Cycles {
							t.Errorf("replay cycles %d != cold cycles %d", st.Cycles, baseStats.Cycles)
							return
						}
						for i := range outs {
							if !bytes.Equal(outs[i].Data, baseOuts[i].Data) {
								t.Errorf("replay output %d not bit-identical to cold run", i)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := shared.Stats()
			if st.Compiled != 1 || st.Misses != 1 {
				t.Errorf("cache compiled %d plans on %d misses, want 1 and 1", st.Compiled, st.Misses)
			}
			if st.Hits != goroutines*iters-1 {
				t.Errorf("cache hits = %d, want %d", st.Hits, goroutines*iters-1)
			}
		})
	}
}

// TestPlanCacheKeyCollision checks that plans for the same kernel but
// different shape parameters, auxiliary channel counts, or buffer specs
// never alias in the cache, and that each replays to its own reference
// result.
func TestPlanCacheKeyCollision(t *testing.T) {
	c := NewPlanCache()
	spec := Spec{}
	p1 := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	p2 := isa.ConvParams{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2}

	plA, err := c.MaxPoolForward(trace.Ctx{}, "im2col", spec, p1)
	if err != nil {
		t.Fatal(err)
	}
	plB, err := c.MaxPoolForward(trace.Ctx{}, "im2col", spec, p2)
	if err != nil {
		t.Fatal(err)
	}
	if plA == plB {
		t.Fatal("plans for different ConvParams share one cache entry")
	}
	if plA.Params != p1 || plB.Params != p2 {
		t.Errorf("plan params swapped: %+v / %+v", plA.Params, plB.Params)
	}
	// Each plan must still compute its own shape, not the other's.
	for _, pc := range []struct {
		pl *Plan
		p  isa.ConvParams
	}{{plA, p1}, {plB, p2}} {
		in := randTile(3, pc.p)
		outs, _, err := pc.pl.Run(newTestCore(), in)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(outs[0], ref.MaxPoolForward(in, pc.p)) != 0 {
			t.Errorf("plan for %+v diverges from reference after cache round-trip", pc.p)
		}
	}
	// Same params, different buffer spec: a shrunken UB forces a different
	// schedule, so the key must include the Spec.
	small := Spec{Buffers: buffer.Config{UBSize: 16 << 10}}
	plSmall, err := c.MaxPoolForward(trace.Ctx{}, "im2col", small, p2)
	if err != nil {
		t.Fatal(err)
	}
	if plSmall == plB {
		t.Error("plans for different buffer specs share one cache entry")
	}
	// Same params, different logical channels (the Aux key ints).
	conv16, err := c.Conv2D(trace.Ctx{}, spec, p1, tensor.C0, tensor.C0)
	if err != nil {
		t.Fatal(err)
	}
	conv32, err := c.Conv2D(trace.Ctx{}, spec, p1, 2*tensor.C0, tensor.C0)
	if err != nil {
		t.Fatal(err)
	}
	if conv16 == conv32 {
		t.Error("conv plans for different Co share one cache entry")
	}
	if st := c.Stats(); st.Compiled != 5 || st.Hits != 0 {
		t.Errorf("cache stats %+v, want 5 distinct compilations and 0 hits", st)
	}
	// A zero-valued spec and the explicit Ascend defaults normalize to the
	// same key: this lookup must hit.
	if _, err := c.MaxPoolForward(trace.Ctx{}, "im2col", Spec{Buffers: buffer.Config{}.Normalized()}, p1); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("normalized-spec lookup missed: %+v", st)
	}
}

// TestTraceOneTimelinePerRun pins the replay contract for tracing cores:
// Plan.Run resets the attached trace, so repeated (memoized) replays yield
// one timeline each instead of accumulating entries without bound.
func TestTraceOneTimelinePerRun(t *testing.T) {
	p := isa.ConvParams{Ih: 12, Iw: 12, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(5, p)
	pl, err := PlanMaxPoolForward("im2col", Spec{}, p)
	if err != nil {
		t.Fatal(err)
	}
	core := newTestCore()
	core.Trace = &aicore.Trace{}
	var first int
	for run := 1; run <= 3; run++ {
		if _, _, err := pl.Run(core, in); err != nil {
			t.Fatal(err)
		}
		if run == 1 {
			first = len(core.Trace.Entries)
			if first == 0 {
				t.Fatal("traced run recorded no entries")
			}
			continue
		}
		if got := len(core.Trace.Entries); got != first {
			t.Fatalf("run %d: %d trace entries, want %d (trace accumulating across replays)", run, got, first)
		}
	}
}

// TestPlanCacheMetrics checks that a cache built on a shared registry
// publishes its hit/miss/compile counters there, in agreement with the
// CacheStats view.
func TestPlanCacheMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := NewPlanCacheOn(r)
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	if _, err := c.MaxPoolForward(trace.Ctx{}, "im2col", Spec{}, p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MaxPoolForward(trace.Ctx{}, "im2col", Spec{}, p); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"plan_cache_hits": 1, "plan_cache_misses": 1, "plan_cache_compiled": 1}
	snap := r.Snapshot()
	for _, m := range snap.Counters {
		if v, ok := want[m.Name]; ok {
			if m.Value != v {
				t.Errorf("%s = %d, want %d", m.Name, m.Value, v)
			}
			delete(want, m.Name)
		}
	}
	for name := range want {
		t.Errorf("counter %s missing from registry snapshot", name)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Compiled != 1 {
		t.Errorf("CacheStats %+v disagrees with registry", st)
	}
}

// BenchmarkPlanCache compares host wall time of the cold path (compile the
// schedule, then run) against cached replay of one plan, on the largest
// InceptionV3 Maxpool layer of the paper (147x147, kernel 3, stride 2) —
// the CI smoke step runs it with -benchtime=1x.
func BenchmarkPlanCache(b *testing.B) {
	p := isa.ConvParams{Ih: 147, Iw: 147, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(42, p)
	spec := Spec{}

	b.Run("cold-compile", func(b *testing.B) {
		core := newTestCore()
		for i := 0; i < b.N; i++ {
			pl, err := PlanMaxPoolForward("im2col", spec, p)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := pl.Run(core, in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-replay", func(b *testing.B) {
		cache := NewPlanCache()
		core := newTestCore()
		pl, err := cache.MaxPoolForward(trace.Ctx{}, "im2col", spec, p)
		if err != nil {
			b.Fatal(err)
		}
		// Prime the timing memo so the loop measures steady-state replay.
		if _, _, err := pl.Run(core, in); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl, err := cache.MaxPoolForward(trace.Ctx{}, "im2col", spec, p)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := pl.Run(core, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestPlanCacheSpeedup is the acceptance check behind BenchmarkPlanCache:
// cached replay of the 147x147 layer must beat compile-per-call host wall
// time by at least 2x (in practice the margin is much larger, since replay
// skips emission, validation and the hazard scoreboard).
func TestPlanCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the compile/replay cost ratio")
	}
	p := isa.ConvParams{Ih: 147, Iw: 147, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(42, p)
	spec := Spec{}
	core := newTestCore()
	const iters = 5

	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < iters; j++ {
				pl, err := PlanMaxPoolForward("im2col", spec, p)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := pl.Run(core, in); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	pl, err := NewPlanCache().MaxPoolForward(trace.Ctx{}, "im2col", spec, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl.Run(core, in); err != nil { // prime the timing memo
		t.Fatal(err)
	}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < iters; j++ {
				if _, _, err := pl.Run(core, in); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	coldNs := float64(cold.NsPerOp())
	warmNs := float64(warm.NsPerOp())
	t.Logf("cold %.2fms vs cached %.2fms per %d runs (%.1fx)", coldNs/1e6, warmNs/1e6, iters, coldNs/warmNs)
	if coldNs < 2*warmNs {
		t.Errorf("cached replay only %.2fx faster than cold compile, want >= 2x", coldNs/warmNs)
	}
}
