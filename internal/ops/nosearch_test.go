package ops

import (
	"strings"
	"testing"

	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/trace"
)

// TestConvAutoScheduleNoSearch pins the degenerate-search contract on
// the Cube-unit convolution planners: compiling them under an
// AutoSchedule spec must not silently downgrade to the fixed lowering —
// the plan carries an AutoSchedReport with NoSearch set, zero
// candidates, an explicit per-kernel reason, and a summary that says
// sched_candidates=0, and the plan cache turns that into a
// sched_nosearch count next to a zero-valued sched_candidates counter.
func TestConvAutoScheduleNoSearch(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	spec := Spec{AutoSchedule: true}
	tests := []struct {
		kernel string
		plan   func(c *PlanCache) (*Plan, error)
	}{
		{"conv2d_im2col_cube", func(c *PlanCache) (*Plan, error) { return c.Conv2D(trace.Ctx{}, spec, p, 16, 16) }},
		{"conv2d_bwd_data", func(c *PlanCache) (*Plan, error) { return c.Conv2DBackwardData(trace.Ctx{}, spec, p, 16, 16) }},
		{"conv2d_bwd_weights", func(c *PlanCache) (*Plan, error) { return c.Conv2DBackwardWeights(trace.Ctx{}, spec, p, 16, 16) }},
	}
	for _, tt := range tests {
		t.Run(tt.kernel, func(t *testing.T) {
			r := obs.NewRegistry()
			c := NewPlanCacheOn(r)
			pl, err := tt.plan(c)
			if err != nil {
				t.Fatal(err)
			}
			a := pl.Auto
			if a == nil {
				t.Fatal("AutoSchedule compile attached no AutoSchedReport")
			}
			if !a.NoSearch {
				t.Fatalf("report = %+v, want NoSearch", a)
			}
			if a.Considered != 0 {
				t.Fatalf("Considered = %d, want 0", a.Considered)
			}
			if a.Rejected == "" || !strings.Contains(a.Rejected, "no searchable schedule axes") {
				t.Fatalf("Rejected = %q, want an explicit no-axes reason", a.Rejected)
			}
			if s := a.Summary(); !strings.Contains(s, "sched_candidates=0") {
				t.Fatalf("Summary() = %q, want sched_candidates=0", s)
			}
			snap := r.Snapshot()
			if v, ok := snap.CounterValue("sched_nosearch"); !ok || v != 1 {
				t.Fatalf("sched_nosearch = %d (present=%v), want 1", v, ok)
			}
			if v, ok := snap.CounterValue("sched_candidates"); !ok || v != 0 {
				t.Fatalf("sched_candidates = %d (present=%v), want a recorded 0", v, ok)
			}
		})
	}
}
