package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// bwdPlan is the shared schedule of the backward kernels: fractal-aligned
// patch bands of the argmax mask and gradients stream through the Unified
// Buffer and are merged into a row band of the output image. Bands at the
// boundary re-load the previously written overlap rows from global memory,
// so overlapping patches accumulate correctly across bands.
type bwdPlan struct {
	oh, ow  int
	patches int
	fracs   int
	padded  int
	kk      int

	band    int // fractals per band
	buffers int
	maskUB  [2]int
	gradUB  [2]int
	outUB   int
	outRows int // rows the out area can hold

	maskGM, gradGM, outGM int
}

// bandRows returns the output-image row range [lo, hi) touched by patches
// [pa, pb) (pb exclusive, clamped to valid patches).
func (pl *bwdPlan) bandRows(p isa.ConvParams, pa, pb int) (lo, hi int) {
	return patchRowRange(p, pl.ow, pl.patches, pa, pb)
}

// bindBackward validates the (mask, grad) inputs of a backward plan.
func bindBackward(name string, p isa.ConvParams) bindFunc {
	oh, ow := p.OutDims()
	padded := p.PaddedPatches()
	return func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(name, 2, inputs); err != nil {
			return nil, err
		}
		mask, grad := inputs[0], inputs[1]
		wantMask := []int{1, 1, p.Kh, p.Kw, padded, tensor.C0}
		if len(mask.Shape) != 6 || mask.Shape[2] != p.Kh || mask.Shape[3] != p.Kw || mask.Shape[4] != padded {
			return nil, fmt.Errorf("ops: %s: mask shape %v, want %v", name, mask.Shape, wantMask)
		}
		if len(grad.Shape) != 5 || grad.Shape[2] != oh || grad.Shape[3] != ow {
			return nil, fmt.Errorf("ops: %s: grad shape %v, want (1,1,%d,%d,%d)", name, grad.Shape, oh, ow, tensor.C0)
		}
		return inputs, nil
	}
}

// planBackward sizes the shared backward schedule against the planner's
// scratch core, reserving the mask/grad/output global-memory layout. sp
// supplies the band/buffer schedule in fractal units.
func planBackward(b *planner, p isa.ConvParams, name string, sp ScheduleParams) (*bwdPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	core := b.core
	pl := &bwdPlan{}
	pl.oh, pl.ow = p.OutDims()
	pl.patches = p.Patches()
	pl.fracs = p.Fractals()
	pl.padded = p.PaddedPatches()
	pl.kk = p.Kh * p.Kw

	var err error
	if pl.maskGM, err = b.input(pl.kk * pl.padded * Block); err != nil {
		return nil, err
	}
	if pl.gradGM, err = b.input(pl.oh * pl.ow * Block); err != nil {
		return nil, err
	}
	// Output starts zeroed (plan replays run in freshly zeroed global
	// memory, and Col2Im requires a zero-initialized output, §III-D).
	if pl.outGM, err = core.Mem.Space(isa.GM).Alloc(p.Ih * p.Iw * Block); err != nil {
		return nil, err
	}

	inRowB := p.Iw * Block
	// Worst-case output rows touched by b fractals of patches.
	rowsFor := func(b int) int {
		patchRows := (b*isa.FractalPatches+pl.ow-1)/pl.ow + 1
		return min(p.Ih, (patchRows-1)*p.Sh+p.Kh)
	}
	pl.band, pl.buffers, err = resolveBand(name, p, ubAvail(core), pl.fracs, sp, func(b, n int) int {
		return n*(pl.kk+1)*b*isa.FractalBytes + rowsFor(b)*inRowB
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	for i := 0; i < pl.buffers; i++ {
		pl.maskUB[i] = ub.MustAlloc(pl.kk * pl.band * isa.FractalBytes)
		pl.gradUB[i] = ub.MustAlloc(pl.band * isa.FractalBytes)
	}
	pl.outRows = rowsFor(pl.band)
	pl.outUB = ub.MustAlloc(pl.outRows * inRowB)
	return pl, nil
}

// emitBandLoads loads one band of mask slices and gradients, multiplies
// them (Listing 3: one full-mask vmul per (kh, kw) slice, sliced at the
// schedule's repeat-chunk cap), and prepares the output row band,
// re-loading boundary rows written by the previous band. Returns the row
// range of the band.
func (pl *bwdPlan) emitBandLoads(prog *cce.Program, p isa.ConvParams, sp ScheduleParams, f0, fb, prevHi, bi int) (lo, hi int) {
	maskUB := pl.maskUB[bi%pl.buffers]
	gradUB := pl.gradUB[bi%pl.buffers]
	pa := f0 * isa.FractalPatches
	bandPatches := fb * isa.FractalPatches
	valid := min(pl.patches, pa+bandPatches) - pa
	inRowB := p.Iw * Block

	// Mask band: Kh*Kw slices, each a contiguous run of fb fractals.
	prog.Emit(&isa.CopyInstr{
		SrcBuf: isa.GM, SrcAddr: pl.maskGM + pa*Block,
		DstBuf: isa.UB, DstAddr: maskUB,
		NBurst: pl.kk, BurstBytes: bandPatches * Block,
		SrcGap: (pl.padded - bandPatches) * Block, DstGap: 0,
	})
	// Gradient band (zero the fractal tail beyond the last valid patch).
	prog.EmitCopy(isa.GM, pl.gradGM+pa*Block, isa.UB, gradUB, valid*Block)
	if tail := bandPatches - valid; tail > 0 {
		prog.EmitDup(isa.UB, gradUB+valid*Block, tail*tensor.C0, fp16.Zero)
	}
	// Multiply: mask-gradient product, in place over the mask slices.
	reps := fb * 2
	for s := 0; s < pl.kk; s++ {
		slice := isa.Contig(isa.UB, maskUB+s*fb*isa.FractalBytes)
		emitVecChunked(prog, sp, isa.VMul, slice, slice, isa.Contig(isa.UB, gradUB), 0, isa.FullMask(), reps)
	}
	// Output row band: re-load overlap rows, zero fresh rows.
	lo, hi = pl.bandRows(p, pa, pa+bandPatches)
	overlap := max(0, prevHi-lo)
	if overlap > 0 {
		prog.EmitCopy(isa.GM, pl.outGM+lo*inRowB, isa.UB, pl.outUB, overlap*inRowB)
	}
	if fresh := hi - lo - overlap; fresh > 0 {
		prog.EmitDup(isa.UB, pl.outUB+overlap*inRowB, fresh*p.Iw*tensor.C0, fp16.Zero)
	}
	return lo, hi
}

// planMaxPoolBwdStandard compiles the standard TVM Maxpool backward
// (Listing 3, §V-B): the mask-gradient multiplication runs well on the
// Vector Unit, but the merge step's scattered access pattern forces one
// vadd per (kh, kw, oh, ow) with only 16 mask lanes set and no repetition.
func planMaxPoolBwdStandard(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_bwd_standard"
	b := newPlanner(name, spec, p)
	pl, err := planBackward(b, p, name, sp)
	if err != nil {
		return nil, err
	}
	prog := cce.New(name)
	inRowB := p.Iw * Block
	prevHi := 0
	for f0, bi := 0, 0; f0 < pl.fracs; f0, bi = f0+pl.band, bi+1 {
		fb := min(pl.band, pl.fracs-f0)
		lo, hi := pl.emitBandLoads(prog, p, sp, f0, fb, prevHi, bi)
		maskUB := pl.maskUB[bi%pl.buffers]
		pa := f0 * isa.FractalPatches
		validEnd := min(pl.patches, pa+fb*isa.FractalPatches)

		// Merge: one 16-lane vadd per (kh, kw, patch) — "the vadd
		// instructions only set 16 elements of the vector mask ... and
		// repetition is not used" (§V-B).
		for xk := 0; xk < p.Kh; xk++ {
			for yk := 0; yk < p.Kw; yk++ {
				slice := maskUB + (xk*p.Kw+yk)*fb*isa.FractalBytes
				for pt := pa; pt < validEnd; pt++ {
					h, w, pad := scu.SourceCoord(p, pt, xk, yk)
					if pad {
						continue
					}
					dst := isa.Operand{Buf: isa.UB, Addr: pl.outUB + ((h-lo)*p.Iw+w)*Block, BlkStride: 1, RepStride: 0}
					src := isa.Operand{Buf: isa.UB, Addr: slice + (pt-pa)*Block, BlkStride: 1, RepStride: 0}
					prog.EmitVec(isa.VAdd, dst, dst, src, 0, isa.MaskFirstN(tensor.C0), 1)
				}
			}
		}
		prog.EmitCopy(isa.UB, pl.outUB, isa.GM, pl.outGM+lo*inRowB, (hi-lo)*inRowB)
		prevHi = hi
	}
	b.output(pl.outGM, 1, 1, p.Ih, p.Iw, tensor.C0)
	plan, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	plan.bind = bindBackward(name, p)
	plan.Sched = ScheduleParams{
		Mode: sp.Mode, Band: pl.band, Buffers: pl.buffers, RepeatChunk: resolvedRepeatChunk(sp),
	}
	return plan, nil
}

// MaxPoolBwdStandard is the standard TVM Maxpool backward (Listing 3,
// §V-B) as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolBackward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func MaxPoolBwdStandard(core *aicore.Core, mask, grad *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolBackward(trace.Ctx{}, "standard", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, mask, grad)
}

// planMaxPoolBwdCol2im compiles the accelerated backward (§V-B): the merge
// step is exactly the Col2im operation, so Col2Im instructions replace the
// 16-lane vadds — vectorizing over a whole fractal at a time with
// repetition over the band, issued only Kh*Kw times per band.
func planMaxPoolBwdCol2im(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	const name = "maxpool_bwd_col2im"
	b := newPlanner(name, spec, p)
	pl, err := planBackward(b, p, name, sp)
	if err != nil {
		return nil, err
	}
	prog := cce.New(name)
	inRowB := p.Iw * Block
	prevHi := 0
	for f0, bi := 0, 0; f0 < pl.fracs; f0, bi = f0+pl.band, bi+1 {
		fb := min(pl.band, pl.fracs-f0)
		lo, hi := pl.emitBandLoads(prog, p, sp, f0, fb, prevHi, bi)
		maskUB := pl.maskUB[bi%pl.buffers]
		prog.EmitCol2ImRange(maskUB, pl.outUB, p, f0*isa.FractalPatches, fb, lo, hi-lo)
		prog.EmitCopy(isa.UB, pl.outUB, isa.GM, pl.outGM+lo*inRowB, (hi-lo)*inRowB)
		prevHi = hi
	}
	b.output(pl.outGM, 1, 1, p.Ih, p.Iw, tensor.C0)
	plan, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	plan.bind = bindBackward(name, p)
	plan.Sched = ScheduleParams{
		Mode: sp.Mode, Band: pl.band, Buffers: pl.buffers, RepeatChunk: resolvedRepeatChunk(sp),
	}
	return plan, nil
}

// MaxPoolBwdCol2im is the accelerated backward (§V-B) as a one-shot call.
//
// Deprecated: compile once with PlanMaxPoolBackward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func MaxPoolBwdCol2im(core *aicore.Core, mask, grad *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.MaxPoolBackward(trace.Ctx{}, "col2im", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, mask, grad)
}
