package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// randomParams derives a valid layer configuration from raw fuzz bytes.
func randomParams(ihRaw, iwRaw, khRaw, kwRaw, shRaw, swRaw, padRaw uint8) (isa.ConvParams, bool) {
	p := isa.ConvParams{
		Ih: int(ihRaw%26) + 5,
		Iw: int(iwRaw%26) + 5,
		Kh: int(khRaw%3) + 1,
		Kw: int(kwRaw%3) + 1,
		Sh: int(shRaw%3) + 1,
		Sw: int(swRaw%3) + 1,
	}
	if padRaw%3 == 0 {
		p.Pt, p.Pb = min(1, p.Kh-1), min(1, p.Kh-1)
		p.Pl, p.Pr = min(1, p.Kw-1), min(1, p.Kw-1)
	}
	return p, p.Validate() == nil
}

// Property: on arbitrary valid configurations, every forward Maxpool
// variant reproduces the reference bit for bit.
func TestQuickForwardVariants(t *testing.T) {
	core := newTestCore()
	f := func(a, b, c, d, e, g, h uint8, seed int64) bool {
		p, ok := randomParams(a, b, c, d, e, g, h)
		if !ok {
			return true
		}
		in := randTile(seed, p)
		want := ref.MaxPoolForward(in, p)
		for name, fn := range MaxForward {
			got, _, err := fn(core, in, p)
			if err != nil {
				t.Logf("%s %+v: %v", name, p, err)
				return false
			}
			if tensor.MaxAbsDiff(got, want) != 0 {
				t.Logf("%s %+v diverges", name, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the argmax mask produced by either variant drives both
// backward variants to the same (reference) gradient.
func TestQuickTrainingPath(t *testing.T) {
	core := newTestCore()
	f := func(a, b, c, d, e, g, h uint8, seed int64) bool {
		p, ok := randomParams(a, b, c, d, e, g, h)
		if !ok {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
		for i := 0; i < in.Len(); i++ {
			in.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(512))))
		}
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
		}
		for _, fwdName := range []string{"standard", "im2col"} {
			_, mask, _, err := MaxForwardArgmax[fwdName](core, in, p)
			if err != nil {
				t.Logf("%s %+v: %v", fwdName, p, err)
				return false
			}
			want := ref.MaxPoolBackward(mask, grad, p, p.Ih, p.Iw)
			for _, bwdName := range []string{"standard", "col2im"} {
				got, _, err := MaxBackward[bwdName](core, mask, grad, p)
				if err != nil {
					t.Logf("%s/%s %+v: %v", fwdName, bwdName, p, err)
					return false
				}
				if tensor.MaxAbsDiff(got, want) != 0 {
					t.Logf("%s/%s %+v diverges", fwdName, bwdName, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: pooling a constant tensor returns that constant everywhere
// (max) or that constant (avg, up to one rounding of the 1/(Kh*Kw)
// multiply), for every variant — a classic metamorphic identity. Padding
// is excluded because zero padding legitimately changes border outputs.
func TestQuickConstantIdentity(t *testing.T) {
	core := newTestCore()
	f := func(a, b, c, d, e, g uint8, vRaw uint8) bool {
		p, ok := randomParams(a, b, c, d, e, g, 1 /* no padding */)
		if !ok {
			return true
		}
		v := fp16.FromFloat64(float64(vRaw%32) + 1)
		in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
		in.Fill(v)
		for name, fn := range MaxForward {
			got, _, err := fn(core, in, p)
			if err != nil {
				return false
			}
			for i := 0; i < got.Len(); i++ {
				if got.AtFlat(i) != v {
					t.Logf("%s %+v: constant not preserved", name, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the im2col variant's global-memory traffic equals the standard
// variant's for pad-free layers (both read the input once and write the
// output once); the duplicated data moves only between local buffers.
func TestQuickTrafficParity(t *testing.T) {
	core := newTestCore()
	f := func(a, b uint8, seed int64) bool {
		p := isa.ConvParams{Ih: int(a%20) + 9, Iw: int(b%20) + 9, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
		if p.Validate() != nil {
			return true
		}
		in := randTile(seed, p)
		_, stStd, err := MaxPoolFwdStandard(core, in, p)
		if err != nil {
			return false
		}
		_, stIm, err := MaxPoolFwdIm2col(core, in, p)
		if err != nil {
			return false
		}
		// The standard kernel may re-read overlap rows at band boundaries;
		// the im2col kernel reads the input exactly once when it fits L1.
		return stIm.BytesIn <= stStd.BytesIn+int64(p.Kh*p.Iw*Block) &&
			stIm.BytesOut == stStd.BytesOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
