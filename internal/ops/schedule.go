// The schedule layer: every decision a hand-written planner used to bake
// into its emission code — band size, buffer rotation, mask width, repeat
// coalescing, epilogue placement, which engine gathers, even the lowering
// mode itself — is reified as a comparable ScheduleParams value. The
// zero value always means "the hand-tuned default", so a plan compiled
// with ScheduleParams{} is bit-identical (program, outputs and cycle
// counts) to the pre-schedule-layer lowerings by construction, and the
// autoscheduler (internal/sched) searches the same space the hand
// lowerings live in rather than a parallel one.
package ops

import (
	"errors"
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/trace"
)

// Saturate values: how wide the reduction sets the vector mask.
const (
	// SatAuto picks the hand-tuned rule: saturate the mask over (Ow, C0)
	// when Sw == 1 (consecutive patches are consecutive in memory, §V-A),
	// 16-lane strided otherwise.
	SatAuto = 0
	// SatFull forces the full-mask row reduction; only legal when Sw == 1.
	SatFull = 1
	// SatNarrow forces the 16-lane strided reduction regardless of stride.
	SatNarrow = 2
)

// Epilogue values: where the Avgpool 1/(Kh*Kw) scale runs.
const (
	// EpiFused scales each output band right after its reduction (the
	// hand-written placement).
	EpiFused = 0
	// EpiDeferred stores raw sums and streams the whole output back
	// through the UB in one trailing scale pass.
	EpiDeferred = 1
)

// Gather values: which engine performs the expansion transform.
const (
	// GatherVector rearranges patches with strided vcopy instructions on
	// the Vector pipe (the hand-written lowering).
	GatherVector = 0
	// GatherMTE stages the input band in L1 and gathers patches with
	// strided DMA bursts on the MTE1 pipe, freeing the Vector pipe for
	// the reduction.
	GatherMTE = 1
)

// ScheduleParams is one point in the schedule space of a kernel lowering.
// It is comparable and hashable (it contains only ints and a string), so
// it can key caches and be compared against a plan's resolved schedule.
//
// The zero value of every field selects the hand-tuned default, so
// ScheduleParams{} reproduces the original hand-written plan exactly.
// Fields a lowering has no use for must be zero; a planner rejects a
// nonzero field it cannot honor with an *InvalidScheduleError, which is
// how the autoscheduler's enumerator learns the edge of the space.
type ScheduleParams struct {
	// Mode selects the lowering mode (the dispatch variant: "standard",
	// "im2col", "expansion", "xysplit", "col2im", "cube"). "" keeps the
	// variant the caller asked for. Every variant of a family shares one
	// observable contract (same inputs, same output tensors), which is
	// what makes the mode itself a searchable axis.
	Mode string
	// Band is the band size in the lowering's native unit — output rows
	// for the direct kernels, patch fractals for the im2col/col2im ones.
	// 0 resolves to the largest band that fits the Unified Buffer.
	Band int
	// Buffers is the number of rotating UB areas (1 or 2). 0 resolves to
	// 2 when a double-buffered band fits, else 1.
	Buffers int
	// Saturate selects the reduction mask width (SatAuto/SatFull/
	// SatNarrow) on the direct-reduction kernels.
	Saturate int
	// RepeatChunk caps the repeat count of one emitted vector instruction
	// on the repeat-coalesced streams (the im2col reductions, the
	// backward mask multiplies, the argmax compares). 0 means the
	// hardware cap (isa.MaxRepeat); smaller chunks trade issue overhead
	// for finer-grained hazard interleaving.
	RepeatChunk int
	// Epilogue places the Avgpool scale pass (EpiFused/EpiDeferred).
	Epilogue int
	// Gather assigns the expansion transform to an engine
	// (GatherVector/GatherMTE) — the pipe-assignment hint.
	Gather int
}

func (sp ScheduleParams) String() string {
	s := fmt.Sprintf("mode=%s band=%d buffers=%d", sp.Mode, sp.Band, sp.Buffers)
	if sp.Saturate != SatAuto {
		s += fmt.Sprintf(" saturate=%d", sp.Saturate)
	}
	if sp.RepeatChunk != 0 {
		s += fmt.Sprintf(" repeat_chunk=%d", sp.RepeatChunk)
	}
	if sp.Epilogue != EpiFused {
		s += " epilogue=deferred"
	}
	if sp.Gather != GatherVector {
		s += " gather=mte"
	}
	return s
}

// InvalidScheduleError reports schedule parameters a lowering cannot
// honor — a band that does not leave room for its buffers, a mask width
// illegal for the stride, a knob the kernel has no use for. It is
// distinct from a capacity failure (errTooLarge): an invalid schedule is
// the search probing outside the space, not a shape problem.
type InvalidScheduleError struct {
	Kernel string
	Reason string
}

func (e *InvalidScheduleError) Error() string {
	return fmt.Sprintf("ops: %s: invalid schedule: %s", e.Kernel, e.Reason)
}

// IsInvalidSchedule reports whether err means the schedule parameters —
// not the shape — were unusable.
func IsInvalidSchedule(err error) bool {
	var e *InvalidScheduleError
	return errors.As(err, &e)
}

func badSchedule(kernel, format string, args ...any) error {
	return &InvalidScheduleError{Kernel: kernel, Reason: fmt.Sprintf(format, args...)}
}

// noKnob rejects nonzero schedule fields a lowering has no use for, so a
// plan's resolved Sched is always canonical (re-compiling it reproduces
// the plan) and the search enumerator gets a crisp edge of the space.
func noKnob(kernel string, value int, knob string) error {
	if value != 0 {
		return badSchedule(kernel, "%s=%d: this lowering has no %s axis", knob, value, knob)
	}
	return nil
}

// resolveBand is the one banding utility every lowering shares: it picks
// (band, buffers) for a monotone per-configuration byte requirement,
// honoring explicit ScheduleParams. need(band, buffers) returns the UB
// bytes the schedule would allocate; it must be non-decreasing in band
// for each buffer count. The default resolution — the largest
// double-buffered band, else the largest single-buffered one — is
// exactly the hand-written try-2-else-1 idiom.
func resolveBand(kernel string, p isa.ConvParams, avail, limit int, sp ScheduleParams, need func(band, buffers int) int) (band, buffers int, err error) {
	choices := []int{2, 1}
	if sp.Buffers != 0 {
		if sp.Buffers < 1 || sp.Buffers > 2 {
			return 0, 0, badSchedule(kernel, "buffers=%d: want 1 or 2", sp.Buffers)
		}
		choices = []int{sp.Buffers}
	}
	if sp.Band < 0 || sp.Band > limit {
		return 0, 0, badSchedule(kernel, "band=%d outside [1, %d]", sp.Band, limit)
	}
	for _, n := range choices {
		if sp.Band > 0 {
			if need(sp.Band, n) <= avail {
				return sp.Band, n, nil
			}
			continue
		}
		if b := maxBand(avail, limit, func(b int) int { return need(b, n) }); b > 0 {
			return b, n, nil
		}
	}
	if sp.Band > 0 || sp.Buffers != 0 {
		return 0, 0, badSchedule(kernel, "band=%d buffers=%v needs more than the %d Unified Buffer bytes available",
			sp.Band, choices, avail)
	}
	return 0, 0, errTooLarge(kernel, p)
}

// resolvedSaturate canonicalizes the mask-width choice a lowering made,
// so a plan's recorded schedule recompiles to the identical plan.
func resolvedSaturate(saturated bool) int {
	if saturated {
		return SatFull
	}
	return SatNarrow
}

// repeatCap resolves the schedule's repeat-chunk cap against the
// hardware repeat field.
func repeatCap(sp ScheduleParams) int {
	if sp.RepeatChunk <= 0 || sp.RepeatChunk > isa.MaxRepeat {
		return isa.MaxRepeat
	}
	return sp.RepeatChunk
}

// resolvedRepeatChunk canonicalizes the repeat-chunk knob: a cap at or
// above the hardware limit changes nothing and records as 0.
func resolvedRepeatChunk(sp ScheduleParams) int {
	if c := repeatCap(sp); c < isa.MaxRepeat {
		return c
	}
	return 0
}

// emitVecChunked is EmitVec with the schedule's repeat-chunk cap: the
// same instruction stream when the cap is the hardware limit, finer
// slices (advancing every operand by its repeat stride) when the
// schedule asks for them. Bit-exact either way — repeats of one vector
// instruction execute in the same order the separate slices would.
func emitVecChunked(prog *cce.Program, sp ScheduleParams, op isa.VecOp, dst, src0, src1 isa.Operand, scalar fp16.Float16, mask isa.Mask, total int) {
	chunk := repeatCap(sp)
	if chunk >= isa.MaxRepeat {
		prog.EmitVec(op, dst, src0, src1, scalar, mask, total)
		return
	}
	adv := func(o isa.Operand, done int) isa.Operand {
		o.Addr += done * o.RepStride * isa.BlockBytes
		return o
	}
	for done := 0; done < total; {
		rep := min(chunk, total-done)
		prog.EmitVec(op, adv(dst, done), adv(src0, done), adv(src1, done), scalar, mask, rep)
		done += rep
	}
}

// emitDeferredScale is the EpiDeferred Avgpool epilogue: stream the raw
// sums already stored in global memory back through a UB staging area,
// multiply by 1/(Kh*Kw), and store them again. Each element is scaled by
// the same single vmuls either way, so fused and deferred epilogues are
// bit-identical.
func emitDeferredScale(prog *cce.Program, p isa.ConvParams, outGM, stageUB, stageBytes, totalBytes int) {
	for off := 0; off < totalBytes; off += stageBytes {
		n := min(stageBytes, totalBytes-off)
		prog.EmitCopy(isa.GM, outGM+off, isa.UB, stageUB, n)
		prog.EmitElementwiseScalar(isa.VMuls, isa.UB, stageUB, stageUB, 0, n/fp16.Bytes, avgScale(p))
		prog.EmitCopy(isa.UB, stageUB, isa.GM, outGM+off, n)
	}
}

// AutoSchedReport is the autoscheduler's account of one search, attached
// to the plan it returned (Plan.Auto) and surfaced as sched_* counters by
// the plan cache.
type AutoSchedReport struct {
	// Kernel is the searched kernel, "family/variant".
	Kernel string
	// Considered counts schedule candidates enumerated beyond the
	// default; Pruned counts those discarded on static bounds alone
	// (never simulated); Confirmed counts candidates whose exact makespan
	// was measured with the cycle oracle.
	Considered, Pruned, Confirmed int
	// BaselineCycles is the default schedule's scheduled makespan
	// (aicore.Time); Cycles is the returned plan's.
	BaselineCycles, Cycles int64
	// Accepted reports that a searched schedule replaced the default
	// after passing the translation-validation gate.
	Accepted bool
	// Rejected carries the reason no searched schedule was adopted when
	// one looked better ("" when the default simply won, or when
	// Accepted).
	Rejected string
	// NoSearch reports that no search ran at all: the kernel exposes no
	// searchable schedule axes, so the default is the only point in the
	// space. Rejected then carries the explicit reason. Distinct from a
	// search that enumerated candidates and kept the default — a no-search
	// compile reports sched_candidates=0 and bumps sched_nosearch, so the
	// downgrade is visible instead of reading like an empty frontier.
	NoSearch bool
	// LintSkipped counts candidate lint legs the acceptance gate skipped
	// because a shape-generic certificate (internal/lint/sym) already
	// proves the candidate's lowering lint-clean over a domain containing
	// this shape.
	LintSkipped int
	// Params is the schedule of the plan Run executes.
	Params ScheduleParams
	// WallNanos is the host wall-clock time the search spent.
	WallNanos int64
}

// Saved returns the makespan reduction the search bought.
func (r *AutoSchedReport) Saved() int64 { return r.BaselineCycles - r.Cycles }

// Summary renders a one-line report.
func (r *AutoSchedReport) Summary() string {
	switch {
	case r.NoSearch:
		return fmt.Sprintf("autosched: no search (%s); sched_candidates=0", r.Rejected)
	case r.Accepted:
		pct := float64(0)
		if r.BaselineCycles > 0 {
			pct = 100 * float64(r.Saved()) / float64(r.BaselineCycles)
		}
		return fmt.Sprintf("autosched: %d candidates (%d pruned, %d confirmed), %d -> %d cycles (-%.1f%%) via %s",
			r.Considered, r.Pruned, r.Confirmed, r.BaselineCycles, r.Cycles, pct, r.Params)
	case r.Rejected != "":
		return fmt.Sprintf("autosched: default kept (%s), %d candidates", r.Rejected, r.Considered)
	default:
		return fmt.Sprintf("autosched: default wins, %d candidates (%d pruned, %d confirmed)",
			r.Considered, r.Pruned, r.Confirmed)
	}
}

// AutoScheduler searches the schedule space of kernel ("family/variant")
// for (spec, p) and returns the plan to use — the searched winner or the
// default — with Plan.Auto describing the outcome. tc is the tracing
// context the search nests its sched_search/sched_candidate spans under
// (the zero Ctx disables tracing). Implemented by internal/sched and
// injected via RegisterAutoScheduler to keep the dependency one-way
// (sched builds on ops).
type AutoScheduler func(kernel string, spec Spec, p isa.ConvParams, tc trace.Ctx) (*Plan, error)

// autoScheduler is written once from internal/sched's package init,
// before any goroutines compile plans.
var autoScheduler AutoScheduler

// RegisterAutoScheduler installs the schedule-search implementation the
// AutoSchedule Spec flag dispatches to. Called from package init.
func RegisterAutoScheduler(fn AutoScheduler) { autoScheduler = fn }

// autoPlan routes an AutoSchedule compile to the registered search.
func autoPlan(tc trace.Ctx, kernel string, spec Spec, p isa.ConvParams) (*Plan, error) {
	if autoScheduler == nil {
		return nil, fmt.Errorf("ops: %s: Spec.AutoSchedule set but no autoscheduler registered (import davinci/internal/sched)", kernel)
	}
	return autoScheduler(kernel, spec, p, tc)
}

// AutoScheduled compiles kernel ("family/variant") through the registered
// schedule search, regardless of spec.AutoSchedule.
func AutoScheduled(kernel string, spec Spec, p isa.ConvParams) (*Plan, error) {
	return autoPlan(trace.Ctx{}, kernel, spec, p)
}

// attachNoSearchReport marks a plan compiled under an AutoSchedule spec
// whose kernel exposes no searchable schedule axes (the Cube-unit
// convolutions): the default is the only point in the space. The report
// still carries Considered=0 and an explicit per-kernel reason, so the
// plan cache emits sched_candidates=0 plus a sched_nosearch count and
// the downgrade cannot be mistaken for a search that found nothing.
func attachNoSearchReport(pl *Plan, kernel, reason string) {
	t := aicore.Time(pl.Prog, isa.DefaultCostModel(), false)
	pl.Auto = &AutoSchedReport{
		Kernel:         kernel,
		BaselineCycles: t,
		Cycles:         t,
		Params:         pl.Sched,
		NoSearch:       true,
		Rejected:       reason,
	}
}
