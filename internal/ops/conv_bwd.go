package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// PackWeightsBackward converts (Co, C, Kh, Kw) weights into the transposed
// fractal layout the backward-data matmul consumes from L0B: a
// (Co1, C1*Kh*Kw) fractal grid where fractal (co1, n=(c1, xk, yk)) holds
// row r = output channel co1*16+r, column j = input channel c1*16+j of
// kernel position (xk, yk). dY x W^T then produces the im2col-shaped input
// gradient directly.
func PackWeightsBackward(w *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	if len(w.Shape) != 4 || w.Shape[2] != p.Kh || w.Shape[3] != p.Kw {
		panic(fmt.Sprintf("ops: want (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, w.Shape))
	}
	co, c := w.Shape[0], w.Shape[1]
	co1, c1 := tensor.C1Of(co), tensor.C1Of(c)
	out := tensor.New(co1, c1*p.Kh*p.Kw, isa.FractalPatches, isa.FractalC0)
	for oc := 0; oc < co; oc++ {
		for ic := 0; ic < c; ic++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					n := ((ic/tensor.C0)*p.Kh+xk)*p.Kw + yk
					out.Set(w.At(oc, ic, xk, yk), oc/tensor.C0, n, oc%tensor.C0, ic%tensor.C0)
				}
			}
		}
	}
	return out
}

// padGrad re-lays a (1, Co1, Oh, Ow, C0) gradient as a (Co1, padded, C0)
// tensor padded to whole fractals per Co1 slice, so fractal loads never
// cross slice boundaries (the zero tail contributes nothing).
func padGrad(grad *tensor.Tensor, ow, patches, padded int) *tensor.Tensor {
	co1 := grad.Shape[1]
	gpad := tensor.New(co1, padded, tensor.C0)
	for k := 0; k < co1; k++ {
		for pt := 0; pt < patches; pt++ {
			for c0 := 0; c0 < tensor.C0; c0++ {
				gpad.Set(grad.At(0, k, pt/ow, pt%ow, c0), k, pt, c0)
			}
		}
	}
	return gpad
}

// PlanConv2DBackwardData compiles the gradient propagation through a
// convolution to its input for co x c logical channels: the Cube unit
// computes dCols = dY x W^T (fractal matmul with fp32 accumulation), and
// Col2Im instructions merge the im2col-shaped gradient back to NC1HWC0 —
// the original purpose of the Col2im transform (§II-B) executed with the
// paper's Col2Im instruction.
//
// Run takes a (1, Co1, Oh, Ow, C0) gradient and (Co, C, Kh, Kw) weights,
// and returns a (1, C1, Ih, Iw, C0) result.
func PlanConv2DBackwardData(spec Spec, p isa.ConvParams, co, c int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.AutoSchedule {
		// No searchable schedule axes on the Cube unit; see PlanConv2D.
		spec.AutoSchedule = false
		pl, err := PlanConv2DBackwardData(spec, p, co, c)
		if err == nil {
			attachNoSearchReport(pl, "conv2d_bwd_data",
				"conv2d_bwd_data exposes no searchable schedule axes: Cube-unit channel tiling and the Col2Im scatter order are fixed")
		}
		return pl, err
	}
	b := newPlanner("conv2d_bwd_data", spec, p)
	core := b.core
	oh, ow := p.OutDims()
	co1 := tensor.C1Of(co)
	c1 := tensor.C1Of(c)

	patches := p.Patches()
	padded := p.PaddedPatches()
	fracs := p.Fractals()
	kMM := co1              // contraction extent in fractals
	nMM := c1 * p.Kh * p.Kw // output fractal columns: one per (c1, xk, yk)
	rowB := p.Iw * Block
	gpadBytes := co1 * padded * Block
	wBytes := co1 * nMM * isa.FractalBytes

	if wBytes > core.Mem.Space(isa.L0B).Free() {
		return nil, fmt.Errorf("ops: conv bwd weights (%d bytes) exceed L0B; tile channels further", wBytes)
	}

	gradGM, err := b.input(gpadBytes)
	if err != nil {
		return nil, err
	}
	wGM, err := b.input(wBytes)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(c1 * p.Ih * rowB)
	if err != nil {
		return nil, err
	}
	l1W, err := core.Mem.Space(isa.L1).Alloc(wBytes)
	if err != nil {
		return nil, err
	}
	l0b := core.Mem.Space(isa.L0B).MustAlloc(wBytes)

	// Patch-fractal band bounded by L0A, L0C and the UB (dCols staging +
	// the multi-c1 output row band).
	const fp32Frac = isa.FractalPatches * isa.FractalC0 * 4
	rowsFor := func(b int) int { return rowsForFracs(p, ow, b) }
	bandFits := func(b int) bool {
		if b*kMM*isa.FractalBytes > core.Mem.Space(isa.L0A).Free() {
			return false
		}
		if b*nMM*fp32Frac > core.Mem.Space(isa.L0C).Free() {
			return false
		}
		return b*nMM*isa.FractalBytes+c1*rowsFor(b)*rowB <= ubAvail(core)
	}
	mBand := 0
	for b := 1; b <= fracs; b++ {
		if !bandFits(b) {
			break
		}
		mBand = b
	}
	if mBand == 0 {
		return nil, fmt.Errorf("ops: conv bwd K=%d N=%d does not fit the buffers; tile channels further", kMM, nMM)
	}
	l0a := core.Mem.Space(isa.L0A).MustAlloc(mBand * kMM * isa.FractalBytes)
	l0c := core.Mem.Space(isa.L0C).MustAlloc(mBand * nMM * fp32Frac)
	ub := core.Mem.Space(isa.UB)
	ubCols := ub.MustAlloc(mBand * nMM * isa.FractalBytes)
	outRows := rowsFor(mBand)
	ubOut := ub.MustAlloc(c1 * outRows * rowB)

	prog := cce.New("conv2d_bwd_data")
	prog.EmitCopy(isa.GM, wGM, isa.L1, l1W, wBytes)
	prog.EmitCopy(isa.L1, l1W, isa.L0B, l0b, wBytes)

	prevHi := 0
	for m0 := 0; m0 < fracs; m0 += mBand {
		mb := min(mBand, fracs-m0)
		// A: dY fractals (m, k) row-major — one strided burst per k slice.
		for k := 0; k < kMM; k++ {
			prog.Emit(&isa.CopyInstr{
				SrcBuf: isa.GM, SrcAddr: gradGM + (k*padded+m0*isa.FractalPatches)*Block,
				DstBuf: isa.L0A, DstAddr: l0a + k*isa.FractalBytes,
				NBurst: mb, BurstBytes: isa.FractalBytes,
				SrcGap: 0, DstGap: (kMM - 1) * isa.FractalBytes,
			})
		}
		prog.Emit(&isa.MmadInstr{AAddr: l0a, BAddr: l0b, CAddr: l0c, M: mb, K: kMM, N: nMM})
		// dCols to the UB, arranged as one contiguous fractal run per n.
		for m := 0; m < mb; m++ {
			for n := 0; n < nMM; n++ {
				prog.Emit(&isa.ConvCopyInstr{
					SrcAddr: l0c + (m*nMM+n)*fp32Frac,
					DstAddr: ubCols + (n*mBand+m)*isa.FractalBytes,
					Elems:   isa.FractalPatches * isa.FractalC0,
				})
			}
		}
		// Output row band for every c1 slice, with boundary accumulation.
		pa := m0 * isa.FractalPatches
		lo, hi := patchRowRange(p, ow, patches, pa, pa+mb*isa.FractalPatches)
		rows := hi - lo
		overlap := max(0, prevHi-lo)
		if overlap > 0 {
			prog.Emit(&isa.CopyInstr{
				SrcBuf: isa.GM, SrcAddr: outGM + lo*rowB,
				DstBuf: isa.UB, DstAddr: ubOut,
				NBurst: c1, BurstBytes: overlap * rowB,
				SrcGap: (p.Ih - overlap) * rowB, DstGap: (rows - overlap) * rowB,
			})
		}
		for ci := 0; ci < c1; ci++ {
			if fresh := rows - overlap; fresh > 0 {
				prog.EmitDup(isa.UB, ubOut+(ci*rows+overlap)*rowB, fresh*p.Iw*tensor.C0, fp16.Zero)
			}
		}
		// The Col2Im merge: one instruction family per (c1, xk, yk).
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					n := (ci*p.Kh+xk)*p.Kw + yk
					pt := pa
					src := ubCols + n*mBand*isa.FractalBytes
					for _, rep := range isa.SplitRepeat(mb) {
						prog.Emit(&isa.Col2ImInstr{
							SrcBuf: isa.UB, SrcAddr: src,
							DstBuf: isa.UB, DstAddr: ubOut,
							P: p, C1Len: c1, C1Idx: ci, Xk: xk, Yk: yk,
							Patch0: pt, RowBase: lo, Rows: rows, Repeat: rep,
						})
						pt += rep * isa.FractalPatches
						src += rep * isa.FractalBytes
					}
				}
			}
		}
		prog.Emit(&isa.CopyInstr{
			SrcBuf: isa.UB, SrcAddr: ubOut,
			DstBuf: isa.GM, DstAddr: outGM + lo*rowB,
			NBurst: c1, BurstBytes: rows * rowB,
			SrcGap: 0, DstGap: (p.Ih - rows) * rowB,
		})
		prevHi = hi
	}
	b.output(outGM, 1, c1, p.Ih, p.Iw, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs("conv2d_bwd_data", 2, inputs); err != nil {
			return nil, err
		}
		grad, weights := inputs[0], inputs[1]
		if len(grad.Shape) != 5 || grad.Shape[0] != 1 || grad.Shape[2] != oh || grad.Shape[3] != ow {
			return nil, fmt.Errorf("ops: conv bwd wants (1,Co1,%d,%d,%d) gradients, got %v", oh, ow, tensor.C0, grad.Shape)
		}
		if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
			return nil, fmt.Errorf("ops: conv bwd wants (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
		}
		if weights.Shape[0] != co {
			return nil, fmt.Errorf("ops: conv bwd plan compiled for Co=%d, weights carry %d outputs", co, weights.Shape[0])
		}
		if grad.Shape[1] != co1 {
			return nil, fmt.Errorf("ops: gradient Co1=%d inconsistent with %d weight outputs", grad.Shape[1], co)
		}
		if weights.Shape[1] != c {
			return nil, fmt.Errorf("ops: weights carry %d channels, caller says %d", weights.Shape[1], c)
		}
		return []*tensor.Tensor{padGrad(grad, ow, patches, padded), PackWeightsBackward(weights, p)}, nil
	}
	return pl, nil
}

// Conv2DBackwardData propagates gradients through a convolution to its
// input as a one-shot call. grad has shape (1, Co1, Oh, Ow, C0); weights
// (Co, C, Kh, Kw); the result has shape (1, C1, Ih, Iw, C0) for c logical
// input channels.
//
// Deprecated: compile once with PlanConv2DBackwardData (or a PlanCache)
// and replay the plan per tile; this wrapper compiles through SharedPlans
// and runs in one call.
func Conv2DBackwardData(core *aicore.Core, grad, weights *tensor.Tensor, p isa.ConvParams, c int) (*tensor.Tensor, *aicore.Stats, error) {
	if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
		return nil, nil, fmt.Errorf("ops: conv bwd wants (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
	}
	pl, err := SharedPlans.Conv2DBackwardData(trace.Ctx{}, SpecFor(core), p, weights.Shape[0], c)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, grad, weights)
}
