package ops

import (
	"math/rand"
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func TestConvBackwardWeightsMatchesReference(t *testing.T) {
	cases := []struct {
		p     isa.ConvParams
		c, co int
	}{
		{isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}, 16, 16},
		{isa.ConvParams{Ih: 10, Iw: 10, Kh: 3, Kw: 3, Sh: 1, Sw: 1}, 16, 8},
		{isa.ConvParams{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1}, 20, 16},
		{isa.ConvParams{Ih: 11, Iw: 7, Kh: 2, Kw: 3, Sh: 2, Sw: 1}, 32, 24},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.c*7 + tc.co)))
		oh, ow := tc.p.OutDims()
		co1, c1 := tensor.C1Of(tc.co), tensor.C1Of(tc.c)
		grad := tensor.New(1, co1, oh, ow, tensor.C0)
		x := tensor.New(1, c1, tc.p.Ih, tc.p.Iw, tensor.C0)
		grad.FillRandom(rng, 0.5)
		x.FillRandom(rng, 0.5)

		got, st, err := Conv2DBackwardWeights(newTestCore(), grad, x, tc.p, tc.co, tc.c)
		if err != nil {
			t.Fatalf("%+v: %v", tc.p, err)
		}
		want := ref.Conv2DBackwardWeights(grad, x, tc.p, tc.co, tc.c)
		// Band-wise fp32 accumulation can differ from the single-pass
		// reference by association; magnitudes here are O(patches).
		if d := tensor.MaxAbsDiff(got, want); d > 0.25 {
			t.Errorf("%+v co=%d c=%d: max diff %v", tc.p, tc.co, tc.c, d)
		}
		if st.PipeInstrs[isa.PipeCube] == 0 {
			t.Errorf("%+v: dW did not use the Cube unit", tc.p)
		}
		if st.PipeInstrs[isa.PipeMTE1] == 0 {
			t.Errorf("%+v: dW did not use Im2Col/transpose loads", tc.p)
		}
	}
}

// With a one-hot gradient, dW picks out exactly one patch of x.
func TestConvBackwardWeightsOneHot(t *testing.T) {
	p := isa.ConvParams{Ih: 6, Iw: 6, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 1, 6, 6, tensor.C0)
	for i := 0; i < x.Len(); i++ {
		x.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(8))))
	}
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	grad.Set(fp16.One, 0, 0, 1, 2, 5) // oc=5, patch (1,2)

	dw, _, err := Conv2DBackwardWeights(newTestCore(), grad, x, p, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for ic := 0; ic < 16; ic++ {
		for xk := 0; xk < 2; xk++ {
			for yk := 0; yk < 2; yk++ {
				want := x.At(0, 0, 1*2+xk, 2*2+yk, ic)
				if got := dw.At(5, ic, xk, yk); got != want {
					t.Fatalf("dw[5,%d,%d,%d] = %v, want %v", ic, xk, yk, got.Float32(), want.Float32())
				}
				// Other output channels see zero gradient.
				if got := dw.At(3, ic, xk, yk); got != 0 {
					t.Fatalf("dw[3,...] = %v, want 0", got.Float32())
				}
			}
		}
	}
}

func TestConvBackwardWeightsRejectsBadShapes(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	core := newTestCore()
	x := tensor.New(1, 1, 8, 8, tensor.C0)
	if _, _, err := Conv2DBackwardWeights(core, tensor.New(1, 1, 3, 3, tensor.C0), x, p, 16, 16); err == nil {
		t.Error("bad gradient shape accepted")
	}
	if _, _, err := Conv2DBackwardWeights(core, tensor.New(1, 1, 4, 4, tensor.C0), tensor.New(1, 1, 7, 8, tensor.C0), p, 16, 16); err == nil {
		t.Error("bad input shape accepted")
	}
}
