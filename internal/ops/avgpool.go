package ops

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// avgScale returns the binary16 value of 1/(Kh*Kw), the element-wise
// division factor applied before saving the final output (§V-C).
func avgScale(p isa.ConvParams) fp16.Float16 {
	return fp16.FromFloat64(1 / float64(p.Kh*p.Kw))
}

// AvgPoolFwdStandard is the standard Avgpool forward: identical access
// pattern to Maxpool but reducing with vadd instead of vmax, plus the
// element-wise division epilogue (§V-C).
//
// Deprecated: compile once with PlanAvgPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func AvgPoolFwdStandard(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.AvgPoolForward(trace.Ctx{}, "standard", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

// AvgPoolFwdIm2col is the Im2col-based Avgpool forward: the same schedule
// as MaxPoolFwdIm2col with vadd reductions and the division epilogue ("the
// access pattern stays the same and can benefit from using Im2Col", §V-C).
//
// Deprecated: compile once with PlanAvgPoolForward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func AvgPoolFwdIm2col(core *aicore.Core, in *tensor.Tensor, p isa.ConvParams) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.AvgPoolForward(trace.Ctx{}, "im2col", SpecFor(core), p)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, in)
}

// planAvgPoolBwdStandard and planAvgPoolBwdCol2im are the two Avgpool
// backward lowering modes as schedule-parameterized planners.
func planAvgPoolBwdStandard(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planAvgPoolBackward(spec, p, false, sp)
}

func planAvgPoolBwdCol2im(spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	return planAvgPoolBackward(spec, p, true, sp)
}

// PlanAvgPoolBackward compiles the Avgpool backward pass with the
// hand-tuned default schedule (or a searched one, under an AutoSchedule
// Spec). The equivalent mask contains 1 in all positions (every input
// contributes to a sum, §V-C), so the kernel scales the incoming
// gradients by 1/(Kh*Kw) and merges them — with 16-lane vadds when
// useCol2im is false (the standard lowering) or with Col2Im instructions
// when true. Run takes (grad) and returns (dx).
func PlanAvgPoolBackward(spec Spec, p isa.ConvParams, useCol2im bool) (*Plan, error) {
	variant := "standard"
	if useCol2im {
		variant = "col2im"
	}
	return planVariant(trace.Ctx{}, "avgpool_bwd", "avgpool backward", variant, spec, p)
}

func planAvgPoolBackward(spec Spec, p isa.ConvParams, useCol2im bool, sp ScheduleParams) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := "avgpool_bwd_standard"
	if useCol2im {
		name = "avgpool_bwd_col2im"
	}
	if err := noKnob(name, sp.Saturate, "saturate"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Epilogue, "epilogue"); err != nil {
		return nil, err
	}
	if err := noKnob(name, sp.Gather, "gather"); err != nil {
		return nil, err
	}
	b := newPlanner(name, spec, p)
	core := b.core
	oh, ow := p.OutDims()
	patches := p.Patches()
	fracs := p.Fractals()
	gradGM, err := b.input(oh * ow * Block)
	if err != nil {
		return nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(p.Ih * p.Iw * Block)
	if err != nil {
		return nil, err
	}
	inRowB := p.Iw * Block
	rowsFor := func(b int) int {
		patchRows := (b*isa.FractalPatches+ow-1)/ow + 1
		return min(p.Ih, (patchRows-1)*p.Sh+p.Kh)
	}
	band, buffers, err := resolveBand(name, p, ubAvail(core), fracs, sp, func(b, n int) int {
		return n*b*isa.FractalBytes + rowsFor(b)*inRowB
	})
	if err != nil {
		return nil, err
	}
	ub := core.Mem.Space(isa.UB)
	var gradUB [2]int
	for i := 0; i < buffers; i++ {
		gradUB[i] = ub.MustAlloc(band * isa.FractalBytes)
	}
	outUB := ub.MustAlloc(rowsFor(band) * inRowB)

	prog := cce.New(name)
	prevHi := 0
	for f0, bi := 0, 0; f0 < fracs; f0, bi = f0+band, bi+1 {
		fb := min(band, fracs-f0)
		gUB := gradUB[bi%buffers]
		pa := f0 * isa.FractalPatches
		bandPatches := fb * isa.FractalPatches
		valid := min(patches, pa+bandPatches) - pa

		prog.EmitCopy(isa.GM, gradGM+pa*Block, isa.UB, gUB, valid*Block)
		if tail := bandPatches - valid; tail > 0 {
			prog.EmitDup(isa.UB, gUB+valid*Block, tail*tensor.C0, fp16.Zero)
		}
		// Scale by 1/(Kh*Kw), sliced at the schedule's repeat-chunk cap
		// (bandPatches*C0 is a whole number of full-mask repeats).
		emitVecChunked(prog, sp, isa.VMuls, isa.Contig(isa.UB, gUB), isa.Contig(isa.UB, gUB),
			isa.Contig(isa.UB, 0), avgScale(p), isa.FullMask(), fb*2)

		// Output row band with boundary accumulation (as in backward max).
		lo, hi := patchRowRange(p, ow, patches, pa, pa+bandPatches)
		overlap := max(0, prevHi-lo)
		if overlap > 0 {
			prog.EmitCopy(isa.GM, outGM+lo*inRowB, isa.UB, outUB, overlap*inRowB)
		}
		if fresh := hi - lo - overlap; fresh > 0 {
			prog.EmitDup(isa.UB, outUB+overlap*inRowB, fresh*p.Iw*tensor.C0, fp16.Zero)
		}

		if useCol2im {
			// The same scaled gradient band merges once per (kh, kw): the
			// Col2Im source is identical for every kernel position.
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					pt := pa
					src := gUB
					for _, rep := range isa.SplitRepeat(fb) {
						prog.Emit(&isa.Col2ImInstr{
							SrcBuf: isa.UB, SrcAddr: src,
							DstBuf: isa.UB, DstAddr: outUB,
							P: p, C1Len: 1, Xk: xk, Yk: yk,
							Patch0: pt, RowBase: lo, Rows: hi - lo, Repeat: rep,
						})
						pt += rep * isa.FractalPatches
						src += rep * isa.FractalBytes
					}
				}
			}
		} else {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := pa; pt < pa+valid; pt++ {
						h, w, pad := scu.SourceCoord(p, pt, xk, yk)
						if pad {
							continue
						}
						dst := isa.Operand{Buf: isa.UB, Addr: outUB + ((h-lo)*p.Iw+w)*Block, BlkStride: 1, RepStride: 0}
						src := isa.Operand{Buf: isa.UB, Addr: gUB + (pt-pa)*Block, BlkStride: 1, RepStride: 0}
						prog.EmitVec(isa.VAdd, dst, dst, src, 0, isa.MaskFirstN(tensor.C0), 1)
					}
				}
			}
		}
		prog.EmitCopy(isa.UB, outUB, isa.GM, outGM+lo*inRowB, (hi-lo)*inRowB)
		prevHi = hi
	}
	b.output(outGM, 1, 1, p.Ih, p.Iw, tensor.C0)
	pl, err := b.seal(prog, spec)
	if err != nil {
		return nil, err
	}
	pl.bind = func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs("avgpool_bwd", 1, inputs); err != nil {
			return nil, err
		}
		grad := inputs[0]
		if len(grad.Shape) != 5 || grad.Shape[2] != oh || grad.Shape[3] != ow {
			return nil, fmt.Errorf("ops: avgpool_bwd: grad shape %v, want (1,1,%d,%d,%d)", grad.Shape, oh, ow, tensor.C0)
		}
		return inputs, nil
	}
	pl.Sched = ScheduleParams{
		Mode: sp.Mode, Band: band, Buffers: buffers, RepeatChunk: resolvedRepeatChunk(sp),
	}
	return pl, nil
}

// AvgPoolBackward computes the Avgpool backward pass as a one-shot call.
//
// Deprecated: compile once with PlanAvgPoolBackward (or a PlanCache) and
// replay the plan per tile; this wrapper compiles through SharedPlans and
// runs in one call.
func AvgPoolBackward(core *aicore.Core, grad *tensor.Tensor, p isa.ConvParams, useCol2im bool) (*tensor.Tensor, *aicore.Stats, error) {
	pl, err := SharedPlans.AvgPoolBackward(trace.Ctx{}, SpecFor(core), p, useCol2im)
	if err != nil {
		return nil, nil, err
	}
	return runSingle(pl, core, grad)
}
