// The certificate hook: internal/lint/sym proves, once per (kernel
// family x schedule pattern), that every in-domain shape's lowering is
// lint-clean, and installs an admission predicate here. Compilation then
// skips the concrete strict-lint pass for certified shapes — the O(1)
// admission the serving layer wants — and falls back to concrete lint on
// any domain miss. The dependency is one-way by registration, exactly
// like the autoscheduler: sym builds on ops, ops never imports sym.
package ops

import (
	"sync/atomic"

	"davinci/internal/isa"
	"davinci/internal/trace"
)

// CertQuery asks the registered certifier whether a certificate admits
// one compile: the kernel ("family/variant"), the compile spec (its
// buffer capacities are part of the proof context), the layer parameters
// and the requested schedule.
type CertQuery struct {
	Kernel string
	Spec   Spec
	Params isa.ConvParams
	Sched  ScheduleParams
	// BandDiv declares the provenance of a concrete Sched.Band when the
	// caller knows it: the band is the default band divided by BandDiv
	// (the autoscheduler's band-split candidates). 0 means Sched.Band is
	// 0 (default) or of unknown provenance; certificates for band-divisor
	// patterns only match when the caller vouches for the divisor.
	BandDiv int
}

// Certifier is the admission predicate: true means a sealed certificate
// proves the lowering lint-clean for every shape in a domain containing
// q.Params, so the concrete lint pass may be skipped. Implemented by
// internal/lint/sym and injected via RegisterCertifier.
type Certifier func(q CertQuery) bool

// certifier is swapped atomically: unlike the autoscheduler it is
// installed at run time (after certificates are proven), possibly while
// other goroutines compile plans.
var certifier atomic.Pointer[Certifier]

// RegisterCertifier installs (or, with nil, removes) the certificate
// admission predicate. Typically called via sym.Registry.Install.
func RegisterCertifier(fn Certifier) {
	if fn == nil {
		certifier.Store(nil)
		return
	}
	certifier.Store(&fn)
}

// Certified reports whether the registered certifier admits q; false
// when no certifier is installed. The autoscheduler's acceptance gate
// uses this to skip its lint leg for certified candidates.
func Certified(q CertQuery) bool {
	fn := certifier.Load()
	return fn != nil && (*fn)(q)
}

// compileCertified is the one choke point every family-dispatch compile
// goes through: under a strict spec it consults the certificate registry
// first, and on a certificate hit compiles with the concrete lint pass
// elided (the certificate is the proof) and marks the plan Certified.
// Domain misses fall back to the concrete strict lint unchanged.
//
// Under a strict spec the admission decision is emitted as a
// cert_admission span on tc (outcome = certified|lint), so a trace shows
// whether a compile paid for concrete lint or rode a certificate.
func compileCertified(tc trace.Ctx, kernel string, fn plannerFunc, spec Spec, p isa.ConvParams, sp ScheduleParams) (*Plan, error) {
	if spec.Strict {
		admitted := Certified(CertQuery{Kernel: kernel, Spec: spec, Params: p, Sched: sp})
		if a := tc.StartSpan("cert_admission", "impl", kernel); a != nil {
			if admitted {
				a.SetAttr("outcome", "certified")
			} else {
				a.SetAttr("outcome", "lint")
			}
			a.End()
		}
		if admitted {
			unstrict := spec
			unstrict.Strict = false
			pl, err := fn(unstrict, p, sp)
			if err != nil {
				return nil, err
			}
			pl.Certified = true
			return pl, nil
		}
	}
	return fn(spec, p, sp)
}
