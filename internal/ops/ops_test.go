package ops

import (
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// paramGrid is the cross-variant correctness grid: kernels, strides,
// padding, odd sizes, and a case small enough to fit one band plus a case
// that forces multi-band scheduling on a shrunken UB.
var paramGrid = []isa.ConvParams{
	{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2},
	{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2},
	{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 1, Sw: 1},
	{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 3, Sw: 3},
	{Ih: 13, Iw: 7, Kh: 2, Kw: 3, Sh: 1, Sw: 2},
	{Ih: 7, Iw: 7, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	{Ih: 10, Iw: 10, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	{Ih: 35, Iw: 35, Kh: 3, Kw: 3, Sh: 2, Sw: 2}, // InceptionV3 input 3 tile
}

func newTestCore() *aicore.Core { return aicore.New(buffer.Config{}, nil) }

// smallCore forces multi-band schedules on modest inputs.
func smallCore() *aicore.Core {
	return aicore.New(buffer.Config{UBSize: 16 << 10}, nil)
}

func randTile(seed int64, p isa.ConvParams) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
	in.FillRandom(rng, 8)
	return in
}

func TestMaxForwardVariantsMatchReference(t *testing.T) {
	for _, p := range paramGrid {
		want := ref.MaxPoolForward(randTile(int64(p.Ih*100+p.Iw), p), p)
		for name, fn := range MaxForward {
			for _, core := range []*aicore.Core{newTestCore(), smallCore()} {
				in := randTile(int64(p.Ih*100+p.Iw), p)
				got, st, err := fn(core, in, p)
				if err != nil {
					t.Fatalf("%s %+v: %v", name, p, err)
				}
				if tensor.MaxAbsDiff(got, want) != 0 {
					t.Errorf("%s %+v: output diverges from reference", name, p)
				}
				if st.Cycles <= 0 || st.Instrs <= 0 {
					t.Errorf("%s %+v: empty stats %+v", name, p, st)
				}
			}
		}
	}
}

func TestAvgForwardVariantsMatchReference(t *testing.T) {
	for _, p := range paramGrid {
		in := randTile(int64(p.Ih*31+p.Iw), p)
		want := ref.AvgPoolForward(in, p)
		for name, fn := range AvgForward {
			got, _, err := fn(newTestCore(), in.Clone(), p)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, p, err)
			}
			d := tensor.MaxAbsDiff(got, want)
			// The Cube variant accumulates in fp32 with one final rounding,
			// so it may differ from the per-add-rounded reference by ULPs.
			tol := 0.0
			if name == "cube" {
				tol = 0.05
			}
			if d > tol {
				t.Errorf("%s %+v: output diverges from reference (max diff %v)", name, p, d)
			}
		}
	}
}

// AvgPoolFwdCube is the §VIII future-work extension: avgpool as Cube-unit
// convolution. It must use the Cube pipe and be numerically close to the
// vector variants.
func TestAvgPoolCubeUsesCubeUnit(t *testing.T) {
	p := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(9, p)
	out, st, err := AvgPoolFwdCube(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.PipeInstrs[isa.PipeCube] == 0 {
		t.Error("cube avgpool did not run on the Cube unit")
	}
	if d := tensor.MaxAbsDiff(out, ref.AvgPoolForward(in, p)); d > 0.05 {
		t.Errorf("cube avgpool max diff %v", d)
	}
	// Exactness on integer inputs divisible by Kh*Kw... not guaranteed by
	// fp16 weights (1/9 is inexact); just require the same shape.
	if out.Shape[2] != 9 || out.Shape[3] != 9 {
		t.Errorf("cube avgpool shape %v", out.Shape)
	}
}

func TestArgmaxVariantsMatchReference(t *testing.T) {
	for _, p := range paramGrid {
		in := randTile(int64(p.Ih*7+p.Iw), p)
		wantOut := ref.MaxPoolForward(in, p)
		wantMask := ref.ArgmaxMask(in, p)
		for name, fn := range MaxForwardArgmax {
			for _, core := range []*aicore.Core{newTestCore(), smallCore()} {
				out, mask, _, err := fn(core, in.Clone(), p)
				if err != nil {
					t.Fatalf("%s %+v: %v", name, p, err)
				}
				if tensor.MaxAbsDiff(out, wantOut) != 0 {
					t.Errorf("%s %+v: output diverges", name, p)
				}
				if tensor.MaxAbsDiff(mask, wantMask) != 0 {
					t.Errorf("%s %+v: mask diverges", name, p)
				}
			}
		}
	}
}

func TestBackwardVariantsMatchReference(t *testing.T) {
	for _, p := range paramGrid {
		in := randTile(int64(p.Ih*13+p.Iw), p)
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		rng := rand.New(rand.NewSource(99))
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(5))))
		}
		want := ref.MaxPoolBackward(mask, grad, p, p.Ih, p.Iw)
		for name, fn := range MaxBackward {
			for _, core := range []*aicore.Core{newTestCore(), smallCore()} {
				got, st, err := fn(core, mask.Clone(), grad.Clone(), p)
				if err != nil {
					t.Fatalf("%s %+v: %v", name, p, err)
				}
				if tensor.MaxAbsDiff(got, want) != 0 {
					t.Errorf("%s %+v: backward diverges from reference", name, p)
				}
				if st.Cycles <= 0 {
					t.Errorf("%s %+v: empty stats", name, p)
				}
			}
		}
	}
}

func TestAvgBackwardMatchesReference(t *testing.T) {
	for _, p := range paramGrid {
		oh, ow := p.OutDims()
		rng := rand.New(rand.NewSource(77))
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(8))))
		}
		want := ref.AvgPoolBackward(grad, p, p.Ih, p.Iw)
		for _, useCol2im := range []bool{false, true} {
			got, _, err := AvgPoolBackward(newTestCore(), grad.Clone(), p, useCol2im)
			if err != nil {
				t.Fatalf("col2im=%v %+v: %v", useCol2im, p, err)
			}
			if tensor.MaxAbsDiff(got, want) != 0 {
				t.Errorf("col2im=%v %+v: diverges from reference", useCol2im, p)
			}
		}
	}
}

// The paper's core performance claims, as shape assertions on the timing
// model: at an InceptionV3-like layer the Im2col forward beats standard,
// Col2im backward beats standard, and the orderings of Fig. 8 hold.
func TestSpeedupShape(t *testing.T) {
	p := isa.ConvParams{Ih: 71, Iw: 71, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(1, p)

	cycles := map[string]int64{}
	for name, fn := range MaxForward {
		_, st, err := fn(newTestCore(), in, p)
		if err != nil {
			t.Fatal(err)
		}
		cycles[name] = st.Cycles
	}
	if cycles["im2col"] >= cycles["standard"] {
		t.Errorf("stride 2: im2col (%d) not faster than standard (%d)", cycles["im2col"], cycles["standard"])
	}
	if cycles["expansion"] >= cycles["standard"] {
		t.Errorf("stride 2: expansion (%d) not faster than standard (%d)", cycles["expansion"], cycles["standard"])
	}
	if cycles["im2col"] >= cycles["expansion"] {
		t.Errorf("stride 2: im2col (%d) not faster than expansion (%d)", cycles["im2col"], cycles["expansion"])
	}

	// Stride (1, 1): the direct implementation wins (Fig. 8a).
	p1 := isa.ConvParams{Ih: 41, Iw: 41, Kh: 3, Kw: 3, Sh: 1, Sw: 1}
	in1 := randTile(2, p1)
	_, stStd, err := MaxPoolFwdStandard(newTestCore(), in1, p1)
	if err != nil {
		t.Fatal(err)
	}
	_, stIm, err := MaxPoolFwdIm2col(newTestCore(), in1, p1)
	if err != nil {
		t.Fatal(err)
	}
	if stStd.Cycles >= stIm.Cycles {
		t.Errorf("stride 1: standard (%d) not faster than im2col (%d)", stStd.Cycles, stIm.Cycles)
	}

	// Backward: col2im wins (Fig. 7c).
	mask := ref.ArgmaxMask(in, p)
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	grad.Fill(fp16.One)
	_, stBwdStd, err := MaxPoolBwdStandard(newTestCore(), mask, grad, p)
	if err != nil {
		t.Fatal(err)
	}
	_, stBwdCi, err := MaxPoolBwdCol2im(newTestCore(), mask, grad, p)
	if err != nil {
		t.Fatal(err)
	}
	if stBwdCi.Cycles >= stBwdStd.Cycles {
		t.Errorf("backward: col2im (%d) not faster than standard (%d)", stBwdCi.Cycles, stBwdStd.Cycles)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	core := newTestCore()
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	// Wrong tile rank.
	if _, _, err := MaxPoolFwdStandard(core, tensor.New(8, 8), p); err == nil {
		t.Error("wrong rank accepted")
	}
	// Tile/params mismatch.
	if _, _, err := MaxPoolFwdIm2col(core, tensor.New(1, 1, 9, 8, tensor.C0), p); err == nil {
		t.Error("mismatched tile accepted")
	}
	// Invalid params.
	bad := p
	bad.Sh = 0
	if _, _, err := MaxPoolFwdStandard(core, tensor.New(1, 1, 8, 8, tensor.C0), bad); err == nil {
		t.Error("invalid params accepted")
	}
	// Backward shape checks.
	if _, _, err := MaxPoolBwdCol2im(core, tensor.New(1, 1, 3, 3, 16, tensor.C0), tensor.New(1, 1, 4, 4, tensor.C0), p); err == nil {
		t.Error("bad mask shape accepted")
	}
	if _, _, err := MaxPoolBwdStandard(core, tensor.New(1, 1, 2, 2, 16, tensor.C0), tensor.New(1, 1, 4, 5, tensor.C0), p); err == nil {
		t.Error("bad grad shape accepted")
	}
}

// Determinism: the same input and variant produce identical cycles.
func TestDeterministicTiming(t *testing.T) {
	p := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randTile(5, p)
	_, st1, err := MaxPoolFwdIm2col(newTestCore(), in, p)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := MaxPoolFwdIm2col(newTestCore(), in.Clone(), p)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st2.Cycles || st1.Instrs != st2.Instrs {
		t.Errorf("non-deterministic timing: %+v vs %+v", st1, st2)
	}
}
