package sched

import (
	"bytes"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/isa"
	"davinci/internal/kernelcases"
	"davinci/internal/ops"
)

var testShapes = []isa.ConvParams{
	{Ih: 35, Iw: 35, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	{Ih: 17, Iw: 17, Kh: 3, Kw: 3, Sh: 2, Sw: 2},
	{Ih: 28, Iw: 28, Kh: 2, Kw: 2, Sh: 2, Sw: 2},
}

var testKernels = []string{
	"maxpool_fwd/standard",
	"maxpool_fwd/im2col",
	"maxpool_fwd_argmax/standard",
	"maxpool_fwd_argmax/im2col",
	"maxpool_bwd/standard",
	"maxpool_bwd/col2im",
	"avgpool_fwd/standard",
	"avgpool_fwd/im2col",
	"avgpool_bwd/standard",
	"avgpool_bwd/col2im",
}

// TestQuickcheckCandidates is the seeded quickcheck of the search space:
// every candidate the search enumerates either fails validation (it is
// outside the kernel's schedule space) or compiles to a plan whose
// outputs are bit-identical to the hand-tuned default on the family's
// gate inputs. Run under -race this also exercises concurrent plan
// compilation safety via the shared planner machinery.
func TestQuickcheckCandidates(t *testing.T) {
	for _, p := range testShapes {
		for _, kernel := range testKernels {
			res, err := Search(kernel, ops.Spec{}, p, Options{})
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					continue
				}
				t.Fatalf("%s %v: %v", kernel, p, err)
			}
			def, err := ops.CompileKernel(kernel, ops.Spec{}, p, ops.ScheduleParams{})
			if err != nil {
				t.Fatalf("%s %v: default: %v", kernel, p, err)
			}
			inputs, err := gateInputs(kernelFamily(kernel), p)
			if err != nil {
				t.Fatalf("%s: gate inputs: %v", kernel, err)
			}
			want, _, err := def.Run(aicore.New(ops.Spec{}.Buffers.Normalized(), nil), inputs...)
			if err != nil {
				t.Fatalf("%s %v: default run: %v", kernel, p, err)
			}
			for _, cand := range res.Candidates {
				if cand.Invalid != "" {
					continue // outside the space: that IS the contract
				}
				pl, err := ops.CompileKernel(kernel, ops.Spec{}, p, cand.Resolved)
				if err != nil {
					t.Errorf("%s %v: resolved schedule %s does not recompile: %v", kernel, p, cand.Resolved, err)
					continue
				}
				if pl.Sched != cand.Resolved {
					t.Errorf("%s %v: schedule %s not canonical, recompiled to %s", kernel, p, cand.Resolved, pl.Sched)
				}
				got, _, err := pl.Run(aicore.New(ops.Spec{}.Buffers.Normalized(), nil), inputs...)
				if err != nil {
					t.Errorf("%s %v: candidate %s run: %v", kernel, p, cand.Resolved, err)
					continue
				}
				if len(got) != len(want) {
					t.Errorf("%s %v: candidate %s: %d outputs, want %d", kernel, p, cand.Resolved, len(got), len(want))
					continue
				}
				for i := range want {
					if !bytes.Equal(want[i].Data, got[i].Data) {
						t.Errorf("%s %v: candidate %s: output %d differs from default", kernel, p, cand.Resolved, i)
					}
				}
			}
		}
	}
}

func kernelFamily(kernel string) string {
	for i := 0; i < len(kernel); i++ {
		if kernel[i] == '/' {
			return kernel[:i]
		}
	}
	return kernel
}

// TestSearchReportInvariants checks the search's account of itself: an
// accepted schedule strictly beats the baseline and is reproducible (the
// reported Params recompile to the very program the search adopted); a
// kept default reports baseline cycles.
func TestSearchReportInvariants(t *testing.T) {
	for _, p := range testShapes {
		for _, kernel := range testKernels {
			res, err := Search(kernel, ops.Spec{}, p, Options{})
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					continue
				}
				t.Fatalf("%s %v: %v", kernel, p, err)
			}
			rep := res.Report
			if res.Plan.Auto != rep {
				t.Errorf("%s %v: Plan.Auto is not the report", kernel, p)
			}
			if rep.Accepted {
				if rep.Cycles >= rep.BaselineCycles {
					t.Errorf("%s %v: accepted but %d >= baseline %d", kernel, p, rep.Cycles, rep.BaselineCycles)
				}
				if res.Plan.Sched != rep.Params {
					t.Errorf("%s %v: plan schedule %s != reported %s", kernel, p, res.Plan.Sched, rep.Params)
				}
				re, err := ops.CompileKernel(kernel, ops.Spec{}, p, rep.Params)
				if err != nil {
					t.Fatalf("%s %v: reported schedule does not recompile: %v", kernel, p, err)
				}
				if len(re.Prog.Instrs) != len(res.Plan.Prog.Instrs) {
					t.Errorf("%s %v: recompiled program has %d instrs, adopted has %d",
						kernel, p, len(re.Prog.Instrs), len(res.Plan.Prog.Instrs))
				}
			} else if rep.Cycles != rep.BaselineCycles {
				t.Errorf("%s %v: default kept but Cycles %d != baseline %d", kernel, p, rep.Cycles, rep.BaselineCycles)
			}
			if rep.Confirmed > DefaultConfirm {
				t.Errorf("%s %v: confirmed %d > budget %d", kernel, p, rep.Confirmed, DefaultConfirm)
			}
		}
	}
}

// TestAutoScheduleSpecDispatch checks the ops hook: a Spec with
// AutoSchedule set routes plan compilation through this package and the
// plan carries a search report.
func TestAutoScheduleSpecDispatch(t *testing.T) {
	p := isa.ConvParams{Ih: 28, Iw: 28, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	pl, err := ops.PlanMaxPoolForward("standard", ops.Spec{AutoSchedule: true}, p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Auto == nil {
		t.Fatal("AutoSchedule plan has no search report")
	}
	if pl.Auto.Kernel != "maxpool_fwd/standard" {
		t.Errorf("report kernel = %q", pl.Auto.Kernel)
	}
	if pl.Auto.BaselineCycles <= 0 {
		t.Errorf("baseline cycles = %d", pl.Auto.BaselineCycles)
	}

	// Off keeps the hand-written plan untouched, with no report.
	def, err := ops.PlanMaxPoolForward("standard", ops.Spec{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if def.Auto != nil {
		t.Error("default plan unexpectedly carries a search report")
	}
	if pl.Auto.Accepted && pl.Auto.Cycles >= pl.Auto.BaselineCycles {
		t.Errorf("accepted schedule does not beat baseline: %d vs %d", pl.Auto.Cycles, pl.Auto.BaselineCycles)
	}
}
