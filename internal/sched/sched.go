// Package sched is the schedule search layer: given a kernel family, a
// layer shape and a compile Spec, it enumerates the kernel's
// ScheduleParams space (internal/ops), ranks candidates with the static
// critical-path oracle (internal/lint/perf), confirms the frontier with
// the cycle-accurate scoreboard (internal/aicore), and adopts a searched
// schedule only when it beats the hand-tuned default AND passes a
// translation-validation-style gate: lint-clean, makespan inside the
// [BusyBound, CritPath] invariant, and bit-identical outputs on
// family-specific gate inputs.
//
// Importing this package registers the search with internal/ops
// (ops.RegisterAutoScheduler), which is how ops.Spec.AutoSchedule
// dispatches here without ops depending on sched.
package sched

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/ops"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// Options tunes one search.
type Options struct {
	// Confirm caps how many statically-ranked candidates are confirmed
	// with the cycle-accurate oracle; 0 means DefaultConfirm. Candidates
	// beyond the cap (or whose occupancy lower bound already exceeds the
	// best confirmed makespan) are pruned on static bounds alone.
	Confirm int
	// SameModeOnly restricts the search to the requested lowering mode
	// instead of treating the mode as a schedule axis.
	SameModeOnly bool
	// Trace is the tracing context the search reports into: a
	// sched_search span for the whole call, with one sched_candidate
	// child per frontier candidate confirmed on the cycle oracle. The
	// zero Ctx (the default) disables tracing.
	Trace trace.Ctx
}

// DefaultConfirm is the oracle-confirmation budget when Options.Confirm
// is zero.
const DefaultConfirm = 4

// Candidate is one enumerated point of the schedule space, as reported
// in Result.Candidates (the frontier dump of davinci-layout).
type Candidate struct {
	// Params is the schedule the enumerator requested; Resolved is the
	// canonical schedule the lowering actually executed (zero knobs
	// resolved to concrete values). Invalid candidates have no Resolved.
	Params, Resolved ops.ScheduleParams
	// CritPath and BusyBound are the static makespan bounds of the
	// compiled candidate.
	CritPath, BusyBound int64
	// Cycles is the oracle-confirmed makespan when Confirmed.
	Cycles int64
	// Confirmed reports the candidate was simulated, not just bounded.
	Confirmed bool
	// Default marks the hand-tuned schedule the search must beat.
	Default bool
	// Invalid carries the compile error when the candidate was outside
	// the kernel's schedule space (ops.InvalidScheduleError) or over
	// capacity.
	Invalid string
}

// Result is one completed search.
type Result struct {
	// Kernel is the searched kernel, "family/variant".
	Kernel string
	// Plan is the adopted plan — the searched winner when
	// Report.Accepted, the hand-tuned default otherwise. Plan.Auto ==
	// Report.
	Plan *ops.Plan
	// Report is the search account (also attached to Plan.Auto).
	Report *ops.AutoSchedReport
	// Candidates is the ranked frontier: the default first, then valid
	// candidates by ascending critical path, then invalid ones.
	Candidates []Candidate
}

// Search explores the schedule space of kernel ("family/variant") for
// (spec, p). The returned plan is always safe to adopt: either the
// hand-tuned default, or a searched schedule that beat it under the
// cycle oracle and passed the validation gate.
func Search(kernel string, spec ops.Spec, p isa.ConvParams, o Options) (*Result, error) {
	start := time.Now()
	ss := o.Trace.StartSpan("sched_search", "impl", kernel)
	defer ss.End()
	spec.AutoSchedule = false
	spec.Buffers = spec.Buffers.Normalized()
	confirmBudget := o.Confirm
	if confirmBudget <= 0 {
		confirmBudget = DefaultConfirm
	}
	family, variant, ok := strings.Cut(kernel, "/")
	if !ok {
		return nil, fmt.Errorf("sched: kernel %q: want \"family/variant\"", kernel)
	}
	cost := isa.DefaultCostModel()

	// The default compile: its errors (shape over capacity) propagate
	// unchanged, so an AutoSchedule Spec skips exactly the shapes the
	// hand-written path skips.
	def, err := ops.CompileKernel(kernel, spec, p, ops.ScheduleParams{})
	if err != nil {
		return nil, err
	}
	baseCycles := aicore.Time(def.Prog, cost, false)

	modes := []string{variant}
	if !o.SameModeOnly {
		modes = modes[:0]
		for _, m := range ops.KernelVariants(family) {
			if m == variant {
				continue
			}
			modes = append(modes, m)
		}
		modes = append([]string{variant}, modes...)
	}

	seen := map[ops.ScheduleParams]bool{def.Sched: true}
	var pool []*compiledCandidate
	var invalid []Candidate
	considered, pruned := 0, 0

	// bandDiv records the provenance of a concrete Band candidate (default
	// band / bandDiv), which is how shape-generic certificates key their
	// band-split patterns (ops.CertQuery.BandDiv).
	try := func(sp ops.ScheduleParams, bandDiv int) *compiledCandidate {
		considered++
		pl, err := ops.CompileKernel(kernel, spec, p, sp)
		if err != nil {
			pruned++
			invalid = append(invalid, Candidate{Params: sp, Invalid: err.Error()})
			return nil
		}
		if seen[pl.Sched] {
			// Resolved to an already-enumerated point (e.g. an explicit
			// knob matching what the default resolved to).
			pruned++
			return nil
		}
		seen[pl.Sched] = true
		c := &compiledCandidate{pl: pl, bandDiv: bandDiv, cand: Candidate{
			Params:   sp,
			Resolved: pl.Sched,
			CritPath: pl.Perf.CritPath,
			BusyBound: pl.Perf.BusyBound,
		}}
		pool = append(pool, c)
		return c
	}

	for _, m := range modes {
		base := def
		if m != def.Sched.Mode {
			c := try(ops.ScheduleParams{Mode: m}, 0)
			if c == nil {
				// The mode's own default failed (over capacity for this
				// shape) or resolved onto a known point; without its
				// resolved band there is nothing to perturb.
				continue
			}
			base = c.pl
		}
		// Band splitting: the default band is the largest that fits, which
		// often means a single band per buffer rotation — halving it buys
		// load/compute overlap at the cost of more issue overhead.
		b := base.Sched.Band
		for _, div := range []int{2, 4, 8} {
			if bb := b / div; bb >= 1 {
				try(ops.ScheduleParams{Mode: m, Band: bb}, div)
			}
		}
		// Single buffering frees half the UB, letting the band grow.
		try(ops.ScheduleParams{Mode: m, Buffers: 1}, 0)
		if bb := b / 2; bb >= 1 {
			try(ops.ScheduleParams{Mode: m, Band: bb, Buffers: 1}, 2)
		}
		// The remaining axes are cheap single-knob flips; lowerings
		// without the axis reject them (counted as pruned).
		try(ops.ScheduleParams{Mode: m, Saturate: ops.SatNarrow}, 0)
		for _, rc := range []int{16, 64} {
			try(ops.ScheduleParams{Mode: m, RepeatChunk: rc}, 0)
		}
		try(ops.ScheduleParams{Mode: m, Epilogue: ops.EpiDeferred}, 0)
		try(ops.ScheduleParams{Mode: m, Gather: ops.GatherMTE}, 0)
	}

	// Rank by the static upper bound: the candidate that cannot be worse
	// than X cycles is confirmed before one that cannot be worse than 2X.
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].cand.CritPath < pool[j].cand.CritPath })

	bestCycles := baseCycles
	confirmed := 0
	var winners []*compiledCandidate
	for _, c := range pool {
		if confirmed >= confirmBudget || c.cand.BusyBound >= bestCycles {
			// Rank cut or bound cut: the occupancy lower bound already
			// matches or exceeds the best confirmed makespan.
			pruned++
			continue
		}
		confirmed++
		cs := ss.Ctx().StartSpan("sched_candidate", "impl", c.pl.Sched.String())
		c.cand.Cycles = aicore.Time(c.pl.Prog, cost, false)
		c.cand.Confirmed = true
		cs.SetAttr("cycles", strconv.FormatInt(c.cand.Cycles, 10))
		cs.End()
		if c.cand.Cycles < bestCycles {
			bestCycles = c.cand.Cycles
		}
		if c.cand.Cycles < baseCycles {
			winners = append(winners, c)
		}
	}
	sort.SliceStable(winners, func(i, j int) bool { return winners[i].cand.Cycles < winners[j].cand.Cycles })

	rep := &ops.AutoSchedReport{
		Kernel:         kernel,
		Considered:     considered,
		Pruned:         pruned,
		Confirmed:      confirmed,
		BaselineCycles: baseCycles,
		Cycles:         baseCycles,
		Params:         def.Sched,
	}
	plan := def
	inputs, gateErr := gateInputs(family, p)
	if gateErr != nil && len(winners) > 0 {
		rep.Rejected = gateErr.Error()
	}
	if gateErr == nil {
		// Accept the fastest confirmed improvement that survives the
		// validation gate; a gate failure falls through to the next
		// winner, and to the default when none survive.
		for _, w := range winners {
			reason := validate(family, spec, def, w, inputs, rep)
			if reason == "" {
				rep.Accepted = true
				rep.Cycles = w.cand.Cycles
				rep.Params = w.pl.Sched
				rep.Rejected = ""
				plan = w.pl
				break
			}
			rep.Rejected = fmt.Sprintf("%s: %s", w.pl.Sched, reason)
		}
	}
	rep.WallNanos = time.Since(start).Nanoseconds()
	plan.Auto = rep
	if rep.Accepted {
		ss.SetAttr("outcome", "accepted")
	} else if rep.Rejected != "" {
		ss.SetAttr("outcome", "rejected")
	} else {
		ss.SetAttr("outcome", "default")
	}
	ss.SetAttr("candidates", strconv.Itoa(considered))

	res := &Result{Kernel: kernel, Plan: plan, Report: rep}
	res.Candidates = append(res.Candidates, Candidate{
		Resolved: def.Sched, Params: ops.ScheduleParams{Mode: def.Sched.Mode},
		CritPath: def.Perf.CritPath, BusyBound: def.Perf.BusyBound,
		Cycles: baseCycles, Confirmed: true, Default: true,
	})
	for _, c := range pool {
		res.Candidates = append(res.Candidates, c.cand)
	}
	res.Candidates = append(res.Candidates, invalid...)
	return res, nil
}

// validate is the acceptance gate: a searched schedule replaces the
// hand-tuned default only if its program is lint-clean under implicit
// sync, its confirmed makespan respects the static bound invariant, and
// it produces bit-identical outputs to the default plan on the family's
// gate inputs. Returns "" on success, the rejection reason otherwise.
//
// The lint leg is skipped (and counted on rep.LintSkipped) when a sealed
// symbolic certificate (internal/lint/sym, via ops.RegisterCertifier)
// already proves this candidate's lowering lint-clean over a parameter
// domain containing the searched shape.
func validate(family string, spec ops.Spec, def *ops.Plan, w *compiledCandidate, inputs []*tensor.Tensor, rep *ops.AutoSchedReport) string {
	if ops.Certified(ops.CertQuery{
		Kernel:  family + "/" + w.pl.Sched.Mode,
		Spec:    spec,
		Params:  def.Params,
		Sched:   w.cand.Params,
		BandDiv: w.bandDiv,
	}) {
		rep.LintSkipped++
	} else {
		diags := lint.CheckWith(lint.Options{Caps: spec.Buffers.Capacities(), Mode: lint.SyncImplicit}, w.pl.Prog)
		if errs := lint.Errors(diags); len(errs) > 0 {
			return fmt.Sprintf("lint: %d error(s), first: %s", len(errs), errs[0])
		}
	}
	if w.cand.Cycles < w.cand.BusyBound || w.cand.Cycles > w.cand.CritPath {
		return fmt.Sprintf("makespan %d outside static bounds [%d, %d]", w.cand.Cycles, w.cand.BusyBound, w.cand.CritPath)
	}
	same, err := identicalOutputs(spec, def, w.pl, inputs)
	if err != nil {
		return fmt.Sprintf("gate run: %v", err)
	}
	if !same {
		return "outputs differ from the default schedule"
	}
	return ""
}

// identicalOutputs replays both plans on fresh cores and compares every
// output tensor byte for byte.
func identicalOutputs(spec ops.Spec, a, b *ops.Plan, inputs []*tensor.Tensor) (bool, error) {
	outsA, _, err := a.Run(aicore.New(spec.Buffers, nil), inputs...)
	if err != nil {
		return false, fmt.Errorf("default plan: %w", err)
	}
	outsB, _, err := b.Run(aicore.New(spec.Buffers, nil), inputs...)
	if err != nil {
		return false, fmt.Errorf("candidate plan: %w", err)
	}
	if len(outsA) != len(outsB) {
		return false, nil
	}
	for i := range outsA {
		if !bytes.Equal(outsA[i].Data, outsB[i].Data) {
			return false, nil
		}
	}
	return true, nil
}

// gateInputs builds the family-specific inputs the output-equality gate
// runs both plans on. Values are chosen so binary16 arithmetic is exact
// under any schedule: small integers make vmax/vadd reductions exact,
// 0/1 masks times integer gradients keep the backward scatters exact,
// and the Avgpool backward uses a constant gradient so its scaled
// accumulation is order-invariant (every addend is the same value, so
// all summation orders see the same running totals).
func gateInputs(family string, p isa.ConvParams) ([]*tensor.Tensor, error) {
	rng := rand.New(rand.NewSource(int64(1 + p.Ih*31 + p.Iw*7 + p.Kh*3 + p.Sh)))
	intFill := func(t *tensor.Tensor, n int) {
		for i := 0; i < t.Len(); i++ {
			t.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(n))))
		}
	}
	switch family {
	case "maxpool_fwd", "maxpool_fwd_argmax", "avgpool_fwd":
		in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
		intFill(in, 8)
		return []*tensor.Tensor{in}, nil
	case "maxpool_bwd":
		oh, ow := p.OutDims()
		mask := tensor.New(1, 1, p.Kh, p.Kw, p.PaddedPatches(), tensor.C0)
		patches := p.Patches()
		for kh := 0; kh < p.Kh; kh++ {
			for kw := 0; kw < p.Kw; kw++ {
				for pt := 0; pt < patches; pt++ {
					// The fractal tail beyond patches stays zero, matching
					// what the forward argmax kernels store there.
					for c := 0; c < tensor.C0; c++ {
						if rng.Intn(2) == 1 {
							mask.Set(fp16.One, 0, 0, kh, kw, pt, c)
						}
					}
				}
			}
		}
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		intFill(grad, 8)
		return []*tensor.Tensor{mask, grad}, nil
	case "avgpool_bwd":
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		grad.Fill(fp16.FromFloat64(3))
		return []*tensor.Tensor{grad}, nil
	}
	return nil, fmt.Errorf("sched: no gate inputs for kernel family %q", family)
}

// compiledCandidate pairs a compiled candidate plan with its frontier
// entry during the search. bandDiv is the divisor a concrete Band
// candidate was derived with (default band / bandDiv; 0 for non-band
// candidates) — the provenance the certificate admission key needs.
type compiledCandidate struct {
	pl      *ops.Plan
	bandDiv int
	cand    Candidate
}

// init injects the search into internal/ops, so any Spec with
// AutoSchedule set — plan caches, chips, the DSL — dispatches here.
func init() {
	ops.RegisterAutoScheduler(func(kernel string, spec ops.Spec, p isa.ConvParams, tc trace.Ctx) (*ops.Plan, error) {
		res, err := Search(kernel, spec, p, Options{Trace: tc})
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	})
}
