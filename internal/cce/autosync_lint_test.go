package cce_test

// Adversarial AutoSync coverage, asserted through the static verifier:
// WAR-only dependencies must get flags, event-id reuse past the 16-event
// budget (including across barriers) must keep counting-token pairing
// sound, same-pipe dependencies must NOT get flags, and the crossing-edge
// pattern that used to mispair reused events must stay race-free. The
// package is external (cce_test) because internal/lint imports cce.

import (
	"testing"

	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
)

const rowBytes = isa.LanesPerRepeat * 2 // one full-mask repeat of fp16

// row returns the contiguous UB region covered by one repeat at slot k.
func row(k int) int { return k * rowBytes }

func countFlags(prog *cce.Program) (sets, waits int) {
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr:
			sets++
		case *isa.WaitFlagInstr:
			waits++
		}
	}
	return
}

func lintClean(t *testing.T, prog *cce.Program) {
	t.Helper()
	for _, d := range lint.Check(prog) {
		t.Errorf("%s: %s", prog.Name, d)
	}
}

func hazardCount(prog *cce.Program) int {
	n := 0
	for _, d := range lint.Check(prog) {
		if d.Pass == "hazard" && d.Sev == lint.SevError {
			n++
		}
	}
	return n
}

// TestAutoSyncWAROnly: a vector read followed by an MTE2 overwrite of the
// same region is a pure write-after-read dependency — no RAW, no WAW. The
// raw program must lint as a hazard; AutoSync must close it with a flag.
func TestAutoSyncWAROnly(t *testing.T) {
	prog := cce.New("war-only")
	// VEC reads row 0 into row 1.
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, row(1)),
		Src0: isa.Contig(isa.UB, row(0)), Mask: isa.FullMask(), Repeat: 1})
	// MTE2 then reloads row 0: must not start before the read is done.
	prog.EmitCopy(isa.GM, 0, isa.UB, row(0), rowBytes)
	// Keep both rows live so the dead-store pass stays quiet.
	prog.EmitCopy(isa.UB, row(0), isa.GM, 4096, 2*rowBytes)

	if n := hazardCount(prog); n == 0 {
		t.Fatal("raw WAR-only program produced no hazard diagnostics")
	}
	synced := cce.AutoSync(prog)
	if sets, waits := countFlags(synced); sets == 0 || waits == 0 {
		t.Fatalf("AutoSync inserted %d sets / %d waits for a WAR dependency", sets, waits)
	}
	lintClean(t, synced)
}

// TestAutoSyncEventReuse drives far more cross-pipe edges through one pipe
// pair than there are event ids, with a barrier in the middle: every event
// id is reused several times and the counting-token pairing must still
// order every edge.
func TestAutoSyncEventReuse(t *testing.T) {
	prog := cce.New("event-reuse")
	half := isa.EventsPerPair + 4 // wraps the id space before the barrier
	emit := func(base int) {
		for k := 0; k < half; k++ {
			prog.EmitCopy(isa.GM, (base+k)*rowBytes, isa.UB, row(base+k), rowBytes)
			// Consume row base+k in place (exact in-place accumulation).
			prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, row(base+k)),
				Src0: isa.Contig(isa.UB, row(base+k)), Mask: isa.FullMask(), Repeat: 1})
		}
	}
	emit(0)
	prog.EmitBarrier()
	emit(half)
	// Store everything so every row stays live.
	prog.EmitCopy(isa.UB, 0, isa.GM, 1<<18, 2*half*rowBytes)

	synced := cce.AutoSync(prog)
	if sets, _ := countFlags(synced); sets <= isa.EventsPerPair {
		t.Fatalf("only %d set_flags: the test no longer exhausts the %d-event budget",
			sets, isa.EventsPerPair)
	}
	lintClean(t, synced)
}

// TestAutoSyncSamePipeNoFlags: dependencies between instructions on the
// same pipe are ordered by in-order issue; AutoSync must not spend flags
// on them.
func TestAutoSyncSamePipeNoFlags(t *testing.T) {
	prog := cce.New("same-pipe")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, row(0)),
		Scalar: 0x3c00, Mask: isa.FullMask(), Repeat: 1})
	// RAW, WAW and WAR chains, all on the vector pipe.
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, row(1)),
		Src0: isa.Contig(isa.UB, row(0)), Mask: isa.FullMask(), Repeat: 1})
	prog.Emit(&isa.VecInstr{Op: isa.VMuls, Dst: isa.Contig(isa.UB, row(0)),
		Src0: isa.Contig(isa.UB, row(1)), Mask: isa.FullMask(), Repeat: 1})
	// UB->UB copy also issues on the vector pipe.
	prog.EmitCopy(isa.UB, row(0), isa.UB, row(2), rowBytes)
	prog.EmitCopy(isa.UB, row(1), isa.GM, 0, 2*rowBytes) // MTE3 needs one flag
	prog.EmitCopy(isa.UB, row(2), isa.GM, 4096, rowBytes)

	synced := cce.AutoSync(prog)
	for idx, in := range synced.Instrs {
		switch v := in.(type) {
		case *isa.SetFlagInstr:
			if v.SrcPipe == v.DstPipe {
				t.Errorf("instr %d: same-pipe set_flag %v", idx, v)
			}
			if v.SrcPipe != isa.PipeVector || v.DstPipe != isa.PipeMTE3 {
				t.Errorf("instr %d: unexpected flag %v (only VEC->MTE3 is a real edge)", idx, v)
			}
		}
	}
	lintClean(t, synced)
}

// TestAutoSyncCrossingEdges is the regression test for the mispairing bug
// the verifier caught: MTE2 loads rows 0..n-1 in ascending order, then the
// vector pipe consumes them in DESCENDING order, so every consumer depends
// on an earlier producer than the consumer before it. With enough edges to
// wrap the event-id space, the old round-robin assignment paired waits
// with set_flag tokens from the wrong (earlier) producer, leaving real
// dependencies unordered — caught both statically (lint) and dynamically
// (RunExplicit's race detector).
func TestAutoSyncCrossingEdges(t *testing.T) {
	prog := cce.New("crossing")
	n := isa.EventsPerPair + 8
	for k := 0; k < n; k++ {
		prog.EmitCopy(isa.GM, k*rowBytes, isa.UB, row(k), rowBytes)
	}
	for k := n - 1; k >= 0; k-- {
		prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, row(k)),
			Src0: isa.Contig(isa.UB, row(k)), Mask: isa.FullMask(), Repeat: 1})
	}
	prog.EmitCopy(isa.UB, 0, isa.GM, 1<<18, n*rowBytes)

	if hazardCount(prog) == 0 {
		t.Fatal("raw crossing program produced no hazard diagnostics")
	}
	lintClean(t, cce.AutoSync(prog))
}

// TestValidateCollectsAllErrors: Program.Validate must report every
// invalid instruction, not just the first.
func TestValidateCollectsAllErrors(t *testing.T) {
	prog := cce.New("multi")
	prog.Emit(&isa.VecInstr{Op: isa.VAdd, Dst: isa.Contig(isa.UB, 0),
		Src0: isa.Contig(isa.UB, 512), Src1: isa.Contig(isa.UB, 1024),
		Mask: isa.FullMask(), Repeat: 0}) // bad repeat
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 256)
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, NBurst: 0, BurstBytes: 32}) // bad burst

	errs := prog.InstrErrors()
	if len(errs) != 2 {
		t.Fatalf("InstrErrors returned %d failures, want 2", len(errs))
	}
	if errs[0].Index != 0 || errs[1].Index != 2 {
		t.Errorf("failure indices = %d, %d; want 0, 2", errs[0].Index, errs[1].Index)
	}
	err := prog.Validate()
	if err == nil {
		t.Fatal("Validate passed an invalid program")
	}
	for _, want := range []string{"instr 0", "instr 2"} {
		if !contains(err.Error(), want) {
			t.Errorf("Validate error missing %q: %v", want, err)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
