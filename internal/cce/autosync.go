package cce

import (
	"sort"

	"davinci/internal/isa"
)

// AutoSync returns a copy of prog with explicit set_flag / wait_flag
// instructions inserted wherever a cross-pipeline data dependency exists —
// the synchronization-insertion pass a DaVinci compiler (AKG) performs
// when lowering to CCE C, where pipelines are only ordered by explicit
// events. The result runs correctly under aicore.RunExplicit.
//
// Algorithm: scan instructions in program order, tracking the byte regions
// each one reads and writes. For every RAW/WAW/WAR dependency whose
// endpoints sit on different pipes, record an edge from the latest such
// producer per pipe. Edges a previous wait already orders transitively are
// pruned: once a consumer on pipe d waits for producer j on pipe q, every
// later instruction on d starts after that wait (in-order issue), and
// every producer at or before j on q completes before j does (in-order
// completion), so any (q, d) edge with producer <= j needs no flag. The
// stream is then rebuilt with a set_flag directly after each producer and
// the matching wait_flag directly before the consumer, events allocated
// round-robin per ordered pipe pair. Pruning leaves the surviving (q, d)
// edges strictly increasing in both producer and consumer, so the sets and
// waits of any one (q, d, event) channel appear in the same relative
// order on their two in-order pipes and counting-token semantics pair the
// i-th wait with the i-th set even when event ids wrap. (Without pruning,
// two edges sharing a reused event id can cross — a later consumer
// depending on an earlier producer — making a wait consume the other
// edge's token and leaving its own dependency unordered.) Pipe barriers
// cut the analysis (they already order everything across them).
//
// The scan is quadratic in program length; it is intended for the
// kernel-sized programs this repository emits.
func AutoSync(prog *Program) *Program {
	type access struct {
		idx    int
		pipe   isa.Pipe
		region isa.Region
	}
	var writes, reads []access
	// edges[i] = producer indices instruction i must wait for.
	edges := make(map[int][]int)
	for idx, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			writes, reads = nil, nil
			continue
		}
		pipe := in.Pipe()
		// Latest cross-pipe producer per producing pipe.
		latest := map[isa.Pipe]int{}
		scan := func(list []access, r isa.Region) {
			for _, a := range list {
				if a.pipe != pipe && a.region.Overlaps(r) {
					if cur, ok := latest[a.pipe]; !ok || a.idx > cur {
						latest[a.pipe] = a.idx
					}
				}
			}
		}
		for _, r := range in.Reads() {
			scan(writes, r)
		}
		for _, w := range in.Writes() {
			scan(writes, w)
			scan(reads, w)
		}
		for _, p := range latest {
			edges[idx] = append(edges[idx], p)
		}
		for _, r := range in.Reads() {
			reads = append(reads, access{idx, pipe, r})
		}
		for _, w := range in.Writes() {
			writes = append(writes, access{idx, pipe, w})
		}
	}

	// Transitive pruning, in consumer order. waited[q][d] holds 1 + the
	// latest producer index on pipe q that some earlier consumer on pipe d
	// has waited for; edges at or below it are already ordered. Processing
	// each consumer's producers in ascending order keeps the surviving
	// edges of a pipe pair strictly increasing on both sides.
	var waited [isa.NumPipes][isa.NumPipes]int
	for idx := range prog.Instrs {
		producers := edges[idx]
		if len(producers) == 0 {
			continue
		}
		sort.Ints(producers)
		d := prog.Instrs[idx].Pipe()
		kept := producers[:0]
		for _, j := range producers {
			q := prog.Instrs[j].Pipe()
			if j < waited[q][d] {
				continue
			}
			waited[q][d] = j + 1
			kept = append(kept, j)
		}
		if len(kept) == 0 {
			delete(edges, idx)
			continue
		}
		edges[idx] = kept
	}

	// Rebuild with flags. setsAfter[j] lists the consumers of producer j.
	setsAfter := make(map[int][]int)
	for idx := range prog.Instrs {
		for _, p := range edges[idx] {
			setsAfter[p] = append(setsAfter[p], idx)
		}
	}
	out := New(prog.Name + "+sync")
	eventCounter := map[[2]isa.Pipe]int{}
	// Event id assigned to each (producer, consumer) edge, in producer
	// program order so set/wait sequences agree.
	edgeEvent := map[[2]int]int{}
	for j := range prog.Instrs {
		for _, consumer := range setsAfter[j] {
			pair := [2]isa.Pipe{prog.Instrs[j].Pipe(), prog.Instrs[consumer].Pipe()}
			ev := eventCounter[pair] % isa.EventsPerPair
			eventCounter[pair]++
			edgeEvent[[2]int{j, consumer}] = ev
		}
	}
	for idx, in := range prog.Instrs {
		for _, p := range edges[idx] {
			out.Emit(&isa.WaitFlagInstr{
				SrcPipe: prog.Instrs[p].Pipe(),
				DstPipe: in.Pipe(),
				Event:   edgeEvent[[2]int{p, idx}],
			})
		}
		out.Emit(in)
		for _, consumer := range setsAfter[idx] {
			out.Emit(&isa.SetFlagInstr{
				SrcPipe: in.Pipe(),
				DstPipe: prog.Instrs[consumer].Pipe(),
				Event:   edgeEvent[[2]int{idx, consumer}],
			})
		}
	}
	return out
}
