package cce

import (
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
)

func TestEmitVecSplitsOnRepeatCap(t *testing.T) {
	p := New("t")
	p.EmitVec(isa.VAdd, isa.Contig(isa.UB, 0), isa.Contig(isa.UB, 1<<16), isa.Contig(isa.UB, 1<<17),
		0, isa.FullMask(), 600)
	if p.Len() != 3 {
		t.Fatalf("600 repeats -> %d instructions, want 3", p.Len())
	}
	// Second chunk starts 255 repeats further along each operand.
	v := p.Instrs[1].(*isa.VecInstr)
	if v.Dst.Addr != 255*isa.BlocksPerRepeat*isa.BlockBytes {
		t.Errorf("second chunk dst addr %d", v.Dst.Addr)
	}
	if v.Repeat != 255 {
		t.Errorf("second chunk repeat %d", v.Repeat)
	}
	last := p.Instrs[2].(*isa.VecInstr)
	if last.Repeat != 90 {
		t.Errorf("last chunk repeat %d", last.Repeat)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEmitVecRespectsRepeatStrideZero(t *testing.T) {
	// Reduction addressing: chunks must NOT advance a stride-0 operand.
	p := New("t")
	dst := isa.Operand{Buf: isa.UB, Addr: 0, BlkStride: 1, RepStride: 0}
	p.EmitVec(isa.VMax, dst, isa.Contig(isa.UB, 1024), dst, 0, isa.FullMask(), 300)
	second := p.Instrs[1].(*isa.VecInstr)
	if second.Dst.Addr != 0 {
		t.Errorf("stride-0 dst advanced to %d", second.Dst.Addr)
	}
	if second.Src0.Addr != 1024+255*isa.BlocksPerRepeat*isa.BlockBytes {
		t.Errorf("contiguous src advanced to %d", second.Src0.Addr)
	}
}

func TestEmitDupTail(t *testing.T) {
	p := New("t")
	p.EmitDup(isa.UB, 0, 128+48, fp16.One) // one full repeat + 3 blocks
	if p.Len() != 2 {
		t.Fatalf("instructions = %d", p.Len())
	}
	tail := p.Instrs[1].(*isa.VecInstr)
	if tail.Mask.Count() != 48 {
		t.Errorf("tail mask %d lanes", tail.Mask.Count())
	}
	if tail.Dst.Addr != 128*2 {
		t.Errorf("tail addr %d", tail.Dst.Addr)
	}
}

func TestEmitDupPanicsOnMisalignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("misaligned dup accepted")
		}
	}()
	New("t").EmitDup(isa.UB, 0, 17, fp16.One)
}

func TestEmitElementwiseCounts(t *testing.T) {
	p := New("t")
	p.EmitElementwise(isa.VMul, isa.UB, 0, 4096, 8192, 1000*16)
	// 1000 blocks = 125 full repeats (1 instr) + 0 tail.
	if p.Len() != 1 {
		t.Fatalf("instructions = %d", p.Len())
	}
	p2 := New("t2")
	p2.EmitElementwise(isa.VMul, isa.UB, 0, 4096, 8192, 1003*16)
	if p2.Len() != 2 {
		t.Fatalf("with tail: instructions = %d", p2.Len())
	}
}

func TestEmitIm2ColCoverage(t *testing.T) {
	cp := isa.ConvParams{Ih: 20, Iw: 20, Kh: 2, Kw: 3, Sh: 2, Sw: 2}
	p := New("t")
	p.EmitIm2Col(0, isa.UB, 0, cp, 2)
	// One instruction per (c1, xk, yk) since fracs <= 255.
	if want := 2 * 2 * 3; p.Len() != want {
		t.Fatalf("instructions = %d, want %d", p.Len(), want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Destinations tile contiguously: fracs fractals apart.
	fr := cp.Fractals()
	for i, in := range p.Instrs {
		im := in.(*isa.Im2ColInstr)
		if im.DstAddr != i*fr*isa.FractalBytes {
			t.Errorf("instr %d dst %d", i, im.DstAddr)
		}
	}
}

func TestEmitCol2ImRange(t *testing.T) {
	cp := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	p := New("t")
	p.EmitCol2ImRange(0, 1<<14, cp, 16, 4, 2, 10)
	if p.Len() != 9 {
		t.Fatalf("instructions = %d, want 9", p.Len())
	}
	for _, in := range p.Instrs {
		ci := in.(*isa.Col2ImInstr)
		if ci.RowBase != 2 || ci.Rows != 10 || ci.Patch0 != 16 || ci.Repeat != 4 {
			t.Errorf("col2im fields wrong: %+v", ci)
		}
		if err := ci.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestValidateReportsPosition(t *testing.T) {
	p := New("prog")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 64)
	p.Emit(&isa.VecInstr{Op: isa.VAdd, Repeat: 0}) // invalid
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid program accepted")
	}
	if got := err.Error(); !contains(got, "instr 1") {
		t.Errorf("error lacks position: %v", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
