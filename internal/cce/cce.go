// Package cce represents lowered kernel code for the simulated DaVinci AI
// Core: a Program is the instruction stream a CCE C kernel would issue
// (paper §IV). Kernels in internal/ops build Programs through the helpers
// here, which encapsulate the hardware's repeat-count cap and the common
// long-vector emission patterns.
package cce

import (
	"errors"
	"fmt"

	"davinci/internal/fp16"
	"davinci/internal/isa"
)

// Program is an ordered AI Core instruction stream.
type Program struct {
	Name   string
	Instrs []isa.Instr
}

// New creates an empty program.
func New(name string) *Program { return &Program{Name: name} }

// Emit appends one instruction.
func (p *Program) Emit(in isa.Instr) { p.Instrs = append(p.Instrs, in) }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// InstrError pairs an invalid instruction with its position in the stream.
type InstrError struct {
	Index int
	Err   error
}

// InstrErrors validates every instruction and returns all failures, in
// program order. The linter (internal/lint) reports each one as its own
// diagnostic.
func (p *Program) InstrErrors() []InstrError {
	var errs []InstrError
	for i, in := range p.Instrs {
		if err := in.Validate(); err != nil {
			errs = append(errs, InstrError{Index: i, Err: err})
		}
	}
	return errs
}

// Validate checks every instruction and reports all failures with their
// positions as one wrapped multi-error (errors.Join), so a malformed
// program surfaces every invalid instruction at once instead of the first.
func (p *Program) Validate() error {
	var errs []error
	for _, ie := range p.InstrErrors() {
		errs = append(errs, fmt.Errorf("cce: %s instr %d (%s): %w", p.Name, ie.Index, p.Instrs[ie.Index], ie.Err))
	}
	return errors.Join(errs...)
}

// EmitVec emits a vector instruction for totalRepeat repeat iterations,
// splitting into multiple instructions when the hardware repeat cap is
// exceeded and advancing every operand by its repeat stride. This is how a
// compiler lowers "one instruction operates over an entire tile" (§V) onto
// the real 8-bit repeat field.
func (p *Program) EmitVec(op isa.VecOp, dst, src0, src1 isa.Operand, scalar fp16.Float16, mask isa.Mask, totalRepeat int) {
	done := 0
	for _, rep := range isa.SplitRepeat(totalRepeat) {
		adv := func(o isa.Operand) isa.Operand {
			o.Addr += done * o.RepStride * isa.BlockBytes
			return o
		}
		p.Emit(&isa.VecInstr{
			Op:     op,
			Dst:    adv(dst),
			Src0:   adv(src0),
			Src1:   adv(src1),
			Scalar: scalar,
			Mask:   mask,
			Repeat: rep,
		})
		done += rep
	}
}

// EmitDup fills count 32-byte-aligned contiguous Float16 elements at
// (buf, addr) with v. count must be a multiple of ElemsPerBlock.
func (p *Program) EmitDup(buf isa.BufID, addr, count int, v fp16.Float16) {
	if count%isa.ElemsPerBlock != 0 {
		panic(fmt.Sprintf("cce: dup count %d not block aligned", count))
	}
	blocks := count / isa.ElemsPerBlock
	full := blocks / isa.BlocksPerRepeat
	if full > 0 {
		p.EmitVec(isa.VDup, isa.Contig(buf, addr), isa.Operand{}, isa.Operand{}, v, isa.FullMask(), full)
	}
	if tail := blocks % isa.BlocksPerRepeat; tail != 0 {
		p.EmitVec(isa.VDup, isa.Contig(buf, addr+full*isa.LanesPerRepeat*fp16.Bytes),
			isa.Operand{}, isa.Operand{}, v, isa.MaskFirstN(tail*isa.ElemsPerBlock), 1)
	}
}

// EmitElementwise emits dst = op(src0, src1) over count contiguous Float16
// elements (count must be a multiple of ElemsPerBlock; tiles in the UB
// always are). A full-mask instruction covers whole repeats; a masked tail
// instruction covers the remainder.
func (p *Program) EmitElementwise(op isa.VecOp, buf isa.BufID, dstAddr, src0Addr, src1Addr, count int) {
	p.EmitElementwiseScalar(op, buf, dstAddr, src0Addr, src1Addr, count, 0)
}

// EmitElementwiseScalar is EmitElementwise for ops that take a scalar.
func (p *Program) EmitElementwiseScalar(op isa.VecOp, buf isa.BufID, dstAddr, src0Addr, src1Addr, count int, scalar fp16.Float16) {
	if count%isa.ElemsPerBlock != 0 {
		panic(fmt.Sprintf("cce: elementwise count %d not block aligned", count))
	}
	blocks := count / isa.ElemsPerBlock
	full := blocks / isa.BlocksPerRepeat
	bytesDone := full * isa.LanesPerRepeat * fp16.Bytes
	if full > 0 {
		p.EmitVec(op, isa.Contig(buf, dstAddr), isa.Contig(buf, src0Addr), isa.Contig(buf, src1Addr),
			scalar, isa.FullMask(), full)
	}
	if tail := blocks % isa.BlocksPerRepeat; tail != 0 {
		p.EmitVec(op, isa.Contig(buf, dstAddr+bytesDone), isa.Contig(buf, src0Addr+bytesDone),
			isa.Contig(buf, src1Addr+bytesDone), scalar, isa.MaskFirstN(tail*isa.ElemsPerBlock), 1)
	}
}

// EmitCopy emits a contiguous DMA of n bytes.
func (p *Program) EmitCopy(srcBuf isa.BufID, srcAddr int, dstBuf isa.BufID, dstAddr, n int) {
	p.Emit(&isa.CopyInstr{SrcBuf: srcBuf, SrcAddr: srcAddr, DstBuf: dstBuf, DstAddr: dstAddr, NBurst: 1, BurstBytes: n})
}

// EmitBarrier emits a full pipe barrier.
func (p *Program) EmitBarrier() { p.Emit(&isa.BarrierInstr{}) }

// EmitScalar charges scalar-unit bookkeeping work.
func (p *Program) EmitScalar(ops int, note string) {
	p.Emit(&isa.ScalarInstr{Ops: ops, Note: note})
}

// EmitIm2Col emits the Im2Col loads that materialize the full
// (C1Len, Kh, Kw, OhOw16, C0) im2col tensor at dstAddr in dstBuf from the
// NC1HWC0 tile at srcAddr in L1, using repeat mode 1 with the loop order
// [c1, (xk, yk), (x, y)] described at the end of §III-C: one instruction
// per (c1, xk, yk) covering all patches (split on the repeat cap).
func (p *Program) EmitIm2Col(srcAddr int, dstBuf isa.BufID, dstAddr int, cp isa.ConvParams, c1Len int) {
	fracs := cp.Fractals()
	dst := dstAddr
	for c1 := 0; c1 < c1Len; c1++ {
		for xk := 0; xk < cp.Kh; xk++ {
			for yk := 0; yk < cp.Kw; yk++ {
				patch0 := 0
				for _, rep := range isa.SplitRepeat(fracs) {
					p.Emit(&isa.Im2ColInstr{
						SrcBuf: isa.L1, SrcAddr: srcAddr,
						DstBuf: dstBuf, DstAddr: dst,
						P: cp, C1Len: c1Len, C1Idx: c1, Xk: xk, Yk: yk,
						Patch0: patch0, RepeatMode: isa.Im2ColRepeatPatches, Repeat: rep,
					})
					patch0 += rep * isa.FractalPatches
					dst += rep * isa.FractalBytes
				}
			}
		}
	}
}

// EmitIm2ColRange is EmitIm2Col restricted to one c1 slice and to the
// fractal-aligned patch range [patch0, patch0+fracs*16): the unit of work a
// patch-banded schedule processes per iteration. Destination fractals for
// each (xk, yk) are written fracs apart, i.e. into a
// (Kh, Kw, fracs*16, C0) band tensor at dstAddr.
// rowBase/rows describe the image-row band present in the L1 tile at
// srcAddr (0, 0 for the whole image).
func (p *Program) EmitIm2ColRange(srcAddr int, dstBuf isa.BufID, dstAddr int, cp isa.ConvParams, c1Len, c1, patch0, fracs, rowBase, rows int) {
	dst := dstAddr
	for xk := 0; xk < cp.Kh; xk++ {
		for yk := 0; yk < cp.Kw; yk++ {
			pt := patch0
			for _, rep := range isa.SplitRepeat(fracs) {
				p.Emit(&isa.Im2ColInstr{
					SrcBuf: isa.L1, SrcAddr: srcAddr,
					DstBuf: dstBuf, DstAddr: dst,
					P: cp, C1Len: c1Len, C1Idx: c1, Xk: xk, Yk: yk,
					Patch0: pt, RowBase: rowBase, Rows: rows,
					RepeatMode: isa.Im2ColRepeatPatches, Repeat: rep,
				})
				pt += rep * isa.FractalPatches
				dst += rep * isa.FractalBytes
			}
		}
	}
}

// EmitCol2ImRange merges a (Kh, Kw, fracs*16, C0) band tensor at srcAddr
// into an output row band: a UB tile holding image rows
// [rowBase, rowBase+rows) that the caller has initialized (zero, or partial
// sums re-loaded from global memory at band boundaries).
func (p *Program) EmitCol2ImRange(srcAddr, dstAddr int, cp isa.ConvParams, patch0, fracs, rowBase, rows int) {
	src := srcAddr
	for xk := 0; xk < cp.Kh; xk++ {
		for yk := 0; yk < cp.Kw; yk++ {
			pt := patch0
			for _, rep := range isa.SplitRepeat(fracs) {
				p.Emit(&isa.Col2ImInstr{
					SrcBuf: isa.UB, SrcAddr: src,
					DstBuf: isa.UB, DstAddr: dstAddr,
					P: cp, C1Len: 1, C1Idx: 0, Xk: xk, Yk: yk,
					Patch0: pt, RowBase: rowBase, Rows: rows, Repeat: rep,
				})
				pt += rep * isa.FractalPatches
				src += rep * isa.FractalBytes
			}
		}
	}
}

// EmitCol2Im emits the Col2Im instructions that merge a full
// (C1Len, Kh, Kw, OhOw16, C0) fractal tensor at srcAddr into the
// zero-initialized NC1HWC0 tile at dstAddr (both in the UB): one
// instruction per (c1, xk, yk), repeat mode 1 over the patches (§V-B:
// "a Col2Im instruction needs to be issued Kh*Kw times").
func (p *Program) EmitCol2Im(srcAddr, dstAddr int, cp isa.ConvParams, c1Len int) {
	fracs := cp.Fractals()
	src := srcAddr
	for c1 := 0; c1 < c1Len; c1++ {
		for xk := 0; xk < cp.Kh; xk++ {
			for yk := 0; yk < cp.Kw; yk++ {
				patch0 := 0
				for _, rep := range isa.SplitRepeat(fracs) {
					p.Emit(&isa.Col2ImInstr{
						SrcBuf: isa.UB, SrcAddr: src,
						DstBuf: isa.UB, DstAddr: dstAddr,
						P: cp, C1Len: c1Len, C1Idx: c1, Xk: xk, Yk: yk,
						Patch0: patch0, Repeat: rep,
					})
					patch0 += rep * isa.FractalPatches
					src += rep * isa.FractalBytes
				}
			}
		}
	}
}
