package fp16

// Slice kernels: lane-wise operations over packed little-endian binary16
// byte slices, used by the simulator's flattened replay path (see
// aicore.FlatProgram). All slices must have the same even length. dst may
// alias a or b: lanes are processed in increasing order, so aliased
// operands observe earlier lanes' results exactly as a sequential
// per-lane loop would.
//
// MaxSlice and MinSlice split off a fast path for the overwhelmingly
// common case (no NaN operand, not two zeroes): a single orderKey compare
// per lane. The remaining cases defer to the scalar functions, so the
// results are bit-identical to calling Max/Min per lane.

// MaxSlice stores lane-wise Max(a, b) into dst.
func MaxSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		x, y := Load(a, i), Load(b, i)
		if (x|y)&0x7fff != 0 && x&0x7fff <= 0x7c00 && y&0x7fff <= 0x7c00 {
			if orderKey(x) < orderKey(y) {
				x = y
			}
			Store(dst, i, x)
			continue
		}
		Store(dst, i, Max(x, y))
	}
}

// MinSlice stores lane-wise Min(a, b) into dst.
func MinSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		x, y := Load(a, i), Load(b, i)
		if (x|y)&0x7fff != 0 && x&0x7fff <= 0x7c00 && y&0x7fff <= 0x7c00 {
			// Equal keys imply identical bit patterns, so either pick
			// matches Min exactly.
			if orderKey(y) < orderKey(x) {
				x = y
			}
			Store(dst, i, x)
			continue
		}
		Store(dst, i, Min(x, y))
	}
}

// AddSlice stores lane-wise a+b into dst.
func AddSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, Add(Load(a, i), Load(b, i)))
	}
}

// SubSlice stores lane-wise a-b into dst.
func SubSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, Sub(Load(a, i), Load(b, i)))
	}
}

// MulSlice stores lane-wise a*b into dst.
func MulSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, Mul(Load(a, i), Load(b, i)))
	}
}

// AddsSlice stores lane-wise a+s into dst.
func AddsSlice(dst, a []byte, s Float16) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, Add(Load(a, i), s))
	}
}

// MulsSlice stores lane-wise a*s into dst.
func MulsSlice(dst, a []byte, s Float16) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, Mul(Load(a, i), s))
	}
}

// DupSlice broadcasts s into every lane of dst.
func DupSlice(dst []byte, s Float16) {
	for i := 0; i < len(dst); i += Bytes {
		Store(dst, i, s)
	}
}

// CmpEqSlice stores lane-wise (a == b ? 1.0 : 0.0) into dst.
func CmpEqSlice(dst, a, b []byte) {
	for i := 0; i < len(dst); i += Bytes {
		out := Zero
		if Equal(Load(a, i), Load(b, i)) {
			out = One
		}
		Store(dst, i, out)
	}
}
