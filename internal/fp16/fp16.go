// Package fp16 implements IEEE 754 binary16 ("half precision", Float16)
// arithmetic in software.
//
// The DaVinci architecture adopts Float16 as its primary data type: the
// fractal dimension C0 holds 16 Float16 elements so that one data-fractal is
// always 16*16*2 bytes = 4096 bits (paper §III-B). All simulated buffers
// store raw binary16 bit patterns; arithmetic is performed by widening to
// float32, operating, and rounding back to the nearest representable
// binary16 value (round-to-nearest-even), which matches the behaviour of
// hardware half-precision vector units for the single-operation case.
package fp16

import "math"

// Float16 is the bit pattern of an IEEE 754 binary16 value.
type Float16 uint16

// Interesting constants.
const (
	// PositiveInfinity and NegativeInfinity are the binary16 infinities.
	PositiveInfinity Float16 = 0x7c00
	NegativeInfinity Float16 = 0xfc00
	// NaN is a quiet binary16 NaN.
	NaN Float16 = 0x7e00
	// MaxValue is the largest finite binary16 value (65504).
	MaxValue Float16 = 0x7bff
	// LowestValue is the most negative finite binary16 value (-65504).
	LowestValue Float16 = 0xfbff
	// SmallestSubnormal is the smallest positive binary16 value (2^-24).
	SmallestSubnormal Float16 = 0x0001
	// One is binary16 1.0.
	One Float16 = 0x3c00
	// Zero is binary16 +0.0.
	Zero Float16 = 0x0000
)

// FromFloat32 converts a float32 to the nearest binary16 value using
// round-to-nearest-even. Overflow produces infinity, underflow produces
// (possibly subnormal) small values or signed zero.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int32((b>>23)&0xff) - 127
	frac := b & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if frac != 0 {
			// Preserve a quiet NaN, keep top fraction bits.
			return Float16(sign | 0x7e00 | uint16(frac>>13))
		}
		return Float16(sign | 0x7c00)
	case exp > 15: // overflow -> infinity
		return Float16(sign | 0x7c00)
	case exp >= -14: // normal range
		// 10-bit mantissa; round to nearest even on the 13 dropped bits.
		mant := frac >> 13
		round := frac & 0x1fff
		h := sign | uint16(exp+15)<<10 | uint16(mant)
		if round > 0x1000 || (round == 0x1000 && mant&1 == 1) {
			h++ // may carry into exponent; that is correct behaviour
		}
		return Float16(h)
	case exp >= -25: // subnormal range (or rounds up to the smallest subnormal)
		// Implicit leading 1 becomes explicit; shift depends on exponent.
		frac |= 0x800000
		shift := uint32(-exp - 14 + 13) // 14..24
		mant := frac >> shift
		dropped := frac & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		h := sign | uint16(mant)
		if dropped > half || (dropped == half && mant&1 == 1) {
			h++
		}
		return Float16(h)
	default: // underflow to signed zero
		return Float16(sign)
	}
}

// ToFloat32 converts a binary16 value to float32 exactly (binary16 values
// are all exactly representable in float32).
func ToFloat32(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if frac == 0 { // signed zero
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3ff
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	case 31:
		if frac == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7f800000 | frac<<13 | 1<<22)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | frac<<13)
	}
}

// FromFloat64 converts a float64 to the nearest binary16 value.
func FromFloat64(f float64) Float16 { return FromFloat32(float32(f)) }

// ToFloat64 converts a binary16 value to float64 exactly.
func ToFloat64(h Float16) float64 { return float64(ToFloat32(h)) }

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool { return h&0x7c00 == 0x7c00 && h&0x3ff != 0 }

// IsInf reports whether h is an infinity. sign > 0 tests +Inf, sign < 0
// tests -Inf and sign == 0 tests either.
func (h Float16) IsInf(sign int) bool {
	if h&0x7fff != 0x7c00 {
		return false
	}
	switch {
	case sign > 0:
		return h&0x8000 == 0
	case sign < 0:
		return h&0x8000 != 0
	default:
		return true
	}
}

// Signbit reports whether h is negative or negative zero.
func (h Float16) Signbit() bool { return h&0x8000 != 0 }

// Float32 is shorthand for ToFloat32(h).
func (h Float16) Float32() float32 { return ToFloat32(h) }

// Add returns a+b rounded to binary16.
func Add(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) + ToFloat32(b)) }

// Sub returns a-b rounded to binary16.
func Sub(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) - ToFloat32(b)) }

// Mul returns a*b rounded to binary16.
func Mul(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) * ToFloat32(b)) }

// Div returns a/b rounded to binary16.
func Div(a, b Float16) Float16 { return FromFloat32(ToFloat32(a) / ToFloat32(b)) }

// orderKey maps a non-NaN bit pattern to an unsigned key that increases
// with numeric value: negative values (sign bit set) reverse their
// magnitude order under complement, positive values shift above them. One
// integer compare then replaces the widen-to-float32 comparison, which is
// the hot path of the simulated vector max/min reductions.
func orderKey(h Float16) uint16 {
	if h&0x8000 != 0 {
		return ^uint16(h)
	}
	return uint16(h) | 0x8000
}

// Max returns the larger of a and b. If either operand is NaN the other is
// returned (matching the maxnum semantics of vector max instructions).
func Max(a, b Float16) Float16 {
	switch {
	case a.IsNaN():
		return b
	case b.IsNaN():
		return a
	case (a|b)&0x7fff == 0: // zeroes compare equal; keep a like Less did
		return a
	case orderKey(a) < orderKey(b):
		return b
	}
	return a
}

// Min returns the smaller of a and b, with maxnum-style NaN handling.
func Min(a, b Float16) Float16 {
	switch {
	case a.IsNaN():
		return b
	case b.IsNaN():
		return a
	case (a|b)&0x7fff == 0:
		return b
	case orderKey(a) < orderKey(b):
		return a
	}
	return b
}

// Less reports a < b in numeric order (false if either is NaN). Zeroes of
// either sign compare equal.
func Less(a, b Float16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	if (a|b)&0x7fff == 0 {
		return false
	}
	return orderKey(a) < orderKey(b)
}

// Equal reports numeric equality (+0 == -0, NaN != NaN). Binary16
// representations are unique apart from the signed zeroes, so this is a
// bit compare plus the zero case.
func Equal(a, b Float16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	return a == b || (a|b)&0x7fff == 0
}

// Neg returns h with its sign flipped.
func Neg(h Float16) Float16 { return h ^ 0x8000 }

// Abs returns h with its sign cleared.
func Abs(h Float16) Float16 { return h &^ 0x8000 }
