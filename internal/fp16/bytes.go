package fp16

import "encoding/binary"

// Bytes is the size of one binary16 element in memory.
const Bytes = 2

// Load reads the binary16 element at byte offset off from b (little endian,
// matching the simulated scratchpad memories).
func Load(b []byte, off int) Float16 {
	return Float16(binary.LittleEndian.Uint16(b[off : off+2]))
}

// Store writes h at byte offset off in b.
func Store(b []byte, off int, h Float16) {
	binary.LittleEndian.PutUint16(b[off:off+2], uint16(h))
}

// EncodeSlice converts a float32 slice to packed binary16 bytes.
func EncodeSlice(src []float32) []byte {
	out := make([]byte, len(src)*Bytes)
	for i, f := range src {
		Store(out, i*Bytes, FromFloat32(f))
	}
	return out
}

// DecodeSlice converts packed binary16 bytes to a float32 slice.
// len(b) must be even.
func DecodeSlice(b []byte) []float32 {
	out := make([]float32, len(b)/Bytes)
	for i := range out {
		out[i] = ToFloat32(Load(b, i*Bytes))
	}
	return out
}

// Fill writes n copies of h starting at byte offset off.
func Fill(b []byte, off int, n int, h Float16) {
	for i := 0; i < n; i++ {
		Store(b, off+i*Bytes, h)
	}
}
