package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		f float32
		h Float16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},
		{-65504, 0xfbff},
		{65536, 0x7c00},  // overflow -> +Inf
		{-65536, 0xfc00}, // overflow -> -Inf
		{5.9604645e-08, 0x0001},
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
}

func TestToFloat32Known(t *testing.T) {
	cases := []struct {
		h Float16
		f float32
	}{
		{0x3c00, 1},
		{0xc000, -2},
		{0x7bff, 65504},
		{0x0001, 5.9604645e-08}, // smallest subnormal
		{0x03ff, 6.097555e-05},  // largest subnormal
		{0x0400, 6.1035156e-05}, // smallest normal
	}
	for _, c := range cases {
		if got := ToFloat32(c.h); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestNaNHandling(t *testing.T) {
	if !NaN.IsNaN() {
		t.Fatal("NaN constant is not NaN")
	}
	if !FromFloat32(float32(math.NaN())).IsNaN() {
		t.Error("FromFloat32(NaN) not NaN")
	}
	if f := ToFloat32(NaN); !math.IsNaN(float64(f)) {
		t.Error("ToFloat32(NaN) not NaN")
	}
	// maxnum semantics: max(NaN, x) == x.
	if got := Max(NaN, One); got != One {
		t.Errorf("Max(NaN, 1) = %#04x, want 1.0", got)
	}
	if got := Min(One, NaN); got != One {
		t.Errorf("Min(1, NaN) = %#04x, want 1.0", got)
	}
	if Less(NaN, One) || Less(One, NaN) || Equal(NaN, NaN) {
		t.Error("NaN comparisons must be false")
	}
}

func TestInfPredicates(t *testing.T) {
	if !PositiveInfinity.IsInf(0) || !PositiveInfinity.IsInf(1) || PositiveInfinity.IsInf(-1) {
		t.Error("+Inf predicate wrong")
	}
	if !NegativeInfinity.IsInf(0) || !NegativeInfinity.IsInf(-1) || NegativeInfinity.IsInf(1) {
		t.Error("-Inf predicate wrong")
	}
	if MaxValue.IsInf(0) {
		t.Error("finite value reported infinite")
	}
}

// Property: every binary16 bit pattern survives a round trip through float32.
func TestRoundTripAllValues(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := Float16(i)
		f := ToFloat32(h)
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("NaN %#04x did not round trip to NaN (got %#04x)", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("%#04x -> %v -> %#04x round trip failed", h, f, back)
		}
	}
}

// Property: conversion from float32 picks a nearest representable value.
func TestQuickNearest(t *testing.T) {
	f := func(bits uint32) bool {
		x := math.Float32frombits(bits)
		if math.IsNaN(float64(x)) {
			return FromFloat32(x).IsNaN()
		}
		h := FromFloat32(x)
		y := ToFloat32(h)
		if math.IsInf(float64(y), 0) {
			// Overflow is allowed only past the halfway point to 65536.
			return float32(math.Abs(float64(x))) >= 65520
		}
		// |x-y| must not exceed one ULP step to either neighbour.
		up := ToFloat32(h + 1)
		var down float32
		if h&0x7fff == 0 {
			down = ToFloat32((h ^ 0x8000) + 1)
		} else {
			down = ToFloat32(h - 1)
		}
		lo, hi := down, up
		if lo > hi {
			lo, hi = hi, lo
		}
		mid1 := (float64(lo) + float64(y)) / 2
		mid2 := (float64(hi) + float64(y)) / 2
		return float64(x) >= mid1-1e-12 && float64(x) <= mid2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: ordering of finite halves matches float32 ordering.
func TestQuickOrdering(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Float16(a), Float16(b)
		if x.IsNaN() || y.IsNaN() {
			return !Less(x, y) && !Less(y, x)
		}
		return Less(x, y) == (ToFloat32(x) < ToFloat32(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max/Min are commutative (up to zero signs) and pick an operand.
func TestQuickMaxMin(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Float16(a), Float16(b)
		mx, mn := Max(x, y), Min(x, y)
		pick := func(v Float16) bool { return v == x || v == y }
		if !pick(mx) || !pick(mn) {
			return false
		}
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		return !Less(mx, mn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat32(1.5), FromFloat32(2.25)
	if got := ToFloat32(Add(a, b)); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
	if got := ToFloat32(Sub(a, b)); got != -0.75 {
		t.Errorf("1.5-2.25 = %v", got)
	}
	if got := ToFloat32(Mul(a, b)); got != 3.375 {
		t.Errorf("1.5*2.25 = %v", got)
	}
	if got := ToFloat32(Div(b, a)); got != 1.5 {
		t.Errorf("2.25/1.5 = %v", got)
	}
	if got := Neg(One); ToFloat32(got) != -1 {
		t.Errorf("Neg(1) = %v", ToFloat32(got))
	}
	if got := Abs(FromFloat32(-3)); ToFloat32(got) != 3 {
		t.Errorf("Abs(-3) = %v", ToFloat32(got))
	}
}

func TestAdditionSaturatesToInf(t *testing.T) {
	if got := Add(MaxValue, MaxValue); !got.IsInf(1) {
		t.Errorf("65504+65504 = %#04x, want +Inf", got)
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []float32{0, 1, -2, 0.5, 65504}
	b := EncodeSlice(src)
	if len(b) != len(src)*Bytes {
		t.Fatalf("encoded length %d", len(b))
	}
	got := DecodeSlice(b)
	for i := range src {
		if got[i] != src[i] {
			t.Errorf("slice[%d] = %v, want %v", i, got[i], src[i])
		}
	}
	Fill(b, 2, 3, One)
	got = DecodeSlice(b)
	want := []float32{0, 1, 1, 1, 65504}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("after Fill, slice[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoadStoreRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		off := rng.Intn(31) * 2
		h := Float16(rng.Intn(0x10000))
		Store(b, off, h)
		if got := Load(b, off); got != h {
			t.Fatalf("Load(Store(%#04x)) = %#04x", h, got)
		}
	}
}

// FuzzRoundTrip feeds arbitrary float32 bit patterns through the
// conversion pair; run with `go test -fuzz=FuzzRoundTrip ./internal/fp16`
// for continuous fuzzing (the seed corpus runs in normal `go test`).
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []uint32{0, 0x3f800000, 0x7f800000, 0x7fc00000, 0x00000001, 0x38800000, 0xb335432d, 0x103e5db0} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		h := FromFloat32(x)
		y := ToFloat32(h)
		// The half value must itself be a fixed point of the conversion.
		if !h.IsNaN() && FromFloat32(y) != h {
			t.Fatalf("fixed point violated: %#08x -> %#04x -> %v", bits, h, y)
		}
		if math.IsNaN(float64(x)) != h.IsNaN() {
			t.Fatalf("NaN not preserved for %#08x", bits)
		}
	})
}
