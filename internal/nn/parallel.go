package nn

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Parallel runs several branches on the same input and concatenates their
// outputs along the channel dimension — the Inception-block topology of
// the CNNs whose pooling layers the paper evaluates (InceptionV3/Xception,
// Table I). Branch outputs must share batch and spatial extents.
//
// The concatenation itself is data movement: each branch's activation is
// streamed through a core's Unified Buffer into its channel slot of the
// output, and the copies are charged to the simulated MTE pipes like any
// other transfer.
type Parallel struct {
	Tag      string
	Branches []*Sequential
}

// Name implements Layer.
func (l *Parallel) Name() string {
	if l.Tag != "" {
		return l.Tag
	}
	return fmt.Sprintf("parallel[%d branches]", len(l.Branches))
}

// Forward implements Layer: branches execute one after another on the
// device (each already parallelizes its tiles across the cores), then the
// concat streams every branch output into place.
func (l *Parallel) Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, *chip.Stats, error) {
	if len(l.Branches) == 0 {
		return nil, nil, fmt.Errorf("nn: %s has no branches", l.Name())
	}
	var outs []*tensor.Tensor
	total := &chip.Stats{}
	for i, b := range l.Branches {
		out, _, cycles, err := b.Forward(dev, in)
		if err != nil {
			return nil, nil, fmt.Errorf("nn: %s branch %d: %w", l.Name(), i, err)
		}
		if len(outs) > 0 {
			prev := outs[0]
			if out.Shape[0] != prev.Shape[0] || out.Shape[2] != prev.Shape[2] || out.Shape[3] != prev.Shape[3] {
				return nil, nil, fmt.Errorf("nn: %s branch %d shape %v incompatible with %v",
					l.Name(), i, out.Shape, prev.Shape)
			}
		}
		outs = append(outs, out)
		total.Cycles += cycles
	}
	cat, st, err := concatC1(dev, outs)
	if err != nil {
		return nil, nil, err
	}
	total.Cycles += st.Cycles
	total.Tiles += st.Tiles
	total.Work.AddSerial(&st.Work)
	return cat, total, nil
}

// concatC1 concatenates NC1HWC0 tensors along C1 by streaming each tile
// through a core (GM -> UB -> GM), charging the DMA like the real device
// would.
func concatC1(dev *chip.Chip, parts []*tensor.Tensor) (*tensor.Tensor, *chip.Stats, error) {
	n, h, w := parts[0].Shape[0], parts[0].Shape[2], parts[0].Shape[3]
	totalC1 := 0
	for _, p := range parts {
		totalC1 += p.Shape[1]
	}
	out := tensor.New(n, totalC1, h, w, tensor.C0)
	stats := &chip.Stats{Work: aicore.Stats{}}

	core := aicore.New(chip.Config{}.Buffers, nil)
	tileBytes := h * w * tensor.C0 * 2
	c1Off := 0
	for _, part := range parts {
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < part.Shape[1]; ci++ {
				core.Mem.ResetLocal()
				tile := tensor.SliceC1(part, ni, ci)
				srcGM, err := core.Mem.PlaceTensor(isa.GM, tile)
				if err != nil {
					return nil, nil, err
				}
				dstGM, err := core.Mem.Space(isa.GM).Alloc(tileBytes)
				if err != nil {
					return nil, nil, err
				}
				ub := core.Mem.Space(isa.UB)
				chunk := min(tileBytes, ub.Free()/2/isa.BlockBytes*isa.BlockBytes)
				stage := ub.MustAlloc(chunk)
				prog := cce.New("concat")
				for off := 0; off < tileBytes; off += chunk {
					nn := min(chunk, tileBytes-off)
					prog.EmitCopy(isa.GM, srcGM+off, isa.UB, stage, nn)
					prog.EmitCopy(isa.UB, stage, isa.GM, dstGM+off, nn)
				}
				st, err := core.Run(prog)
				if err != nil {
					return nil, nil, err
				}
				stats.Work.AddSerial(st)
				stats.Tiles++
				tensor.StoreC1(out, core.Mem.ReadTensor(isa.GM, dstGM, 1, 1, h, w, tensor.C0), ni, c1Off+ci)
			}
		}
		c1Off += part.Shape[1]
	}
	stats.Cycles = stats.Work.Cycles
	return out, stats, nil
}
