package nn

import (
	"math/rand"
	"testing"

	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func randWeights(rng *rand.Rand, co, c, k int) *tensor.Tensor {
	w := tensor.New(co, c, k, k)
	w.FillRandom(rng, 0.2)
	return w
}

func stemModel(rng *rand.Rand, poolVariant string) *Sequential {
	return &Sequential{Layers: []Layer{
		&Conv2D{Weights: randWeights(rng, 32, 16, 3), Stride: 2},
		&Conv2D{Weights: randWeights(rng, 32, 32, 3), Stride: 1, Pad: 1},
		&MaxPool2D{Kernel: 3, Stride: 2, Variant: poolVariant},
		&AvgPool2D{Kernel: 2, Stride: 2, Variant: "im2col"},
	}}
}

func TestSequentialShapesAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dev := chip.New(chip.Config{Cores: 2})
	in := tensor.New(1, 1, 33, 33, tensor.C0)
	in.FillRandom(rng, 1)

	model := stemModel(rng, "im2col")
	out, reports, total, err := model.Forward(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports: %d", len(reports))
	}
	// conv s2: 33 -> 16; conv s1 pad1: 16 -> 16; maxpool k3 s2: 16 -> 7;
	// avgpool k2 s2: 7 -> 3.
	wantShapes := [][2]int{{16, 16}, {16, 16}, {7, 7}, {3, 3}}
	for i, r := range reports {
		if r.OutShape[2] != wantShapes[i][0] || r.OutShape[3] != wantShapes[i][1] {
			t.Errorf("layer %d (%s): shape %v, want %v", i, r.Name, r.OutShape, wantShapes[i])
		}
		if r.Cycles <= 0 {
			t.Errorf("layer %d: zero cycles", i)
		}
	}
	if out.Shape[1] != 2 { // 32 channels = C1 2
		t.Errorf("final C1 = %d", out.Shape[1])
	}
	var sum int64
	for _, r := range reports {
		sum += r.Cycles
	}
	if sum != total {
		t.Errorf("total %d != sum %d", total, sum)
	}
}

// The pooling variant choice changes timing, never results.
func TestVariantsChangeTimingNotResults(t *testing.T) {
	dev := chip.New(chip.Config{Cores: 2})
	in := tensor.New(1, 1, 33, 33, tensor.C0)
	in.FillRandom(rand.New(rand.NewSource(2)), 1)

	run := func(variant string) (*tensor.Tensor, int64) {
		rng := rand.New(rand.NewSource(3)) // same weights both runs
		out, _, total, err := stemModel(rng, variant).Forward(dev, in)
		if err != nil {
			t.Fatal(err)
		}
		return out, total
	}
	outStd, cycStd := run("standard")
	outIm, cycIm := run("im2col")
	if tensor.MaxAbsDiff(outStd, outIm) != 0 {
		t.Error("pooling variant changed network output")
	}
	if cycIm >= cycStd {
		t.Errorf("im2col network (%d) not faster than standard (%d)", cycIm, cycStd)
	}
}

// A single-pool model must agree with the reference model end to end.
func TestSingleLayerAgainstReference(t *testing.T) {
	dev := chip.New(chip.Config{Cores: 1})
	rng := rand.New(rand.NewSource(4))
	in := tensor.New(1, 2, 20, 20, tensor.C0)
	in.FillRandom(rng, 4)
	model := &Sequential{Layers: []Layer{&MaxPool2D{Kernel: 3, Stride: 2}}}
	out, _, _, err := model.Forward(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	p := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	if tensor.MaxAbsDiff(out, ref.MaxPoolForward(in, p)) != 0 {
		t.Error("network pooling diverges from reference")
	}
}

func TestLayerErrors(t *testing.T) {
	dev := chip.New(chip.Config{Cores: 1})
	rng := rand.New(rand.NewSource(5))
	// Channel mismatch: weights want 32 channels, input has 16.
	model := &Sequential{Layers: []Layer{
		&Conv2D{Weights: randWeights(rng, 16, 32, 3), Stride: 1},
	}}
	in := tensor.New(1, 1, 8, 8, tensor.C0)
	if _, _, _, err := model.Forward(dev, in); err == nil {
		t.Error("channel mismatch accepted")
	}
	// Non-fractal input.
	if _, _, err := (&MaxPool2D{Kernel: 2, Stride: 2}).Forward(dev, tensor.New(4, 4)); err == nil {
		t.Error("non-fractal input accepted")
	}
	if _, _, err := (&AvgPool2D{Kernel: 2, Stride: 2}).Forward(dev, tensor.New(4, 4)); err == nil {
		t.Error("non-fractal input accepted")
	}
	if _, _, err := (&Conv2D{Weights: randWeights(rng, 16, 16, 3), Stride: 1}).Forward(dev, tensor.New(4, 4)); err == nil {
		t.Error("non-fractal input accepted")
	}
}

func TestLayerNames(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := map[Layer]string{
		&Conv2D{Weights: randWeights(rng, 8, 16, 3), Stride: 2}:              "conv3x3/2",
		&Conv2D{Tag: "stem", Weights: randWeights(rng, 8, 16, 1), Stride: 1}: "stem",
		&MaxPool2D{Kernel: 3, Stride: 2}:                                     "maxpool3x3/2[im2col]",
		&MaxPool2D{Kernel: 2, Stride: 2, Variant: "xysplit"}:                 "maxpool2x2/2[xysplit]",
		&AvgPool2D{Kernel: 7, Stride: 7, Variant: "cube"}:                    "avgpool7x7/7[cube]",
	}
	for l, want := range cases {
		if got := l.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// An Inception-style block: three branches over the same input, outputs
// concatenated along the channel dimension.
func TestParallelInceptionBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dev := chip.New(chip.Config{Cores: 2})
	block := &Parallel{Tag: "mixed0", Branches: []*Sequential{
		{Layers: []Layer{&Conv2D{Weights: randWeights(rng, 16, 16, 1), Stride: 1}}},
		{Layers: []Layer{&Conv2D{Weights: randWeights(rng, 32, 16, 3), Stride: 1, Pad: 1}}},
		{Layers: []Layer{&MaxPool2D{Kernel: 3, Stride: 1, Pad: 1}}},
	}}
	in := tensor.New(1, 1, 10, 10, tensor.C0)
	in.FillRandom(rng, 0.5)
	out, st, err := block.Forward(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	// Channels: 16 + 32 + 16 = 64 -> C1 = 4; spatial preserved.
	if out.Shape[1] != 4 || out.Shape[2] != 10 || out.Shape[3] != 10 {
		t.Fatalf("block output shape %v", out.Shape)
	}
	if st.Cycles <= 0 {
		t.Error("no cycles accounted")
	}
	// The maxpool branch occupies the last C1 slice; cross-check it.
	p := isa.ConvParams{Ih: 10, Iw: 10, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	want := ref.MaxPoolForward(in, p)
	got := tensor.SliceC1(out, 0, 3)
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Error("concatenated pool branch diverges")
	}
	// It composes inside Sequential too.
	model := &Sequential{Layers: []Layer{block, &MaxPool2D{Kernel: 2, Stride: 2}}}
	out2, _, _, err := model.Forward(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Shape[1] != 4 || out2.Shape[2] != 5 {
		t.Errorf("block+pool shape %v", out2.Shape)
	}
	if block.Name() != "mixed0" {
		t.Error("tag not used")
	}
	if (&Parallel{}).Name() != "parallel[0 branches]" {
		t.Error("default name")
	}
	if _, _, err := (&Parallel{}).Forward(dev, in); err == nil {
		t.Error("empty parallel accepted")
	}
	// Mismatched branch shapes rejected.
	bad := &Parallel{Branches: []*Sequential{
		{Layers: []Layer{&MaxPool2D{Kernel: 2, Stride: 2}}},
		{Layers: []Layer{&MaxPool2D{Kernel: 2, Stride: 1}}},
	}}
	if _, _, err := bad.Forward(dev, in); err == nil {
		t.Error("mismatched branches accepted")
	}
}
