package nn

import (
	"math/rand"
	"testing"

	"davinci/internal/chip"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func TestTapeRecordsAndBackpropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dev := chip.New(chip.Config{Cores: 1})
	model := &Sequential{Layers: []Layer{
		&Conv2D{Weights: randWeights(rng, 16, 16, 3), Stride: 1, Pad: 1},
		&MaxPool2D{Kernel: 2, Stride: 2},
	}}
	in := tensor.New(1, 1, 12, 12, tensor.C0)
	in.FillRandom(rng, 0.5)

	tape, err := model.ForwardTape(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	if tape.Out.Shape[2] != 6 || tape.Out.Shape[3] != 6 {
		t.Fatalf("tape out shape %v", tape.Out.Shape)
	}
	if tape.masks[1] == nil {
		t.Fatal("maxpool mask not recorded")
	}
	if tape.Cycles <= 0 || len(tape.Reports) != 2 {
		t.Fatalf("tape stats: cycles=%d reports=%d", tape.Cycles, len(tape.Reports))
	}

	grad := tensor.New(1, 1, 6, 6, tensor.C0)
	grad.FillRandom(rng, 0.5)
	wgrads, dIn, cycles, err := tape.Backward(dev, grad)
	if err != nil {
		t.Fatal(err)
	}
	if len(wgrads) != 1 {
		t.Fatalf("weight grads: %d", len(wgrads))
	}
	if wgrads[0].Grad.Shape[0] != 16 || wgrads[0].Grad.Shape[2] != 3 {
		t.Errorf("dW shape %v", wgrads[0].Grad.Shape)
	}
	// The first layer's dX is skipped (not needed), so dIn is the gradient
	// entering the conv layer, i.e. the pool backward result.
	poolP := isa.ConvParams{Ih: 12, Iw: 12, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	want := ref.MaxPoolBackward(tape.masks[1], grad, poolP, 12, 12)
	if tensor.MaxAbsDiff(dIn, want) != 0 {
		t.Error("pool backward through the tape diverges")
	}
	if cycles <= 0 {
		t.Error("no backward cycles")
	}
}

// End-to-end training through the nn API: the loss against a fixed target
// decreases.
func TestTrainingThroughTape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dev := chip.New(chip.Config{Cores: 1})
	conv := &Conv2D{Weights: randWeights(rng, 16, 16, 3), Stride: 1, Pad: 1}
	model := &Sequential{Layers: []Layer{
		conv,
		&MaxPool2D{Kernel: 2, Stride: 2},
		&AvgPool2D{Kernel: 2, Stride: 2},
	}}
	in := tensor.New(1, 1, 8, 8, tensor.C0)
	in.FillRandom(rng, 0.5)
	target := tensor.New(1, 1, 2, 2, tensor.C0)
	target.FillRandom(rng, 0.5)

	const lr = 0.05
	var first, last float64
	prev := 1e30
	for step := 0; step < 6; step++ {
		tape, err := model.ForwardTape(dev, in)
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		grad := tensor.New(target.Shape...)
		for i := 0; i < tape.Out.Len(); i++ {
			d := fp16.ToFloat64(tape.Out.AtFlat(i)) - fp16.ToFloat64(target.AtFlat(i))
			loss += d * d
			grad.SetFlat(i, fp16.FromFloat64(2*d/float64(tape.Out.Len())))
		}
		loss /= float64(tape.Out.Len())
		if step == 0 {
			first = loss
		}
		last = loss
		if loss > prev*1.001 {
			t.Fatalf("loss increased at step %d: %v -> %v", step, prev, loss)
		}
		prev = loss

		wgrads, _, _, err := tape.Backward(dev, grad)
		if err != nil {
			t.Fatal(err)
		}
		for _, wg := range wgrads {
			for i := 0; i < wg.Layer.Weights.Len(); i++ {
				w := fp16.ToFloat64(wg.Layer.Weights.AtFlat(i)) - lr*fp16.ToFloat64(wg.Grad.AtFlat(i))
				wg.Layer.Weights.SetFlat(i, fp16.FromFloat64(w))
			}
		}
	}
	if last >= first {
		t.Errorf("training made no progress: %v -> %v", first, last)
	}
}

func TestTapeDeepModelDX(t *testing.T) {
	// Two conv layers: the inner layer's dX must flow to the outer one.
	rng := rand.New(rand.NewSource(3))
	dev := chip.New(chip.Config{Cores: 1})
	model := &Sequential{Layers: []Layer{
		&Conv2D{Weights: randWeights(rng, 16, 16, 3), Stride: 1, Pad: 1},
		&Conv2D{Weights: randWeights(rng, 16, 16, 3), Stride: 1, Pad: 1},
	}}
	in := tensor.New(1, 1, 8, 8, tensor.C0)
	in.FillRandom(rng, 0.5)
	tape, err := model.ForwardTape(dev, in)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(1, 1, 8, 8, tensor.C0)
	grad.FillRandom(rng, 0.5)
	wgrads, _, _, err := tape.Backward(dev, grad)
	if err != nil {
		t.Fatal(err)
	}
	if len(wgrads) != 2 {
		t.Fatalf("want 2 weight grads, got %d", len(wgrads))
	}
	// Backward order is last layer first.
	if wgrads[0].Layer != model.Layers[1] {
		t.Error("weight grads not in reverse layer order")
	}
}
