// Package nn runs small CNN graphs on the simulated device: a Sequential
// model of convolution and pooling layers with per-layer cycle accounting.
// It is the integration layer a framework would put on top of the kernels
// — the paper's operators slot into real networks like the Table I CNNs,
// and this package is how the examples execute multi-layer stems end to
// end.
package nn

import (
	"fmt"

	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Layer is one network stage executable on the simulated device. Layers
// are shape-polymorphic: spatial input extents are taken from the incoming
// tensor at execution time.
type Layer interface {
	// Name identifies the layer in reports.
	Name() string
	// Forward runs the layer.
	Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, *chip.Stats, error)
}

// Conv2D is a convolution layer on the Cube unit.
type Conv2D struct {
	// Tag is an optional display name.
	Tag string
	// Weights has shape (Co, C, Kh, Kw).
	Weights *tensor.Tensor
	// Stride and Pad apply symmetrically.
	Stride, Pad int
}

// Name implements Layer.
func (l *Conv2D) Name() string {
	if l.Tag != "" {
		return l.Tag
	}
	return fmt.Sprintf("conv%dx%d/%d", l.Weights.Shape[2], l.Weights.Shape[3], l.Stride)
}

// Forward implements Layer.
func (l *Conv2D) Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, *chip.Stats, error) {
	if len(in.Shape) != 5 {
		return nil, nil, fmt.Errorf("nn: %s: want NC1HWC0 input, got %v", l.Name(), in.Shape)
	}
	p := isa.ConvParams{
		Ih: in.Shape[2], Iw: in.Shape[3],
		Kh: l.Weights.Shape[2], Kw: l.Weights.Shape[3],
		Sh: l.Stride, Sw: l.Stride,
		Pt: l.Pad, Pb: l.Pad, Pl: l.Pad, Pr: l.Pad,
	}
	if tensor.C1Of(l.Weights.Shape[1]) != in.Shape[1] {
		return nil, nil, fmt.Errorf("nn: %s: weights expect %d channels, input has C1=%d",
			l.Name(), l.Weights.Shape[1], in.Shape[1])
	}
	return dev.Conv2D(in, l.Weights, p)
}

// MaxPool2D is a max pooling layer; Variant selects the implementation
// ("standard", "im2col", "expansion", "xysplit").
type MaxPool2D struct {
	Kernel, Stride, Pad int
	Variant             string
}

// Name implements Layer.
func (l *MaxPool2D) Name() string {
	return fmt.Sprintf("maxpool%dx%d/%d[%s]", l.Kernel, l.Kernel, l.Stride, l.variant())
}

func (l *MaxPool2D) variant() string {
	if l.Variant == "" {
		return "im2col"
	}
	return l.Variant
}

// Forward implements Layer.
func (l *MaxPool2D) Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, *chip.Stats, error) {
	if len(in.Shape) != 5 {
		return nil, nil, fmt.Errorf("nn: %s: want NC1HWC0 input, got %v", l.Name(), in.Shape)
	}
	p := isa.ConvParams{
		Ih: in.Shape[2], Iw: in.Shape[3],
		Kh: l.Kernel, Kw: l.Kernel, Sh: l.Stride, Sw: l.Stride,
		Pt: l.Pad, Pb: l.Pad, Pl: l.Pad, Pr: l.Pad,
	}
	return dev.MaxPoolForward(l.variant(), in, p)
}

// AvgPool2D is an average pooling layer; Variant selects "standard",
// "im2col" or "cube".
type AvgPool2D struct {
	Kernel, Stride, Pad int
	Variant             string
}

// Name implements Layer.
func (l *AvgPool2D) Name() string {
	return fmt.Sprintf("avgpool%dx%d/%d[%s]", l.Kernel, l.Kernel, l.Stride, l.variant())
}

func (l *AvgPool2D) variant() string {
	if l.Variant == "" {
		return "im2col"
	}
	return l.Variant
}

// Forward implements Layer.
func (l *AvgPool2D) Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, *chip.Stats, error) {
	if len(in.Shape) != 5 {
		return nil, nil, fmt.Errorf("nn: %s: want NC1HWC0 input, got %v", l.Name(), in.Shape)
	}
	p := isa.ConvParams{
		Ih: in.Shape[2], Iw: in.Shape[3],
		Kh: l.Kernel, Kw: l.Kernel, Sh: l.Stride, Sw: l.Stride,
		Pt: l.Pad, Pb: l.Pad, Pl: l.Pad, Pr: l.Pad,
	}
	return dev.AvgPoolForward(l.variant(), in, p)
}

// LayerReport is one layer's execution record.
type LayerReport struct {
	Name     string
	OutShape []int
	Cycles   int64
	BytesIn  int64
	BytesOut int64
}

// Sequential is a linear stack of layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs the model, returning the final activation, per-layer
// reports, and the total device cycles (layers execute back to back).
func (s *Sequential) Forward(dev *chip.Chip, in *tensor.Tensor) (*tensor.Tensor, []LayerReport, int64, error) {
	var reports []LayerReport
	var total int64
	x := in
	for i, l := range s.Layers {
		out, st, err := l.Forward(dev, x)
		if err != nil {
			return nil, reports, total, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		reports = append(reports, LayerReport{
			Name:     l.Name(),
			OutShape: append([]int(nil), out.Shape...),
			Cycles:   st.Cycles,
			BytesIn:  st.Work.BytesIn,
			BytesOut: st.Work.BytesOut,
		})
		total += st.Cycles
		x = out
	}
	return x, reports, total, nil
}
