package nn

import (
	"fmt"

	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// Tape records a forward pass for backpropagation: each layer's input
// activation and, for max pooling, the argmax mask the accelerated
// backward kernels consume (paper §V-A: "it is useful to save an
// additional result in the forward implementation").
type Tape struct {
	model   *Sequential
	inputs  []*tensor.Tensor // input activation per layer
	masks   []*tensor.Tensor // argmax masks for MaxPool2D layers
	params  []isa.ConvParams // resolved layer parameters
	Out     *tensor.Tensor
	Reports []LayerReport
	Cycles  int64
}

// WeightGrad pairs a convolution layer with its weight gradient.
type WeightGrad struct {
	Layer *Conv2D
	Grad  *tensor.Tensor
}

// ForwardTape runs the model like Forward but records everything the
// backward pass needs. MaxPool layers run their argmax-saving variants
// ("standard" maps to the Fig. 7b standard kernel, anything else to the
// accelerated one).
func (s *Sequential) ForwardTape(dev *chip.Chip, in *tensor.Tensor) (*Tape, error) {
	tape := &Tape{model: s}
	x := in
	for i, l := range s.Layers {
		tape.inputs = append(tape.inputs, x)
		var out *tensor.Tensor
		var st *chip.Stats
		var err error
		var mask *tensor.Tensor
		var p isa.ConvParams

		switch layer := l.(type) {
		case *MaxPool2D:
			p = isa.ConvParams{
				Ih: x.Shape[2], Iw: x.Shape[3],
				Kh: layer.Kernel, Kw: layer.Kernel, Sh: layer.Stride, Sw: layer.Stride,
				Pt: layer.Pad, Pb: layer.Pad, Pl: layer.Pad, Pr: layer.Pad,
			}
			variant := "im2col"
			if layer.variant() == "standard" {
				variant = "standard"
			}
			out, mask, st, err = dev.MaxPoolForwardArgmax(variant, x, p)
		case *AvgPool2D:
			p = isa.ConvParams{
				Ih: x.Shape[2], Iw: x.Shape[3],
				Kh: layer.Kernel, Kw: layer.Kernel, Sh: layer.Stride, Sw: layer.Stride,
				Pt: layer.Pad, Pb: layer.Pad, Pl: layer.Pad, Pr: layer.Pad,
			}
			out, st, err = l.Forward(dev, x)
		case *Conv2D:
			p = isa.ConvParams{
				Ih: x.Shape[2], Iw: x.Shape[3],
				Kh: layer.Weights.Shape[2], Kw: layer.Weights.Shape[3],
				Sh: layer.Stride, Sw: layer.Stride,
				Pt: layer.Pad, Pb: layer.Pad, Pl: layer.Pad, Pr: layer.Pad,
			}
			out, st, err = l.Forward(dev, x)
		default:
			return nil, fmt.Errorf("nn: layer %d (%s) is not trainable", i, l.Name())
		}
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		tape.masks = append(tape.masks, mask)
		tape.params = append(tape.params, p)
		tape.Reports = append(tape.Reports, LayerReport{
			Name: l.Name(), OutShape: append([]int(nil), out.Shape...),
			Cycles: st.Cycles, BytesIn: st.Work.BytesIn, BytesOut: st.Work.BytesOut,
		})
		tape.Cycles += st.Cycles
		x = out
	}
	tape.Out = x
	return tape, nil
}

// Backward propagates grad (the loss derivative with respect to the
// model's output) through the recorded layers. It returns the weight
// gradients of every convolution layer, the gradient with respect to the
// model input, and the simulated cycles spent.
//
// Pooling layers use their Col2Im-based backward kernels (Fig. 7c); the
// convolution input gradients use the Cube + Col2Im backward-data path and
// the weight gradients use dY^T x im2col(x) on the Cube.
func (t *Tape) Backward(dev *chip.Chip, grad *tensor.Tensor) ([]WeightGrad, *tensor.Tensor, int64, error) {
	var wgrads []WeightGrad
	var cycles int64
	g := grad
	for i := len(t.model.Layers) - 1; i >= 0; i-- {
		l := t.model.Layers[i]
		p := t.params[i]
		switch layer := l.(type) {
		case *MaxPool2D:
			out, st, err := dev.MaxPoolBackward("col2im", t.masks[i], g, p)
			if err != nil {
				return nil, nil, cycles, fmt.Errorf("nn: backward layer %d (%s): %w", i, l.Name(), err)
			}
			g = out
			cycles += st.Cycles
		case *AvgPool2D:
			out, st, err := dev.AvgPoolBackward(g, p, true)
			if err != nil {
				return nil, nil, cycles, fmt.Errorf("nn: backward layer %d (%s): %w", i, l.Name(), err)
			}
			g = out
			cycles += st.Cycles
		case *Conv2D:
			c := layer.Weights.Shape[1]
			dw, st, err := dev.Conv2DBackwardWeights(g, t.inputs[i], p, layer.Weights.Shape[0], c)
			if err != nil {
				return nil, nil, cycles, fmt.Errorf("nn: dW layer %d (%s): %w", i, l.Name(), err)
			}
			cycles += st.Cycles
			wgrads = append(wgrads, WeightGrad{Layer: layer, Grad: dw})
			if i > 0 { // the input gradient is not needed before layer 0
				dx, st, err := dev.Conv2DBackwardData(g, layer.Weights, p, c)
				if err != nil {
					return nil, nil, cycles, fmt.Errorf("nn: dX layer %d (%s): %w", i, l.Name(), err)
				}
				g = dx
				cycles += st.Cycles
			}
		}
	}
	return wgrads, g, cycles, nil
}
