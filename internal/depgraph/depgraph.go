// Package depgraph computes the cross-pipe dependence facts of a CCE
// program once, for every client that needs them. The lint hazard pass
// (internal/lint) verifies that an explicit flag/barrier schedule orders
// every dependence; the static optimizer (internal/opt) consults the same
// graph to prove its rewrites legal. Both build on one implementation, so
// the verifier and the optimizer can never disagree about what depends on
// what.
//
// Two views are exposed:
//
//   - Replay symbolically replays aicore.RunExplicit's issue discipline
//     (per-pipe in-order queues, counting tokens for set_flag/wait_flag,
//     barriers that wait for everything before them) and records, per
//     instruction, the vector clock of completions guaranteed before it
//     starts. CrossPipeDeps lists the dependencies that clock must order —
//     the latest conflicting cross-pipe access per producing pipe, exactly
//     the set cce.AutoSync synchronizes.
//
//   - Conflicts lists every conflicting program-order pair, same-pipe
//     included: the full constraint set a reordering must preserve for the
//     program-order functional execution to stay bit-identical.
package depgraph

import (
	"errors"
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
)

// PipeVec is a symbolic vector clock: PipeVec[p] counts how many
// instructions at the front of pipe p's issue queue are guaranteed
// complete.
type PipeVec [isa.NumPipes]int

// Join returns the elementwise maximum of the two clocks.
func (a PipeVec) Join(b PipeVec) PipeVec {
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
	return a
}

// flagChannel identifies one counting-token channel: an ordered pipe pair
// plus an event id.
type flagChannel struct {
	src, dst isa.Pipe
	event    int
}

// Schedule is the symbolic replay of a program's explicit issue
// discipline: instead of cycle times, every instruction gets a vector
// clock of completions guaranteed before it starts.
type Schedule struct {
	// StartClock[i] is instruction i's start clock: StartClock[i][p]
	// instructions at the front of pipe p's queue are complete when i
	// starts. Meaningless for instructions left pending by a deadlock.
	StartClock []PipeVec
	// Pos[i] is instruction i's position within its pipe's issue queue.
	Pos []int
	// PipeOf[i] is instruction i's pipe.
	PipeOf []isa.Pipe
	// Deadlocked lists the blocked queue heads (program indices, in pipe
	// order) when the schedule cannot complete; empty otherwise. Every
	// pipe with pending work contributes its head.
	Deadlocked []int
}

// Ordered reports whether the schedule guarantees that instruction
// producer completes before instruction consumer starts. Because pipes
// issue in order, producer's completion is visible exactly when
// consumer's start clock covers producer's queue position.
func (s *Schedule) Ordered(consumer, producer int) bool {
	return s.StartClock[consumer][s.PipeOf[producer]] >= s.Pos[producer]+1
}

// Replay symbolically replays prog's explicit issue discipline: per-pipe
// in-order queues, counting tokens for set_flag/wait_flag, and barriers
// that wait for everything before them. If the schedule cannot complete
// (a wait with no token), the returned Schedule lists the blocked heads
// in Deadlocked.
func Replay(prog *cce.Program) *Schedule {
	n := len(prog.Instrs)
	type item struct {
		idx int
		in  isa.Instr
	}
	var pipes [isa.NumPipes][]item
	s := &Schedule{
		StartClock: make([]PipeVec, n),
		Pos:        make([]int, n),
		PipeOf:     make([]isa.Pipe, n),
	}
	for idx, in := range prog.Instrs {
		p := in.Pipe()
		s.PipeOf[idx] = p
		s.Pos[idx] = len(pipes[p])
		pipes[p] = append(pipes[p], item{idx, in})
	}
	// before[i][p] counts instructions on pipe p with program index < i:
	// the completions a barrier at index i waits for.
	before := make([]PipeVec, n+1)
	for idx := range prog.Instrs {
		before[idx+1] = before[idx]
		before[idx+1][s.PipeOf[idx]]++
	}

	var heads [isa.NumPipes]int
	var pipeClock [isa.NumPipes]PipeVec
	tokens := map[flagChannel][]PipeVec{}
	completed := make([]bool, n)
	completedCount, firstIncomplete := 0, 0

	for completedCount < n {
		progress := false
		for p := isa.Pipe(0); p < isa.NumPipes; p++ {
			for heads[p] < len(pipes[p]) {
				it := pipes[p][heads[p]]
				clk := pipeClock[p]
				switch v := it.in.(type) {
				case *isa.WaitFlagInstr:
					k := flagChannel{v.SrcPipe, v.DstPipe, v.Event}
					q := tokens[k]
					if len(q) == 0 {
						goto nextPipe // blocked until a token arrives
					}
					clk = clk.Join(q[0])
					tokens[k] = q[1:]
				case *isa.BarrierInstr:
					for firstIncomplete < n && completed[firstIncomplete] {
						firstIncomplete++
					}
					if firstIncomplete < it.idx {
						goto nextPipe // an earlier instruction is still pending
					}
					clk = clk.Join(before[it.idx])
				}
				if s.Pos[it.idx] > clk[p] {
					clk[p] = s.Pos[it.idx] // in-order issue: earlier same-pipe work is done
				}
				s.StartClock[it.idx] = clk
				end := clk
				end[p] = s.Pos[it.idx] + 1
				if sf, ok := it.in.(*isa.SetFlagInstr); ok {
					k := flagChannel{sf.SrcPipe, sf.DstPipe, sf.Event}
					tokens[k] = append(tokens[k], end)
				}
				if _, ok := it.in.(*isa.BarrierInstr); ok {
					// Nothing later on any pipe starts before the barrier ends.
					for q := range pipeClock {
						pipeClock[q] = pipeClock[q].Join(end)
					}
				}
				pipeClock[p] = end
				completed[it.idx] = true
				completedCount++
				heads[p]++
				progress = true
			}
		nextPipe:
		}
		if !progress {
			// Deadlock: every pipe with pending work is blocked on a token
			// that will never arrive.
			for p := isa.Pipe(0); p < isa.NumPipes; p++ {
				if heads[p] < len(pipes[p]) {
					s.Deadlocked = append(s.Deadlocked, pipes[p][heads[p]].idx)
				}
			}
			return s
		}
	}
	return s
}

// Dependence kinds, named the way the lint diagnostics render them.
const (
	ReadAfterWrite  = "read-after-write"
	WriteAfterWrite = "write-after-write"
	WriteAfterRead  = "write-after-read"
)

// Dep is one cross-pipe dependence: instruction Consumer must not start
// before instruction Producer completes.
type Dep struct {
	Consumer int
	Producer int
	// Kind is ReadAfterWrite, WriteAfterWrite or WriteAfterRead.
	Kind string
	// Region is the consumer's conflicting access region.
	Region isa.Region
}

// CrossPipeDeps scans prog in program order and returns, per instruction,
// the latest conflicting cross-pipe access per producing pipe — exactly
// the dependence set cce.AutoSync synchronizes. Barriers cut the scan:
// they order everything across them, so accesses before a barrier never
// produce a dependence after it. Because pipes issue in order, ordering
// the latest conflicting access per producing pipe orders every earlier
// one on that pipe too.
//
// Deps come back grouped by consumer (ascending program index), and
// within one consumer by producing pipe. When several of a consumer's
// accesses conflict with the same producing pipe, the dep with the
// largest producer index wins, considered in the order reads (RAW), then
// writes (WAW before WAR) — ties keep the earlier consideration.
func CrossPipeDeps(prog *cce.Program) []Dep {
	type access struct {
		idx    int
		pipe   isa.Pipe
		region isa.Region
	}
	var deps []Dep
	var writes, reads []access
	for idx, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			writes, reads = nil, nil
			continue
		}
		pipe := in.Pipe()
		var latest [isa.NumPipes]*Dep
		consider := func(list []access, kind string, r isa.Region) {
			for _, a := range list {
				if a.pipe == pipe || !a.region.Overlaps(r) {
					continue
				}
				if cur := latest[a.pipe]; cur == nil || a.idx > cur.Producer {
					latest[a.pipe] = &Dep{Consumer: idx, Producer: a.idx, Kind: kind, Region: r}
				}
			}
		}
		inReads, inWrites := in.Reads(), in.Writes()
		for _, r := range inReads {
			consider(writes, ReadAfterWrite, r)
		}
		for _, w := range inWrites {
			consider(writes, WriteAfterWrite, w)
			consider(reads, WriteAfterRead, w)
		}
		for _, d := range latest {
			if d != nil {
				deps = append(deps, *d)
			}
		}
		for _, r := range inReads {
			reads = append(reads, access{idx, pipe, r})
		}
		for _, w := range inWrites {
			writes = append(writes, access{idx, pipe, w})
		}
	}
	return deps
}

// BudgetError reports that Conflicts gave up before finishing: the
// pairwise region scan hit its comparison budget at instruction Instr of
// Instrs. The program is then unanalyzable — callers must not assume
// independence — but the degradation is typed and countable instead of a
// silent boolean, so a skipped O2 rescheduling shows up in optimizer
// reports and the depgraph_budget_exhausted counter rather than looking
// like "nothing to do".
type BudgetError struct {
	// Budget is the region-pair comparison cap the scan was given.
	Budget int
	// Instr is the program index where the budget ran out; Instrs is the
	// program length, so reports can say how far the scan got.
	Instr, Instrs int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("depgraph: conflict scan budget (%d region pairs) exhausted at instruction %d of %d",
		e.Budget, e.Instr, e.Instrs)
}

// IsBudgetExhausted reports whether err is a Conflicts budget exhaustion.
func IsBudgetExhausted(err error) bool {
	var e *BudgetError
	return errors.As(err, &e)
}

// Conflicts returns, per instruction, the earlier instructions it
// conflicts with: pairs whose accesses touch overlapping bytes of one
// buffer with at least one side writing, regardless of pipe. Any
// reordering that keeps every such pair in program order leaves the
// program-order functional execution bit-identical, because non-
// conflicting instructions commute on memory.
//
// The scan is quadratic per buffer; budget caps the region-pair
// comparisons. When the budget runs out the scan aborts and returns a
// *BudgetError — callers must then treat the program as unanalyzable
// rather than assume independence.
func Conflicts(prog *cce.Program, budget int) (preds [][]int32, err error) {
	type access struct {
		idx      int32
		write    bool
		off, end int
	}
	var byBuf [isa.NumBufs][]access
	preds = make([][]int32, len(prog.Instrs))
	add := func(j int32, i int32) {
		ps := preds[j]
		if len(ps) > 0 && ps[len(ps)-1] == i {
			return
		}
		for _, p := range ps {
			if p == i {
				return
			}
		}
		preds[j] = append(ps, i)
	}
	total := budget
	for idx, in := range prog.Instrs {
		j := int32(idx)
		scan := func(r isa.Region, write bool) bool {
			list := byBuf[r.Buf]
			budget -= len(list)
			if budget < 0 {
				return false
			}
			for _, a := range list {
				if (a.write || write) && a.off < r.End && r.Off < a.end && a.idx != j {
					add(j, a.idx)
				}
			}
			byBuf[r.Buf] = append(list, access{j, write, r.Off, r.End})
			return true
		}
		for _, r := range in.Reads() {
			if !scan(r, false) {
				return nil, &BudgetError{Budget: total, Instr: idx, Instrs: len(prog.Instrs)}
			}
		}
		for _, w := range in.Writes() {
			if !scan(w, true) {
				return nil, &BudgetError{Budget: total, Instr: idx, Instrs: len(prog.Instrs)}
			}
		}
	}
	return preds, nil
}
