package depgraph_test

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"davinci/internal/cce"
	"davinci/internal/depgraph"
	"davinci/internal/isa"
)

// nontrivial builds a program exercising every dependence kind across
// several pipes, one flag-ordered edge, and a barrier that cuts the scan:
//
//	0 copy GM->UB[0:512)      MTE2
//	1 set_flag MTE2->V
//	2 wait_flag MTE2->V
//	3 vadd UB[1024) = UB[0) + UB[256)   Vector, RAW on 0 (flag-ordered)
//	4 copy UB[1024:1280)->GM  MTE3, RAW on 3 (unordered)
//	5 barrier
//	6 copy GM->UB[0:512)      MTE2, no deps (barrier cut)
//	7 vmax UB[2048) = max(UB[0), UB[0))  Vector, RAW on 6 (unordered)
func nontrivial() *cce.Program {
	p := cce.New("nontrivial")
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: 0, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 512})
	p.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(&isa.VecInstr{Op: isa.VAdd, Dst: isa.Contig(isa.UB, 1024), Src0: isa.Contig(isa.UB, 0),
		Src1: isa.Contig(isa.UB, 256), Mask: isa.FullMask(), Repeat: 1})
	p.Emit(&isa.CopyInstr{SrcBuf: isa.UB, SrcAddr: 1024, DstBuf: isa.GM, DstAddr: 4096, NBurst: 1, BurstBytes: 256})
	p.Emit(&isa.BarrierInstr{})
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: 0, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 512})
	p.Emit(&isa.VecInstr{Op: isa.VMax, Dst: isa.Contig(isa.UB, 2048), Src0: isa.Contig(isa.UB, 0),
		Src1: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 1})
	return p
}

// TestCrossPipeDepsEdgeSet pins the exact dependence edge set of the
// nontrivial program: the contract both the lint hazard pass and the
// optimizer build on.
func TestCrossPipeDepsEdgeSet(t *testing.T) {
	got := depgraph.CrossPipeDeps(nontrivial())
	want := []depgraph.Dep{
		{Consumer: 3, Producer: 0, Kind: depgraph.ReadAfterWrite, Region: isa.Region{Buf: isa.UB, Off: 0, End: 256}},
		{Consumer: 4, Producer: 3, Kind: depgraph.ReadAfterWrite, Region: isa.Region{Buf: isa.UB, Off: 1024, End: 1280}},
		{Consumer: 7, Producer: 6, Kind: depgraph.ReadAfterWrite, Region: isa.Region{Buf: isa.UB, Off: 0, End: 256}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edge set:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplayOrdering(t *testing.T) {
	s := depgraph.Replay(nontrivial())
	if len(s.Deadlocked) != 0 {
		t.Fatalf("unexpected deadlock: %v", s.Deadlocked)
	}
	cases := []struct {
		consumer, producer int
		want               bool
	}{
		{3, 0, true},  // flag pair orders the load before the vadd
		{4, 3, false}, // nothing orders the store after the vadd
		{6, 0, true},  // same-pipe issue is in order
		{7, 6, false}, // nothing orders the second load before the vmax
		// Ordering across the barrier (e.g. 6 after 4) is not the replay's
		// contract: CrossPipeDeps cuts its scan at barriers, so no client
		// ever queries a producer/consumer pair a barrier separates.
	}
	for _, c := range cases {
		if got := s.Ordered(c.consumer, c.producer); got != c.want {
			t.Errorf("Ordered(%d, %d) = %v, want %v", c.consumer, c.producer, got, c.want)
		}
	}
}

func TestReplayDeadlock(t *testing.T) {
	p := cce.New("deadlock")
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 3})
	p.Emit(&isa.VecInstr{Op: isa.VAdd, Dst: isa.Contig(isa.UB, 0), Src0: isa.Contig(isa.UB, 0),
		Src1: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 1})
	s := depgraph.Replay(p)
	if len(s.Deadlocked) != 1 || s.Deadlocked[0] != 0 {
		t.Fatalf("Deadlocked = %v, want [0]", s.Deadlocked)
	}
}

// TestConflictsMatchesBruteForce checks the per-buffer conflict scan
// against the obvious quadratic reference on the nontrivial program.
func TestConflictsMatchesBruteForce(t *testing.T) {
	prog := nontrivial()
	preds, err := depgraph.Conflicts(prog, 1<<20)
	if err != nil {
		t.Fatalf("budget unexpectedly exhausted: %v", err)
	}
	want := make([][]int32, len(prog.Instrs))
	overlap := func(a, b isa.Region) bool { return a.Buf == b.Buf && a.Off < b.End && b.Off < a.End }
	for j, cons := range prog.Instrs {
		seen := map[int32]bool{}
		for i := 0; i < j; i++ {
			prod := prog.Instrs[i]
			conflict := false
			for _, w := range prod.Writes() {
				for _, r := range append(cons.Reads(), cons.Writes()...) {
					if overlap(w, r) {
						conflict = true
					}
				}
			}
			for _, r := range prod.Reads() {
				for _, w := range cons.Writes() {
					if overlap(r, w) {
						conflict = true
					}
				}
			}
			if conflict && !seen[int32(i)] {
				seen[int32(i)] = true
				want[j] = append(want[j], int32(i))
			}
		}
	}
	for j := range want {
		got := append([]int32(nil), preds[j]...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) == 0 && len(want[j]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want[j]) {
			t.Errorf("preds[%d] = %v, want %v", j, got, want[j])
		}
	}
}

func TestConflictsBudgetExhaustion(t *testing.T) {
	prog := nontrivial()
	_, err := depgraph.Conflicts(prog, 1)
	if err == nil {
		t.Fatal("tiny budget did not abort the scan")
	}
	if !depgraph.IsBudgetExhausted(err) {
		t.Fatalf("want a *BudgetError, got %T: %v", err, err)
	}
	var berr *depgraph.BudgetError
	if !errors.As(err, &berr) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if berr.Budget != 1 || berr.Instrs != len(prog.Instrs) || berr.Instr < 0 || berr.Instr >= berr.Instrs {
		t.Fatalf("budget error fields off: %+v", berr)
	}
}
