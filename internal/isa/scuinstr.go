package isa

import "fmt"

// Im2Col repeat modes (paper §III-C).
const (
	// Im2ColRepeatKernel (mode 0) reissues for the next (xk, yk) position
	// inside the kernel, continuing to the next c1 index when (xk, yk)
	// wraps: the loop order [c1, (xk, yk)].
	Im2ColRepeatKernel = 0
	// Im2ColRepeatPatches (mode 1) reissues for the next (x, y) position
	// after skipping the 16 currently selected patches: the loop [(x, y)].
	Im2ColRepeatPatches = 1
)

// Im2ColInstr is the SCU's Im2Col load: it reads an NC1HWC0 tile from L1
// and deposits data-fractals (16 patches x C0) into L0A, L0B or the UB,
// performing the im2col transform while the data moves (paper §III-C).
//
// One issue loads one fractal: the 16 consecutive patches starting at
// linear patch index Patch0 (row-major over the (Oh, Ow) patch grid), the
// element at kernel-relative position (Xk, Yk) of each patch, channel slice
// C1Idx. Patches whose (Xk, Yk) element falls in the zero padding produce
// zero rows; patch indices beyond Oh*Ow produce zero rows as well.
// Successive Repeat iterations advance per RepeatMode and write fractals
// contiguously at Dst.
type Im2ColInstr struct {
	SrcBuf  BufID // must be L1
	SrcAddr int   // base of the (C1Len, Ih, Iw, C0) tile in L1
	DstBuf  BufID // L0A, L0B or UB
	DstAddr int

	P      ConvParams
	C1Len  int // C1 extent of the tile at SrcAddr
	C1Idx  int // starting c1 slice
	Xk, Yk int // starting position inside the patch
	Patch0 int // starting linear patch index (the (x, y) of the paper)

	// RowBase/Rows select a horizontal band of the source image: the L1
	// tile at SrcAddr holds image rows [RowBase, RowBase+Rows) for each
	// c1 slice. Rows == 0 means the full image. Banding lets schedules
	// stream inputs larger than L1 (e.g. VGG16's 224x224 layer).
	RowBase int
	Rows    int

	RepeatMode int // Im2ColRepeatKernel or Im2ColRepeatPatches
	Repeat     int // total fractals loaded (>= 1)
}

// EffRows returns the number of image rows present in the source tile.
func (im *Im2ColInstr) EffRows() int {
	if im.Rows == 0 {
		return im.P.Ih
	}
	return im.Rows
}

// Pipe returns PipeMTE1: Im2Col acts as a load between local buffers.
func (im *Im2ColInstr) Pipe() Pipe { return PipeMTE1 }

// Cycles charges issue overhead plus a per-fractal transform cost.
func (im *Im2ColInstr) Cycles(c *CostModel) int64 {
	return c.MteIssue + int64(im.Repeat)*c.Im2ColFractal
}

// Reads returns the source rows the load actually touches. In repeat mode
// 1 (fixed kernel position, advancing patches) that is the row band covered
// by the selected patches — precision here lets a banded schedule overlap
// Im2Col loads with the MTE2 transfer filling later L1 rows. Mode 0 walks
// kernel positions and c1 slices, so it conservatively claims the whole
// tile.
func (im *Im2ColInstr) Reads() []Region {
	rowBytes := im.P.Iw * FractalC0 * 2
	rows := im.EffRows()
	if im.RepeatMode != Im2ColRepeatPatches {
		size := im.C1Len * rows * rowBytes
		return []Region{{Buf: im.SrcBuf, Off: im.SrcAddr, End: im.SrcAddr + size}}
	}
	_, ow := im.P.OutDims()
	pEnd := im.Patch0 + im.Repeat*FractalPatches
	if max := im.P.Patches(); pEnd > max {
		pEnd = max
	}
	lo := (im.Patch0/ow)*im.P.Sh - im.P.Pt
	if lo < im.RowBase {
		lo = im.RowBase
	}
	hi := ((pEnd-1)/ow)*im.P.Sh - im.P.Pt + im.P.Kh
	if hi > im.RowBase+rows {
		hi = im.RowBase + rows
	}
	base := im.SrcAddr + (im.C1Idx*rows-im.RowBase)*rowBytes
	return []Region{{Buf: im.SrcBuf, Off: base + lo*rowBytes, End: base + hi*rowBytes}}
}

// Writes returns the contiguous fractal output span.
func (im *Im2ColInstr) Writes() []Region {
	return []Region{{Buf: im.DstBuf, Off: im.DstAddr, End: im.DstAddr + im.Repeat*FractalBytes}}
}

// Validate checks structural constraints.
func (im *Im2ColInstr) Validate() error {
	if err := im.P.Validate(); err != nil {
		return err
	}
	switch {
	case im.SrcBuf != L1:
		return fmt.Errorf("isa: Im2Col source must be L1, got %v", im.SrcBuf)
	case im.DstBuf != L0A && im.DstBuf != L0B && im.DstBuf != UB:
		return fmt.Errorf("isa: Im2Col destination must be L0A/L0B/UB, got %v", im.DstBuf)
	case im.Repeat < 1 || im.Repeat > MaxRepeat:
		return fmt.Errorf("isa: Im2Col repeat %d out of range [1,%d]", im.Repeat, MaxRepeat)
	case im.RepeatMode != Im2ColRepeatKernel && im.RepeatMode != Im2ColRepeatPatches:
		return fmt.Errorf("isa: Im2Col repeat mode %d", im.RepeatMode)
	case im.C1Len < 1 || im.C1Idx < 0 || im.C1Idx >= im.C1Len:
		return fmt.Errorf("isa: Im2Col c1 index %d of %d", im.C1Idx, im.C1Len)
	case im.Xk < 0 || im.Xk >= im.P.Kh || im.Yk < 0 || im.Yk >= im.P.Kw:
		return fmt.Errorf("isa: Im2Col kernel position (%d,%d)", im.Xk, im.Yk)
	case im.Patch0 < 0 || im.Patch0 >= im.P.Patches():
		return fmt.Errorf("isa: Im2Col starting patch %d of %d", im.Patch0, im.P.Patches())
	case im.Patch0%FractalPatches != 0:
		return fmt.Errorf("isa: Im2Col starting patch %d not fractal aligned", im.Patch0)
	case im.RowBase < 0 || im.Rows < 0 || im.RowBase+im.EffRows() > im.P.Ih:
		return fmt.Errorf("isa: Im2Col row band [%d,%d) exceeds image height %d",
			im.RowBase, im.RowBase+im.EffRows(), im.P.Ih)
	}
	return nil
}

func (im *Im2ColInstr) String() string {
	return fmt.Sprintf("img2col mode=%d rpt=%d c1=%d k=(%d,%d) p0=%d -> %v+%d",
		im.RepeatMode, im.Repeat, im.C1Idx, im.Xk, im.Yk, im.Patch0, im.DstBuf, im.DstAddr)
}

// Col2ImInstr is the backward operator of Im2Col, executed on the Vector
// Unit with the UB as both source and destination (paper §III-D, Fig. 6):
// for each input fractal it (1) loads the corresponding output elements in
// an Im2Col manner, (2) adds the input fractal, (3) stores the sum back.
// The destination tile must be zero initialized by the kernel. Only repeat
// mode 1 exists: each repeat advances by 16 patches.
type Col2ImInstr struct {
	SrcBuf  BufID // must be UB (fractal sequence)
	SrcAddr int
	DstBuf  BufID // must be UB ((C1Len, Ih, Iw, C0) tile)
	DstAddr int

	P      ConvParams
	C1Len  int
	C1Idx  int
	Xk, Yk int
	Patch0 int

	// RowBase/Rows select a horizontal band of the output image: the tile
	// at DstAddr holds image rows [RowBase, RowBase+Rows) for each c1
	// slice. Rows == 0 means the full image. Banding is what lets kernels
	// merge into outputs larger than the Unified Buffer.
	RowBase int
	Rows    int

	Repeat int
}

// EffRows returns the number of image rows present in the destination tile.
func (ci *Col2ImInstr) EffRows() int {
	if ci.Rows == 0 {
		return ci.P.Ih
	}
	return ci.Rows
}

// Pipe returns PipeVector: Col2Im is a vector instruction (paper §III-D).
func (ci *Col2ImInstr) Pipe() Pipe { return PipeVector }

// Cycles charges issue plus a per-fractal read-add-write cost.
func (ci *Col2ImInstr) Cycles(c *CostModel) int64 {
	return c.VecIssue + int64(ci.Repeat)*c.Col2ImFractal
}

// Reads returns the input fractal span plus the destination tile (it is a
// read-modify-write).
func (ci *Col2ImInstr) Reads() []Region {
	size := ci.C1Len * ci.EffRows() * ci.P.Iw * FractalC0 * 2
	return []Region{
		{Buf: ci.SrcBuf, Off: ci.SrcAddr, End: ci.SrcAddr + ci.Repeat*FractalBytes},
		{Buf: ci.DstBuf, Off: ci.DstAddr, End: ci.DstAddr + size},
	}
}

// Writes returns the destination tile span.
func (ci *Col2ImInstr) Writes() []Region {
	size := ci.C1Len * ci.EffRows() * ci.P.Iw * FractalC0 * 2
	return []Region{{Buf: ci.DstBuf, Off: ci.DstAddr, End: ci.DstAddr + size}}
}

// Validate checks structural constraints.
func (ci *Col2ImInstr) Validate() error {
	if err := ci.P.Validate(); err != nil {
		return err
	}
	switch {
	case ci.SrcBuf != UB || ci.DstBuf != UB:
		return fmt.Errorf("isa: Col2Im operates UB->UB, got %v->%v", ci.SrcBuf, ci.DstBuf)
	case ci.Repeat < 1 || ci.Repeat > MaxRepeat:
		return fmt.Errorf("isa: Col2Im repeat %d out of range [1,%d]", ci.Repeat, MaxRepeat)
	case ci.C1Len < 1 || ci.C1Idx < 0 || ci.C1Idx >= ci.C1Len:
		return fmt.Errorf("isa: Col2Im c1 index %d of %d", ci.C1Idx, ci.C1Len)
	case ci.Xk < 0 || ci.Xk >= ci.P.Kh || ci.Yk < 0 || ci.Yk >= ci.P.Kw:
		return fmt.Errorf("isa: Col2Im kernel position (%d,%d)", ci.Xk, ci.Yk)
	case ci.Patch0 < 0 || ci.Patch0 >= ci.P.Patches():
		return fmt.Errorf("isa: Col2Im starting patch %d of %d", ci.Patch0, ci.P.Patches())
	case ci.Patch0%FractalPatches != 0:
		return fmt.Errorf("isa: Col2Im starting patch %d not fractal aligned", ci.Patch0)
	case ci.RowBase < 0 || ci.Rows < 0 || ci.RowBase+ci.EffRows() > ci.P.Ih:
		return fmt.Errorf("isa: Col2Im row band [%d,%d) exceeds image height %d",
			ci.RowBase, ci.RowBase+ci.EffRows(), ci.P.Ih)
	}
	return nil
}

func (ci *Col2ImInstr) String() string {
	return fmt.Sprintf("col2img rpt=%d c1=%d k=(%d,%d) p0=%d -> %v+%d",
		ci.Repeat, ci.C1Idx, ci.Xk, ci.Yk, ci.Patch0, ci.DstBuf, ci.DstAddr)
}

// MmadInstr multiplies fractal matrices on the Cube Unit: C (M x N
// fractals, fp32 in L0C) += A (M x K fractals in L0A) x B (K x N fractals
// in L0B). Each fractal is a 16x16 Float16 tile; the Cube multiplies two
// data-fractals per clock cycle (paper §III-A).
type MmadInstr struct {
	AAddr, BAddr, CAddr int // byte offsets in L0A/L0B/L0C
	M, K, N             int // extents in fractal units
	Accumulate          bool
}

// Pipe returns PipeCube.
func (mm *MmadInstr) Pipe() Pipe { return PipeCube }

// Cycles charges issue plus M*K*N fractal-pair multiplications at the
// Cube's rate of CubeFractalPairs pairs per cycle.
func (mm *MmadInstr) Cycles(c *CostModel) int64 {
	pairs := int64(mm.M) * int64(mm.K) * int64(mm.N)
	return c.CubeIssue + (pairs+c.CubeFractalPairs-1)/c.CubeFractalPairs
}

// Reads returns the operand spans (plus C when accumulating).
func (mm *MmadInstr) Reads() []Region {
	r := []Region{
		{Buf: L0A, Off: mm.AAddr, End: mm.AAddr + mm.M*mm.K*FractalBytes},
		{Buf: L0B, Off: mm.BAddr, End: mm.BAddr + mm.K*mm.N*FractalBytes},
	}
	if mm.Accumulate {
		r = append(r, Region{Buf: L0C, Off: mm.CAddr, End: mm.CAddr + mm.M*mm.N*FractalPatches*FractalC0*4})
	}
	return r
}

// Writes returns the fp32 accumulator span.
func (mm *MmadInstr) Writes() []Region {
	return []Region{{Buf: L0C, Off: mm.CAddr, End: mm.CAddr + mm.M*mm.N*FractalPatches*FractalC0*4}}
}

// Validate checks structural constraints.
func (mm *MmadInstr) Validate() error {
	if mm.M < 1 || mm.K < 1 || mm.N < 1 {
		return fmt.Errorf("isa: mmad dims (%d,%d,%d)", mm.M, mm.K, mm.N)
	}
	if mm.AAddr < 0 || mm.BAddr < 0 || mm.CAddr < 0 {
		return fmt.Errorf("isa: negative mmad address")
	}
	return nil
}

func (mm *MmadInstr) String() string {
	return fmt.Sprintf("mmad %dx%dx%d acc=%v", mm.M, mm.K, mm.N, mm.Accumulate)
}

// TransposeInstr is the SCU's matrix-tile transposition (listed among the
// Storage Conversion Unit's layout transforms in §III-A): it moves Repeat
// data-fractals from L1 to L0A or L0B, transposing each 16x16 tile on the
// way. Source fractals are contiguous; destination fractals are DstStride
// bytes apart (DstStride 0 means densely packed).
type TransposeInstr struct {
	SrcBuf  BufID // must be L1
	SrcAddr int
	DstBuf  BufID // L0A or L0B
	DstAddr int
	// DstStride is the byte distance between consecutive destination
	// fractals; 0 means FractalBytes (dense).
	DstStride int
	Repeat    int
}

// EffDstStride returns the destination stride in bytes.
func (tr *TransposeInstr) EffDstStride() int {
	if tr.DstStride == 0 {
		return FractalBytes
	}
	return tr.DstStride
}

// Pipe returns PipeMTE1: the transform happens during the buffer move.
func (tr *TransposeInstr) Pipe() Pipe { return PipeMTE1 }

// Cycles charges issue plus a per-fractal transform cost (same rate as the
// Im2Col gather: the SCU touches every element once).
func (tr *TransposeInstr) Cycles(c *CostModel) int64 {
	return c.MteIssue + int64(tr.Repeat)*c.Im2ColFractal
}

// Reads returns the contiguous source span.
func (tr *TransposeInstr) Reads() []Region {
	return []Region{{Buf: tr.SrcBuf, Off: tr.SrcAddr, End: tr.SrcAddr + tr.Repeat*FractalBytes}}
}

// Writes returns the strided destination span.
func (tr *TransposeInstr) Writes() []Region {
	end := tr.DstAddr + (tr.Repeat-1)*tr.EffDstStride() + FractalBytes
	return []Region{{Buf: tr.DstBuf, Off: tr.DstAddr, End: end}}
}

// Validate checks structural constraints.
func (tr *TransposeInstr) Validate() error {
	switch {
	case tr.SrcBuf != L1:
		return fmt.Errorf("isa: transpose source must be L1, got %v", tr.SrcBuf)
	case tr.DstBuf != L0A && tr.DstBuf != L0B:
		return fmt.Errorf("isa: transpose destination must be L0A/L0B, got %v", tr.DstBuf)
	case tr.Repeat < 1 || tr.Repeat > MaxRepeat:
		return fmt.Errorf("isa: transpose repeat %d out of range [1,%d]", tr.Repeat, MaxRepeat)
	case tr.SrcAddr < 0 || tr.DstAddr < 0 || tr.DstStride < 0:
		return fmt.Errorf("isa: negative transpose address/stride")
	}
	return nil
}

func (tr *TransposeInstr) String() string {
	return fmt.Sprintf("transpose rpt=%d %v+%d -> %v+%d", tr.Repeat, tr.SrcBuf, tr.SrcAddr, tr.DstBuf, tr.DstAddr)
}
