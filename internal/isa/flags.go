package isa

import "fmt"

// EventsPerPair is the number of event flags available between each
// ordered pair of pipelines, as in real CCE C's set_flag/wait_flag
// synchronization.
const EventsPerPair = 16

// SetFlagInstr signals event Event from SrcPipe to DstPipe after every
// earlier instruction on SrcPipe has completed. Flags are counting: each
// set deposits one token.
type SetFlagInstr struct {
	SrcPipe Pipe
	DstPipe Pipe
	Event   int
}

// Pipe returns the issuing pipeline.
func (s *SetFlagInstr) Pipe() Pipe { return s.SrcPipe }

// Cycles returns the flag cost.
func (s *SetFlagInstr) Cycles(c *CostModel) int64 { return c.Flag }

// Reads returns nil.
func (s *SetFlagInstr) Reads() []Region { return nil }

// Writes returns nil.
func (s *SetFlagInstr) Writes() []Region { return nil }

// Validate checks the pipe pair and event id.
func (s *SetFlagInstr) Validate() error { return validateFlag(s.SrcPipe, s.DstPipe, s.Event) }

func (s *SetFlagInstr) String() string {
	return fmt.Sprintf("set_flag %v->%v ev=%d", s.SrcPipe, s.DstPipe, s.Event)
}

// WaitFlagInstr blocks DstPipe until a token for (SrcPipe -> DstPipe,
// Event) is available, then consumes it.
type WaitFlagInstr struct {
	SrcPipe Pipe
	DstPipe Pipe
	Event   int
}

// Pipe returns the waiting pipeline.
func (w *WaitFlagInstr) Pipe() Pipe { return w.DstPipe }

// Cycles returns the flag cost (the wait itself; stall time comes from the
// schedule).
func (w *WaitFlagInstr) Cycles(c *CostModel) int64 { return c.Flag }

// Reads returns nil.
func (w *WaitFlagInstr) Reads() []Region { return nil }

// Writes returns nil.
func (w *WaitFlagInstr) Writes() []Region { return nil }

// Validate checks the pipe pair and event id.
func (w *WaitFlagInstr) Validate() error { return validateFlag(w.SrcPipe, w.DstPipe, w.Event) }

func (w *WaitFlagInstr) String() string {
	return fmt.Sprintf("wait_flag %v->%v ev=%d", w.SrcPipe, w.DstPipe, w.Event)
}

func validateFlag(src, dst Pipe, event int) error {
	if src < 0 || src >= NumPipes || dst < 0 || dst >= NumPipes {
		return fmt.Errorf("isa: flag pipe out of range (%v -> %v)", src, dst)
	}
	if src == dst {
		return fmt.Errorf("isa: flag between %v and itself (in-order issue already orders it)", src)
	}
	if event < 0 || event >= EventsPerPair {
		return fmt.Errorf("isa: flag event %d out of range [0,%d)", event, EventsPerPair)
	}
	return nil
}
