package isa

import "fmt"

// CopyInstr is a memory-transfer (DMA) instruction moving NBurst bursts of
// BurstBytes each between two buffers. Gaps express strided tile loads
// (e.g. bringing a (H,W,C0) slice of a larger NC1HWC0 tensor into the UB).
// The pipe is derived from the endpoints (paper Fig. 4 datapaths):
// GM->local on MTE2, local->GM on MTE3, L1->L0/UB on MTE1, UB->UB on the
// vector pipe (it is a vcopy-style move).
type CopyInstr struct {
	SrcBuf     BufID
	SrcAddr    int
	DstBuf     BufID
	DstAddr    int
	NBurst     int // number of bursts, >= 1
	BurstBytes int // bytes per burst, >= 1
	SrcGap     int // bytes skipped in src between bursts
	DstGap     int // bytes skipped in dst between bursts
}

// Bytes returns the total payload moved.
func (m *CopyInstr) Bytes() int { return m.NBurst * m.BurstBytes }

// Pipe derives the pipeline from the endpoints.
func (m *CopyInstr) Pipe() Pipe {
	switch {
	case m.SrcBuf == GM:
		return PipeMTE2
	case m.DstBuf == GM:
		return PipeMTE3
	case m.SrcBuf == UB && m.DstBuf == UB:
		return PipeVector
	default:
		return PipeMTE1
	}
}

// Cycles charges issue overhead plus a bandwidth term.
func (m *CopyInstr) Cycles(c *CostModel) int64 {
	bw := c.DmaBytesPerCycle
	if m.Pipe() == PipeMTE1 || m.Pipe() == PipeVector {
		bw = c.LocalBytesPerCycle
	}
	cyc := c.MteIssue + int64((m.Bytes()+bw-1)/bw)
	// Each extra burst pays a small reissue cost (descriptor per burst).
	cyc += int64(m.NBurst-1) * c.MteBurst
	return cyc
}

// Reads returns the source span.
func (m *CopyInstr) Reads() []Region {
	end := m.SrcAddr + m.NBurst*m.BurstBytes + (m.NBurst-1)*m.SrcGap
	return []Region{{Buf: m.SrcBuf, Off: m.SrcAddr, End: end}}
}

// Writes returns the destination span.
func (m *CopyInstr) Writes() []Region {
	end := m.DstAddr + m.NBurst*m.BurstBytes + (m.NBurst-1)*m.DstGap
	return []Region{{Buf: m.DstBuf, Off: m.DstAddr, End: end}}
}

// Validate checks structural constraints.
func (m *CopyInstr) Validate() error {
	switch {
	case m.NBurst < 1 || m.BurstBytes < 1:
		return fmt.Errorf("isa: copy with %d bursts of %d bytes", m.NBurst, m.BurstBytes)
	case m.SrcGap < 0 || m.DstGap < 0:
		return fmt.Errorf("isa: negative copy gap")
	case m.SrcAddr < 0 || m.DstAddr < 0:
		return fmt.Errorf("isa: negative copy address")
	case m.SrcBuf == m.DstBuf && m.SrcBuf != UB && m.SrcBuf != GM:
		return fmt.Errorf("isa: copy within %v not supported", m.SrcBuf)
	}
	return nil
}

func (m *CopyInstr) String() string {
	return fmt.Sprintf("copy %v+%d -> %v+%d (%d x %dB)", m.SrcBuf, m.SrcAddr, m.DstBuf, m.DstAddr, m.NBurst, m.BurstBytes)
}

// ConvCopyInstr moves the Cube unit's fp32 accumulator tile from L0C to the
// UB, converting to Float16 on the way (the vconv datapath). Contiguous.
type ConvCopyInstr struct {
	SrcAddr int // byte offset in L0C (fp32 elements)
	DstAddr int // byte offset in UB (fp16 elements)
	Elems   int
}

// Pipe returns PipeVector: the conversion runs on the vector datapath.
func (m *ConvCopyInstr) Pipe() Pipe { return PipeVector }

// Cycles charges issue plus lane-rate conversion.
func (m *ConvCopyInstr) Cycles(c *CostModel) int64 {
	reps := (m.Elems + LanesPerRepeat - 1) / LanesPerRepeat
	return c.VecIssue + int64(reps)*c.VecPerRepeat
}

// Reads returns the fp32 source span.
func (m *ConvCopyInstr) Reads() []Region {
	return []Region{{Buf: L0C, Off: m.SrcAddr, End: m.SrcAddr + m.Elems*4}}
}

// Writes returns the fp16 destination span.
func (m *ConvCopyInstr) Writes() []Region {
	return []Region{{Buf: UB, Off: m.DstAddr, End: m.DstAddr + m.Elems*2}}
}

// Validate checks structural constraints.
func (m *ConvCopyInstr) Validate() error {
	if m.Elems < 1 || m.SrcAddr < 0 || m.DstAddr < 0 {
		return fmt.Errorf("isa: bad conv copy (%d elems)", m.Elems)
	}
	return nil
}

func (m *ConvCopyInstr) String() string {
	return fmt.Sprintf("vconv_f32f16 L0C+%d -> UB+%d (%d)", m.SrcAddr, m.DstAddr, m.Elems)
}

// ScalarInstr charges Scalar Unit work (loop control, address computation)
// that is not folded into other instructions' issue costs.
type ScalarInstr struct {
	Ops  int
	Note string
}

// Pipe returns PipeScalar.
func (s *ScalarInstr) Pipe() Pipe { return PipeScalar }

// Cycles charges ScalarOp per operation.
func (s *ScalarInstr) Cycles(c *CostModel) int64 { return int64(s.Ops) * c.ScalarOp }

// Reads returns nil.
func (s *ScalarInstr) Reads() []Region { return nil }

// Writes returns nil.
func (s *ScalarInstr) Writes() []Region { return nil }

// Validate checks structural constraints.
func (s *ScalarInstr) Validate() error {
	if s.Ops < 0 {
		return fmt.Errorf("isa: negative scalar op count")
	}
	return nil
}

func (s *ScalarInstr) String() string { return fmt.Sprintf("scalar x%d %s", s.Ops, s.Note) }

// BarrierInstr serializes: every later instruction waits for every earlier
// one (the pipe_barrier of CCE C).
type BarrierInstr struct{}

// Pipe returns PipeScalar (barriers are issued by the scalar unit).
func (b *BarrierInstr) Pipe() Pipe { return PipeScalar }

// Cycles returns the barrier cost.
func (b *BarrierInstr) Cycles(c *CostModel) int64 { return c.Barrier }

// Reads returns nil; barriers are handled specially by the scheduler.
func (b *BarrierInstr) Reads() []Region { return nil }

// Writes returns nil.
func (b *BarrierInstr) Writes() []Region { return nil }

// Validate always succeeds.
func (b *BarrierInstr) Validate() error { return nil }

func (b *BarrierInstr) String() string { return "pipe_barrier" }
