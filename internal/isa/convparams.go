package isa

import "fmt"

// ConvParams carries the image-constant parameters shared by all Im2Col and
// Col2Im instructions that load or store the same input (paper §III-C):
// input size, zero padding, strides and kernel size.
type ConvParams struct {
	Ih, Iw         int // input height and width
	Pt, Pb, Pl, Pr int // top/bottom/left/right zero padding
	Sh, Sw         int // strides
	Kh, Kw         int // kernel size
}

// OutDims returns the number of patches (Oh, Ow) in the input's height and
// width, per Equation 1 of the paper.
func (p ConvParams) OutDims() (oh, ow int) {
	oh = (p.Ih+p.Pb+p.Pt-p.Kh)/p.Sh + 1
	ow = (p.Iw+p.Pl+p.Pr-p.Kw)/p.Sw + 1
	return oh, ow
}

// Patches returns Oh*Ow, the total number of patches.
func (p ConvParams) Patches() int {
	oh, ow := p.OutDims()
	return oh * ow
}

// Fractals returns the number of 16-patch fractals needed to cover all
// patches for one (c1, xk, yk) combination: ceil(Oh*Ow / 16).
func (p ConvParams) Fractals() int {
	return (p.Patches() + FractalPatches - 1) / FractalPatches
}

// PaddedPatches returns the patch count rounded up to a whole number of
// fractals; this is the Oh*Ow extent actually materialized in a target
// buffer by repeated Im2Col loads.
func (p ConvParams) PaddedPatches() int { return p.Fractals() * FractalPatches }

// Validate reports malformed parameter combinations.
func (p ConvParams) Validate() error {
	switch {
	case p.Ih <= 0 || p.Iw <= 0:
		return fmt.Errorf("isa: non-positive input size (%d,%d)", p.Ih, p.Iw)
	case p.Kh <= 0 || p.Kw <= 0:
		return fmt.Errorf("isa: non-positive kernel (%d,%d)", p.Kh, p.Kw)
	case p.Sh <= 0 || p.Sw <= 0:
		return fmt.Errorf("isa: non-positive stride (%d,%d)", p.Sh, p.Sw)
	case p.Pt < 0 || p.Pb < 0 || p.Pl < 0 || p.Pr < 0:
		return fmt.Errorf("isa: negative padding (%d,%d,%d,%d)", p.Pt, p.Pb, p.Pl, p.Pr)
	case p.Pt >= p.Kh || p.Pb >= p.Kh || p.Pl >= p.Kw || p.Pr >= p.Kw:
		return fmt.Errorf("isa: padding must be smaller than the kernel")
	}
	oh, ow := p.OutDims()
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("isa: kernel (%d,%d) larger than padded input (%d,%d)",
			p.Kh, p.Kw, p.Ih+p.Pt+p.Pb, p.Iw+p.Pl+p.Pr)
	}
	return nil
}

// FractalPatches is the number of patches one fractal covers: 16 rows of C0
// elements (paper §III-C).
const FractalPatches = 16

// FractalC0 is the fractal's inner dimension length for Float16.
const FractalC0 = 16

// FractalBytes is the byte size of one data-fractal (4096 bits).
const FractalBytes = FractalPatches * FractalC0 * 2
