package isa

import (
	"testing"
	"testing/quick"
)

func TestOutDims(t *testing.T) {
	// The Fig. 5 example: 8x8 input, 2x2 kernel, 2x2 stride, no padding.
	p := ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	oh, ow := p.OutDims()
	if oh != 4 || ow != 4 {
		t.Errorf("OutDims = (%d,%d), want (4,4)", oh, ow)
	}
	if p.Patches() != 16 || p.Fractals() != 1 || p.PaddedPatches() != 16 {
		t.Errorf("Patches=%d Fractals=%d Padded=%d", p.Patches(), p.Fractals(), p.PaddedPatches())
	}
	// InceptionV3 largest input: 147x147, k=3, s=2, no padding -> 73x73.
	p = ConvParams{Ih: 147, Iw: 147, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	oh, ow = p.OutDims()
	if oh != 73 || ow != 73 {
		t.Errorf("InceptionV3 OutDims = (%d,%d), want (73,73)", oh, ow)
	}
	// With padding: 5x5, k=3, s=1, pad 1 -> 5x5 (SAME).
	p = ConvParams{Ih: 5, Iw: 5, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	oh, ow = p.OutDims()
	if oh != 5 || ow != 5 {
		t.Errorf("SAME OutDims = (%d,%d), want (5,5)", oh, ow)
	}
}

func TestConvParamsValidate(t *testing.T) {
	good := ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []ConvParams{
		{Ih: 0, Iw: 8, Kh: 2, Kw: 2, Sh: 1, Sw: 1},
		{Ih: 8, Iw: 8, Kh: 0, Kw: 2, Sh: 1, Sw: 1},
		{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 0, Sw: 1},
		{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 1, Sw: 1, Pt: -1},
		{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 1, Sw: 1, Pt: 2}, // pad >= kernel
		{Ih: 2, Iw: 2, Kh: 3, Kw: 3, Sh: 1, Sw: 1},        // kernel too large
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestMask(t *testing.T) {
	if got := FullMask().Count(); got != 128 {
		t.Errorf("FullMask count %d", got)
	}
	for _, n := range []int{0, 1, 16, 63, 64, 65, 127, 128} {
		m := MaskFirstN(n)
		if got := m.Count(); got != n {
			t.Errorf("MaskFirstN(%d) count %d", n, got)
		}
		for i := 0; i < 128; i++ {
			if m.Bit(i) != (i < n) {
				t.Errorf("MaskFirstN(%d) bit %d = %v", n, i, m.Bit(i))
			}
		}
	}
}

func TestMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaskFirstN(129) did not panic")
		}
	}()
	MaskFirstN(129)
}

func TestRegionOverlap(t *testing.T) {
	a := Region{Buf: UB, Off: 0, End: 64}
	cases := []struct {
		b    Region
		want bool
	}{
		{Region{Buf: UB, Off: 32, End: 96}, true},
		{Region{Buf: UB, Off: 64, End: 96}, false},
		{Region{Buf: L1, Off: 0, End: 64}, false},
		{Region{Buf: UB, Off: 0, End: 1}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestOperandAddressing(t *testing.T) {
	o := Operand{Buf: UB, Addr: 64, BlkStride: 2, RepStride: 16}
	if got := o.BlockAddr(0, 0); got != 64 {
		t.Errorf("BlockAddr(0,0) = %d", got)
	}
	if got := o.BlockAddr(0, 3); got != 64+3*2*32 {
		t.Errorf("BlockAddr(0,3) = %d", got)
	}
	if got := o.BlockAddr(2, 1); got != 64+(2*16+2)*32 {
		t.Errorf("BlockAddr(2,1) = %d", got)
	}
	span := o.Span(3)
	wantEnd := 64 + (2*16+7*2)*32 + 32
	if span.Off != 64 || span.End != wantEnd {
		t.Errorf("Span = %v, want [64:%d)", span, wantEnd)
	}
}

func TestVecInstrCostAndRegions(t *testing.T) {
	cm := DefaultCostModel()
	v := &VecInstr{Op: VMax, Dst: Contig(UB, 0), Src0: Contig(UB, 1024), Src1: Contig(UB, 0), Mask: FullMask(), Repeat: 10}
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := v.Cycles(cm); got != cm.VecIssue+10*cm.VecPerRepeat {
		t.Errorf("Cycles = %d", got)
	}
	if got := len(v.Reads()); got != 2 {
		t.Errorf("binary reads %d regions", got)
	}
	w := v.Writes()
	if len(w) != 1 || w[0].Off != 0 || w[0].End != 10*256 {
		t.Errorf("writes %v", w)
	}
	// A masked instruction costs the same as a saturated one: the whole
	// point of the paper.
	masked := *v
	masked.Mask = MaskFirstN(16)
	if masked.Cycles(cm) != v.Cycles(cm) {
		t.Error("mask width must not change per-instruction cost")
	}
}

func TestVecInstrValidate(t *testing.T) {
	bad := []*VecInstr{
		{Op: VAdd, Dst: Contig(UB, 0), Src0: Contig(UB, 0), Src1: Contig(UB, 0), Repeat: 0},
		{Op: VAdd, Dst: Contig(UB, 0), Src0: Contig(UB, 0), Src1: Contig(UB, 0), Repeat: 256},
		{Op: VAdd, Dst: Contig(L1, 0), Src0: Contig(UB, 0), Src1: Contig(UB, 0), Repeat: 1},
		{Op: VAdd, Dst: Contig(UB, 0), Src0: Contig(GM, 0), Src1: Contig(UB, 0), Repeat: 1},
		{Op: VAdd, Dst: Operand{Buf: UB, Addr: 7}, Src0: Contig(UB, 0), Src1: Contig(UB, 0), Repeat: 1},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad vec instr %d accepted", i)
		}
	}
}

func TestCopyInstrPipes(t *testing.T) {
	cases := []struct {
		src, dst BufID
		want     Pipe
	}{
		{GM, UB, PipeMTE2},
		{GM, L1, PipeMTE2},
		{UB, GM, PipeMTE3},
		{L1, UB, PipeMTE1},
		{L1, L0A, PipeMTE1},
		{UB, UB, PipeVector},
	}
	for _, c := range cases {
		m := &CopyInstr{SrcBuf: c.src, DstBuf: c.dst, NBurst: 1, BurstBytes: 32}
		if got := m.Pipe(); got != c.want {
			t.Errorf("copy %v->%v pipe %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestCopyInstrCostScalesWithBytes(t *testing.T) {
	cm := DefaultCostModel()
	small := &CopyInstr{SrcBuf: GM, DstBuf: UB, NBurst: 1, BurstBytes: 256}
	big := &CopyInstr{SrcBuf: GM, DstBuf: UB, NBurst: 1, BurstBytes: 256 * 1024}
	if small.Cycles(cm) >= big.Cycles(cm) {
		t.Error("DMA cost must grow with payload")
	}
	burst := &CopyInstr{SrcBuf: GM, DstBuf: UB, NBurst: 64, BurstBytes: 4096, SrcGap: 128}
	if burst.Cycles(cm) <= (&CopyInstr{SrcBuf: GM, DstBuf: UB, NBurst: 1, BurstBytes: 64 * 4096}).Cycles(cm) {
		t.Error("bursty copies must pay descriptor overhead")
	}
	r := burst.Reads()[0]
	if r.End-r.Off != 64*4096+63*128 {
		t.Errorf("burst read span %v", r)
	}
}

func TestIm2ColValidate(t *testing.T) {
	p := ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	good := &Im2ColInstr{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 1, RepeatMode: Im2ColRepeatPatches}
	if err := good.Validate(); err != nil {
		t.Errorf("good im2col rejected: %v", err)
	}
	bad := []*Im2ColInstr{
		{SrcBuf: UB, DstBuf: UB, P: p, C1Len: 1, Repeat: 1},
		{SrcBuf: L1, DstBuf: L0C, P: p, C1Len: 1, Repeat: 1},
		{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 0},
		{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 1, Xk: 2},
		{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 1, Patch0: 3},
		{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 1, RepeatMode: 2},
	}
	for i, im := range bad {
		if err := im.Validate(); err == nil {
			t.Errorf("bad im2col %d accepted", i)
		}
	}
}

func TestCol2ImValidate(t *testing.T) {
	p := ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	good := &Col2ImInstr{SrcBuf: UB, DstBuf: UB, P: p, C1Len: 1, Repeat: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good col2im rejected: %v", err)
	}
	bad := &Col2ImInstr{SrcBuf: L1, DstBuf: UB, P: p, C1Len: 1, Repeat: 1}
	if err := bad.Validate(); err == nil {
		t.Error("col2im from L1 accepted")
	}
}

func TestSplitRepeat(t *testing.T) {
	cases := map[int][]int{
		0:   nil,
		1:   {1},
		255: {255},
		256: {255, 1},
		600: {255, 255, 90},
	}
	for total, want := range cases {
		got := SplitRepeat(total)
		if len(got) != len(want) {
			t.Errorf("SplitRepeat(%d) = %v", total, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitRepeat(%d) = %v, want %v", total, got, want)
			}
		}
	}
}

// Property: SplitRepeat pieces sum to the total and respect the cap.
func TestQuickSplitRepeat(t *testing.T) {
	f := func(n uint16) bool {
		total := int(n)
		sum := 0
		for _, r := range SplitRepeat(total) {
			if r < 1 || r > MaxRepeat {
				return false
			}
			sum += r
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMmadCost(t *testing.T) {
	cm := DefaultCostModel()
	mm := &MmadInstr{M: 2, K: 3, N: 4}
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	want := cm.CubeIssue + (2*3*4+cm.CubeFractalPairs-1)/cm.CubeFractalPairs
	if got := mm.Cycles(cm); got != want {
		t.Errorf("mmad cycles %d, want %d", got, want)
	}
	if mm.Pipe() != PipeCube {
		t.Error("mmad pipe")
	}
	if len(mm.Reads()) != 2 {
		t.Error("non-accumulating mmad must not read C")
	}
	mm.Accumulate = true
	if len(mm.Reads()) != 3 {
		t.Error("accumulating mmad must read C")
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test the trace formatting paths.
	_ = (&VecInstr{Op: VMax, Repeat: 1, Dst: Contig(UB, 0)}).String()
	_ = (&CopyInstr{SrcBuf: GM, DstBuf: UB, NBurst: 1, BurstBytes: 32}).String()
	_ = (&Im2ColInstr{}).String()
	_ = (&Col2ImInstr{}).String()
	_ = (&MmadInstr{M: 1, K: 1, N: 1}).String()
	_ = (&ScalarInstr{Ops: 2}).String()
	_ = (&BarrierInstr{}).String()
	_ = (&TransposeInstr{Repeat: 1}).String()
	_ = (&SetFlagInstr{SrcPipe: PipeMTE2, DstPipe: PipeVector}).String()
	_ = (&WaitFlagInstr{SrcPipe: PipeMTE2, DstPipe: PipeVector}).String()
	for p := PipeScalar; p < NumPipes; p++ {
		if p.String() == "" {
			t.Error("empty pipe name")
		}
	}
	for b := GM; b < NumBufs; b++ {
		if b.String() == "" {
			t.Error("empty buffer name")
		}
	}
}
