package isa

import (
	"fmt"

	"davinci/internal/fp16"
)

// VecOp selects the operation of a vector instruction.
type VecOp int

const (
	// VAdd computes dst = src0 + src1.
	VAdd VecOp = iota
	// VSub computes dst = src0 - src1.
	VSub
	// VMul computes dst = src0 * src1.
	VMul
	// VMax computes dst = max(src0, src1).
	VMax
	// VMin computes dst = min(src0, src1).
	VMin
	// VAdds computes dst = src0 + scalar.
	VAdds
	// VMuls computes dst = src0 * scalar.
	VMuls
	// VDup broadcasts the scalar into dst.
	VDup
	// VCopy computes dst = src0 (data movement inside the UB).
	VCopy
	// VCmpEq computes dst = (src0 == src1) ? 1.0 : 0.0, used to build the
	// argmax mask by comparing each patch with its maximum (paper §V-A).
	VCmpEq
)

var vecOpNames = [...]string{"vadd", "vsub", "vmul", "vmax", "vmin", "vadds", "vmuls", "vector_dup", "vcopy", "vcmp_eq"}

func (o VecOp) String() string {
	if o < 0 || int(o) >= len(vecOpNames) {
		return fmt.Sprintf("VecOp(%d)", int(o))
	}
	return vecOpNames[o]
}

// IsBinary reports whether the op reads Src1.
func (o VecOp) IsBinary() bool {
	switch o {
	case VAdd, VSub, VMul, VMax, VMin, VCmpEq:
		return true
	}
	return false
}

// IsUnary reports whether the op reads Src0 only.
func (o VecOp) IsUnary() bool {
	switch o {
	case VAdds, VMuls, VCopy:
		return true
	}
	return false
}

// Operand addresses a strided sequence of 32-byte blocks in one buffer.
// Within one repeat iteration the instruction touches BlocksPerRepeat
// blocks spaced BlkStride blocks apart; successive repeats advance the base
// by RepStride blocks. Strides are in units of BlockBytes, may be zero
// (reduction/broadcast addressing) but not negative.
type Operand struct {
	Buf       BufID
	Addr      int // byte offset of block 0, repeat 0; must be 32-byte aligned
	BlkStride int // blocks between consecutive blocks of a repeat
	RepStride int // blocks between repeat iterations
}

// Contig returns a contiguous operand (BlkStride 1, RepStride 8).
func Contig(buf BufID, addr int) Operand {
	return Operand{Buf: buf, Addr: addr, BlkStride: 1, RepStride: BlocksPerRepeat}
}

// BlockAddr returns the byte address of block b of repeat r.
func (o Operand) BlockAddr(r, b int) int {
	return o.Addr + (r*o.RepStride+b*o.BlkStride)*BlockBytes
}

// Span returns the conservative byte range touched over `repeat`
// iterations, assuming all 8 blocks may be accessed.
func (o Operand) Span(repeat int) Region {
	end := o.BlockAddr(repeat-1, BlocksPerRepeat-1) + BlockBytes
	return Region{Buf: o.Buf, Off: o.Addr, End: end}
}

func (o Operand) validate() error {
	if o.Addr < 0 || o.Addr%BlockBytes != 0 {
		return fmt.Errorf("isa: operand address %d not 32-byte aligned", o.Addr)
	}
	if o.BlkStride < 0 || o.RepStride < 0 {
		return fmt.Errorf("isa: negative operand stride")
	}
	return nil
}

// VecInstr is one Vector Unit instruction. One repeat iteration processes
// up to 128 Float16 lanes selected by Mask; the Repeat parameter reissues
// the instruction with advanced addresses without refetching (paper §III-A,
// §V: "the repetition parameter should be employed, thus removing loops and
// barriers around vector instructions").
type VecInstr struct {
	Op     VecOp
	Dst    Operand
	Src0   Operand // unused for VDup
	Src1   Operand // used by binary ops only
	Scalar fp16.Float16
	Mask   Mask
	Repeat int // 1..MaxRepeat
}

// Pipe returns PipeVector.
func (v *VecInstr) Pipe() Pipe { return PipeVector }

// Cycles charges the fixed issue overhead plus one cycle per repeat: a
// repeat occupies the full 128-lane datapath whether or not the mask
// saturates it — this is exactly the utilization effect the paper exploits.
// Non-unit block strides break the wide 256-byte access into per-block
// transactions, so such repeats run at the slower gather rate; this is why
// transforming the layout with plain vector copies ("Maxpool with
// expansion") costs real vector time (§VI-B).
func (v *VecInstr) Cycles(c *CostModel) int64 {
	perRep := c.VecPerRepeat
	if v.strided() {
		perRep = c.VecStridedPerRepeat
	}
	return c.VecIssue + int64(v.Repeat)*perRep
}

func (v *VecInstr) strided() bool {
	if v.Dst.BlkStride > 1 {
		return true
	}
	if (v.Op.IsUnary() || v.Op.IsBinary()) && v.Src0.BlkStride > 1 {
		return true
	}
	return v.Op.IsBinary() && v.Src1.BlkStride > 1
}

// Reads returns the source spans.
func (v *VecInstr) Reads() []Region {
	switch {
	case v.Op.IsBinary():
		return []Region{v.Src0.Span(v.Repeat), v.Src1.Span(v.Repeat)}
	case v.Op.IsUnary():
		return []Region{v.Src0.Span(v.Repeat)}
	default: // VDup
		return nil
	}
}

// Writes returns the destination span.
func (v *VecInstr) Writes() []Region { return []Region{v.Dst.Span(v.Repeat)} }

// Validate checks structural constraints.
func (v *VecInstr) Validate() error {
	if v.Repeat < 1 || v.Repeat > MaxRepeat {
		return fmt.Errorf("isa: %v repeat %d out of range [1,%d]", v.Op, v.Repeat, MaxRepeat)
	}
	if err := v.Dst.validate(); err != nil {
		return err
	}
	if v.Dst.Buf != UB {
		return fmt.Errorf("isa: vector destination must be UB, got %v", v.Dst.Buf)
	}
	if v.Op.IsBinary() || v.Op.IsUnary() {
		if err := v.Src0.validate(); err != nil {
			return err
		}
		if v.Src0.Buf != UB {
			return fmt.Errorf("isa: vector source must be UB, got %v", v.Src0.Buf)
		}
	}
	if v.Op.IsBinary() {
		if err := v.Src1.validate(); err != nil {
			return err
		}
		if v.Src1.Buf != UB {
			return fmt.Errorf("isa: vector source must be UB, got %v", v.Src1.Buf)
		}
	}
	return nil
}

func (v *VecInstr) String() string {
	return fmt.Sprintf("%v rpt=%d mask=%d dst=%v+%d", v.Op, v.Repeat, v.Mask.Count(), v.Dst.Buf, v.Dst.Addr)
}
