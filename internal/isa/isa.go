// Package isa defines the simulated DaVinci AI Core instruction set used by
// this reproduction: vector instructions with the 128-bit lane mask and
// repeat parameter, memory-transfer (MTE) copies, the Storage Conversion
// Unit's Im2Col and Col2Im instructions, and the Cube unit's MMAD
// (paper §III).
//
// Instructions are plain data. Functional execution lives in
// internal/aicore; layout math shared with reference models lives in
// internal/scu. Cycle costs come from the CostModel in cost.go.
package isa

import "fmt"

// Pipe identifies one of the AI Core's execution pipelines. Instructions on
// different pipes may overlap in time subject to data hazards; instructions
// on the same pipe issue in order (paper §III-A, Fig. 4).
type Pipe int

const (
	// PipeScalar is the Scalar Unit (control flow, addressing).
	PipeScalar Pipe = iota
	// PipeVector is the Vector Unit (vector arithmetic and Col2Im).
	PipeVector
	// PipeCube is the Cube Unit (fractal matrix multiply).
	PipeCube
	// PipeMTE1 moves data between local buffers (L1 -> L0A/L0B/UB) and
	// hosts the Im2Col load transform.
	PipeMTE1
	// PipeMTE2 moves data from global memory into local buffers.
	PipeMTE2
	// PipeMTE3 moves data from local buffers out to global memory.
	PipeMTE3
	// NumPipes is the number of pipelines.
	NumPipes
)

var pipeNames = [...]string{"SCALAR", "VEC", "CUBE", "MTE1", "MTE2", "MTE3"}

func (p Pipe) String() string {
	if p < 0 || int(p) >= len(pipeNames) {
		return fmt.Sprintf("Pipe(%d)", int(p))
	}
	return pipeNames[p]
}

// BufID identifies a memory in the AI Core address map. Each buffer has its
// own address space (scratch-pad organization, paper §III-A).
type BufID int

const (
	// GM is global memory (DDR/HBM/L2 are indistinguishable from the AI
	// Core's perspective; the paper draws them as a single node).
	GM BufID = iota
	// L1 is the 1 MiB input buffer feeding the SCU.
	L1
	// L0A holds the Cube unit's left operand fractals.
	L0A
	// L0B holds the Cube unit's right operand fractals.
	L0B
	// L0C holds the Cube unit's fp32 accumulator output.
	L0C
	// UB is the Unified Buffer serving the Vector and Scalar units.
	UB
	// NumBufs is the number of address spaces.
	NumBufs
)

var bufNames = [...]string{"GM", "L1", "L0A", "L0B", "L0C", "UB"}

func (b BufID) String() string {
	if b < 0 || int(b) >= len(bufNames) {
		return fmt.Sprintf("BufID(%d)", int(b))
	}
	return bufNames[b]
}

// Architectural constants of the vector datapath.
const (
	// BlockBytes is the vector access granularity: one 32-byte block.
	BlockBytes = 32
	// ElemsPerBlock is the number of Float16 elements per block.
	ElemsPerBlock = 16
	// BlocksPerRepeat is the number of blocks one repeat iteration covers.
	BlocksPerRepeat = 8
	// LanesPerRepeat is the number of Float16 lanes one repeat processes
	// (the 128-bit mask register has one bit per lane, paper §III-A).
	LanesPerRepeat = BlocksPerRepeat * ElemsPerBlock
)

// Mask is the 128-bit vector lane mask; bit i enables lane i.
type Mask [2]uint64

// FullMask enables all 128 lanes.
func FullMask() Mask { return Mask{^uint64(0), ^uint64(0)} }

// MaskFirstN enables the first n lanes (0 <= n <= 128).
func MaskFirstN(n int) Mask {
	if n < 0 || n > LanesPerRepeat {
		panic(fmt.Sprintf("isa: mask width %d out of range", n))
	}
	var m Mask
	switch {
	case n >= 128:
		return FullMask()
	case n > 64:
		m[0] = ^uint64(0)
		m[1] = (uint64(1) << (n - 64)) - 1
	case n == 64:
		m[0] = ^uint64(0)
	default:
		m[0] = (uint64(1) << n) - 1
	}
	return m
}

// Bit reports whether lane i is enabled.
func (m Mask) Bit(i int) bool { return m[i/64]>>(i%64)&1 == 1 }

// Count returns the number of enabled lanes.
func (m Mask) Count() int {
	n := 0
	for i := 0; i < LanesPerRepeat; i++ {
		if m.Bit(i) {
			n++
		}
	}
	return n
}

// Region is a byte range in one buffer, used for hazard tracking.
type Region struct {
	Buf BufID
	Off int // first byte
	End int // one past last byte
}

// Overlaps reports whether two regions intersect.
func (r Region) Overlaps(o Region) bool {
	return r.Buf == o.Buf && r.Off < o.End && o.Off < r.End
}

func (r Region) String() string {
	return fmt.Sprintf("%v[%d:%d)", r.Buf, r.Off, r.End)
}

// Instr is one AI Core instruction. Implementations are the *Instr structs
// in this package.
type Instr interface {
	// Pipe returns the pipeline the instruction issues on.
	Pipe() Pipe
	// Cycles returns the cost charged by the timing model.
	Cycles(c *CostModel) int64
	// Reads returns conservative source byte ranges for hazard tracking.
	Reads() []Region
	// Writes returns conservative destination byte ranges.
	Writes() []Region
	// Validate reports structural problems (bad strides, repeat counts).
	Validate() error
	// String renders a compact trace line.
	String() string
}
