package isa

// MaxRepeat is the largest repeat count a single instruction supports;
// longer streams must be split into multiple instructions, paying the issue
// overhead again. This cap is what makes instruction-count reduction (the
// paper's repeat-parameter argument, §V) matter even for huge tiles.
const MaxRepeat = 255

// CostModel holds the cycle costs charged by the timing simulator. The
// defaults are calibrated so that the relative behaviour of the kernel
// variants matches the paper's Ascend 910 measurements (see EXPERIMENTS.md);
// absolute values are not meaningful, ratios are.
type CostModel struct {
	// VecIssue is the fixed overhead of issuing one vector instruction
	// (fetch, decode, address generation, inter-instruction barrier).
	VecIssue int64
	// VecPerRepeat is the cost of one repeat iteration: the 128-lane
	// datapath advances one step per cycle regardless of mask occupancy.
	VecPerRepeat int64
	// VecStridedPerRepeat is the cost of one repeat iteration when an
	// operand uses a non-unit block stride: the access is split into
	// per-block transactions (one per 32-byte block).
	VecStridedPerRepeat int64
	// MteIssue is the fixed overhead of a memory-transfer instruction.
	MteIssue int64
	// MteBurst is the extra descriptor cost per additional burst.
	MteBurst int64
	// DmaBytesPerCycle is the global-memory DMA bandwidth (MTE2/MTE3).
	DmaBytesPerCycle int
	// LocalBytesPerCycle is the local copy bandwidth (MTE1, UB-to-UB).
	LocalBytesPerCycle int
	// Im2ColFractal is the SCU cost of producing one fractal during an
	// Im2Col load (gather of 16 patch elements x C0).
	Im2ColFractal int64
	// Col2ImFractal is the Vector Unit cost of one Col2Im fractal step:
	// the load / add / scattered store of Fig. 6.
	Col2ImFractal int64
	// CubeIssue is the fixed overhead of an MMAD instruction.
	CubeIssue int64
	// CubeFractalPairs is the number of fractal pairs multiplied per cycle.
	CubeFractalPairs int64
	// ScalarOp is the cost of one Scalar Unit operation.
	ScalarOp int64
	// Barrier is the cost of a full pipe barrier.
	Barrier int64
	// Flag is the cost of a set_flag / wait_flag instruction (stall time
	// from waiting comes out of the schedule, not this constant).
	Flag int64
}

// DefaultCostModel returns the calibrated model used throughout the
// benchmarks. Rationale for the key values:
//
//   - VecIssue 4 / VecPerRepeat 1: a vector instruction's overhead is a
//     small multiple of its per-step cost, so kernels that issue one
//     instruction per patch (Listing 1's lowering) are dominated by issue
//     overhead while kernels that ride the repeat parameter amortize it.
//   - VecStridedPerRepeat 8: non-unit block strides serialize the 8
//     blocks of a repeat, so layout transforms done with plain vector
//     copies pay for their gathers ("Maxpool with expansion", §VI-B).
//   - DmaBytesPerCycle 64: a 512-bit bus transfer per cycle to global
//     memory, so data movement is never free and kernels that save masks
//     or gradients pay for the traffic.
//   - Im2ColFractal 12: the SCU gathers one fractal (512 B) every twelve
//     cycles — the transform happens "while data is transferred between
//     buffers" (paper §III-A) rather than as vector work, but data
//     duplication still costs SCU bandwidth, which is why the direct
//     kernel wins at stride (1,1) where duplication is maximal (Fig. 8a).
//   - Col2ImFractal 9: a read-modify-write of 16 scattered C0 rows costs
//     an order of magnitude more than a streaming repeat but far less
//     than the 16-lane vadd per patch it replaces.
func DefaultCostModel() *CostModel {
	return &CostModel{
		VecIssue:            4,
		VecPerRepeat:        1,
		VecStridedPerRepeat: 8,
		MteIssue:            16,
		MteBurst:            2,
		DmaBytesPerCycle:    64,
		LocalBytesPerCycle:  128,
		Im2ColFractal:       12,
		Col2ImFractal:       9,
		CubeIssue:           8,
		CubeFractalPairs:    2,
		ScalarOp:            1,
		Barrier:             16,
		Flag:                2,
	}
}

// SplitRepeat decomposes a total repeat count into chunks of at most
// MaxRepeat, the way a compiler lowers long loops onto the repeat
// parameter. It returns the per-instruction repeat counts.
func SplitRepeat(total int) []int {
	if total <= 0 {
		return nil
	}
	var out []int
	for total > 0 {
		n := total
		if n > MaxRepeat {
			n = MaxRepeat
		}
		out = append(out, n)
		total -= n
	}
	return out
}
