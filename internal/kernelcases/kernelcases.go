// Package kernelcases enumerates every built-in kernel as a (planner,
// input builder) pair, so sweeps that want "all kernels on all layers" —
// the static-bound reality check, the accounting-identity test, the
// benchmark Table I sweep — share one catalogue instead of each keeping a
// private copy that drifts.
package kernelcases

import (
	"math/rand"
	"strings"

	"davinci/internal/isa"
	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// ConvCh is the channel extent the convolution kernels are compiled for
// in sweeps: one C0 slice, so the (1,1,H,W,C0) pooling tile doubles as
// the convolution input.
const ConvCh = tensor.C0

// Case is one built-in kernel: a plan compiler plus an input builder for
// a given layer's parameters.
type Case struct {
	// Name is "kernel/variant", e.g. "maxpool_fwd/im2col".
	Name string
	// Plan compiles the kernel for one (1,1,H,W,C0) tile.
	Plan func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error)
	// Inputs builds suitable single-tile inputs for Plan's program.
	Inputs func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor
}

// IsCapacitySkip reports whether a planning error means the shape does
// not fit the kernel's on-chip tiling (and a sweep should skip it, like
// the chip-level tiling would) rather than a bug.
func IsCapacitySkip(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "does not fit") || strings.Contains(msg, "exceed") ||
		strings.Contains(msg, "out of space")
}

func randTile(rng *rand.Rand, h, w int) *tensor.Tensor {
	t := tensor.New(1, 1, h, w, tensor.C0)
	t.FillRandom(rng, 8)
	return t
}

func inTile(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	return []*tensor.Tensor{randTile(rng, p.Ih, p.Iw)}
}

func gradTile(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	oh, ow := p.OutDims()
	return []*tensor.Tensor{randTile(rng, oh, ow)}
}

func maskGrad(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	in := randTile(rng, p.Ih, p.Iw)
	g := gradTile(rng, p)
	return []*tensor.Tensor{ref.ArgmaxMask(in, p), g[0]}
}

func randWeights(rng *rand.Rand, p isa.ConvParams) *tensor.Tensor {
	w := tensor.New(ConvCh, ConvCh, p.Kh, p.Kw)
	w.FillRandom(rng, 4)
	return w
}

// All enumerates every planner the dispatch tables (and the conv
// substrate) expose, with suitable single-tile inputs.
func All() []Case {
	var cases []Case
	forVariant := func(name string, fn func(string, ops.Spec, isa.ConvParams) (*ops.Plan, error), variants []string, in func(*rand.Rand, isa.ConvParams) []*tensor.Tensor) {
		for _, v := range variants {
			variant := v
			cases = append(cases, Case{
				Name:   name + "/" + variant,
				Plan:   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) { return fn(variant, spec, p) },
				Inputs: in,
			})
		}
	}
	forVariant("maxpool_fwd", ops.PlanMaxPoolForward, []string{"standard", "im2col", "expansion", "xysplit"}, inTile)
	forVariant("maxpool_fwd_argmax", ops.PlanMaxPoolForwardArgmax, []string{"standard", "im2col"}, inTile)
	forVariant("maxpool_bwd", ops.PlanMaxPoolBackward, []string{"standard", "col2im"}, maskGrad)
	forVariant("avgpool_fwd", ops.PlanAvgPoolForward, []string{"standard", "im2col", "cube"}, inTile)
	for _, useCol2im := range []bool{false, true} {
		use := useCol2im
		name := "avgpool_bwd/standard"
		if use {
			name = "avgpool_bwd/col2im"
		}
		cases = append(cases, Case{
			Name:   name,
			Plan:   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) { return ops.PlanAvgPoolBackward(spec, p, use) },
			Inputs: gradTile,
		})
	}
	cases = append(cases,
		Case{"conv2d",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2D(spec, p, ConvCh, ConvCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{randTile(rng, p.Ih, p.Iw), randWeights(rng, p)}
			}},
		Case{"conv2d_bwd_data",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2DBackwardData(spec, p, ConvCh, ConvCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{gradTile(rng, p)[0], randWeights(rng, p)}
			}},
		Case{"conv2d_bwd_weights",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2DBackwardWeights(spec, p, ConvCh, ConvCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{gradTile(rng, p)[0], randTile(rng, p.Ih, p.Iw)}
			}},
	)
	return cases
}
