package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/trace"
	"davinci/internal/workloads"
)

// smallParams is a fast host-friendly pooling layer: 12x12 spatial, 3x3
// kernel, stride 2.
func smallParams() isa.ConvParams {
	return isa.ConvParams{Ih: 12, Iw: 12, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
}

// smallInput builds a seeded NC1HWC0 input with the given N and C1=2.
func smallInput(rng *rand.Rand, n int) *tensor.Tensor {
	t := tensor.New(n, 2, 12, 12, tensor.C0)
	t.FillRandom(rng, 8)
	return t
}

func refFor(req Request) *tensor.Tensor {
	if req.Kernel == "avgpool" {
		return ref.AvgPoolForward(req.Input, req.Params)
	}
	return ref.MaxPoolForward(req.Input, req.Params)
}

// checkConservation asserts the package contract: every submitted request
// reached exactly one terminal outcome.
func checkConservation(t *testing.T, s *Server) {
	t.Helper()
	st := s.Stats()
	if lost := st.Lost(); lost != 0 {
		t.Fatalf("conservation violated: %d lost (%+v)", lost, st)
	}
}

func TestServeCompletesBitIdentical(t *testing.T) {
	tr := trace.New()
	s := New(Config{Chips: 2, Cores: 2, Trace: tr.Root()})
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	type item struct {
		req Request
		tk  *Ticket
	}
	var items []item
	for i := 0; i < 12; i++ {
		kernel := "maxpool"
		if i%2 == 1 {
			kernel = "avgpool"
		}
		req := Request{
			Kernel: kernel,
			Params: smallParams(),
			Input:  smallInput(rng, 1+i%3),
			Class:  Class(i % 3),
		}
		items = append(items, item{req, s.Submit(context.Background(), req)})
	}
	for i, it := range items {
		r := it.tk.Wait()
		if r.Outcome != OutcomeCompleted {
			t.Fatalf("request %d: outcome %s, err %v", i, r.Outcome, r.Err)
		}
		want := refFor(it.req)
		if !bytes.Equal(r.Output.Data, want.Data) {
			t.Fatalf("request %d: output not bit-identical to golden model", i)
		}
	}
	s.Drain()
	checkConservation(t, s)
	st := s.Stats()
	if st.Completed != 12 || st.Admitted != 12 {
		t.Fatalf("want 12 admitted+completed, got %+v", st)
	}
	if tr.Active() != 0 {
		t.Fatalf("span leak: Active = %d", tr.Active())
	}
}

func TestServeBatchingCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Chips: 1, Cores: 2, MaxBatch: 8, Metrics: reg})
	defer s.Close()

	// Stage the queue while dispatch is held so the six same-shape
	// requests provably coalesce into one batch.
	s.pause()
	rng := rand.New(rand.NewSource(2))
	var tks []*Ticket
	for i := 0; i < 6; i++ {
		tks = append(tks, s.Submit(context.Background(), Request{
			Kernel: "maxpool",
			Params: smallParams(),
			Input:  smallInput(rng, 1),
		}))
	}
	s.resume()
	for i, tk := range tks {
		r := tk.Wait()
		if r.Outcome != OutcomeCompleted {
			t.Fatalf("request %d: outcome %s, err %v", i, r.Outcome, r.Err)
		}
		if r.BatchSize != 6 {
			t.Fatalf("request %d rode a batch of %d, want 6", i, r.BatchSize)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.CounterValue("serve_batches"); v != 1 {
		t.Fatalf("serve_batches = %d, want 1 coalesced batch", v)
	}
	checkConservation(t, s)
}

func TestServeQueueFullAndEviction(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2, QueueLimit: 2})
	defer s.Close()
	s.pause()
	rng := rand.New(rand.NewSource(3))
	mk := func(class Class) Request {
		return Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1), Class: class}
	}

	t1 := s.Submit(context.Background(), mk(ClassBatch))
	t2 := s.Submit(context.Background(), mk(ClassBatch))

	// Queue is full; another batch-class request finds no lower-class
	// victim and is refused outright.
	r3 := s.Submit(context.Background(), mk(ClassBatch)).Wait()
	if !errors.Is(r3.Err, ErrQueueFull) || r3.Outcome != OutcomeRejected {
		t.Fatalf("want ErrQueueFull rejection, got %s / %v", r3.Outcome, r3.Err)
	}

	// An interactive arrival evicts the youngest batch-class request.
	t4 := s.Submit(context.Background(), mk(ClassInteractive))
	r2 := t2.Wait()
	if !errors.Is(r2.Err, ErrShedding) || r2.Reason != "evicted" {
		t.Fatalf("want evicted ErrShedding, got %s / %v (reason %q)", r2.Outcome, r2.Err, r2.Reason)
	}

	s.resume()
	if r := t1.Wait(); r.Outcome != OutcomeCompleted {
		t.Fatalf("survivor 1: %s / %v", r.Outcome, r.Err)
	}
	if r := t4.Wait(); r.Outcome != OutcomeCompleted {
		t.Fatalf("survivor 4: %s / %v", r.Outcome, r.Err)
	}
	s.Drain()
	checkConservation(t, s)
	if hw := s.Stats().QueueHighWater; hw > 2 {
		t.Fatalf("queue high-water %d exceeds limit 2", hw)
	}
}

func TestServeSheddingByClass(t *testing.T) {
	// An SLO of 1ns makes any predicted latency an overload, so the
	// controller's class ordering is the only variable: batch and
	// standard shed, interactive never.
	s := New(Config{Chips: 1, Cores: 2, SLO: time.Nanosecond})
	defer s.Close()
	rng := rand.New(rand.NewSource(4))
	mk := func(class Class) Request {
		return Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1), Class: class}
	}

	if r := s.Do(context.Background(), mk(ClassBatch)); !errors.Is(r.Err, ErrShedding) {
		t.Fatalf("batch class: want ErrShedding, got %s / %v", r.Outcome, r.Err)
	}
	if r := s.Do(context.Background(), mk(ClassStandard)); !errors.Is(r.Err, ErrShedding) {
		t.Fatalf("standard class: want ErrShedding, got %s / %v", r.Outcome, r.Err)
	}
	if r := s.Do(context.Background(), mk(ClassInteractive)); r.Outcome != OutcomeCompleted {
		t.Fatalf("interactive class: want completion, got %s / %v", r.Outcome, r.Err)
	}
	checkConservation(t, s)
}

func TestServeShedThresholds(t *testing.T) {
	// Unit-test the controller's two-step threshold directly: one SLO of
	// predicted overload sheds batch, two shed standard.
	s := New(Config{Chips: 1, Cores: 2, SLO: time.Millisecond, CyclesPerSecond: 1e9})
	defer s.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	mk := func(class Class, cycles int64) *pending {
		return &pending{req: Request{Class: class}, cycles: cycles}
	}
	const overOne = 1_500_000 // 1.5ms predicted at 1 GHz
	const overTwo = 2_500_000 // 2.5ms predicted
	const underOne = 500_000  // 0.5ms predicted
	if shed, _ := s.shedsLocked(mk(ClassBatch, underOne)); shed {
		t.Fatal("batch shed below SLO")
	}
	if shed, _ := s.shedsLocked(mk(ClassBatch, overOne)); !shed {
		t.Fatal("batch not shed above 1x SLO")
	}
	if shed, _ := s.shedsLocked(mk(ClassStandard, overOne)); shed {
		t.Fatal("standard shed below 2x SLO")
	}
	if shed, _ := s.shedsLocked(mk(ClassStandard, overTwo)); !shed {
		t.Fatal("standard not shed above 2x SLO")
	}
	if shed, _ := s.shedsLocked(mk(ClassInteractive, overTwo)); shed {
		t.Fatal("interactive shed by controller")
	}
}

func TestServeDegradeOnOverload(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2, SLO: time.Nanosecond, DegradeOnOverload: true})
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	req := Request{Kernel: "avgpool", Params: smallParams(), Input: smallInput(rng, 1), Class: ClassBatch}
	r := s.Do(context.Background(), req)
	if r.Outcome != OutcomeDegraded || r.Reason != "overload" {
		t.Fatalf("want overload degradation, got %s / %v (reason %q)", r.Outcome, r.Err, r.Reason)
	}
	if !bytes.Equal(r.Output.Data, refFor(req).Data) {
		t.Fatal("degraded output differs from golden model")
	}
	checkConservation(t, s)
}

func TestServeDeadlineBudget(t *testing.T) {
	// At one simulated cycle per host second, no deadline is meetable:
	// the static bound rejects up front.
	s := New(Config{Chips: 1, Cores: 2, CyclesPerSecond: 1})
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := s.Do(ctx, Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1)})
	if !errors.Is(r.Err, ErrDeadlineBudget) || r.Outcome != OutcomeRejected {
		t.Fatalf("want ErrDeadlineBudget, got %s / %v", r.Outcome, r.Err)
	}
	checkConservation(t, s)
}

func TestServeCancelledWhileQueued(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2})
	defer s.Close()
	s.pause()
	rng := rand.New(rand.NewSource(7))
	ctx, cancel := context.WithCancel(context.Background())
	tk := s.Submit(ctx, Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1)})
	cancel()
	s.resume()
	r := tk.Wait()
	if r.Outcome != OutcomeCancelled || !errors.Is(r.Err, ErrCancelled) {
		t.Fatalf("want cancellation, got %s / %v", r.Outcome, r.Err)
	}
	s.Drain()
	checkConservation(t, s)
}

func TestServeInvalidRequests(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2})
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	cases := []Request{
		{Kernel: "conv9000", Params: smallParams(), Input: smallInput(rng, 1)},
		{Kernel: "maxpool", Params: smallParams(), Input: nil},
		{Kernel: "maxpool", Params: isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 2, Sw: 2}, Input: smallInput(rng, 1)},
	}
	for i, req := range cases {
		r := s.Do(context.Background(), req)
		if !errors.Is(r.Err, ErrInvalid) || r.Outcome != OutcomeRejected {
			t.Fatalf("case %d: want ErrInvalid, got %s / %v", i, r.Outcome, r.Err)
		}
	}
	checkConservation(t, s)
}

func TestServeClosedRejects(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2})
	s.Close()
	rng := rand.New(rand.NewSource(9))
	r := s.Do(context.Background(), Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1)})
	if !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %s / %v", r.Outcome, r.Err)
	}
	checkConservation(t, s)
}

func TestServeBreakerDegradesAndProbes(t *testing.T) {
	// A chip that always faults (rate 1, faults outlasting the retry
	// budget) trips its breaker; every request still gets a correct
	// degraded response — availability degrades, liveness never.
	inj := faults.New(faults.Config{
		Seed:       11,
		Rate:       1,
		Kinds:      []faults.Kind{faults.KindTransient},
		MaxPerTile: 8,
	}, nil)
	s := New(Config{
		Chips: 1, Cores: 2,
		Resilience: chip.Resilience{
			Enabled:     true,
			Injector:    inj,
			MaxAttempts: 2,
			Watchdog:    400 * time.Millisecond,
		},
		DegradeOnFailure: true,
		BreakerFailLimit: 2,
		BreakerCooldown:  10 * time.Millisecond,
	})
	defer s.Close()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5; i++ {
		req := Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1)}
		r := s.Do(context.Background(), req)
		if r.Outcome != OutcomeDegraded || r.Reason != "exec" {
			t.Fatalf("request %d: want exec degradation, got %s / %v", i, r.Outcome, r.Err)
		}
		if !bytes.Equal(r.Output.Data, refFor(req).Data) {
			t.Fatalf("request %d: degraded output differs from golden model", i)
		}
	}
	st := s.Stats()
	if st.BreakerTrips < 1 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if st.BreakerProbes < 1 {
		t.Fatalf("breaker never probed half-open: %+v", st)
	}
	if st.Degraded != 5 {
		t.Fatalf("want 5 degraded, got %+v", st)
	}
	checkConservation(t, s)
}

func TestServeMixedShapesBatchSeparately(t *testing.T) {
	s := New(Config{Chips: 1, Cores: 2, MaxBatch: 8})
	defer s.Close()
	s.pause()
	rng := rand.New(rand.NewSource(12))
	big := isa.ConvParams{Ih: 16, Iw: 16, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	bigInput := tensor.New(1, 2, 16, 16, tensor.C0)
	bigInput.FillRandom(rng, 8)
	a := s.Submit(context.Background(), Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1)})
	b := s.Submit(context.Background(), Request{Kernel: "maxpool", Params: big, Input: bigInput})
	s.resume()
	ra, rb := a.Wait(), b.Wait()
	if ra.Outcome != OutcomeCompleted || rb.Outcome != OutcomeCompleted {
		t.Fatalf("outcomes: %s / %s", ra.Outcome, rb.Outcome)
	}
	if ra.BatchSize != 1 || rb.BatchSize != 1 {
		t.Fatalf("different shapes must not share a batch: %d / %d", ra.BatchSize, rb.BatchSize)
	}
	checkConservation(t, s)
}

func TestRunLoadConservation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Chips: 2, Cores: 2, Metrics: reg})
	defer s.Close()
	small := []workloads.CNNLayer{{Network: "unit", Index: 1, H: 12, W: 12, C: 32, Kernel: 3, Stride: 2}}
	rep := RunLoad(s, LoadOptions{Requests: 16, Seed: 42, Layers: small})
	if rep.Lost != 0 {
		t.Fatalf("load run lost %d requests: %+v", rep.Lost, rep)
	}
	if rep.Completed != 16 {
		t.Fatalf("unloaded fleet should complete everything: %+v", rep)
	}
	if rep.GoodputRPS <= 0 || rep.P99NS <= 0 {
		t.Fatalf("missing throughput/latency stats: %+v", rep)
	}
	rep.Publish(reg, "smoke", true)
	snap := reg.Snapshot()
	if v, ok := snap.GaugeValue("serve_goodput", "experiment", "serveload", "input", "smoke"); !ok || v != 16 {
		t.Fatalf("serve_goodput gauge = %d (ok=%v), want 16", v, ok)
	}
	if v, ok := snap.GaugeValue("serve_lost_requests", "experiment", "serveload", "input", "smoke"); !ok || v != 0 {
		t.Fatalf("serve_lost_requests gauge = %d (ok=%v), want 0", v, ok)
	}
	checkConservation(t, s)
}
