package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"davinci/internal/fp16"
	"davinci/internal/tensor"
)

// batch is one assembled dispatch unit: same-shape members to run
// concatenated along N, plus requests that reached a terminal state at
// dequeue time (cancelled contexts, busted deadline budgets).
type batch struct {
	key       shapeKey
	chip      int
	members   []*pending
	cancelled []*pending
	rejected  []*pending
}

// dispatch is one chip's dispatcher loop: assemble the next batch, run
// it, repeat until the server closes and the queue drains.
func (s *Server) dispatch(sl *slot) {
	defer s.wg.Done()
	for {
		b := s.nextBatch(sl)
		if b == nil {
			return
		}
		s.runBatch(sl, b)
	}
}

// nextBatch blocks until work is available and the slot's breaker admits
// it, then pops a batch. Returns nil when the server has closed and the
// queue is drained.
func (s *Server) nextBatch(sl *slot) *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed && s.queued == 0 {
			return nil
		}
		if !s.paused && s.queued > 0 {
			now := time.Now()
			if sl.admits(now) {
				limit := s.cfg.MaxBatch
				if sl.open {
					// Half-open probe: risk one request, not a full batch.
					limit = 1
					s.nProbes.Add(1)
					s.cProbes.Add(1)
				}
				if b := s.assembleLocked(sl, now, limit); b != nil {
					return b
				}
			} else if d := sl.wake(now); d > 0 && s.queued > 0 {
				// Parked behind an open breaker: ensure a wakeup at
				// cooldown expiry even if no new submission broadcasts.
				time.AfterFunc(d+time.Millisecond, s.cond.Broadcast)
			}
		}
		s.cond.Wait()
	}
}

// assembleLocked pops the oldest shape group FIFO into a batch of at most
// limit members, never packing a request whose predicted batch completion
// (static critical-path bound) would bust its own or any packed member's
// deadline. Requests that are dead on arrival at the head — cancelled
// context, or a deadline even a solo run can't meet — are popped into the
// batch's terminal lists so the queue can't be wedged by them.
func (s *Server) assembleLocked(sl *slot, now time.Time, limit int) *batch {
	var g *group
	for _, cand := range s.groups {
		if len(cand.reqs) == 0 {
			continue
		}
		if g == nil || cand.reqs[0].seq < g.reqs[0].seq {
			g = cand
		}
	}
	if g == nil {
		return nil
	}
	b := &batch{key: g.key, chip: sl.id}
	tiles := 0
	for len(g.reqs) > 0 && len(b.members) < limit {
		cand := g.reqs[0]
		if cand.ctx.Err() != nil {
			s.popLocked(g, cand)
			b.cancelled = append(b.cancelled, cand)
			continue
		}
		if cand.hasDL {
			solo := time.Duration(s.cyclesToNS(cand.cycles))
			if now.Add(solo).After(cand.deadline) {
				s.popLocked(g, cand)
				b.rejected = append(b.rejected, cand)
				continue
			}
		}
		pred := time.Duration(s.cyclesToNS(s.predictCycles(g.plan, tiles+cand.tiles)))
		end := now.Add(pred)
		if s.bustsDeadline(b.members, cand, end) {
			break // leave cand queued; it rides a later (smaller) batch
		}
		s.popLocked(g, cand)
		cand.popped = now
		b.members = append(b.members, cand)
		tiles += cand.tiles
	}
	s.inflight += len(b.members) + len(b.cancelled) + len(b.rejected)
	if len(b.members)+len(b.cancelled)+len(b.rejected) == 0 {
		return nil
	}
	b.key = g.key
	return b
}

// bustsDeadline reports whether a batch predicted to complete at end
// would miss cand's or any member's deadline.
func (s *Server) bustsDeadline(members []*pending, cand *pending, end time.Time) bool {
	if cand.hasDL && end.After(cand.deadline) {
		return true
	}
	for _, m := range members {
		if m.hasDL && end.After(m.deadline) {
			return true
		}
	}
	return false
}

// popLocked removes the head of g (which must be p) from the queue.
func (s *Server) popLocked(g *group, p *pending) {
	g.reqs = g.reqs[1:]
	s.queued--
	s.backlog -= p.cycles
	s.gDepth.Set(int64(s.queued))
}

// runBatch executes one batch on the slot's chip and resolves every
// member exactly once.
func (s *Server) runBatch(sl *slot, b *batch) {
	for _, p := range b.cancelled {
		s.resolve(p, &Response{
			Outcome: OutcomeCancelled,
			Err:     fmt.Errorf("%w: %v", ErrCancelled, p.ctx.Err()),
			Chip:    -1,
		}, true)
	}
	for _, p := range b.rejected {
		s.resolve(p, &Response{Outcome: OutcomeRejected, Err: ErrDeadlineBudget, Reason: "deadline", Chip: -1}, true)
	}
	if len(b.members) == 0 {
		return
	}

	span := s.tc.StartSpan("serve_batch",
		"chip", strconv.Itoa(sl.id),
		"impl", b.key.kernel+"_fwd_"+b.key.variant,
		"size", strconv.Itoa(len(b.members)))
	for _, p := range b.members {
		p.span.Link("batch", span.ID())
		s.hWait.Observe(p.popped.Sub(p.queuedAt).Nanoseconds())
	}
	s.cBatches.Add(1)
	s.hBatch.Observe(int64(len(b.members)))

	// Concatenate inputs along N: the NC1HWC0 layout is N-major, so a
	// batch is a byte concatenation of its members.
	c1 := b.key.c1
	totalN := 0
	for _, p := range b.members {
		totalN += p.req.Input.Shape[0]
	}
	in := tensor.New(totalN, c1, b.key.params.Ih, b.key.params.Iw, tensor.C0)
	off := 0
	for _, p := range b.members {
		off += copy(in.Data[off:], p.req.Input.Data)
	}

	// Batch context: cancelled (interrupting the chip through the
	// core.Cancel path) once every member's context has expired. Members
	// without a cancellable context keep the batch alive, so watching is
	// only armed when all members carry one.
	bctx, bcancel := context.WithCancel(s.ctx)
	defer bcancel()
	allWatchable := true
	for _, p := range b.members {
		if p.ctx.Done() == nil {
			allWatchable = false
			break
		}
	}
	if allWatchable {
		var expired atomic.Int64
		n := int64(len(b.members))
		for _, p := range b.members {
			go func(done <-chan struct{}) {
				select {
				case <-done:
					if expired.Add(1) == n {
						bcancel()
					}
				case <-bctx.Done():
				}
			}(p.ctx.Done())
		}
	}

	view := sl.chip.WithContext(bctx).WithTrace(span.Ctx())
	var out *tensor.Tensor
	var err error
	switch b.key.kernel {
	case "avgpool":
		out, _, err = view.AvgPoolForward(b.key.variant, in, b.key.params)
	default:
		out, _, err = view.MaxPoolForward(b.key.variant, in, b.key.params)
	}

	switch {
	case err == nil:
		span.SetAttr("outcome", "ok")
		span.End()
		s.breakerSuccess(sl)
		oh, ow := b.key.params.OutDims()
		stride := c1 * oh * ow * tensor.C0 * fp16.Bytes
		off := 0
		for _, p := range b.members {
			n := p.req.Input.Shape[0]
			t := tensor.New(n, c1, oh, ow, tensor.C0)
			copy(t.Data, out.Data[off:off+n*stride])
			off += n * stride
			s.resolve(p, &Response{
				Outcome:   OutcomeCompleted,
				Output:    t,
				Chip:      sl.id,
				BatchSize: len(b.members),
			}, true)
		}
	case bctx.Err() != nil:
		// Every member expired and the batch was cancelled mid-flight;
		// not a chip failure, so the breaker is untouched.
		span.SetAttr("outcome", "cancelled")
		span.End()
		for _, p := range b.members {
			s.resolve(p, &Response{
				Outcome: OutcomeCancelled,
				Err:     fmt.Errorf("%w: %v", ErrCancelled, p.ctx.Err()),
				Chip:    -1,
			}, true)
		}
	default:
		span.SetAttr("outcome", "error")
		span.End()
		s.breakerFailure(sl)
		for _, p := range b.members {
			if p.ctx.Err() != nil {
				s.resolve(p, &Response{
					Outcome: OutcomeCancelled,
					Err:     fmt.Errorf("%w: %v", ErrCancelled, p.ctx.Err()),
					Chip:    -1,
				}, true)
				continue
			}
			if s.cfg.DegradeOnFailure {
				s.resolve(p, &Response{
					Outcome:   OutcomeDegraded,
					Output:    s.refCompute(&p.req),
					Reason:    "exec",
					Chip:      sl.id,
					BatchSize: len(b.members),
				}, true)
				continue
			}
			s.resolve(p, &Response{
				Outcome:   OutcomeRejected,
				Err:       fmt.Errorf("%w: %v", ErrChipFailed, err),
				Reason:    "exec",
				Chip:      sl.id,
				BatchSize: len(b.members),
			}, true)
		}
	}
}
