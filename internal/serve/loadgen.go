package serve

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"davinci/internal/obs"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

// LoadOptions configures one open-loop load run: requests are submitted
// at the offered rate regardless of how the fleet keeps up (the defining
// property of an open-loop generator — overload shows up as shed and
// rejected work, not as a slowed generator).
type LoadOptions struct {
	// Requests is the total number to offer; 0 means 32.
	Requests int
	// Rate is the offered load in requests/second; <= 0 submits
	// everything immediately (closed burst).
	Rate float64
	// Seed drives shape, class and payload selection deterministically.
	Seed int64
	// Layers is the shape mix, drawn uniformly; nil means the three
	// InceptionV3 Fig. 7 layers.
	Layers []workloads.CNNLayer
	// Kernel is "maxpool", "avgpool" or "" (alternating mix).
	Kernel string
	// Variant is the implementation variant; "" means "im2col".
	Variant string
	// Deadline, when > 0, attaches a per-request context deadline.
	Deadline time.Duration
	// Classes are the priority-class weights [batch, standard,
	// interactive]; all-zero means {1, 2, 1}.
	Classes [3]int
}

// LoadReport summarizes a load run. Lost is the conservation residue and
// must be zero: Offered == Completed + Degraded + Rejected + Cancelled.
type LoadReport struct {
	Offered   int64
	Completed int64
	Degraded  int64
	Rejected  int64
	Cancelled int64
	Lost      int64
	// WallNS is the run's wall-clock duration, submit of the first
	// request to resolution of the last.
	WallNS int64
	// GoodputRPS is completed requests per second of wall time.
	GoodputRPS float64
	// P50NS/P99NS are latency quantiles over completed requests (0 when
	// none completed).
	P50NS int64
	P99NS int64
	// MaxBatch is the largest batch any completed request rode in.
	MaxBatch int
}

// RunLoad offers load to a running server and waits for every ticket to
// resolve, so the report's conservation accounting is exact.
func RunLoad(s *Server, opt LoadOptions) *LoadReport {
	if opt.Requests <= 0 {
		opt.Requests = 32
	}
	layers := opt.Layers
	if len(layers) == 0 {
		layers = workloads.InceptionV3Fig7()
	}
	classes := opt.Classes
	if classes == [3]int{} {
		classes = [3]int{1, 2, 1}
	}
	classPool := make([]Class, 0, classes[0]+classes[1]+classes[2])
	for i, w := range classes {
		for j := 0; j < w; j++ {
			classPool = append(classPool, Class(i))
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Inputs are generated once per layer, before the clock starts, and
	// shared across requests (the kernels never mutate their input). An
	// open-loop generator must not be throttled by its own payload
	// generation — multi-megabyte random tensors built inside the submit
	// loop would pace offered load down to the service rate and no burst
	// would ever overload the queue.
	inputs := make([]*tensor.Tensor, len(layers))
	for i, layer := range layers {
		inputs[i] = layer.Input(rng)
	}

	var interval time.Duration
	if opt.Rate > 0 {
		interval = time.Duration(float64(time.Second) / opt.Rate)
	}

	start := time.Now()
	tickets := make([]*Ticket, 0, opt.Requests)
	var cancels []context.CancelFunc
	for i := 0; i < opt.Requests; i++ {
		li := rng.Intn(len(layers))
		kernel := opt.Kernel
		if kernel == "" {
			if i%2 == 0 {
				kernel = "maxpool"
			} else {
				kernel = "avgpool"
			}
		}
		req := Request{
			Kernel:  kernel,
			Variant: opt.Variant,
			Params:  layers[li].Params(),
			Input:   inputs[li],
			Class:   classPool[rng.Intn(len(classPool))],
		}
		ctx := context.Background()
		if opt.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
			cancels = append(cancels, cancel)
		}
		tickets = append(tickets, s.Submit(ctx, req))
		if interval > 0 && i < opt.Requests-1 {
			time.Sleep(interval)
		}
	}

	rep := &LoadReport{Offered: int64(opt.Requests)}
	var lat []int64
	for _, t := range tickets {
		r := t.Wait()
		switch r.Outcome {
		case OutcomeCompleted:
			rep.Completed++
			lat = append(lat, r.Latency.Nanoseconds())
			if r.BatchSize > rep.MaxBatch {
				rep.MaxBatch = r.BatchSize
			}
		case OutcomeDegraded:
			rep.Degraded++
		case OutcomeRejected:
			rep.Rejected++
		case OutcomeCancelled:
			rep.Cancelled++
		default:
			rep.Lost++ // unreachable: tickets always carry an outcome
		}
	}
	for _, cancel := range cancels {
		cancel()
	}
	rep.Lost += rep.Offered - rep.Completed - rep.Degraded - rep.Rejected - rep.Cancelled
	rep.WallNS = time.Since(start).Nanoseconds()
	if rep.WallNS > 0 {
		rep.GoodputRPS = float64(rep.Completed) / (float64(rep.WallNS) / 1e9)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.P50NS = lat[len(lat)/2]
		rep.P99NS = lat[(len(lat)*99)/100]
	}
	return rep
}

// Publish writes the report's summary cells into a registry. The
// deterministic smoke cell publishes the trend-gated goodput/shed/lost
// gauges; open-loop overload cells publish the offered-vs-outcome profile
// and latency quantiles (machine-dependent, ungated) — but always the
// per-cell lost count, which is schedule-independent (zero) and gated
// with zero tolerance.
func (r *LoadReport) Publish(reg *obs.Registry, cell string, gated bool) {
	if reg == nil {
		return
	}
	label := func(name string) *obs.Gauge {
		return reg.Gauge(name, "experiment", "serveload", "input", cell)
	}
	if gated {
		label("serve_goodput").Set(r.Completed)
		label("serve_shed_requests").Set(r.Rejected)
	} else {
		label("serve_offered_requests").Set(r.Offered)
		label("serve_completed_requests").Set(r.Completed)
		label("serve_degraded_requests").Set(r.Degraded)
		label("serve_rejected_requests").Set(r.Rejected)
		label("serve_cancelled_requests").Set(r.Cancelled)
		label("serve_p50_nanos").Set(r.P50NS)
		label("serve_p99_nanos").Set(r.P99NS)
	}
	label("serve_lost_requests").Set(r.Lost)
}
