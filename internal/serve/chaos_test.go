package serve

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/obs"
	"davinci/internal/trace"
)

// chaosServer builds a small fleet under heavy seeded fault injection:
// 30% per-attempt fault rate across every kind (transient ECC-style
// flips, dropped flags, stuck pipes, hangs), with fault schedules that
// outlast the chip-level retry budget so failures escalate to the serving
// layer's breakers and degradation. Watchdog budgets follow the chip
// chaos suite's guidance for -race CI machines.
func chaosServer(reg *obs.Registry, tc trace.Ctx) *Server {
	inj := faults.New(faults.Config{
		Seed:       1234,
		Rate:       0.3,
		MaxPerTile: 3,
	}, nil)
	return New(Config{
		Chips: 2, Cores: 2,
		Resilience: chip.Resilience{
			Enabled:     true,
			Injector:    inj,
			MaxAttempts: 2,
			Watchdog:    300 * time.Millisecond,
		},
		QueueLimit:       8, // small: overload must hit queue_full and eviction
		MaxBatch:         4,
		SLO:              2 * time.Millisecond,
		CyclesPerSecond:  1e8,
		DegradeOnFailure: true,
		BreakerFailLimit: 2,
		BreakerCooldown:  20 * time.Millisecond,
		Metrics:          reg,
		Trace:            tc,
	})
}

// TestServeChaosConservation is the headline robustness gate: offered
// load well beyond capacity (a closed burst of 48 requests against an
// 8-deep queue), 30% fault injection, mixed priority classes and
// deadlines — and still, every request reaches exactly one terminal
// outcome, completed outputs are bit-identical to the golden model, the
// queue never exceeds its bound, goodput stays above zero and no span
// leaks.
func TestServeChaosConservation(t *testing.T) {
	tr := trace.New()
	tr.SetMaxSpans(512) // exercise bounded retention under load too
	reg := obs.NewRegistry()
	s := chaosServer(reg, tr.Root())
	defer s.Close()

	rng := rand.New(rand.NewSource(99))
	type item struct {
		req Request
		tk  *Ticket
	}
	var items []item
	var cancels []context.CancelFunc
	const offered = 48
	for i := 0; i < offered; i++ {
		kernel := "maxpool"
		if i%2 == 1 {
			kernel = "avgpool"
		}
		req := Request{
			Kernel: kernel,
			Params: smallParams(),
			Input:  smallInput(rng, 1),
			Class:  Class(i % 3),
		}
		ctx := context.Background()
		if i%4 == 3 { // a quarter carry tight-ish deadlines
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(20+i)*time.Millisecond)
			cancels = append(cancels, cancel)
		}
		items = append(items, item{req, s.Submit(ctx, req)})
	}

	var completed, degraded, rejected, cancelled int64
	for i, it := range items {
		r := it.tk.Wait()
		if again := it.tk.Wait(); again != r {
			t.Fatalf("request %d: Wait not idempotent", i)
		}
		switch r.Outcome {
		case OutcomeCompleted:
			completed++
			if !bytes.Equal(r.Output.Data, refFor(it.req).Data) {
				t.Fatalf("request %d: completed output not bit-identical to golden model", i)
			}
		case OutcomeDegraded:
			degraded++
			if !bytes.Equal(r.Output.Data, refFor(it.req).Data) {
				t.Fatalf("request %d: degraded output not bit-identical to golden model", i)
			}
		case OutcomeRejected:
			rejected++
			if r.Err == nil || r.Reason == "" {
				t.Fatalf("request %d: rejection without typed error/reason", i)
			}
		case OutcomeCancelled:
			cancelled++
		default:
			t.Fatalf("request %d: no terminal outcome", i)
		}
	}
	for _, cancel := range cancels {
		cancel()
	}
	s.Drain()

	// Exact conservation, cross-checked three ways: per-ticket tallies,
	// the server's accounting, and the published counters.
	if total := completed + degraded + rejected + cancelled; total != offered {
		t.Fatalf("ticket outcomes sum to %d, offered %d", total, offered)
	}
	st := s.Stats()
	if st.Lost() != 0 {
		t.Fatalf("conservation violated: %d lost (%+v)", st.Lost(), st)
	}
	if st.Completed != completed || st.Degraded != degraded ||
		st.Rejected != rejected || st.Cancelled != cancelled {
		t.Fatalf("server accounting %+v disagrees with ticket tallies %d/%d/%d/%d",
			st, completed, degraded, rejected, cancelled)
	}
	snap := reg.Snapshot()
	if v, _ := snap.CounterValue("serve_completed"); v != completed {
		t.Fatalf("serve_completed counter %d != %d", v, completed)
	}
	if v, _ := snap.CounterValue("serve_cancelled"); v != cancelled {
		t.Fatalf("serve_cancelled counter %d != %d", v, cancelled)
	}

	// Bounded queue memory: the intake queue never outgrew its limit.
	if st.QueueHighWater > 8 {
		t.Fatalf("queue high-water %d exceeds limit 8", st.QueueHighWater)
	}
	// Liveness: the fleet made forward progress despite 30% chaos.
	if completed+degraded == 0 {
		t.Fatal("goodput zero: nothing completed or degraded")
	}
	// Span hygiene under chaos: nothing leaked, retention stayed capped.
	if tr.Active() != 0 {
		t.Fatalf("span leak: Active = %d", tr.Active())
	}
	if tr.Len() > 512 {
		t.Fatalf("retention cap breached: %d spans", tr.Len())
	}

	// The fault schedule is seeded and per-(tile, attempt) deterministic:
	// a solo request's outcome is reproducible. Serve a few after the
	// storm to pin goodput > 0 deterministically.
	for i := 0; i < 3; i++ {
		req := Request{Kernel: "maxpool", Params: smallParams(), Input: smallInput(rng, 1), Class: ClassInteractive}
		r := s.Do(context.Background(), req)
		if r.Outcome != OutcomeCompleted && r.Outcome != OutcomeDegraded {
			t.Fatalf("post-storm request %d: %s / %v", i, r.Outcome, r.Err)
		}
		if !bytes.Equal(r.Output.Data, refFor(req).Data) {
			t.Fatalf("post-storm request %d: output differs from golden model", i)
		}
	}
}

// TestServeChaosCancellationStorm drives the fleet with deadlines so
// tight that most requests expire while queued or in flight: the
// conservation invariant must hold when cancellation, not completion, is
// the common case.
func TestServeChaosCancellationStorm(t *testing.T) {
	tr := trace.New()
	reg := obs.NewRegistry()
	s := chaosServer(reg, tr.Root())
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	type item struct {
		req Request
		tk  *Ticket
	}
	var items []item
	var cancels []context.CancelFunc
	const offered = 24
	for i := 0; i < offered; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
		cancels = append(cancels, cancel)
		req := Request{
			Kernel: "maxpool",
			Params: smallParams(),
			Input:  smallInput(rng, 1),
			Class:  Class(i % 3),
		}
		items = append(items, item{req, s.Submit(ctx, req)})
	}
	for i, it := range items {
		r := it.tk.Wait()
		if r.Outcome == OutcomeCompleted || r.Outcome == OutcomeDegraded {
			if !bytes.Equal(r.Output.Data, refFor(it.req).Data) {
				t.Fatalf("request %d: output differs from golden model", i)
			}
		}
	}
	for _, cancel := range cancels {
		cancel()
	}
	s.Drain()
	if st := s.Stats(); st.Lost() != 0 {
		t.Fatalf("conservation violated under cancellation storm: %+v", st)
	}
	if tr.Active() != 0 {
		t.Fatalf("span leak: Active = %d", tr.Active())
	}
}
