package serve

import (
	"context"
	"fmt"
	"time"

	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// Submit admits one request and returns its ticket. The returned ticket
// always resolves: to a completed/degraded response, a typed rejection,
// or a cancellation — admission never blocks on the fleet, only on a
// cold-shape compile (which runs on this goroutine through the shared
// plan cache, so dispatchers always hit).
func (s *Server) Submit(ctx context.Context, req Request) *Ticket {
	if ctx == nil {
		ctx = context.Background()
	}
	now := time.Now()
	p := &pending{
		req:      req,
		ctx:      ctx,
		ticket:   newTicket(),
		queuedAt: now,
	}
	if dl, ok := ctx.Deadline(); ok {
		p.deadline, p.hasDL = dl, true
	}
	s.nSubmitted.Add(1)
	s.metrics.Counter("serve_submitted", "class", req.Class.String()).Add(1)
	p.span = s.tc.StartSpan("serve_request", "impl", req.impl(), "class", req.Class.String())

	admit := p.span.Ctx().StartSpan("serve_admit")
	outcome := func(o string) {
		if admit != nil {
			admit.SetAttr("outcome", o)
			admit.End()
		}
	}

	// Validate before compiling: cheap structural checks first.
	if err := s.validate(&req); err != nil {
		outcome("invalid")
		s.resolve(p, &Response{Outcome: OutcomeRejected, Err: err, Reason: "invalid", Chip: -1}, false)
		return p.ticket
	}

	// Admission fast-path: compile (or hit) the plan through the shared
	// shape-keyed cache. The fleet chips share this cache, so dispatch
	// never compiles; a cold shape pays its compile here, off the
	// dispatcher hot path. Strict spec: compiles go through the
	// certificate registry's admission fast path.
	plan, err := s.compile(admit.Ctx(), &req)
	if err != nil {
		outcome("invalid")
		s.resolve(p, &Response{
			Outcome: OutcomeRejected,
			Err:     fmt.Errorf("%w: %v", ErrInvalid, err),
			Reason:  "invalid",
			Chip:    -1,
		}, false)
		return p.ticket
	}
	p.tiles = req.Input.Shape[0] * req.Input.Shape[1]
	p.cycles = s.predictCycles(plan, p.tiles)

	if ctx.Err() != nil {
		outcome("cancelled")
		s.resolve(p, &Response{Outcome: OutcomeCancelled, Err: fmt.Errorf("%w: %v", ErrCancelled, ctx.Err()), Chip: -1}, false)
		return p.ticket
	}

	// Deadline budget: if even an unqueued run cannot finish before the
	// deadline (static critical-path bound), reject now instead of
	// wasting chip time on a doomed request.
	if p.hasDL && time.Until(p.deadline) <= time.Duration(s.cyclesToNS(p.cycles)) {
		outcome("deadline")
		s.resolve(p, &Response{Outcome: OutcomeRejected, Err: ErrDeadlineBudget, Reason: "deadline", Chip: -1}, false)
		return p.ticket
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		outcome("closed")
		s.resolve(p, &Response{Outcome: OutcomeRejected, Err: ErrClosed, Reason: "closed", Chip: -1}, false)
		return p.ticket
	}

	// Load shedding: when the p99-predicted latency (current backlog
	// spread over the fleet, plus this request) exceeds the SLO, requests
	// are shed lowest class first.
	if shed, factor := s.shedsLocked(p); shed {
		s.mu.Unlock()
		outcome("shed")
		if s.cfg.DegradeOnOverload {
			out := s.refCompute(&req)
			s.resolve(p, &Response{Outcome: OutcomeDegraded, Output: out, Reason: "overload", Chip: -1}, false)
		} else {
			s.resolve(p, &Response{
				Outcome: OutcomeRejected,
				Err:     fmt.Errorf("%w: predicted latency %.1fx SLO", ErrShedding, factor),
				Reason:  "shed",
				Chip:    -1,
			}, false)
		}
		return p.ticket
	}

	// Bounded queue: full means evict a lower-class victim or reject.
	var victim *pending
	if s.queued >= s.cfg.QueueLimit {
		victim = s.evictLocked(req.Class)
		if victim == nil {
			s.mu.Unlock()
			outcome("queue_full")
			s.resolve(p, &Response{Outcome: OutcomeRejected, Err: ErrQueueFull, Reason: "queue_full", Chip: -1}, false)
			return p.ticket
		}
	}

	key := shapeKey{kernel: req.Kernel, variant: req.variant(), params: req.Params, c1: req.Input.Shape[1]}
	g := s.groups[key]
	if g == nil {
		g = &group{key: key, plan: plan}
		s.groups[key] = g
	}
	s.seq++
	p.seq = s.seq
	g.reqs = append(g.reqs, p)
	s.queued++
	if s.queued > s.highWater {
		s.highWater = s.queued
	}
	s.backlog += p.cycles
	s.gDepth.Set(int64(s.queued))
	s.cond.Broadcast()
	s.mu.Unlock()

	s.nAdmitted.Add(1)
	s.metrics.Counter("serve_admitted").Add(1)
	outcome("admitted")

	if victim != nil {
		shedSpan := s.tc.StartSpan("serve_shed",
			"class", victim.req.Class.String(),
			"impl", victim.req.impl())
		shedSpan.Link("batch", p.span.ID())
		shedSpan.End()
		s.resolve(victim, &Response{
			Outcome: OutcomeRejected,
			Err:     fmt.Errorf("%w: evicted by %s-class arrival", ErrShedding, req.Class),
			Reason:  "evicted",
			Chip:    -1,
		}, false)
	}
	return p.ticket
}

// validate runs the structural checks that don't need a compile.
func (s *Server) validate(req *Request) error {
	if req.Kernel != "maxpool" && req.Kernel != "avgpool" {
		return fmt.Errorf("%w: unknown kernel %q", ErrInvalid, req.Kernel)
	}
	if req.Input == nil {
		return fmt.Errorf("%w: nil input", ErrInvalid)
	}
	sh := req.Input.Shape
	if len(sh) != 5 || sh[4] != tensor.C0 {
		return fmt.Errorf("%w: want an NC1HWC0 tensor, got %v", ErrInvalid, sh)
	}
	if sh[2] != req.Params.Ih || sh[3] != req.Params.Iw {
		return fmt.Errorf("%w: input %dx%d does not match params %dx%d",
			ErrInvalid, sh[2], sh[3], req.Params.Ih, req.Params.Iw)
	}
	if err := req.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return nil
}

// compile resolves the request's plan through the shared cache.
func (s *Server) compile(tc trace.Ctx, req *Request) (*ops.Plan, error) {
	switch req.Kernel {
	case "maxpool":
		return s.plans.MaxPoolForward(tc, req.variant(), s.spec, req.Params)
	case "avgpool":
		return s.plans.AvgPoolForward(tc, req.variant(), s.spec, req.Params)
	default:
		return nil, fmt.Errorf("unknown kernel %q", req.Kernel)
	}
}

// refCompute serves a request from the golden model (degraded path).
func (s *Server) refCompute(req *Request) *tensor.Tensor {
	if req.Kernel == "avgpool" {
		return ref.AvgPoolForward(req.Input, req.Params)
	}
	return ref.MaxPoolForward(req.Input, req.Params)
}

// shedsLocked decides whether the shedding controller drops p. Classes
// shed in priority order: one SLO of predicted overload sheds ClassBatch,
// two shed ClassStandard too; ClassInteractive is never shed here.
func (s *Server) shedsLocked(p *pending) (bool, float64) {
	if s.cfg.SLO <= 0 {
		return false, 0
	}
	perChip := s.backlog / int64(len(s.slots))
	predicted := time.Duration(s.cyclesToNS(perChip + p.cycles))
	factor := float64(predicted) / float64(s.cfg.SLO)
	switch p.req.Class {
	case ClassBatch:
		return factor > 1, factor
	case ClassStandard:
		return factor > 2, factor
	default:
		return false, factor
	}
}

// evictLocked removes and returns the youngest queued request of the
// lowest class strictly below incoming, or nil if none exists.
func (s *Server) evictLocked(incoming Class) *pending {
	var victim *pending
	var vg *group
	var vi int
	for _, g := range s.groups {
		for i, q := range g.reqs {
			if q.req.Class >= incoming {
				continue
			}
			if victim == nil ||
				q.req.Class < victim.req.Class ||
				(q.req.Class == victim.req.Class && q.seq > victim.seq) {
				victim, vg, vi = q, g, i
			}
		}
	}
	if victim == nil {
		return nil
	}
	vg.reqs = append(vg.reqs[:vi], vg.reqs[vi+1:]...)
	s.queued--
	s.backlog -= victim.cycles
	s.gDepth.Set(int64(s.queued))
	return victim
}
