// Package serve is the inference serving layer over a fleet of simulated
// chips: an asynchronous request path with continuous batching and
// first-class overload behavior. Every request submitted reaches exactly
// one terminal outcome — completed, degraded, rejected or cancelled —
// never silently lost and never unboundedly queued; that conservation
// invariant is the package's contract and the chaos suite's main
// assertion.
//
// The request path, top to bottom:
//
//  1. Admission (Submit): validate, compile the plan through the fleet's
//     shared ops.PlanCache (the shape-keyed fast path — a warm shape is a
//     cache hit, a cold one pays its compile on the submitter's
//     goroutine, never on a dispatcher's), check the deadline budget
//     against the plan's static critical-path bound, run the
//     load-shedding controller, and enqueue into the bounded intake
//     queue.
//  2. Batching (dispatchers, one per chip): same-shape requests coalesce
//     FIFO into chip-sized batches along the tensor N axis — continuous
//     batching, a batch launches as soon as a chip is free rather than
//     waiting for a full one. The batcher never packs a request into a
//     batch whose predicted completion would bust any member's deadline.
//  3. Execution: the batch runs on the chip under a batch context that is
//     cancelled (through the core.Cancel path) once every member's
//     context has expired. Per-chip circuit breakers take a failing chip
//     out of rotation and probe it half-open after a cooldown; liveness
//     is preserved because an open breaker always re-admits a probe once
//     its cooldown elapses.
//  4. Outcome: completed responses are bit-identical to the golden model
//     (the chips guarantee that); failures degrade to internal/ref when
//     enabled, reported per-request, so availability degrades in latency
//     and never in correctness.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"davinci/internal/buffer"
	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// Class is a request priority class. Higher classes are shed later: under
// overload the controller rejects ClassBatch first, then ClassStandard;
// ClassInteractive is never shed by the controller (it can still see
// ErrQueueFull or ErrDeadlineBudget).
type Class int

const (
	ClassBatch Class = iota
	ClassStandard
	ClassInteractive
)

func (c Class) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassStandard:
		return "standard"
	case ClassInteractive:
		return "interactive"
	default:
		return "unknown"
	}
}

// Outcome is the terminal state of a request. Every submitted request
// reaches exactly one.
type Outcome int

const (
	// OutcomeCompleted: served by a chip; output bit-identical to the
	// golden model.
	OutcomeCompleted Outcome = iota
	// OutcomeDegraded: served by the host-side golden model after a chip
	// failure or under overload; correct output, reduced priority.
	OutcomeDegraded
	// OutcomeRejected: refused with a typed error (admission or
	// execution failure).
	OutcomeRejected
	// OutcomeCancelled: the request's context expired before a result
	// was produced.
	OutcomeCancelled
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeRejected:
		return "rejected"
	case OutcomeCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Request is one pooling inference: a forward kernel over an NC1HWC0
// input.
type Request struct {
	// Kernel selects the operation: "maxpool" or "avgpool" (forward).
	Kernel string
	// Variant selects the implementation ("im2col", "standard", ...);
	// empty means "im2col".
	Variant string
	// Params are the layer parameters (kernel, stride, input dims).
	Params isa.ConvParams
	// Input is the NC1HWC0 input tensor; its H/W must match Params.
	Input *tensor.Tensor
	// Class is the priority class (zero value = ClassBatch, shed first).
	Class Class
}

func (r *Request) variant() string {
	if r.Variant == "" {
		return "im2col"
	}
	return r.Variant
}

func (r *Request) impl() string { return r.Kernel + "_fwd_" + r.variant() }

// Response is a request's terminal outcome.
type Response struct {
	Outcome Outcome
	// Output is the pooled NC1HWC0 tensor (completed and degraded
	// outcomes only).
	Output *tensor.Tensor
	// Err is the typed failure for rejected/cancelled outcomes.
	Err error
	// Reason is the short machine-readable cause for rejections and
	// degradations ("queue_full", "shed", "evicted", "deadline",
	// "invalid", "closed", "exec", "overload").
	Reason string
	// Chip is the fleet slot that served the request (-1 when no chip
	// did).
	Chip int
	// BatchSize is the size of the batch the request rode in (0 when it
	// never reached a chip).
	BatchSize int
	// Wait is the time spent in the intake queue.
	Wait time.Duration
	// Latency is submit-to-outcome wall time.
	Latency time.Duration
}

// Ticket is the handle Submit returns: a future for exactly one Response.
type Ticket struct {
	done chan struct{}
	resp *Response
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

// Done returns a channel closed when the response is ready.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the request reaches its terminal outcome. The
// response is never nil.
func (t *Ticket) Wait() *Response {
	<-t.done
	return t.resp
}

// Config describes the serving fleet.
type Config struct {
	// Chips is the fleet size; 0 means 2.
	Chips int
	// Cores per chip; 0 means chip.DefaultCores.
	Cores int
	// Buffers, Opt and AutoSchedule configure every chip in the fleet
	// (and the shared plan cache's compile spec).
	Buffers      buffer.Config
	Opt          opt.Level
	AutoSchedule bool
	// Resilience is each chip's fault-tolerant executor config (the
	// chaos harness threads its injector through here). The serving
	// layer's breakers and degradation sit above it.
	Resilience chip.Resilience
	// QueueLimit bounds the intake queue; 0 means 64. When full, a new
	// higher-class request evicts the youngest lowest-class queued one;
	// otherwise admission fails with ErrQueueFull.
	QueueLimit int
	// MaxBatch bounds how many same-shape requests coalesce into one
	// chip batch; 0 means 8.
	MaxBatch int
	// SLO is the latency objective feeding the shedding controller; 0
	// disables shedding.
	SLO time.Duration
	// CyclesPerSecond converts the static cycle bounds into wall time
	// for deadline and SLO math; 0 means 1e9 (a 1 GHz device).
	CyclesPerSecond float64
	// DegradeOnOverload serves shed-class requests from the golden model
	// instead of rejecting them (availability over latency).
	DegradeOnOverload bool
	// DegradeOnFailure serves requests whose batch failed on-chip from
	// the golden model instead of rejecting them.
	DegradeOnFailure bool
	// BreakerFailLimit is the consecutive batch failures that open a
	// chip's circuit breaker; 0 means 3.
	BreakerFailLimit int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe batch; 0 means 100ms.
	BreakerCooldown time.Duration
	// Metrics is the registry the fleet's serve_* instruments (and every
	// chip's) register in; nil gives the server a private registry.
	Metrics *obs.Registry
	// Trace is the span context requests nest under; the zero value
	// disables tracing.
	Trace trace.Ctx
}

func (c Config) withDefaults() Config {
	if c.Chips <= 0 {
		c.Chips = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.CyclesPerSecond <= 0 {
		c.CyclesPerSecond = 1e9
	}
	if c.BreakerFailLimit <= 0 {
		c.BreakerFailLimit = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	return c
}

// Server is the serving fleet: a bounded intake queue in front of
// per-chip dispatcher goroutines.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	plans   *ops.PlanCache
	spec    ops.Spec
	tc      trace.Ctx
	ctx     context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	groups    map[shapeKey]*group
	seq       uint64 // FIFO arrival order across groups
	queued    int
	backlog   int64 // predicted chip-cycles of all queued work
	highWater int
	inflight  int // popped but not yet resolved
	closed    bool
	paused    bool // test hook: dispatchers idle while set

	slots []*slot
	wg    sync.WaitGroup

	// Conservation accounting (terminal outcomes are exactly-once, so
	// these always reconcile: submitted == completed + degraded +
	// rejected + cancelled after a drain).
	nSubmitted atomic.Int64
	nAdmitted  atomic.Int64
	nCompleted atomic.Int64
	nDegraded  atomic.Int64
	nRejected  atomic.Int64
	nCancelled atomic.Int64
	nTrips     atomic.Int64
	nProbes    atomic.Int64

	cCompleted *obs.Counter
	cCancelled *obs.Counter
	cBatches   *obs.Counter
	cTrips     *obs.Counter
	cProbes    *obs.Counter
	gDepth     *obs.Gauge
	hBatch     *obs.Histogram
	hWait      *obs.Histogram
	hLatency   *obs.Histogram
}

// shapeKey identifies a batchable shape: identical kernel, variant and
// parameters. Inputs sharing a key concatenate along N into one batch.
type shapeKey struct {
	kernel  string
	variant string
	params  isa.ConvParams
	c1      int // channel-split count; batching needs homogeneous C1
}

// pending is one queued (or in-flight) request.
type pending struct {
	req      Request
	ctx      context.Context
	ticket   *Ticket
	span     *trace.ActiveSpan
	seq      uint64
	queuedAt time.Time
	popped   time.Time
	deadline time.Time
	hasDL    bool
	tiles    int   // N*C1 of the input
	cycles   int64 // predicted chip-cycles for a solo run
}

// group is the FIFO of queued requests for one shape.
type group struct {
	key  shapeKey
	plan *ops.Plan
	reqs []*pending
}

// New builds and starts the fleet. Callers must Close it to stop the
// dispatchers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		metrics: reg,
		plans:   ops.NewPlanCacheOn(reg),
		spec:    ops.Spec{Buffers: cfg.Buffers, Strict: true, Opt: cfg.Opt, AutoSchedule: cfg.AutoSchedule},
		tc:      cfg.Trace,
		ctx:     ctx,
		cancel:  cancel,
		groups:  map[shapeKey]*group{},

		cCompleted: reg.Counter("serve_completed"),
		cCancelled: reg.Counter("serve_cancelled"),
		cBatches:   reg.Counter("serve_batches"),
		cTrips:     reg.Counter("serve_breaker_trips"),
		cProbes:    reg.Counter("serve_breaker_probes"),
		gDepth:     reg.Gauge("serve_queue_depth"),
		hBatch:     reg.Histogram("serve_batch_size", obs.DefaultAttemptBounds()),
		hWait:      reg.Histogram("serve_queue_wait_nanos", obs.DefaultNanoBounds()),
		hLatency:   reg.Histogram("serve_latency_nanos", obs.DefaultNanoBounds()),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Chips; i++ {
		s.slots = append(s.slots, &slot{
			id: i,
			chip: chip.New(chip.Config{
				Cores:        cfg.Cores,
				Buffers:      cfg.Buffers,
				Opt:          cfg.Opt,
				AutoSchedule: cfg.AutoSchedule,
				Strict:       true,
				Plans:        s.plans,
				Metrics:      reg,
				Resilience:   cfg.Resilience,
				Trace:        cfg.Trace,
			}),
		})
	}
	for _, sl := range s.slots {
		s.wg.Add(1)
		go s.dispatch(sl)
	}
	return s
}

// Metrics returns the fleet's registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// cores returns the per-chip core count used for capacity math.
func (s *Server) cores() int {
	if s.cfg.Cores > 0 {
		return s.cfg.Cores
	}
	return chip.DefaultCores
}

// predictCycles is the static bound on chip-cycles to run `tiles` tiles
// of a plan on one chip: tiles fan out across cores, each tile costs the
// plan's critical-path upper bound.
func (s *Server) predictCycles(pl *ops.Plan, tiles int) int64 {
	waves := (tiles + s.cores() - 1) / s.cores()
	return pl.Perf.CritPath * int64(waves)
}

func (s *Server) cyclesToNS(cycles int64) int64 {
	return int64(float64(cycles) / s.cfg.CyclesPerSecond * 1e9)
}

// Do is the synchronous form of Submit.
func (s *Server) Do(ctx context.Context, req Request) *Response {
	return s.Submit(ctx, req).Wait()
}

// Drain blocks until the queue is empty and no popped request awaits its
// outcome.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued > 0 || s.inflight > 0 {
		s.cond.Wait()
	}
}

// Close drains the queue, stops the dispatchers and releases the fleet.
// New submissions are rejected with ErrClosed from the moment Close is
// called. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.cancel()
}

// Stats is a point-in-time view of the conservation accounting.
type Stats struct {
	Submitted, Admitted                      int64
	Completed, Degraded, Rejected, Cancelled int64
	QueueHighWater                           int
	BreakerTrips, BreakerProbes              int64
}

// Lost is the conservation residue: submitted requests without a terminal
// outcome. Zero after a drain — the invariant the chaos suite enforces.
func (st Stats) Lost() int64 {
	return st.Submitted - st.Completed - st.Degraded - st.Rejected - st.Cancelled
}

// Stats snapshots the accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	hw := s.highWater
	s.mu.Unlock()
	return Stats{
		Submitted:      s.nSubmitted.Load(),
		Admitted:       s.nAdmitted.Load(),
		Completed:      s.nCompleted.Load(),
		Degraded:       s.nDegraded.Load(),
		Rejected:       s.nRejected.Load(),
		Cancelled:      s.nCancelled.Load(),
		QueueHighWater: hw,
		BreakerTrips:   s.nTrips.Load(),
		BreakerProbes:  s.nProbes.Load(),
	}
}

// pause/resume are test hooks: a paused server admits and queues requests
// but dispatches nothing, so tests can stage the queue deterministically.
func (s *Server) pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

func (s *Server) resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// resolve delivers p's terminal outcome. Exactly-once: the first caller
// wins, later calls are ignored (there are none by construction — every
// pending is owned by one goroutine at resolution time — but the guard
// keeps the invariant local). fromQueue says p was counted in s.inflight.
func (s *Server) resolve(p *pending, r *Response, fromQueue bool) {
	select {
	case <-p.ticket.done:
		return // already resolved
	default:
	}
	now := time.Now()
	r.Latency = now.Sub(p.queuedAt)
	if !p.popped.IsZero() {
		r.Wait = p.popped.Sub(p.queuedAt)
	} else if r.Outcome == OutcomeCancelled || r.Reason == "evicted" {
		r.Wait = now.Sub(p.queuedAt)
	}
	switch r.Outcome {
	case OutcomeCompleted:
		s.nCompleted.Add(1)
		s.cCompleted.Add(1)
		s.hLatency.Observe(r.Latency.Nanoseconds())
	case OutcomeDegraded:
		s.nDegraded.Add(1)
		s.metrics.Counter("serve_degraded", "reason", r.Reason).Add(1)
		s.hLatency.Observe(r.Latency.Nanoseconds())
	case OutcomeRejected:
		s.nRejected.Add(1)
		s.metrics.Counter("serve_rejected", "reason", r.Reason).Add(1)
	case OutcomeCancelled:
		s.nCancelled.Add(1)
		s.cCancelled.Add(1)
	}
	if p.span != nil {
		p.span.SetAttr("outcome", r.Outcome.String())
		if r.Reason != "" {
			p.span.SetAttr("reason", r.Reason)
		}
		p.span.End()
	}
	p.ticket.resp = r
	close(p.ticket.done)
	if fromQueue {
		s.mu.Lock()
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
