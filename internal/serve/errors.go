package serve

import "errors"

// Typed admission and execution failures. Every rejected request carries
// exactly one of these in Response.Err (possibly wrapped with detail), so
// callers can switch on errors.Is rather than parse strings.
var (
	// ErrQueueFull: the bounded intake queue is at capacity and no
	// lower-priority victim was available to evict.
	ErrQueueFull = errors.New("serve: intake queue full")
	// ErrShedding: the load-shedding controller rejected the request (or
	// evicted it from the queue) because the p99-predicted latency
	// exceeds the SLO and the request's priority class is in the shed
	// set.
	ErrShedding = errors.New("serve: shed under overload")
	// ErrDeadlineBudget: the request's context deadline is too tight for
	// even an unqueued run — the static critical-path bound says the
	// chips cannot finish in time, so it is rejected up front rather
	// than doomed to time out.
	ErrDeadlineBudget = errors.New("serve: deadline budget insufficient")
	// ErrInvalid: the request failed validation (unknown kernel, shape
	// mismatch, uncompilable parameters).
	ErrInvalid = errors.New("serve: invalid request")
	// ErrClosed: the server is shutting down and takes no new work.
	ErrClosed = errors.New("serve: server closed")
	// ErrChipFailed: chip execution failed after the chip-level retry
	// budget and serve-level degradation was disabled.
	ErrChipFailed = errors.New("serve: chip execution failed")
	// ErrCancelled: the request's context was cancelled before a chip
	// produced its result.
	ErrCancelled = errors.New("serve: request cancelled")
)
