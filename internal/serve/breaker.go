package serve

import (
	"time"

	"davinci/internal/chip"
)

// slot is one fleet position: a chip plus its circuit breaker. The
// breaker generalizes chip.Resilience's bad-core exclusion one level up —
// bad-chip exclusion: a chip whose batches keep failing is taken out of
// rotation (open), then probed with a single batch after a cooldown
// (half-open). A probe success closes the breaker; a failure re-arms the
// cooldown. Liveness is guaranteed even with every breaker open: an open
// breaker always re-admits a probe once its cooldown elapses, so the
// fleet can never deadlock itself out of serving.
//
// All breaker state is guarded by the server mutex — transitions happen
// in the dispatcher loop which already holds it.
type slot struct {
	id   int
	chip *chip.Chip

	consecFails int
	open        bool
	reopenAt    time.Time
}

// admits reports whether the slot may dispatch now. An open breaker
// admits (as a half-open probe) only once its cooldown has elapsed.
func (sl *slot) admits(now time.Time) bool {
	return !sl.open || !now.Before(sl.reopenAt)
}

// wake returns how long until an open breaker will admit a probe (0 when
// it already admits).
func (sl *slot) wake(now time.Time) time.Duration {
	if !sl.open || !now.Before(sl.reopenAt) {
		return 0
	}
	return sl.reopenAt.Sub(now)
}

// onSuccess records a served batch: closes the breaker and clears the
// failure streak.
func (s *Server) breakerSuccess(sl *slot) {
	s.mu.Lock()
	sl.consecFails = 0
	sl.open = false
	s.mu.Unlock()
}

// breakerFailure records a failed batch: opens the breaker after the
// configured streak (or immediately re-arms an open one whose probe just
// failed) and schedules a wakeup so a parked dispatcher retries at
// cooldown expiry.
func (s *Server) breakerFailure(sl *slot) {
	s.mu.Lock()
	sl.consecFails++
	tripped := false
	if sl.open || sl.consecFails >= s.cfg.BreakerFailLimit {
		if !sl.open {
			tripped = true
			sl.open = true
		}
		sl.reopenAt = time.Now().Add(s.cfg.BreakerCooldown)
		time.AfterFunc(s.cfg.BreakerCooldown+time.Millisecond, s.cond.Broadcast)
	}
	s.mu.Unlock()
	if tripped {
		s.nTrips.Add(1)
		s.cTrips.Add(1)
	}
}
