// Package ref provides golden reference models for every operator in this
// reproduction: pooling forward/backward, the argmax mask, and convolution.
// They are written as direct transcriptions of the mathematical definitions
// in paper §II, operating on fractal-layout tensors.
//
// Accumulations are performed in Float16 in the same (kh, kw) row-major
// order the simulated kernels use, so correctness tests can require exact
// equality rather than tolerances (max pooling is rounding-free anyway;
// average pooling and backward merges round identically when the order
// matches).
//
// Padding semantics: pooling treats zero padding as data, exactly as the
// Im2Col load deposits zeros for padded positions (§III-C). All kernel
// variants in internal/ops share this convention.
package ref

import (
	"fmt"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
	"davinci/internal/tensor"
)

func checkFractal(in *tensor.Tensor) (n, c1, h, w int) {
	if len(in.Shape) != 5 || in.Shape[4] != tensor.C0 {
		panic(fmt.Sprintf("ref: want NC1HWC0 tensor, got %v", in.Shape))
	}
	return in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
}

// MaxPoolForward computes max pooling over an NC1HWC0 input, returning the
// (N, C1, Oh, Ow, C0) output (paper §II-C, Fig. 3 top).
func MaxPoolForward(in *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	n, c1, _, _ := checkFractal(in)
	oh, ow := p.OutDims()
	out := tensor.New(n, c1, oh, ow, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for ohi := 0; ohi < oh; ohi++ {
				for owi := 0; owi < ow; owi++ {
					patch := ohi*ow + owi
					for c0 := 0; c0 < tensor.C0; c0++ {
						acc := fp16.NegativeInfinity
						for xk := 0; xk < p.Kh; xk++ {
							for yk := 0; yk < p.Kw; yk++ {
								v := sampleZeroPad(in, p, ni, ci, patch, xk, yk, c0)
								acc = fp16.Max(acc, v)
							}
						}
						out.Set(acc, ni, ci, ohi, owi, c0)
					}
				}
			}
		}
	}
	return out
}

// sampleZeroPad reads the input element for (patch, xk, yk) or zero when it
// falls in the padding.
func sampleZeroPad(in *tensor.Tensor, p isa.ConvParams, n, c1, patch, xk, yk, c0 int) fp16.Float16 {
	h, w, pad := scu.SourceCoord(p, patch, xk, yk)
	if pad {
		return fp16.Zero
	}
	return in.At(n, c1, h, w, c0)
}

// AvgPoolForward computes average pooling: a sum reduction in (kh, kw)
// row-major Float16 order followed by a multiply with 1/(Kh*Kw), matching
// the vadd + vmuls lowering of §V-C.
func AvgPoolForward(in *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	n, c1, _, _ := checkFractal(in)
	oh, ow := p.OutDims()
	inv := fp16.FromFloat64(1 / float64(p.Kh*p.Kw))
	out := tensor.New(n, c1, oh, ow, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for ohi := 0; ohi < oh; ohi++ {
				for owi := 0; owi < ow; owi++ {
					patch := ohi*ow + owi
					for c0 := 0; c0 < tensor.C0; c0++ {
						acc := fp16.Zero
						for xk := 0; xk < p.Kh; xk++ {
							for yk := 0; yk < p.Kw; yk++ {
								acc = fp16.Add(acc, sampleZeroPad(in, p, ni, ci, patch, xk, yk, c0))
							}
						}
						out.Set(fp16.Mul(acc, inv), ni, ci, ohi, owi, c0)
					}
				}
			}
		}
	}
	return out
}

// ArgmaxMask computes the mask saved by the forward pass for training
// (§V-A): the im2col view of the input compared for equality with the
// broadcast maximum of each patch. It has the Im2Col output shape
// (N, C1, Kh, Kw, OhOw16, C0); positions equal to the patch maximum hold 1.
// Fractal tail rows compare zero against the maximum, exactly as the
// hardware kernel's vcmp does.
func ArgmaxMask(in *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	out := MaxPoolForward(in, p)
	n, c1, _, _ := checkFractal(in)
	_, ow := p.OutDims()
	padded := p.PaddedPatches()
	patches := p.Patches()
	mask := tensor.New(n, c1, p.Kh, p.Kw, padded, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						for c0 := 0; c0 < tensor.C0; c0++ {
							v := sampleZeroPad(in, p, ni, ci, pt, xk, yk, c0)
							m := out.At(ni, ci, pt/ow, pt%ow, c0)
							if fp16.Equal(v, m) {
								mask.Set(fp16.One, ni, ci, xk, yk, pt, c0)
							}
						}
					}
				}
			}
		}
	}
	return mask
}

// MaxPoolBackward propagates gradients through max pooling (§II-C,
// Fig. 3 bottom): multiply the argmax mask with the broadcast incoming
// gradients, then merge overlapping patches back to the input shape with
// col2im. mask has the Im2Col shape; grad has shape (N, C1, Oh, Ow, C0).
func MaxPoolBackward(mask, grad *tensor.Tensor, p isa.ConvParams, ih, iw int) *tensor.Tensor {
	mg := MaskGradProduct(mask, grad, p)
	return scu.Col2im(mg, p, ih, iw)
}

// MaskGradProduct computes the elementwise product of an Im2Col-shaped
// mask with broadcast gradients (Listing 3).
func MaskGradProduct(mask, grad *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	n, c1 := mask.Shape[0], mask.Shape[1]
	padded := p.PaddedPatches()
	patches := p.Patches()
	_, ow := p.OutDims()
	out := tensor.New(n, c1, p.Kh, p.Kw, padded, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						for c0 := 0; c0 < tensor.C0; c0++ {
							g := grad.At(ni, ci, pt/ow, pt%ow, c0)
							v := fp16.Mul(mask.At(ni, ci, xk, yk, pt, c0), g)
							out.Set(v, ni, ci, xk, yk, pt, c0)
						}
					}
				}
			}
		}
	}
	return out
}

// AvgPoolBackward propagates gradients through average pooling: the
// equivalent mask is all ones scaled by 1/(Kh*Kw) (§V-C), so each
// gradient is scaled and scattered with col2im.
func AvgPoolBackward(grad *tensor.Tensor, p isa.ConvParams, ih, iw int) *tensor.Tensor {
	n, c1 := grad.Shape[0], grad.Shape[1]
	padded := p.PaddedPatches()
	patches := p.Patches()
	_, ow := p.OutDims()
	inv := fp16.FromFloat64(1 / float64(p.Kh*p.Kw))
	cols := tensor.New(n, c1, p.Kh, p.Kw, padded, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						for c0 := 0; c0 < tensor.C0; c0++ {
							g := fp16.Mul(grad.At(ni, ci, pt/ow, pt%ow, c0), inv)
							cols.Set(g, ni, ci, xk, yk, pt, c0)
						}
					}
				}
			}
		}
	}
	return scu.Col2im(cols, p, ih, iw)
}

// Conv2D computes convolution over an NC1HWC0 input with weights given as
// (Co, C, Kh, Kw) (plain NCHW-style kernel stack), returning the output in
// fractal layout (N, Co1, Oh, Ow, C0) with zero padding in the Co tail.
// Accumulation is float32, matching the Cube unit's fp32 accumulator, with
// one final rounding to Float16 (§II-A).
func Conv2D(in, weights *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	n, c1, _, _ := checkFractal(in)
	if len(weights.Shape) != 4 {
		panic(fmt.Sprintf("ref: want (Co,C,Kh,Kw) weights, got %v", weights.Shape))
	}
	co, c := weights.Shape[0], weights.Shape[1]
	if tensor.C1Of(c) > c1 {
		panic(fmt.Sprintf("ref: weight channels %d exceed input C1 %d", c, c1))
	}
	oh, ow := p.OutDims()
	out := tensor.New(n, tensor.C1Of(co), oh, ow, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < co; oc++ {
			for ohi := 0; ohi < oh; ohi++ {
				for owi := 0; owi < ow; owi++ {
					patch := ohi*ow + owi
					var acc float32
					for ic := 0; ic < c; ic++ {
						for xk := 0; xk < p.Kh; xk++ {
							for yk := 0; yk < p.Kw; yk++ {
								v := sampleZeroPad(in, p, ni, ic/tensor.C0, patch, xk, yk, ic%tensor.C0)
								wv := weights.At(oc, ic, xk, yk)
								acc += v.Float32() * wv.Float32()
							}
						}
					}
					out.Set(fp16.FromFloat32(acc), ni, oc/tensor.C0, ohi, owi, oc%tensor.C0)
				}
			}
		}
	}
	return out
}

// Conv2DBackwardData propagates gradients through a convolution to its
// input: dX = col2im(dY x W^T), the original use of the Col2im transform
// ("Col2im is used in the backward propagation pass of convolutional
// layers implemented with Im2col", §II-B). grad has the fractal output
// shape (N, Co1, Oh, Ow, C0); weights are (Co, C, Kh, Kw); the result has
// shape (N, C1, Ih, Iw, C0) for ih x iw inputs with c logical channels.
//
// The per-position products accumulate in float32 (as the Cube unit's
// backward matmul does) with one rounding to Float16 before the col2im
// merge, whose sums are Float16 (Col2Im instruction semantics).
func Conv2DBackwardData(grad, weights *tensor.Tensor, p isa.ConvParams, c int) *tensor.Tensor {
	n := grad.Shape[0]
	co := weights.Shape[0]
	c1 := tensor.C1Of(c)
	_, ow := p.OutDims()
	patches := p.Patches()
	padded := p.PaddedPatches()

	cols := tensor.New(n, c1, p.Kh, p.Kw, padded, tensor.C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						var acc float32
						for oc := 0; oc < co; oc++ {
							g := grad.At(ni, oc/tensor.C0, pt/ow, pt%ow, oc%tensor.C0)
							acc += g.Float32() * weights.At(oc, ci, xk, yk).Float32()
						}
						cols.Set(fp16.FromFloat32(acc), ni, ci/tensor.C0, xk, yk, pt, ci%tensor.C0)
					}
				}
			}
		}
	}
	return scu.Col2im(cols, p, p.Ih, p.Iw)
}

// Conv2DBackwardWeights computes the convolution weight gradient:
// dW[oc, ic, xk, yk] = sum over patches of dY[oc, patch] * x[(ic, xk, yk)
// element of the patch], accumulated in float32 with one final rounding
// (the Cube unit's contraction over the patch dimension).
func Conv2DBackwardWeights(grad, x *tensor.Tensor, p isa.ConvParams, co, c int) *tensor.Tensor {
	_, ow := p.OutDims()
	patches := p.Patches()
	dw := tensor.New(co, c, p.Kh, p.Kw)
	for oc := 0; oc < co; oc++ {
		for ic := 0; ic < c; ic++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					var acc float32
					for pt := 0; pt < patches; pt++ {
						g := grad.At(0, oc/tensor.C0, pt/ow, pt%ow, oc%tensor.C0)
						v := sampleZeroPad(x, p, 0, ic/tensor.C0, pt, xk, yk, ic%tensor.C0)
						acc += g.Float32() * v.Float32()
					}
					dw.Set(fp16.FromFloat32(acc), oc, ic, xk, yk)
				}
			}
		}
	}
	return dw
}
