package ref

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// fig3Params is the Fig. 3 example: two horizontally overlapping 3x3-ish
// patches. We use 1D-style 2-patch setups for hand-checkable numbers.
func fig3Input() (*tensor.Tensor, isa.ConvParams) {
	p := isa.ConvParams{Ih: 3, Iw: 5, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := tensor.New(1, 1, 3, 5, tensor.C0)
	vals := [][]float32{
		{1, 2, 3, 4, 5},
		{6, 7, 8, 9, 10},
		{11, 12, 13, 14, 15},
	}
	for h := 0; h < 3; h++ {
		for w := 0; w < 5; w++ {
			in.Set(fp16.FromFloat32(vals[h][w]), 0, 0, h, w, 0)
		}
	}
	return in, p
}

func TestMaxPoolForwardFig3(t *testing.T) {
	in, p := fig3Input()
	out := MaxPoolForward(in, p)
	if out.Shape[2] != 1 || out.Shape[3] != 2 {
		t.Fatalf("out shape %v", out.Shape)
	}
	// Patch 0 covers cols 0..2 -> max 13; patch 1 covers cols 2..4 -> 15.
	if got := out.At(0, 0, 0, 0, 0).Float32(); got != 13 {
		t.Errorf("patch 0 max = %v, want 13", got)
	}
	if got := out.At(0, 0, 0, 1, 0).Float32(); got != 15 {
		t.Errorf("patch 1 max = %v, want 15", got)
	}
}

func TestAvgPoolForwardFig3(t *testing.T) {
	in, p := fig3Input()
	out := AvgPoolForward(in, p)
	// Patch 0: cols 0..2 of each row: (1+2+3+6+7+8+11+12+13)/9 = 63/9 = 7.
	if got := out.At(0, 0, 0, 0, 0).Float32(); got != 7 {
		t.Errorf("patch 0 avg = %v, want 7", got)
	}
	// Patch 1: (3+4+5+8+9+10+13+14+15)/9 = 81/9 = 9.
	if got := out.At(0, 0, 0, 1, 0).Float32(); got != 9 {
		t.Errorf("patch 1 avg = %v, want 9", got)
	}
}

func TestArgmaxMaskOneHot(t *testing.T) {
	in, p := fig3Input()
	mask := ArgmaxMask(in, p)
	// With strictly increasing values there are no ties: exactly one 1 per
	// patch in channel 0.
	for pt := 0; pt < 2; pt++ {
		ones := 0
		for xk := 0; xk < 3; xk++ {
			for yk := 0; yk < 3; yk++ {
				if mask.At(0, 0, xk, yk, pt, 0) == fp16.One {
					ones++
				}
			}
		}
		if ones != 1 {
			t.Errorf("patch %d has %d mask ones", pt, ones)
		}
	}
	// The maximum of patch 0 (value 13) is at (xk,yk)=(2,2).
	if mask.At(0, 0, 2, 2, 0, 0) != fp16.One {
		t.Error("patch 0 argmax position wrong")
	}
}

func TestMaxPoolBackwardFig3(t *testing.T) {
	in, p := fig3Input()
	mask := ArgmaxMask(in, p)
	grad := tensor.New(1, 1, 1, 2, tensor.C0)
	grad.Set(fp16.FromFloat32(2), 0, 0, 0, 0, 0) // d/d(patch0 max)
	grad.Set(fp16.FromFloat32(5), 0, 0, 0, 1, 0) // d/d(patch1 max)
	back := MaxPoolBackward(mask, grad, p, 3, 5)
	// Patch 0 max was input (2,2)=13 -> grad 2; patch 1 max (2,4)=15 -> 5.
	for h := 0; h < 3; h++ {
		for w := 0; w < 5; w++ {
			want := float32(0)
			if h == 2 && w == 2 {
				want = 2
			}
			if h == 2 && w == 4 {
				want = 5
			}
			if got := back.At(0, 0, h, w, 0).Float32(); got != want {
				t.Errorf("grad(%d,%d) = %v, want %v", h, w, got, want)
			}
		}
	}
}

// Property: maxpool backward conserves gradient mass when there are no
// ties: the sum of input gradients equals the sum of output gradients.
func TestQuickBackwardConservesMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
		in := tensor.New(1, 1, 8, 8, tensor.C0)
		// Distinct values per channel avoid ties.
		perm := rng.Perm(8 * 8 * tensor.C0)
		for i := 0; i < in.Len(); i++ {
			in.SetFlat(i, fp16.FromFloat64(float64(perm[i]%2000)+1))
		}
		// Ties can still occur via %2000 clamp; rebuild without clamp.
		for i := 0; i < in.Len(); i++ {
			in.SetFlat(i, fp16.FromFloat64(float64(i%997)+1)) // deterministic distinct mod pattern
		}
		mask := ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
		}
		back := MaxPoolBackward(mask, grad, p, 8, 8)
		var gs, bs float64
		for i := 0; i < grad.Len(); i++ {
			gs += fp16.ToFloat64(grad.AtFlat(i))
		}
		for i := 0; i < back.Len(); i++ {
			bs += fp16.ToFloat64(back.AtFlat(i))
		}
		return gs == bs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: maxpool backward routes gradient only to positions that attain
// the patch maximum.
func TestBackwardOnlyToMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := isa.ConvParams{Ih: 6, Iw: 6, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	in := tensor.New(1, 1, 6, 6, tensor.C0)
	in.FillRandom(rng, 4)
	mask := ArgmaxMask(in, p)
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	grad.Fill(fp16.One)
	back := MaxPoolBackward(mask, grad, p, 6, 6)
	out := MaxPoolForward(in, p)
	for h := 0; h < 6; h++ {
		for w := 0; w < 6; w++ {
			for c0 := 0; c0 < tensor.C0; c0++ {
				g := back.At(0, 0, h, w, c0)
				isMax := in.At(0, 0, h, w, c0) == out.At(0, 0, h/2, w/2, c0)
				if (g != fp16.Zero) != isMax {
					t.Fatalf("(%d,%d,%d): grad %v but isMax=%v", h, w, c0, g.Float32(), isMax)
				}
			}
		}
	}
}

// Property: avgpool backward conserves gradient mass exactly when values
// are small integers scaled by 1/(Kh*Kw) with Kh*Kw a power of two.
func TestAvgPoolBackwardMass(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(8))))
	}
	back := AvgPoolBackward(grad, p, 8, 8)
	var gs, bs float64
	for i := 0; i < grad.Len(); i++ {
		gs += fp16.ToFloat64(grad.AtFlat(i))
	}
	for i := 0; i < back.Len(); i++ {
		bs += fp16.ToFloat64(back.AtFlat(i))
	}
	if gs != bs {
		t.Errorf("mass: grads %v, back %v", gs, bs)
	}
}

func TestMaxPoolPaddingTreatsZeros(t *testing.T) {
	// All-negative input with SAME padding: padded patches see zero, so
	// border outputs are 0 (the documented zero-padding convention).
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	in := tensor.New(1, 1, 4, 4, tensor.C0)
	in.Fill(fp16.FromFloat32(-5))
	out := MaxPoolForward(in, p)
	if got := out.At(0, 0, 0, 0, 0).Float32(); got != 0 {
		t.Errorf("corner output %v, want 0 (zero padding wins)", got)
	}
	if got := out.At(0, 0, 1, 1, 0).Float32(); got != -5 {
		t.Errorf("interior output %v, want -5", got)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel with weight 1 on channel 0 copies channel 0.
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 1, Kw: 1, Sh: 1, Sw: 1}
	rng := rand.New(rand.NewSource(41))
	in := tensor.New(1, 1, 4, 4, tensor.C0)
	in.FillRandom(rng, 2)
	w := tensor.New(1, 1, 1, 1)
	w.Set(fp16.One, 0, 0, 0, 0)
	out := Conv2D(in, w, p)
	for h := 0; h < 4; h++ {
		for wi := 0; wi < 4; wi++ {
			if out.At(0, 0, h, wi, 0) != in.At(0, 0, h, wi, 0) {
				t.Fatalf("identity conv mismatch at (%d,%d)", h, wi)
			}
		}
	}
}

func TestConv2DSumKernel(t *testing.T) {
	// All-ones 2x2 kernel over an all-ones input sums 4 per output.
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	in := tensor.New(1, 1, 4, 4, tensor.C0)
	in.Fill(fp16.One)
	w := tensor.New(3, 2, 2, 2) // 3 output channels over 2 input channels
	w.Fill(fp16.One)
	out := Conv2D(in, w, p)
	if out.Shape[1] != 1 {
		t.Fatalf("Co1 = %d", out.Shape[1])
	}
	// Each output = sum over 2 channels * 4 positions = 8.
	for oc := 0; oc < 3; oc++ {
		if got := out.At(0, 0, 1, 1, oc).Float32(); got != 8 {
			t.Errorf("oc=%d out %v, want 8", oc, got)
		}
	}
	// Output channel padding beyond Co is zero.
	if got := out.At(0, 0, 0, 0, 5).Float32(); got != 0 {
		t.Errorf("padded out channel = %v", got)
	}
}

// AvgPool is the same as convolution with an all-1/(KhKw) kernel per
// channel (the Suita et al. observation in §VII) — cross-check the two
// reference models on channel 0.
func TestAvgPoolEqualsUniformConv(t *testing.T) {
	p := isa.ConvParams{Ih: 6, Iw: 6, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	rng := rand.New(rand.NewSource(51))
	in := tensor.New(1, 1, 6, 6, tensor.C0)
	for i := 0; i < in.Len(); i++ {
		in.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(16))))
	}
	avg := AvgPoolForward(in, p)
	w := tensor.New(1, 1, 2, 2)
	w.Fill(fp16.FromFloat32(0.25))
	conv := Conv2D(in, w, p)
	oh, ow := p.OutDims()
	for h := 0; h < oh; h++ {
		for wi := 0; wi < ow; wi++ {
			a := avg.At(0, 0, h, wi, 0).Float32()
			c := conv.At(0, 0, h, wi, 0).Float32()
			d := a - c
			if d < 0 {
				d = -d
			}
			if d > 0.5 { // different accumulation orders/precision
				t.Errorf("(%d,%d): avg %v vs conv %v", h, wi, a, c)
			}
		}
	}
}
