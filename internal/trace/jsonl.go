package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteJSONL writes one JSON object per span, one span per line, in the
// order given. With spans from Tracer.Finished() the output is sorted by
// span ID and — under a pinned clock — byte-for-byte deterministic.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL span log written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}
