// Package trace is a span-based hierarchical tracer for the host-side
// compile-and-dispatch pipeline: plan-cache lookups, strict/certified
// compiles, optimizer passes, autoschedule search, and per-tile execution
// on the simulated chip.
//
// The cycle-level simulator is already deeply observable (aicore.Trace,
// the stall scoreboard, Perfetto export); this package covers the other
// half of the request path — everything that happens on the host before
// and around a program running on a core — and stitches the two together.
// Each span therefore carries up to two time domains:
//
//   - host wall-clock, in Unix nanoseconds (always present), and
//   - simulated cycles (optional, set for spans that wrap a core run).
//
// Design constraints, in order:
//
//  1. Determinism. Span IDs come from a per-Tracer atomic counter, so a
//     single-threaded run numbers spans identically every time, and the
//     JSONL export is sorted by ID. Wall-clock timestamps are the only
//     nondeterministic field, and tests can pin them with SetClock.
//  2. Zero cost when disabled. The zero Ctx is a valid, inert tracing
//     context: every method on Ctx and *ActiveSpan is safe on the zero
//     value / nil receiver and does no work. Call sites never branch.
//  3. No dependencies. The package is stdlib-only and sits below
//     internal/obs in the import order, so any layer can emit spans.
//
// Causality beyond parent/child is expressed with typed Links: a retried
// tile links "retry_of" its failed attempt, every tile-execution span
// links "plan" to the plan-lookup span that produced its kernel, and a
// degraded tile links "after" the attempt that exhausted its budget.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. IDs are assigned from 1
// in span-start order; 0 is "no span".
type SpanID uint64

// Attr is a single key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Link is a typed causal edge to another span, beyond the parent/child
// tree: "plan" (tile → plan lookup), "retry_of" (attempt N → attempt
// N-1), "after" (degrade → final failed attempt).
type Link struct {
	Kind   string `json:"kind"`
	Target SpanID `json:"target"`
}

// Span is a finished span. StartNS/EndNS are host wall-clock Unix
// nanoseconds; CycStart/CycEnd are simulated cycles and only meaningful
// when HasCycles is set.
type Span struct {
	ID        SpanID `json:"id"`
	Parent    SpanID `json:"parent,omitempty"`
	Name      string `json:"name"`
	StartNS   int64  `json:"start_ns"`
	EndNS     int64  `json:"end_ns"`
	CycStart  int64  `json:"cyc_start,omitempty"`
	CycEnd    int64  `json:"cyc_end,omitempty"`
	HasCycles bool   `json:"has_cycles,omitempty"`
	Attrs     []Attr `json:"attrs,omitempty"`
	Links     []Link `json:"links,omitempty"`
}

// Attr returns the value of the first attribute with the given key.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// LinkTo reports whether the span has a link of the given kind to target.
func (s *Span) LinkTo(kind string, target SpanID) bool {
	for _, l := range s.Links {
		if l.Kind == kind && l.Target == target {
			return true
		}
	}
	return false
}

// Tracer collects spans. It is safe for concurrent use; span IDs are
// allocated atomically and finished spans are appended under a mutex.
//
// Retention is unbounded by default, which is right for benches and tests
// that export every span. Long-running processes (the serving fleet, the
// live exporter) call SetMaxSpans to cap retention: once full, each new
// finished span evicts the oldest retained one and Dropped counts the
// evictions, so memory stays bounded under sustained load while the most
// recent history stays inspectable.
type Tracer struct {
	nextID  atomic.Uint64
	active  atomic.Int64 // started but not yet ended
	dropped atomic.Int64 // finished spans evicted by the retention cap

	mu    sync.Mutex
	done  []Span // ring buffer when max > 0, plain append otherwise
	head  int    // index of the oldest retained span once the ring is full
	full  bool   // ring has wrapped at least once
	max   int    // retention cap; 0 = unbounded
	clock func() int64
}

// New returns a Tracer using the real wall clock.
func New() *Tracer {
	return &Tracer{clock: func() int64 { return time.Now().UnixNano() }}
}

// SetClock replaces the wall-clock source (tests pin it for fully
// deterministic spans). Must be called before any span starts.
func (t *Tracer) SetClock(now func() int64) { t.clock = now }

// SetMaxSpans caps the number of finished spans the tracer retains; once
// the cap is reached the oldest span is evicted per new finish and
// Dropped grows. n <= 0 restores unbounded retention. Call before spans
// finish — changing the cap mid-run resets retained history.
func (t *Tracer) SetMaxSpans(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	t.max = n
	t.done = nil
	t.head = 0
	t.full = false
}

// Dropped returns the number of finished spans evicted by the retention
// cap (0 when unbounded or not yet full).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Root returns the root tracing context: spans started from it have no
// parent.
func (t *Tracer) Root() Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{t: t}
}

// Active returns the number of spans started but not yet ended — zero
// after a quiesced run if no span leaked.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	return t.active.Load()
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Finished returns a copy of all finished spans sorted by ID (start
// order), the canonical deterministic ordering for export.
func (t *Tracer) Finished() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tail returns the last n finished spans by ID (all of them if n <= 0 or
// n exceeds the count).
func (t *Tracer) Tail(n int) []Span {
	all := t.Finished()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Count returns the number of finished spans with the given name.
func (t *Tracer) Count(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.done {
		if t.done[i].Name == name {
			n++
		}
	}
	return n
}

// Ctx is a tracing context: a handle on a Tracer plus the span new child
// spans attach under. The zero Ctx is valid and inert — every method is
// a no-op — so code paths thread a Ctx unconditionally and pay nothing
// when tracing is off.
type Ctx struct {
	t    *Tracer
	span *ActiveSpan // parent; nil at the root
}

// Enabled reports whether spans started from this context are recorded.
func (c Ctx) Enabled() bool { return c.t != nil }

// ID returns the parent span's ID (0 at the root or when disabled).
func (c Ctx) ID() SpanID {
	if c.span == nil {
		return 0
	}
	return c.span.ID()
}

// SetAttr annotates the context's span — the *parent* from the callee's
// point of view. A callee uses this to report an outcome on the span its
// caller opened (e.g. the plan cache marking the caller's lookup span
// hit or miss).
func (c Ctx) SetAttr(key, value string) { c.span.SetAttr(key, value) }

// StartSpan starts a child span. kv is an even-length list of attribute
// key/value pairs. Returns nil when the context is disabled; all
// *ActiveSpan methods are nil-safe.
func (c Ctx) StartSpan(name string, kv ...string) *ActiveSpan {
	if c.t == nil {
		return nil
	}
	s := &ActiveSpan{t: c.t}
	s.span.ID = SpanID(c.t.nextID.Add(1))
	s.span.Parent = c.ID()
	s.span.Name = name
	s.span.StartNS = c.t.clock()
	for i := 0; i+1 < len(kv); i += 2 {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	c.t.active.Add(1)
	return s
}

// ActiveSpan is a started, not-yet-finished span. Methods are safe on a
// nil receiver (tracing disabled) and safe for concurrent use.
type ActiveSpan struct {
	t     *Tracer
	mu    sync.Mutex
	span  Span
	ended bool
}

// Ctx returns a context that parents new spans under this one.
func (s *ActiveSpan) Ctx() Ctx {
	if s == nil {
		return Ctx{}
	}
	return Ctx{t: s.t, span: s}
}

// ID returns the span's ID (0 on nil).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID // immutable after StartSpan
}

// SetAttr adds or replaces an attribute.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.span.Attrs {
		if s.span.Attrs[i].Key == key {
			s.span.Attrs[i].Value = value
			return
		}
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// Link adds a typed causal edge to another span. Links to span 0 are
// dropped (no such span).
func (s *ActiveSpan) Link(kind string, target SpanID) {
	if s == nil || target == 0 {
		return
	}
	s.mu.Lock()
	s.span.Links = append(s.span.Links, Link{Kind: kind, Target: target})
	s.mu.Unlock()
}

// SetCycles records the span's position on the simulated-cycle timeline.
func (s *ActiveSpan) SetCycles(start, end int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.CycStart, s.span.CycEnd, s.span.HasCycles = start, end, true
	s.mu.Unlock()
}

// SetWall overrides the span's wall-clock window, for spans reconstructed
// retrospectively from timestamps recorded by a lower layer (e.g. the
// optimizer records per-pass windows; the plan cache replays them as
// spans after the compile returns).
func (s *ActiveSpan) SetWall(startNS, endNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.StartNS, s.span.EndNS = startNS, endNS
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer. Ending twice is a
// no-op. If SetWall already fixed the end time, it is kept.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if s.span.EndNS == 0 {
		s.span.EndNS = s.t.clock()
	}
	sp := s.span
	s.mu.Unlock()
	s.t.active.Add(-1)
	t := s.t
	t.mu.Lock()
	switch {
	case t.max == 0:
		t.done = append(t.done, sp)
	case len(t.done) < t.max && !t.full:
		t.done = append(t.done, sp)
		if len(t.done) == t.max {
			t.full = true
		}
	default:
		t.done[t.head] = sp
		t.head = (t.head + 1) % len(t.done)
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}
