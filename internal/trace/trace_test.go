package trace

import (
	"bytes"
	"sync"
	"testing"
)

// pinned returns a tracer with a deterministic clock ticking 10ns per call.
func pinned() *Tracer {
	t := New()
	var n int64
	t.SetClock(func() int64 { n += 10; return n })
	return t
}

func TestZeroCtxIsInert(t *testing.T) {
	var c Ctx
	if c.Enabled() {
		t.Fatal("zero Ctx reports enabled")
	}
	s := c.StartSpan("plan_compile", "kernel", "x")
	if s != nil {
		t.Fatal("disabled StartSpan must return nil")
	}
	// Every method must be a no-op on nil.
	s.SetAttr("k", "v")
	s.Link("plan", 7)
	s.SetCycles(1, 2)
	s.SetWall(1, 2)
	s.End()
	s.End()
	if got := s.Ctx(); got.Enabled() {
		t.Fatal("nil span Ctx must be disabled")
	}
	if id := s.ID(); id != 0 {
		t.Fatalf("nil span ID = %d, want 0", id)
	}
	c.SetAttr("k", "v")
	var tr *Tracer
	if tr.Root().Enabled() || tr.Active() != 0 || tr.Len() != 0 {
		t.Fatal("nil Tracer must be inert")
	}
}

func TestHierarchyAndDeterministicIDs(t *testing.T) {
	tr := pinned()
	root := tr.Root()
	a := root.StartSpan("chip_run", "impl", "maxpool_fwd/im2col")
	b := a.Ctx().StartSpan("plan_lookup")
	b.Ctx().SetAttr("outcome", "miss") // callee annotates parent via Ctx
	c := b.Ctx().StartSpan("plan_compile")
	c.SetCycles(0, 100)
	c.End()
	b.End()
	d := a.Ctx().StartSpan("tile_exec", "core", "0")
	d.Link("plan", b.ID())
	d.End()
	a.End()

	if n := tr.Active(); n != 0 {
		t.Fatalf("active = %d after all ended", n)
	}
	spans := tr.Finished()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// IDs assigned in start order 1..4; Finished sorted by ID.
	wantNames := []string{"chip_run", "plan_lookup", "plan_compile", "tile_exec"}
	for i, s := range spans {
		if s.ID != SpanID(i+1) || s.Name != wantNames[i] {
			t.Fatalf("span %d = {id %d, %q}, want {id %d, %q}", i, s.ID, s.Name, i+1, wantNames[i])
		}
		if s.EndNS <= s.StartNS {
			t.Fatalf("span %q has non-positive duration [%d,%d]", s.Name, s.StartNS, s.EndNS)
		}
	}
	if spans[1].Parent != spans[0].ID || spans[2].Parent != spans[1].ID {
		t.Fatal("parent links wrong")
	}
	if v, ok := spans[1].Attr("outcome"); !ok || v != "miss" {
		t.Fatalf("parent attr via Ctx.SetAttr = %q, %v", v, ok)
	}
	if !spans[2].HasCycles || spans[2].CycEnd != 100 {
		t.Fatal("cycle domain not recorded")
	}
	if !spans[3].LinkTo("plan", spans[1].ID) {
		t.Fatal("tile span missing plan link")
	}
}

func TestSetWallOverridesClock(t *testing.T) {
	tr := pinned()
	s := tr.Root().StartSpan("opt_pass", "pass", "dead-sync")
	s.SetWall(1000, 2000)
	s.End()
	got := tr.Finished()[0]
	if got.StartNS != 1000 || got.EndNS != 2000 {
		t.Fatalf("wall window = [%d,%d], want [1000,2000]", got.StartNS, got.EndNS)
	}
}

func TestAttrReplacement(t *testing.T) {
	tr := pinned()
	s := tr.Root().StartSpan("tile_exec", "outcome", "pending")
	s.SetAttr("outcome", "ok")
	s.End()
	if v, _ := tr.Finished()[0].Attr("outcome"); v != "ok" {
		t.Fatalf("attr = %q, want ok (replaced, not appended)", v)
	}
	if n := len(tr.Finished()[0].Attrs); n != 1 {
		t.Fatalf("attrs len = %d, want 1", n)
	}
}

func TestTailAndCount(t *testing.T) {
	tr := pinned()
	for i := 0; i < 5; i++ {
		tr.Root().StartSpan("tile_exec").End()
	}
	tr.Root().StartSpan("chip_run").End()
	if got := tr.Count("tile_exec"); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	tail := tr.Tail(2)
	if len(tail) != 2 || tail[1].Name != "chip_run" {
		t.Fatalf("Tail(2) = %+v", tail)
	}
	if len(tr.Tail(0)) != 6 || len(tr.Tail(100)) != 6 {
		t.Fatal("Tail bounds wrong")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := pinned()
	a := tr.Root().StartSpan("chip_run")
	b := a.Ctx().StartSpan("tile_exec", "core", "1")
	b.Link("plan", 1)
	b.SetCycles(5, 9)
	b.End()
	a.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Finished()); err != nil {
		t.Fatal(err)
	}
	// Deterministic under the pinned clock: writing twice must be identical.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, tr.Finished()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSONL export not deterministic")
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Name != "tile_exec" || !back[1].LinkTo("plan", 1) ||
		!back[1].HasCycles || back[1].CycStart != 5 || back[1].CycEnd != 9 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New() // real clock: concurrency is the point, not byte determinism
	root := tr.Root()
	const g, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s := root.StartSpan("tile_exec")
				s.SetAttr("outcome", "ok")
				s.Link("plan", 1)
				s.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.Len(); n != g*per {
		t.Fatalf("finished = %d, want %d", n, g*per)
	}
	if a := tr.Active(); a != 0 {
		t.Fatalf("active = %d, want 0", a)
	}
	// IDs must be unique and dense 1..g*per.
	seen := make(map[SpanID]bool)
	for _, s := range tr.Finished() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	for i := 1; i <= g*per; i++ {
		if !seen[SpanID(i)] {
			t.Fatalf("missing span ID %d", i)
		}
	}
}

func TestBoundedRetentionEvictsOldest(t *testing.T) {
	tr := New()
	tr.SetClock(func() int64 { return 7 })
	tr.SetMaxSpans(4)
	root := tr.Root()
	for i := 0; i < 10; i++ {
		root.StartSpan("tile_exec").End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("retained %d spans, cap is 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	fin := tr.Finished()
	if len(fin) != 4 {
		t.Fatalf("Finished returned %d spans, want 4", len(fin))
	}
	// The newest four spans (IDs 7..10) survive, sorted by ID.
	for i, s := range fin {
		if want := SpanID(7 + i); s.ID != want {
			t.Fatalf("retained span %d has ID %d, want %d", i, s.ID, want)
		}
	}
	if tr.Active() != 0 {
		t.Fatalf("Active = %d after all ended", tr.Active())
	}
}

func TestUnboundedRetentionNeverDrops(t *testing.T) {
	tr := New()
	tr.SetClock(func() int64 { return 1 })
	root := tr.Root()
	for i := 0; i < 100; i++ {
		root.StartSpan("tile_exec").End()
	}
	if tr.Len() != 100 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 100/0", tr.Len(), tr.Dropped())
	}
}

func TestBoundedRetentionConcurrent(t *testing.T) {
	tr := New()
	tr.SetMaxSpans(8)
	root := tr.Root()
	var wg sync.WaitGroup
	const n = 200
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				root.StartSpan("tile_exec").End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8 {
		t.Fatalf("retained %d, want 8", tr.Len())
	}
	if got := tr.Dropped(); got != 4*n-8 {
		t.Fatalf("dropped %d, want %d", got, 4*n-8)
	}
	if tr.Active() != 0 {
		t.Fatalf("Active = %d", tr.Active())
	}
}
