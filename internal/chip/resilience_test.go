package chip

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/faults"
	"davinci/internal/isa"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

// chaosLayer is a small Table I layer (InceptionV3 pool 3: 35x35x288,
// kernel 3, stride 2) — 18 C1 tiles, enough to exercise requeueing
// across cores without making hang-heavy tests slow.
func chaosLayer() (isa.ConvParams, int) {
	for _, l := range workloads.TableI {
		if l.Network == "InceptionV3" && l.Index == 3 {
			return l.Params(), l.C1()
		}
	}
	panic("InceptionV3 pool 3 missing from Table I")
}

func chaosInput(t *testing.T, p isa.ConvParams, n, c1 int) *tensor.Tensor {
	t.Helper()
	in := tensor.New(n, c1, p.Ih, p.Iw, tensor.C0)
	in.FillRandom(rand.New(rand.NewSource(7)), 4)
	return in
}

// TestChaosBitIdentity is the headline chaos test: a Table I layer with
// fault injection enabled at a fixed seed, every kind armed, retries
// guaranteed to succeed (MaxPerTile < MaxAttempts) and degradation off.
// The output must be bit-identical to the fault-free run.
func TestChaosBitIdentity(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 2, c1)

	clean := New(Config{Cores: 4})
	want, _, err := clean.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}

	inj := faults.New(faults.Config{Seed: 1, Rate: 0.5, MaxPerTile: 1}, nil)
	chaos := New(Config{Cores: 4, Resilience: Resilience{
		Enabled:     true,
		Injector:    inj,
		MaxAttempts: 3,
		// Generous budget: a clean attempt crossing the watchdog line
		// under -race would be falsely reclaimed as a hang.
		Watchdog:      500 * time.Millisecond,
		CoreFailLimit: 1 << 30, // never mark cores bad: retries must succeed
	}})
	got, st, err := chaos.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("chaos output differs from fault-free output")
	}
	if len(st.Degraded) != 0 {
		t.Fatalf("degradation off, yet %d tiles degraded", len(st.Degraded))
	}
	var injected int64
	for _, k := range faults.AllKinds() {
		injected += inj.Injected(k)
	}
	if injected == 0 {
		t.Fatal("chaos run at rate 0.5 injected nothing")
	}
	// The injector's counters and the executor's live in the same chip
	// snapshot (acceptance: counters appear in the obs.Registry snapshot).
	retries, ok := st.Metrics.CounterValue("chip_tile_retries")
	if !ok || retries == 0 {
		t.Fatalf("chip_tile_retries = %d, %v; want nonzero", retries, ok)
	}
	for _, name := range []string{"chip_tile_requeues", "chip_tiles_degraded", "chip_watchdog_trips", "chip_retry_backoff_cycles"} {
		if _, ok := st.Metrics.CounterValue(name); !ok {
			t.Errorf("%s missing from snapshot", name)
		}
	}
	if v, ok := st.Metrics.CounterValue("faults_injected", "kind", "transient"); !ok {
		t.Errorf("faults_injected{kind=transient} missing from snapshot (value %d)", v)
	}
}

// TestChaosDeterminism: two chips with identical chaos configs inject the
// same faults and produce identical outputs and fault counts.
func TestChaosDeterminism(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	run := func() (*tensor.Tensor, *faults.Injector) {
		inj := faults.New(faults.Config{Seed: 11, Rate: 0.4, MaxPerTile: 1}, nil)
		chaos := New(Config{Cores: 3, Resilience: Resilience{
			Enabled: true, Injector: inj, Watchdog: 500 * time.Millisecond,
			CoreFailLimit: 1 << 30,
		}})
		out, _, err := chaos.MaxPoolForward("im2col", in, p)
		if err != nil {
			t.Fatal(err)
		}
		return out, inj
	}
	outA, injA := run()
	outB, injB := run()
	if !bytes.Equal(outA.Data, outB.Data) {
		t.Fatal("same seed, different outputs")
	}
	for _, k := range faults.AllKinds() {
		if a, b := injA.Injected(k), injB.Injected(k); a != b {
			t.Fatalf("kind %v: %d vs %d faults across identical runs", k, a, b)
		}
	}
}

// TestWatchdogDroppedFlag: a program whose set_flag was dropped must trip
// the watchdog — not hang the test — and the resulting error must name
// the category, the blocked pipe and the unsatisfied wait_flag.
func TestWatchdogDroppedFlag(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	inj := faults.New(faults.Config{
		Seed: 5, Rate: 1, Kinds: []faults.Kind{faults.KindDroppedFlag}, MaxPerTile: 1 << 30,
	}, nil)
	chaos := New(Config{Cores: 2, Resilience: Resilience{
		Enabled: true, Injector: inj,
		MaxAttempts: 1, // no retries: the hang must surface as the run error
		Watchdog:    50 * time.Millisecond,
	}})
	_, _, err := chaos.MaxPoolForward("im2col", in, p)
	if err == nil {
		t.Fatal("dropped set_flag run succeeded")
	}
	if !errors.Is(err, ErrTileHang) {
		t.Fatalf("err %v does not match ErrTileHang", err)
	}
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("err %v carries no *TileError", err)
	}
	if !te.HasFlag {
		t.Fatalf("hang error %v does not identify the unsatisfied wait_flag", te)
	}
	if len(te.TraceTail) == 0 {
		t.Error("hang error carries no stall-trace tail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "wait_flag") || !strings.Contains(msg, "blocked") {
		t.Errorf("error text %q does not name the blocked pipe and flag", msg)
	}
	if v, _ := chaos.Metrics().Snapshot().CounterValue("chip_watchdog_trips"); v == 0 {
		t.Error("watchdog tripped but chip_watchdog_trips is zero")
	}
}

// TestRetryRequeueSuccess: every tile's first attempt wedges a pipe; the
// watchdog reclaims each core and the retry — on a fresh core, requeued
// away from the one that failed — succeeds. Exact counter arithmetic is
// deterministic because fault decisions are schedule-independent.
func TestRetryRequeueSuccess(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	tiles := int64(c1)
	inj := faults.New(faults.Config{
		Seed: 9, Rate: 1, Kinds: []faults.Kind{faults.KindStuckPipe}, MaxPerTile: 1,
	}, nil)
	// The watchdog must be long enough that a CLEAN retry attempt never
	// trips it (the counter arithmetic below assumes exactly one trip per
	// tile), yet short enough that 18 real hangs stay fast. 400ms under
	// -race leaves an order of magnitude of slack on both sides.
	chaos := New(Config{Cores: 4, Resilience: Resilience{
		Enabled: true, Injector: inj,
		MaxAttempts: 3, Watchdog: 400 * time.Millisecond,
		CoreFailLimit: 1 << 30,
	}})
	want, _, err := New(Config{Cores: 4}).MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := chaos.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("retried output differs from fault-free output")
	}
	if n := inj.Injected(faults.KindStuckPipe); n != tiles {
		t.Errorf("stuck-pipe faults = %d, want %d (one per tile)", n, tiles)
	}
	for name, want := range map[string]int64{
		"chip_tile_retries":   tiles,
		"chip_tile_requeues":  tiles,
		"chip_watchdog_trips": tiles,
		"chip_tiles_degraded": 0,
	} {
		if v, ok := st.Metrics.CounterValue(name); !ok || v != want {
			t.Errorf("%s = %d (present %v), want %d", name, v, ok, want)
		}
	}
	if v, _ := st.Metrics.CounterValue("chip_retry_backoff_cycles"); v != tiles*1024 {
		t.Errorf("chip_retry_backoff_cycles = %d, want %d", v, tiles*1024)
	}
}

// TestDegradationReport: every attempt of every tile faults, so each tile
// exhausts its retries and falls back to the golden model. The run still
// succeeds, the output matches the fault-free run (the golden model is
// bit-exact against the kernels), and the degraded tiles are reported.
func TestDegradationReport(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	inj := faults.New(faults.Config{
		Seed: 3, Rate: 1, Kinds: []faults.Kind{faults.KindTransient}, MaxPerTile: 1 << 30,
	}, nil)
	chaos := New(Config{Cores: 4, Resilience: Resilience{
		Enabled: true, Injector: inj, Degrade: true,
		MaxAttempts: 2, Watchdog: time.Second, CoreFailLimit: 1 << 30,
	}})
	want, _, err := New(Config{Cores: 4}).MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := chaos.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatalf("degradation enabled, yet the run failed: %v", err)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("degraded output differs from fault-free output")
	}
	if len(st.Degraded) != c1 {
		t.Fatalf("Degraded reports %d tiles, want %d", len(st.Degraded), c1)
	}
	for i, d := range st.Degraded {
		if d.C1 != i {
			t.Fatalf("Degraded[%d] = tile (%d,%d); want sorted by (N,C1)", i, d.N, d.C1)
		}
		if d.Attempts != 2 {
			t.Errorf("tile (%d,%d): %d attempts recorded, want 2", d.N, d.C1, d.Attempts)
		}
		if d.LastErr == "" {
			t.Errorf("tile (%d,%d): empty LastErr", d.N, d.C1)
		}
	}
	if v, _ := st.Metrics.CounterValue("chip_tiles_degraded"); v != int64(c1) {
		t.Errorf("chip_tiles_degraded = %d, want %d", v, c1)
	}
}

// TestPanicRecovery drives runTiles directly with a closure that panics
// on the first attempt of one tile: the panic must become a typed,
// retryable error (satellite: recover worker panics), and the retry must
// complete the run.
func TestPanicRecovery(t *testing.T) {
	c := New(Config{Cores: 2, Resilience: Resilience{
		Enabled: true, Watchdog: time.Second, CoreFailLimit: 1 << 30,
	}})
	var panicked atomic.Bool
	results, st, err := c.runTiles(nil, 2, 2, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		if ni == 0 && ci == 1 && panicked.CompareAndSwap(false, true) {
			panic("tile worker exploded")
		}
		return []*tensor.Tensor{tensor.New(1)}, &aicore.Stats{Cycles: 1}, nil
	}, nil)
	if err != nil {
		t.Fatalf("panic was not recovered into a retry: %v", err)
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	if total != 4 {
		t.Fatalf("%d tiles completed, want 4", total)
	}
	if v, _ := st.Metrics.CounterValue("chip_tile_panics"); v != 1 {
		t.Errorf("chip_tile_panics = %d, want 1", v)
	}
}

// TestPanicExhaustion: a tile that panics on every attempt fails the run
// with a typed ErrTilePanic carrying the core index, tile and stack.
func TestPanicExhaustion(t *testing.T) {
	c := New(Config{Cores: 2, Resilience: Resilience{
		Enabled: true, MaxAttempts: 2, Watchdog: time.Second, CoreFailLimit: 1 << 30,
	}})
	_, _, err := c.runTiles(nil, 1, 2, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		if ci == 0 {
			panic("always broken")
		}
		return []*tensor.Tensor{tensor.New(1)}, &aicore.Stats{}, nil
	}, nil)
	if !errors.Is(err, ErrTilePanic) {
		t.Fatalf("err %v does not match ErrTilePanic", err)
	}
	var te *TileError
	if !errors.As(err, &te) {
		t.Fatalf("err %v carries no *TileError", err)
	}
	if te.N != 0 || te.C1 != 0 {
		t.Errorf("panic attributed to tile (%d,%d), want (0,0)", te.N, te.C1)
	}
	if len(te.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}

// TestContextCancelLegacy: with Config.Context cancelled, the default
// (non-resilient) path aborts in-flight cores instead of completing.
func TestContextCancelLegacy(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Config{Cores: 2, Context: ctx})
	_, _, err := c.MaxPoolForward("im2col", in, p)
	if err == nil {
		t.Fatal("cancelled context, yet the run completed")
	}
	if !errors.Is(err, aicore.ErrInterrupted) {
		t.Fatalf("err %v does not wrap aicore.ErrInterrupted", err)
	}
}

// TestContextCancelResilient: the resilient executor honors the caller's
// context too, reporting the abortion once rather than per tile.
func TestContextCancelResilient(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Config{Cores: 2, Context: ctx, Resilience: Resilience{Enabled: true, Watchdog: time.Second}})
	_, _, err := c.MaxPoolForward("im2col", in, p)
	if err == nil {
		t.Fatal("cancelled context, yet the run completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", err)
	}
}

// TestFailFastCancelsInFlight: with a context armed, a deterministic tile
// failure cancels the other cores' remaining work (satellite: early abort
// through runTiles).
func TestFailFastCancelsInFlight(t *testing.T) {
	c := New(Config{Cores: 2, Context: context.Background()})
	boom := errors.New("deterministic tile bug")
	var ran atomic.Int32
	_, _, err := c.runTiles(nil, 2, 2, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		ran.Add(1)
		if ni == 0 && ci == 0 {
			return nil, nil, boom
		}
		// Park until cancelled so the test observes the abort, not a race.
		if core.Cancel != nil {
			<-core.Cancel
		}
		return nil, nil, aicore.ErrInterrupted
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err %v does not surface the primary failure", err)
	}
	if errors.Is(err, aicore.ErrInterrupted) {
		t.Errorf("joined error %v leaks secondary interruption casualties", err)
	}
}

// TestValidateAtEntryPoints: malformed ConvParams are rejected before any
// plan compilation or core execution.
func TestValidateAtEntryPoints(t *testing.T) {
	c := New(Config{Cores: 1})
	in := tensor.New(1, 1, 8, 8, tensor.C0)
	bad := isa.ConvParams{Ih: 8, Iw: 8, Kh: 0, Kw: 3, Sh: 1, Sw: 1}
	if _, _, err := c.MaxPoolForward("im2col", in, bad); err == nil {
		t.Error("MaxPoolForward accepted Kh=0")
	}
	if _, _, err := c.AvgPoolForward("im2col", in, bad); err == nil {
		t.Error("AvgPoolForward accepted Kh=0")
	}
	if _, _, _, err := c.MaxPoolForwardArgmax("im2col", in, bad); err == nil {
		t.Error("MaxPoolForwardArgmax accepted Kh=0")
	}
	if _, _, err := c.AvgPoolBackward(in, bad, true); err == nil {
		t.Error("AvgPoolBackward accepted Kh=0")
	}
	w := tensor.New(16, 16, 3, 3)
	if _, _, err := c.Conv2D(in, w, bad); err == nil {
		t.Error("Conv2D accepted Kh=0")
	}
	if _, _, err := c.Conv2DBackwardData(in, w, bad, 16); err == nil {
		t.Error("Conv2DBackwardData accepted Kh=0")
	}
	if _, _, err := c.Conv2DBackwardWeights(in, in, bad, 16, 16); err == nil {
		t.Error("Conv2DBackwardWeights accepted Kh=0")
	}
	mask := tensor.New(1, 1, 3, 3, 16, tensor.C0)
	if _, _, err := c.MaxPoolBackward("col2im", mask, in, bad); err == nil {
		t.Error("MaxPoolBackward accepted Kh=0")
	}
}
