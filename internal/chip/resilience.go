package chip

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/faults"
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// Resilience configures the fault-tolerant tile executor. With Enabled
// set, runTiles routes through a scheduler that keeps the default static
// round-robin placement for first attempts but adds, per tile attempt:
//
//   - a watchdog that interrupts an attempt making no progress after
//     Watchdog of host wall time and converts the hang into a typed
//     *TileError (ErrTileHang) naming the blocked pipe, the unsatisfied
//     wait_flag when known, and the tail of the stall-attributed trace;
//   - bounded retry on a FRESH core — a faulted core's scratch-pads may
//     hold corrupted data, so retries never reuse the failing core's
//     state — requeued onto a different healthy core when one exists;
//   - per-core failure budgets: a core exceeding CoreFailLimit failed
//     attempts is marked bad and excluded from the retry pool;
//   - optional graceful degradation: a tile that exhausts MaxAttempts
//     falls back to the host-side golden model (internal/ref) and is
//     reported in Stats.Degraded instead of failing the run;
//   - panic containment: a panicking tile worker is recovered into an
//     ErrTilePanic carrying the core index, tile identity and stack.
//
// Retry backoff is simulated bookkeeping only: each retry adds
// BackoffCycles << (attempt-1) to the chip_retry_backoff_cycles counter
// without sleeping the host or perturbing the deterministic cycle
// accounting of successful attempts.
type Resilience struct {
	// Enabled routes runTiles through the resilient executor.
	Enabled bool
	// Injector, when non-nil, perturbs tile attempts with deterministic
	// seeded faults (internal/faults) — the chaos harness.
	Injector *faults.Injector
	// MaxAttempts bounds hardware attempts per tile (first try included);
	// 0 means 3.
	MaxAttempts int
	// Watchdog is the per-attempt host wall-clock budget before a hung
	// core is reclaimed; 0 means 1s.
	Watchdog time.Duration
	// CoreFailLimit is how many failed attempts mark a core bad; 0 means 3.
	CoreFailLimit int
	// Degrade enables the golden-model fallback for tiles that exhaust
	// their attempts (reported in Stats.Degraded). Off, such tiles fail
	// the run.
	Degrade bool
	// BackoffCycles is the base of the simulated exponential retry
	// backoff; 0 means 1024.
	BackoffCycles int64
	// TraceTail is how many trailing trace entries a hang report carries;
	// 0 means 8, negative disables attempt tracing (hang reports then
	// carry no schedule tail, and replays may use the fast flattened
	// path).
	TraceTail int
}

func (r Resilience) withDefaults() Resilience {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.Watchdog <= 0 {
		r.Watchdog = time.Second
	}
	if r.CoreFailLimit <= 0 {
		r.CoreFailLimit = 3
	}
	if r.BackoffCycles <= 0 {
		r.BackoffCycles = 1024
	}
	if r.TraceTail == 0 {
		r.TraceTail = 8
	}
	return r
}

// DegradedTile reports one tile computed by the host-side golden model
// after its hardware attempts were exhausted.
type DegradedTile struct {
	// N, C1 identify the tile.
	N, C1 int
	// Attempts is how many hardware attempts were made.
	Attempts int
	// LastErr is the final hardware failure, stringified for reporting.
	LastErr string
}

// retryJob is one pending tile attempt in the resilient scheduler.
type retryJob struct {
	n, c1   int
	attempt int
	// excluded are core indices that already failed this tile; the retry
	// queue will not hand the job back to them.
	excluded map[int]bool
	// lastErr is the failure that caused this retry (nil for reassigned
	// first attempts).
	lastErr error
	// prevSpan is the failed attempt's tile_exec span, so the retry's
	// span (or the tile_degrade span) can link back to it causally;
	// 0 when tracing is off or the job never ran.
	prevSpan trace.SpanID
}

// resilientRun is the shared state of one resilient runTiles execution.
type resilientRun struct {
	chip *Chip
	res  Resilience
	run  tileRun
	fb   tileFallback
	rs   *runScope
	// cycOff is each worker's running simulated-cycle offset, placing
	// its tile_exec spans back to back on the worker's own cycle axis.
	// Index idx is touched only by worker goroutine idx.
	cycOff []int64

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []retryJob
	remaining int
	fatal     []error
	results   [][]tileResult
	degraded  []DegradedTile
	coreFails []int
	bad       []bool
}

// runTilesResilient is the fault-tolerant counterpart of runTiles' static
// fan-out. First attempts keep the static round-robin placement (so a
// fault-free run is scheduled exactly like the default path); failures
// are classified, retried on fresh cores through a shared requeue, and
// optionally degraded to the golden model.
func (c *Chip) runTilesResilient(rs *runScope, jobs []tileJob, run tileRun, fb tileFallback) ([][]tileResult, *Stats, error) {
	parent := c.cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	r := &resilientRun{
		chip:      c,
		res:       c.cfg.Resilience.withDefaults(),
		run:       run,
		fb:        fb,
		rs:        rs,
		cycOff:    make([]int64, c.cfg.Cores),
		ctx:       ctx,
		cancel:    cancel,
		remaining: len(jobs),
		results:   make([][]tileResult, c.cfg.Cores),
		coreFails: make([]int, c.cfg.Cores),
		bad:       make([]bool, c.cfg.Cores),
	}
	r.cond = sync.NewCond(&r.mu)

	perCore := make([][]tileJob, c.cfg.Cores)
	for i, j := range jobs {
		perCore[i%c.cfg.Cores] = append(perCore[i%c.cfg.Cores], j)
	}
	var wg sync.WaitGroup
	for coreIdx := 0; coreIdx < c.cfg.Cores; coreIdx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r.worker(idx, perCore[idx])
		}(coreIdx)
	}
	wg.Wait()

	if len(r.fatal) > 0 {
		return nil, nil, errors.Join(r.fatal...)
	}

	stats := &Stats{CoreCycles: make([]int64, c.cfg.Cores), Tiles: len(jobs)}
	for idx, rs := range r.results {
		coreTotal := &aicore.Stats{}
		for _, res := range rs {
			coreTotal.AddSerial(res.stats)
		}
		stats.CoreCycles[idx] = coreTotal.Cycles
		stats.Work.AddParallel(coreTotal)
	}
	sort.Slice(r.degraded, func(i, j int) bool {
		if r.degraded[i].N != r.degraded[j].N {
			return r.degraded[i].N < r.degraded[j].N
		}
		return r.degraded[i].C1 < r.degraded[j].C1
	})
	stats.Degraded = r.degraded
	stats.Cycles = stats.Work.Cycles
	stats.Plans = c.plans.Stats()
	stats.Perf = c.perfReports()
	stats.Metrics = c.metrics.Snapshot()
	return r.results, stats, nil
}

// worker is one core's host goroutine: static first attempts, then the
// shared retry queue until all tiles are finalized (or the run aborts).
func (r *resilientRun) worker(idx int, static []tileJob) {
	for i, j := range static {
		if r.exiting() {
			return
		}
		if r.isBad(idx) {
			// A bad core stops taking work; its untried tiles move to
			// healthy cores.
			r.reassign(idx, static[i:])
			return
		}
		r.attempt(idx, retryJob{n: j.n, c1: j.c1, attempt: 1})
	}
	for {
		j, ok := r.pop(idx)
		if !ok {
			return
		}
		r.attempt(idx, j)
	}
}

func (r *resilientRun) exiting() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.remaining == 0 || len(r.fatal) > 0
}

func (r *resilientRun) isBad(idx int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bad[idx]
}

// pop blocks until a retry job this core may run is available, all tiles
// are finalized, the run went fatal, or this core was marked bad.
func (r *resilientRun) pop(idx int) (retryJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.remaining == 0 || len(r.fatal) > 0 || r.bad[idx] {
			return retryJob{}, false
		}
		for i, j := range r.queue {
			if !j.excluded[idx] {
				r.queue = append(r.queue[:i], r.queue[i+1:]...)
				return j, true
			}
		}
		r.cond.Wait()
	}
}

// attempt runs one tile attempt on a fresh core with the watchdog armed
// and (when configured) a fault injected, then classifies the outcome.
func (r *resilientRun) attempt(idx int, j retryJob) {
	if r.ctx.Err() != nil {
		// Already aborted: don't race the watchdog watcher to start an
		// attempt that must not run.
		r.noteAborted()
		return
	}
	c := r.chip
	core := c.newCore()
	if r.res.TraceTail > 0 || r.rs.capturing(j.n, j.c1) {
		core.Trace = &aicore.Trace{}
	}
	if r.res.Injector != nil {
		r.res.Injector.Arm(core, r.res.Injector.Decide(faults.Tile{N: j.n, C1: j.c1}, j.attempt))
	}

	// One tile_exec span per hardware attempt; retries link back to the
	// attempt they replace, so a trace shows the whole causal chain.
	ts := r.rs.tileSpan(idx, j.n, j.c1)
	if ts != nil {
		ts.SetAttr("attempt", strconv.Itoa(j.attempt))
		if j.prevSpan != 0 {
			ts.Link("retry_of", j.prevSpan)
		}
	}

	// Watchdog: a per-attempt cancel channel closed by a timer (hang) or
	// by the run-wide context (fail-fast abort, caller cancellation).
	cancelCh := make(chan struct{})
	stopWatch := make(chan struct{})
	var wdFired atomic.Bool
	core.Cancel = cancelCh
	go func() {
		timer := time.NewTimer(r.res.Watchdog)
		defer timer.Stop()
		select {
		case <-timer.C:
			wdFired.Store(true)
			close(cancelCh)
		case <-r.ctx.Done():
			close(cancelCh)
		case <-stopWatch:
		}
	}()
	start := time.Now()
	outs, st, err := r.guardedRun(core, idx, j)
	wall := time.Since(start).Nanoseconds()
	close(stopWatch)

	if err == nil {
		if ts != nil {
			ts.SetAttr("outcome", "ok")
			off := r.cycOff[idx]
			ts.SetCycles(off, off+st.Cycles)
			ts.End()
		}
		r.cycOff[idx] += st.Cycles
		c.tileWall.Observe(wall)
		if r.rs.capturing(j.n, j.c1) {
			r.rs.stashTrace(core.Trace)
		}
		r.finalizeSuccess(idx, j, outs, st)
		return
	}
	var spanID trace.SpanID
	if ts != nil {
		if wdFired.Load() {
			ts.SetAttr("watchdog", "tripped")
		}
		ts.SetAttr("outcome", "error")
		spanID = ts.ID()
		ts.End()
	}
	c.tileWall.Observe(wall)
	if r.ctx.Err() != nil && !wdFired.Load() {
		// Casualty of the run-wide abort, not a failure of this tile.
		r.noteAborted()
		return
	}
	if te := r.classify(idx, j, core, err, wdFired.Load()); te != nil {
		r.handleFailure(idx, j, te, spanID)
	} else {
		// Not a fault, hang or panic: a deterministic bug (bad plan, bad
		// shape). Retrying cannot help; fail the run.
		r.setFatal(fmt.Errorf("chip: core %d tile (%d,%d): %w", idx, j.n, j.c1, err))
	}
}

// guardedRun invokes the tile closure with panic containment (satellite:
// a panicking worker becomes a typed error, not a crashed process).
func (r *resilientRun) guardedRun(core *aicore.Core, idx int, j retryJob) (outs []*tensor.Tensor, st *aicore.Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &TileError{
				N: j.n, C1: j.c1, Core: idx, Attempt: j.attempt,
				Kind:  ErrTilePanic,
				Cause: fmt.Errorf("panic: %v", rec),
				Stack: debug.Stack(),
			}
		}
	}()
	outs, st, err = r.run(core, j.n, j.c1)
	return
}

// classify turns a failed attempt into a typed *TileError, or nil when
// the failure is deterministic (not retryable).
func (r *resilientRun) classify(idx int, j retryJob, core *aicore.Core, err error, hung bool) *TileError {
	var te *TileError
	if errors.As(err, &te) {
		return te // panic path, already typed
	}
	e := &TileError{N: j.n, C1: j.c1, Core: idx, Attempt: j.attempt, Cause: err}
	var dl *aicore.DeadlockError
	var sp *faults.StuckPipeError
	switch {
	case hung:
		e.Kind = ErrTileHang
		r.chip.watchdogTrips.Inc()
		if errors.As(err, &dl) {
			e.Pipe, e.Flag, e.HasFlag = dl.Pipe, dl.Flag, dl.HasFlag
		} else if errors.As(err, &sp) {
			e.Pipe = sp.Pipe
		}
		if core.Trace != nil {
			tail := core.Trace.Entries
			if len(tail) > r.res.TraceTail {
				tail = tail[len(tail)-r.res.TraceTail:]
			}
			e.TraceTail = append([]aicore.TraceEntry(nil), tail...)
		}
	default:
		if _, injected := faults.IsInjected(err); injected {
			e.Kind = ErrTileFault
		} else if errors.As(err, &dl) {
			// A deadlock that surfaced without hanging (no watchdog wait)
			// is still a sync failure of this attempt.
			e.Kind = ErrTileHang
			e.Pipe, e.Flag, e.HasFlag = dl.Pipe, dl.Flag, dl.HasFlag
		} else {
			return nil
		}
	}
	return e
}

// handleFailure books the failed attempt and either schedules a retry,
// degrades the tile, or fails the run.
func (r *resilientRun) handleFailure(idx int, j retryJob, te *TileError, spanID trace.SpanID) {
	c := r.chip
	if errors.Is(te.Kind, ErrTilePanic) {
		c.tilePanics.Inc()
	}

	r.mu.Lock()
	r.coreFails[idx]++
	newlyBad := !r.bad[idx] && r.coreFails[idx] >= r.res.CoreFailLimit
	if newlyBad {
		r.bad[idx] = true
		c.coresFailed.Inc()
	}
	var exhausted []retryJob
	if newlyBad {
		// Queued jobs whose only eligible core just went bad must move or
		// be finalized, or the run would stall with every worker waiting.
		exhausted = append(exhausted, r.rebalanceLocked()...)
	}
	retryScheduled := false
	if j.attempt < r.res.MaxAttempts {
		nj := retryJob{n: j.n, c1: j.c1, attempt: j.attempt + 1, excluded: excludeSet(j.excluded, idx), lastErr: te, prevSpan: spanID}
		c.tileRetries.Inc()
		// Simulated exponential backoff: bookkeeping only, never a host
		// sleep, never added to the deterministic core cycle accounting.
		c.backoffCycles.Add(r.res.BackoffCycles << (j.attempt - 1))
		retryScheduled = r.pushLocked(nj)
	}
	r.mu.Unlock()

	if !retryScheduled {
		j.prevSpan = spanID
		r.finalizeExhausted(idx, j, te)
	}
	for _, ex := range exhausted {
		r.finalizeExhausted(idx, ex, ex.lastErr)
	}
}

// excludeSet copies prev and adds idx.
func excludeSet(prev map[int]bool, idx int) map[int]bool {
	next := make(map[int]bool, len(prev)+1)
	for k, v := range prev {
		next[k] = v
	}
	next[idx] = true
	return next
}

// pushLocked enqueues a retry for any healthy non-excluded core,
// loosening the exclusion set when every healthy core has already failed
// the tile. Returns false when no healthy core remains at all.
func (r *resilientRun) pushLocked(j retryJob) bool {
	if !r.runnableLocked(j) {
		if !r.anyHealthyLocked() {
			return false
		}
		// Every healthy core already failed this tile once; retrying
		// there still beats giving up.
		j.excluded = nil
	} else if len(j.excluded) > 0 {
		r.chip.tileRequeues.Inc()
	}
	r.queue = append(r.queue, j)
	r.cond.Broadcast()
	return true
}

func (r *resilientRun) runnableLocked(j retryJob) bool {
	for idx := range r.bad {
		if !r.bad[idx] && !j.excluded[idx] {
			return true
		}
	}
	return false
}

func (r *resilientRun) anyHealthyLocked() bool {
	for _, b := range r.bad {
		if !b {
			return true
		}
	}
	return false
}

// rebalanceLocked re-checks every queued job after a core went bad,
// loosening exclusions where possible and extracting jobs with no
// eligible core left for the caller to finalize.
func (r *resilientRun) rebalanceLocked() (exhausted []retryJob) {
	kept := r.queue[:0]
	for _, j := range r.queue {
		switch {
		case r.runnableLocked(j):
			kept = append(kept, j)
		case r.anyHealthyLocked():
			j.excluded = nil
			kept = append(kept, j)
		default:
			exhausted = append(exhausted, j)
		}
	}
	r.queue = kept
	return exhausted
}

// reassign pushes a bad core's untried tiles onto healthy cores.
func (r *resilientRun) reassign(idx int, rest []tileJob) {
	r.mu.Lock()
	var exhausted []retryJob
	for _, j := range rest {
		nj := retryJob{n: j.n, c1: j.c1, attempt: 1, excluded: map[int]bool{idx: true},
			lastErr: &CoreFailedError{Core: idx, Failures: r.coreFails[idx]}}
		if !r.pushLocked(nj) {
			exhausted = append(exhausted, nj)
		}
	}
	r.mu.Unlock()
	for _, ex := range exhausted {
		r.finalizeExhausted(idx, ex, ex.lastErr)
	}
}

func (r *resilientRun) finalizeSuccess(idx int, j retryJob, outs []*tensor.Tensor, st *aicore.Stats) {
	c := r.chip
	r.mu.Lock()
	r.results[idx] = append(r.results[idx], tileResult{n: j.n, c1: j.c1, outs: outs, stats: st})
	r.remaining--
	r.cond.Broadcast()
	r.mu.Unlock()
	c.tiles.Inc()
	c.tileAttempts.Observe(int64(j.attempt))
	c.tileCycles.Observe(st.Cycles)
	c.tileInstrs.Add(st.Instrs)
	c.bytesIn.Add(st.BytesIn)
	c.bytesOut.Add(st.BytesOut)
}

// finalizeExhausted handles a tile with no hardware attempts left:
// golden-model degradation when enabled, otherwise run failure.
func (r *resilientRun) finalizeExhausted(idx int, j retryJob, cause error) {
	if cause == nil {
		cause = &CoreFailedError{Core: idx}
	}
	if !r.res.Degrade || r.fb == nil {
		r.setFatal(fmt.Errorf("chip: tile (%d,%d) failed after %d attempt(s): %w", j.n, j.c1, j.attempt, cause))
		return
	}
	outs, err := r.fb(j.n, j.c1)
	if err != nil {
		r.setFatal(fmt.Errorf("chip: tile (%d,%d): golden fallback failed: %w", j.n, j.c1, err))
		return
	}
	// The degradation decision is itself a span, causally after the
	// attempt (or requeue) that exhausted the tile.
	if ds := r.rs.ctx().StartSpan("tile_degrade",
		"n", strconv.Itoa(j.n), "c1", strconv.Itoa(j.c1), "attempts", strconv.Itoa(j.attempt)); ds != nil {
		ds.Link("after", j.prevSpan)
		ds.End()
	}
	r.chip.tilesDegraded.Inc()
	r.chip.tileAttempts.Observe(int64(j.attempt))
	r.mu.Lock()
	// Degraded tiles contribute data but no cycles: the host, not a core,
	// computed them.
	r.results[idx] = append(r.results[idx], tileResult{n: j.n, c1: j.c1, outs: outs, stats: &aicore.Stats{}})
	r.degraded = append(r.degraded, DegradedTile{N: j.n, C1: j.c1, Attempts: j.attempt, LastErr: cause.Error()})
	r.remaining--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// setFatal records a run-killing error and aborts every in-flight core.
func (r *resilientRun) setFatal(err error) {
	r.mu.Lock()
	r.fatal = append(r.fatal, err)
	r.cond.Broadcast()
	r.mu.Unlock()
	r.cancel()
}

// noteAborted records the caller's cancellation (once) when an attempt
// died from the run-wide abort rather than its own failure.
func (r *resilientRun) noteAborted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.fatal) == 0 {
		r.fatal = append(r.fatal, fmt.Errorf("chip: run aborted: %w", r.ctx.Err()))
		r.cond.Broadcast()
	}
}
