package chip

import (
	"math/rand"
	"testing"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func randInput(seed int64, n, c1, h, w int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, c1, h, w, tensor.C0)
	t.FillRandom(rng, 4)
	return t
}

func TestMaxPoolForwardMultiTile(t *testing.T) {
	p := isa.ConvParams{Ih: 16, Iw: 16, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randInput(1, 2, 5, 16, 16)
	want := ref.MaxPoolForward(in, p)
	for _, variant := range []string{"standard", "im2col", "expansion", "xysplit"} {
		c := New(Config{Cores: 4})
		got, st, err := c.MaxPoolForward(variant, in, p)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Errorf("%s: multi-tile output diverges", variant)
		}
		if st.Tiles != 10 {
			t.Errorf("%s: tiles = %d, want 10", variant, st.Tiles)
		}
	}
}

// Chip cycles are the max over cores: with one tile per core the chip time
// equals the single-tile time; with more tiles than cores it grows.
func TestParallelScaling(t *testing.T) {
	p := isa.ConvParams{Ih: 24, Iw: 24, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in4 := randInput(2, 1, 4, 24, 24)
	c4 := New(Config{Cores: 4})
	_, st4, err := c4.MaxPoolForward("im2col", in4, p)
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(Config{Cores: 1})
	_, st1, err := c1.MaxPoolForward("im2col", in4, p)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles <= st4.Cycles {
		t.Errorf("1 core (%d cycles) should be slower than 4 cores (%d)", st1.Cycles, st4.Cycles)
	}
	if st1.Cycles < 3*st4.Cycles {
		t.Errorf("expected ~4x serialization, got %d vs %d", st1.Cycles, st4.Cycles)
	}
	// Equal tiles on equal cores: every core reports similar cycles.
	for i, cc := range st4.CoreCycles {
		if cc == 0 {
			t.Errorf("core %d idle", i)
		}
	}
}

func TestArgmaxAndBackwardRoundTrip(t *testing.T) {
	p := isa.ConvParams{Ih: 20, Iw: 20, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randInput(3, 1, 3, 20, 20)
	oh, ow := p.OutDims()

	c := New(Config{Cores: 3})
	for _, variant := range []string{"standard", "im2col"} {
		out, mask, _, err := c.MaxPoolForwardArgmax(variant, in, p)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if tensor.MaxAbsDiff(out, ref.MaxPoolForward(in, p)) != 0 {
			t.Errorf("%s: argmax forward output diverges", variant)
		}
		if tensor.MaxAbsDiff(mask, ref.ArgmaxMask(in, p)) != 0 {
			t.Errorf("%s: mask diverges", variant)
		}

		grad := tensor.New(1, 3, oh, ow, tensor.C0)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
		}
		want := ref.MaxPoolBackward(mask, grad, p, p.Ih, p.Iw)
		for _, bv := range []string{"standard", "col2im"} {
			back, _, err := c.MaxPoolBackward(bv, mask, grad, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", variant, bv, err)
			}
			if tensor.MaxAbsDiff(back, want) != 0 {
				t.Errorf("%s/%s: backward diverges", variant, bv)
			}
		}
	}
}

func TestAvgPoolChip(t *testing.T) {
	p := isa.ConvParams{Ih: 12, Iw: 12, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	in := randInput(5, 1, 2, 12, 12)
	want := ref.AvgPoolForward(in, p)
	c := New(Config{Cores: 2})
	for _, variant := range []string{"standard", "im2col"} {
		got, _, err := c.AvgPoolForward(variant, in, p)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Errorf("%s: avg forward diverges", variant)
		}
	}
	oh, ow := p.OutDims()
	grad := tensor.New(1, 2, oh, ow, tensor.C0)
	grad.Fill(fp16.One)
	wantB := ref.AvgPoolBackward(grad, p, p.Ih, p.Iw)
	for _, useCol2im := range []bool{false, true} {
		got, _, err := c.AvgPoolBackward(grad, p, useCol2im)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(got, wantB) != 0 {
			t.Errorf("col2im=%v: avg backward diverges", useCol2im)
		}
	}
}

func TestConvChipBatch(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	rng := rand.New(rand.NewSource(11))
	in := tensor.New(2, 1, 8, 8, tensor.C0)
	in.FillRandom(rng, 1)
	w := tensor.New(16, 16, 3, 3)
	w.FillRandom(rng, 1)
	c := New(Config{Cores: 2})
	got, st, err := c.Conv2D(in, w, p)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Conv2D(in, w, p)
	if d := tensor.MaxAbsDiff(got, want); d > 0.5 {
		t.Errorf("batched conv max diff %v", d)
	}
	if st.Tiles != 2 {
		t.Errorf("tiles = %d", st.Tiles)
	}
}

func TestUnknownVariants(t *testing.T) {
	c := New(Config{Cores: 1})
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	in := randInput(1, 1, 1, 8, 8)
	if _, _, err := c.MaxPoolForward("nope", in, p); err == nil {
		t.Error("unknown forward variant accepted")
	}
	if _, _, _, err := c.MaxPoolForwardArgmax("nope", in, p); err == nil {
		t.Error("unknown argmax variant accepted")
	}
	if _, _, err := c.MaxPoolBackward("nope", tensor.New(1, 1, 2, 2, 16, tensor.C0), in, p); err == nil {
		t.Error("unknown backward variant accepted")
	}
	if _, _, err := c.AvgPoolForward("nope", in, p); err == nil {
		t.Error("unknown avg variant accepted")
	}
	if _, _, err := c.MaxPoolForward("standard", tensor.New(4, 4), p); err == nil {
		t.Error("non-fractal input accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{})
	if c.Cores() != DefaultCores {
		t.Errorf("default cores = %d", c.Cores())
	}
}

// Xception's 37x37x728 layer has C1 = 46 > 32 cores: some cores process
// two tiles. Chip time must be at least two single-tile times and the
// output must still match the reference.
func TestLoadImbalanceBeyondCoreCount(t *testing.T) {
	p := isa.ConvParams{Ih: 37, Iw: 37, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	in := randInput(17, 1, 46, 37, 37)
	c32 := New(Config{Cores: 32})
	got, st, err := c32.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got, ref.MaxPoolForward(in, p)) != 0 {
		t.Error("imbalanced run diverges")
	}
	// Single-tile time from a 1-tile input.
	one := randInput(18, 1, 1, 37, 37)
	_, st1, err := New(Config{Cores: 1}).MaxPoolForward("im2col", one, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 2*st1.Cycles-st1.Cycles/10 {
		t.Errorf("46 tiles on 32 cores should take ~2 tile times: %d vs tile %d", st.Cycles, st1.Cycles)
	}
	if st.Tiles != 46 {
		t.Errorf("tiles = %d", st.Tiles)
	}
	// 14 cores got one tile, 18 got two: max core cycles ~ 2x min.
	var minC, maxC int64 = 1 << 62, 0
	for _, cc := range st.CoreCycles {
		if cc < minC {
			minC = cc
		}
		if cc > maxC {
			maxC = cc
		}
	}
	if maxC < minC*3/2 {
		t.Errorf("expected ~2x imbalance, got min %d max %d", minC, maxC)
	}
}

func TestConvBackwardChip(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	rng := rand.New(rand.NewSource(23))
	oh, ow := p.OutDims()
	grad := tensor.New(2, 1, oh, ow, tensor.C0)
	grad.FillRandom(rng, 1)
	w := tensor.New(16, 16, 3, 3)
	w.FillRandom(rng, 0.5)
	c := New(Config{Cores: 2})
	got, st, err := c.Conv2DBackwardData(grad, w, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Conv2DBackwardData(grad, w, p, 16)
	if d := tensor.MaxAbsDiff(got, want); d > 0.1 {
		t.Errorf("chip conv backward max diff %v", d)
	}
	if st.Tiles != 2 {
		t.Errorf("tiles = %d", st.Tiles)
	}
	if got.Shape[2] != 8 || got.Shape[3] != 8 {
		t.Errorf("dX shape %v", got.Shape)
	}
}
