package chip

import (
	"errors"
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/isa"
)

// Sentinel categories for tile failures. Concrete errors are *TileError
// (and *CoreFailedError) values that wrap one of these, so callers can
// match the category with errors.Is and recover the detail with errors.As:
//
//	if errors.Is(err, chip.ErrTileHang) { ... }
//	var te *chip.TileError
//	if errors.As(err, &te) { use te.N, te.C1, te.Pipe ... }
var (
	// ErrTileFault: a tile attempt failed with a detected hardware fault
	// (transient, ECC, stuck pipe).
	ErrTileFault = errors.New("tile fault")
	// ErrTileHang: a tile attempt made no progress and the watchdog
	// reclaimed the core.
	ErrTileHang = errors.New("tile hang")
	// ErrTilePanic: a tile worker panicked; the panic was recovered into
	// an error instead of crashing the process.
	ErrTilePanic = errors.New("tile panic")
	// ErrCoreFailed: a core exceeded its failure budget and was excluded,
	// or no healthy core remained for a tile.
	ErrCoreFailed = errors.New("core failed")
)

// TileError is one tile attempt's failure, carrying the tile identity the
// joined chip-level error needs to stay diagnosable.
type TileError struct {
	// N, C1 identify the tile.
	N, C1 int
	// Core is the simulated core index the attempt ran on.
	Core int
	// Attempt is the 1-based attempt number.
	Attempt int
	// Kind is the failure category: ErrTileFault, ErrTileHang or
	// ErrTilePanic.
	Kind error
	// Cause is the underlying error (injected fault, deadlock, panic
	// value, watchdog interruption).
	Cause error
	// Pipe is the blocked pipe of a hang, when known.
	Pipe isa.Pipe
	// Flag is the (src pipe, dst pipe, event) triple of the unsatisfied
	// wait_flag of a hang; meaningful when HasFlag is true.
	Flag [3]int
	// HasFlag reports whether the hang was traced to a starved wait_flag.
	HasFlag bool
	// TraceTail holds the last scheduled instructions (with stall
	// attribution) before a hang, for post-mortem diagnosis.
	TraceTail []aicore.TraceEntry
	// Stack is the recovered goroutine stack of a panic.
	Stack []byte
}

func (e *TileError) Error() string {
	head := fmt.Sprintf("%v: tile (%d,%d) core %d attempt %d", e.Kind, e.N, e.C1, e.Core, e.Attempt)
	if errors.Is(e.Kind, ErrTileHang) {
		if e.HasFlag {
			return fmt.Sprintf("%s: pipe %v blocked on wait_flag(%v->%v, ev%d): %v",
				head, e.Pipe, isa.Pipe(e.Flag[0]), isa.Pipe(e.Flag[1]), e.Flag[2], e.Cause)
		}
		return fmt.Sprintf("%s: pipe %v blocked: %v", head, e.Pipe, e.Cause)
	}
	return fmt.Sprintf("%s: %v", head, e.Cause)
}

// Unwrap exposes both the category sentinel and the underlying cause, so
// errors.Is matches either.
func (e *TileError) Unwrap() []error { return []error{e.Kind, e.Cause} }

// CoreFailedError reports a core excluded after exceeding its failure
// budget (or a tile left with no healthy core to run on).
type CoreFailedError struct {
	// Core is the failed core's index.
	Core int
	// Failures is how many tile attempts failed on it.
	Failures int
}

func (e *CoreFailedError) Error() string {
	return fmt.Sprintf("core failed: core %d marked bad after %d failed attempts", e.Core, e.Failures)
}

func (e *CoreFailedError) Unwrap() error { return ErrCoreFailed }
