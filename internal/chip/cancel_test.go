package chip

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/faults"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/trace"
)

// cancelLayer is a small shape (12x12x64: 4 C1 tiles) so the mid-tile
// cancellation sweep stays fast under -race.
func cancelLayer() (isa.ConvParams, int) {
	return isa.ConvParams{Ih: 12, Iw: 12, Kh: 3, Kw: 3, Sh: 2, Sw: 2}, 4
}

// cancelAfterSpans cancels ctx once the tracer has finished k tile_exec
// spans (k = 0 cancels immediately). The returned stop func ends the
// watcher; call it after the run returns.
func cancelAfterSpans(tr *trace.Tracer, k int, cancel context.CancelFunc) (stop func()) {
	done := make(chan struct{})
	go func() {
		for tr.Count("tile_exec") < k {
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
		cancel()
	}()
	return func() { close(done) }
}

func TestCancelMidTileLegacySweep(t *testing.T) {
	p, c1 := cancelLayer()
	in := chaosInput(t, p, 1, c1)
	want := ref.MaxPoolForward(in, p)

	// Cancel after every possible number of finished tile spans: before
	// the first tile, between every pair, and after the last. Whatever
	// the interleaving, the run must return exactly once with either a
	// complete bit-identical output or an interruption error — and end
	// every span it started.
	for k := 0; k <= c1+1; k++ {
		tr := trace.New()
		ctx, cancel := context.WithCancel(context.Background())
		stop := cancelAfterSpans(tr, k, cancel)
		c := New(Config{Cores: 2, Context: ctx, Trace: tr.Root()})
		out, _, err := c.MaxPoolForward("im2col", in, p)
		stop()
		cancel()
		switch {
		case err == nil:
			if out == nil || !bytes.Equal(out.Data, want.Data) {
				t.Fatalf("k=%d: clean return with wrong output", k)
			}
		case errors.Is(err, aicore.ErrInterrupted):
			if out != nil {
				t.Fatalf("k=%d: error return carries an output", k)
			}
		default:
			t.Fatalf("k=%d: unexpected error %v", k, err)
		}
		if tr.Active() != 0 {
			t.Fatalf("k=%d: span leak, Active = %d", k, tr.Active())
		}
	}
}

func TestCancelMidTileResilientSweep(t *testing.T) {
	p, c1 := cancelLayer()
	in := chaosInput(t, p, 1, c1)
	want := ref.MaxPoolForward(in, p)

	for k := 0; k <= c1+1; k++ {
		tr := trace.New()
		ctx, cancel := context.WithCancel(context.Background())
		stop := cancelAfterSpans(tr, k, cancel)
		c := New(Config{
			Cores:      2,
			Context:    ctx,
			Trace:      tr.Root(),
			Resilience: Resilience{Enabled: true, Watchdog: 400 * time.Millisecond},
		})
		out, _, err := c.MaxPoolForward("im2col", in, p)
		stop()
		cancel()
		switch {
		case err == nil:
			if out == nil || !bytes.Equal(out.Data, want.Data) {
				t.Fatalf("k=%d: clean return with wrong output", k)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, aicore.ErrInterrupted):
			if out != nil {
				t.Fatalf("k=%d: error return carries an output", k)
			}
		default:
			t.Fatalf("k=%d: unexpected error %v", k, err)
		}
		if tr.Active() != 0 {
			t.Fatalf("k=%d: span leak, Active = %d", k, tr.Active())
		}
	}
}

// countAttempt counts finished tile_exec spans carrying a given attempt
// index.
func countAttempt(tr *trace.Tracer, attempt int) int {
	n := 0
	for _, s := range tr.Finished() {
		if s.Name != "tile_exec" {
			continue
		}
		if a, ok := s.Attr("attempt"); ok && a == strconv.Itoa(attempt) {
			n++
		}
	}
	return n
}

// TestCancelAtEveryAttemptIndex forces retries (injector rate 1, faults
// on attempts 1 and 2, success on 3) and cancels while an attempt with
// index j is the newest finished span, for every attempt index the
// budget allows. The resilient executor must report exactly one terminal
// outcome and end every span regardless of which retry wave the
// cancellation lands in.
func TestCancelAtEveryAttemptIndex(t *testing.T) {
	p, c1 := cancelLayer()
	in := chaosInput(t, p, 1, c1)
	want := ref.MaxPoolForward(in, p)

	for attempt := 1; attempt <= 3; attempt++ {
		tr := trace.New()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			for countAttempt(tr, attempt) == 0 {
				select {
				case <-done:
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
			cancel()
		}()
		inj := faults.New(faults.Config{
			Seed:       5,
			Rate:       1,
			Kinds:      []faults.Kind{faults.KindTransient},
			MaxPerTile: 2,
		}, nil)
		c := New(Config{
			Cores:   2,
			Context: ctx,
			Trace:   tr.Root(),
			Resilience: Resilience{
				Enabled:       true,
				Injector:      inj,
				MaxAttempts:   3,
				CoreFailLimit: 100, // rate-1 injection must not fail the cores
				Watchdog:      400 * time.Millisecond,
			},
		})
		out, _, err := c.MaxPoolForward("im2col", in, p)
		close(done)
		cancel()
		switch {
		case err == nil:
			if out == nil || !bytes.Equal(out.Data, want.Data) {
				t.Fatalf("attempt=%d: clean return with wrong output", attempt)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, aicore.ErrInterrupted):
			if out != nil {
				t.Fatalf("attempt=%d: error return carries an output", attempt)
			}
		default:
			t.Fatalf("attempt=%d: unexpected error %v", attempt, err)
		}
		if tr.Active() != 0 {
			t.Fatalf("attempt=%d: span leak, Active = %d", attempt, tr.Active())
		}
	}
}
