package chip

import (
	"sync"
	"testing"
	"time"

	"davinci/internal/faults"
	"davinci/internal/trace"
)

// TestSpanConsistencyConcurrentReplays hammers one chip's plan cache
// from concurrent runs of the same shape and checks the span stream is
// exact and leak-free: every run gets its chip_run / plan_lookup pair,
// the compile is singleflighted into exactly one plan_compile span, and
// every tile_exec links back to its own run's plan_lookup. Run under
// -race in CI.
func TestSpanConsistencyConcurrentReplays(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)
	tracer := trace.New()
	c := New(Config{Cores: 4, Trace: tracer.Root()})

	const runs = 8
	errs := make(chan error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.MaxPoolForward("im2col", in, p)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if n := tracer.Active(); n != 0 {
		t.Fatalf("span leak: %d spans still active after all runs ended", n)
	}
	tiles := 1 * c1
	for _, want := range []struct {
		name string
		n    int
	}{
		{"chip_run", runs},
		{"plan_lookup", runs},
		{"plan_compile", 1},
		{"tile_exec", runs * tiles},
		{"tile_degrade", 0},
	} {
		if got := tracer.Count(want.name); got != want.n {
			t.Errorf("span %s: got %d, want %d", want.name, got, want.n)
		}
	}

	spans := tracer.Finished()
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	misses := 0
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case "plan_lookup":
			if out, _ := s.Attr("outcome"); out == "miss" {
				misses++
			}
		case "tile_exec":
			linked := false
			for _, l := range s.Links {
				if l.Kind == "plan" {
					target, ok := byID[l.Target]
					if !ok || target.Name != "plan_lookup" {
						t.Fatalf("tile_exec %d: plan link to %d is not a plan_lookup span", s.ID, l.Target)
					}
					// The link must stay inside the tile's own run.
					if target.Parent != s.Parent {
						t.Fatalf("tile_exec %d links to plan_lookup %d of a different chip_run", s.ID, target.ID)
					}
					linked = true
				}
			}
			if !linked {
				t.Fatalf("tile_exec %d has no plan link", s.ID)
			}
		}
	}
	if misses != 1 {
		t.Errorf("plan_lookup outcome=miss: got %d, want exactly 1 (singleflighted compile)", misses)
	}
}

// TestSpanConsistencyRetryStorm replays a seeded fault schedule through
// concurrent resilient runs and checks the spans match the schedule
// exactly: faults.Injector.Decide is pure per (tile, attempt), so the
// expected number of attempts, retry links and degrades is computable
// up front and must hold for every one of the concurrent runs. Run
// under -race in CI.
func TestSpanConsistencyRetryStorm(t *testing.T) {
	p, c1 := chaosLayer()
	in := chaosInput(t, p, 1, c1)

	const maxAttempts = 3
	inj := faults.New(faults.Config{
		Seed: 42,
		Rate: 0.6,
		// Every attempt may fault, so tiles can exhaust the budget and
		// degrade — the default would guarantee first retries succeed.
		MaxPerTile: maxAttempts,
		// Transient faults and bitflips fail an attempt deterministically;
		// the hang kinds would spend real watchdog wall-time per fault.
		Kinds: []faults.Kind{faults.KindTransient, faults.KindBitFlip},
	}, nil)

	// Replay the decision schedule the executor will see.
	expAttempts, expRetries, expDegrades := 0, 0, 0
	for c := 0; c < c1; c++ {
		exhausted := true
		for a := 1; a <= maxAttempts; a++ {
			expAttempts++
			if a > 1 {
				expRetries++
			}
			if inj.Decide(faults.Tile{N: 0, C1: c}, a).Kind == faults.KindNone {
				exhausted = false
				break
			}
		}
		if exhausted {
			expDegrades++
		}
	}
	if expRetries == 0 || expDegrades == 0 {
		t.Fatalf("seed 42 schedule exercises no retries (%d) or degrades (%d); pick a seed that does",
			expRetries, expDegrades)
	}

	tracer := trace.New()
	c := New(Config{Cores: 4, Trace: tracer.Root(), Resilience: Resilience{
		Enabled:     true,
		Injector:    inj,
		MaxAttempts: maxAttempts,
		Degrade:     true,
		// No hang kinds are armed, so the watchdog only needs to stay out
		// of the way of clean attempts slowed down by -race.
		Watchdog:      5 * time.Second,
		CoreFailLimit: 1 << 30, // cores never go bad: rebalancing would reshuffle the schedule
	}})

	const runs = 4
	errs := make(chan error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := c.MaxPoolForward("im2col", in, p)
			if err == nil && len(st.Degraded) != expDegrades {
				t.Errorf("degraded tiles: got %d, want %d", len(st.Degraded), expDegrades)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if n := tracer.Active(); n != 0 {
		t.Fatalf("span leak: %d spans still active after the retry storm", n)
	}
	for _, want := range []struct {
		name string
		n    int
	}{
		{"chip_run", runs},
		{"plan_lookup", runs},
		{"plan_compile", 1},
		{"tile_exec", runs * expAttempts},
		{"tile_degrade", runs * expDegrades},
	} {
		if got := tracer.Count(want.name); got != want.n {
			t.Errorf("span %s: got %d, want %d", want.name, got, want.n)
		}
	}

	spans := tracer.Finished()
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	retryLinks := 0
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case "tile_exec":
			for _, l := range s.Links {
				if l.Kind != "retry_of" {
					continue
				}
				retryLinks++
				prev, ok := byID[l.Target]
				if !ok || prev.Name != "tile_exec" {
					t.Fatalf("tile_exec %d: retry_of %d is not a tile_exec span", s.ID, l.Target)
				}
				if out, _ := prev.Attr("outcome"); out != "error" {
					t.Fatalf("tile_exec %d retries attempt %d whose outcome is %q, want error", s.ID, prev.ID, out)
				}
				pn, _ := prev.Attr("n")
				pc, _ := prev.Attr("c1")
				sn, _ := s.Attr("n")
				sc, _ := s.Attr("c1")
				if pn != sn || pc != sc {
					t.Fatalf("tile_exec %d (%s,%s) retries a different tile (%s,%s)", s.ID, sn, sc, pn, pc)
				}
			}
		case "tile_degrade":
			linked := false
			for _, l := range s.Links {
				if l.Kind == "after" {
					prev, ok := byID[l.Target]
					if !ok || prev.Name != "tile_exec" {
						t.Fatalf("tile_degrade %d: after link %d is not a tile_exec span", s.ID, l.Target)
					}
					linked = true
				}
			}
			if !linked {
				t.Fatalf("tile_degrade %d has no after link to its final failed attempt", s.ID)
			}
		}
	}
	if retryLinks != runs*expRetries {
		t.Errorf("retry_of links: got %d, want %d", retryLinks, runs*expRetries)
	}
}
