// Package chip models a whole Ascend-910-class device: a set of AI Cores
// sharing global memory. The outer (N, C1) loops of pooling are
// parallelized between the AI Cores available on the device (paper §IV-A:
// "the outer loops are parallelized between the AI Cores"), each core
// processing whole (H, W, C0) tiles; chip time is the maximum over cores.
//
// Each simulated core is independent, so host-side execution fans tiles
// out across goroutines — one worker per simulated core. Kernels are
// compiled once per shape through the chip's plan cache (ops.PlanCache)
// before the fan-out; every core then replays the same immutable plan on
// its own tiles, so host wall time no longer scales with re-compiling the
// schedule per tile.
package chip

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/lint/perf"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/ref"
	_ "davinci/internal/sched" // registers the autoscheduler Config.AutoSchedule dispatches to
	"davinci/internal/tensor"
	"davinci/internal/trace"
)

// DefaultCores is the AI Core count of the Ascend 910 (§VI).
const DefaultCores = 32

// Config describes the simulated device.
type Config struct {
	// Cores is the number of AI Cores; 0 means DefaultCores.
	Cores int
	// Buffers configures each core's scratch-pads; zero fields take the
	// Ascend 910 defaults.
	Buffers buffer.Config
	// Cost overrides the cycle-cost model; nil takes the calibrated
	// default.
	Cost *isa.CostModel
	// Serialize disables intra-core pipeline overlap (ablation).
	Serialize bool
	// Opt selects the static optimizer level (internal/opt) applied to
	// every plan the chip compiles; 0 (opt.LevelNone) runs the kernels'
	// emitted programs untouched.
	Opt opt.Level
	// AutoSchedule routes every kernel compilation through the schedule
	// search (internal/sched): each plan the chip caches is the searched
	// winner when it beats the hand-tuned schedule under the cycle oracle
	// and passes the validation gate, the default otherwise. The sched_*
	// counters land in Metrics via the plan cache.
	AutoSchedule bool
	// Strict routes every compile through the acceptance gate
	// (lint/certificate admission), so plans this chip caches are the
	// verified ones. The serving layer turns this on: admission-time
	// compiles go through the cert registry's fast path and dispatch
	// reuses them.
	Strict bool
	// Plans, when non-nil, is a shared plan cache used instead of a
	// chip-private one. A fleet of identically-specced chips shares one
	// cache so a shape compiled at admission time (or on any chip) is a
	// hit on every other chip.
	Plans *ops.PlanCache
	// Metrics is the registry the chip's counters (and its plan cache's)
	// register in; nil gives the chip a private registry. Benchmarks pass
	// a shared registry so one snapshot covers every device they build.
	Metrics *obs.Registry
	// Context, when non-nil, bounds every run: cancelling it interrupts
	// all in-flight cores, and a tile failure cancels the remaining
	// tiles instead of letting every core run to its own first failure.
	Context context.Context
	// Resilience configures the fault-tolerant tile executor (watchdog,
	// retry/requeue, graceful degradation, fault injection). The zero
	// value leaves the executor in its fail-fast mode.
	Resilience Resilience
	// Trace is the span context every run of this chip nests under: each
	// entry point opens a chip_run span with a plan_lookup child (the
	// plan cache annotates it hit/miss and hangs plan_compile under it on
	// a miss), and the tile executors emit one tile_exec span per tile
	// attempt, causally linked to the plan_lookup span. The zero value
	// disables tracing at zero cost.
	Trace trace.Ctx
	// CaptureTrace arms instruction tracing on tile (0, 0) and stashes
	// the captured pipe schedule in Stats.TileTrace, so one run can be
	// rendered cycle-accurately alongside the host spans in a merged
	// Chrome trace (obs.WriteChromeTraceWithSpans).
	CaptureTrace bool
}

// Chip is a simulated multi-core device. Each chip owns a plan cache:
// kernels are compiled once per (variant, shape) and replayed by every
// core.
type Chip struct {
	cfg     Config
	spec    ops.Spec
	plans   *ops.PlanCache
	metrics *obs.Registry
	// Per-tile instruments, registered once so the per-core goroutines in
	// runTiles update them lock-free.
	tiles        *obs.Counter
	tileCycles   *obs.Histogram
	tileInstrs   *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	tileWall     *obs.Histogram
	tileAttempts *obs.Histogram
	// Resilience instruments (internal/chip/resilience.go).
	tileRetries   *obs.Counter
	tileRequeues  *obs.Counter
	tilesDegraded *obs.Counter
	watchdogTrips *obs.Counter
	coresFailed   *obs.Counter
	tilePanics    *obs.Counter
	backoffCycles *obs.Counter
}

// New creates a chip. Zero-valued config fields take Ascend 910 defaults.
func New(cfg Config) *Chip {
	if cfg.Cores == 0 {
		cfg.Cores = DefaultCores
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Resilience.Injector != nil {
		cfg.Resilience.Injector.Bind(cfg.Metrics)
	}
	plans := cfg.Plans
	if plans == nil {
		plans = ops.NewPlanCacheOn(cfg.Metrics)
	}
	return &Chip{
		cfg:           cfg,
		spec:          ops.Spec{Buffers: cfg.Buffers, Strict: cfg.Strict, Opt: cfg.Opt, AutoSchedule: cfg.AutoSchedule},
		plans:         plans,
		metrics:       cfg.Metrics,
		tiles:         cfg.Metrics.Counter("chip_tiles"),
		tileCycles:    cfg.Metrics.Histogram("chip_tile_cycles", nil),
		tileInstrs:    cfg.Metrics.Counter("chip_tile_instrs"),
		bytesIn:       cfg.Metrics.Counter("chip_bytes_in"),
		bytesOut:      cfg.Metrics.Counter("chip_bytes_out"),
		tileWall:      cfg.Metrics.Histogram("chip_tile_wall_nanos", obs.DefaultNanoBounds()),
		tileAttempts:  cfg.Metrics.Histogram("chip_tile_attempts", obs.DefaultAttemptBounds()),
		tileRetries:   cfg.Metrics.Counter("chip_tile_retries"),
		tileRequeues:  cfg.Metrics.Counter("chip_tile_requeues"),
		tilesDegraded: cfg.Metrics.Counter("chip_tiles_degraded"),
		watchdogTrips: cfg.Metrics.Counter("chip_watchdog_trips"),
		coresFailed:   cfg.Metrics.Counter("chip_cores_failed"),
		tilePanics:    cfg.Metrics.Counter("chip_tile_panics"),
		backoffCycles: cfg.Metrics.Counter("chip_retry_backoff_cycles"),
	}
}

// Cores returns the AI Core count.
func (c *Chip) Cores() int { return c.cfg.Cores }

// Spec returns the compile spec this chip's plans are keyed by. A caller
// that compiles plans ahead of dispatch (the serving layer's admission
// fast-path) uses this spec against the shared cache so its compiles are
// cache hits at dispatch time.
func (c *Chip) Spec() ops.Spec { return c.spec }

// WithContext returns a view of the chip whose runs are bounded by ctx:
// cancelling it interrupts all in-flight cores through the core.Cancel
// path. The view shares the chip's plan cache, metrics and config; the
// serving layer uses one view per dispatched batch so a batch whose
// requests have all expired can be cancelled without touching the rest of
// the fleet.
func (c *Chip) WithContext(ctx context.Context) *Chip {
	view := *c
	view.cfg.Context = ctx
	return &view
}

// WithTrace returns a view of the chip whose runs nest under tc instead
// of the chip's configured span context — one serving batch parents the
// chip_run it performs under its serve_batch span.
func (c *Chip) WithTrace(tc trace.Ctx) *Chip {
	view := *c
	view.cfg.Trace = tc
	return &view
}

// PlanStats returns a snapshot of the chip's plan-cache counters.
func (c *Chip) PlanStats() ops.CacheStats { return c.plans.Stats() }

// Metrics returns the registry holding the chip's counters (tile counts,
// per-tile cycle histogram, GM traffic) and its plan cache's counters.
func (c *Chip) Metrics() *obs.Registry { return c.metrics }

// PlanPerf pairs a compiled plan's identity with its static performance
// analysis (internal/lint/perf), computed once at plan time.
type PlanPerf struct {
	Name   string
	Params isa.ConvParams
	Report *perf.Report
}

// perfReports snapshots the static analysis of every plan compiled so
// far, sorted by kernel name then parameters.
func (c *Chip) perfReports() []PlanPerf {
	plans := c.plans.Plans()
	reports := make([]PlanPerf, 0, len(plans))
	for _, pl := range plans {
		reports = append(reports, PlanPerf{Name: pl.Name, Params: pl.Params, Report: pl.Perf})
	}
	return reports
}

func (c *Chip) newCore() *aicore.Core {
	core := aicore.New(c.cfg.Buffers, c.cfg.Cost)
	core.Serialize = c.cfg.Serialize
	return core
}

// Stats aggregates a chip-level run.
type Stats struct {
	// Cycles is the device makespan: the busiest core's cycle count.
	Cycles int64
	// CoreCycles holds each core's total cycles (length Cores).
	CoreCycles []int64
	// Tiles is the number of (n, c1) tiles processed.
	Tiles int
	// Work sums per-pipe activity over all cores.
	Work aicore.Stats
	// Plans snapshots the chip's cumulative plan-cache counters at the
	// end of the run (compiled programs, cache hits, misses).
	Plans ops.CacheStats
	// Perf holds the static performance analysis of every plan compiled
	// through the chip's cache so far, sorted by kernel name then
	// parameters.
	Perf []PlanPerf
	// Metrics snapshots the chip's registry (tile histogram, GM traffic,
	// plan-cache counters) at the end of the run.
	Metrics *obs.Snapshot
	// Degraded lists the tiles that fell back to the host-side golden
	// model after exhausting their hardware retries (resilient executor
	// with Degrade enabled), sorted by (N, C1). Empty on a clean run.
	Degraded []DegradedTile
	// TileTrace is tile (0, 0)'s captured pipe schedule when
	// Config.CaptureTrace was set (the successful attempt's, under the
	// resilient executor); nil otherwise.
	TileTrace *aicore.Trace
}

func (s *Stats) String() string {
	return fmt.Sprintf("chip cycles=%d tiles=%d instrs=%d %s", s.Cycles, s.Tiles, s.Work.Instrs, s.Plans)
}

// tileResult carries one tile's outputs back to the assembler.
type tileResult struct {
	n, c1 int
	outs  []*tensor.Tensor
	stats *aicore.Stats
	err   error
}

// tileRun executes one (n, c1) tile on a simulated core.
type tileRun func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error)

// tileFallback computes one tile on the host-side golden model
// (internal/ref), for graceful degradation when hardware retries are
// exhausted.
type tileFallback func(ni, ci int) ([]*tensor.Tensor, error)

// runScope threads one entry-point invocation's trace context through
// the tile executors: the chip_run span, the plan_lookup span's ID (the
// causal anchor every tile_exec span links back to), and the capture
// slot Stats.TileTrace is filled from. All methods are safe on a scope
// whose tracing is disabled (and, for the executors' benefit, on a nil
// scope).
type runScope struct {
	c      *Chip
	kernel string
	span   *trace.ActiveSpan // chip_run; nil when tracing is off
	planID trace.SpanID      // plan_lookup span; 0 when tracing is off

	mu        sync.Mutex
	tileTrace *aicore.Trace
}

// beginRun opens the chip_run span for one entry-point invocation.
func (c *Chip) beginRun(kernel string) *runScope {
	return &runScope{c: c, kernel: kernel, span: c.cfg.Trace.StartSpan("chip_run", "impl", kernel)}
}

func (rs *runScope) ctx() trace.Ctx {
	if rs == nil {
		return trace.Ctx{}
	}
	return rs.span.Ctx()
}

// plan wraps the plan-cache lookup in a plan_lookup span. The cache
// sets outcome=hit|miss on it and nests the plan_compile span (with its
// cert/opt/sched children) under it on a miss.
func (rs *runScope) plan(get func(trace.Ctx) (*ops.Plan, error)) (*ops.Plan, error) {
	ls := rs.ctx().StartSpan("plan_lookup", "impl", rs.kernel)
	pl, err := get(ls.Ctx())
	if ls != nil {
		rs.planID = ls.ID()
		ls.End()
	}
	return pl, err
}

// tileSpan opens one tile attempt's tile_exec span, linked to the run's
// plan_lookup span. Returns nil when tracing is off.
func (rs *runScope) tileSpan(core, n, c1 int) *trace.ActiveSpan {
	if rs == nil {
		return nil
	}
	s := rs.ctx().StartSpan("tile_exec",
		"core", strconv.Itoa(core), "n", strconv.Itoa(n), "c1", strconv.Itoa(c1))
	if s != nil {
		s.Link("plan", rs.planID)
	}
	return s
}

// stashTrace keeps the first captured tile schedule for Stats.TileTrace.
func (rs *runScope) stashTrace(tr *aicore.Trace) {
	if rs == nil || tr == nil {
		return
	}
	rs.mu.Lock()
	if rs.tileTrace == nil {
		rs.tileTrace = tr
	}
	rs.mu.Unlock()
}

// capturing reports whether tile (n, c1)'s schedule should be captured
// for Stats.TileTrace.
func (rs *runScope) capturing(n, c1 int) bool {
	return rs != nil && rs.c.cfg.CaptureTrace && n == 0 && c1 == 0
}

// end closes the chip_run span with the run's outcome and attaches the
// captured tile schedule to the outgoing stats.
func (rs *runScope) end(st *Stats, err error) {
	if st != nil {
		rs.mu.Lock()
		st.TileTrace = rs.tileTrace
		rs.mu.Unlock()
	}
	if rs.span == nil {
		return
	}
	if err != nil {
		rs.span.SetAttr("outcome", "error")
	} else {
		rs.span.SetAttr("outcome", "ok")
	}
	rs.span.End()
}

// tileJob is one (n, c1) grid cell awaiting execution.
type tileJob struct{ n, c1 int }

// tileGrid enumerates the (n, c1) grid in row-major order.
func tileGrid(n, c1 int) []tileJob {
	jobs := make([]tileJob, 0, n*c1)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			jobs = append(jobs, tileJob{ni, ci})
		}
	}
	return jobs
}

// runTiles fans the (n, c1) tile grid across simulated cores round-robin
// and host goroutines, then aggregates stats: serial within a core,
// parallel across cores. A core stops at its first failing tile; the
// failures of all cores are joined into one error. With Config.Context
// set, the first failure (or the caller's cancellation) interrupts every
// in-flight core instead of letting each run to its own first failure.
// With Resilience.Enabled, execution goes through the fault-tolerant
// executor (resilience.go) instead: watchdog, retry/requeue, degradation.
func (c *Chip) runTiles(rs *runScope, n, c1 int, run tileRun, fb tileFallback) ([][]tileResult, *Stats, error) {
	jobs := tileGrid(n, c1)
	if c.cfg.Resilience.Enabled {
		return c.runTilesResilient(rs, jobs, run, fb)
	}
	perCore := make([][]tileJob, c.cfg.Cores)
	for i, j := range jobs {
		perCore[i%c.cfg.Cores] = append(perCore[i%c.cfg.Cores], j)
	}

	// With a caller context, one cancellation covers the caller's own
	// deadline and run-internal fail-fast; without one, behavior stays
	// the legacy run-to-first-failure-per-core.
	var done <-chan struct{}
	var cancel context.CancelFunc
	if c.cfg.Context != nil {
		var runCtx context.Context
		runCtx, cancel = context.WithCancel(c.cfg.Context)
		defer cancel()
		done = runCtx.Done()
	}

	results := make([][]tileResult, c.cfg.Cores)
	var wg sync.WaitGroup
	for coreIdx := 0; coreIdx < c.cfg.Cores; coreIdx++ {
		if len(perCore[coreIdx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			core := c.newCore()
			core.Cancel = done
			// cycOff places this core's tile_exec spans on its own
			// simulated-cycle axis: tiles run back to back on one core.
			var cycOff int64
			for _, j := range perCore[idx] {
				var capture *aicore.Trace
				if rs.capturing(j.n, j.c1) {
					capture = &aicore.Trace{}
					core.Trace = capture
				}
				ts := rs.tileSpan(idx, j.n, j.c1)
				start := time.Now()
				outs, st, err := run(core, j.n, j.c1)
				wall := time.Since(start).Nanoseconds()
				if capture != nil {
					core.Trace = nil
				}
				results[idx] = append(results[idx], tileResult{n: j.n, c1: j.c1, outs: outs, stats: st, err: err})
				if err != nil {
					if ts != nil {
						ts.SetAttr("outcome", "error")
						ts.End()
					}
					if cancel != nil {
						cancel()
					}
					return
				}
				if ts != nil {
					ts.SetAttr("outcome", "ok")
					ts.SetCycles(cycOff, cycOff+st.Cycles)
					ts.End()
				}
				cycOff += st.Cycles
				rs.stashTrace(capture)
				// Lock-free atomic updates from every worker at once: the
				// concurrent path the registry is built for.
				c.tiles.Inc()
				c.tileCycles.Observe(st.Cycles)
				c.tileWall.Observe(wall)
				c.tileAttempts.Observe(1)
				c.tileInstrs.Add(st.Instrs)
				c.bytesIn.Add(st.BytesIn)
				c.bytesOut.Add(st.BytesOut)
			}
		}(coreIdx)
	}
	wg.Wait()

	stats := &Stats{CoreCycles: make([]int64, c.cfg.Cores), Tiles: len(jobs)}
	var errs, interrupted []error
	for idx, rs := range results {
		coreTotal := &aicore.Stats{}
		for _, r := range rs {
			if r.err != nil {
				wrapped := fmt.Errorf("chip: core %d tile (%d,%d): %w", idx, r.n, r.c1, r.err)
				if errors.Is(r.err, aicore.ErrInterrupted) {
					// Secondary casualty of the fail-fast cancellation (or
					// of the caller's context); keep it out of the join
					// unless nothing more primary exists.
					interrupted = append(interrupted, wrapped)
				} else {
					errs = append(errs, wrapped)
				}
				continue
			}
			coreTotal.AddSerial(r.stats)
		}
		stats.CoreCycles[idx] = coreTotal.Cycles
		stats.Work.AddParallel(coreTotal)
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	if len(interrupted) > 0 {
		return nil, nil, errors.Join(interrupted...)
	}
	stats.Cycles = stats.Work.Cycles
	stats.Plans = c.plans.Stats()
	stats.Perf = c.perfReports()
	stats.Metrics = c.metrics.Snapshot()
	return results, stats, nil
}

func checkFractalInput(in *tensor.Tensor) (n, c1 int, err error) {
	if len(in.Shape) != 5 || in.Shape[4] != tensor.C0 {
		return 0, 0, fmt.Errorf("chip: want an NC1HWC0 tensor, got %v", in.Shape)
	}
	return in.Shape[0], in.Shape[1], nil
}

// MaxPoolForward runs a forward Maxpool variant ("standard", "im2col",
// "expansion" or "xysplit") over a full NC1HWC0 tensor. The variant is
// compiled once through the chip's plan cache, then replayed per tile.
func (c *Chip) MaxPoolForward(variant string, in *tensor.Tensor, p isa.ConvParams) (out *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("maxpool_fwd_" + variant)
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.MaxPoolForward(ct, variant, c.spec, p)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	return c.poolForward(rs, pl, in, p, func(ni, ci int) ([]*tensor.Tensor, error) {
		return []*tensor.Tensor{ref.MaxPoolForward(tensor.SliceC1(in, ni, ci), p)}, nil
	})
}

// AvgPoolForward runs a forward Avgpool variant ("standard", "im2col" or
// "cube").
func (c *Chip) AvgPoolForward(variant string, in *tensor.Tensor, p isa.ConvParams) (out *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("avgpool_fwd_" + variant)
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.AvgPoolForward(ct, variant, c.spec, p)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	return c.poolForward(rs, pl, in, p, func(ni, ci int) ([]*tensor.Tensor, error) {
		return []*tensor.Tensor{ref.AvgPoolForward(tensor.SliceC1(in, ni, ci), p)}, nil
	})
}

func (c *Chip) poolForward(rs *runScope, pl *ops.Plan, in *tensor.Tensor, p isa.ConvParams, fb tileFallback) (*tensor.Tensor, *Stats, error) {
	n, c1, err := checkFractalInput(in)
	if err != nil {
		return nil, nil, err
	}
	oh, ow := p.OutDims()
	out := tensor.New(n, c1, oh, ow, tensor.C0)
	results, stats, err := c.runTiles(rs, n, c1, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, tensor.SliceC1(in, ni, ci))
	}, fb)
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			tensor.StoreC1(out, r.outs[0], r.n, r.c1)
		}
	}
	return out, stats, nil
}

// MaxPoolForwardArgmax runs a Fig. 7b variant ("standard" or "im2col"),
// returning the pooled output and the argmax mask in the Im2Col shape
// (N, C1, Kh, Kw, OhOw16, C0).
func (c *Chip) MaxPoolForwardArgmax(variant string, in *tensor.Tensor, p isa.ConvParams) (out, mask *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("maxpool_fwd_argmax_" + variant)
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.MaxPoolForwardArgmax(ct, variant, c.spec, p)
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chip: %w", err)
	}
	n, c1, err := checkFractalInput(in)
	if err != nil {
		return nil, nil, nil, err
	}
	oh, ow := p.OutDims()
	out = tensor.New(n, c1, oh, ow, tensor.C0)
	mask = tensor.New(n, c1, p.Kh, p.Kw, p.PaddedPatches(), tensor.C0)
	results, stats, err := c.runTiles(rs, n, c1, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, tensor.SliceC1(in, ni, ci))
	}, func(ni, ci int) ([]*tensor.Tensor, error) {
		tile := tensor.SliceC1(in, ni, ci)
		return []*tensor.Tensor{ref.MaxPoolForward(tile, p), ref.ArgmaxMask(tile, p)}, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			tensor.StoreC1(out, r.outs[0], r.n, r.c1)
			tensor.StoreOuter2(mask, r.outs[1], r.n, r.c1)
		}
	}
	return out, mask, stats, nil
}

// MaxPoolBackward runs a Fig. 7c variant ("standard" or "col2im"). mask is
// the saved argmax mask; grad has the output shape (N, C1, Oh, Ow, C0).
// The result has the input shape (N, C1, Ih, Iw, C0).
func (c *Chip) MaxPoolBackward(variant string, mask, grad *tensor.Tensor, p isa.ConvParams) (out *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("maxpool_bwd_" + variant)
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.MaxPoolBackward(ct, variant, c.spec, p)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	if len(mask.Shape) != 6 {
		return nil, nil, fmt.Errorf("chip: want a 6-d argmax mask, got %v", mask.Shape)
	}
	n, c1 := mask.Shape[0], mask.Shape[1]
	out = tensor.New(n, c1, p.Ih, p.Iw, tensor.C0)
	results, stats, err := c.runTiles(rs, n, c1, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, tensor.SliceOuter2(mask, ni, ci), tensor.SliceC1(grad, ni, ci))
	}, func(ni, ci int) ([]*tensor.Tensor, error) {
		mg := ref.MaxPoolBackward(tensor.SliceOuter2(mask, ni, ci), tensor.SliceC1(grad, ni, ci), p, p.Ih, p.Iw)
		return []*tensor.Tensor{mg}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			tensor.StoreC1(out, r.outs[0], r.n, r.c1)
		}
	}
	return out, stats, nil
}

// AvgPoolBackward propagates Avgpool gradients (useCol2im selects the
// accelerated merge, §V-C).
func (c *Chip) AvgPoolBackward(grad *tensor.Tensor, p isa.ConvParams, useCol2im bool) (out *tensor.Tensor, st *Stats, err error) {
	kernel := "avgpool_bwd_standard"
	if useCol2im {
		kernel = "avgpool_bwd_col2im"
	}
	rs := c.beginRun(kernel)
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.AvgPoolBackward(ct, c.spec, p, useCol2im)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	n, c1, err := checkFractalInput(grad)
	if err != nil {
		return nil, nil, err
	}
	out = tensor.New(n, c1, p.Ih, p.Iw, tensor.C0)
	results, stats, err := c.runTiles(rs, n, c1, func(core *aicore.Core, ni, ci int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, tensor.SliceC1(grad, ni, ci))
	}, func(ni, ci int) ([]*tensor.Tensor, error) {
		return []*tensor.Tensor{ref.AvgPoolBackward(tensor.SliceC1(grad, ni, ci), p, p.Ih, p.Iw)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			tensor.StoreC1(out, r.outs[0], r.n, r.c1)
		}
	}
	return out, stats, nil
}

// Conv2D runs convolution on the Cube unit. The channel reduction needs
// the whole C1 extent on one core, so parallelization is across the batch
// dimension only.
func (c *Chip) Conv2D(in, weights *tensor.Tensor, p isa.ConvParams) (out *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("conv2d_im2col_cube")
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
		return nil, nil, fmt.Errorf("chip: want (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.Conv2D(ct, c.spec, p, weights.Shape[0], weights.Shape[1])
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	n, _, err := checkFractalInput(in)
	if err != nil {
		return nil, nil, err
	}
	co1 := tensor.C1Of(weights.Shape[0])
	oh, ow := p.OutDims()
	out = tensor.New(n, co1, oh, ow, tensor.C0)
	imgBytes := in.Shape[1] * p.Ih * p.Iw * tensor.C0 * 2
	sliceImg := func(ni int) *tensor.Tensor {
		img := tensor.New(1, in.Shape[1], p.Ih, p.Iw, tensor.C0)
		copy(img.Data, in.Data[ni*imgBytes:(ni+1)*imgBytes])
		return img
	}
	results, stats, err := c.runTiles(rs, n, 1, func(core *aicore.Core, ni, _ int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, sliceImg(ni), weights)
	}, func(ni, _ int) ([]*tensor.Tensor, error) {
		return []*tensor.Tensor{ref.Conv2D(sliceImg(ni), weights, p)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			off := r.n * r.outs[0].Bytes()
			copy(out.Data[off:off+r.outs[0].Bytes()], r.outs[0].Data)
		}
	}
	return out, stats, nil
}

// Conv2DBackwardData propagates convolution gradients to the layer input
// (batch-parallel across cores, like Conv2D). c is the logical input
// channel count.
func (c *Chip) Conv2DBackwardData(grad, weights *tensor.Tensor, p isa.ConvParams, channels int) (out *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("conv2d_bwd_data")
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	if len(weights.Shape) != 4 || weights.Shape[2] != p.Kh || weights.Shape[3] != p.Kw {
		return nil, nil, fmt.Errorf("chip: want (Co,C,%d,%d) weights, got %v", p.Kh, p.Kw, weights.Shape)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.Conv2DBackwardData(ct, c.spec, p, weights.Shape[0], channels)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	n, _, err := checkFractalInput(grad)
	if err != nil {
		return nil, nil, err
	}
	c1 := tensor.C1Of(channels)
	out = tensor.New(n, c1, p.Ih, p.Iw, tensor.C0)
	oh, ow := p.OutDims()
	gradBytes := grad.Shape[1] * oh * ow * tensor.C0 * 2
	sliceGrad := func(ni int) *tensor.Tensor {
		g := tensor.New(1, grad.Shape[1], oh, ow, tensor.C0)
		copy(g.Data, grad.Data[ni*gradBytes:(ni+1)*gradBytes])
		return g
	}
	results, stats, err := c.runTiles(rs, n, 1, func(core *aicore.Core, ni, _ int) ([]*tensor.Tensor, *aicore.Stats, error) {
		return pl.Run(core, sliceGrad(ni), weights)
	}, func(ni, _ int) ([]*tensor.Tensor, error) {
		return []*tensor.Tensor{ref.Conv2DBackwardData(sliceGrad(ni), weights, p, channels)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			off := r.n * r.outs[0].Bytes()
			copy(out.Data[off:off+r.outs[0].Bytes()], r.outs[0].Data)
		}
	}
	return out, stats, nil
}

// Conv2DBackwardWeights computes the convolution weight gradient
// dW = dY^T x im2col(x), summing contributions over the batch. co and
// channels are the logical output/input channel counts.
func (c *Chip) Conv2DBackwardWeights(grad, x *tensor.Tensor, p isa.ConvParams, co, channels int) (dw *tensor.Tensor, st *Stats, err error) {
	rs := c.beginRun("conv2d_bwd_weights")
	defer func() { rs.end(st, err) }()
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	pl, err := rs.plan(func(ct trace.Ctx) (*ops.Plan, error) {
		return c.plans.Conv2DBackwardWeights(ct, c.spec, p, co, channels)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chip: %w", err)
	}
	n, _, err := checkFractalInput(grad)
	if err != nil {
		return nil, nil, err
	}
	oh, ow := p.OutDims()
	gradBytes := grad.Shape[1] * oh * ow * tensor.C0 * 2
	xBytes := x.Shape[1] * p.Ih * p.Iw * tensor.C0 * 2
	sliceBatch := func(ni int) (*tensor.Tensor, *tensor.Tensor) {
		g := tensor.New(1, grad.Shape[1], oh, ow, tensor.C0)
		copy(g.Data, grad.Data[ni*gradBytes:(ni+1)*gradBytes])
		xi := tensor.New(1, x.Shape[1], p.Ih, p.Iw, tensor.C0)
		copy(xi.Data, x.Data[ni*xBytes:(ni+1)*xBytes])
		return g, xi
	}
	results, stats, err := c.runTiles(rs, n, 1, func(core *aicore.Core, ni, _ int) ([]*tensor.Tensor, *aicore.Stats, error) {
		g, xi := sliceBatch(ni)
		return pl.Run(core, g, xi)
	}, func(ni, _ int) ([]*tensor.Tensor, error) {
		g, xi := sliceBatch(ni)
		return []*tensor.Tensor{ref.Conv2DBackwardWeights(g, xi, p, co, channels)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	dw = tensor.New(co, channels, p.Kh, p.Kw)
	for _, rs := range results {
		for _, r := range rs {
			for i := 0; i < dw.Len(); i++ {
				dw.SetFlat(i, fp16.Add(dw.AtFlat(i), r.outs[0].AtFlat(i)))
			}
		}
	}
	return dw, stats, nil
}
