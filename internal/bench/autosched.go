package bench

import (
	"fmt"
	"time"

	"davinci/internal/kernelcases"
	"davinci/internal/ops"
	_ "davinci/internal/sched" // registers the autoscheduler ops dispatches to
	"davinci/internal/trace"
	"davinci/internal/workloads"
)

// AutoschedSweep compiles every built-in kernel on every Table I layer
// under an AutoSchedule spec and reports searched vs hand-tuned cycles
// per program. Both cycle columns come from the search's own report
// (aicore.Time, the exact implicit-sync makespan Run would measure). A
// searched schedule slower than the hand-tuned default on any program is
// an error: this is the CI regression gate — the search may only ever
// match or beat the hand-written lowerings, because every accepted
// schedule had to win under the cycle oracle and pass the validation
// gate (lint-clean, bound invariant, bit-identical outputs). Per-program
// cycles land in o.Metrics as bench_cycles gauges under impl
// "<kernel>/default" and "<kernel>/auto", next to the plan-cache
// sched_candidates / sched_accepted / sched_cycles_saved counters the
// searching plans bump.
func AutoschedSweep(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Autoschedule sweep: every kernel on every layer, searched schedule vs hand-tuned default",
		Note:       "cycles are the scheduled makespan (aicore.Time); every accepted schedule passed the validation gate",
		Columns:    []string{"default", "auto", "saved", "speedup"},
	}
	spec := ops.Spec{Buffers: o.Chip.Buffers, AutoSchedule: true}
	cache := ops.NewPlanCache()
	if o.Metrics != nil {
		cache = ops.NewPlanCacheOn(o.Metrics)
	}
	skipped, faster, accepted := 0, 0, 0
	var wall time.Duration
	for _, layer := range workloads.TableI {
		p := layer.Params()
		for _, kc := range kernelcases.All() {
			key := ops.PlanKey{Kernel: kc.Name, Params: p, Spec: spec}
			pl, err := cache.Get(o.Trace, key, func(trace.Ctx) (*ops.Plan, error) { return kc.Plan(spec, p) })
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					skipped++
					continue
				}
				return nil, fmt.Errorf("bench: %s %dx%dx%d: %w", kc.Name, layer.H, layer.W, layer.C, err)
			}
			a := pl.Auto
			if a == nil {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: autoschedule spec produced no search report", kc.Name, layer.H, layer.W, layer.C)
			}
			if a.Cycles > a.BaselineCycles {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: searched schedule slower than hand-tuned: %s", kc.Name, layer.H, layer.W, layer.C, a.Summary())
			}
			if a.Accepted {
				accepted++
			}
			if a.Cycles < a.BaselineCycles {
				faster++
			}
			wall += time.Duration(a.WallNanos)
			label := fmt.Sprintf("%-26s %3dx%3dx%4d", kc.Name, layer.H, layer.W, layer.C)
			t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
				float64(a.BaselineCycles), float64(a.Cycles),
				float64(a.Saved()), float64(a.BaselineCycles) / float64(a.Cycles),
			}})
			input := fmt.Sprintf("%dx%dx%d", layer.H, layer.W, layer.C)
			o.record("autosched", input, kc.Name+"/default", float64(a.BaselineCycles))
			o.record("autosched", input, kc.Name+"/auto", float64(a.Cycles))
		}
	}
	t.Note += fmt.Sprintf("; %d/%d programs faster (%d schedules accepted), %d capacity skips; search wall time %v",
		faster, len(t.Rows), accepted, skipped, wall.Round(time.Millisecond))
	t.Plans = cache.Stats()
	return t, nil
}
