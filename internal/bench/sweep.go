package bench

import (
	"fmt"
	"math/rand"

	"davinci/internal/aicore"
	"davinci/internal/kernelcases"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// TableISweep runs every built-in kernel on every Table I layer on a
// single traced AI Core, checking the cycle-accounting identity
// (busy + stalls + idle = makespan on every pipe) and the static bound
// relation (total stalls >= simulated - busy bound) for each program.
// Per-program cycles and stalls land in o.Metrics as bench_cycles /
// bench_stall_cycles gauges, and stall cycles aggregate by cause into
// sweep_stall_cycles counters — the payload CI archives as
// BENCH_<rev>.json. Shapes a kernel cannot schedule are skipped, like
// the chip-level tiling would; an identity violation is an error.
func TableISweep(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Table I sweep: every kernel on every layer (single core, traced)",
		Note:       "cycles with static bounds and attributed stalls; accounting identity checked per program",
		Columns:    []string{"cycles", "stall", "busy bound", "crit path"},
	}
	rng := rand.New(rand.NewSource(o.Seed))
	spec := ops.Spec{Buffers: o.Chip.Buffers}
	skipped := 0
	for _, layer := range workloads.TableI {
		p := layer.Params()
		for _, kc := range kernelcases.All() {
			pl, err := kc.Plan(spec, p)
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					skipped++
					continue
				}
				return nil, fmt.Errorf("bench: %s %dx%dx%d: %w", kc.Name, layer.H, layer.W, layer.C, err)
			}
			core := aicore.New(o.Chip.Buffers, o.Chip.Cost)
			core.Serialize = o.Chip.Serialize
			core.Trace = &aicore.Trace{}
			_, st, err := pl.Run(core, kc.Inputs(rng, p)...)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: %w", kc.Name, layer.H, layer.W, layer.C, err)
			}
			acct, err := obs.Account(core.Trace)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: accounting identity: %w", kc.Name, layer.H, layer.W, layer.C, err)
			}
			if acct.TotalStall < st.Cycles-pl.Perf.BusyBound {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: attributed stalls %d < simulated %d - busy bound %d",
					kc.Name, layer.H, layer.W, layer.C, acct.TotalStall, st.Cycles, pl.Perf.BusyBound)
			}
			label := fmt.Sprintf("%-26s %3dx%3dx%4d", kc.Name, layer.H, layer.W, layer.C)
			t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
				float64(st.Cycles), float64(acct.TotalStall),
				float64(pl.Perf.BusyBound), float64(pl.Perf.CritPath),
			}})
			if o.Metrics != nil {
				input := fmt.Sprintf("%dx%dx%d", layer.H, layer.W, layer.C)
				o.Metrics.Gauge("bench_cycles", "experiment", "sweep", "input", input, "impl", kc.Name).Set(st.Cycles)
				o.Metrics.Gauge("bench_stall_cycles", "experiment", "sweep", "input", input, "impl", kc.Name).Set(acct.TotalStall)
				for c := aicore.StallCause(0); c < aicore.NumStallCauses; c++ {
					if v := acct.ByCause[c]; v > 0 {
						o.Metrics.Counter("sweep_stall_cycles", "cause", c.String()).Add(v)
					}
				}
				o.Metrics.Histogram("sweep_program_cycles", nil).Observe(st.Cycles)
			}
		}
	}
	t.Note += fmt.Sprintf("; %d kernel x layer programs checked, %d capacity skips", len(t.Rows), skipped)
	return t, nil
}
