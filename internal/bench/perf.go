package bench

import (
	"fmt"

	"davinci/internal/isa"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// PerfTable reports the static performance analysis (internal/lint/perf)
// of the Fig. 7 kernel pairs on the three InceptionV3 layers: cycle
// bounds, mean repeat length, and vector lane occupancy. No simulation
// runs — every number comes from the compiled instruction stream — so
// the table isolates the paper's utilization argument: the direct
// lowerings issue many short-repeat, 16-lane instructions (low
// occupancy), while the Im2Col/Col2Im forms issue few long-repeat,
// full-width ones.
func PerfTable(o Options) (*Table, error) {
	t := &Table{
		Experiment: "perf: static utilization, Fig. 7 InceptionV3 layers",
		Note:       "static bounds and utilization from the compiled programs (no simulation)",
		Columns:    []string{"instrs", "crit path", "busy bound", "mean repeat", "lane occ %", "warnings"},
	}
	kernels := []struct {
		name string
		plan func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error)
	}{
		{"maxpool-fwd/standard", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolForward("standard", s, p)
		}},
		{"maxpool-fwd/im2col", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolForward("im2col", s, p)
		}},
		{"maxpool-argmax/standard", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolForwardArgmax("standard", s, p)
		}},
		{"maxpool-argmax/im2col", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolForwardArgmax("im2col", s, p)
		}},
		{"maxpool-bwd/standard", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolBackward("standard", s, p)
		}},
		{"maxpool-bwd/col2im", func(s ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanMaxPoolBackward("col2im", s, p)
		}},
	}
	spec := ops.Spec{Buffers: o.Chip.Buffers}
	for _, l := range workloads.InceptionV3Fig7() {
		p := l.Params()
		for _, k := range kernels {
			pl, err := k.plan(spec, p)
			if err != nil {
				return nil, fmt.Errorf("perf: %s %dx%d: %w", k.name, l.H, l.W, err)
			}
			r := pl.Perf
			meanRepeat := 0.0
			if r.Vector.Instrs > 0 {
				meanRepeat = float64(r.Vector.Repeats) / float64(r.Vector.Instrs)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s %dx%dx%d", k.name, l.H, l.W, l.C),
				Values: []float64{
					float64(r.Instrs),
					float64(r.CritPath),
					float64(r.BusyBound),
					meanRepeat,
					100 * r.Vector.MeanOccupancy,
					float64(len(r.Diags)),
				},
			})
		}
	}
	return t, nil
}
