package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"davinci/internal/isa"
	"davinci/internal/kernelcases"
	"davinci/internal/lint/sym"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// CertSweep measures what certificate-backed admission buys at compile
// time. It proves the default-pattern certificate registry
// (sym.ProveDefaults), then compiles every certified pooling kernel on
// every in-domain Table I layer twice under a Strict spec — once with
// concrete lint (no certifier installed) and once with the registry
// installed, where in-domain shapes skip the lint pass entirely — and
// reports the wall-time and heap-allocation deltas. A bounded randomized
// cross-check re-establishes agreement with the concrete verifier inside
// the same run. The sweep is the CI evidence that certification is both
// profitable (cert hits happen, certified compiles allocate less) and
// sound (zero divergences); either failing is an error.
func CertSweep(o Options) (*Table, error) {
	cfg := o.Chip.Buffers.Normalized()
	proveStart := time.Now()
	certs := sym.ProveDefaults(cfg)
	proveWall := time.Since(proveStart)
	reg := sym.NewRegistry()
	reg.Add(certs...)

	admitted, total := 0, 0
	for _, c := range certs {
		a, t := c.Coverage()
		admitted += a
		total += t
	}
	if o.Metrics != nil {
		o.Metrics.Gauge("cert_certificates").Set(int64(len(certs)))
		o.Metrics.Gauge("cert_admitted_shapes").Set(int64(admitted))
	}

	// The compile set: every certified kernel on every Table I layer its
	// certified domain covers (the direct lowerings' domains stop at the
	// proving-tractability cap, so their large layers are excluded rather
	// than measured as guaranteed fallbacks).
	type unit struct {
		kc kernelcases.Case
		p  isa.ConvParams
	}
	var units []unit
	inDomain := map[string]bool{}
	for _, k := range sym.Kernels() {
		inDomain[k] = true
	}
	for _, kc := range kernelcases.All() {
		if !inDomain[kc.Name] {
			continue
		}
		for _, l := range workloads.TableI {
			p := l.Params()
			for _, d := range sym.DomainsFor(kc.Name) {
				if d.Contains(p) {
					units = append(units, unit{kc, p})
					break
				}
			}
		}
	}

	// One measured pass: every unit compiled under a Strict spec, wall
	// nanos and heap allocations aggregated per kernel. hits counts plans
	// whose lint pass was skipped under a certificate (Plan.Certified).
	type agg struct {
		compiles, hits, skips int
		nanos, allocs         int64
	}
	spec := ops.Spec{Buffers: cfg, Strict: true}
	pass := func() (map[string]*agg, error) {
		out := map[string]*agg{}
		for _, u := range units {
			a := out[u.kc.Name]
			if a == nil {
				a = &agg{}
				out[u.kc.Name] = a
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			pl, cerr := u.kc.Plan(spec, u.p)
			wall := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&ms1)
			if cerr != nil {
				if kernelcases.IsCapacitySkip(cerr) {
					a.skips++
					continue
				}
				return nil, fmt.Errorf("bench: certsweep %s %dx%d: %w", u.kc.Name, u.p.Ih, u.p.Iw, cerr)
			}
			a.compiles++
			a.nanos += wall
			a.allocs += int64(ms1.TotalAlloc - ms0.TotalAlloc)
			if pl.Certified {
				a.hits++
			}
		}
		return out, nil
	}
	sum := func(m map[string]*agg) (compiles, hits int, nanos, allocs int64) {
		for _, a := range m {
			compiles += a.compiles
			hits += a.hits
			nanos += a.nanos
			allocs += a.allocs
		}
		return
	}

	// Pass 1: strict compiles against concrete lint.
	sym.Uninstall()
	strict, err := pass()
	if err != nil {
		return nil, err
	}
	strictCompiles, strictHits, strictNanos, strictAllocs := sum(strict)
	if strictHits != 0 {
		return nil, fmt.Errorf("bench: certsweep: %d plans certified with no certifier installed", strictHits)
	}

	// Pass 2: the same compiles with the registry admitting in-domain
	// shapes (and bumping the cert_hits / cert_fallbacks / cert_misses
	// counters on the run's metrics registry).
	reg.Install(o.Metrics)
	defer sym.Uninstall()
	cert, err := pass()
	if err != nil {
		return nil, err
	}
	_, hits, certNanos, certAllocs := sum(cert)

	// The bounded agreement check, inside the same artifact.
	cross := sym.CrossCheckRandom(reg, cfg, 200, o.Seed)
	if o.Metrics != nil {
		o.Metrics.Gauge("cert_crosscheck_programs").Set(int64(cross.Programs))
		o.Metrics.Gauge("cert_crosscheck_divergences").Set(int64(len(cross.Divergences)))
		o.Metrics.Gauge("cert_compile_nanos", "impl", "strict").Set(strictNanos)
		o.Metrics.Gauge("cert_compile_nanos", "impl", "certified").Set(certNanos)
		o.Metrics.Gauge("cert_compile_allocs", "impl", "strict").Set(strictAllocs)
		o.Metrics.Gauge("cert_compile_allocs", "impl", "certified").Set(certAllocs)
	}

	// Gates: divergence-free, hits happened, certified compiles do less
	// allocation work (wall time is reported but not gated — it is noisy
	// on loaded machines; allocations are the deterministic proxy).
	if len(cross.Divergences) > 0 {
		return nil, fmt.Errorf("bench: certsweep: %d cross-check divergence(s), first: %s",
			len(cross.Divergences), cross.Divergences[0])
	}
	if hits == 0 {
		return nil, fmt.Errorf("bench: certsweep: no compile was admitted by a certificate")
	}
	if certAllocs >= strictAllocs {
		return nil, fmt.Errorf("bench: certsweep: certified compiles allocate no less than strict ones (%d vs %d bytes)",
			certAllocs, strictAllocs)
	}

	kernels := make([]string, 0, len(strict))
	for k := range strict {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	t := &Table{
		Experiment: "Certification sweep: strict compile cost, concrete lint vs certificate admission",
		Note: fmt.Sprintf("registry: %d default-pattern certificates admitting %d/%d shapes (proved in %v); "+
			"%d compiles/pass, %d admitted under certificates; cross-check: %s",
			len(certs), admitted, total, proveWall.Round(time.Millisecond),
			strictCompiles, hits, cross.Summary()),
		Columns: []string{"compiles", "hits", "strict us", "cert us", "strict KB", "cert KB", "alloc speedup"},
	}
	for _, k := range kernels {
		s, c := strict[k], cert[k]
		ratio := 0.0
		if c.allocs > 0 {
			ratio = float64(s.allocs) / float64(c.allocs)
		}
		t.Rows = append(t.Rows, Row{Label: k, Values: []float64{
			float64(s.compiles), float64(c.hits),
			float64(s.nanos) / 1e3, float64(c.nanos) / 1e3,
			float64(s.allocs) / 1024, float64(c.allocs) / 1024,
			ratio,
		}})
	}
	return t, nil
}
