package bench

import (
	"strings"
	"testing"

	"davinci/internal/obs"
)

// TestServeLoadSmokeConservation runs the serving load profile end to end
// and checks the published gauges: the deterministic smoke cell completes
// everything (the trend-gated goodput), and no cell loses a request.
func TestServeLoadSmokeConservation(t *testing.T) {
	reg := obs.NewRegistry()
	tbl, err := ServeLoad(Options{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 cells, got %d", len(tbl.Rows))
	}
	snap := reg.Snapshot()
	if v, ok := snap.GaugeValue("serve_goodput", "experiment", "serveload", "input", "smoke"); !ok || v != 48 {
		t.Fatalf("smoke goodput gauge = %d (present=%v), want 48", v, ok)
	}
	if v, ok := snap.GaugeValue("serve_shed_requests", "experiment", "serveload", "input", "smoke"); !ok || v != 0 {
		t.Fatalf("smoke shed gauge = %d (present=%v), want 0", v, ok)
	}
	for _, row := range tbl.Rows {
		cell := row.Label
		if v, ok := snap.GaugeValue("serve_lost_requests", "experiment", "serveload", "input", cell); !ok || v != 0 {
			t.Fatalf("cell %s: lost gauge = %d (present=%v), want 0", cell, v, ok)
		}
		// offered == completed + degraded + rejected + cancelled per row.
		if sum := row.Values[1] + row.Values[2] + row.Values[3] + row.Values[4]; sum != row.Values[0] {
			t.Fatalf("cell %s: outcomes sum to %.0f, offered %.0f", cell, sum, row.Values[0])
		}
	}
	var b strings.Builder
	tbl.Format(&b)
	if !strings.Contains(b.String(), "smoke") {
		t.Fatal("formatted table missing the smoke row")
	}
}
