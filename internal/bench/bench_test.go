package bench

import (
	"bytes"
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/chip"
)

// smallOpts shrinks the device so the full experiment suite runs quickly
// in unit tests; the real figures use the defaults via cmd/davinci-bench.
func smallOpts() Options {
	return Options{
		Chip: chip.Config{Cores: 4, Buffers: buffer.Config{UBSize: 64 << 10}},
		Seed: 1,
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4 networks", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	for _, want := range []string{"InceptionV3", "147,147,64", "VGG16", "224,224,64"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestFig8SmallDevice(t *testing.T) {
	for _, stride := range []int{1, 2, 3} {
		tab, err := Fig8(stride, smallOpts())
		if err != nil {
			t.Fatalf("stride %d: %v", stride, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("stride %d: empty sweep", stride)
		}
		wantCols := 3
		if stride == 2 {
			wantCols = 4
		}
		if len(tab.Columns) != wantCols {
			t.Errorf("stride %d: %d columns", stride, len(tab.Columns))
		}
		// Cycle counts grow with input size for every variant.
		last := tab.Rows[len(tab.Rows)-1]
		first := tab.Rows[0]
		for i := range tab.Columns {
			if last.Values[i] <= first.Values[i] {
				t.Errorf("stride %d col %s: cycles not increasing (%v .. %v)",
					stride, tab.Columns[i], first.Values[i], last.Values[i])
			}
		}
	}
}

// The paper's qualitative Fig. 8 conclusions at the largest swept size:
// stride (1,1) favors the direct implementation; strides (2,2) and (3,3)
// favor Im2col.
func TestFig8Shape(t *testing.T) {
	o := smallOpts()
	col := func(tab *Table, name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %s", name)
		return -1
	}
	s1, err := Fig8(1, o)
	if err != nil {
		t.Fatal(err)
	}
	last := s1.Rows[len(s1.Rows)-1]
	if last.Values[col(s1, "standard")] >= last.Values[col(s1, "im2col")] {
		t.Errorf("stride 1: standard (%v) must beat im2col (%v)",
			last.Values[col(s1, "standard")], last.Values[col(s1, "im2col")])
	}
	for _, stride := range []int{2, 3} {
		tab, err := Fig8(stride, o)
		if err != nil {
			t.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		if last.Values[col(tab, "im2col")] >= last.Values[col(tab, "standard")] {
			t.Errorf("stride %d: im2col must beat standard", stride)
		}
		if last.Values[col(tab, "im2col")] >= last.Values[col(tab, "expansion")] {
			t.Errorf("stride %d: im2col must beat expansion", stride)
		}
	}
}

func TestFig7RunnersSmall(t *testing.T) {
	// Use a modest synthetic input set by shrinking the chip but keep the
	// real runner code paths: this exercises fig7a/b/c end to end.
	o := smallOpts()
	o.Reps = 2 // also verifies determinism via measure()
	for name, fn := range map[string]func(Options) (*Table, error){
		"fig7a": Fig7a, "fig7b": Fig7b, "fig7c": Fig7c,
	} {
		tab, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3 InceptionV3 inputs", name, len(tab.Rows))
		}
		for _, r := range tab.Rows {
			speedup := r.Values[len(r.Values)-1]
			if speedup <= 1 {
				t.Errorf("%s %s: accelerated variant not faster (%.2fx)", name, r.Label, speedup)
			}
		}
		// The full-device trend (speedup growing with input size) is pinned
		// by ops.TestHeadlineRatios147 and the root-level benchmarks; on
		// this shrunken test device banding effects can reorder it.
	}
}

func TestMeasureDetectsNondeterminism(t *testing.T) {
	o := Options{Reps: 2}
	n := int64(0)
	_, err := measure(o, func() (int64, error) {
		n++
		return n, nil
	})
	if err == nil {
		t.Error("non-deterministic measurement not detected")
	}
}

func TestAvgPoolExtension(t *testing.T) {
	tab, err := AvgPool(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Columns) != 4 {
		t.Fatalf("avgpool table %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, r := range tab.Rows {
		std, im, cube := r.Values[0], r.Values[1], r.Values[2]
		if im >= std {
			t.Errorf("%s: im2col avgpool (%v) not faster than standard (%v)", r.Label, im, std)
		}
		if cube <= 0 {
			t.Errorf("%s: cube avgpool did not run", r.Label)
		}
	}
}

func TestFormatCSV(t *testing.T) {
	tab := &Table{
		Experiment: "x",
		Columns:    []string{"a", "b speedup"},
		Rows:       []Row{{Label: "10,10,16", Values: []float64{100, 2.5}}},
	}
	var buf bytes.Buffer
	tab.FormatCSV(&buf)
	got := buf.String()
	want := "input,a,b speedup\n10;10;16,100,2.5\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

// TestPerfTable checks the static-utilization experiment: 6 kernels x 3
// Fig. 7 layers, and the accelerated variants beat the direct lowerings
// on every static metric the paper's argument rests on.
func TestPerfTable(t *testing.T) {
	tab, err := PerfTable(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 18 {
		t.Fatalf("rows = %d, want 6 kernels x 3 layers", len(tab.Rows))
	}
	const (
		colInstrs = 0
		colCrit   = 1
		colRepeat = 3
		colOcc    = 4
	)
	// Rows come in (standard, accelerated) pairs per kernel family.
	for i := 0; i < len(tab.Rows); i += 2 {
		std, acc := tab.Rows[i], tab.Rows[i+1]
		if !strings.Contains(std.Label, "standard") {
			t.Fatalf("row %d = %q, want a standard variant", i, std.Label)
		}
		if acc.Values[colInstrs] >= std.Values[colInstrs] {
			t.Errorf("%s: %v instrs, not fewer than %s's %v", acc.Label, acc.Values[colInstrs], std.Label, std.Values[colInstrs])
		}
		if acc.Values[colCrit] >= std.Values[colCrit] {
			t.Errorf("%s: critical path %v, not below %s's %v", acc.Label, acc.Values[colCrit], std.Label, std.Values[colCrit])
		}
		if acc.Values[colRepeat] <= std.Values[colRepeat] {
			t.Errorf("%s: mean repeat %v, not above %s's %v", acc.Label, acc.Values[colRepeat], std.Label, std.Values[colRepeat])
		}
		if acc.Values[colOcc] <= std.Values[colOcc] {
			t.Errorf("%s: lane occupancy %v%%, not above %s's %v%%", acc.Label, acc.Values[colOcc], std.Label, std.Values[colOcc])
		}
	}
}
