package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"davinci/internal/obs"
)

// trendSnap builds a snapshot with the gated metrics at sane values.
func trendSnap(mutate func(*obs.Registry)) *obs.Snapshot {
	r := obs.NewRegistry()
	r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "standard").Set(1000)
	r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "im2col").Set(400)
	r.Histogram("sweep_program_cycles", nil).Observe(5000)
	r.Counter("opt_rewrites").Add(40)
	r.Counter("opt_cycles_saved").Add(900)
	r.Counter("sched_accepted").Add(12)
	r.Counter("sched_cycles_saved").Add(800)
	r.Counter("cert_hits").Add(30)
	r.Gauge("cert_compile_allocs", "mode", "certified").Set(200)
	r.Gauge("serve_goodput", "experiment", "serveload", "input", "smoke").Set(48)
	r.Gauge("serve_shed_requests", "experiment", "serveload", "input", "smoke").Set(0)
	r.Gauge("serve_lost_requests", "experiment", "serveload", "input", "smoke").Set(0)
	if mutate != nil {
		mutate(r)
	}
	return r.Snapshot()
}

func TestTrendCleanHistoryPasses(t *testing.T) {
	base := trendSnap(nil)
	latest := trendSnap(func(r *obs.Registry) {
		// Strictly-better drift: fewer cycles, more wins, allocs within
		// the 25% band.
		r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "im2col").Set(390)
		r.Counter("sched_accepted").Add(1)
		r.Gauge("cert_compile_allocs", "mode", "certified").Set(230)
	})
	rep := Trend("base", base, "latest", latest, DefaultTrendGates())
	if rep.Failed() {
		var b strings.Builder
		rep.Format(&b)
		t.Fatalf("clean history flagged as regression:\n%s", b.String())
	}
}

func TestTrendCycleRegressionFails(t *testing.T) {
	base := trendSnap(nil)
	latest := trendSnap(func(r *obs.Registry) {
		// One cell gets slower while the other improves: the per-cell
		// gate must still fire (sums would mask it).
		r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "standard").Set(1100)
		r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "im2col").Set(10)
	})
	rep := Trend("base", base, "latest", latest, DefaultTrendGates())
	if !rep.Failed() {
		t.Fatal("per-cell cycle regression not detected")
	}
	found := false
	for _, d := range rep.Deltas {
		if d.Metric == "bench_cycles" && d.Regressed && strings.Contains(d.Cell, "impl=standard") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a regressed bench_cycles cell naming impl=standard, got %+v", rep.Deltas)
	}
}

func TestTrendWinCounterDropFails(t *testing.T) {
	base := trendSnap(nil)
	// Counters only go up, so build the "dropped" snapshot fresh with a
	// lower sched_accepted.
	latest := func() *obs.Snapshot {
		r := obs.NewRegistry()
		s := trendSnap(nil)
		for _, c := range s.Counters {
			v := c.Value
			if c.Name == "sched_accepted" {
				v = 5 // dropped from 12
			}
			r.Counter(c.Name).Add(v)
		}
		for _, g := range s.Gauges {
			kv := make([]string, 0, 2*len(g.Labels))
			for k, val := range g.Labels {
				kv = append(kv, k, val)
			}
			r.Gauge(g.Name, kv...).Set(g.Value)
		}
		r.Histogram("sweep_program_cycles", nil).Observe(5000)
		return r.Snapshot()
	}()
	rep := Trend("base", base, "latest", latest, DefaultTrendGates())
	if !rep.Failed() {
		t.Fatal("sched_accepted drop not detected")
	}
}

func TestTrendAllocsToleranceBand(t *testing.T) {
	base := trendSnap(nil)
	within := trendSnap(func(r *obs.Registry) {
		r.Gauge("cert_compile_allocs", "mode", "certified").Set(240) // +20% < 25%
	})
	if rep := Trend("base", base, "latest", within, DefaultTrendGates()); rep.Failed() {
		t.Fatal("allocs drift within tolerance flagged")
	}
	beyond := trendSnap(func(r *obs.Registry) {
		r.Gauge("cert_compile_allocs", "mode", "certified").Set(260) // +30% > 25%
	})
	if rep := Trend("base", base, "latest", beyond, DefaultTrendGates()); !rep.Failed() {
		t.Fatal("allocs drift beyond tolerance not flagged")
	}
}

func TestTrendMissingMetricFails(t *testing.T) {
	base := trendSnap(nil)
	empty := obs.NewRegistry().Snapshot()
	rep := Trend("base", base, "latest", empty, DefaultTrendGates())
	if !rep.Failed() {
		t.Fatal("metric vanishing entirely not flagged")
	}
	// The reverse — a gate the baseline predates — must be skipped, not
	// failed.
	rep = Trend("base", empty, "latest", base, DefaultTrendGates())
	if rep.Failed() {
		t.Fatal("gates absent from the baseline must skip, not fail")
	}
	skipped := 0
	for _, d := range rep.Deltas {
		if d.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("expected skipped gates against an empty baseline")
	}
}

func TestTrendFilesAndDirOrdering(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s *obs.Snapshot, mod time.Time) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := os.Chtimes(p, mod, mod); err != nil {
			t.Fatal(err)
		}
		return p
	}
	t0 := time.Now().Add(-2 * time.Hour)
	// Names sort against the timeline on purpose: ordering must follow
	// modification time, not the revision hash in the name.
	write("BENCH_zzz.json", trendSnap(nil), t0)
	write("BENCH_aaa.json", trendSnap(func(r *obs.Registry) {
		r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "im2col").Set(395)
	}), t0.Add(time.Hour))

	paths, err := TrendDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_zzz.json" {
		t.Fatalf("want modtime ordering [BENCH_zzz BENCH_aaa], got %v", paths)
	}
	reports, err := TrendFiles(paths, DefaultTrendGates())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Failed() {
		t.Fatalf("improving history must pass, got %d report(s), failed=%v", len(reports), len(reports) > 0 && reports[0].Failed())
	}

	// Injected synthetic regression: a newer snapshot with a slower cell
	// must fail the gate.
	write("BENCH_bad.json", trendSnap(func(r *obs.Registry) {
		r.Gauge("bench_cycles", "experiment", "fig7a", "input", "a", "impl", "im2col").Set(500)
	}), t0.Add(90*time.Minute))
	paths, err = TrendDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reports, err = TrendFiles(paths, DefaultTrendGates())
	if err != nil {
		t.Fatal(err)
	}
	if !reports[len(reports)-1].Failed() {
		t.Fatal("synthetic regression in the newest snapshot not detected")
	}
}

func TestTrendNeedsTwoSnapshots(t *testing.T) {
	if _, err := TrendFiles([]string{"one.json"}, DefaultTrendGates()); err == nil {
		t.Fatal("want an error for a single snapshot")
	}
}

func TestTrendServeGates(t *testing.T) {
	base := trendSnap(nil)
	// Goodput dropping is a regression (lower is worse).
	worseGoodput := trendSnap(func(r *obs.Registry) {
		r.Gauge("serve_goodput", "experiment", "serveload", "input", "smoke").Set(40)
	})
	if rep := Trend("base", base, "latest", worseGoodput, DefaultTrendGates()); !rep.Failed() {
		t.Fatal("serve_goodput drop not detected")
	}
	// A single lost request anywhere fails with zero tolerance, per cell.
	lost := trendSnap(func(r *obs.Registry) {
		r.Gauge("serve_lost_requests", "experiment", "serveload", "input", "smoke").Set(1)
	})
	if rep := Trend("base", base, "latest", lost, DefaultTrendGates()); !rep.Failed() {
		t.Fatal("lost request not detected")
	}
	// New shedding in the smoke cell fails too.
	shed := trendSnap(func(r *obs.Registry) {
		r.Gauge("serve_shed_requests", "experiment", "serveload", "input", "smoke").Set(3)
	})
	if rep := Trend("base", base, "latest", shed, DefaultTrendGates()); !rep.Failed() {
		t.Fatal("new shedding not detected")
	}
}

func TestTrendDirPrefersEmbeddedTimestamp(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, taken int64, mod time.Time) {
		s := trendSnap(nil)
		s.TakenUnixNanos = taken
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := os.Chtimes(p, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	// Modtimes deliberately contradict the embedded capture times — the
	// situation a CI artifact download or git checkout creates. The
	// embedded order must win.
	now := time.Now()
	write("BENCH_new.json", 2_000_000, now.Add(-2*time.Hour)) // newest capture, oldest file
	write("BENCH_old.json", 1_000_000, now)                   // oldest capture, newest file
	paths, err := TrendDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_old.json" || filepath.Base(paths[1]) != "BENCH_new.json" {
		t.Fatalf("want embedded-timestamp ordering [BENCH_old BENCH_new], got %v", paths)
	}

	// One unstamped file poisons the set: everything falls back to
	// modtime so the ordering stays internally consistent.
	write("BENCH_unstamped.json", 0, now.Add(-time.Hour))
	paths, err = TrendDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_new.json", "BENCH_unstamped.json", "BENCH_old.json"}
	for i, p := range paths {
		if filepath.Base(p) != want[i] {
			t.Fatalf("want modtime fallback ordering %v, got %v", want, paths)
		}
	}
}
