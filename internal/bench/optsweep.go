package bench

import (
	"fmt"
	"sort"

	"davinci/internal/kernelcases"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/trace"
	"davinci/internal/workloads"
)

// OptSweep compiles every built-in kernel on every Table I layer twice —
// baseline and under the static optimizer at LevelSchedule — and reports
// the scheduled-makespan delta per program. Both cycle columns come from
// the optimizer's own translation-validated report (aicore.Time, the
// exact implicit-sync makespan Run would measure), so no replay is
// needed. Any program the gate rejects, or that compiles slower with the
// optimizer on, is an error: this is the CI regression gate. Per-program
// cycles land in o.Metrics as bench_cycles gauges under impl
// "<kernel>/base" and "<kernel>/opt", next to the plan-cache
// opt_rewrites / opt_cycles_saved counters the optimizing plans bump.
func OptSweep(o Options) (*Table, error) {
	t := &Table{
		Experiment: fmt.Sprintf("Optimizer sweep: every kernel on every layer, %v vs baseline", opt.LevelSchedule),
		Note:       "cycles are the scheduled makespan (aicore.Time); every optimized program is translation-validated",
		Columns:    []string{"base", "opt", "saved", "speedup"},
	}
	spec := ops.Spec{Buffers: o.Chip.Buffers, Opt: opt.LevelSchedule}
	cache := ops.NewPlanCache()
	if o.Metrics != nil {
		cache = ops.NewPlanCacheOn(o.Metrics)
	}
	skipped, faster := 0, 0
	byPass := map[string]int{}
	for _, layer := range workloads.TableI {
		p := layer.Params()
		for _, kc := range kernelcases.All() {
			key := ops.PlanKey{Kernel: kc.Name, Params: p, Spec: spec}
			pl, err := cache.Get(o.Trace, key, func(trace.Ctx) (*ops.Plan, error) { return kc.Plan(spec, p) })
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					skipped++
					continue
				}
				return nil, fmt.Errorf("bench: %s %dx%dx%d: %w", kc.Name, layer.H, layer.W, layer.C, err)
			}
			r := pl.Opt
			if r == nil {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: optimizing spec produced no opt report", kc.Name, layer.H, layer.W, layer.C)
			}
			if !r.Validated || r.Rejected != "" {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: optimization rejected: %s", kc.Name, layer.H, layer.W, layer.C, r.Summary())
			}
			if r.Cycles > r.BaselineCycles {
				return nil, fmt.Errorf("bench: %s %dx%dx%d: optimized program slower: %s", kc.Name, layer.H, layer.W, layer.C, r.Summary())
			}
			if r.Cycles < r.BaselineCycles {
				faster++
			}
			for _, rw := range r.Rewrites {
				byPass[rw.Pass] += rw.Applied
			}
			label := fmt.Sprintf("%-26s %3dx%3dx%4d", kc.Name, layer.H, layer.W, layer.C)
			t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
				float64(r.BaselineCycles), float64(r.Cycles),
				float64(r.Saved()), float64(r.BaselineCycles) / float64(r.Cycles),
			}})
			input := fmt.Sprintf("%dx%dx%d", layer.H, layer.W, layer.C)
			o.record("optsweep", input, kc.Name+"/base", float64(r.BaselineCycles))
			o.record("optsweep", input, kc.Name+"/opt", float64(r.Cycles))
		}
	}
	passes := make([]string, 0, len(byPass))
	for p := range byPass {
		passes = append(passes, p)
	}
	sort.Strings(passes)
	note := ""
	for _, p := range passes {
		note += fmt.Sprintf(" %s:%d", p, byPass[p])
	}
	t.Note += fmt.Sprintf("; %d/%d programs faster, %d capacity skips; rewrites:%s",
		faster, len(t.Rows), skipped, note)
	t.Plans = cache.Stats()
	return t, nil
}
