// Package bench regenerates every table and figure of the paper's
// evaluation (§VI) on the simulated chip. Each runner returns a Table
// whose rows and columns mirror what the paper reports: cycle counts per
// implementation per input, plus the speedup of the accelerated variant.
//
// The simulator's timing is deterministic for a given shape (cycle counts
// do not depend on data values), so the paper's ten-repetition 95%
// confidence intervals collapse to a point; runners still support
// repetitions to demonstrate that property.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"davinci/internal/chip"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/trace"
	"davinci/internal/workloads"
)

// Table is one regenerated experiment.
type Table struct {
	Experiment string
	Note       string
	Columns    []string
	Rows       []Row
	// Plans snapshots the device's plan cache after the experiment:
	// programs compiled vs cache hits across every measured run.
	Plans ops.CacheStats
}

// Row is one line of an experiment: a label (input size) and one value per
// column.
type Row struct {
	Label  string
	Values []float64
}

// FormatCSV renders the table as comma-separated values (one header row).
func (t *Table) FormatCSV(w io.Writer) {
	fmt.Fprintf(w, "input")
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(c, ",", ";"))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s", strings.ReplaceAll(r.Label, ",", ";"))
		for _, v := range r.Values {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Experiment)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("input")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := func(r Row) []string {
		out := []string{r.Label}
		for i, v := range r.Values {
			switch {
			case strings.Contains(t.Columns[i], "speedup"):
				out = append(out, fmt.Sprintf("%.2fx", v))
			case strings.Contains(t.Columns[i], "repeat"), strings.Contains(t.Columns[i], "occ"):
				out = append(out, fmt.Sprintf("%.1f", v))
			default:
				out = append(out, fmt.Sprintf("%.0f", v))
			}
		}
		return out
	}
	for i, c := range t.Columns {
		if len(c) > widths[i+1] {
			widths[i+1] = len(c)
		}
	}
	for _, r := range t.Rows {
		for i, c := range cells(r) {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	head := []string{"input"}
	head = append(head, t.Columns...)
	for i, h := range head {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		for i, c := range cells(r) {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	if t.Plans != (ops.CacheStats{}) {
		fmt.Fprintf(w, "%s\n", t.Plans)
	}
	fmt.Fprintln(w)
}

// Options configures a run.
type Options struct {
	// Chip configures the simulated device (zero values = Ascend 910).
	Chip chip.Config
	// Seed feeds the workload generator.
	Seed int64
	// Reps repeats each measurement (default 1); the simulator is
	// deterministic, so this demonstrates zero-width confidence intervals.
	Reps int
	// Metrics, when non-nil, collects every measured cell as a
	// bench_cycles gauge (labeled experiment/input/impl) plus the chip
	// and plan-cache counters of every device the experiments build —
	// the payload of davinci-bench -metrics.
	Metrics *obs.Registry
	// Trace is the span context each experiment run nests under: Run
	// opens a bench_experiment span per experiment and the devices the
	// experiments build thread it through chip.Config.Trace, so one
	// trace covers compile, search, certification and tile execution.
	// The zero value disables tracing.
	Trace trace.Ctx
}

func (o Options) reps() int {
	if o.Reps < 1 {
		return 1
	}
	return o.Reps
}

// device builds the simulated chip for one experiment, registering its
// counters on the run's shared metrics registry when one is set.
func (o Options) device(cfg chip.Config) *chip.Chip {
	if cfg.Metrics == nil {
		cfg.Metrics = o.Metrics
	}
	if !cfg.Trace.Enabled() {
		cfg.Trace = o.Trace
	}
	return chip.New(cfg)
}

// record publishes one measured cell into the run's metrics registry.
func (o Options) record(experiment, input, impl string, cycles float64) {
	if o.Metrics == nil {
		return
	}
	o.Metrics.Gauge("bench_cycles", "experiment", experiment, "input", input, "impl", impl).Set(int64(cycles))
}

// measure runs fn Reps times and checks determinism, returning the cycle
// count.
func measure(o Options, fn func() (int64, error)) (float64, error) {
	var first int64
	for r := 0; r < o.reps(); r++ {
		c, err := fn()
		if err != nil {
			return 0, err
		}
		if r == 0 {
			first = c
		} else if c != first {
			return 0, fmt.Errorf("bench: non-deterministic cycle count (%d vs %d)", c, first)
		}
	}
	return float64(first), nil
}

// Table1 renders Table I (Maxpool input sizes in CNNs).
func Table1() *Table {
	t := &Table{
		Experiment: "Table I: Maxpool input sizes in CNNs (HWC)",
		Note:       "kernel (3,3), stride (2,2); VGG16 uses kernel and stride (2,2)",
		Columns:    []string{"Input 1", "Input 2", "Input 3", "Input 4"},
	}
	byNet := map[string][]string{}
	var order []string
	for _, l := range workloads.TableI {
		if _, seen := byNet[l.Network]; !seen {
			order = append(order, l.Network)
		}
		byNet[l.Network] = append(byNet[l.Network], fmt.Sprintf("%d,%d,%d", l.H, l.W, l.C))
	}
	for _, net := range order {
		row := Row{Label: net}
		cells := byNet[net]
		for i := 0; i < 4; i++ {
			if i < len(cells) {
				row.Values = append(row.Values, 0)
			}
		}
		// Table I is textual; encode the sizes in the label column.
		row.Label = fmt.Sprintf("%-12s %s", net, strings.Join(cells, "  "))
		row.Values = nil
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7a regenerates Fig. 7a: Maxpool forward, standard vs Im2col, on the
// three InceptionV3 inputs.
func Fig7a(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Fig. 7a: Maxpool forward (cycles)",
		Note:       "InceptionV3 inputs, kernel (3,3), stride (2,2), no padding; 32 AI Cores",
		Columns:    []string{"standard", "im2col", "im2col speedup"},
	}
	dev := o.device(o.Chip)
	rng := rand.New(rand.NewSource(o.Seed))
	for _, layer := range workloads.InceptionV3Fig7() {
		in := layer.Input(rng)
		p := layer.Params()
		label := fmt.Sprintf("%d,%d,%d", layer.H, layer.W, layer.C)
		var vals []float64
		for _, variant := range []string{"standard", "im2col"} {
			c, err := measure(o, func() (int64, error) {
				_, st, err := dev.MaxPoolForward(variant, in, p)
				if err != nil {
					return 0, err
				}
				return st.Cycles, nil
			})
			if err != nil {
				return nil, err
			}
			o.record("fig7a", label, variant, c)
			vals = append(vals, c)
		}
		vals = append(vals, vals[0]/vals[1])
		t.Rows = append(t.Rows, Row{Label: label, Values: vals})
	}
	t.Plans = dev.PlanStats()
	return t, nil
}

// Fig7b regenerates Fig. 7b: Maxpool forward with the argmax mask.
func Fig7b(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Fig. 7b: Maxpool forward + argmax mask (cycles)",
		Note:       "InceptionV3 inputs; the mask is saved in the Im2Col shape for training",
		Columns:    []string{"standard", "im2col", "im2col speedup"},
	}
	dev := o.device(o.Chip)
	rng := rand.New(rand.NewSource(o.Seed))
	for _, layer := range workloads.InceptionV3Fig7() {
		in := layer.Input(rng)
		p := layer.Params()
		label := fmt.Sprintf("%d,%d,%d", layer.H, layer.W, layer.C)
		var vals []float64
		for _, variant := range []string{"standard", "im2col"} {
			c, err := measure(o, func() (int64, error) {
				_, _, st, err := dev.MaxPoolForwardArgmax(variant, in, p)
				if err != nil {
					return 0, err
				}
				return st.Cycles, nil
			})
			if err != nil {
				return nil, err
			}
			o.record("fig7b", label, variant, c)
			vals = append(vals, c)
		}
		vals = append(vals, vals[0]/vals[1])
		t.Rows = append(t.Rows, Row{Label: label, Values: vals})
	}
	t.Plans = dev.PlanStats()
	return t, nil
}

// Fig7c regenerates Fig. 7c: Maxpool backward, standard vs Col2im.
func Fig7c(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Fig. 7c: Maxpool backward (cycles)",
		Note:       "InceptionV3 inputs; merge step via 16-lane vadd vs Col2Im instructions",
		Columns:    []string{"standard", "col2im", "col2im speedup"},
	}
	dev := o.device(o.Chip)
	rng := rand.New(rand.NewSource(o.Seed))
	for _, layer := range workloads.InceptionV3Fig7() {
		in := layer.Input(rng)
		p := layer.Params()
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, layer.C1(), oh, ow, tensor.C0)
		for i := 0; i < grad.Len(); i++ {
			grad.SetFlat(i, fp16.FromFloat64(rng.Float64()))
		}
		label := fmt.Sprintf("%d,%d,%d", layer.H, layer.W, layer.C)
		var vals []float64
		for _, variant := range []string{"standard", "col2im"} {
			c, err := measure(o, func() (int64, error) {
				_, st, err := dev.MaxPoolBackward(variant, mask, grad, p)
				if err != nil {
					return 0, err
				}
				return st.Cycles, nil
			})
			if err != nil {
				return nil, err
			}
			o.record("fig7c", label, variant, c)
			vals = append(vals, c)
		}
		vals = append(vals, vals[0]/vals[1])
		t.Rows = append(t.Rows, Row{Label: label, Values: vals})
	}
	t.Plans = dev.PlanStats()
	return t, nil
}

// Fig8 regenerates one panel of Fig. 8: the forward Maxpool
// implementations swept over square input sizes at the given stride, on a
// single AI Core (N = C1 = 1), kernel (3,3), no padding. The X-Y split
// variant is included for stride (2,2), as in the paper.
func Fig8(stride int, o Options) (*Table, error) {
	variants := []string{"standard", "im2col", "expansion"}
	if stride == 2 {
		variants = append(variants, "xysplit")
	}
	t := &Table{
		Experiment: fmt.Sprintf("Fig. 8: Maxpool forward, stride (%d,%d) (cycles)", stride, stride),
		Note:       "single AI Core, kernel (3,3), input height/width stepped by 2 up to the tiling threshold",
		Columns:    variants,
	}
	cfg := o.Chip
	cfg.Cores = 1
	dev := o.device(cfg)
	rng := rand.New(rand.NewSource(o.Seed))
	for _, hw := range workloads.Fig8Sizes(3, stride, o.Chip.Buffers.UBSize) {
		p := isa.ConvParams{Ih: hw, Iw: hw, Kh: 3, Kw: 3, Sh: stride, Sw: stride}
		in := tensor.New(1, 1, hw, hw, tensor.C0)
		in.FillRandom(rng, 8)
		label := fmt.Sprintf("%dx%d", hw, hw)
		var vals []float64
		for _, variant := range variants {
			c, err := measure(o, func() (int64, error) {
				_, st, err := dev.MaxPoolForward(variant, in, p)
				if err != nil {
					return 0, err
				}
				return st.Cycles, nil
			})
			if err != nil {
				return nil, err
			}
			o.record(fmt.Sprintf("fig8_s%d", stride), label, variant, c)
			vals = append(vals, c)
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: vals})
	}
	t.Plans = dev.PlanStats()
	return t, nil
}

// All runs every experiment in paper order.
func All(o Options) ([]*Table, error) {
	var tables []*Table
	tables = append(tables, Table1())
	for _, fn := range []func(Options) (*Table, error){Fig7a, Fig7b, Fig7c} {
		t, err := fn(o)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	for _, stride := range []int{1, 2, 3} {
		t, err := Fig8(stride, o)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	t, err := PerfTable(o)
	if err != nil {
		return nil, err
	}
	tables = append(tables, t)
	return tables, nil
}

// AvgPool runs the Avgpool extension experiment (not a paper figure): the
// three forward implementations of §V-C plus the Cube-unit mapping the
// paper proposes as future work (§VIII, following Suita et al.), on the
// InceptionV3 inputs.
func AvgPool(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Extension: Avgpool forward (cycles)",
		Note:       "standard / im2col vector variants (§V-C) and the Cube-unit mapping (§VIII future work)",
		Columns:    []string{"standard", "im2col", "cube", "im2col speedup"},
	}
	dev := o.device(o.Chip)
	rng := rand.New(rand.NewSource(o.Seed))
	for _, layer := range workloads.InceptionV3Fig7() {
		in := layer.Input(rng)
		p := layer.Params()
		label := fmt.Sprintf("%d,%d,%d", layer.H, layer.W, layer.C)
		var vals []float64
		for _, variant := range []string{"standard", "im2col", "cube"} {
			c, err := measure(o, func() (int64, error) {
				_, st, err := dev.AvgPoolForward(variant, in, p)
				if err != nil {
					return 0, err
				}
				return st.Cycles, nil
			})
			if err != nil {
				return nil, err
			}
			o.record("avgpool", label, variant, c)
			vals = append(vals, c)
		}
		vals = append(vals, vals[0]/vals[1])
		t.Rows = append(t.Rows, Row{Label: label, Values: vals})
	}
	t.Plans = dev.PlanStats()
	return t, nil
}
