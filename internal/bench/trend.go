// Bench-trend regression gate: compare the metric snapshots two
// davinci-bench runs wrote (-metrics, the CI BENCH_<rev>.json artifact)
// and fail when a gated metric drifted in its bad direction. The gates
// cover the simulated cycle counts (deterministic, so tolerance 0) and
// the optimizer / autoscheduler / certificate win counters — the
// quantities the repo's sweeps are supposed to keep monotone — while
// host wall-clock metrics (cert_compile_nanos) stay ungated: they
// measure the machine, not the code.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"davinci/internal/obs"
)

// TrendGate gates one metric of the snapshot.
type TrendGate struct {
	// Metric names the counter, gauge or histogram (histograms compare
	// their Sum).
	Metric string
	// HigherIsWorse: larger values are regressions (cycles, allocs);
	// false means smaller values are (accepted-schedule counts, cycles
	// saved, certificate hits).
	HigherIsWorse bool
	// Tolerance is the allowed fractional drift in the bad direction
	// (0.25 = 25%); 0 means any bad-direction change fails.
	Tolerance float64
	// PerCell compares gauge cells label-set by label-set instead of the
	// metric's sum, so one layer getting slower cannot hide behind
	// another getting faster.
	PerCell bool
}

// DefaultTrendGates is the CI gate set.
func DefaultTrendGates() []TrendGate {
	return []TrendGate{
		// Simulated per-cell cycle counts: deterministic, zero drift.
		{Metric: "bench_cycles", HigherIsWorse: true, PerCell: true},
		{Metric: "bench_stall_cycles", HigherIsWorse: true, PerCell: true},
		{Metric: "sweep_program_cycles", HigherIsWorse: true},
		{Metric: "sweep_stall_cycles", HigherIsWorse: true},
		// Optimizer / autoscheduler / certificate win counters: shrinking
		// means a pass stopped firing or a search stopped winning.
		{Metric: "opt_rewrites", HigherIsWorse: false},
		{Metric: "opt_cycles_saved", HigherIsWorse: false},
		{Metric: "sched_accepted", HigherIsWorse: false},
		{Metric: "sched_cycles_saved", HigherIsWorse: false},
		{Metric: "cert_hits", HigherIsWorse: false},
		// Compile-path allocations: counted by the Go runtime, so allow
		// drift across toolchains; a 25% jump is a real regression.
		{Metric: "cert_compile_allocs", HigherIsWorse: true, Tolerance: 0.25},
		// Serving smoke: the deterministic load cell must keep completing
		// everything it completes today, shed nothing new, and never lose
		// a request — conservation violations gate with zero tolerance on
		// every cell.
		{Metric: "serve_goodput", HigherIsWorse: false},
		{Metric: "serve_shed_requests", HigherIsWorse: true},
		{Metric: "serve_lost_requests", HigherIsWorse: true, PerCell: true},
	}
}

// TrendDelta is one gate's verdict.
type TrendDelta struct {
	Metric string
	// Cell is the gauge label set when the gate compares per cell and
	// this row is a cell (empty for whole-metric rows).
	Cell string
	// Base and Latest are the compared values.
	Base, Latest float64
	// Delta is the fractional change (latest-base)/|base|; 0 when the
	// base is 0.
	Delta float64
	// Regressed marks a bad-direction drift beyond the gate's tolerance,
	// or a metric present in the baseline but gone from the latest run.
	Regressed bool
	// Skipped marks a gate whose metric the baseline does not carry (a
	// gate added after the baseline was committed).
	Skipped bool
	// Missing marks a metric the latest snapshot lost.
	Missing bool
}

func (d TrendDelta) verdict() string {
	switch {
	case d.Missing:
		return "MISSING"
	case d.Regressed:
		return "REGRESSED"
	case d.Skipped:
		return "skipped (not in baseline)"
	default:
		return "ok"
	}
}

// TrendReport is the comparison of one snapshot pair.
type TrendReport struct {
	BaseName, LatestName string
	Deltas               []TrendDelta
}

// Failed reports whether any gate regressed.
func (r *TrendReport) Failed() bool {
	for _, d := range r.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Format renders the report as an aligned table.
func (r *TrendReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== trend: %s -> %s ==\n", r.BaseName, r.LatestName)
	name := len("metric")
	for _, d := range r.Deltas {
		if n := len(d.Metric) + len(d.Cell); n > name {
			name = n
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %8s  %s\n", name+1, "metric", "base", "latest", "delta", "verdict")
	for _, d := range r.Deltas {
		label := d.Metric
		if d.Cell != "" {
			label += "{" + d.Cell + "}"
		}
		fmt.Fprintf(w, "%-*s  %14.0f  %14.0f  %+7.2f%%  %s\n",
			name+1, label, d.Base, d.Latest, 100*d.Delta, d.verdict())
	}
}

// cellKey renders a label set deterministically ("experiment=fig7a,...").
func cellKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}

// metricValues extracts every value a snapshot holds for one metric
// name, keyed by label set: counters and gauges directly, histograms as
// their Sum.
func metricValues(s *obs.Snapshot, name string) map[string]float64 {
	var out map[string]float64
	add := func(labels map[string]string, v float64) {
		if out == nil {
			out = map[string]float64{}
		}
		out[cellKey(labels)] += v
	}
	for _, c := range s.Counters {
		if c.Name == name {
			add(c.Labels, float64(c.Value))
		}
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			add(g.Labels, float64(g.Value))
		}
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			add(h.Labels, float64(h.Sum))
		}
	}
	return out
}

func sum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// worse reports whether latest drifted beyond tolerance in the gate's
// bad direction relative to base.
func (g TrendGate) worse(base, latest float64) bool {
	if g.HigherIsWorse {
		return latest > base+tolBand(base, g.Tolerance)
	}
	return latest < base-tolBand(base, g.Tolerance)
}

func tolBand(base, tol float64) float64 {
	if base < 0 {
		base = -base
	}
	return base * tol
}

func frac(base, latest float64) float64 {
	if base == 0 {
		return 0
	}
	d := base
	if d < 0 {
		d = -d
	}
	return (latest - base) / d
}

// Trend compares latest against base under the gates.
func Trend(baseName string, base *obs.Snapshot, latestName string, latest *obs.Snapshot, gates []TrendGate) *TrendReport {
	r := &TrendReport{BaseName: baseName, LatestName: latestName}
	for _, g := range gates {
		bv := metricValues(base, g.Metric)
		lv := metricValues(latest, g.Metric)
		switch {
		case bv == nil:
			r.Deltas = append(r.Deltas, TrendDelta{Metric: g.Metric, Latest: sum(lv), Skipped: true})
		case lv == nil:
			// The metric vanished: a silent loss of coverage is itself a
			// regression, whatever the direction.
			r.Deltas = append(r.Deltas, TrendDelta{Metric: g.Metric, Base: sum(bv), Regressed: true, Missing: true})
		case g.PerCell:
			cells := make([]string, 0, len(bv))
			for cell := range bv {
				cells = append(cells, cell)
			}
			sort.Strings(cells)
			any := false
			for _, cell := range cells {
				b := bv[cell]
				l, ok := lv[cell]
				if !ok {
					r.Deltas = append(r.Deltas, TrendDelta{Metric: g.Metric, Cell: cell, Base: b, Regressed: true, Missing: true})
					any = true
					continue
				}
				if g.worse(b, l) {
					r.Deltas = append(r.Deltas, TrendDelta{Metric: g.Metric, Cell: cell, Base: b, Latest: l, Delta: frac(b, l), Regressed: true})
					any = true
				}
			}
			if !any {
				r.Deltas = append(r.Deltas, TrendDelta{Metric: g.Metric, Base: sum(bv), Latest: sum(lv), Delta: frac(sum(bv), sum(lv))})
			}
		default:
			b, l := sum(bv), sum(lv)
			r.Deltas = append(r.Deltas, TrendDelta{
				Metric: g.Metric, Base: b, Latest: l, Delta: frac(b, l),
				Regressed: g.worse(b, l),
			})
		}
	}
	return r
}

// LoadSnapshot reads one -metrics JSON snapshot.
func LoadSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &s, nil
}

// TrendFiles loads the snapshot files in order and compares each
// consecutive pair, so a directory of historical artifacts is checked
// pairwise along its timeline.
func TrendFiles(paths []string, gates []TrendGate) ([]*TrendReport, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("bench: trend needs at least two snapshots, got %d", len(paths))
	}
	snaps := make([]*obs.Snapshot, len(paths))
	for i, p := range paths {
		s, err := LoadSnapshot(p)
		if err != nil {
			return nil, err
		}
		snaps[i] = s
	}
	var reports []*TrendReport
	for i := 1; i < len(paths); i++ {
		reports = append(reports,
			Trend(filepath.Base(paths[i-1]), snaps[i-1], filepath.Base(paths[i]), snaps[i], gates))
	}
	return reports, nil
}

// TrendDir lists a directory's BENCH_*.json snapshots ordered oldest to
// newest (the artifact names carry revision hashes, which do not sort
// chronologically). When every snapshot embeds a capture timestamp
// (taken_unix_nanos, stamped by the artifact writers) the files sort by
// it; otherwise the order falls back to filesystem modification time,
// which CI artifact downloads and git checkouts are free to rewrite.
func TrendDir(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type entry struct {
		path  string
		taken int64
		mod   int64
	}
	entries := make([]entry, 0, len(matches))
	allTaken := true
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			return nil, err
		}
		e := entry{path: m, mod: fi.ModTime().UnixNano()}
		if data, err := os.ReadFile(m); err == nil {
			var stamp struct {
				TakenUnixNanos int64 `json:"taken_unix_nanos"`
			}
			if json.Unmarshal(data, &stamp) == nil {
				e.taken = stamp.TakenUnixNanos
			}
		}
		if e.taken <= 0 {
			allTaken = false
		}
		entries = append(entries, e)
	}
	key := func(e entry) int64 { return e.mod }
	if allTaken {
		key = func(e entry) int64 { return e.taken }
	}
	sort.Slice(entries, func(i, j int) bool {
		if key(entries[i]) != key(entries[j]) {
			return key(entries[i]) < key(entries[j])
		}
		return entries[i].path < entries[j].path
	})
	paths := make([]string, len(entries))
	for i, e := range entries {
		paths[i] = e.path
	}
	return paths, nil
}
