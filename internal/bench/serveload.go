// Serving-layer load profile: open-loop load over the Table I shape mix
// against the internal/serve fleet, reported as a throughput–latency
// curve with an overload profile (what got completed, degraded, shed or
// cancelled at each offered rate).
package bench

import (
	"fmt"
	"time"

	"davinci/internal/chip"
	"davinci/internal/serve"
)

// serveCell is one load-generator configuration.
type serveCell struct {
	name string
	// gated marks the deterministic smoke cell whose goodput/shed/lost
	// gauges feed the trend gate; overload cells publish the ungated
	// machine-dependent profile (plus the always-gated lost count).
	gated bool
	load  serve.LoadOptions
	cfg   serve.Config
}

// ServeLoad profiles the serving fleet under offered load. The first cell
// is the deterministic smoke: a closed burst against an ample queue with
// shedding and chaos off, so every request must complete — its goodput
// feeds the trend gate. The remaining cells are open-loop overload: the
// offered rate steps up against a small queue and a latency SLO, so the
// admission controller's shedding, eviction and deadline machinery shows
// up in the profile. Conservation (offered == completed + degraded +
// rejected + cancelled) is enforced on every cell; a violation is an
// error, not a table row.
func ServeLoad(o Options) (*Table, error) {
	t := &Table{
		Experiment: "Serving: open-loop load profile (Table I shape mix)",
		Note:       "smoke = closed burst, no shedding (deterministic, trend-gated); overload cells step the offered rate against an 8-deep queue and a 2ms SLO",
		Columns:    []string{"offered", "completed", "degraded", "rejected", "cancelled", "goodput rps", "p50 us", "p99 us", "max batch"},
	}
	base := serve.Config{
		Chips:           2,
		Cores:           o.Chip.Cores,
		Buffers:         o.Chip.Buffers,
		Opt:             o.Chip.Opt,
		AutoSchedule:    o.Chip.AutoSchedule,
		Resilience:      o.Chip.Resilience,
		CyclesPerSecond: 1e8,
		Metrics:         o.Metrics,
		Trace:           o.Trace,
	}
	smoke := base
	smoke.QueueLimit = 64
	smoke.MaxBatch = 8
	// The smoke cell's goodput is trend-gated with zero tolerance, so it
	// must stay deterministic even under a -chaos run: no fault injection,
	// every request completes on-chip.
	smoke.Resilience = chip.Resilience{}
	overload := base
	overload.QueueLimit = 8
	overload.MaxBatch = 4
	overload.SLO = 2 * time.Millisecond

	cells := []serveCell{
		{
			name:  "smoke",
			gated: true,
			load:  serve.LoadOptions{Requests: 48, Seed: o.Seed},
			cfg:   smoke,
		},
		{
			name: "rate_250",
			load: serve.LoadOptions{Requests: 32, Rate: 250, Seed: o.Seed},
			cfg:  overload,
		},
		{
			name: "rate_1000",
			load: serve.LoadOptions{Requests: 32, Rate: 1000, Seed: o.Seed},
			cfg:  overload,
		},
		{
			name: "rate_4000",
			load: serve.LoadOptions{Requests: 32, Rate: 4000, Seed: o.Seed, Deadline: 250 * time.Millisecond},
			cfg:  overload,
		},
	}
	for _, c := range cells {
		s := serve.New(c.cfg)
		rep := serve.RunLoad(s, c.load)
		s.Close()
		if rep.Lost != 0 {
			return nil, fmt.Errorf("bench: serveload %s: conservation violated, %d request(s) lost", c.name, rep.Lost)
		}
		if c.gated && rep.Completed != rep.Offered {
			return nil, fmt.Errorf("bench: serveload %s: %d of %d requests did not complete (no overload configured, all must)",
				c.name, rep.Offered-rep.Completed, rep.Offered)
		}
		rep.Publish(o.Metrics, c.name, c.gated)
		t.Rows = append(t.Rows, Row{Label: c.name, Values: []float64{
			float64(rep.Offered), float64(rep.Completed), float64(rep.Degraded),
			float64(rep.Rejected), float64(rep.Cancelled), rep.GoodputRPS,
			float64(rep.P50NS) / 1e3, float64(rep.P99NS) / 1e3, float64(rep.MaxBatch),
		}})
	}
	return t, nil
}
