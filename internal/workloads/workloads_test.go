package workloads

import (
	"math/rand"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/tensor"
)

func TestTableIContents(t *testing.T) {
	if len(TableI) != 13 {
		t.Fatalf("Table I has %d rows, want 13", len(TableI))
	}
	// Spot checks against the paper's table.
	first := TableI[0]
	if first.Network != "InceptionV3" || first.H != 147 || first.C != 64 || first.Kernel != 3 || first.Stride != 2 {
		t.Errorf("InceptionV3 input 1 wrong: %+v", first)
	}
	for _, l := range TableI {
		if l.Network == "VGG16" {
			if l.Kernel != 2 || l.Stride != 2 {
				t.Errorf("VGG16 must use kernel and stride (2,2): %+v", l)
			}
		} else if l.Kernel != 3 || l.Stride != 2 {
			t.Errorf("%s must use kernel (3,3) stride (2,2): %+v", l.Network, l)
		}
		if err := l.Params().Validate(); err != nil {
			t.Errorf("%+v: %v", l, err)
		}
	}
}

func TestInceptionV3Fig7(t *testing.T) {
	layers := InceptionV3Fig7()
	if len(layers) != 3 {
		t.Fatalf("want the 3 bold InceptionV3 inputs, got %d", len(layers))
	}
	wantH := []int{147, 71, 35}
	for i, l := range layers {
		if l.H != wantH[i] {
			t.Errorf("layer %d height %d, want %d", i, l.H, wantH[i])
		}
	}
}

func TestLayerInput(t *testing.T) {
	l := TableI[2] // 35,35,288
	in := l.Input(rand.New(rand.NewSource(1)))
	if in.Shape[1] != 18 || in.Shape[2] != 35 || in.Shape[4] != tensor.C0 {
		t.Errorf("input shape %v", in.Shape)
	}
	if l.C1() != 18 {
		t.Errorf("C1 = %d", l.C1())
	}
}

func TestTilingThreshold(t *testing.T) {
	// The threshold shrinks with smaller buffers and with more overlap.
	full := TilingThreshold(3, 2, buffer.DefaultUBSize)
	small := TilingThreshold(3, 2, buffer.DefaultUBSize/4)
	if full <= small {
		t.Errorf("threshold must shrink with the UB: %d vs %d", full, small)
	}
	s1 := TilingThreshold(3, 1, buffer.DefaultUBSize)
	if s1 >= full {
		t.Errorf("stride 1 duplicates more, threshold must be smaller: %d vs %d", s1, full)
	}
	if full < 16 {
		t.Errorf("threshold implausibly small: %d", full)
	}
	// A zero ubSize takes the default.
	if TilingThreshold(3, 2, 0) != full {
		t.Error("default UB size not applied")
	}
}

func TestFig8Sizes(t *testing.T) {
	sizes := Fig8Sizes(3, 2, 0)
	if len(sizes) < 5 {
		t.Fatalf("sweep too short: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i]-sizes[i-1] != 2 {
			t.Errorf("sweep must step by 2: %v", sizes)
		}
	}
	limit := TilingThreshold(3, 2, 0)
	if last := sizes[len(sizes)-1]; last > limit {
		t.Errorf("sweep exceeds tiling threshold: %d > %d", last, limit)
	}
}
