// Package workloads encodes the evaluation workloads of §VI: the CNN
// pooling-layer input sizes of Table I (gathered from Keras), the three
// InceptionV3 configurations used in Fig. 7, and the synthetic sweep of
// Fig. 8 with its tiling threshold.
package workloads

import (
	"math/rand"

	"davinci/internal/buffer"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// CNNLayer is one Maxpool layer input from Table I, in the HWC layout the
// paper lists.
type CNNLayer struct {
	Network string
	Index   int // "Input 1".."Input 4"
	H, W, C int
	Kernel  int
	Stride  int
}

// TableI reproduces Table I: Maxpool input sizes in CNNs. All
// configurations use kernel (3,3) and stride (2,2), except VGG16 with a
// kernel and stride of (2,2) (§VI-A).
var TableI = []CNNLayer{
	{"InceptionV3", 1, 147, 147, 64, 3, 2},
	{"InceptionV3", 2, 71, 71, 192, 3, 2},
	{"InceptionV3", 3, 35, 35, 288, 3, 2},
	{"InceptionV3", 4, 17, 17, 768, 3, 2},
	{"Xception", 1, 147, 147, 128, 3, 2},
	{"Xception", 2, 74, 74, 256, 3, 2},
	{"Xception", 3, 37, 37, 728, 3, 2},
	{"Xception", 4, 19, 19, 1024, 3, 2},
	{"Resnet50", 1, 112, 112, 64, 3, 2},
	{"VGG16", 1, 224, 224, 64, 2, 2},
	{"VGG16", 2, 112, 112, 128, 2, 2},
	{"VGG16", 3, 56, 56, 256, 2, 2},
	{"VGG16", 4, 28, 28, 512, 2, 2},
}

// InceptionV3Fig7 returns the three InceptionV3 configurations highlighted
// in Table I and evaluated in Fig. 7 (no padding, kernel (3,3), stride
// (2,2)).
func InceptionV3Fig7() []CNNLayer {
	var out []CNNLayer
	for _, l := range TableI {
		if l.Network == "InceptionV3" && l.Index <= 3 {
			out = append(out, l)
		}
	}
	return out
}

// Params returns the ConvParams of the layer (no padding — the selected
// InceptionV3 configurations use none, §VI-A).
func (l CNNLayer) Params() isa.ConvParams {
	return isa.ConvParams{Ih: l.H, Iw: l.W, Kh: l.Kernel, Kw: l.Kernel, Sh: l.Stride, Sw: l.Stride}
}

// C1 returns the layer's channel-split count.
func (l CNNLayer) C1() int { return tensor.C1Of(l.C) }

// Input generates a random NC1HWC0 input tensor for the layer (N = 1
// throughout the paper).
func (l CNNLayer) Input(rng *rand.Rand) *tensor.Tensor {
	t := tensor.New(1, l.C1(), l.H, l.W, tensor.C0)
	t.FillRandom(rng, 8)
	return t
}

// TilingThreshold returns the largest square input size (stepping by 2, as
// the Fig. 8 sweep does) for which every Maxpool implementation fits in
// the Unified Buffer without extra tiling steps. The binding constraint is
// the expansion variant, which must hold the input, the Kh*Kw-times larger
// expanded tensor and the output simultaneously (§VI-B).
func TilingThreshold(kernel, stride, ubSize int) int {
	if ubSize == 0 {
		ubSize = buffer.DefaultUBSize
	}
	fits := func(hw int) bool {
		p := isa.ConvParams{Ih: hw, Iw: hw, Kh: kernel, Kw: kernel, Sh: stride, Sw: stride}
		if p.Validate() != nil {
			return false
		}
		oh, ow := p.OutDims()
		rowBytes := hw * tensor.C0 * 2
		outBytes := oh * ow * tensor.C0 * 2
		need := hw*rowBytes + (kernel*kernel+1)*outBytes
		return need <= ubSize
	}
	best := 0
	for hw := kernel; ; hw += 2 {
		if !fits(hw) {
			break
		}
		best = hw
	}
	return best
}

// Fig8Sizes returns the Fig. 8 sweep: square input sizes increasing in
// steps of two until the tiling threshold (§VI-B).
func Fig8Sizes(kernel, stride, ubSize int) []int {
	limit := TilingThreshold(kernel, stride, ubSize)
	var sizes []int
	start := kernel + 2 + (kernel+2)%2 // small, even start
	for hw := start; hw <= limit; hw += 2 {
		sizes = append(sizes, hw)
	}
	return sizes
}
