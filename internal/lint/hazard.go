package lint

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
)

// pipeVec is a symbolic vector clock: pipeVec[p] counts how many
// instructions at the front of pipe p's issue queue are guaranteed
// complete.
type pipeVec [isa.NumPipes]int

func (a pipeVec) join(b pipeVec) pipeVec {
	for i := range a {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
	return a
}

// checkHazards recomputes cross-pipe RAW/WAW/WAR dependencies exactly the
// way cce.AutoSync does, then verifies that the program's explicit
// schedule orders every one of them — without trusting AutoSync itself.
//
// The verification replays aicore.RunExplicit's issue discipline
// symbolically: per-pipe in-order queues, counting tokens for
// set_flag/wait_flag, and barriers that wait for everything before them.
// Instead of cycle times, each instruction gets a vector clock of
// completions guaranteed before it starts. A dependency from producer j
// (on pipe q) to consumer i is ordered if and only if i's start clock
// shows j's position on q complete. Because pipes issue in order, checking
// the latest conflicting access per producing pipe covers every earlier
// one on that pipe — the same argument AutoSync relies on when it syncs
// only the latest producer.
func checkHazards(prog *cce.Program) []Diagnostic {
	n := len(prog.Instrs)
	type item struct {
		idx int
		in  isa.Instr
	}
	var pipes [isa.NumPipes][]item
	pipeOf := make([]isa.Pipe, n)
	pos := make([]int, n) // position within the pipe's issue queue
	for idx, in := range prog.Instrs {
		p := in.Pipe()
		pipeOf[idx] = p
		pos[idx] = len(pipes[p])
		pipes[p] = append(pipes[p], item{idx, in})
	}
	// before[i][p] counts instructions on pipe p with program index < i:
	// the completions a barrier at index i waits for.
	before := make([]pipeVec, n+1)
	for idx := range prog.Instrs {
		before[idx+1] = before[idx]
		before[idx+1][pipeOf[idx]]++
	}

	startClock := make([]pipeVec, n)
	var heads [isa.NumPipes]int
	var pipeClock [isa.NumPipes]pipeVec
	tokens := map[flagKey][]pipeVec{}
	completed := make([]bool, n)
	completedCount, firstIncomplete := 0, 0

	var diags []Diagnostic
	for completedCount < n {
		progress := false
		for p := isa.Pipe(0); p < isa.NumPipes; p++ {
			for heads[p] < len(pipes[p]) {
				it := pipes[p][heads[p]]
				clk := pipeClock[p]
				switch v := it.in.(type) {
				case *isa.WaitFlagInstr:
					k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
					q := tokens[k]
					if len(q) == 0 {
						goto nextPipe // blocked until a token arrives
					}
					clk = clk.join(q[0])
					tokens[k] = q[1:]
				case *isa.BarrierInstr:
					for firstIncomplete < n && completed[firstIncomplete] {
						firstIncomplete++
					}
					if firstIncomplete < it.idx {
						goto nextPipe // an earlier instruction is still pending
					}
					clk = clk.join(before[it.idx])
				}
				if pos[it.idx] > clk[p] {
					clk[p] = pos[it.idx] // in-order issue: earlier same-pipe work is done
				}
				startClock[it.idx] = clk
				end := clk
				end[p] = pos[it.idx] + 1
				if sf, ok := it.in.(*isa.SetFlagInstr); ok {
					k := flagKey{sf.SrcPipe, sf.DstPipe, sf.Event}
					tokens[k] = append(tokens[k], end)
				}
				if _, ok := it.in.(*isa.BarrierInstr); ok {
					// Nothing later on any pipe starts before the barrier ends.
					for q := range pipeClock {
						pipeClock[q] = pipeClock[q].join(end)
					}
				}
				pipeClock[p] = end
				completed[it.idx] = true
				completedCount++
				heads[p]++
				progress = true
			}
		nextPipe:
		}
		if !progress {
			// Deadlock: every pipe with pending work is blocked on a
			// token that will never arrive (the sync pass pinpoints the
			// unmatched channel). Coverage analysis would be noise here.
			for p := isa.Pipe(0); p < isa.NumPipes; p++ {
				if heads[p] < len(pipes[p]) {
					it := pipes[p][heads[p]]
					diags = append(diags, Diagnostic{
						Pass: "hazard", Sev: SevError, Index: it.idx, Instr: it.in.String(),
						Msg: fmt.Sprintf("schedule deadlocks: %v is blocked here with no token available", p),
					})
				}
			}
			return diags
		}
	}

	// Dependency scan, mirroring cce.AutoSync: program order, latest
	// conflicting cross-pipe access per producing pipe, barriers cut the
	// analysis (they order everything across them).
	type access struct {
		idx    int
		pipe   isa.Pipe
		region isa.Region
	}
	type dep struct {
		idx    int
		kind   string
		region isa.Region
	}
	var writes, reads []access
	for idx, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			writes, reads = nil, nil
			continue
		}
		pipe := pipeOf[idx]
		var latest [isa.NumPipes]*dep
		consider := func(list []access, kind string, r isa.Region) {
			for _, a := range list {
				if a.pipe == pipe || !a.region.Overlaps(r) {
					continue
				}
				if cur := latest[a.pipe]; cur == nil || a.idx > cur.idx {
					latest[a.pipe] = &dep{a.idx, kind, r}
				}
			}
		}
		inReads, inWrites := in.Reads(), in.Writes()
		for _, r := range inReads {
			consider(writes, "read-after-write", r)
		}
		for _, w := range inWrites {
			consider(writes, "write-after-write", w)
			consider(reads, "write-after-read", w)
		}
		for p, d := range latest {
			if d == nil {
				continue
			}
			if startClock[idx][p] < pos[d.idx]+1 {
				diags = append(diags, Diagnostic{
					Pass: "hazard", Sev: SevError, Index: idx, Instr: in.String(), Region: d.region,
					Msg: fmt.Sprintf("%s dependency on instr %d (%s) over %v is not ordered by any flag or barrier",
						d.kind, d.idx, prog.Instrs[d.idx], d.region),
				})
			}
		}
		for _, r := range inReads {
			reads = append(reads, access{idx, pipe, r})
		}
		for _, w := range inWrites {
			writes = append(writes, access{idx, pipe, w})
		}
	}
	return diags
}
