package lint

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/depgraph"
)

// checkHazards recomputes cross-pipe RAW/WAW/WAR dependencies exactly the
// way cce.AutoSync does, then verifies that the program's explicit
// schedule orders every one of them — without trusting AutoSync itself.
//
// Both the dependence set and the symbolic schedule replay live in
// internal/depgraph, shared with the static optimizer (internal/opt): the
// verification replays aicore.RunExplicit's issue discipline symbolically
// (per-pipe in-order queues, counting tokens for set_flag/wait_flag, and
// barriers that wait for everything before them), giving each instruction
// a vector clock of completions guaranteed before it starts. A dependency
// from producer j (on pipe q) to consumer i is ordered if and only if i's
// start clock shows j's position on q complete. Because pipes issue in
// order, checking the latest conflicting access per producing pipe covers
// every earlier one on that pipe — the same argument AutoSync relies on
// when it syncs only the latest producer.
func checkHazards(prog *cce.Program) []Diagnostic {
	sched := depgraph.Replay(prog)
	if len(sched.Deadlocked) > 0 {
		// Deadlock: every pipe with pending work is blocked on a token
		// that will never arrive (the sync pass pinpoints the unmatched
		// channel). Coverage analysis would be noise here.
		var diags []Diagnostic
		for _, idx := range sched.Deadlocked {
			diags = append(diags, Diagnostic{
				Pass: "hazard", Sev: SevError, Index: idx, Instr: prog.Instrs[idx].String(),
				Msg: fmt.Sprintf("schedule deadlocks: %v is blocked here with no token available", sched.PipeOf[idx]),
			})
		}
		return diags
	}

	var diags []Diagnostic
	for _, d := range depgraph.CrossPipeDeps(prog) {
		if sched.Ordered(d.Consumer, d.Producer) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pass: "hazard", Sev: SevError, Index: d.Consumer, Instr: prog.Instrs[d.Consumer].String(), Region: d.Region,
			Msg: fmt.Sprintf("%s dependency on instr %d (%s) over %v is not ordered by any flag or barrier",
				d.Kind, d.Producer, prog.Instrs[d.Producer], d.Region),
		})
	}
	return diags
}
