package lint

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
)

// flagKey identifies one counting-token channel: an ordered pipe pair plus
// an event id.
type flagKey struct {
	src, dst isa.Pipe
	event    int
}

// checkSync dataflow-checks the set_flag/wait_flag protocol. Because all
// sets of one channel issue on the source pipe and all waits on the
// destination pipe — both in order — the i-th wait consumes exactly the
// i-th set's token, so the pairing is decidable statically:
//
//   - a wait beyond the channel's set count has no token to consume and
//     deadlocks its pipe (error);
//   - a set beyond the channel's wait count leaks its token into the next
//     kernel, where a reused event id would mis-pair (warning);
//   - a matched pair straddling a pipe_barrier is redundant (the barrier
//     already orders the two instructions) and, once the event id is
//     reused after the barrier, double-deposits under real hardware's
//     single-token flags (warning).
func checkSync(prog *cce.Program) []Diagnostic {
	sets := map[flagKey][]int{}
	waits := map[flagKey][]int{}
	var barriers []int
	for idx, in := range prog.Instrs {
		switch v := in.(type) {
		case *isa.SetFlagInstr:
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			sets[k] = append(sets[k], idx)
		case *isa.WaitFlagInstr:
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			waits[k] = append(waits[k], idx)
		case *isa.BarrierInstr:
			barriers = append(barriers, idx)
		}
	}
	barrierBetween := func(a, b int) (int, bool) {
		if a > b {
			a, b = b, a
		}
		for _, bi := range barriers {
			if bi > a && bi < b {
				return bi, true
			}
		}
		return 0, false
	}

	var diags []Diagnostic
	for k, ws := range waits {
		ss := sets[k]
		for i, w := range ws {
			if i >= len(ss) {
				diags = append(diags, Diagnostic{
					Pass: "sync", Sev: SevError, Index: w, Instr: prog.Instrs[w].String(),
					Msg: fmt.Sprintf("wait_flag has no matching set_flag (%d waits, %d sets on %v->%v ev=%d): the pipe deadlocks",
						len(ws), len(ss), k.src, k.dst, k.event),
				})
				continue
			}
			if bi, ok := barrierBetween(ss[i], w); ok {
				diags = append(diags, Diagnostic{
					Pass: "sync", Sev: SevWarning, Index: w, Instr: prog.Instrs[w].String(),
					Msg: fmt.Sprintf("set/wait pair (instrs %d, %d) straddles the pipe_barrier at instr %d: the barrier already orders them, and reusing ev=%d across it breaks single-token flag semantics",
						ss[i], w, bi, k.event),
				})
			}
		}
	}
	for k, ss := range sets {
		for i := len(waits[k]); i < len(ss); i++ {
			diags = append(diags, Diagnostic{
				Pass: "sync", Sev: SevWarning, Index: ss[i], Instr: prog.Instrs[ss[i]].String(),
				Msg: fmt.Sprintf("set_flag token on %v->%v ev=%d is never consumed by a wait_flag",
					k.src, k.dst, k.event),
			})
		}
	}
	return diags
}
