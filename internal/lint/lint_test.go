package lint

import (
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// hasPass reports whether any diagnostic came from the named pass, and
// returns the first such diagnostic.
func hasPass(diags []Diagnostic, pass string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Pass == pass {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func wantPass(t *testing.T, diags []Diagnostic, pass string) Diagnostic {
	t.Helper()
	d, ok := hasPass(diags, pass)
	if !ok {
		t.Fatalf("want a %q diagnostic, got %d others: %v", pass, len(diags), diags)
	}
	return d
}

func wantClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestBoundsOverflow(t *testing.T) {
	ubCap := buffer.DefaultUBSize
	prog := cce.New("t")
	// A full-mask repeat at the last block runs 8 blocks past the end.
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, ubCap-isa.BlockBytes), Mask: isa.FullMask(), Repeat: 1})
	d := wantPass(t, CheckImplicit(prog), "bounds")
	if d.Sev != SevError || d.Region.Buf != isa.UB {
		t.Errorf("bounds diagnostic = %+v", d)
	}

	prog = cce.New("t2")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.L1, DstAddr: buffer.DefaultL1Size - 64, NBurst: 1, BurstBytes: 128})
	wantPass(t, CheckImplicit(prog), "bounds")
}

func TestBoundsMaskAware(t *testing.T) {
	// A 16-lane tail mask only touches block 0, so the same base address
	// at the end of the UB is fine — the span must not claim all 8 blocks.
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, buffer.DefaultUBSize-isa.BlockBytes),
		Mask: isa.MaskFirstN(isa.ElemsPerBlock), Repeat: 1})
	prog.EmitCopy(isa.UB, buffer.DefaultUBSize-isa.BlockBytes, isa.GM, 0, isa.BlockBytes)
	wantClean(t, CheckImplicit(prog))
}

func TestBoundsRespectsCustomCapacities(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 2})
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 512)
	var caps [isa.NumBufs]int
	caps[isa.UB] = 256 // 2 repeats x 8 blocks x 32 B = 512 B > 256 B
	if _, ok := hasPass(CheckWith(Options{Caps: caps, Mode: SyncImplicit}, prog), "bounds"); !ok {
		t.Fatal("want a bounds diagnostic against the 256-byte capacity")
	}
}

func TestSyncUnmatchedWait(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	diags := Check(prog)
	if d := wantPass(t, diags, "sync"); d.Sev != SevError {
		t.Errorf("unmatched wait severity = %v, want error", d.Sev)
	}
	// The hazard pass independently detects the deadlocked schedule.
	wantPass(t, diags, "hazard")
}

func TestSyncUnconsumedSet(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 3})
	d := wantPass(t, Check(prog), "sync")
	if d.Sev != SevWarning || !strings.Contains(d.Msg, "never consumed") {
		t.Errorf("unconsumed set diagnostic = %s", d)
	}
}

func TestSyncPairStraddlingBarrier(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.EmitBarrier()
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	d := wantPass(t, Check(prog), "sync")
	if d.Sev != SevWarning || !strings.Contains(d.Msg, "straddles") {
		t.Errorf("straddling-pair diagnostic = %s", d)
	}
}

func TestHazardMissingFlag(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 256})
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, 4096), Src0: isa.Contig(isa.UB, 0),
		Mask: isa.FullMask(), Repeat: 1})
	d := wantPass(t, Check(prog), "hazard")
	if !strings.Contains(d.Msg, "read-after-write") {
		t.Errorf("hazard diagnostic = %s", d)
	}
	// The implicit-scoreboard mode does not require flags.
	if _, ok := hasPass(CheckImplicit(prog), "hazard"); ok {
		t.Error("implicit mode must not run the hazard pass")
	}
}

func TestHazardFlagOrders(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 256})
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, 4096), Src0: isa.Contig(isa.UB, 0),
		Mask: isa.FullMask(), Repeat: 1})
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.EmitCopy(isa.UB, 4096, isa.GM, 0, 256)
	wantClean(t, Check(prog))
}

func TestHazardBarrierOrders(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 256})
	prog.EmitBarrier()
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, 4096), Src0: isa.Contig(isa.UB, 0),
		Mask: isa.FullMask(), Repeat: 1})
	prog.EmitBarrier()
	prog.EmitCopy(isa.UB, 4096, isa.GM, 0, 256)
	wantClean(t, Check(prog))
}

// TestHazardTransitiveOrder exercises ordering that no single flag
// expresses directly: MTE2 -> VEC -> MTE3 flags order the MTE2 write
// before the MTE3 read transitively through the vector pipe.
func TestHazardTransitiveOrder(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 256})
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	// In-place scale: reads and writes the loaded region on VEC.
	prog.Emit(&isa.VecInstr{Op: isa.VMuls, Dst: isa.Contig(isa.UB, 0), Src0: isa.Contig(isa.UB, 0),
		Mask: isa.FullMask(), Repeat: 1})
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 256) // reads what MTE2 wrote, no direct MTE2->MTE3 flag
	wantClean(t, Check(prog))
}

func TestInvariantsZeroMask(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.Mask{}, Repeat: 1})
	d := wantPass(t, CheckImplicit(prog), "invariants")
	if !strings.Contains(d.Msg, "all-zero mask") {
		t.Errorf("zero-mask diagnostic = %s", d)
	}
}

func TestInvariantsPartialOverlap(t *testing.T) {
	prog := cce.New("t")
	// Source one block past the destination: lanes read bytes the same
	// instruction overwrites.
	prog.Emit(&isa.VecInstr{Op: isa.VAdds, Dst: isa.Contig(isa.UB, 0), Src0: isa.Contig(isa.UB, isa.BlockBytes),
		Mask: isa.FullMask(), Repeat: 1})
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 256)
	d := wantPass(t, CheckImplicit(prog), "invariants")
	if !strings.Contains(d.Msg, "overlaps destination") {
		t.Errorf("overlap diagnostic = %s", d)
	}
}

func TestInvariantsInPlaceAccumulationAllowed(t *testing.T) {
	prog := cce.New("t")
	dst := isa.Contig(isa.UB, 0)
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: dst, Mask: isa.FullMask(), Repeat: 1})
	prog.Emit(&isa.VecInstr{Op: isa.VMax, Dst: dst, Src0: isa.Contig(isa.UB, 4096), Src1: dst,
		Mask: isa.FullMask(), Repeat: 1})
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 256)
	// Src1 == Dst is the reduction idiom; the uninitialized src0 read is
	// not the overlap pass's business.
	if _, ok := hasPass(CheckImplicit(prog), "invariants"); ok {
		t.Error("in-place accumulation must not be flagged")
	}
}

func TestInvariantsOverlappingCopy(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.CopyInstr{SrcBuf: isa.UB, SrcAddr: 0, DstBuf: isa.UB, DstAddr: 128, NBurst: 1, BurstBytes: 256})
	d := wantPass(t, CheckImplicit(prog), "invariants")
	if !strings.Contains(d.Msg, "overlaps destination") {
		t.Errorf("copy overlap diagnostic = %s", d)
	}
}

func TestDeadStoreOverwritten(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 1})
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 1})
	prog.EmitCopy(isa.UB, 0, isa.GM, 0, 256)
	d := wantPass(t, CheckImplicit(prog), "invariants")
	if d.Index != 0 || !strings.Contains(d.Msg, "dead store") {
		t.Errorf("dead-store diagnostic = %s", d)
	}
}

func TestDeadStoreNeverRead(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 1})
	d := wantPass(t, CheckImplicit(prog), "invariants")
	if !strings.Contains(d.Msg, "ever reads") {
		t.Errorf("never-read diagnostic = %s", d)
	}
}

func TestInvariantsMultiError(t *testing.T) {
	prog := cce.New("t")
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.UB, 0), Mask: isa.FullMask(), Repeat: 0})
	prog.Emit(&isa.VecInstr{Op: isa.VDup, Dst: isa.Contig(isa.L1, 0), Mask: isa.FullMask(), Repeat: 1})
	var invalid int
	for _, d := range CheckImplicit(prog) {
		if d.Pass == "invariants" && d.Sev == SevError {
			invalid++
		}
	}
	if invalid < 2 {
		t.Errorf("want both invalid instructions reported, got %d diagnostics", invalid)
	}
}

func TestSubtract(t *testing.T) {
	got := subtract([]span{{0, 100}}, 40, 60)
	want := []span{{0, 40}, {60, 100}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("subtract middle = %v", got)
	}
	if got := subtract([]span{{0, 10}, {20, 30}}, 5, 25); len(got) != 2 || got[0] != (span{0, 5}) || got[1] != (span{25, 30}) {
		t.Errorf("subtract across = %v", got)
	}
	if got := subtract([]span{{0, 10}}, 0, 10); len(got) != 0 {
		t.Errorf("subtract all = %v", got)
	}
}
