package lint

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
)

// checkInvariants re-validates every instruction through the program's
// multi-error InstrErrors (repeat caps, alignment to isa.BlockBytes,
// buffer placement), then checks constraints per-instruction validation
// cannot see: all-zero vector masks, destructive partial overlap between
// one instruction's source and destination, overlapping same-buffer
// copies, and dead stores.
func checkInvariants(prog *cce.Program) []Diagnostic {
	var diags []Diagnostic
	for _, ie := range prog.InstrErrors() {
		diags = append(diags, Diagnostic{
			Pass: "invariants", Sev: SevError, Index: ie.Index,
			Instr: prog.Instrs[ie.Index].String(), Msg: ie.Err.Error(),
		})
	}
	for idx, in := range prog.Instrs {
		switch v := in.(type) {
		case *isa.VecInstr:
			if v.Mask.Count() == 0 {
				diags = append(diags, Diagnostic{
					Pass: "invariants", Sev: SevError, Index: idx, Instr: in.String(),
					Msg: "vector instruction with an all-zero mask computes nothing",
				})
			}
			diags = append(diags, checkVecOverlap(idx, v)...)
		case *isa.CopyInstr:
			if v.SrcBuf == v.DstBuf {
				src, dst := v.Reads()[0], v.Writes()[0]
				if src.Overlaps(dst) {
					diags = append(diags, Diagnostic{
						Pass: "invariants", Sev: SevError, Index: idx, Instr: in.String(), Region: dst,
						Msg: fmt.Sprintf("copy source %v overlaps destination %v within one instruction", src, dst),
					})
				}
			}
		}
	}
	diags = append(diags, checkDeadStores(prog)...)
	return diags
}

// checkVecOverlap flags a source operand whose span partially overlaps the
// destination span. In-place accumulation — a source operand identical to
// the destination — is the normal reduction idiom (dst = max(src, dst))
// and processes each lane read-before-write, so it stays legal; a partial
// overlap means some lanes read bytes the same instruction already
// overwrote, which depends on the datapath's internal ordering.
func checkVecOverlap(idx int, v *isa.VecInstr) []Diagnostic {
	dst, ok := maskSpan(v.Dst, v.Mask, v.Repeat)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	check := func(o isa.Operand, name string) {
		if o == v.Dst {
			return
		}
		s, ok := maskSpan(o, v.Mask, v.Repeat)
		if ok && s.Overlaps(dst) {
			diags = append(diags, Diagnostic{
				Pass: "invariants", Sev: SevError, Index: idx, Instr: v.String(), Region: dst,
				Msg: fmt.Sprintf("%s span %v partially overlaps destination span %v (only exact in-place accumulation is well defined)", name, s, dst),
			})
		}
	}
	if v.Op.IsUnary() || v.Op.IsBinary() {
		check(v.Src0, "src0")
	}
	if v.Op.IsBinary() {
		check(v.Src1, "src1")
	}
	return diags
}

// span is a half-open byte interval used by the dead-store subtraction.
type span struct{ off, end int }

// denseWrite reports whether in writes every byte of its declared write
// region. Declared regions are convex hulls: a strided copy or a strided
// vector destination skips bytes inside its span, so only dense writes may
// kill (fully shadow) an earlier store in the dead-store analysis.
func denseWrite(in isa.Instr) bool {
	switch v := in.(type) {
	case *isa.CopyInstr:
		return v.NBurst == 1 || v.DstGap == 0
	case *isa.VecInstr:
		return v.Mask.Count() == isa.LanesPerRepeat &&
			v.Dst.BlkStride == 1 &&
			(v.Repeat == 1 || v.Dst.RepStride == isa.BlocksPerRepeat)
	case *isa.Im2ColInstr:
		// Mode-1 repeats write consecutive whole fractals.
		return true
	default:
		return false
	}
}

// checkDeadStores flags scratch-pad writes whose entire region is
// overwritten by later instructions before any instruction reads a byte of
// it, and writes never read at all by program end: provably wasted work,
// and in hand-scheduled kernels usually an addressing bug. Global memory
// is exempt — it is the program's output. Fractal-rounded tails are not
// false positives: the subsequent copy-out reads part of the region, which
// marks the whole store live. Only dense writes (denseWrite) shadow
// earlier stores; reads of any shape keep a store live.
func checkDeadStores(prog *cce.Program) []Diagnostic {
	n := len(prog.Instrs)
	reads := make([][]isa.Region, n)
	writes := make([][]isa.Region, n)
	for idx, in := range prog.Instrs {
		// A zero-mask vector op writes nothing; its declared write region
		// would otherwise shadow earlier stores and self-report as dead
		// (the zero mask is already an error from checkInvariants).
		if v, ok := in.(*isa.VecInstr); ok && v.Mask.Count() == 0 {
			continue
		}
		reads[idx] = in.Reads()
		writes[idx] = in.Writes()
	}
	var diags []Diagnostic
	for i := 0; i < n; i++ {
		for _, w := range writes[i] {
			if w.Buf == isa.GM || w.Off >= w.End {
				continue
			}
			remaining := []span{{w.Off, w.End}}
			live, dead, deadAt := false, false, -1
		scan:
			for j := i + 1; j < n; j++ {
				for _, r := range reads[j] {
					if r.Buf == w.Buf && overlapsAny(remaining, r.Off, r.End) {
						live = true
						break scan
					}
				}
				if denseWrite(prog.Instrs[j]) {
					for _, ww := range writes[j] {
						if ww.Buf == w.Buf {
							remaining = subtract(remaining, ww.Off, ww.End)
						}
					}
				}
				if len(remaining) == 0 {
					dead, deadAt = true, j
					break
				}
			}
			switch {
			case dead:
				diags = append(diags, Diagnostic{
					Pass: "invariants", Sev: SevWarning, Index: i, Instr: prog.Instrs[i].String(), Region: w,
					Msg: fmt.Sprintf("dead store: %v is entirely overwritten by instr %d (%s) before any read", w, deadAt, prog.Instrs[deadAt]),
				})
			case !live:
				diags = append(diags, Diagnostic{
					Pass: "invariants", Sev: SevWarning, Index: i, Instr: prog.Instrs[i].String(), Region: w,
					Msg: fmt.Sprintf("dead store: no instruction ever reads %v", w),
				})
			}
		}
	}
	return diags
}

func overlapsAny(spans []span, off, end int) bool {
	for _, s := range spans {
		if s.off < end && off < s.end {
			return true
		}
	}
	return false
}

// subtract removes [off, end) from every span, keeping the remainders.
func subtract(spans []span, off, end int) []span {
	out := make([]span, 0, len(spans))
	for _, s := range spans {
		if s.end <= off || end <= s.off { // disjoint
			out = append(out, s)
			continue
		}
		if s.off < off {
			out = append(out, span{s.off, off})
		}
		if end < s.end {
			out = append(out, span{end, s.end})
		}
	}
	return out
}
