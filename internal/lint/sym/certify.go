package sym

import (
	"fmt"
	"sort"
	"strings"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/depgraph"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/ops"
)

// SchedKey identifies one schedule pattern a certificate quantifies over:
// a shape-generic point of the autoscheduler's candidate space. Unlike
// ops.ScheduleParams it carries no concrete band — band-split candidates
// are keyed by their divisor (band = default band / BandDiv, the form the
// search enumerates), which is what makes one certificate cover the
// pattern at every shape.
type SchedKey struct {
	// Mode is the lowering mode (the "family/variant" variant).
	Mode string
	// BandDiv keys the band-split candidates: 0 means the default band,
	// d > 0 means default band / d.
	BandDiv int
	// Buffers, Saturate, RepeatChunk, Epilogue, Gather mirror the
	// ops.ScheduleParams knobs (0 = default).
	Buffers, Saturate, RepeatChunk, Epilogue, Gather int
}

func (k SchedKey) String() string {
	s := "default"
	var knobs []string
	if k.BandDiv > 0 {
		knobs = append(knobs, fmt.Sprintf("band/%d", k.BandDiv))
	}
	if k.Buffers != 0 {
		knobs = append(knobs, fmt.Sprintf("buffers=%d", k.Buffers))
	}
	if k.Saturate != 0 {
		knobs = append(knobs, fmt.Sprintf("saturate=%d", k.Saturate))
	}
	if k.RepeatChunk != 0 {
		knobs = append(knobs, fmt.Sprintf("repeat_chunk=%d", k.RepeatChunk))
	}
	if k.Epilogue != 0 {
		knobs = append(knobs, "epilogue=deferred")
	}
	if k.Gather != 0 {
		knobs = append(knobs, "gather=mte")
	}
	if len(knobs) > 0 {
		s = strings.Join(knobs, " ")
	}
	return s
}

// pattern returns the ScheduleParams the pattern compiles with before
// band resolution (Band stays 0; BandDiv is resolved per shape).
func (k SchedKey) pattern() ops.ScheduleParams {
	return ops.ScheduleParams{
		Mode:        k.Mode,
		Buffers:     k.Buffers,
		Saturate:    k.Saturate,
		RepeatChunk: k.RepeatChunk,
		Epilogue:    k.Epilogue,
		Gather:      k.Gather,
	}
}

// Obligation names one property a certificate discharges.
type Obligation string

const (
	// ObLintClean: the concrete static verifier (implicit-sync mode)
	// reports no errors — the umbrella obligation certificate admission
	// actually stands in for.
	ObLintClean Obligation = "lint-clean"
	// ObBounds: every buffer access stays inside its address space
	// (region end <= capacity, offset >= 0), discharged over the whole
	// cell via the recovered per-buffer bound polynomials.
	ObBounds Obligation = "buffer-bounds"
	// ObSync: the explicitly synchronized form of the program
	// (cce.AutoSync) passes the explicit-mode hazard verifier and pairs
	// every set_flag with exactly one wait_flag.
	ObSync Obligation = "sync-protocol"
	// ObDeadlockFree: the queue-accurate flag replay
	// (depgraph.Replay) retires every instruction — no blocked pipe head.
	ObDeadlockFree Obligation = "deadlock-free"
	// ObPerfStructure: the static performance bounds are well-formed
	// (BusyBound <= CritPath) and the perf analysis reports no
	// error-severity diagnostic.
	ObPerfStructure Obligation = "perf-structure"
	// ObStructure: the program's shape — instruction count, per-kind
	// counts, sync pair counts — follows the recovered polynomial model
	// across the cell (the evidence that witnesses generalize).
	ObStructure Obligation = "structure-stable"
)

// Obligations lists every obligation a certificate discharges, in report
// order.
func Obligations() []Obligation {
	return []Obligation{ObLintClean, ObBounds, ObSync, ObDeadlockFree, ObPerfStructure, ObStructure}
}

// Grade ranks how a cell's proof was discharged.
type Grade int

const (
	// GradeEnumerated: every member shape of the cell was compiled and
	// checked concretely — exhaustive, unconditionally sound.
	GradeEnumerated Grade = iota
	// GradePolynomial: obligations hold on all witnesses, every measured
	// quantity fits an exact polynomial model cross-validated on held-out
	// witnesses, and the bounds obligations were discharged at every
	// member shape by evaluating the model.
	GradePolynomial
	// GradeWitnessed: obligations hold on all sampled witnesses but some
	// quantity resisted a polynomial model within the refinement budget.
	// Sound only relative to the concrete verifier; the CI cross-check
	// gate is the backstop.
	GradeWitnessed
)

func (g Grade) String() string {
	switch g {
	case GradeEnumerated:
		return "enumerated"
	case GradePolynomial:
		return "polynomial"
	case GradeWitnessed:
		return "witnessed"
	}
	return fmt.Sprintf("Grade(%d)", int(g))
}

// CellProof is the proof record of one domain cell (an arithmetic
// progression of spatial sizes: Lo <= S <= Hi, S mod Step == Residue).
type CellProof struct {
	Lo, Hi, Residue, Step int
	Grade                 Grade
	Certified             bool
	// Obligation and Reason identify the violated obligation when the
	// cell failed; Counterexample is the smallest member shape shown (by
	// boundary enumeration) to exhibit the violation, 0 when none was
	// isolated.
	Obligation     Obligation
	Reason         string
	Counterexample int
	// Witnesses are the member shapes compiled and checked concretely.
	Witnesses []int
	// Polys renders the recovered quantity models (GradePolynomial only).
	Polys map[string]string
}

// Members counts the spatial sizes the cell covers.
func (c CellProof) Members() int {
	return len(cell{lo: c.Lo, hi: c.Hi, res: c.Residue, step: c.Step}.members())
}

func (c CellProof) contains(s int) bool {
	return c.Lo <= s && s <= c.Hi && ((s%c.Step)+c.Step)%c.Step == c.Residue
}

// Certificate is one sealed proof: for kernel, schedule pattern Sched and
// every shape in Domain (compiled against the Buffers capacities), the
// listed Obligations hold, cell by cell.
type Certificate struct {
	// Kernel is "family/variant".
	Kernel string
	// Sched is the schedule pattern the proof quantifies over.
	Sched SchedKey
	// Buffers are the normalized compile capacities the proof ran under;
	// admission requires an exact match.
	Buffers buffer.Config
	// Domain is the parameter domain.
	Domain Domain
	// Obligations lists what was discharged.
	Obligations []Obligation
	// Cells are the refinement leaves, ascending by (Residue, Lo).
	Cells []CellProof
	// Inapplicable carries the kernel's rejection when the lowering has
	// no such schedule axis (ops.InvalidScheduleError at every probed
	// shape); the certificate then admits nothing and certifies nothing —
	// it documents the edge of the schedule space.
	Inapplicable string
	// WitnessCompiles counts the concrete compilations the proof spent.
	WitnessCompiles int
}

// Certified reports that the proof fully discharged: applicable and every
// cell certified.
func (c *Certificate) Certified() bool {
	if c.Inapplicable != "" {
		return false
	}
	for _, cl := range c.Cells {
		if !cl.Certified {
			return false
		}
	}
	return len(c.Cells) > 0
}

// Admits reports whether the certificate proves the obligations for p:
// p lies in the domain and its cell is certified.
func (c *Certificate) Admits(p isa.ConvParams) bool {
	if c.Inapplicable != "" || !c.Domain.Contains(p) {
		return false
	}
	for _, cl := range c.Cells {
		if cl.contains(p.Ih) {
			return cl.Certified
		}
	}
	return false
}

// Coverage returns how many of the domain's member shapes are admitted
// versus total.
func (c *Certificate) Coverage() (admitted, total int) {
	for _, cl := range c.Cells {
		n := cl.Members()
		total += n
		if cl.Certified {
			admitted += n
		}
	}
	return admitted, total
}

// Summary renders a one-line account.
func (c *Certificate) Summary() string {
	if c.Inapplicable != "" {
		return fmt.Sprintf("%s [%s] %s: inapplicable (%s)", c.Kernel, c.Sched, c.Domain, c.Inapplicable)
	}
	adm, tot := c.Coverage()
	grades := map[Grade]int{}
	for _, cl := range c.Cells {
		grades[cl.Grade]++
	}
	return fmt.Sprintf("%s [%s] %s: %d/%d shapes certified, %d cells (%d enumerated, %d polynomial, %d witnessed), %d witness compiles",
		c.Kernel, c.Sched, c.Domain, adm, tot, len(c.Cells),
		grades[GradeEnumerated], grades[GradePolynomial], grades[GradeWitnessed], c.WitnessCompiles)
}

const (
	// maxEnum is the largest cell the prover certifies by exhaustive
	// enumeration instead of a fitted model.
	maxEnum = 8
	// fitSamples is how many witnesses larger cells compile: maxDegree+1
	// interpolation points plus held-out validation points.
	fitSamples = 7
	// syncWitnesses caps how many witnesses per cell discharge the
	// sync-protocol and deadlock obligations (cell boundaries plus the
	// middle). These obligations replay the explicitly synchronized form
	// of the program — quadratic in program length — so running them on
	// every witness would dominate proving; the per-kind structural
	// model (ObStructure) is what carries their evidence across the
	// cell's remaining shapes.
	syncWitnesses = 3
	// maxDepth bounds cell bisection when a model does not fit or a
	// witness fails (isolating capacity breakpoints).
	maxDepth = 4
	// boundaryScan bounds the domain-boundary enumeration that isolates
	// the smallest concrete counterexample of a failing cell.
	boundaryScan = 8
)

// measurement is everything the prover extracts from one witness compile.
type measurement struct {
	s          int
	invalid    string     // ops.InvalidScheduleError reason, "" otherwise
	compileErr string     // any other compile failure (capacity)
	failed     Obligation // first violated obligation ("" when all hold)
	reason     string
	funcs      map[string]int64 // measured quantities, keyed by name
	prog       *cce.Program     // kept for the deferred sync obligations
	syncDone   bool             // sync/deadlock obligations ran on this witness
}

func (m *measurement) bad() bool {
	return m.invalid != "" || m.compileErr != "" || m.failed != ""
}

func (m *measurement) describe() (Obligation, string) {
	switch {
	case m.invalid != "":
		return "", "invalid schedule: " + m.invalid
	case m.compileErr != "":
		return "", "compile: " + m.compileErr
	default:
		return m.failed, m.reason
	}
}

// prover carries one Prove run's context.
type prover struct {
	kernel string
	key    SchedKey
	dom    Domain
	spec   ops.Spec
	caps   [isa.NumBufs]int
	cert   *Certificate
	memo   map[int]*measurement
}

// Prove builds the certificate for (kernel, schedule pattern, domain)
// against the given buffer capacities. It never fails: inapplicable
// patterns and undischarged cells are recorded on the certificate, with
// the violated obligation and a concrete counterexample shape where one
// was isolated.
func Prove(kernel string, key SchedKey, dom Domain, cfg buffer.Config) *Certificate {
	cfg = cfg.Normalized()
	pr := &prover{
		kernel: kernel,
		key:    key,
		dom:    dom,
		// Witnesses compile unstrict (the prover runs the verifier itself,
		// keeping diagnostics) and unoptimized (lint runs on the emitted
		// program, before the optimizer, so the level cannot change the
		// verdict — and certificates then admit any Opt level).
		spec: ops.Spec{Buffers: cfg},
		caps: cfg.Capacities(),
		cert: &Certificate{
			Kernel:      kernel,
			Sched:       key,
			Buffers:     cfg,
			Domain:      dom,
			Obligations: Obligations(),
		},
		memo: map[int]*measurement{},
	}
	cells := initialCells(dom)
	if len(cells) == 0 {
		return pr.cert
	}
	if reason := pr.applicability(cells); reason != "" {
		pr.cert.Inapplicable = reason
		return pr.cert
	}
	for _, c := range cells {
		pr.certifyCell(c, 0)
	}
	sort.Slice(pr.cert.Cells, func(i, j int) bool {
		if pr.cert.Cells[i].Residue != pr.cert.Cells[j].Residue {
			return pr.cert.Cells[i].Residue < pr.cert.Cells[j].Residue
		}
		return pr.cert.Cells[i].Lo < pr.cert.Cells[j].Lo
	})
	return pr.cert
}

// applicability probes a few shapes across the domain; a pattern every
// probe rejects with an InvalidScheduleError is outside the kernel's
// schedule space, not a failed proof. Probes are compile-only (obligation
// checking waits for the real witnesses).
func (pr *prover) applicability(cells []cell) string {
	var probes []int
	for _, c := range cells {
		ms := c.members()
		probes = append(probes, ms[0], ms[len(ms)/2], ms[len(ms)-1])
	}
	reason := ""
	for _, s := range probes {
		_, err := ops.CompileKernel(pr.kernel, pr.spec, pr.dom.Params(s), pr.key.pattern())
		pr.cert.WitnessCompiles++
		if !ops.IsInvalidSchedule(err) {
			return ""
		}
		reason = err.Error()
	}
	return reason
}

// certifyCell discharges one cell, bisecting on failures or unfittable
// quantities while depth remains.
func (pr *prover) certifyCell(c cell, depth int) {
	ms := c.members()
	proof := CellProof{Lo: c.lo, Hi: c.hi, Residue: c.res, Step: c.step}

	if len(ms) <= maxEnum {
		// Exhaustive: compile and check every member (sync obligations on
		// the boundary-and-middle subset, like every cell).
		syncAt := syncSet(len(ms))
		var firstBad *measurement
		for i, s := range ms {
			m := pr.measure(s, syncAt[i])
			proof.Witnesses = append(proof.Witnesses, s)
			if m.bad() && firstBad == nil {
				firstBad = m
			}
		}
		proof.Grade = GradeEnumerated
		if firstBad != nil {
			proof.Obligation, proof.Reason = firstBad.describe()
			proof.Counterexample = firstBad.s
		} else {
			proof.Certified = true
		}
		pr.cert.Cells = append(pr.cert.Cells, proof)
		return
	}

	// Sampled: spread fitSamples witnesses across the progression.
	idx := sampleIndices(len(ms), fitSamples)
	syncAt := syncSet(len(idx))
	var wits []*measurement
	var bad *measurement
	for k, i := range idx {
		m := pr.measure(ms[i], syncAt[k])
		proof.Witnesses = append(proof.Witnesses, ms[i])
		wits = append(wits, m)
		if m.bad() && bad == nil {
			bad = m
		}
	}
	if bad != nil {
		// A witness fails: a capacity or validity breakpoint runs through
		// the cell. Bisect to isolate it; out of budget, fail the cell
		// with the smallest concrete counterexample boundary enumeration
		// finds.
		if a, b, ok := c.split(); ok && depth < maxDepth {
			pr.certifyCell(a, depth+1)
			pr.certifyCell(b, depth+1)
			return
		}
		pr.failCell(&proof, c, bad)
		pr.cert.Cells = append(pr.cert.Cells, proof)
		return
	}

	// Every witness passes. Recover each measured quantity as an exact
	// polynomial, cross-validated on the held-out witnesses.
	xs := make([]int, len(wits))
	for i, m := range wits {
		xs[i] = m.s
	}
	polys := map[string]Poly{}
	fitted := true
	for _, name := range funcNames(wits) {
		ys := make([]int64, len(wits))
		for i, m := range wits {
			ys[i] = m.funcs[name]
		}
		p, ok := fitAndValidate(xs, ys)
		if !ok {
			fitted = false
			break
		}
		polys[name] = p
	}
	if !fitted {
		if a, b, ok := c.split(); ok && depth < maxDepth {
			pr.certifyCell(a, depth+1)
			pr.certifyCell(b, depth+1)
			return
		}
		// Out of refinement budget: the witnesses hold but the model does
		// not — certify at the weaker witnessed grade.
		proof.Grade = GradeWitnessed
		proof.Certified = true
		pr.cert.Cells = append(pr.cert.Cells, proof)
		return
	}

	// Whole-cell discharge of the bounds obligations on the model:
	// evaluate the recovered per-buffer bound polynomials at every member
	// shape. A predicted violation is re-checked concretely — real ones
	// fail the cell with a true counterexample, phantom ones mean the
	// model broke and the cell refines.
	if s, name, ok := pr.predictBoundsViolation(ms, polys); ok {
		m := pr.measure(s, false)
		if m.bad() {
			pr.failCell(&proof, c, m)
			pr.cert.Cells = append(pr.cert.Cells, proof)
			return
		}
		if a, b, ok := c.split(); ok && depth < maxDepth {
			pr.certifyCell(a, depth+1)
			pr.certifyCell(b, depth+1)
			return
		}
		proof.Grade = GradeWitnessed
		proof.Certified = true
		proof.Reason = fmt.Sprintf("model for %s mispredicted at S=%d; witnesses hold", name, s)
		pr.cert.Cells = append(pr.cert.Cells, proof)
		return
	}

	proof.Grade = GradePolynomial
	proof.Certified = true
	proof.Polys = map[string]string{}
	for name, p := range polys {
		proof.Polys[name] = p.String()
	}
	pr.cert.Cells = append(pr.cert.Cells, proof)
}

// predictBoundsViolation evaluates the recovered bound polynomials at
// every member shape against the capacities; returns the first predicted
// out-of-bounds shape and the quantity that flagged it.
func (pr *prover) predictBoundsViolation(members []int, polys map[string]Poly) (s int, name string, ok bool) {
	type check struct {
		name string
		p    Poly
		cap  int64 // access end must stay <= cap; <0 means offset >= 0 check
	}
	var checks []check
	for n, p := range polys {
		var buf string
		if rest, found := strings.CutPrefix(n, "buf/"); found {
			if b, kind, ok2 := strings.Cut(rest, "/"); ok2 {
				buf, rest = b, kind
				for id := isa.GM; id < isa.NumBufs; id++ {
					if id.String() != buf || pr.caps[id] <= 0 {
						continue
					}
					if rest == "maxend" {
						checks = append(checks, check{n, p, int64(pr.caps[id])})
					}
				}
				if rest == "minoff" {
					checks = append(checks, check{n, p, -1})
				}
			}
		}
	}
	for _, s := range members {
		for _, ck := range checks {
			v, isInt := ck.p.EvalInt(s)
			if !isInt {
				return s, ck.name, true
			}
			if ck.cap < 0 {
				if v < 0 {
					return s, ck.name, true
				}
			} else if v > ck.cap {
				return s, ck.name, true
			}
		}
	}
	return 0, "", false
}

// failCell records a failed cell, replacing the sampled counterexample
// with the smallest member the boundary enumeration proves failing.
func (pr *prover) failCell(proof *CellProof, c cell, bad *measurement) {
	proof.Grade = GradeWitnessed
	best := bad
	scanned := 0
	for _, s := range c.members() {
		if s >= bad.s || scanned >= boundaryScan {
			break
		}
		scanned++
		if m := pr.measure(s, true); m.bad() {
			best = m
			break
		}
	}
	proof.Obligation, proof.Reason = best.describe()
	proof.Counterexample = best.s
}

// syncSet marks which of n witnesses (in ascending order) discharge the
// sync-protocol and deadlock obligations: the boundaries and the middle
// (at most syncWitnesses). The sync replay is quadratic in program
// length, so running it on every witness would dominate proving; the
// bounds and structure obligations still run on all witnesses.
func syncSet(n int) []bool {
	at := make([]bool, n)
	if n == 0 {
		return at
	}
	at[0] = true
	at[n-1] = true
	at[n/2] = true
	return at
}

// sampleIndices spreads k distinct indices over [0, n).
func sampleIndices(n, k int) []int {
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	seen := map[int]bool{}
	for i := 0; i < k; i++ {
		j := i * (n - 1) / max(1, k-1)
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// funcNames returns the union of measured quantity names, sorted.
func funcNames(wits []*measurement) []string {
	set := map[string]bool{}
	for _, m := range wits {
		for n := range m.funcs {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// measure compiles the pattern at spatial size s and checks the
// obligations concretely, memoized per prover (cells share witnesses
// with their refinements). The cheap obligations — lint-clean, bounds,
// perf-structure — and the structural quantities always run; the
// quadratic sync-protocol and deadlock obligations run only when
// withSync is set (and are upgraded in place on a memoized witness).
func (pr *prover) measure(s int, withSync bool) *measurement {
	if m, ok := pr.memo[s]; ok {
		if withSync && !m.syncDone && !m.bad() {
			pr.measureSync(m)
		}
		return m
	}
	m := &measurement{s: s, funcs: map[string]int64{}}
	pr.memo[s] = m
	p := pr.dom.Params(s)

	sp := pr.key.pattern()
	if pr.key.BandDiv > 0 {
		// Band-split patterns perturb the default band, so resolve it
		// first — the same two-step the schedule search performs.
		def, err := ops.CompileKernel(pr.kernel, pr.spec, p, ops.ScheduleParams{Mode: pr.key.Mode})
		pr.cert.WitnessCompiles++
		if err != nil {
			pr.recordCompileErr(m, err)
			return m
		}
		bb := def.Sched.Band / pr.key.BandDiv
		if bb < 1 {
			m.invalid = fmt.Sprintf("band split /%d leaves no band (default band %d)", pr.key.BandDiv, def.Sched.Band)
			return m
		}
		sp.Band = bb
	}
	pl, err := ops.CompileKernel(pr.kernel, pr.spec, p, sp)
	pr.cert.WitnessCompiles++
	if err != nil {
		pr.recordCompileErr(m, err)
		return m
	}
	prog := pl.Prog
	m.prog = prog

	// Structural quantities for the polynomial model.
	m.funcs["instrs"] = int64(len(prog.Instrs))
	for _, in := range prog.Instrs {
		m.funcs["kind/"+instrKind(in)]++
	}
	bounds := accessBounds(prog)
	for id := isa.GM; id < isa.NumBufs; id++ {
		if b := bounds[id]; b.used {
			m.funcs["buf/"+id.String()+"/maxend"] = b.maxEnd
			m.funcs["buf/"+id.String()+"/minoff"] = b.minOff
		}
	}

	// ObLintClean: the umbrella — the concrete verifier, implicit mode.
	diags := lint.CheckWith(lint.Options{Caps: pr.caps, Mode: lint.SyncImplicit}, prog)
	if errs := lint.Errors(diags); len(errs) > 0 {
		m.failed = ObLintClean
		m.reason = fmt.Sprintf("%d lint error(s), first: %s", len(errs), errs[0])
		return m
	}

	// ObBounds, concretely at this witness (the model discharges the rest
	// of the cell).
	for id := isa.GM; id < isa.NumBufs; id++ {
		b := bounds[id]
		if !b.used {
			continue
		}
		if b.minOff < 0 {
			m.failed = ObBounds
			m.reason = fmt.Sprintf("%v access at negative offset %d", id, b.minOff)
			return m
		}
		if cap := pr.caps[id]; cap > 0 && b.maxEnd > int64(cap) {
			m.failed = ObBounds
			m.reason = fmt.Sprintf("%v access ends at %d, capacity %d", id, b.maxEnd, cap)
			return m
		}
	}

	// ObPerfStructure: the static bound construction is valid.
	if pl.Perf == nil {
		m.failed = ObPerfStructure
		m.reason = "plan carries no perf report"
		return m
	}
	if pl.Perf.BusyBound > pl.Perf.CritPath {
		m.failed = ObPerfStructure
		m.reason = fmt.Sprintf("BusyBound %d exceeds CritPath %d", pl.Perf.BusyBound, pl.Perf.CritPath)
		return m
	}
	for _, d := range pl.Perf.Diags {
		if d.Sev == lint.SevError {
			m.failed = ObPerfStructure
			m.reason = "perf analysis error: " + d.Msg
			return m
		}
	}
	if withSync {
		pr.measureSync(m)
	}
	return m
}

// measureSync discharges the deferred sync obligations on one witness:
// the explicitly synchronized form of the program (cce.AutoSync) must
// pass the explicit-mode hazard verifier, pair every set_flag with a
// wait_flag, and retire completely under the queue-accurate flag replay.
func (pr *prover) measureSync(m *measurement) {
	m.syncDone = true
	synced := cce.AutoSync(m.prog)
	sdiags := lint.CheckWith(lint.Options{Caps: pr.caps, Mode: lint.SyncExplicit}, synced)
	if errs := lint.Errors(sdiags); len(errs) > 0 {
		m.failed = ObSync
		m.reason = fmt.Sprintf("explicit lint after AutoSync: %d error(s), first: %s", len(errs), errs[0])
		return
	}
	sets, waits := 0, 0
	for _, in := range synced.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr:
			sets++
		case *isa.WaitFlagInstr:
			waits++
		}
	}
	if sets != waits {
		m.failed = ObSync
		m.reason = fmt.Sprintf("%d set_flag vs %d wait_flag after AutoSync", sets, waits)
		return
	}
	// ObDeadlockFree: the queue-accurate replay retires everything.
	if sched := depgraph.Replay(synced); len(sched.Deadlocked) > 0 {
		m.failed = ObDeadlockFree
		m.reason = fmt.Sprintf("flag replay deadlocks at instruction %d", sched.Deadlocked[0])
	}
}

func (pr *prover) recordCompileErr(m *measurement, err error) {
	if ops.IsInvalidSchedule(err) {
		m.invalid = err.Error()
	} else {
		m.compileErr = err.Error()
	}
}

// bufBounds aggregates one buffer's access envelope.
type bufBounds struct {
	used   bool
	minOff int64
	maxEnd int64
}

// accessBounds folds every instruction's read and write regions into a
// per-buffer envelope: the affine quantities the bounds obligation is
// stated over.
func accessBounds(prog *cce.Program) [isa.NumBufs]bufBounds {
	var out [isa.NumBufs]bufBounds
	add := func(r isa.Region) {
		b := &out[r.Buf]
		if !b.used {
			b.used = true
			b.minOff = int64(r.Off)
			b.maxEnd = int64(r.End)
			return
		}
		b.minOff = min(b.minOff, int64(r.Off))
		b.maxEnd = max(b.maxEnd, int64(r.End))
	}
	for _, in := range prog.Instrs {
		for _, r := range in.Reads() {
			add(r)
		}
		for _, r := range in.Writes() {
			add(r)
		}
	}
	return out
}

// instrKind names an instruction for the per-kind structural counts.
func instrKind(in isa.Instr) string {
	name := fmt.Sprintf("%T", in)
	name = strings.TrimPrefix(name, "*isa.")
	name = strings.TrimSuffix(name, "Instr")
	if v, ok := in.(*isa.VecInstr); ok {
		return fmt.Sprintf("%s/%v", name, v.Op)
	}
	return name
}
