package sym

import (
	"sort"
	"strings"
	"sync"

	"davinci/internal/buffer"
	"davinci/internal/obs"
	"davinci/internal/ops"
)

// Verdict classifies one admission query against the registry.
type Verdict int

const (
	// Miss: the registry holds no certificate at all for the queried
	// kernel — certification never ran for it.
	Miss Verdict = iota
	// Fallback: certificates exist for the kernel, but the queried shape,
	// schedule or capacities fall outside every certified domain; the
	// compile falls back to concrete lint.
	Fallback
	// Hit: a sealed certificate admits the query; concrete lint may be
	// skipped.
	Hit
)

func (v Verdict) String() string {
	switch v {
	case Hit:
		return "hit"
	case Fallback:
		return "fallback"
	case Miss:
		return "miss"
	}
	return "unknown"
}

// regKey indexes certificates by the exact-match parts of a query.
type regKey struct {
	kernel  string
	sched   SchedKey
	buffers buffer.Config
}

// Registry holds sealed certificates and answers admission queries. It is
// safe for concurrent use; Install publishes it as the process-wide
// certifier (ops.RegisterCertifier), at which point every strict compile
// in the process consults it.
type Registry struct {
	mu    sync.RWMutex
	certs []*Certificate
	index map[regKey][]*Certificate
	// kernels tracks which kernels have any certificate, for the
	// miss/fallback distinction.
	kernels map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[regKey][]*Certificate{}, kernels: map[string]bool{}}
}

// Add seals certificates into the registry.
func (r *Registry) Add(certs ...*Certificate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range certs {
		if c == nil {
			continue
		}
		r.certs = append(r.certs, c)
		r.kernels[c.Kernel] = true
		k := regKey{kernel: c.Kernel, sched: c.Sched, buffers: c.Buffers}
		r.index[k] = append(r.index[k], c)
	}
}

// Certificates returns every sealed certificate, sorted by kernel then
// pattern for deterministic reporting.
func (r *Registry) Certificates() []*Certificate {
	r.mu.RLock()
	out := append([]*Certificate(nil), r.certs...)
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].Sched.String() < out[j].Sched.String()
	})
	return out
}

// keyFromQuery maps a compile-time admission query onto the registry's
// shape-generic pattern key. ok=false means the query's schedule is not
// expressible as a pattern — a concrete band of unknown provenance — and
// must fall back to concrete lint.
func keyFromQuery(q ops.CertQuery) (SchedKey, bool) {
	k := SchedKey{
		Mode:        q.Sched.Mode,
		Buffers:     q.Sched.Buffers,
		Saturate:    q.Sched.Saturate,
		RepeatChunk: q.Sched.RepeatChunk,
		Epilogue:    q.Sched.Epilogue,
		Gather:      q.Sched.Gather,
	}
	if k.Mode == "" {
		if _, v, ok := strings.Cut(q.Kernel, "/"); ok {
			k.Mode = v
		}
	}
	switch {
	case q.Sched.Band == 0:
		k.BandDiv = 0
	case q.BandDiv > 0:
		k.BandDiv = q.BandDiv
	default:
		return k, false
	}
	return k, true
}

// Lookup classifies an admission query: Hit when a sealed certificate
// proves the queried (kernel, schedule pattern, capacities) lint-clean at
// the queried shape, Fallback when certificates exist but none admit,
// Miss when the kernel was never certified.
func (r *Registry) Lookup(q ops.CertQuery) Verdict {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.kernels[q.Kernel] {
		return Miss
	}
	key, ok := keyFromQuery(q)
	if !ok {
		return Fallback
	}
	rk := regKey{kernel: q.Kernel, sched: key, buffers: q.Spec.Buffers.Normalized()}
	for _, c := range r.index[rk] {
		if c.Admits(q.Params) {
			return Hit
		}
	}
	return Fallback
}

// Install publishes the registry as the process-wide certificate
// admission predicate (ops.RegisterCertifier) and wires the
// cert_hits / cert_misses / cert_fallbacks counters into m (nil for no
// telemetry). Until Uninstall, every strict compile consults the
// registry and skips concrete lint on a Hit.
func (r *Registry) Install(m *obs.Registry) {
	var hits, misses, fallbacks *obs.Counter
	if m != nil {
		hits = m.Counter("cert_hits")
		misses = m.Counter("cert_misses")
		fallbacks = m.Counter("cert_fallbacks")
	}
	ops.RegisterCertifier(func(q ops.CertQuery) bool {
		v := r.Lookup(q)
		if m != nil {
			switch v {
			case Hit:
				hits.Inc()
			case Fallback:
				fallbacks.Inc()
			case Miss:
				misses.Inc()
			}
		}
		return v == Hit
	})
}

// Uninstall removes any installed certifier: strict compiles run concrete
// lint again.
func Uninstall() { ops.RegisterCertifier(nil) }
