package sym

import (
	"sort"
	"strings"

	"davinci/internal/buffer"
)

// CertifiedFamilies maps every pooling kernel family to the lowering
// variants the certification layer covers. cmd/davinci-vet cross-checks
// this table against the ops dispatch table (ops.kernelFamilies), so a
// newly registered kernel family without certification entries fails vet.
// The Cube-unit convolutions are deliberately absent: their lowerings are
// not schedule-searchable (sched_nosearch) and their admission would save
// one lint of a fixed program shape.
var CertifiedFamilies = map[string][]string{
	"maxpool_fwd":        {"standard", "im2col", "expansion", "xysplit"},
	"maxpool_fwd_argmax": {"standard", "im2col"},
	"maxpool_bwd":        {"standard", "col2im"},
	"avgpool_fwd":        {"standard", "im2col", "cube"},
	"avgpool_bwd":        {"standard", "col2im"},
}

// Kernels returns every certified "family/variant" kernel, sorted.
func Kernels() []string {
	var out []string
	for fam, variants := range CertifiedFamilies {
		for _, v := range variants {
			out = append(out, fam+"/"+v)
		}
	}
	sort.Strings(out)
	return out
}

// Table I spatial extent: every evaluation workload is a square pooling
// input between 17x17 and 224x224 under one of two configurations —
// kernel 3 stride 2 (InceptionV3, Xception, Resnet50) or kernel 2 stride
// 2 (VGG16). The direct (non-fractal) lowerings emit programs quadratic
// in S and the sync-protocol obligations replay them quadratically
// again, so their certified ceiling stops where witness proving stays
// tractable; larger shapes simply fall back to concrete lint (counted as
// cert_fallbacks, never a soundness question).
const (
	domainLo       = 17
	domainHi       = 224
	domainHiDirect = 64
)

// DomainsFor returns the parameter domains a kernel is certified over:
// the two Table I pooling configurations across the Table I spatial
// range (capped for the direct lowerings, see domainHiDirect).
func DomainsFor(kernel string) []Domain {
	hi := domainHi
	variant := kernel
	if _, v, ok := strings.Cut(kernel, "/"); ok {
		variant = v
	}
	switch variant {
	case "im2col", "col2im", "cube":
		// Fractal lowerings: program length grows with the fractal count,
		// near-linear in S — the full Table I range proves quickly.
	default:
		hi = domainHiDirect
	}
	return []Domain{
		{SLo: domainLo, SHi: hi, Kh: 3, Kw: 3, Sh: 2, Sw: 2},
		{SLo: domainLo, SHi: hi, Kh: 2, Kw: 2, Sh: 2, Sw: 2},
	}
}

// Patterns enumerates the schedule patterns certified per kernel: the
// exact candidate set the autoscheduler's enumerator probes
// (internal/sched.Search), in shape-generic form. Patterns a lowering
// rejects prove inapplicable and document the edge of the space.
func Patterns(variant string) []SchedKey {
	base := SchedKey{Mode: variant}
	keys := []SchedKey{base}
	for _, div := range []int{2, 4, 8} {
		k := base
		k.BandDiv = div
		keys = append(keys, k)
	}
	k := base
	k.Buffers = 1
	keys = append(keys, k)
	k = base
	k.BandDiv, k.Buffers = 2, 1
	keys = append(keys, k)
	k = base
	k.Saturate = 2 // ops.SatNarrow
	keys = append(keys, k)
	for _, rc := range []int{16, 64} {
		k = base
		k.RepeatChunk = rc
		keys = append(keys, k)
	}
	k = base
	k.Epilogue = 1 // ops.EpiDeferred
	keys = append(keys, k)
	k = base
	k.Gather = 1 // ops.GatherMTE
	keys = append(keys, k)
	return keys
}

// ProveAll builds the full certificate registry for the given capacities:
// every certified kernel x every Table I domain x every enumerable
// schedule pattern. Kernels prove concurrently (each prover is
// independent); the result is deterministically ordered.
func ProveAll(cfg buffer.Config) []*Certificate {
	return proveSet(cfg, Kernels(), true)
}

// ProveDefaults proves only each kernel's default schedule pattern — the
// point every cached strict compile hits — for a cheap registry (the
// certsweep benchmark and quick admission setups).
func ProveDefaults(cfg buffer.Config) []*Certificate {
	return proveSet(cfg, Kernels(), false)
}

// ProveKernels is ProveAll restricted to the given kernels.
func ProveKernels(cfg buffer.Config, kernels []string) []*Certificate {
	return proveSet(cfg, kernels, true)
}

// ProveKernelDefaults is ProveDefaults restricted to the given kernels.
func ProveKernelDefaults(cfg buffer.Config, kernels []string) []*Certificate {
	return proveSet(cfg, kernels, false)
}

func proveSet(cfg buffer.Config, kernels []string, allPatterns bool) []*Certificate {
	type job struct {
		kernel string
		key    SchedKey
		dom    Domain
	}
	var jobs []job
	for _, kernel := range kernels {
		variant := kernel
		if _, v, ok := strings.Cut(kernel, "/"); ok {
			variant = v
		}
		keys := []SchedKey{{Mode: variant}}
		if allPatterns {
			keys = Patterns(variant)
		}
		for _, dom := range DomainsFor(kernel) {
			for _, key := range keys {
				jobs = append(jobs, job{kernel, key, dom})
			}
		}
	}
	certs := make([]*Certificate, len(jobs))
	sem := make(chan struct{}, 8)
	done := make(chan int, len(jobs))
	for i, j := range jobs {
		go func(i int, j job) {
			sem <- struct{}{}
			certs[i] = Prove(j.kernel, j.key, j.dom, cfg)
			<-sem
			done <- i
		}(i, j)
	}
	for range jobs {
		<-done
	}
	return certs
}
