package sym

import (
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ops"
)

// narrowDomain keeps unit-test proving to a handful of witness compiles.
func narrowDomain(hi int) Domain {
	return Domain{SLo: 17, SHi: hi, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
}

func TestFitPolyRecoversExactQuadratic(t *testing.T) {
	// y = 3S^2 - 5S + 7 through four points, validated on the rest.
	f := func(s int) int64 { return 3*int64(s)*int64(s) - 5*int64(s) + 7 }
	xs := []int{17, 19, 21, 23, 25, 27, 29}
	ys := make([]int64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	p, ok := fitAndValidate(xs, ys)
	if !ok {
		t.Fatal("fitAndValidate rejected an exact quadratic")
	}
	for s := 17; s <= 101; s += 2 {
		v, isInt := p.EvalInt(s)
		if !isInt || v != f(s) {
			t.Fatalf("p(%d) = %d (int=%v), want %d; p = %s", s, v, isInt, f(s), p)
		}
	}
}

func TestFitPolyRejectsStaircase(t *testing.T) {
	// floor(S/5) has breakpoints every 5: no degree<=3 polynomial matches
	// seven consecutive odd samples, so validation must fail and force a
	// cell split rather than seal a wrong model.
	xs := []int{17, 19, 21, 23, 25, 27, 29}
	ys := make([]int64, len(xs))
	for i, x := range xs {
		ys[i] = int64(x / 5)
	}
	if _, ok := fitAndValidate(xs, ys); ok {
		t.Fatal("fitAndValidate accepted a non-polynomial staircase")
	}
}

func TestCellMembersAndSplit(t *testing.T) {
	c := cell{lo: 17, hi: 31, res: 1, step: 2}
	ms := c.members()
	if len(ms) != 8 || ms[0] != 17 || ms[7] != 31 {
		t.Fatalf("members = %v", ms)
	}
	a, b, ok := c.split()
	if !ok {
		t.Fatal("split failed")
	}
	if got := len(a.members()) + len(b.members()); got != len(ms) {
		t.Fatalf("split lost members: %d + %d != %d", len(a.members()), len(b.members()), len(ms))
	}
	for _, m := range a.members() {
		if m >= b.lo {
			t.Fatalf("split halves overlap: %v / %v", a, b)
		}
	}
}

// TestProveNarrowDomain proves one fractal kernel's default pattern over
// a small slice of the Table I domain and checks the certificate is
// sound, admitting, and correctly bounded.
func TestProveNarrowDomain(t *testing.T) {
	dom := narrowDomain(33)
	c := Prove("maxpool_fwd/im2col", SchedKey{Mode: "im2col"}, dom, buffer.Config{})
	if !c.Certified() {
		t.Fatalf("certificate not fully certified: %s", c.Summary())
	}
	adm, tot := c.Coverage()
	if adm != tot || tot != 17 {
		t.Fatalf("coverage = %d/%d, want 17/17", adm, tot)
	}
	if !c.Admits(dom.Params(20)) || !c.Admits(dom.Params(33)) {
		t.Fatalf("certificate rejects in-domain shapes: %s", c.Summary())
	}
	if c.Admits(dom.Params(35)) {
		t.Fatal("certificate admits an out-of-range shape")
	}
	rect := dom.Params(20)
	rect.Iw = 21
	if c.Admits(rect) {
		t.Fatal("certificate admits a non-square shape")
	}
	k2 := dom.Params(20)
	k2.Kh, k2.Kw = 2, 2
	if c.Admits(k2) {
		t.Fatal("certificate admits a different pooling configuration")
	}
	if c.WitnessCompiles == 0 {
		t.Fatal("certificate recorded no witness compiles")
	}
}

// TestProveInapplicablePattern: a schedule axis the lowering rejects
// (saturate on the fractal forward) proves inapplicable — documented,
// admitting nothing, never a violation.
func TestProveInapplicablePattern(t *testing.T) {
	dom := narrowDomain(33)
	c := Prove("maxpool_fwd/im2col", SchedKey{Mode: "im2col", Saturate: 2}, dom, buffer.Config{})
	if c.Inapplicable == "" {
		t.Fatalf("pattern proved applicable: %s", c.Summary())
	}
	if !strings.Contains(c.Inapplicable, "no saturate axis") {
		t.Fatalf("Inapplicable = %q, want the kernel's no-saturate-axis rejection", c.Inapplicable)
	}
	if c.Certified() || c.Admits(dom.Params(20)) {
		t.Fatal("inapplicable certificate must certify and admit nothing")
	}
}

// TestProveCapacityFailure: under starved capacities the witness
// compiles fail; the cells record a compile reason with a concrete
// counterexample and an empty Obligation — a fallback boundary, not a
// soundness finding — and admission refuses the whole domain.
func TestProveCapacityFailure(t *testing.T) {
	dom := narrowDomain(33)
	cfg := buffer.Config{UBSize: 2048, L1Size: 2048}
	c := Prove("maxpool_fwd/im2col", SchedKey{Mode: "im2col"}, dom, buffer.Config{UBSize: cfg.UBSize, L1Size: cfg.L1Size})
	if c.Inapplicable != "" {
		t.Skipf("capacity starvation surfaced as inapplicability: %s", c.Inapplicable)
	}
	if c.Certified() {
		t.Fatalf("proof certified under 2KB buffers: %s", c.Summary())
	}
	sawCompile := false
	for _, cl := range c.Cells {
		if cl.Certified {
			continue
		}
		if cl.Obligation != "" {
			t.Fatalf("capacity failure misclassified as violated obligation %q (%s)", cl.Obligation, cl.Reason)
		}
		if strings.HasPrefix(cl.Reason, "compile: ") {
			sawCompile = true
			if cl.Counterexample == 0 {
				t.Fatalf("failed cell isolated no counterexample: %+v", cl)
			}
			if c.Admits(dom.Params(cl.Counterexample)) {
				t.Fatal("certificate admits its own counterexample")
			}
		}
	}
	if !sawCompile {
		t.Fatalf("no cell recorded a compile failure: %s", c.Summary())
	}
}

// TestRegistryLookupVerdicts drives the miss / fallback / hit
// classification straight through an admission query.
func TestRegistryLookupVerdicts(t *testing.T) {
	dom := narrowDomain(33)
	cfg := buffer.Config{}.Normalized()
	c := Prove("maxpool_fwd/im2col", SchedKey{Mode: "im2col"}, dom, cfg)
	if !c.Certified() {
		t.Fatalf("prerequisite proof failed: %s", c.Summary())
	}
	reg := NewRegistry()
	reg.Add(c)

	q := ops.CertQuery{
		Kernel: "maxpool_fwd/im2col",
		Spec:   ops.Spec{Buffers: cfg},
		Params: dom.Params(21),
	}
	if v := reg.Lookup(q); v != Hit {
		t.Fatalf("in-domain lookup = %v, want hit", v)
	}
	out := q
	out.Params = dom.Params(63)
	if v := reg.Lookup(out); v != Fallback {
		t.Fatalf("out-of-domain lookup = %v, want fallback", v)
	}
	band := q
	band.Sched.Band = 4 // concrete band, no pattern provenance
	if v := reg.Lookup(band); v != Fallback {
		t.Fatalf("unmappable-band lookup = %v, want fallback", v)
	}
	other := q
	other.Kernel = "avgpool_fwd/im2col"
	if v := reg.Lookup(other); v != Miss {
		t.Fatalf("uncertified-kernel lookup = %v, want miss", v)
	}
}

// TestInstallAdmitsStrictCompile is the end-to-end admission path: with
// the registry installed, a strict in-domain compile skips concrete lint
// (Plan.Certified), bumps cert_hits, and an out-of-domain one falls back
// and bumps cert_fallbacks.
func TestInstallAdmitsStrictCompile(t *testing.T) {
	dom := narrowDomain(33)
	cfg := buffer.Config{}.Normalized()
	c := Prove("maxpool_fwd/im2col", SchedKey{Mode: "im2col"}, dom, cfg)
	if !c.Certified() {
		t.Fatalf("prerequisite proof failed: %s", c.Summary())
	}
	reg := NewRegistry()
	reg.Add(c)
	m := obs.NewRegistry()
	reg.Install(m)
	t.Cleanup(Uninstall)

	spec := ops.Spec{Buffers: cfg, Strict: true}
	pl, err := ops.CompileKernel("maxpool_fwd/im2col", spec, dom.Params(21), ops.ScheduleParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Certified {
		t.Fatal("in-domain strict compile did not ride the certificate")
	}
	pl2, err := ops.CompileKernel("maxpool_fwd/im2col", spec, dom.Params(63), ops.ScheduleParams{})
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Certified {
		t.Fatal("out-of-domain strict compile claimed certification")
	}
	snap := m.Snapshot()
	if v, ok := snap.CounterValue("cert_hits"); !ok || v != 1 {
		t.Fatalf("cert_hits = %d (present=%v), want 1", v, ok)
	}
	if v, ok := snap.CounterValue("cert_fallbacks"); !ok || v != 1 {
		t.Fatalf("cert_fallbacks = %d (present=%v), want 1", v, ok)
	}

	Uninstall()
	pl3, err := ops.CompileKernel("maxpool_fwd/im2col", spec, dom.Params(21), ops.ScheduleParams{})
	if err != nil {
		t.Fatal(err)
	}
	if pl3.Certified {
		t.Fatal("compile claimed certification after Uninstall")
	}
}

// TestCrossCheckRandomAgrees runs a small randomized cross-check of
// certificate verdicts against the concrete verifier: any divergence is
// a soundness bug.
func TestCrossCheckRandomAgrees(t *testing.T) {
	cfg := buffer.Config{}.Normalized()
	certs := ProveKernelDefaults(cfg, []string{"maxpool_fwd/im2col", "maxpool_bwd/col2im"})
	reg := NewRegistry()
	reg.Add(certs...)
	rep := CrossCheckRandom(reg, cfg, 12, 7)
	if rep.Programs == 0 {
		t.Fatal("cross-check checked no programs")
	}
	if len(rep.Divergences) > 0 {
		t.Fatalf("cross-check diverged: %s", rep.Divergences[0])
	}
	if rep.Hits == 0 {
		t.Fatalf("cross-check never hit a certificate: %s", rep.Summary())
	}
}

// TestSchedKeyPatternRoundTrip: the registry key derived from a default
// compile's query matches the proved default pattern.
func TestSchedKeyPatternRoundTrip(t *testing.T) {
	q := ops.CertQuery{Kernel: "maxpool_fwd/im2col", Params: isa.ConvParams{Ih: 21, Iw: 21, Kh: 3, Kw: 3, Sh: 2, Sw: 2}}
	key, ok := keyFromQuery(q)
	if !ok {
		t.Fatal("default-compile query did not map to a pattern")
	}
	if key != (SchedKey{Mode: "im2col"}) {
		t.Fatalf("key = %+v, want bare im2col pattern", key)
	}
}
