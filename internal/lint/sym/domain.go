// Package sym is the shape-generic certification layer: an abstract
// interpreter over an explicit parameter domain that proves, once per
// (kernel lowering, schedule pattern), the properties the concrete static
// verifier (internal/lint) re-establishes per compiled program — buffer
// bounds, synchronization protocol correctness and deadlock freedom, and
// the structural validity of the performance-bound construction. A
// discharged proof seals into a Certificate; a Registry of certificates
// installs an admission predicate into internal/ops
// (ops.RegisterCertifier), letting compilation of any in-domain shape
// skip the concrete lint pass entirely and the autoscheduler skip the
// lint leg of its acceptance gate.
//
// The method is abstract interpretation by exact function recovery, not
// symbolic emission: kernel planners are concrete Go that fully unrolls
// its programs, and their extents are floor-division towers (bands sized
// by capacity, patch counts rounded to fractals) that are only piecewise
// polynomial in the input size. The prover therefore splits the domain
// into cells on the divisibility side conditions (residue classes of the
// spatial size modulo the stride, refined by bisection where a planner's
// capacity decisions introduce further breakpoints), compiles a small set
// of witness shapes per cell, checks every obligation concretely on each
// witness, and recovers the cell's measured quantities — per-buffer
// access bounds, instruction-kind counts — as exact rational polynomials
// interpolated through the witnesses and cross-validated on held-out
// ones. Bounds obligations are then discharged over the whole cell by
// evaluating the recovered polynomial at every member shape (cheap
// integer arithmetic, no compilation). Cells whose quantities resist a
// polynomial model keep a weaker witnessed grade; soundness of the whole
// construction is therefore relative to concrete lint, and the CI
// cross-check gate (davinci-cert crosscheck) re-establishes bit-for-bit
// agreement between certificate verdicts and concrete lint on every sweep
// program plus randomized in-domain shapes on every build.
package sym

import (
	"fmt"

	"davinci/internal/isa"
)

// Domain is the explicit parameter domain one certificate quantifies
// over: square spatial inputs S = Ih = Iw ranging over [SLo, SHi] with a
// fixed pooling configuration (kernel, stride, zero padding — every
// Table I workload is square and unpadded). The divisibility side
// conditions live one level down, in the cells: the prover partitions
// [SLo, SHi] by S mod Sh, the residue that decides how the output extent
// (S-Kh)/Sh+1 rounds.
type Domain struct {
	// SLo and SHi bound the square spatial size, inclusive.
	SLo, SHi int
	// Kh, Kw, Sh, Sw fix the pooling window and strides.
	Kh, Kw, Sh, Sw int
}

// Params instantiates the domain at one spatial size.
func (d Domain) Params(s int) isa.ConvParams {
	return isa.ConvParams{Ih: s, Iw: s, Kh: d.Kh, Kw: d.Kw, Sh: d.Sh, Sw: d.Sw}
}

// Contains reports whether p lies in the domain: square, unpadded, the
// domain's pooling configuration, spatial size in range.
func (d Domain) Contains(p isa.ConvParams) bool {
	return p.Ih == p.Iw && d.SLo <= p.Ih && p.Ih <= d.SHi &&
		p.Kh == d.Kh && p.Kw == d.Kw && p.Sh == d.Sh && p.Sw == d.Sw &&
		p.Pt == 0 && p.Pb == 0 && p.Pl == 0 && p.Pr == 0
}

func (d Domain) String() string {
	return fmt.Sprintf("S=[%d,%d] k=(%d,%d) s=(%d,%d)", d.SLo, d.SHi, d.Kh, d.Kw, d.Sh, d.Sw)
}

// cell is one refinement leaf during proving: the spatial sizes in
// [lo, hi] congruent to res modulo the height stride. Members form an
// arithmetic progression with step Sh.
type cell struct {
	lo, hi, res, step int
}

// members enumerates the cell's spatial sizes in ascending order.
func (c cell) members() []int {
	var out []int
	s := c.lo
	if r := ((s % c.step) - c.res + c.step) % c.step; r != 0 {
		s += c.step - r
	}
	for ; s <= c.hi; s += c.step {
		out = append(out, s)
	}
	return out
}

// initialCells partitions the domain into its residue classes modulo the
// height stride — the divisibility side condition under which the output
// extent is affine in S.
func initialCells(d Domain) []cell {
	var cells []cell
	for r := 0; r < d.Sh; r++ {
		c := cell{lo: d.SLo, hi: d.SHi, res: r, step: d.Sh}
		if len(c.members()) > 0 {
			cells = append(cells, c)
		}
	}
	return cells
}

// split bisects the cell's member progression into two halves; ok is
// false when the cell is too small to split.
func (c cell) split() (a, b cell, ok bool) {
	ms := c.members()
	if len(ms) < 2 {
		return c, c, false
	}
	mid := ms[len(ms)/2]
	a = cell{lo: c.lo, hi: mid - 1, res: c.res, step: c.step}
	b = cell{lo: mid, hi: c.hi, res: c.res, step: c.step}
	return a, b, true
}
