package sym

import (
	"fmt"
	"math/rand"

	"davinci/internal/buffer"
	"davinci/internal/isa"
	"davinci/internal/kernelcases"
	"davinci/internal/lint"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// Divergence records one disagreement between certificate admission and
// the concrete verifier: a query the registry admitted (Hit) whose
// concretely compiled program fails the verifier. Any divergence is a
// soundness bug in the certification layer and fails the build.
type Divergence struct {
	Kernel string
	Params isa.ConvParams
	Sched  ops.ScheduleParams
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s S=%dx%d k=(%d,%d) s=(%d,%d): %s",
		d.Kernel, d.Params.Ih, d.Params.Iw, d.Params.Kh, d.Params.Kw, d.Params.Sh, d.Params.Sw, d.Detail)
}

// CrossReport summarizes one cross-check run.
type CrossReport struct {
	// Programs is how many (kernel, shape, schedule) probes were checked
	// concretely; Skipped counts capacity skips (shapes the kernel's
	// tiling rejects, exactly as the sweeps skip them).
	Programs int
	Skipped  int
	// Hits / Fallbacks / Misses break down the registry verdicts.
	Hits, Fallbacks, Misses int
	// Divergences lists every admission the concrete verifier refutes.
	Divergences []Divergence
}

func (r CrossReport) Summary() string {
	return fmt.Sprintf("%d programs cross-checked (%d skipped): %d hits, %d fallbacks, %d misses, %d divergences",
		r.Programs, r.Skipped, r.Hits, r.Fallbacks, r.Misses, len(r.Divergences))
}

// checkOne runs one probe: asks the registry for its verdict on q,
// compiles the program concretely (unstrict, so the verifier's own
// verdict is ours to compare) and refutes a Hit whose program fails the
// concrete verifier.
func (r *CrossReport) checkOne(reg *Registry, q ops.CertQuery, compile func() (*ops.Plan, error)) {
	v := reg.Lookup(q)
	pl, err := compile()
	if err != nil {
		if kernelcases.IsCapacitySkip(err) && v != Hit {
			r.Skipped++
			return
		}
		r.Programs++
		r.count(v)
		if v == Hit {
			r.Divergences = append(r.Divergences, Divergence{
				Kernel: q.Kernel, Params: q.Params, Sched: q.Sched,
				Detail: "admitted but compile failed: " + err.Error(),
			})
		}
		return
	}
	r.Programs++
	r.count(v)
	caps := q.Spec.Buffers.Normalized().Capacities()
	diags := lint.CheckWith(lint.Options{Caps: caps, Mode: lint.SyncImplicit}, pl.Prog)
	if errs := lint.Errors(diags); len(errs) > 0 && v == Hit {
		r.Divergences = append(r.Divergences, Divergence{
			Kernel: q.Kernel, Params: q.Params, Sched: q.Sched,
			Detail: fmt.Sprintf("admitted but concrete lint reports %d error(s), first: %s", len(errs), errs[0]),
		})
	}
}

func (r *CrossReport) count(v Verdict) {
	switch v {
	case Hit:
		r.Hits++
	case Fallback:
		r.Fallbacks++
	case Miss:
		r.Misses++
	}
}

// CrossCheck re-establishes agreement between the certificate registry
// and the concrete verifier: every sweep program (the full kernel
// catalogue across the Table I layers, default schedules — the exact
// programs the benchmark sweeps compile) plus randomN randomized
// in-domain probes drawn with the given seed, which also exercise the
// non-default schedule patterns. Every probe compiles concretely and any
// admitted-but-dirty program is reported as a Divergence.
func CrossCheck(reg *Registry, cfg buffer.Config, randomN int, seed int64) CrossReport {
	rep := crossCheckSweep(reg, cfg)
	r2 := CrossCheckRandom(reg, cfg, randomN, seed)
	rep.Programs += r2.Programs
	rep.Skipped += r2.Skipped
	rep.Hits += r2.Hits
	rep.Fallbacks += r2.Fallbacks
	rep.Misses += r2.Misses
	rep.Divergences = append(rep.Divergences, r2.Divergences...)
	return rep
}

// crossCheckSweep is the sweep leg: all kernel cases x all Table I
// layers, default schedules.
func crossCheckSweep(reg *Registry, cfg buffer.Config) CrossReport {
	cfg = cfg.Normalized()
	spec := ops.Spec{Buffers: cfg}
	var rep CrossReport
	for _, c := range kernelcases.All() {
		for _, l := range workloads.TableI {
			p := l.Params()
			q := ops.CertQuery{Kernel: c.Name, Spec: spec, Params: p, Sched: defaultSched(c.Name)}
			cse := c
			rep.checkOne(reg, q, func() (*ops.Plan, error) { return cse.Plan(spec, p) })
		}
	}
	return rep
}

// CrossCheckRandom is the randomized leg alone: n in-domain probes over
// the certified kernels, shapes and schedule patterns. The certsweep
// benchmark uses it for a bounded agreement check inside the metrics
// artifact; the CI gate (davinci-cert crosscheck) runs the full
// CrossCheck.
func CrossCheckRandom(reg *Registry, cfg buffer.Config, randomN int, seed int64) CrossReport {
	cfg = cfg.Normalized()
	spec := ops.Spec{Buffers: cfg}
	var rep CrossReport
	rng := rand.New(rand.NewSource(seed))
	kernels := Kernels()
	for i := 0; i < randomN; i++ {
		kernel := kernels[rng.Intn(len(kernels))]
		doms := DomainsFor(kernel)
		dom := doms[rng.Intn(len(doms))]
		s := dom.SLo + rng.Intn(dom.SHi-dom.SLo+1)
		p := dom.Params(s)
		variant := defaultSched(kernel).Mode
		pats := Patterns(variant)
		key := pats[rng.Intn(len(pats))]
		sp := key.pattern()
		bandDiv := 0
		if key.BandDiv > 0 {
			// Band-split patterns carry a concrete band resolved from the
			// default compile — the same two-step the schedule search and
			// the prover perform.
			def, err := ops.CompileKernel(kernel, spec, p, ops.ScheduleParams{Mode: variant})
			if err != nil || def.Sched.Band/key.BandDiv < 1 {
				rep.Skipped++
				continue
			}
			sp.Band = def.Sched.Band / key.BandDiv
			bandDiv = key.BandDiv
		}
		q := ops.CertQuery{Kernel: kernel, Spec: spec, Params: p, Sched: sp, BandDiv: bandDiv}
		rep.checkOne(reg, q, func() (*ops.Plan, error) { return ops.CompileKernel(kernel, spec, p, sp) })
	}
	return rep
}

// defaultSched is the schedule a plain compile of the kernel requests:
// its variant as the mode, everything else default.
func defaultSched(kernel string) ops.ScheduleParams {
	variant := ""
	if i := len(kernel); i > 0 {
		for j := 0; j < i; j++ {
			if kernel[j] == '/' {
				variant = kernel[j+1:]
				break
			}
		}
	}
	return ops.ScheduleParams{Mode: variant}
}
