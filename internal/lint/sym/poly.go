package sym

import (
	"fmt"
	"math/big"
	"strings"
)

// maxDegree bounds the polynomial models the prover fits. Degree 3 covers
// every quantity the pooling lowerings exhibit on a residue cell: extents
// are affine in S, areas (bands x row bytes, patch grids) quadratic, and
// a banded loop over a quadratic body cubic.
const maxDegree = 3

// Poly is a polynomial in the domain's spatial size S with exact rational
// coefficients, Coef[i] the coefficient of S^i. Fits and evaluations run
// entirely in math/big rationals: the certificate's bounds discharge is
// exact arithmetic, never floating point.
type Poly struct {
	Coef []*big.Rat
}

// Eval evaluates the polynomial at integer s, exactly.
func (p Poly) Eval(s int) *big.Rat {
	acc := new(big.Rat)
	x := big.NewRat(int64(s), 1)
	for i := len(p.Coef) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, p.Coef[i])
	}
	return acc
}

// EvalInt evaluates at s and reports whether the value is an integer
// (every genuinely recovered count is).
func (p Poly) EvalInt(s int) (int64, bool) {
	v := p.Eval(s)
	if !v.IsInt() {
		return 0, false
	}
	return v.Num().Int64(), true
}

func (p Poly) String() string {
	var terms []string
	for i := len(p.Coef) - 1; i >= 0; i-- {
		c := p.Coef[i]
		if c.Sign() == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, c.RatString())
		case 1:
			terms = append(terms, c.RatString()+"*S")
		default:
			terms = append(terms, fmt.Sprintf("%s*S^%d", c.RatString(), i))
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}

// fitPoly interpolates the unique polynomial of degree len(xs)-1 (at most
// maxDegree) through the sample points, by Gaussian elimination on the
// Vandermonde system over exact rationals. xs must be distinct; returns
// ok=false on a degenerate system or when more than maxDegree+1 points
// are supplied.
func fitPoly(xs []int, ys []int64) (Poly, bool) {
	n := len(xs)
	if n == 0 || n != len(ys) || n > maxDegree+1 {
		return Poly{}, false
	}
	// Augmented Vandermonde matrix rows: [1, x, x^2, ..., x^(n-1) | y].
	m := make([][]*big.Rat, n)
	for i, x := range xs {
		row := make([]*big.Rat, n+1)
		pow := big.NewRat(1, 1)
		for j := 0; j < n; j++ {
			row[j] = new(big.Rat).Set(pow)
			pow = new(big.Rat).Mul(pow, big.NewRat(int64(x), 1))
		}
		row[n] = big.NewRat(ys[i], 1)
		m[i] = row
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Poly{}, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for j := col; j <= n; j++ {
			m[col][j].Mul(m[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			for j := col; j <= n; j++ {
				m[r][j].Sub(m[r][j], new(big.Rat).Mul(f, m[col][j]))
			}
		}
	}
	coef := make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		coef[i] = m[i][n]
	}
	return Poly{Coef: coef}, true
}

// fitAndValidate recovers one measured quantity as a polynomial: it
// interpolates through up to maxDegree+1 fit points and cross-validates
// the model on every remaining sample. ok=false means the quantity is not
// polynomial of degree <= maxDegree on this cell (a capacity breakpoint
// runs through it) and the cell needs refining.
func fitAndValidate(xs []int, ys []int64) (Poly, bool) {
	k := len(xs)
	if k > maxDegree+1 {
		k = maxDegree + 1
	}
	// Spread the fit points across the cell (first, last, and evenly
	// between) so interpolation and validation both see the whole range.
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		idx = append(idx, i*(len(xs)-1)/max(1, k-1))
	}
	if k == 1 {
		idx = idx[:1]
	}
	fx := make([]int, 0, k)
	fy := make([]int64, 0, k)
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			continue
		}
		seen[i] = true
		fx = append(fx, xs[i])
		fy = append(fy, ys[i])
	}
	p, ok := fitPoly(fx, fy)
	if !ok {
		return Poly{}, false
	}
	for i := range xs {
		if v, isInt := p.EvalInt(xs[i]); !isInt || v != ys[i] {
			return Poly{}, false
		}
	}
	return p, true
}
