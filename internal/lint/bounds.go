package lint

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
)

// checkBounds verifies that every byte region an instruction touches fits
// its buffer's capacity. Vector operands are measured mask-aware: the span
// ends at the highest enabled lane's block, so a masked tail instruction
// sitting at the end of a buffer is not a false positive, while a full-mask
// instruction there is a genuine overflow.
func checkBounds(prog *cce.Program, caps [isa.NumBufs]int) []Diagnostic {
	var diags []Diagnostic
	for idx, in := range prog.Instrs {
		for _, r := range accessRegions(in) {
			if r.Off < 0 {
				diags = append(diags, Diagnostic{
					Pass: "bounds", Sev: SevError, Index: idx, Instr: in.String(), Region: r,
					Msg: fmt.Sprintf("access %v starts before the buffer", r),
				})
				continue
			}
			var cap int
			if r.Buf >= 0 && int(r.Buf) < len(caps) {
				cap = caps[r.Buf]
			}
			if cap > 0 && r.End > cap {
				diags = append(diags, Diagnostic{
					Pass: "bounds", Sev: SevError, Index: idx, Instr: in.String(), Region: r,
					Msg: fmt.Sprintf("access %v exceeds the %d-byte %v capacity by %d bytes", r, cap, r.Buf, r.End-cap),
				})
			}
		}
	}
	return diags
}

// accessRegions returns the byte regions an instruction touches, using
// mask-aware spans for vector instructions and the instruction's own
// conservative Reads/Writes otherwise.
func accessRegions(in isa.Instr) []isa.Region {
	v, ok := in.(*isa.VecInstr)
	if !ok {
		return append(append([]isa.Region{}, in.Reads()...), in.Writes()...)
	}
	var rs []isa.Region
	add := func(o isa.Operand) {
		if r, ok := maskSpan(o, v.Mask, v.Repeat); ok {
			rs = append(rs, r)
		}
	}
	add(v.Dst)
	if v.Op.IsUnary() || v.Op.IsBinary() {
		add(v.Src0)
	}
	if v.Op.IsBinary() {
		add(v.Src1)
	}
	return rs
}

// maskSpan is Operand.Span tightened to the highest mask-enabled block.
// It reports false for an all-zero mask (the invariants pass flags those).
func maskSpan(o isa.Operand, m isa.Mask, repeat int) (isa.Region, bool) {
	hb := -1
	for lane := isa.LanesPerRepeat - 1; lane >= 0; lane-- {
		if m.Bit(lane) {
			hb = lane / isa.ElemsPerBlock
			break
		}
	}
	if hb < 0 || repeat < 1 {
		return isa.Region{}, false
	}
	end := o.BlockAddr(repeat-1, hb) + isa.BlockBytes
	return isa.Region{Buf: o.Buf, Off: o.Addr, End: end}, true
}
