// Package lint statically verifies cce.Program instruction streams without
// executing them. The paper's speedup story rests on hand-scheduled CCE
// kernels whose pipelines are ordered only by explicit set_flag/wait_flag
// events (§III-A, §IV) — exactly the class of code where a silent race or
// an out-of-bounds scratch-pad write produces wrong-but-plausible results.
// The linter rejects such kernels before they run, the way accelerator
// toolchains statically verify implicit-convolution lowering (Zhou et al.,
// "Characterizing and Demystifying the Implicit Convolution Algorithm on
// Commercial CPU Architectures", 2021) and co-designed vector kernels.
//
// Check runs four passes:
//
//   - bounds: every operand's touched byte region (base plus block/repeat
//     strides times the repeat count, mask-aware for vector instructions)
//     must fit its buffer's capacity from internal/buffer. Scratch-pads
//     have no MMU — an overflowing write lands in a neighboring tile and
//     corrupts a different tensor.
//
//   - sync: dataflow check of the set_flag/wait_flag protocol. Flags are
//     counting tokens between one ordered pipe pair (paper §III-A): a
//     wait_flag with no matching set_flag deadlocks the pipe, a set_flag
//     whose token is never consumed leaks it into the next kernel, and a
//     set/wait pair straddling a pipe_barrier is redundant at best and —
//     once the event id is reused after the barrier — double-deposits
//     under real hardware's single-token flags.
//
//   - hazard: recomputes cross-pipe RAW/WAW/WAR dependencies exactly the
//     way cce.AutoSync does, then replays the program under the explicit
//     issue discipline of aicore.RunExplicit (in-order pipes, tokens,
//     barriers) with symbolic vector clocks and reports every dependency
//     the schedule does not order. AutoSync's output is thereby verified
//     independently rather than trusted.
//
//   - invariants: re-validates every instruction through the multi-error
//     cce.Program.InstrErrors (repeat caps, isa.BlockBytes alignment,
//     buffer placement), then checks what per-instruction validation
//     cannot see: all-zero vector masks (the instruction computes
//     nothing), destructive partial source/destination overlap within one
//     instruction (in-place accumulation with an identical operand is the
//     normal reduction idiom and stays legal), overlapping same-buffer
//     copies, and dead stores — scratch-pad writes whose entire region is
//     overwritten before any instruction reads a byte of them.
//
// Programs written for the implicit-scoreboard simulator (aicore.Run) have
// no flags to check: CheckImplicit runs the same suite minus the
// cross-pipe hazard requirement. Passing such a program through
// cce.AutoSync and then Check verifies the explicit form that real CCE C
// would execute.
package lint
