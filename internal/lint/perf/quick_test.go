package perf_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/lint/perf"
)

// randomProgram emits a random but well-formed mix of loads, stores,
// vector work, scalar control, barriers and matched flag pairs. All
// addresses stay inside a 64 KiB working window of each scratch-pad, so
// every generated program runs on a default core.
func randomProgram(rng *rand.Rand, name string) *cce.Program {
	p := cce.New(name)
	const window = 64 << 10
	addr := func() int { return 32 * rng.Intn(window/32-64) }
	n := 20 + rng.Intn(60)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1: // GM -> UB load
			p.EmitCopy(isa.GM, addr(), isa.UB, addr(), 32*(1+rng.Intn(32)))
		case 2: // GM -> L1 load
			p.EmitCopy(isa.GM, addr(), isa.L1, addr(), 32*(1+rng.Intn(32)))
		case 3: // UB -> GM store
			p.EmitCopy(isa.UB, addr(), isa.GM, addr(), 32*(1+rng.Intn(32)))
		case 4, 5, 6: // full-width elementwise chain on the UB
			p.EmitElementwiseScalar(isa.VAdds, isa.UB, addr(), addr(), 0,
				16*(1+rng.Intn(128)), fp16.FromFloat32(1))
		case 7: // narrow-mask vector instruction
			p.EmitVec(isa.VAdds, isa.Contig(isa.UB, addr()), isa.Contig(isa.UB, addr()),
				isa.Operand{}, fp16.FromFloat32(1), isa.MaskFirstN(8+8*rng.Intn(16)), 1+rng.Intn(8))
		case 8: // scalar control
			p.EmitScalar(1+rng.Intn(50), "control")
		default: // sync: a barrier, or a matched set/wait pair
			if rng.Intn(2) == 0 {
				p.EmitBarrier()
			} else {
				pipes := []isa.Pipe{isa.PipeMTE2, isa.PipeVector, isa.PipeMTE3, isa.PipeScalar}
				src := pipes[rng.Intn(len(pipes))]
				dst := pipes[rng.Intn(len(pipes))]
				if src == dst {
					dst = pipes[(rng.Intn(len(pipes))+1)%len(pipes)]
					if src == dst {
						dst = isa.PipeMTE1
					}
				}
				ev := rng.Intn(4)
				p.Emit(&isa.SetFlagInstr{SrcPipe: src, DstPipe: dst, Event: ev})
				p.Emit(&isa.WaitFlagInstr{SrcPipe: src, DstPipe: dst, Event: ev})
			}
		}
	}
	return p
}

// isSync reports whether in participates in the sync protocol; those
// instructions anchor the order and are never swapped.
func isSync(in isa.Instr) bool {
	switch in.(type) {
	case *isa.BarrierInstr, *isa.SetFlagInstr, *isa.WaitFlagInstr:
		return true
	}
	return false
}

// swappable reports whether two adjacent instructions can exchange
// places without changing the schedule's meaning: different pipes (each
// pipe's own order is untouched), neither is sync, and no conflicting
// access pair (at least one write to an overlapping region) exists
// between them.
func swappable(a, b isa.Instr) bool {
	if isSync(a) || isSync(b) || a.Pipe() == b.Pipe() {
		return false
	}
	conflicts := func(x, y isa.Instr) bool {
		for _, w := range x.Writes() {
			for _, r := range y.Reads() {
				if w.Overlaps(r) {
					return true
				}
			}
			for _, ww := range y.Writes() {
				if w.Overlaps(ww) {
					return true
				}
			}
		}
		return false
	}
	return !conflicts(a, b) && !conflicts(b, a)
}

// permuteSchedulePreserving applies random adjacent swaps of independent
// cross-pipe instruction pairs — reorderings under which the dependence
// structure, and therefore every order-independent metric, must not
// change.
func permuteSchedulePreserving(rng *rand.Rand, prog *cce.Program) *cce.Program {
	instrs := append([]isa.Instr(nil), prog.Instrs...)
	if len(instrs) > 1 {
		for tries := 0; tries < 4*len(instrs); tries++ {
			i := rng.Intn(len(instrs) - 1)
			if swappable(instrs[i], instrs[i+1]) {
				instrs[i], instrs[i+1] = instrs[i+1], instrs[i]
			}
		}
	}
	perm := cce.New(prog.Name + "_perm")
	for _, in := range instrs {
		perm.Emit(in)
	}
	return perm
}

// orderFree projects the order-independent slice of a report: single-pass
// sums, maxima and histograms that any schedule-preserving reordering
// must leave untouched. (CritPath and the stall attribution legitimately
// depend on program order and are excluded.)
func orderFree(r *perf.Report) map[string]any {
	return map[string]any{
		"Instrs":      r.Instrs,
		"PipeBusy":    r.PipeBusy,
		"PipeInstrs":  r.PipeInstrs,
		"BusyBound":   r.BusyBound,
		"Serial":      r.SerialCycles,
		"SplitInstrs": r.SplitInstrs,
		"SplitWaste":  r.SplitWaste,
		"Footprint":   r.Footprint,
		"Vector":      r.Vector,
		"Traffic":     r.Traffic,
		"Flags":       r.Sync.Flags,
		"Barriers":    r.Sync.Barriers,
	}
}

// TestQuickBoundsRandomPrograms is the analyzer's property test: on
// randomized programs the bound invariant (busy <= simulated <= critical
// path <= serial, serialize-mode == SerialCycles) holds, and the
// order-independent metrics survive schedule-preserving reorderings —
// which must themselves still satisfy the invariant.
func TestQuickBoundsRandomPrograms(t *testing.T) {
	progs := 50
	if testing.Short() {
		progs = 10
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < progs; i++ {
		prog := randomProgram(rng, fmt.Sprintf("quick_%d", i))
		r := checkBounds(t, prog)

		perm := permuteSchedulePreserving(rng, prog)
		rp := checkBounds(t, perm)
		if got, want := orderFree(rp), orderFree(r); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: order-independent metrics changed under a schedule-preserving permutation:\n got %v\nwant %v",
				prog.Name, got, want)
		}
		if t.Failed() {
			t.Fatalf("%s: stopping after first failing program", prog.Name)
		}
	}
}
