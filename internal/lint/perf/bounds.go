package perf

import "davinci/internal/isa"

// flagKey identifies one counting-flag channel, as in the sync pass.
type flagKey struct {
	src, dst isa.Pipe
	event    int
}

// upperBound computes the critical-path makespan of the conservative
// dependence model: in-order pipes, buffer-granularity data hazards
// (every read waits for the buffer's latest writer; every write also
// waits for its latest reader), barrier joins, and flag edges (the i-th
// wait on a channel waits for the i-th set). Each constraint dominates
// the corresponding scheduler constraint (see the package comment), so
// the result upper-bounds both aicore.Run and aicore.RunExplicit. The
// pass is O(n) using running maxima instead of an explicit graph.
func upperBound(instrs []isa.Instr, cost *isa.CostModel) int64 {
	var pipeEnd [isa.NumPipes]int64
	var bufW, bufR [isa.NumBufs]int64
	var makespan int64
	var tokens map[flagKey][]int64
	for _, in := range instrs {
		pipe := in.Pipe()
		start := pipeEnd[pipe]
		switch v := in.(type) {
		case *isa.BarrierInstr:
			if makespan > start {
				start = makespan
			}
			for _, e := range pipeEnd {
				if e > start {
					start = e
				}
			}
		case *isa.WaitFlagInstr:
			// An unmatched wait is a deadlock the sync pass reports;
			// timing-wise it imposes no edge here.
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			if q := tokens[k]; len(q) > 0 {
				if q[0] > start {
					start = q[0]
				}
				tokens[k] = q[1:]
			}
		default:
			for _, r := range in.Reads() {
				if t := bufW[r.Buf]; t > start {
					start = t
				}
			}
			for _, w := range in.Writes() {
				if t := bufW[w.Buf]; t > start {
					start = t
				}
				if t := bufR[w.Buf]; t > start {
					start = t
				}
			}
		}
		end := start + in.Cycles(cost)
		pipeEnd[pipe] = end
		switch v := in.(type) {
		case *isa.BarrierInstr:
			for i := range pipeEnd {
				pipeEnd[i] = end
			}
		case *isa.SetFlagInstr:
			if tokens == nil {
				tokens = make(map[flagKey][]int64)
			}
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			tokens[k] = append(tokens[k], end)
		default:
			for _, r := range in.Reads() {
				if end > bufR[r.Buf] {
					bufR[r.Buf] = end
				}
			}
			for _, w := range in.Writes() {
				if end > bufW[w.Buf] {
					bufW[w.Buf] = end
				}
			}
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// syncStalls schedules the program under the minimal constraint set —
// in-order pipes plus flag and barrier edges, ignoring data hazards — and
// reports the idle time each pipe accumulates at waits and barriers. Data
// hazards can only move start times later, so the blame assignment is the
// serialization the sync protocol alone already imposes. Barrier stalls
// are charged only to pipes that still have instructions after the
// barrier (idling a finished pipe costs nothing).
func syncStalls(instrs []isa.Instr, cost *isa.CostModel) (stalls [isa.NumPipes]int64, total int64) {
	lastIdx := [isa.NumPipes]int{}
	for i := range lastIdx {
		lastIdx[i] = -1
	}
	for i, in := range instrs {
		lastIdx[in.Pipe()] = i
	}
	var pipeEnd [isa.NumPipes]int64
	var makespan int64
	var tokens map[flagKey][]int64
	for idx, in := range instrs {
		pipe := in.Pipe()
		start := pipeEnd[pipe]
		switch v := in.(type) {
		case *isa.BarrierInstr:
			if makespan > start {
				start = makespan
			}
			for _, e := range pipeEnd {
				if e > start {
					start = e
				}
			}
		case *isa.WaitFlagInstr:
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			if q := tokens[k]; len(q) > 0 {
				if q[0] > start {
					start = q[0]
				}
				tokens[k] = q[1:]
			}
			if d := start - pipeEnd[pipe]; d > 0 {
				stalls[pipe] += d
			}
		}
		end := start + in.Cycles(cost)
		switch v := in.(type) {
		case *isa.BarrierInstr:
			for i := range pipeEnd {
				// The issuing pipe idles until the barrier starts; every
				// other pipe idles until it completes.
				until := end
				if isa.Pipe(i) == pipe {
					until = start
				}
				if lastIdx[i] > idx {
					if d := until - pipeEnd[i]; d > 0 {
						stalls[i] += d
					}
				}
				pipeEnd[i] = end
			}
		case *isa.SetFlagInstr:
			if tokens == nil {
				tokens = make(map[flagKey][]int64)
			}
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			tokens[k] = append(tokens[k], end)
			pipeEnd[pipe] = end
		default:
			pipeEnd[pipe] = end
		}
		if end > makespan {
			makespan = end
		}
	}
	for _, s := range stalls {
		total += s
	}
	return stalls, total
}
