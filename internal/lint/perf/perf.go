// Package perf is the static performance analyzer companion to the
// correctness linter (internal/lint): given a lowered cce.Program and a
// cost model it derives, without executing a single instruction,
//
//   - per-pipe occupancy lower bounds — the busy cycles each pipeline must
//     spend, whose maximum no schedule can beat;
//   - a critical-path upper bound on the makespan through a conservative
//     cross-pipe dependence graph (buffer-granularity data hazards plus
//     flag and barrier edges);
//   - the utilization metrics behind the paper's §V argument: mean vector
//     lane-mask occupancy, the repeat histogram and MaxRepeat split waste,
//     strided-vs-unit block-stride vector work, MTE/Vector/Cube balance,
//     and sync-induced serialization;
//   - perf diagnostics (lint.Diagnostic with Pass "perf"): statically
//     coalescable repeat=1 runs, sub-50% mask occupancy, set/wait pairs
//     that serialize pipes with no intervening work, and dead barriers.
//
// The two bounds bracket the timing simulator: for every program,
//
//	max_p PipeBusy[p]  <=  simulated cycles (aicore.Run)  <=  CritPath.
//
// The upper bound holds because every constraint the simulator's
// scoreboard can impose is dominated by an edge the analyzer includes: the
// scoreboard stalls an instruction on (1) its pipe's previous instruction,
// (2) the latest overlapping write (reads) or access (writes) of each
// region it touches — including the whole-buffer floor produced by history
// folding — and (3) barriers. The analyzer orders (1) identically and
// replaces (2) by the latest access of the whole buffer, which is >= any
// overlap or folded floor; flag edges only add constraints. The same
// argument covers aicore.RunExplicit, whose only cross-pipe constraints
// are the flag and barrier edges. The bound does not cover
// Core.Serialize (which is SerialCycles by construction). The lower bound
// is schedule-free: pipes issue in order, so the makespan is at least the
// busiest pipe's total work.
package perf

import (
	"sort"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
)

// Options configures an analysis.
type Options struct {
	// Cost is the cycle-cost model; nil takes the calibrated default.
	Cost *isa.CostModel
	// Caps is the capacity in bytes of each buffer, used for footprint
	// utilization; the zero value takes the Ascend 910 defaults.
	Caps [isa.NumBufs]int
}

// RepeatBuckets labels the repeat-histogram buckets of VectorMetrics.
var RepeatBuckets = [5]string{"1", "2-15", "16-127", "128-254", "255"}

// VectorMetrics aggregates the Vector Unit's lane and repeat utilization
// (VecInstr only; Col2Im and conversion moves are costed on the vector
// pipe but have no mask or repeat field of interest).
type VectorMetrics struct {
	// Instrs is the number of vector ALU instructions.
	Instrs int
	// Repeats is the total repeat iterations issued.
	Repeats int64
	// LaneSum is the total enabled lanes over all repeats.
	LaneSum int64
	// MeanOccupancy is LaneSum / (Repeats * 128): the fraction of the
	// 128-lane datapath doing useful work per repeat (0 when no repeats).
	MeanOccupancy float64
	// RepeatHist buckets instruction repeat counts per RepeatBuckets.
	RepeatHist [5]int
	// StridedInstrs counts instructions with a non-unit block stride on
	// any operand (they run at the slower gather rate).
	StridedInstrs int
	// StridedCycles and UnitCycles split the vector ALU cycles by rate.
	StridedCycles int64
	UnitCycles    int64
}

// TrafficMetrics aggregates data movement.
type TrafficMetrics struct {
	// BytesIn / BytesOut is global-memory read / write payload.
	BytesIn  int64
	BytesOut int64
	// LocalBytes is the local copy payload (MTE1 and UB-to-UB moves).
	LocalBytes int64
	// Copies and Bursts count copy instructions and their DMA bursts.
	Copies int
	Bursts int64
}

// SyncMetrics aggregates the synchronization cost of the program.
type SyncMetrics struct {
	// Flags counts set_flag plus wait_flag instructions.
	Flags int
	// Barriers counts pipe barriers.
	Barriers int
	// StallCycles is, per pipe, the idle time waits and barriers impose in
	// the minimal-constraint schedule (in-order pipes plus sync edges
	// only, data hazards ignored): the serialization attributable to the
	// sync protocol alone. Barrier stalls count only pipes with work left.
	StallCycles [isa.NumPipes]int64
	// StallTotal sums StallCycles.
	StallTotal int64
}

// Report is the full static performance analysis of one program.
type Report struct {
	Program string
	Instrs  int

	// PipeBusy is each pipe's total instruction cost: a lower bound on the
	// time that pipe is occupied under any schedule.
	PipeBusy [isa.NumPipes]int64
	// PipeInstrs is the instruction count per pipe.
	PipeInstrs [isa.NumPipes]int
	// BusyBound = max over PipeBusy: a lower bound on the makespan.
	BusyBound int64
	// CritPath is the critical-path upper bound on the makespan (see the
	// package comment for the dominance argument).
	CritPath int64
	// SerialCycles is the sum of all instruction costs: the makespan with
	// pipelining disabled (Core.Serialize) and an upper bound on CritPath.
	SerialCycles int64
	// SplitInstrs counts instructions issued at the MaxRepeat cap — each
	// marks a stream the compiler had to split, paying issue cost again.
	SplitInstrs int
	// SplitWaste is the issue cycles respent because of those splits.
	SplitWaste int64
	// Footprint is the highest byte addressed per buffer.
	Footprint [isa.NumBufs]int
	// Caps echoes the capacities the analysis assumed.
	Caps [isa.NumBufs]int

	Vector  VectorMetrics
	Traffic TrafficMetrics
	Sync    SyncMetrics

	// Diags are the perf findings (Pass "perf"), ordered by instruction
	// index like the correctness passes.
	Diags []lint.Diagnostic
}

// Parallelism returns SerialCycles / CritPath: a guaranteed-achievable
// overlap factor (the real schedule is at least this much faster than the
// serialized one). Returns 1 for empty programs.
func (r *Report) Parallelism() float64 {
	if r.CritPath == 0 {
		return 1
	}
	return float64(r.SerialCycles) / float64(r.CritPath)
}

// Analyze statically analyzes prog. It never executes instructions and is
// linear in program size except for the dead-barrier scan, which is
// quadratic and skipped above deadBarrierScanLimit instructions.
func Analyze(prog *cce.Program, opts Options) *Report {
	cost := opts.Cost
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	var zero [isa.NumBufs]int
	if opts.Caps == zero {
		opts.Caps = buffer.Config{}.Capacities()
	}
	r := &Report{Program: prog.Name, Instrs: len(prog.Instrs), Caps: opts.Caps}
	collect(r, prog, cost)
	r.CritPath = upperBound(prog.Instrs, cost)
	r.Sync.StallCycles, r.Sync.StallTotal = syncStalls(prog.Instrs, cost)
	r.Diags = diagnose(r, prog, cost)
	sort.SliceStable(r.Diags, func(i, j int) bool {
		if r.Diags[i].Index != r.Diags[j].Index {
			return r.Diags[i].Index < r.Diags[j].Index
		}
		return r.Diags[i].Msg < r.Diags[j].Msg
	})
	return r
}

// collect fills the order-independent metrics in one pass.
func collect(r *Report, prog *cce.Program, cost *isa.CostModel) {
	for _, in := range prog.Instrs {
		pipe := in.Pipe()
		c := in.Cycles(cost)
		r.PipeBusy[pipe] += c
		r.PipeInstrs[pipe]++
		r.SerialCycles += c
		for _, reg := range in.Reads() {
			if reg.End > r.Footprint[reg.Buf] {
				r.Footprint[reg.Buf] = reg.End
			}
		}
		for _, reg := range in.Writes() {
			if reg.End > r.Footprint[reg.Buf] {
				r.Footprint[reg.Buf] = reg.End
			}
		}
		switch v := in.(type) {
		case *isa.VecInstr:
			r.Vector.Instrs++
			r.Vector.Repeats += int64(v.Repeat)
			r.Vector.LaneSum += int64(v.Mask.Count()) * int64(v.Repeat)
			r.Vector.RepeatHist[repeatBucket(v.Repeat)]++
			if vecStrided(v) {
				r.Vector.StridedInstrs++
				r.Vector.StridedCycles += c
			} else {
				r.Vector.UnitCycles += c
			}
			if v.Repeat == isa.MaxRepeat {
				r.SplitInstrs++
				r.SplitWaste += cost.VecIssue
			}
		case *isa.CopyInstr:
			r.Traffic.Copies++
			r.Traffic.Bursts += int64(v.NBurst)
			switch pipe {
			case isa.PipeMTE2:
				r.Traffic.BytesIn += int64(v.Bytes())
			case isa.PipeMTE3:
				r.Traffic.BytesOut += int64(v.Bytes())
			default:
				r.Traffic.LocalBytes += int64(v.Bytes())
			}
		case *isa.Im2ColInstr:
			if v.Repeat == isa.MaxRepeat {
				r.SplitInstrs++
				r.SplitWaste += cost.MteIssue
			}
		case *isa.Col2ImInstr:
			if v.Repeat == isa.MaxRepeat {
				r.SplitInstrs++
				r.SplitWaste += cost.VecIssue
			}
		case *isa.TransposeInstr:
			if v.Repeat == isa.MaxRepeat {
				r.SplitInstrs++
				r.SplitWaste += cost.MteIssue
			}
		case *isa.SetFlagInstr, *isa.WaitFlagInstr:
			r.Sync.Flags++
		case *isa.BarrierInstr:
			r.Sync.Barriers++
		}
	}
	for _, b := range r.PipeBusy {
		if b > r.BusyBound {
			r.BusyBound = b
		}
	}
	if r.Vector.Repeats > 0 {
		r.Vector.MeanOccupancy = float64(r.Vector.LaneSum) / float64(r.Vector.Repeats*isa.LanesPerRepeat)
	}
}

func repeatBucket(rep int) int {
	switch {
	case rep <= 1:
		return 0
	case rep < 16:
		return 1
	case rep < 128:
		return 2
	case rep < isa.MaxRepeat:
		return 3
	default:
		return 4
	}
}

// vecStrided mirrors VecInstr's cost-model test for the gather rate.
func vecStrided(v *isa.VecInstr) bool {
	if v.Dst.BlkStride > 1 {
		return true
	}
	if (v.Op.IsUnary() || v.Op.IsBinary()) && v.Src0.BlkStride > 1 {
		return true
	}
	return v.Op.IsBinary() && v.Src1.BlkStride > 1
}
