package perf

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
)

const (
	// coalesceMinRun is the shortest repeat=1 run worth a diagnostic.
	coalesceMinRun = 4
	// occupancyFloor flags programs whose mean lane occupancy is below it.
	occupancyFloor = 0.5
	// occupancyMinRepeats avoids flagging trivially small programs.
	occupancyMinRepeats = 8
	// deadBarrierScanLimit bounds the quadratic dead-barrier scan.
	deadBarrierScanLimit = 20000
)

// diagnose emits the perf findings. Everything is a warning — these are
// optimization opportunities, not contract violations — except the
// self-check that the two bounds did not cross, which can only mean the
// analyzer itself is broken.
func diagnose(r *Report, prog *cce.Program, cost *isa.CostModel) []lint.Diagnostic {
	var diags []lint.Diagnostic
	diags = append(diags, coalesceRuns(prog, cost)...)
	diags = append(diags, pingPongPairs(prog)...)
	diags = append(diags, deadBarriers(prog)...)
	if r.Vector.Repeats >= occupancyMinRepeats && r.Vector.MeanOccupancy < occupancyFloor {
		diags = append(diags, lint.Diagnostic{
			Pass: "perf", Sev: lint.SevWarning, Index: -1,
			Msg: fmt.Sprintf("mean vector lane occupancy %.0f%% (< %.0f%%): most repeats leave the 128-lane datapath idle",
				100*r.Vector.MeanOccupancy, 100*occupancyFloor),
		})
	}
	if r.BusyBound > r.CritPath {
		diags = append(diags, lint.Diagnostic{
			Pass: "perf", Sev: lint.SevError, Index: -1,
			Msg: fmt.Sprintf("internal: occupancy lower bound %d exceeds critical-path bound %d", r.BusyBound, r.CritPath),
		})
	}
	return diags
}

// coalesceRuns finds runs of consecutive repeat=1 vector instructions
// that advance every operand by a uniform block-aligned delta: such a run
// is one instruction with Repeat=len and RepStride=delta/32, the exact
// transformation the paper's §V repeat-parameter argument asks for.
// Fusing is always semantics-preserving because repeats of one
// instruction execute in the same order the separate instructions would.
func coalesceRuns(prog *cce.Program, cost *isa.CostModel) []lint.Diagnostic {
	var diags []lint.Diagnostic
	instrs := prog.Instrs
	emit := func(start, n int) {
		if n < coalesceMinRun {
			return
		}
		v := instrs[start].(*isa.VecInstr)
		diags = append(diags, lint.Diagnostic{
			Pass: "perf", Sev: lint.SevWarning, Index: start, Instr: v.String(),
			Msg: fmt.Sprintf("%d consecutive repeat=1 %v instructions with uniform stride: fuse via the repeat parameter (saves %d issue cycles)",
				n, v.Op, int64(n-1)*cost.VecIssue),
		})
	}
	runStart, runLen := -1, 0
	var delta [3]int
	for i := 0; i < len(instrs); i++ {
		v, ok := instrs[i].(*isa.VecInstr)
		if !ok || v.Repeat != 1 {
			emit(runStart, runLen)
			runStart, runLen = -1, 0
			continue
		}
		if runLen > 0 {
			prev := instrs[i-1].(*isa.VecInstr)
			d, ok := chainDelta(prev, v)
			if ok && (runLen == 1 || d == delta) {
				delta = d
				runLen++
				continue
			}
			emit(runStart, runLen)
		}
		runStart, runLen = i, 1
	}
	emit(runStart, runLen)
	return diags
}

// chainDelta reports whether b can continue a fused run after a and the
// per-operand address advance (in bytes) that a fused RepStride would
// have to reproduce.
func chainDelta(a, b *isa.VecInstr) ([3]int, bool) {
	if a.Op != b.Op || a.Mask != b.Mask || a.Scalar != b.Scalar {
		return [3]int{}, false
	}
	ops := func(v *isa.VecInstr) [3]isa.Operand { return [3]isa.Operand{v.Dst, v.Src0, v.Src1} }
	used := [3]bool{true, a.Op.IsUnary() || a.Op.IsBinary(), a.Op.IsBinary()}
	ao, bo := ops(a), ops(b)
	var delta [3]int
	for k := range ao {
		if !used[k] {
			continue
		}
		if ao[k].Buf != bo[k].Buf || ao[k].BlkStride != bo[k].BlkStride {
			return [3]int{}, false
		}
		d := bo[k].Addr - ao[k].Addr
		if d < 0 || d%isa.BlockBytes != 0 {
			return [3]int{}, false
		}
		delta[k] = d
	}
	return delta, true
}

// pingPongPairs flags set_flag/wait_flag pairs where the wait is the very
// next instruction: the waiting pipe gets no work between the handoff, so
// the pair serializes the two pipes exactly like a barrier between them
// would, without buying any overlap.
func pingPongPairs(prog *cce.Program) []lint.Diagnostic {
	var diags []lint.Diagnostic
	pending := map[flagKey][]int{}
	for i, in := range prog.Instrs {
		switch v := in.(type) {
		case *isa.SetFlagInstr:
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			pending[k] = append(pending[k], i)
		case *isa.WaitFlagInstr:
			k := flagKey{v.SrcPipe, v.DstPipe, v.Event}
			if q := pending[k]; len(q) > 0 {
				setIdx := q[0]
				pending[k] = q[1:]
				if setIdx == i-1 {
					diags = append(diags, lint.Diagnostic{
						Pass: "perf", Sev: lint.SevWarning, Index: i, Instr: in.String(),
						Msg: fmt.Sprintf("wait_flag immediately follows its matching set_flag (instr %d): %v and %v serialize with no overlapping work", setIdx, v.SrcPipe, v.DstPipe),
					})
				}
			}
		}
	}
	return diags
}

// access is one read or write for the dead-barrier scan.
type access struct {
	idx   int
	pipe  isa.Pipe
	write bool
	reg   isa.Region
}

// deadBarriers flags barriers that order no cross-pipe conflicting access
// pair: removing such a barrier cannot change any outcome the scoreboard
// (or a flag protocol) would not already guarantee, so it only costs
// cycles. The scan is quadratic in the access count and skipped for very
// large programs.
func deadBarriers(prog *cce.Program) []lint.Diagnostic {
	if len(prog.Instrs) > deadBarrierScanLimit {
		return nil
	}
	var barriers []int
	var accs []access
	for i, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			barriers = append(barriers, i)
			continue
		}
		for _, r := range in.Reads() {
			accs = append(accs, access{i, in.Pipe(), false, r})
		}
		for _, w := range in.Writes() {
			accs = append(accs, access{i, in.Pipe(), true, w})
		}
	}
	if len(barriers) == 0 {
		return nil
	}
	// A barrier is live iff some cross-pipe conflicting pair spans it.
	live := make(map[int]bool, len(barriers))
	for i, a := range accs {
		for _, b := range accs[i+1:] {
			if a.pipe == b.pipe || (!a.write && !b.write) || !a.reg.Overlaps(b.reg) {
				continue
			}
			lo, hi := a.idx, b.idx
			if lo > hi {
				lo, hi = hi, lo
			}
			for _, bi := range barriers {
				if lo < bi && bi < hi {
					live[bi] = true
				}
			}
		}
	}
	var diags []lint.Diagnostic
	for _, bi := range barriers {
		if !live[bi] {
			diags = append(diags, lint.Diagnostic{
				Pass: "perf", Sev: lint.SevWarning, Index: bi, Instr: prog.Instrs[bi].String(),
				Msg: "barrier orders no cross-pipe dependent accesses: it only costs cycles",
			})
		}
	}
	return diags
}
