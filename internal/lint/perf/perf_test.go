package perf_test

import (
	"strings"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
)

// checkBounds runs prog on a fresh core and asserts the bound invariant
// busy <= simulated <= critical path <= serial, returning the report.
func checkBounds(t *testing.T, prog *cce.Program) *perf.Report {
	t.Helper()
	r := perf.Analyze(prog, perf.Options{})
	core := aicore.New(buffer.Config{}, nil)
	st, err := core.Run(prog)
	if err != nil {
		t.Fatalf("%s: run: %v", prog.Name, err)
	}
	if r.BusyBound > st.Cycles {
		t.Errorf("%s: busy bound %d > simulated %d", prog.Name, r.BusyBound, st.Cycles)
	}
	if st.Cycles > r.CritPath {
		t.Errorf("%s: simulated %d > critical path %d", prog.Name, st.Cycles, r.CritPath)
	}
	if r.CritPath > r.SerialCycles {
		t.Errorf("%s: critical path %d > serial %d", prog.Name, r.CritPath, r.SerialCycles)
	}
	// Serialize mode is the serial sum by construction.
	ser := aicore.New(buffer.Config{}, nil)
	ser.Serialize = true
	sst, err := ser.Run(prog)
	if err != nil {
		t.Fatalf("%s: serialize run: %v", prog.Name, err)
	}
	if sst.Cycles != r.SerialCycles {
		t.Errorf("%s: serialize cycles %d != SerialCycles %d", prog.Name, sst.Cycles, r.SerialCycles)
	}
	return r
}

// TestBoundsOverlappedLoadCompute checks the bounds and the exact
// critical path of a hand-scheduled load/compute/store chain.
func TestBoundsOverlappedLoadCompute(t *testing.T) {
	p := cce.New("chain")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)                                        // MTE2: 16 + 16 = 32
	p.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 512, fp16.FromFloat32(1)) // VEC: 4 + 4 = 8, after the load
	p.EmitCopy(isa.UB, 0, isa.GM, 0, 1024)                                        // MTE3: 16 + 16 = 32, after the add
	r := checkBounds(t, p)
	if want := int64(32 + 8 + 32); r.CritPath != want {
		t.Errorf("critical path = %d, want %d", r.CritPath, want)
	}
	if want := int64(32); r.BusyBound != want {
		t.Errorf("busy bound = %d, want %d (busiest MTE pipe)", r.BusyBound, want)
	}
	if r.Traffic.BytesIn != 1024 || r.Traffic.BytesOut != 1024 {
		t.Errorf("traffic in/out = %d/%d, want 1024/1024", r.Traffic.BytesIn, r.Traffic.BytesOut)
	}
}

// TestBoundsIndependentPipes checks that work on disjoint buffers
// overlaps in the critical path: two independent loads bound by one pipe.
func TestBoundsIndependentPipes(t *testing.T) {
	p := cce.New("overlap")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)    // MTE2
	p.EmitCopy(isa.GM, 4096, isa.L1, 0, 1024) // MTE2, same pipe: serial
	p.EmitScalar(100, "control")              // SCALAR, independent: overlaps
	r := checkBounds(t, p)
	if want := int64(100); r.CritPath != want {
		t.Errorf("critical path = %d, want %d (scalar dominates)", r.CritPath, want)
	}
	if r.PipeBusy[isa.PipeMTE2] != 64 {
		t.Errorf("MTE2 busy = %d, want 64", r.PipeBusy[isa.PipeMTE2])
	}
}

// TestBoundsFlagEdges checks that flag tokens order the static schedule.
func TestBoundsFlagEdges(t *testing.T) {
	p := cce.New("flags")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024) // MTE2 ends at 32
	p.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 512, fp16.FromFloat32(1))
	r := checkBounds(t, p)
	// set ends at 34, wait at 36, add at 44.
	if want := int64(44); r.CritPath != want {
		t.Errorf("critical path = %d, want %d", r.CritPath, want)
	}
	if r.Sync.Flags != 2 {
		t.Errorf("flags = %d, want 2", r.Sync.Flags)
	}
	if r.Sync.StallCycles[isa.PipeVector] != 34 {
		t.Errorf("vector sync stall = %d, want 34", r.Sync.StallCycles[isa.PipeVector])
	}
}

// TestVectorMetrics checks occupancy, the repeat histogram and split
// accounting on a crafted mix.
func TestVectorMetrics(t *testing.T) {
	p := cce.New("vec")
	// 600 total repeats at full mask: split 255 + 255 + 90.
	p.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 600*isa.LanesPerRepeat, fp16.FromFloat32(1))
	// One 16-lane repeat.
	p.EmitVec(isa.VAdds, isa.Contig(isa.UB, 0), isa.Contig(isa.UB, 0), isa.Operand{}, fp16.FromFloat32(1), isa.MaskFirstN(16), 1)
	r := perf.Analyze(p, perf.Options{})
	if r.Vector.Instrs != 4 || r.Vector.Repeats != 601 {
		t.Fatalf("vector instrs/repeats = %d/%d, want 4/601", r.Vector.Instrs, r.Vector.Repeats)
	}
	wantLanes := int64(600*128 + 16)
	if r.Vector.LaneSum != wantLanes {
		t.Errorf("lane sum = %d, want %d", r.Vector.LaneSum, wantLanes)
	}
	if r.Vector.RepeatHist != [5]int{1, 0, 1, 0, 2} {
		t.Errorf("repeat hist = %v, want [1 0 1 0 2]", r.Vector.RepeatHist)
	}
	if r.SplitInstrs != 2 || r.SplitWaste != 8 {
		t.Errorf("splits = %d waste = %d, want 2 and 8", r.SplitInstrs, r.SplitWaste)
	}
	if got := r.Vector.MeanOccupancy; got <= 0.99 || got > 1 {
		t.Errorf("occupancy = %f, want just under 1", got)
	}
}

func hasDiag(diags []lint.Diagnostic, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

// TestCoalesceDiag checks the repeat=1 run finding fires on a fusable run
// (including the accumulator pattern with a zero dst advance) and stays
// quiet when the stride pattern breaks.
func TestCoalesceDiag(t *testing.T) {
	acc := isa.Contig(isa.UB, 0)
	fusable := cce.New("fusable")
	for k := 0; k < 5; k++ {
		fusable.Emit(&isa.VecInstr{Op: isa.VMax, Dst: acc, Src0: acc,
			Src1: isa.Contig(isa.UB, 1024+k*256), Mask: isa.FullMask(), Repeat: 1})
	}
	r := perf.Analyze(fusable, perf.Options{})
	if !hasDiag(r.Diags, "fuse via the repeat parameter") {
		t.Errorf("fusable run not flagged; diags: %v", r.Diags)
	}

	ragged := cce.New("ragged")
	for _, off := range []int{1024, 1280, 1600, 1888, 2208} { // non-uniform deltas
		ragged.Emit(&isa.VecInstr{Op: isa.VMax, Dst: acc, Src0: acc,
			Src1: isa.Contig(isa.UB, off), Mask: isa.FullMask(), Repeat: 1})
	}
	r = perf.Analyze(ragged, perf.Options{})
	if hasDiag(r.Diags, "fuse via the repeat parameter") {
		t.Errorf("ragged run flagged; diags: %v", r.Diags)
	}
}

// TestOccupancyDiag checks the sub-50% mask occupancy finding.
func TestOccupancyDiag(t *testing.T) {
	p := cce.New("narrow")
	p.EmitVec(isa.VAdds, isa.Contig(isa.UB, 0), isa.Contig(isa.UB, 0), isa.Operand{}, fp16.FromFloat32(1), isa.MaskFirstN(16), 64)
	r := perf.Analyze(p, perf.Options{})
	if !hasDiag(r.Diags, "lane occupancy") {
		t.Errorf("12.5%% occupancy not flagged; diags: %v", r.Diags)
	}
	full := cce.New("full")
	full.EmitVec(isa.VAdds, isa.Contig(isa.UB, 0), isa.Contig(isa.UB, 0), isa.Operand{}, fp16.FromFloat32(1), isa.FullMask(), 64)
	r = perf.Analyze(full, perf.Options{})
	if hasDiag(r.Diags, "lane occupancy") {
		t.Errorf("full occupancy flagged; diags: %v", r.Diags)
	}
}

// TestPingPongDiag checks the adjacent set/wait finding.
func TestPingPongDiag(t *testing.T) {
	p := cce.New("pingpong")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)
	p.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 512, fp16.FromFloat32(1))
	r := perf.Analyze(p, perf.Options{})
	if !hasDiag(r.Diags, "serialize with no overlapping work") {
		t.Errorf("adjacent set/wait not flagged; diags: %v", r.Diags)
	}

	spaced := cce.New("spaced")
	spaced.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)
	spaced.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	spaced.EmitCopy(isa.GM, 4096, isa.L1, 0, 1024) // overlapping work between set and wait
	spaced.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	spaced.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 512, fp16.FromFloat32(1))
	r = perf.Analyze(spaced, perf.Options{})
	if hasDiag(r.Diags, "serialize with no overlapping work") {
		t.Errorf("spaced set/wait flagged; diags: %v", r.Diags)
	}
}

// TestDeadBarrierDiag checks the dead-barrier finding: a barrier between
// dependent cross-pipe accesses is live, one ordering nothing is not.
func TestDeadBarrierDiag(t *testing.T) {
	live := cce.New("live")
	live.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)
	live.EmitBarrier()
	live.EmitElementwiseScalar(isa.VAdds, isa.UB, 0, 0, 0, 512, fp16.FromFloat32(1))
	r := perf.Analyze(live, perf.Options{})
	if hasDiag(r.Diags, "barrier orders no") {
		t.Errorf("live barrier flagged; diags: %v", r.Diags)
	}

	dead := cce.New("dead")
	dead.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)
	dead.EmitBarrier()
	dead.EmitCopy(isa.GM, 8192, isa.L1, 0, 1024) // disjoint: barrier orders nothing
	r = perf.Analyze(dead, perf.Options{})
	if !hasDiag(r.Diags, "barrier orders no") {
		t.Errorf("dead barrier not flagged; diags: %v", r.Diags)
	}
}

// TestBarrierBounds checks the bound invariant across a barrier and that
// the barrier's serialization is charged to pipes with remaining work.
func TestBarrierBounds(t *testing.T) {
	p := cce.New("barrier")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024) // MTE2: 32
	p.EmitBarrier()                        // starts at 32, ends at 48
	p.EmitScalar(10, "tail")               // SCALAR: would be ready at 0
	r := checkBounds(t, p)
	if want := int64(32 + 16 + 10); r.CritPath != want {
		t.Errorf("critical path = %d, want %d", r.CritPath, want)
	}
	if r.Sync.Barriers != 1 {
		t.Errorf("barriers = %d, want 1", r.Sync.Barriers)
	}
	// The scalar pipe idles 32 cycles before issuing the barrier; the
	// barrier's own 16 cycles are work, not stall.
	if r.Sync.StallCycles[isa.PipeScalar] != 32 {
		t.Errorf("scalar stall = %d, want 32", r.Sync.StallCycles[isa.PipeScalar])
	}
}

// TestDiagsSorted checks the report's diagnostics come back ordered.
func TestDiagsSorted(t *testing.T) {
	p := cce.New("order")
	p.EmitCopy(isa.GM, 0, isa.UB, 0, 1024)
	p.EmitBarrier() // dead: nothing after touches what came before
	p.EmitCopy(isa.GM, 8192, isa.L1, 0, 1024)
	p.EmitVec(isa.VAdds, isa.Contig(isa.UB, 8192), isa.Contig(isa.UB, 8192), isa.Operand{}, fp16.FromFloat32(1), isa.MaskFirstN(8), 64)
	r := perf.Analyze(p, perf.Options{})
	for i := 1; i < len(r.Diags); i++ {
		if r.Diags[i-1].Index > r.Diags[i].Index {
			t.Fatalf("diags out of order: %v", r.Diags)
		}
	}
	if len(r.Diags) < 2 {
		t.Fatalf("want at least 2 diags, got %v", r.Diags)
	}
}
