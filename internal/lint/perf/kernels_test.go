package perf_test

import (
	"math/rand"
	"strings"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

// convCh is the channel extent the convolution kernels are compiled for
// in this sweep: one C0 slice, so the (1,1,H,W,C0) pooling tile doubles
// as the convolution input.
const convCh = tensor.C0

// kernelCase is one built-in kernel: a plan compiler plus an input
// builder for a given layer's parameters.
type kernelCase struct {
	name   string
	plan   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error)
	inputs func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor
}

func randTile(rng *rand.Rand, h, w int) *tensor.Tensor {
	t := tensor.New(1, 1, h, w, tensor.C0)
	t.FillRandom(rng, 8)
	return t
}

func inTile(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	return []*tensor.Tensor{randTile(rng, p.Ih, p.Iw)}
}

func gradTile(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	oh, ow := p.OutDims()
	return []*tensor.Tensor{randTile(rng, oh, ow)}
}

func maskGrad(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
	in := randTile(rng, p.Ih, p.Iw)
	g := gradTile(rng, p)
	return []*tensor.Tensor{ref.ArgmaxMask(in, p), g[0]}
}

func randWeights(rng *rand.Rand, p isa.ConvParams) *tensor.Tensor {
	w := tensor.New(convCh, convCh, p.Kh, p.Kw)
	w.FillRandom(rng, 4)
	return w
}

// builtinKernels enumerates every planner the dispatch tables (and the
// conv substrate) expose, with suitable single-tile inputs.
func builtinKernels() []kernelCase {
	var cases []kernelCase
	forVariant := func(name string, fn func(string, ops.Spec, isa.ConvParams) (*ops.Plan, error), variants []string, in func(*rand.Rand, isa.ConvParams) []*tensor.Tensor) {
		for _, v := range variants {
			variant := v
			cases = append(cases, kernelCase{
				name:   name + "/" + variant,
				plan:   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) { return fn(variant, spec, p) },
				inputs: in,
			})
		}
	}
	forVariant("maxpool_fwd", ops.PlanMaxPoolForward, []string{"standard", "im2col", "expansion", "xysplit"}, inTile)
	forVariant("maxpool_fwd_argmax", ops.PlanMaxPoolForwardArgmax, []string{"standard", "im2col"}, inTile)
	forVariant("maxpool_bwd", ops.PlanMaxPoolBackward, []string{"standard", "col2im"}, maskGrad)
	forVariant("avgpool_fwd", ops.PlanAvgPoolForward, []string{"standard", "im2col", "cube"}, inTile)
	for _, useCol2im := range []bool{false, true} {
		use := useCol2im
		name := "avgpool_bwd/standard"
		if use {
			name = "avgpool_bwd/col2im"
		}
		cases = append(cases, kernelCase{
			name:   name,
			plan:   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) { return ops.PlanAvgPoolBackward(spec, p, use) },
			inputs: gradTile,
		})
	}
	cases = append(cases,
		kernelCase{"conv2d",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2D(spec, p, convCh, convCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{randTile(rng, p.Ih, p.Iw), randWeights(rng, p)}
			}},
		kernelCase{"conv2d_bwd_data",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2DBackwardData(spec, p, convCh, convCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{gradTile(rng, p)[0], randWeights(rng, p)}
			}},
		kernelCase{"conv2d_bwd_weights",
			func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
				return ops.PlanConv2DBackwardWeights(spec, p, convCh, convCh)
			},
			func(rng *rand.Rand, p isa.ConvParams) []*tensor.Tensor {
				return []*tensor.Tensor{gradTile(rng, p)[0], randTile(rng, p.Ih, p.Iw)}
			}},
	)
	return cases
}

// TestBoundsEveryKernelEveryLayer is the analyzer's reality check (the
// acceptance bar of this package): for every built-in kernel compiled
// against every Table I layer, the statically derived bounds bracket the
// simulator — max per-pipe busy <= simulated cycles <= critical path —
// and no kernel trips an error-severity perf diagnostic. Shapes a kernel
// cannot schedule (tile exceeds the UB) are skipped, like the chip-level
// tiling would.
func TestBoundsEveryKernelEveryLayer(t *testing.T) {
	layers := workloads.TableI
	if testing.Short() {
		layers = workloads.InceptionV3Fig7()
	}
	rng := rand.New(rand.NewSource(7))
	spec := ops.Spec{}
	checked := 0
	for _, layer := range layers {
		p := layer.Params()
		for _, kc := range builtinKernels() {
			pl, err := kc.plan(spec, p)
			if err != nil {
				if strings.Contains(err.Error(), "does not fit") || strings.Contains(err.Error(), "exceed") ||
					strings.Contains(err.Error(), "out of space") {
					t.Logf("%s %dx%dx%d: skip (%v)", kc.name, layer.H, layer.W, layer.C, err)
					continue
				}
				t.Fatalf("%s %dx%dx%d: compile: %v", kc.name, layer.H, layer.W, layer.C, err)
			}
			r := perf.Analyze(pl.Prog, perf.Options{})
			core := aicore.New(buffer.Config{}, nil)
			_, st, err := pl.Run(core, kc.inputs(rng, p)...)
			if err != nil {
				t.Fatalf("%s %dx%dx%d: run: %v", kc.name, layer.H, layer.W, layer.C, err)
			}
			if r.BusyBound > st.Cycles || st.Cycles > r.CritPath {
				t.Errorf("%s %dx%dx%d: bound invariant violated: busy %d, simulated %d, critical path %d",
					kc.name, layer.H, layer.W, layer.C, r.BusyBound, st.Cycles, r.CritPath)
			}
			if errs := lint.Errors(r.Diags); len(errs) > 0 {
				t.Errorf("%s %dx%dx%d: %d error-severity perf diagnostic(s), first: %s",
					kc.name, layer.H, layer.W, layer.C, len(errs), errs[0])
			}
			checked++
		}
	}
	t.Logf("bound invariant checked on %d kernel x layer programs", checked)
}
