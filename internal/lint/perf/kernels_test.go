package perf_test

import (
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/kernelcases"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
	"davinci/internal/ops"
	"davinci/internal/workloads"
)

// TestBoundsEveryKernelEveryLayer is the analyzer's reality check (the
// acceptance bar of this package): for every built-in kernel compiled
// against every Table I layer, the statically derived bounds bracket the
// simulator — max per-pipe busy <= simulated cycles <= critical path —
// and no kernel trips an error-severity perf diagnostic. Shapes a kernel
// cannot schedule (tile exceeds the UB) are skipped, like the chip-level
// tiling would.
func TestBoundsEveryKernelEveryLayer(t *testing.T) {
	layers := workloads.TableI
	if testing.Short() {
		layers = workloads.InceptionV3Fig7()
	}
	rng := rand.New(rand.NewSource(7))
	spec := ops.Spec{}
	checked := 0
	for _, layer := range layers {
		p := layer.Params()
		for _, kc := range kernelcases.All() {
			pl, err := kc.Plan(spec, p)
			if err != nil {
				if kernelcases.IsCapacitySkip(err) {
					t.Logf("%s %dx%dx%d: skip (%v)", kc.Name, layer.H, layer.W, layer.C, err)
					continue
				}
				t.Fatalf("%s %dx%dx%d: compile: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			r := perf.Analyze(pl.Prog, perf.Options{})
			core := aicore.New(buffer.Config{}, nil)
			_, st, err := pl.Run(core, kc.Inputs(rng, p)...)
			if err != nil {
				t.Fatalf("%s %dx%dx%d: run: %v", kc.Name, layer.H, layer.W, layer.C, err)
			}
			if r.BusyBound > st.Cycles || st.Cycles > r.CritPath {
				t.Errorf("%s %dx%dx%d: bound invariant violated: busy %d, simulated %d, critical path %d",
					kc.Name, layer.H, layer.W, layer.C, r.BusyBound, st.Cycles, r.CritPath)
			}
			if errs := lint.Errors(r.Diags); len(errs) > 0 {
				t.Errorf("%s %dx%dx%d: %d error-severity perf diagnostic(s), first: %s",
					kc.Name, layer.H, layer.W, layer.C, len(errs), errs[0])
			}
			checked++
		}
	}
	t.Logf("bound invariant checked on %d kernel x layer programs", checked)
}
