package lint

import (
	"fmt"
	"sort"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// SevWarning marks suspicious but not provably incorrect code.
	SevWarning Severity = iota
	// SevError marks code that is out of contract: it can corrupt memory,
	// race, or deadlock on real hardware.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of a lint pass.
type Diagnostic struct {
	Pass   string // "bounds", "sync", "hazard" or "invariants"
	Sev    Severity
	Index  int        // instruction index in the program, -1 for program-level findings
	Instr  string     // rendered instruction, "" for program-level findings
	Region isa.Region // offending byte region; zero value when not applicable
	Msg    string
}

func (d Diagnostic) String() string {
	loc := "program"
	if d.Index >= 0 {
		loc = fmt.Sprintf("instr %d (%s)", d.Index, d.Instr)
	}
	return fmt.Sprintf("%s %s: %s: %s", d.Pass, d.Sev, loc, d.Msg)
}

// SyncMode selects the synchronization discipline the program is checked
// against.
type SyncMode int

const (
	// SyncExplicit verifies for aicore.RunExplicit semantics (real CCE):
	// cross-pipe ordering must come from flags and barriers, so the
	// hazard pass runs.
	SyncExplicit SyncMode = iota
	// SyncImplicit verifies for aicore.Run semantics, where a hardware
	// scoreboard orders data hazards: the cross-pipe hazard pass is
	// skipped, every other pass still runs.
	SyncImplicit
)

// Options configures a lint run.
type Options struct {
	// Caps is the capacity in bytes of each buffer; 0 means unbounded
	// (global memory grows on demand). The zero value takes the Ascend
	// 910 defaults from internal/buffer.
	Caps [isa.NumBufs]int
	// Mode selects the synchronization discipline; the zero value is
	// SyncExplicit.
	Mode SyncMode
}

// Check statically verifies prog against explicit-synchronization (CCE)
// semantics with the default buffer capacities, running all four passes.
// Findings come back ordered by instruction index.
func Check(prog *cce.Program) []Diagnostic {
	return CheckWith(Options{}, prog)
}

// CheckImplicit verifies prog for the implicit-scoreboard simulator
// (aicore.Run): like Check, minus the cross-pipe hazard requirement.
func CheckImplicit(prog *cce.Program) []Diagnostic {
	return CheckWith(Options{Mode: SyncImplicit}, prog)
}

// CheckWith is Check with explicit options.
func CheckWith(opts Options, prog *cce.Program) []Diagnostic {
	var zero [isa.NumBufs]int
	if opts.Caps == zero {
		opts.Caps = buffer.Config{}.Capacities()
	}
	var diags []Diagnostic
	diags = append(diags, checkInvariants(prog)...)
	diags = append(diags, checkBounds(prog, opts.Caps)...)
	diags = append(diags, checkSync(prog)...)
	if opts.Mode == SyncExplicit {
		diags = append(diags, checkHazards(prog)...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Index != diags[j].Index {
			return diags[i].Index < diags[j].Index
		}
		if diags[i].Pass != diags[j].Pass {
			return diags[i].Pass < diags[j].Pass
		}
		return diags[i].Msg < diags[j].Msg
	})
	return diags
}

// Errors filters diags down to error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}
