// Package scu implements the layout mathematics of the Storage Conversion
// Unit: the mapping between patches of an NC1HWC0 image and the fractal
// rows produced by Im2Col / consumed by Col2Im (paper §III-C and §III-D).
//
// The whole-tensor functional transforms here are the specification that
// the instruction-level execution in internal/aicore is tested against, and
// they are also used directly by reference models and the layout
// visualizer.
package scu

import (
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// PatchOrigin returns the top-left input coordinates of linear patch index
// `patch` (row-major over the (Oh, Ow) grid). Coordinates may be negative
// or exceed the input when padding is in use.
func PatchOrigin(p isa.ConvParams, patch int) (h, w int) {
	_, ow := p.OutDims()
	ph, pw := patch/ow, patch%ow
	return ph*p.Sh - p.Pt, pw*p.Sw - p.Pl
}

// SourceCoord returns the input coordinates read for element (xk, yk) of
// `patch`, and whether that position falls in the zero padding (in which
// case the Im2Col load deposits zeros).
func SourceCoord(p isa.ConvParams, patch, xk, yk int) (h, w int, pad bool) {
	oh, ow := PatchOrigin(p, patch)
	h, w = oh+xk, ow+yk
	pad = h < 0 || h >= p.Ih || w < 0 || w >= p.Iw
	return h, w, pad
}

// Im2col applies the whole-tensor im2col transform to an NC1HWC0 tensor,
// producing the (N, C1, Kh, Kw, OhOw16, C0) tensor that repeated Im2Col
// loads in repeat mode 1 materialize, where OhOw16 is Oh*Ow rounded up to
// whole fractals; rows beyond Oh*Ow are zero (§III-C).
func Im2col(in *tensor.Tensor, p isa.ConvParams) *tensor.Tensor {
	n, c1 := in.Shape[0], in.Shape[1]
	padded := p.PaddedPatches()
	out := tensor.New(n, c1, p.Kh, p.Kw, padded, tensor.C0)
	patches := p.Patches()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						h, w, pad := SourceCoord(p, pt, xk, yk)
						if pad {
							continue // output is already zero
						}
						for c0 := 0; c0 < tensor.C0; c0++ {
							out.Set(in.At(ni, ci, h, w, c0), ni, ci, xk, yk, pt, c0)
						}
					}
				}
			}
		}
	}
	return out
}

// Col2im applies the whole-tensor col2im transform: the backward operator
// of Im2col. Input has shape (N, C1, Kh, Kw, OhOw16, C0); rows that refer
// to the same input position are summed; rows in the fractal tail beyond
// Oh*Ow and rows that fall in padding are discarded (§II-B, §III-D).
// Summation is performed in Float16, as the hardware's vector adds are.
func Col2im(in *tensor.Tensor, p isa.ConvParams, ih, iw int) *tensor.Tensor {
	n, c1 := in.Shape[0], in.Shape[1]
	out := tensor.New(n, c1, ih, iw, tensor.C0)
	patches := p.Patches()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for xk := 0; xk < p.Kh; xk++ {
				for yk := 0; yk < p.Kw; yk++ {
					for pt := 0; pt < patches; pt++ {
						h, w, pad := SourceCoord(p, pt, xk, yk)
						if pad {
							continue
						}
						for c0 := 0; c0 < tensor.C0; c0++ {
							sum := fp16.Add(out.At(ni, ci, h, w, c0), in.At(ni, ci, xk, yk, pt, c0))
							out.Set(sum, ni, ci, h, w, c0)
						}
					}
				}
			}
		}
	}
	return out
}

// KernelStep advances an (c1, xk, yk) iterator one position in the repeat
// mode 0 order [c1, (xk, yk)]: (xk, yk) row-major innermost, c1 outermost
// (§III-C).
func KernelStep(p isa.ConvParams, c1, xk, yk int) (nc1, nxk, nyk int) {
	yk++
	if yk == p.Kw {
		yk, xk = 0, xk+1
		if xk == p.Kh {
			xk, c1 = 0, c1+1
		}
	}
	return c1, xk, yk
}
