package scu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

func TestPatchOriginFig5(t *testing.T) {
	// Fig. 5: 8x8 input, k=(2,2), s=(2,2) -> 16 patches on a 4x4 grid.
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	cases := []struct{ patch, h, w int }{
		{0, 0, 0}, {1, 0, 2}, {3, 0, 6}, {4, 2, 0}, {15, 6, 6},
	}
	for _, c := range cases {
		h, w := PatchOrigin(p, c.patch)
		if h != c.h || w != c.w {
			t.Errorf("PatchOrigin(%d) = (%d,%d), want (%d,%d)", c.patch, h, w, c.h, c.w)
		}
	}
}

func TestSourceCoordPadding(t *testing.T) {
	// 4x4 input with 1 pixel of padding everywhere, k=3, s=1.
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	oh, ow := p.OutDims()
	if oh != 4 || ow != 4 {
		t.Fatalf("OutDims (%d,%d)", oh, ow)
	}
	// Patch 0 origin is (-1,-1): its (0,0) element is padding.
	if _, _, pad := SourceCoord(p, 0, 0, 0); !pad {
		t.Error("patch 0 (0,0) must be padding")
	}
	if h, w, pad := SourceCoord(p, 0, 1, 1); pad || h != 0 || w != 0 {
		t.Errorf("patch 0 (1,1) = (%d,%d,%v)", h, w, pad)
	}
	// Bottom-right patch's (2,2) element is padding.
	if _, _, pad := SourceCoord(p, 15, 2, 2); !pad {
		t.Error("patch 15 (2,2) must be padding")
	}
}

// TestIm2colFig2 reproduces the overlap example of Fig. 2: elements shared
// by two patches appear in both output rows.
func TestIm2colFig2(t *testing.T) {
	// 5-wide, 3-tall single-row-of-patches setup: k=(3,3), s=(2,2) over a
	// 3x5 image gives 2 horizontally overlapping patches sharing a column.
	p := isa.ConvParams{Ih: 3, Iw: 5, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	oh, ow := p.OutDims()
	if oh != 1 || ow != 2 {
		t.Fatalf("OutDims (%d,%d)", oh, ow)
	}
	in := tensor.New(1, 1, 3, 5, tensor.C0)
	in.FillSeq()
	out := Im2col(in, p)
	// Patch 0 covers columns 0..2, patch 1 covers columns 2..4: the
	// elements at column 2 (yk=2 of patch 0, yk=0 of patch 1) coincide.
	for xk := 0; xk < 3; xk++ {
		a := out.At(0, 0, xk, 2, 0, 0) // patch 0, last column
		b := out.At(0, 0, xk, 0, 1, 0) // patch 1, first column
		if a != b {
			t.Errorf("xk=%d overlap elements differ: %#04x vs %#04x", xk, a, b)
		}
	}
}

func TestIm2colShapeAndTailZero(t *testing.T) {
	// 7x7, k=2, s=2 -> 3x3=9 patches -> one fractal with a 7-row zero tail.
	p := isa.ConvParams{Ih: 7, Iw: 7, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	in := tensor.New(1, 1, 7, 7, tensor.C0)
	in.Fill(fp16.One)
	out := Im2col(in, p)
	want := []int{1, 1, 2, 2, 16, 16}
	for i, d := range want {
		if out.Shape[i] != d {
			t.Fatalf("shape %v, want %v", out.Shape, want)
		}
	}
	for pt := 9; pt < 16; pt++ {
		for c0 := 0; c0 < 16; c0++ {
			if got := out.At(0, 0, 0, 0, pt, c0); got != fp16.Zero {
				t.Fatalf("tail row %d not zero", pt)
			}
		}
	}
	// Valid rows are all ones.
	if got := out.At(0, 0, 1, 1, 8, 3); got != fp16.One {
		t.Error("valid row lost data")
	}
}

// TestCol2imSumsOverlaps reproduces the Fig. 2 col2im behaviour: gradients
// for overlapping elements are summed.
func TestCol2imSumsOverlaps(t *testing.T) {
	p := isa.ConvParams{Ih: 3, Iw: 5, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	cols := tensor.New(1, 1, 3, 3, 16, tensor.C0)
	cols.Fill(fp16.One)
	out := Col2im(cols, p, 3, 5)
	// Column 2 is covered by both patches -> 2; other covered cells -> 1.
	for h := 0; h < 3; h++ {
		if got := out.At(0, 0, h, 2, 0).Float32(); got != 2 {
			t.Errorf("overlap cell (%d,2) = %v, want 2", h, got)
		}
		if got := out.At(0, 0, h, 0, 0).Float32(); got != 1 {
			t.Errorf("cell (%d,0) = %v, want 1", h, got)
		}
	}
}

func TestCol2imIgnoresTailAndPadding(t *testing.T) {
	p := isa.ConvParams{Ih: 4, Iw: 4, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	cols := tensor.New(1, 1, 3, 3, p.PaddedPatches(), tensor.C0)
	cols.Fill(fp16.One)
	out := Col2im(cols, p, 4, 4)
	// Interior cell (1,1) is covered by all 9 kernel positions of the
	// patches that include it: count patches (oh,ow) with oh+xk-1==1 ->
	// 9 contributions. Corner (0,0) only by 4.
	if got := out.At(0, 0, 1, 1, 0).Float32(); got != 9 {
		t.Errorf("interior sum = %v, want 9", got)
	}
	if got := out.At(0, 0, 0, 0, 0).Float32(); got != 4 {
		t.Errorf("corner sum = %v, want 4", got)
	}
}

// Property: adjointness <Im2col(x), y> == <x, Col2im(y)> with small-integer
// values (exact in Float16).
func TestQuickAdjointness(t *testing.T) {
	f := func(seed int64, khRaw, swRaw uint8) bool {
		kh := int(khRaw%3) + 1
		sw := int(swRaw%3) + 1
		p := isa.ConvParams{Ih: 6, Iw: 7, Kh: kh, Kw: 2, Sh: 1, Sw: sw}
		if p.Validate() != nil {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(1, 1, 6, 7, tensor.C0)
		for i := 0; i < x.Len(); i++ {
			x.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(5))))
		}
		y := tensor.New(1, 1, kh, 2, p.PaddedPatches(), tensor.C0)
		for i := 0; i < y.Len(); i++ {
			y.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(5))))
		}
		ax := Im2col(x, p)
		aty := Col2im(y, p, 6, 7)
		var lhs, rhs float64
		for i := 0; i < ax.Len(); i++ {
			lhs += fp16.ToFloat64(ax.AtFlat(i)) * fp16.ToFloat64(y.AtFlat(i))
		}
		for i := 0; i < x.Len(); i++ {
			rhs += fp16.ToFloat64(x.AtFlat(i)) * fp16.ToFloat64(aty.AtFlat(i))
		}
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with no overlap (stride == kernel) Col2im(Im2col(x)) == x.
func TestQuickNoOverlapInverse(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%3) + 1
		// Choose the input a multiple of k so every cell is covered.
		p := isa.ConvParams{Ih: 2 * k, Iw: 3 * k, Kh: k, Kw: k, Sh: k, Sw: k}
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(1, 2, 2*k, 3*k, tensor.C0)
		x.FillRandom(rng, 4)
		back := Col2im(Im2col(x, p), p, 2*k, 3*k)
		return tensor.MaxAbsDiff(x, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKernelStep(t *testing.T) {
	p := isa.ConvParams{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	c1, xk, yk := 0, 0, 0
	want := [][3]int{{0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {1, 0, 1}}
	for i, w := range want {
		c1, xk, yk = KernelStep(p, c1, xk, yk)
		if c1 != w[0] || xk != w[1] || yk != w[2] {
			t.Fatalf("step %d = (%d,%d,%d), want %v", i, c1, xk, yk, w)
		}
	}
}
