package opt_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/kernelcases"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/workloads"
)

// targetedDiag reports whether a perf diagnostic is one the optimizer is
// expected to discharge: coalescable repeat=1 runs, serializing set/wait
// pairs, and dead barriers.
func targetedDiag(msg string) bool {
	return strings.Contains(msg, "fuse via the repeat parameter") ||
		strings.Contains(msg, "serialize with no overlapping work") ||
		strings.Contains(msg, "orders no cross-pipe dependent accesses")
}

// TestSweepOptimizedKernels is the acceptance gate over the full kernel x
// Table I sweep: every optimized program must validate (bit-identical
// global memory, lint-clean), must never be slower than its baseline, must
// carry none of the perf diagnostics the optimizer targets — and a
// substantial fraction of the sweep must get measurably faster.
func TestSweepOptimizedKernels(t *testing.T) {
	var mu sync.Mutex
	faster, total := 0, 0
	t.Run("cases", func(t *testing.T) {
		for _, c := range kernelcases.All() {
			c := c
			t.Run(strings.ReplaceAll(c.Name, "/", "_"), func(t *testing.T) {
				t.Parallel()
				for _, l := range workloads.TableI {
					name := fmt.Sprintf("%s_%d", l.Network, l.Index)
					p := l.Params()
					pl, err := c.Plan(ops.Spec{Opt: opt.LevelSchedule}, p)
					if kernelcases.IsCapacitySkip(err) {
						continue
					}
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					r := pl.Opt
					if r == nil {
						t.Fatalf("%s: optimizing spec produced no opt report", name)
					}
					if !r.Validated || r.Rejected != "" {
						t.Errorf("%s: optimization not validated: %s", name, r.Summary())
						continue
					}
					if r.Cycles > r.BaselineCycles {
						t.Errorf("%s: optimized program slower: %s", name, r.Summary())
					}
					for _, d := range pl.Perf.Diags {
						if targetedDiag(d.Msg) {
							t.Errorf("%s: targeted diagnostic survives optimization: %s", name, d.Msg)
						}
					}
					mu.Lock()
					total++
					if r.Cycles < r.BaselineCycles {
						faster++
					}
					mu.Unlock()
				}
			})
		}
	})
	if total == 0 {
		t.Fatal("sweep compiled no programs")
	}
	t.Logf("sweep: %d/%d programs measurably faster under %v", faster, total, opt.LevelSchedule)
	if 4*faster < total {
		t.Errorf("only %d/%d optimized programs are faster; want at least 25%%", faster, total)
	}
}

// TestQuickCheckOptimizedOutputs is the randomized equivalence check: for
// a seeded permutation of the Table I shapes, every kernel's baseline and
// optimized plans must produce bit-identical outputs on random inputs.
// Subtests run in parallel so `go test -race` also exercises concurrent
// compilation and replay of optimizing plans.
func TestQuickCheckOptimizedOutputs(t *testing.T) {
	perm := rand.New(rand.NewSource(20260808)).Perm(len(workloads.TableI))
	layers := make([]workloads.CNNLayer, 0, 3)
	for _, i := range perm[:3] {
		layers = append(layers, workloads.TableI[i])
	}
	for ci, c := range kernelcases.All() {
		c, ci := c, ci
		t.Run(strings.ReplaceAll(c.Name, "/", "_"), func(t *testing.T) {
			t.Parallel()
			for li, l := range layers {
				name := fmt.Sprintf("%s_%d", l.Network, l.Index)
				p := l.Params()
				base, err := c.Plan(ops.Spec{}, p)
				if kernelcases.IsCapacitySkip(err) {
					continue
				}
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				optimized, err := c.Plan(ops.Spec{Opt: opt.LevelRewrite}, p)
				if err != nil {
					t.Fatalf("%s: optimizing compile: %v", name, err)
				}
				rng := rand.New(rand.NewSource(int64(1000*ci + li)))
				inputs := c.Inputs(rng, p)
				coreA := aicore.New(buffer.Config{}, nil)
				coreB := aicore.New(buffer.Config{}, nil)
				outsA, _, err := base.Run(coreA, inputs...)
				if err != nil {
					t.Fatalf("%s: baseline run: %v", name, err)
				}
				outsB, _, err := optimized.Run(coreB, inputs...)
				if err != nil {
					t.Fatalf("%s: optimized run: %v", name, err)
				}
				if len(outsA) != len(outsB) {
					t.Fatalf("%s: output count %d vs %d", name, len(outsA), len(outsB))
				}
				for i := range outsA {
					if !bytes.Equal(outsA[i].Data, outsB[i].Data) {
						t.Errorf("%s: output %d diverges between baseline and optimized plans", name, i)
					}
				}
			}
		})
	}
}
