package opt

import (
	"bytes"
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
)

// Validate is the translation-validation gate: it re-proves, per program,
// that optimized is a safe replacement for base, and returns the reason
// it is not ("" when it is). The checks, in order:
//
//  1. optimized passes cce.Program validation and lints clean under
//     implicit-sync semantics against the target buffer capacities —
//     the same gate a strict core applies before running anything;
//  2. the static critical-path upper bound (perf.Analyze) did not
//     increase: the optimized program's worst case is no worse;
//  3. the scheduled makespan (aicore.Time, the exact cycles Run/Replay
//     reports) did not increase;
//  4. both programs, executed functionally from identical deterministic
//     buffer contents, leave bit-identical global memory. Global memory
//     is the only state a plan observes after a run (locals are scratch
//     and legitimately diverge once dead writes are gone), so GM
//     equality on a full-entropy input is the behavioral contract.
//
// The rewrites are designed to be bit-exact by construction; Validate
// exists so a bug in a pass surfaces as a rejected optimization instead
// of a wrong answer.
func Validate(base, optimized *cce.Program, opts Options) string {
	if err := optimized.Validate(); err != nil {
		return fmt.Sprintf("optimized program invalid: %v", err)
	}
	cfg := opts.Buffers.Normalized()
	caps := cfg.Capacities()
	diags := lint.CheckWith(lint.Options{Caps: caps, Mode: lint.SyncImplicit}, optimized)
	if errs := lint.Errors(diags); len(errs) > 0 {
		return fmt.Sprintf("optimized program not lint-clean: %d error(s), first: %s", len(errs), errs[0])
	}
	cost := opts.Cost
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	popts := perf.Options{Cost: cost, Caps: caps}
	baseCP := perf.Analyze(base, popts).CritPath
	optCP := perf.Analyze(optimized, popts).CritPath
	if optCP > baseCP {
		return fmt.Sprintf("critical-path bound regressed: %d -> %d cycles", baseCP, optCP)
	}
	baseT := aicore.Time(base, cost, false)
	optT := aicore.Time(optimized, cost, false)
	if optT > baseT {
		return fmt.Sprintf("scheduled makespan regressed: %d -> %d cycles", baseT, optT)
	}
	return equivalent(base, optimized, opts)
}

// equivalent replays base and optimized on two identically seeded cores
// and compares global memory byte for byte.
func equivalent(base, optimized *cce.Program, opts Options) string {
	var foot [isa.NumBufs]int
	grow := func(prog *cce.Program) {
		for _, in := range prog.Instrs {
			for _, r := range in.Reads() {
				if r.End > foot[r.Buf] {
					foot[r.Buf] = r.End
				}
			}
			for _, w := range in.Writes() {
				if w.End > foot[w.Buf] {
					foot[w.Buf] = w.End
				}
			}
		}
	}
	grow(base)
	grow(optimized)

	cfg := opts.Buffers.Normalized()
	coreA := aicore.New(cfg, opts.Cost)
	coreB := aicore.New(cfg, opts.Cost)
	for _, core := range []*aicore.Core{coreA, coreB} {
		for id := isa.BufID(0); id < isa.NumBufs; id++ {
			sp := core.Mem.Space(id)
			if id == isa.GM {
				// GM grows on demand; reserve the joint footprint so both
				// cores address identical bytes.
				if foot[id] > 0 {
					if _, err := sp.Alloc(foot[id]); err != nil {
						return fmt.Sprintf("cannot seed %v: %v", id, err)
					}
				}
			}
			// Full-entropy fill of the whole space: every byte either
			// program could read is pinned, and untouched bytes must come
			// back unchanged.
			fillDeterministic(sp.Data(), 0x9e3779b9_0000_0000+uint64(id))
		}
	}
	if err := coreA.ExecOnly(base); err != nil {
		return fmt.Sprintf("baseline replay failed: %v", err)
	}
	if err := coreB.ExecOnly(optimized); err != nil {
		return fmt.Sprintf("optimized replay failed: %v", err)
	}
	a := coreA.Mem.Space(isa.GM).Data()
	b := coreB.Mem.Space(isa.GM).Data()
	if len(a) != len(b) {
		return fmt.Sprintf("global memory size diverged: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Equal(a, b) {
		at := 0
		for at < len(a) && a[at] == b[at] {
			at++
		}
		return fmt.Sprintf("global memory diverged at byte %d: %#02x vs %#02x", at, a[at], b[at])
	}
	return ""
}

// fillDeterministic fills data with a splitmix64 keystream seeded per
// buffer: reproducible, full-entropy contents with no RNG dependency.
func fillDeterministic(data []byte, seed uint64) {
	for i := 0; i < len(data); i += 8 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		for k := 0; k < 8 && i+k < len(data); k++ {
			data[i+k] = byte(z >> (8 * k))
		}
	}
}
