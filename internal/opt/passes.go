package opt

import (
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// deadScanLimit bounds the quadratic dead-barrier and dead-move scans,
// matching the perf analyzer's deadBarrierScanLimit so a pass covers
// exactly the programs its diagnostic covers.
const deadScanLimit = 20000

// deadSync removes every set_flag and wait_flag. The optimizer targets
// the implicit-sync scoreboard (aicore.Run), where the hardware orders
// data hazards itself: flags impose no ordering there, execute as
// functional no-ops, and only spend issue cycles on their pipes — every
// one of them is dead, including the "serializing set/wait pair" cases
// the perf analyzer flags.
func deadSync(prog *cce.Program, _ *isa.CostModel) (*cce.Program, int) {
	removed := 0
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr, *isa.WaitFlagInstr:
			removed++
		}
	}
	if removed == 0 {
		return nil, 0
	}
	out := derived(prog)
	out.Instrs = make([]isa.Instr, 0, len(prog.Instrs)-removed)
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr, *isa.WaitFlagInstr:
			continue
		}
		out.Instrs = append(out.Instrs, in)
	}
	return out, removed
}

// deadBarrier removes barriers that order no cross-pipe conflicting
// access pair — the exact liveness rule behind the perf "dead barrier"
// diagnostic. Removing such a barrier cannot change any outcome the
// scoreboard would not already guarantee; it only costs cycles. Live
// barriers stay: they may be intentional (and removing them is the
// scheduler's job, not a cleanup's).
func deadBarrier(prog *cce.Program, _ *isa.CostModel) (*cce.Program, int) {
	if len(prog.Instrs) > deadScanLimit {
		return nil, 0
	}
	type access struct {
		idx   int
		pipe  isa.Pipe
		write bool
		reg   isa.Region
	}
	var barriers []int
	var accs []access
	for i, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			barriers = append(barriers, i)
			continue
		}
		for _, r := range in.Reads() {
			accs = append(accs, access{i, in.Pipe(), false, r})
		}
		for _, w := range in.Writes() {
			accs = append(accs, access{i, in.Pipe(), true, w})
		}
	}
	if len(barriers) == 0 {
		return nil, 0
	}
	live := make(map[int]bool, len(barriers))
	for i, a := range accs {
		for _, b := range accs[i+1:] {
			if a.pipe == b.pipe || (!a.write && !b.write) || !a.reg.Overlaps(b.reg) {
				continue
			}
			lo, hi := a.idx, b.idx
			if lo > hi {
				lo, hi = hi, lo
			}
			for _, bi := range barriers {
				if lo < bi && bi < hi {
					live[bi] = true
				}
			}
		}
	}
	if len(live) == len(barriers) {
		return nil, 0
	}
	out := derived(prog)
	out.Instrs = make([]isa.Instr, 0, len(prog.Instrs))
	removed := 0
	for i, in := range prog.Instrs {
		if _, ok := in.(*isa.BarrierInstr); ok && !live[i] {
			removed++
			continue
		}
		out.Instrs = append(out.Instrs, in)
	}
	return out, removed
}

// deadMove removes vector and copy instructions whose writes land only in
// scratch-pad buffers and are never read by any later instruction: the
// values die on chip. Global memory is the program's observable output
// and is never touched. The scan runs backward so chains of dead moves
// (A feeds only B, B is dead) fall in one pass: a dead instruction's own
// reads do not keep its producers alive.
func deadMove(prog *cce.Program, _ *isa.CostModel) (*cce.Program, int) {
	if len(prog.Instrs) > deadScanLimit {
		return nil, 0
	}
	candidate := func(in isa.Instr) bool {
		switch v := in.(type) {
		case *isa.VecInstr:
			return true
		case *isa.CopyInstr:
			return v.DstBuf != isa.GM
		}
		return false
	}
	// Flags and barriers order, they do not access: a dead-move scan over
	// a program that still has them is sound (removal only relaxes what
	// they ordered), but keep it simple and conservative — any
	// synchronization in flight means this is not straight-line data flow.
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr, *isa.WaitFlagInstr, *isa.BarrierInstr:
			return nil, 0
		}
	}
	dead := make([]bool, len(prog.Instrs))
	var future [isa.NumBufs][]isa.Region
	budget := 2_000_000 // region comparisons; the scan is quadratic
	removed := 0
	for i := len(prog.Instrs) - 1; i >= 0; i-- {
		in := prog.Instrs[i]
		if candidate(in) {
			liveWrite := false
		writes:
			for _, w := range in.Writes() {
				if w.Buf == isa.GM {
					liveWrite = true
					break
				}
				reads := future[w.Buf]
				if budget -= len(reads); budget < 0 {
					return nil, 0
				}
				for _, r := range reads {
					if w.Off < r.End && r.Off < w.End {
						liveWrite = true
						break writes
					}
				}
			}
			if !liveWrite {
				dead[i] = true
				removed++
				continue
			}
		}
		for _, r := range in.Reads() {
			future[r.Buf] = append(future[r.Buf], r)
		}
	}
	if removed == 0 {
		return nil, 0
	}
	out := derived(prog)
	out.Instrs = make([]isa.Instr, 0, len(prog.Instrs)-removed)
	for i, in := range prog.Instrs {
		if !dead[i] {
			out.Instrs = append(out.Instrs, in)
		}
	}
	return out, removed
}

// coalesceCopy fuses adjacent DMA copies between the same buffers into
// one multi-burst copy when the later copy's bursts continue the earlier
// copy's burst/gap pattern. One instruction with n bursts pays the issue
// cost once and a per-burst descriptor cost instead of n issues. Bursts
// of one copy execute in program order, exactly like the separate copies
// did, so the fusion is bit-exact by construction.
func coalesceCopy(prog *cce.Program, _ *isa.CostModel) (*cce.Program, int) {
	out := derived(prog)
	out.Instrs = make([]isa.Instr, 0, len(prog.Instrs))
	applied := 0
	for i := 0; i < len(prog.Instrs); {
		cur, ok := prog.Instrs[i].(*isa.CopyInstr)
		if !ok {
			out.Instrs = append(out.Instrs, prog.Instrs[i])
			i++
			continue
		}
		fused := *cur
		n := 1
		for i+n < len(prog.Instrs) {
			next, ok := prog.Instrs[i+n].(*isa.CopyInstr)
			if !ok {
				break
			}
			merged, ok := fuseCopy(&fused, next)
			if !ok {
				break
			}
			fused = merged
			n++
		}
		if n == 1 {
			out.Instrs = append(out.Instrs, cur)
		} else {
			out.Instrs = append(out.Instrs, &fused)
			applied += n - 1
		}
		i += n
	}
	if applied == 0 {
		return nil, 0
	}
	return out, applied
}

// fuseCopy merges b into a multi-burst continuation of a, when legal: same
// endpoints and burst size, and b's bursts sit exactly one (burst+gap)
// step after a's last burst, with matching gaps on both sides.
func fuseCopy(a, b *isa.CopyInstr) (isa.CopyInstr, bool) {
	if a.SrcBuf != b.SrcBuf || a.DstBuf != b.DstBuf || a.BurstBytes != b.BurstBytes {
		return isa.CopyInstr{}, false
	}
	sg, dg := a.SrcGap, a.DstGap
	if a.NBurst == 1 {
		// A single-burst copy has no gap of its own: the fused gaps are
		// whatever separates the two copies, as long as it is not negative.
		sg = b.SrcAddr - (a.SrcAddr + a.BurstBytes)
		dg = b.DstAddr - (a.DstAddr + a.BurstBytes)
		if sg < 0 || dg < 0 {
			return isa.CopyInstr{}, false
		}
	} else if b.SrcAddr != a.SrcAddr+a.NBurst*(a.BurstBytes+sg) ||
		b.DstAddr != a.DstAddr+a.NBurst*(a.BurstBytes+dg) {
		return isa.CopyInstr{}, false
	}
	if b.NBurst > 1 && (b.SrcGap != sg || b.DstGap != dg) {
		return isa.CopyInstr{}, false
	}
	fused := *a
	fused.SrcGap, fused.DstGap = sg, dg
	fused.NBurst = a.NBurst + b.NBurst
	// A same-buffer copy whose fused source span (gap bytes included)
	// overlaps the fused destination span violates the lint copy-overlap
	// invariant even when every original burst pair was disjoint.
	if fused.SrcBuf == fused.DstBuf && fused.Reads()[0].Overlaps(fused.Writes()[0]) {
		return isa.CopyInstr{}, false
	}
	return fused, true
}

// coalesceVec fuses adjacent vector instructions whose operands advance
// by a uniform block-aligned delta into one instruction via the repeat
// parameter — the transformation the paper's §V repeat-parameter argument
// asks for and the perf "coalescable run" diagnostic flags. Repeats of
// one instruction execute in program order over the same lanes the
// separate instructions touched, so the fusion is bit-exact by
// construction, stride-0 reduction addressing included. Runs are chunked
// at isa.MaxRepeat.
func coalesceVec(prog *cce.Program, _ *isa.CostModel) (*cce.Program, int) {
	out := derived(prog)
	out.Instrs = make([]isa.Instr, 0, len(prog.Instrs))
	applied := 0
	for i := 0; i < len(prog.Instrs); {
		cur, ok := prog.Instrs[i].(*isa.VecInstr)
		if !ok {
			out.Instrs = append(out.Instrs, prog.Instrs[i])
			i++
			continue
		}
		fused := *cur
		n := 1
		for i+n < len(prog.Instrs) {
			next, ok := prog.Instrs[i+n].(*isa.VecInstr)
			if !ok {
				break
			}
			merged, ok := fuseVec(&fused, next)
			if !ok {
				break
			}
			fused = merged
			n++
		}
		if n == 1 {
			out.Instrs = append(out.Instrs, cur)
		} else {
			out.Instrs = append(out.Instrs, &fused)
			applied += n - 1
		}
		i += n
	}
	if applied == 0 {
		return nil, 0
	}
	return out, applied
}

// fuseVec merges b into a as additional repeats, when legal: same
// operation, mask and scalar, and every used operand of b starts exactly
// where a's repeat sequence continues, with a compatible repeat stride.
// When a has a single repeat its RepStride is unconstrained (repeat 0
// never advances), so the observed per-operand delta chooses it — the
// same rule as the perf analyzer's chainDelta.
func fuseVec(a *isa.VecInstr, b *isa.VecInstr) (isa.VecInstr, bool) {
	if a.Op != b.Op || a.Mask != b.Mask || a.Scalar != b.Scalar {
		return isa.VecInstr{}, false
	}
	if a.Repeat+b.Repeat > isa.MaxRepeat {
		return isa.VecInstr{}, false
	}
	used := [3]bool{true, a.Op.IsUnary() || a.Op.IsBinary(), a.Op.IsBinary()}
	ao := [3]isa.Operand{a.Dst, a.Src0, a.Src1}
	bo := [3]isa.Operand{b.Dst, b.Src0, b.Src1}
	var strides [3]int
	for k := range ao {
		if !used[k] {
			continue
		}
		if ao[k].Buf != bo[k].Buf || ao[k].BlkStride != bo[k].BlkStride {
			return isa.VecInstr{}, false
		}
		s := ao[k].RepStride
		if a.Repeat == 1 {
			d := bo[k].Addr - ao[k].Addr
			if d < 0 || d%isa.BlockBytes != 0 {
				return isa.VecInstr{}, false
			}
			s = d / isa.BlockBytes
		} else if bo[k].Addr != ao[k].Addr+a.Repeat*s*isa.BlockBytes {
			return isa.VecInstr{}, false
		}
		if b.Repeat > 1 && bo[k].RepStride != s {
			return isa.VecInstr{}, false
		}
		strides[k] = s
	}
	fused := *a
	if used[0] {
		fused.Dst.RepStride = strides[0]
	}
	if used[1] {
		fused.Src0.RepStride = strides[1]
	}
	if used[2] {
		fused.Src1.RepStride = strides[2]
	}
	fused.Repeat = a.Repeat + b.Repeat
	// The lint overlap invariant allows a source operand that is exactly
	// the destination (in-place accumulation) but rejects any partial
	// source/destination span overlap. Two disjoint instructions can fuse
	// into spans that interleave, so re-check the fused form and refuse
	// fusions the verifier would reject.
	dstSpan := fused.Dst.Span(fused.Repeat)
	for _, src := range [2]struct {
		used bool
		op   isa.Operand
	}{{used[1], fused.Src0}, {used[2], fused.Src1}} {
		if src.used && src.op != fused.Dst && src.op.Span(fused.Repeat).Overlaps(dstSpan) {
			return isa.VecInstr{}, false
		}
	}
	return fused, true
}
