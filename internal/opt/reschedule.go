package opt

import (
	"errors"
	"sort"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/depgraph"
	"davinci/internal/isa"
)

const (
	// rescheduleMaxInstrs bounds the programs the list scheduler attempts;
	// above it the conflict graph alone is too expensive.
	rescheduleMaxInstrs = 4000
	// rescheduleBudget caps the pairwise region comparisons spent building
	// the conflict graph (depgraph.Conflicts).
	rescheduleBudget = 8_000_000
	// rescheduleWindow is how many ready instructions the scheduler probes
	// per step (highest critical-path priority first).
	rescheduleWindow = 32
)

// reschedule reorders instructions, preserving every conflicting pair in
// program order, to overlap pipes and shrink the makespan: greedy list
// scheduling over the full conflict DAG (depgraph.Conflicts — not just
// the per-pipe latest-producer edges, which under-constrain reordering),
// driven by the same timing scoreboard the simulator uses
// (aicore.Board), with longest-path-to-exit priorities. Any topological
// order of the conflict DAG leaves the program-order functional
// execution bit-identical, because non-conflicting instructions commute
// on memory; the pass only returns a reorder that the scoreboard proves
// strictly faster.
//
// Programs still carrying flags or barriers are left alone: their
// explicit schedule is an intent the reorder would have to re-derive.
//
// The returned *depgraph.BudgetError is non-nil when the conflict scan
// gave up before finishing — the pass then did nothing, and the caller
// records the skip instead of letting it pass for "no improvement found".
func reschedule(prog *cce.Program, cost *isa.CostModel, budget int) (*cce.Program, int, *depgraph.BudgetError) {
	n := len(prog.Instrs)
	if n < 2 || n > rescheduleMaxInstrs {
		return nil, 0, nil
	}
	for _, in := range prog.Instrs {
		switch in.(type) {
		case *isa.SetFlagInstr, *isa.WaitFlagInstr, *isa.BarrierInstr:
			return nil, 0, nil
		}
	}
	preds, err := depgraph.Conflicts(prog, budget)
	if err != nil {
		var berr *depgraph.BudgetError
		if errors.As(err, &berr) {
			return nil, 0, berr
		}
		return nil, 0, nil
	}
	succs := make([][]int32, n)
	indeg := make([]int, n)
	for j, ps := range preds {
		indeg[j] = len(ps)
		for _, i := range ps {
			succs[i] = append(succs[i], int32(j))
		}
	}
	// Longest path from each instruction to the exit, in cycles: the
	// classic critical-path priority. Conflict edges only point forward in
	// program order, so a reverse sweep is a reverse-topological order.
	prio := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		var tail int64
		for _, j := range succs[i] {
			if prio[j] > tail {
				tail = prio[j]
			}
		}
		prio[i] = prog.Instrs[i].Cycles(cost) + tail
	}

	// ready holds issueable instructions ordered by (priority desc, index
	// asc); each step probes the top rescheduleWindow candidates on the
	// scoreboard and issues the one that can start earliest.
	less := func(a, b int32) bool {
		if prio[a] != prio[b] {
			return prio[a] > prio[b]
		}
		return a < b
	}
	var ready []int32
	insert := func(i int32) {
		at := sort.Search(len(ready), func(k int) bool { return less(i, ready[k]) })
		ready = append(ready, 0)
		copy(ready[at+1:], ready[at:])
		ready[at] = i
	}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			insert(int32(i))
		}
	}

	board := aicore.NewBoard(cost)
	order := make([]int, 0, n)
	moved := 0
	for len(ready) > 0 {
		window := len(ready)
		if window > rescheduleWindow {
			window = rescheduleWindow
		}
		best, bestStart := 0, int64(-1)
		for k := 0; k < window; k++ {
			start := board.StartOf(prog.Instrs[ready[k]])
			if bestStart < 0 || start < bestStart {
				best, bestStart = k, start
			}
		}
		pick := ready[best]
		copy(ready[best:], ready[best+1:])
		ready = ready[:len(ready)-1]
		board.Place(prog.Instrs[pick], int(pick))
		if int(pick) != len(order) {
			moved++
		}
		order = append(order, int(pick))
		for _, j := range succs[pick] {
			if indeg[j]--; indeg[j] == 0 {
				insert(j)
			}
		}
	}
	if moved == 0 || board.Cycles() >= aicore.Time(prog, cost, false) {
		return nil, 0, nil
	}
	out := derived(prog)
	out.Instrs = make([]isa.Instr, n)
	for k, i := range order {
		out.Instrs[k] = prog.Instrs[i]
	}
	return out, moved, nil
}
