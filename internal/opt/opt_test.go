package opt

import (
	"strings"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// vec builds a unit-stride repeat=1 vadd at the given UB addresses.
func vec(dst, s0, s1 int) *isa.VecInstr {
	return &isa.VecInstr{
		Op: isa.VAdd, Dst: isa.Contig(isa.UB, dst), Src0: isa.Contig(isa.UB, s0),
		Src1: isa.Contig(isa.UB, s1), Mask: isa.FullMask(), Repeat: 1,
	}
}

// copyIn builds a GM->UB load of n bytes.
func copyIn(src, dst, n int) *isa.CopyInstr {
	return &isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: src, DstBuf: isa.UB, DstAddr: dst, NBurst: 1, BurstBytes: n}
}

// copyOut builds a UB->GM store of n bytes.
func copyOut(src, dst, n int) *isa.CopyInstr {
	return &isa.CopyInstr{SrcBuf: isa.UB, SrcAddr: src, DstBuf: isa.GM, DstAddr: dst, NBurst: 1, BurstBytes: n}
}

const rb = isa.LanesPerRepeat * 2 // bytes one full-mask repeat covers

// coalescableProg emits a load, a run of n fusable repeat=1 vadds, and a
// store, so every pass has real data flow around it.
func coalescableProg(n int) *cce.Program {
	p := cce.New("coalescable")
	total := (2*n + n) * rb
	p.Emit(copyIn(0, 0, total))
	for i := 0; i < n; i++ {
		p.Emit(vec(2*n*rb+i*rb, i*rb, (n+i)*rb))
	}
	p.Emit(copyOut(2*n*rb, total, n*rb))
	return p
}

func TestCoalesceVecFusesUniformRun(t *testing.T) {
	prog := coalescableProg(10)
	next, applied := coalesceVec(prog, isa.DefaultCostModel())
	if applied != 9 {
		t.Fatalf("applied = %d, want 9", applied)
	}
	if len(next.Instrs) != 3 {
		t.Fatalf("instrs = %d, want 3", len(next.Instrs))
	}
	v := next.Instrs[1].(*isa.VecInstr)
	if v.Repeat != 10 || v.Dst.RepStride != 8 || v.Src0.RepStride != 8 || v.Src1.RepStride != 8 {
		t.Fatalf("fused instr = %v", v)
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("fused instr invalid: %v", err)
	}
}

func TestCoalesceVecChunksAtMaxRepeat(t *testing.T) {
	prog := coalescableProg(300)
	next, applied := coalesceVec(prog, isa.DefaultCostModel())
	if applied != 298 {
		t.Fatalf("applied = %d, want 298", applied)
	}
	var reps []int
	for _, in := range next.Instrs {
		if v, ok := in.(*isa.VecInstr); ok {
			reps = append(reps, v.Repeat)
		}
	}
	if len(reps) != 2 || reps[0] != isa.MaxRepeat || reps[1] != 300-isa.MaxRepeat {
		t.Fatalf("repeat chunks = %v", reps)
	}
}

func TestFuseVecRejectsIllegalPairs(t *testing.T) {
	a := vec(2*rb, rb, 2*rb)
	cases := map[string]*isa.VecInstr{
		"different op":     {Op: isa.VMax, Dst: isa.Contig(isa.UB, 3*rb), Src0: isa.Contig(isa.UB, 2*rb), Src1: isa.Contig(isa.UB, 3*rb), Mask: isa.FullMask(), Repeat: 1},
		"different mask":   {Op: isa.VAdd, Dst: isa.Contig(isa.UB, 3*rb), Src0: isa.Contig(isa.UB, 2*rb), Src1: isa.Contig(isa.UB, 3*rb), Mask: isa.MaskFirstN(16), Repeat: 1},
		"negative delta":   vec(0, 2*rb, 3*rb), // dst goes backward
		"unaligned delta":  {Op: isa.VAdd, Dst: isa.Contig(isa.UB, 2*rb+16), Src0: isa.Contig(isa.UB, 2*rb), Src1: isa.Contig(isa.UB, 3*rb), Mask: isa.FullMask(), Repeat: 1},
		"different buffer": {Op: isa.VAdd, Dst: isa.Contig(isa.L0C, 3*rb), Src0: isa.Contig(isa.UB, 2*rb), Src1: isa.Contig(isa.UB, 3*rb), Mask: isa.FullMask(), Repeat: 1},
	}
	for name, b := range cases {
		if _, ok := fuseVec(a, b); ok {
			t.Errorf("%s: fuse unexpectedly legal", name)
		}
	}
}

func TestFuseVecRepeatCap(t *testing.T) {
	a := vec(0, rb, 2*rb)
	a.Repeat = isa.MaxRepeat
	a.Dst.RepStride, a.Src0.RepStride, a.Src1.RepStride = 8, 8, 8
	b := vec(isa.MaxRepeat*rb, rb+isa.MaxRepeat*rb, 2*rb+isa.MaxRepeat*rb)
	if _, ok := fuseVec(a, b); ok {
		t.Fatal("fuse past MaxRepeat unexpectedly legal")
	}
}

func TestCoalesceCopyFusesBurstPattern(t *testing.T) {
	p := cce.New("bursts")
	for i := 0; i < 8; i++ {
		p.Emit(copyIn(i*128, i*64, 64)) // src gap 64, dst gap 0
	}
	next, applied := coalesceCopy(p, isa.DefaultCostModel())
	if applied != 7 {
		t.Fatalf("applied = %d, want 7", applied)
	}
	c := next.Instrs[0].(*isa.CopyInstr)
	if c.NBurst != 8 || c.SrcGap != 64 || c.DstGap != 0 || c.BurstBytes != 64 {
		t.Fatalf("fused copy = %v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("fused copy invalid: %v", err)
	}
}

func TestCoalesceCopyRejectsIrregularGaps(t *testing.T) {
	p := cce.New("irregular")
	p.Emit(copyIn(0, 0, 64))
	p.Emit(copyIn(64, 64, 64))
	p.Emit(copyIn(256, 128, 64)) // src jumps: gap 128 != 0
	next, applied := coalesceCopy(p, isa.DefaultCostModel())
	if applied != 1 || len(next.Instrs) != 2 {
		t.Fatalf("applied = %d, instrs = %d; want 1 fused pair + 1 leftover", applied, len(next.Instrs))
	}
}

func TestDeadSyncRemovesAllFlags(t *testing.T) {
	p := cce.New("flags")
	p.Emit(copyIn(0, 0, 64))
	p.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	p.Emit(vec(64, 0, 0))
	next, removed := deadSync(p, isa.DefaultCostModel())
	if removed != 2 || len(next.Instrs) != 2 {
		t.Fatalf("removed = %d, instrs = %d", removed, len(next.Instrs))
	}
}

func TestDeadBarrierKeepsLiveRemovesDead(t *testing.T) {
	p := cce.New("barriers")
	p.Emit(copyIn(0, 0, 64))
	p.Emit(&isa.BarrierInstr{}) // live: MTE2 write -> Vector read spans it
	p.Emit(vec(64, 0, 0))
	p.Emit(&isa.BarrierInstr{}) // dead: nothing after it
	next, removed := deadBarrier(p, isa.DefaultCostModel())
	if removed != 1 || len(next.Instrs) != 3 {
		t.Fatalf("removed = %d, instrs = %d", removed, len(next.Instrs))
	}
	if _, ok := next.Instrs[1].(*isa.BarrierInstr); !ok {
		t.Fatalf("live barrier gone: %v", next.Instrs)
	}
}

func TestDeadMoveRemovesUnreadScratchChain(t *testing.T) {
	p := cce.New("deadmoves")
	p.Emit(copyIn(0, 0, 64))
	p.Emit(vec(10*rb, 0, 0))      // feeds only the next, itself dead
	p.Emit(vec(20*rb, 10*rb, 0))  // never read again, UB-only: dead
	p.Emit(vec(rb, 0, 0))         // live: stored below
	p.Emit(copyOut(rb, 1024, rb)) // GM store keeps it
	next, removed := deadMove(p, isa.DefaultCostModel())
	if removed != 2 || len(next.Instrs) != 3 {
		t.Fatalf("removed = %d, instrs = %d", removed, len(next.Instrs))
	}
	if _, ok := next.Instrs[2].(*isa.CopyInstr); !ok {
		t.Fatalf("store gone: %v", next.Instrs)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	prog := coalescableProg(32)
	res := Optimize(prog, Options{Level: LevelRewrite})
	if !res.Validated || res.Rejected != "" {
		t.Fatalf("not validated: %+v", res)
	}
	if !res.Changed() || res.Cycles >= res.BaselineCycles {
		t.Fatalf("no improvement: %s", res.Summary())
	}
	if got := aicore.Time(res.Prog, nil, false); got != res.Cycles {
		t.Fatalf("reported cycles %d != scheduled %d", res.Cycles, got)
	}
	// The result must replay bit-identically; Validate already proved it,
	// but pin the reported accounting too.
	if res.Instrs != len(res.Prog.Instrs) || res.BaselineInstrs != len(prog.Instrs) {
		t.Fatalf("instruction accounting off: %+v", res)
	}
}

func TestOptimizeLevelNoneIsIdentity(t *testing.T) {
	prog := coalescableProg(8)
	res := Optimize(prog, Options{Level: LevelNone})
	if res.Prog != prog || res.Changed() || !res.Validated {
		t.Fatalf("O0 not identity: %+v", res)
	}
}

func TestRescheduleHidesLatency(t *testing.T) {
	// A long load feeds vadd A; vadd B is independent. In program order B
	// queues behind A on the vector pipe and pays the load's latency; any
	// legal reorder issues B first.
	p := cce.New("latency")
	p.Emit(copyIn(0, 0, 16384))
	p.Emit(vec(17*1024, 0, rb))            // A: reads the loaded bytes
	p.Emit(vec(18*1024, 20*1024, 20*1024)) // B: fully outside the load's span
	p.Emit(copyOut(17*1024, 16384, rb))    // store A
	p.Emit(copyOut(18*1024, 16384+rb, rb)) // store B
	res := Optimize(p, Options{Level: LevelSchedule})
	if res.Rejected != "" {
		t.Fatalf("rejected: %s", res.Rejected)
	}
	var found bool
	for _, rw := range res.Rewrites {
		if rw.Pass == "reschedule" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reschedule did not fire: %s", res.Summary())
	}
	if res.Cycles >= res.BaselineCycles {
		t.Fatalf("no cycle win: %s", res.Summary())
	}
}

func TestValidateRejectsDivergentProgram(t *testing.T) {
	base := cce.New("base")
	base.Emit(copyIn(0, 0, 64))
	base.Emit(vec(64, 0, 0))
	base.Emit(copyOut(64, 128, 64))
	broken := cce.New("base")
	broken.Emit(copyIn(0, 0, 64))
	broken.Emit(copyOut(64, 128, 64)) // the vadd's result never computed
	reason := Validate(base, broken, Options{})
	if !strings.Contains(reason, "global memory diverged") {
		t.Fatalf("reason = %q, want GM divergence", reason)
	}
}

func TestValidateRejectsRegression(t *testing.T) {
	fast := cce.New("p")
	fast.Emit(copyIn(0, 0, 64))
	slow := cce.New("p")
	slow.Emit(copyIn(0, 0, 64))
	slow.Emit(copyIn(0, 0, 64))
	if reason := Validate(fast, slow, Options{}); !strings.Contains(reason, "regressed") {
		t.Fatalf("reason = %q, want cycle regression", reason)
	}
}
