package opt

import (
	"strings"
	"testing"
)

// TestConflictBudgetSkipsReschedule pins the budget-exhaustion contract:
// an O2 optimization whose conflict-graph scan cannot finish within
// Options.ConflictBudget must not silently report "no improvement" — it
// records the typed depgraph.BudgetError on the result and says so in
// the summary, while the rest of the pipeline (and validation) still
// runs.
func TestConflictBudgetSkipsReschedule(t *testing.T) {
	prog := coalescableProg(20)
	r := Optimize(prog, Options{Level: LevelSchedule, ConflictBudget: 1})
	if r.SkippedReschedule == nil {
		t.Fatalf("Optimize(O2, budget=1) did not record a skipped reschedule")
	}
	if r.SkippedReschedule.Budget != 1 {
		t.Fatalf("SkippedReschedule.Budget = %d, want 1", r.SkippedReschedule.Budget)
	}
	if !r.Validated {
		t.Fatalf("result not validated: %+v", r)
	}
	if !strings.Contains(r.Summary(), "rescheduling skipped") {
		t.Fatalf("Summary() = %q, want a rescheduling-skipped note", r.Summary())
	}
}

// TestConflictBudgetDefaultReschedules is the positive contrast: under
// the default budget the same program's conflict scan completes, so no
// skip reason is recorded and the summary stays quiet about it.
func TestConflictBudgetDefaultReschedules(t *testing.T) {
	prog := coalescableProg(20)
	r := Optimize(prog, Options{Level: LevelSchedule})
	if r.SkippedReschedule != nil {
		t.Fatalf("default budget exhausted unexpectedly: %v", r.SkippedReschedule)
	}
	if strings.Contains(r.Summary(), "rescheduling skipped") {
		t.Fatalf("Summary() = %q mentions a skip with none recorded", r.Summary())
	}
}

// TestLevelRewriteNeverSkips: the O1 pipeline has no rescheduling pass,
// so even a hostile budget cannot mark the result skipped.
func TestLevelRewriteNeverSkips(t *testing.T) {
	r := Optimize(coalescableProg(20), Options{Level: LevelRewrite, ConflictBudget: 1})
	if r.SkippedReschedule != nil {
		t.Fatalf("O1 recorded a reschedule skip: %v", r.SkippedReschedule)
	}
}
