// Package opt is a static, semantics-preserving optimizer over
// cce.Program: the acting counterpart of the static performance analyzer
// (internal/lint/perf), and the concrete stepping stone to the roadmap's
// autoscheduler. Where the analyzer names the waste — coalescable repeat=1
// runs, serializing set/wait pairs, dead barriers — the optimizer
// discharges it, justified by the same dependence facts the lint hazard
// pass builds (internal/depgraph) and gated by the same cycle oracle the
// simulator uses (aicore.Time).
//
// The pass pipeline, in order:
//
//	dead-sync       remove every set_flag/wait_flag: the optimizer targets
//	                the implicit-sync scoreboard (aicore.Run), where flags
//	                carry no ordering and only cost issue cycles
//	dead-barrier    remove barriers that order no cross-pipe conflicting
//	                access pair (the perf "dead barrier" diagnostic)
//	dead-move       remove writes to scratch-pad buffers no later
//	                instruction reads (global memory is observable output
//	                and never touched)
//	coalesce-copy   fuse adjacent DMA copies whose bursts continue a
//	                uniform gap pattern into one multi-burst copy
//	coalesce-vec    fuse adjacent vector instructions whose operands
//	                advance by a uniform block-aligned delta via the repeat
//	                parameter (the paper's §V transformation, and the perf
//	                "coalescable run" diagnostic)
//	reschedule      level 2 only: dependence-respecting list rescheduling
//	                that reorders non-conflicting instructions to overlap
//	                pipes (see reschedule.go)
//
// Every pass must not increase the scheduled makespan (aicore.Time) or it
// is discarded wholesale; the surviving program then passes the
// translation-validation gate (see Validate) or the baseline is returned
// unchanged. Rewrites are bit-exact by construction — repeats of one
// vector instruction and bursts of one copy execute in the same order the
// separate instructions would — and the validator re-proves it per
// program anyway, so a bug here surfaces as a rejected optimization, not
// a wrong answer.
package opt

import (
	"fmt"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/depgraph"
	"davinci/internal/isa"
)

// Level selects how aggressively Optimize rewrites.
type Level int

const (
	// LevelNone disables the optimizer: the program is returned untouched.
	LevelNone Level = 0
	// LevelRewrite runs the local cleanup and coalescing passes
	// (dead-sync, dead-barrier, dead-move, coalesce-copy, coalesce-vec).
	LevelRewrite Level = 1
	// LevelSchedule adds dependence-respecting list rescheduling.
	LevelSchedule Level = 2
)

func (l Level) String() string {
	switch l {
	case LevelNone:
		return "O0"
	case LevelRewrite:
		return "O1"
	case LevelSchedule:
		return "O2"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Options configures one optimization.
type Options struct {
	// Level selects the pass pipeline; LevelNone returns the input.
	Level Level
	// Cost is the cycle oracle's cost model; nil takes the calibrated
	// default (the model every plan is timed under).
	Cost *isa.CostModel
	// Buffers are the core capacities the program was emitted against:
	// the validation gate lints against them and replays both programs on
	// cores of this configuration. Zero values take the Ascend 910
	// defaults.
	Buffers buffer.Config
	// ConflictBudget caps the region-pair comparisons the O2 rescheduling
	// pass may spend building the conflict graph (depgraph.Conflicts);
	// 0 takes the default. Exhausting it skips the pass and records the
	// typed reason in Result.SkippedReschedule.
	ConflictBudget int
}

// Rewrite reports what one pass did.
type Rewrite struct {
	// Pass names the pass ("coalesce-vec", ...).
	Pass string
	// Applied counts individual rewrites (instructions fused, removed or
	// moved).
	Applied int
	// Removed is the net instruction-count reduction.
	Removed int
	// Saved is the scheduled-makespan reduction the pass bought, under
	// the cycle oracle.
	Saved int64
	// StartNanos/EndNanos is the host wall-clock window the pass ran in
	// (Unix nanoseconds, including its cycle-gate timing call). The plan
	// cache replays these windows as opt_pass trace spans after the
	// compile returns.
	StartNanos, EndNanos int64
}

func (r Rewrite) String() string {
	return fmt.Sprintf("%s: %d rewrites, -%d instrs, -%d cycles", r.Pass, r.Applied, r.Removed, r.Saved)
}

// Result is the outcome of one Optimize call.
type Result struct {
	// Prog is the program to run: the optimized program when the
	// validation gate passed, the untouched baseline otherwise.
	Prog *cce.Program
	// Level echoes the requested level.
	Level Level
	// Rewrites lists what each applied pass did, in pipeline order.
	// Passes that found nothing (or were discarded by the cycle gate) do
	// not appear.
	Rewrites []Rewrite
	// BaselineInstrs/BaselineCycles describe the input program;
	// Instrs/Cycles describe Prog. Cycles is the exact implicit-sync
	// makespan (aicore.Time), identical to what Run/Replay reports.
	BaselineInstrs int
	Instrs         int
	BaselineCycles int64
	Cycles         int64
	// Validated reports that the translation-validation gate ran and
	// passed (trivially true when no pass changed the program).
	Validated bool
	// Rejected carries the gate's reason when validation failed; Prog is
	// then the baseline.
	Rejected string
	// SkippedReschedule carries the typed reason the O2 rescheduling pass
	// never analyzed the program: the depgraph.Conflicts region-pair scan
	// exhausted its comparison budget. nil when the pass ran (or was not
	// requested). Surfaced so a silently-kept program order is visible in
	// optimizer reports and the depgraph_budget_exhausted counter instead
	// of masquerading as "no improvement found".
	SkippedReschedule *depgraph.BudgetError
	// StartNanos/EndNanos is the host wall-clock window of the whole
	// Optimize call (Unix nanoseconds), replayed as the opt_pipeline
	// trace span.
	StartNanos, EndNanos int64
}

// Saved returns the total makespan reduction.
func (r *Result) Saved() int64 { return r.BaselineCycles - r.Cycles }

// Changed reports whether Prog differs from the baseline.
func (r *Result) Changed() bool { return len(r.Rewrites) > 0 && r.Rejected == "" }

// Summary renders a one-line report ("O1: 154 rewrites, -9856 cycles
// (12%)" or "O1: no rewrites").
func (r *Result) Summary() string {
	if r.Rejected != "" {
		return fmt.Sprintf("%v: rejected (%s), baseline kept", r.Level, r.Rejected)
	}
	if len(r.Rewrites) == 0 {
		if r.SkippedReschedule != nil {
			return fmt.Sprintf("%v: no rewrites; rescheduling skipped (%v)", r.Level, r.SkippedReschedule)
		}
		return fmt.Sprintf("%v: no rewrites", r.Level)
	}
	applied := 0
	for _, rw := range r.Rewrites {
		applied += rw.Applied
	}
	pct := float64(0)
	if r.BaselineCycles > 0 {
		pct = 100 * float64(r.Saved()) / float64(r.BaselineCycles)
	}
	s := fmt.Sprintf("%v: %d rewrites, %d -> %d instrs, %d -> %d cycles (-%.1f%%)",
		r.Level, applied, r.BaselineInstrs, r.Instrs, r.BaselineCycles, r.Cycles, pct)
	if r.SkippedReschedule != nil {
		s += fmt.Sprintf("; rescheduling skipped (%v)", r.SkippedReschedule)
	}
	return s
}

// pass is one rewrite: it returns the rewritten program and the number of
// individual rewrites, or (nil, 0) when it found nothing.
type pass struct {
	name string
	run  func(*cce.Program, *isa.CostModel) (*cce.Program, int)
}

func pipeline(opts Options, res *Result) []pass {
	ps := []pass{
		{"dead-sync", deadSync},
		{"dead-barrier", deadBarrier},
		{"dead-move", deadMove},
		{"coalesce-copy", coalesceCopy},
		{"coalesce-vec", coalesceVec},
	}
	if opts.Level >= LevelSchedule {
		budget := opts.ConflictBudget
		if budget <= 0 {
			budget = rescheduleBudget
		}
		// Rescheduling moves independent work together, which can create
		// new adjacent coalescable runs — run the coalescers once more so
		// an optimized program never carries a fusable run it could have
		// discharged. A conflict-scan budget exhaustion is recorded on the
		// result rather than silently passing for "nothing to move".
		ps = append(ps,
			pass{"reschedule", func(prog *cce.Program, cost *isa.CostModel) (*cce.Program, int) {
				out, moved, berr := reschedule(prog, cost, budget)
				if berr != nil {
					res.SkippedReschedule = berr
				}
				return out, moved
			}},
			pass{"coalesce-copy", coalesceCopy},
			pass{"coalesce-vec", coalesceVec},
		)
	}
	return ps
}

// Optimize rewrites prog at the requested level and translation-validates
// the result. It never fails: when a pass or the final gate cannot prove
// an improvement safe, the baseline program comes back with the reason in
// Rejected. The input program must already be valid (cce.Validate); it is
// never mutated — every pass builds a fresh instruction slice.
func Optimize(prog *cce.Program, opts Options) *Result {
	cost := opts.Cost
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	base := aicore.Time(prog, cost, false)
	res := &Result{
		Prog:           prog,
		Level:          opts.Level,
		BaselineInstrs: len(prog.Instrs),
		Instrs:         len(prog.Instrs),
		BaselineCycles: base,
		Cycles:         base,
		StartNanos:     time.Now().UnixNano(),
	}
	defer func() { res.EndNanos = time.Now().UnixNano() }()
	if opts.Level <= LevelNone || len(prog.Instrs) == 0 {
		res.Validated = true
		return res
	}

	cur, curCycles := prog, base
	for _, p := range pipeline(opts, res) {
		passStart := time.Now().UnixNano()
		next, applied := p.run(cur, cost)
		if next == nil || applied == 0 {
			continue
		}
		nextCycles := aicore.Time(next, cost, false)
		if nextCycles > curCycles {
			// The rewrite is legal but the schedule got worse (coarser
			// hazard granularity can delay a consumer): discard the pass.
			continue
		}
		res.Rewrites = append(res.Rewrites, Rewrite{
			Pass:       p.name,
			Applied:    applied,
			Removed:    len(cur.Instrs) - len(next.Instrs),
			Saved:      curCycles - nextCycles,
			StartNanos: passStart,
			EndNanos:   time.Now().UnixNano(),
		})
		cur, curCycles = next, nextCycles
	}
	if len(res.Rewrites) == 0 {
		res.Validated = true
		return res
	}

	if reason := Validate(prog, cur, opts); reason != "" {
		res.Rejected = reason
		res.Rewrites = nil
		return res
	}
	res.Prog = cur
	res.Instrs = len(cur.Instrs)
	res.Cycles = curCycles
	res.Validated = true
	return res
}

// derived returns an empty program carrying over prog's name.
func derived(prog *cce.Program) *cce.Program {
	return &cce.Program{Name: prog.Name}
}
