// Package faults is a deterministic, seeded fault-injection framework for
// the simulated chip: a chaos harness. An Injector decides, purely from
// (seed, tile, attempt), whether a tile attempt is perturbed and how, then
// arms the attempt's aicore.Core with hooks that realize the fault:
//
//   - Transient: the run aborts at a chosen instruction with a detected
//     transient fault (a soft error caught by a consistency check).
//   - BitFlip: one bit of the Unified Buffer is flipped mid-run and the
//     run aborts with an ECC error — the corruption is really present in
//     the scratch-pad, so a resilience layer that failed to retry on a
//     pristine core would propagate it.
//   - StuckPipe: one pipeline stops retiring; the run blocks until the
//     core's Cancel channel fires (a real hang, reclaimed by a watchdog).
//   - DroppedFlag: the cached program is re-synchronized with explicit
//     set_flag/wait_flag tokens (cce.AutoSync), one set_flag is dropped,
//     and the result runs under explicit semantics — the starved
//     wait_flag spins forever, again a real hang, whose diagnosis names
//     the blocked pipe and the unsatisfied flag (aicore.DeadlockError).
//
// Decisions are pure functions of the configuration, so the fault schedule
// is identical across runs and independent of goroutine scheduling: chaos
// tests can assert bit-identical outputs and exact counter values.
package faults

import (
	"errors"
	"fmt"
	"strings"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/obs"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// KindNone: the attempt runs clean.
	KindNone Kind = iota
	// KindTransient aborts the run with a detected transient fault.
	KindTransient
	// KindBitFlip flips a scratch-pad bit and aborts with an ECC error.
	KindBitFlip
	// KindDroppedFlag drops a set_flag from the explicitly synchronized
	// program, hanging the matching wait_flag.
	KindDroppedFlag
	// KindStuckPipe hangs the run at an instruction of a chosen pipe.
	KindStuckPipe
	numKinds
)

var kindNames = [...]string{"none", "transient", "bitflip", "droppedflag", "stuckpipe"}

func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKinds parses a comma-separated kind list ("transient,bitflip").
func ParseKinds(s string) ([]Kind, error) {
	var kinds []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for k := KindTransient; k < numKinds; k++ {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown kind %q (want transient, bitflip, droppedflag, stuckpipe)", name)
		}
	}
	return kinds, nil
}

// AllKinds returns every injectable kind.
func AllKinds() []Kind {
	return []Kind{KindTransient, KindBitFlip, KindDroppedFlag, KindStuckPipe}
}

// Config describes a fault schedule.
type Config struct {
	// Seed fixes the pseudo-random schedule; the same seed always injects
	// the same faults into the same (tile, attempt) pairs.
	Seed int64
	// Rate is the per-attempt injection probability in [0, 1].
	Rate float64
	// Kinds restricts the injected fault kinds; nil enables all.
	Kinds []Kind
	// MaxPerTile caps how many attempts of one tile may fault (faults hit
	// attempts 1..MaxPerTile; later retries always run clean). 0 means 1,
	// which guarantees the first retry of any faulted tile succeeds.
	// Set it at or above the executor's attempt budget to exhaust retries.
	MaxPerTile int
}

// Tile identifies one (n, c1) tile of a chip run.
type Tile struct{ N, C1 int }

// Fault is one decided perturbation. The zero value is "no fault".
type Fault struct {
	// Kind selects the perturbation; KindNone runs clean.
	Kind Kind
	// r is the entropy the armed hooks derive fault parameters from
	// (target instruction, flipped bit, dropped flag).
	r uint64
}

// Injector decides and arms faults. Safe for concurrent use: decisions
// are pure and the counters are atomic.
type Injector struct {
	cfg      Config
	kinds    []Kind
	injected [numKinds]*obs.Counter
}

// New creates an injector. r receives the faults_injected{kind=...}
// counters; nil defers registration to Bind (or a private registry).
func New(cfg Config, r *obs.Registry) *Injector {
	if cfg.MaxPerTile <= 0 {
		cfg.MaxPerTile = 1
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	inj := &Injector{cfg: cfg, kinds: kinds}
	if r != nil {
		inj.Bind(r)
	}
	return inj
}

// Bind registers the injector's counters in r (idempotent; the first
// registry wins). The chip binds an unbound injector to its own registry
// so faults_injected appears in the same snapshot as the retry counters.
func (inj *Injector) Bind(r *obs.Registry) {
	if inj.injected[KindTransient] != nil {
		return
	}
	for _, k := range AllKinds() {
		inj.injected[k] = r.Counter("faults_injected", "kind", k.String())
	}
}

// Injected returns how many faults of kind k have actually fired.
func (inj *Injector) Injected(k Kind) int64 {
	if inj.injected[k] == nil {
		return 0
	}
	return inj.injected[k].Load()
}

func (inj *Injector) count(k Kind) {
	if inj.injected[k] != nil {
		inj.injected[k].Inc()
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decide returns the fault for one (tile, attempt), attempt 1-based. Pure:
// the schedule depends only on the configuration, never on execution
// order, so concurrent workers and reruns see the same faults.
func (inj *Injector) Decide(t Tile, attempt int) Fault {
	if attempt > inj.cfg.MaxPerTile || inj.cfg.Rate <= 0 {
		return Fault{}
	}
	h := splitmix64(uint64(inj.cfg.Seed))
	h = splitmix64(h ^ uint64(uint32(t.N))<<32 ^ uint64(uint32(t.C1)))
	h = splitmix64(h ^ uint64(attempt))
	// 53 uniform bits -> [0, 1).
	if float64(h>>11)/(1<<53) >= inj.cfg.Rate {
		return Fault{}
	}
	h2 := splitmix64(h)
	return Fault{Kind: inj.kinds[h2%uint64(len(inj.kinds))], r: splitmix64(h2)}
}

// Disarm removes any fault hooks from core.
func Disarm(core *aicore.Core) {
	core.OnInstr = nil
	core.ReplayWith = nil
	core.HangOnDeadlock = false
}

// Arm installs f's hooks on core for the next single program run. KindNone
// disarms. The injected-fault counters increment when a fault actually
// fires (a DroppedFlag against a program with no cross-pipe dependencies,
// for instance, has nothing to drop and runs clean).
func (inj *Injector) Arm(core *aicore.Core, f Fault) {
	Disarm(core)
	switch f.Kind {
	case KindNone:
	case KindTransient, KindBitFlip, KindStuckPipe:
		inj.armInstrFault(core, f)
	case KindDroppedFlag:
		inj.armDroppedFlag(core, f)
	}
}

// armInstrFault realizes the instruction-targeted kinds through OnInstr.
// The target index is derived from the program length the moment the
// program is observed, so every program fires exactly once.
func (inj *Injector) armInstrFault(core *aicore.Core, f Fault) {
	target := -1
	var pipe isa.Pipe
	fired := false
	prevOnProgram := core.OnProgram
	core.OnProgram = func(p *cce.Program) {
		if prevOnProgram != nil {
			prevOnProgram(p)
		}
		if target < 0 && len(p.Instrs) > 0 {
			target = int(f.r % uint64(len(p.Instrs)))
			pipe = p.Instrs[target].Pipe()
		}
	}
	core.OnInstr = func(idx int, in isa.Instr) error {
		if fired || idx != target {
			return nil
		}
		fired = true
		switch f.Kind {
		case KindBitFlip:
			mem := core.Mem.Mem(isa.UB)
			off := int((f.r >> 17) % uint64(len(mem)))
			bit := uint(f.r>>3) & 7
			mem[off] ^= 1 << bit
			inj.count(KindBitFlip)
			return &ECCError{Buf: isa.UB, Offset: off, Bit: int(bit)}
		case KindStuckPipe:
			inj.count(KindStuckPipe)
			if core.Cancel != nil {
				// The pipe stops retiring: a real hang, held until the
				// watchdog (or a run-wide abort) reclaims the core.
				<-core.Cancel
			}
			return &StuckPipeError{Pipe: pipe, Instr: idx}
		default:
			inj.count(KindTransient)
			return &TransientError{Instr: idx}
		}
	}
}

// armDroppedFlag realizes the dropped-set_flag kind through ReplayWith:
// the cached program is explicitly synchronized, one set_flag is removed,
// and the mutilated program runs under explicit semantics, hanging on the
// starved wait until the core is cancelled.
func (inj *Injector) armDroppedFlag(core *aicore.Core, f Fault) {
	core.ReplayWith = func(prog *cce.Program) (*aicore.Stats, error) {
		synced := cce.AutoSync(prog)
		var sets []int
		for i, in := range synced.Instrs {
			if _, ok := in.(*isa.SetFlagInstr); ok {
				sets = append(sets, i)
			}
		}
		if len(sets) == 0 {
			// Single-pipe program: nothing to drop, run clean.
			return core.Replay(prog)
		}
		drop := sets[int(f.r%uint64(len(sets)))]
		mut := cce.New(synced.Name + "-dropflag")
		for i, in := range synced.Instrs {
			if i != drop {
				mut.Emit(in)
			}
		}
		inj.count(KindDroppedFlag)
		core.HangOnDeadlock = true
		defer func() { core.HangOnDeadlock = false }()
		return core.RunExplicit(mut)
	}
}

// TransientError is a detected transient tile fault (soft error).
type TransientError struct {
	// Instr is the instruction index the fault fired at.
	Instr int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faults: injected transient fault at instr %d", e.Instr)
}

// ECCError is a detected (uncorrectable) scratch-pad bit flip.
type ECCError struct {
	// Buf is the corrupted buffer.
	Buf isa.BufID
	// Offset and Bit locate the flipped bit.
	Offset, Bit int
}

func (e *ECCError) Error() string {
	return fmt.Sprintf("faults: injected ECC error: bit %d of %v byte %d flipped", e.Bit, e.Buf, e.Offset)
}

// StuckPipeError reports a pipeline that stopped retiring; the run hung
// until the core was cancelled.
type StuckPipeError struct {
	// Pipe is the stuck pipeline.
	Pipe isa.Pipe
	// Instr is the instruction index that never retired.
	Instr int
}

func (e *StuckPipeError) Error() string {
	return fmt.Sprintf("faults: injected stuck pipe: %v wedged at instr %d", e.Pipe, e.Instr)
}

// IsInjected reports whether err stems from an injected fault, and its
// kind. A resilient executor treats exactly these (plus hangs and panics)
// as retryable; any other failure is a deterministic bug and fails fast.
func IsInjected(err error) (Kind, bool) {
	var te *TransientError
	var ee *ECCError
	var se *StuckPipeError
	switch {
	case errors.As(err, &te):
		return KindTransient, true
	case errors.As(err, &ee):
		return KindBitFlip, true
	case errors.As(err, &se):
		return KindStuckPipe, true
	}
	return KindNone, false
}
