package faults

import (
	"errors"
	"testing"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/obs"
)

// TestDecideDeterminism: the fault schedule is a pure function of the
// configuration — two injectors with the same seed agree on every
// (tile, attempt), and a different seed produces a different schedule.
func TestDecideDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3, MaxPerTile: 2}
	a := New(cfg, nil)
	b := New(cfg, nil)
	other := New(Config{Seed: 43, Rate: 0.3, MaxPerTile: 2}, nil)
	fired, differs := 0, false
	for n := 0; n < 16; n++ {
		for c1 := 0; c1 < 8; c1++ {
			for attempt := 1; attempt <= 2; attempt++ {
				tile := Tile{N: n, C1: c1}
				fa, fb := a.Decide(tile, attempt), b.Decide(tile, attempt)
				if fa != fb {
					t.Fatalf("tile %v attempt %d: %v vs %v from identical configs", tile, attempt, fa, fb)
				}
				if fa.Kind != KindNone {
					fired++
				}
				if fa != other.Decide(tile, attempt) {
					differs = true
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("rate 0.3 over 256 decisions injected nothing")
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestDecideMaxPerTile(t *testing.T) {
	// Rate 1: every eligible attempt faults; MaxPerTile bounds eligibility.
	inj := New(Config{Seed: 7, Rate: 1, MaxPerTile: 2}, nil)
	tile := Tile{N: 3, C1: 1}
	for attempt := 1; attempt <= 2; attempt++ {
		if f := inj.Decide(tile, attempt); f.Kind == KindNone {
			t.Fatalf("attempt %d: rate-1 decision did not fault", attempt)
		}
	}
	if f := inj.Decide(tile, 3); f.Kind != KindNone {
		t.Fatalf("attempt 3 faulted (%v) beyond MaxPerTile=2", f.Kind)
	}
}

func TestParseKinds(t *testing.T) {
	kinds, err := ParseKinds("transient, stuckpipe")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != KindTransient || kinds[1] != KindStuckPipe {
		t.Fatalf("got %v", kinds)
	}
	if _, err := ParseKinds("meteor"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// addProgram builds a two-pipe program (GM->UB copy, vector add, UB->GM
// copy) whose AutoSync form carries droppable set_flags.
func addProgram(t *testing.T, core *aicore.Core, n int) (*cce.Program, int) {
	t.Helper()
	gmIn := core.Mem.Space(isa.GM).MustAlloc(2 * n * fp16.Bytes)
	gmOut := core.Mem.Space(isa.GM).MustAlloc(n * fp16.Bytes)
	ubA := core.Mem.Space(isa.UB).MustAlloc(n * fp16.Bytes)
	ubB := core.Mem.Space(isa.UB).MustAlloc(n * fp16.Bytes)
	ubD := core.Mem.Space(isa.UB).MustAlloc(n * fp16.Bytes)
	p := cce.New("chaos-add")
	p.EmitCopy(isa.GM, gmIn, isa.UB, ubA, n)
	p.EmitCopy(isa.GM, gmIn+n*fp16.Bytes, isa.UB, ubB, n)
	p.EmitElementwise(isa.VAdd, isa.UB, ubD, ubA, ubB, n)
	p.EmitCopy(isa.UB, ubD, isa.GM, gmOut, n)
	return p, gmOut
}

func TestArmTransient(t *testing.T) {
	r := obs.NewRegistry()
	inj := New(Config{Seed: 1, Rate: 1}, r)
	core := aicore.New(buffer.Config{}, nil)
	p, _ := addProgram(t, core, 64)
	inj.Arm(core, Fault{Kind: KindTransient, r: 12345})
	_, err := core.Run(p)
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransientError", err)
	}
	if got := inj.Injected(KindTransient); got != 1 {
		t.Fatalf("faults_injected{transient} = %d, want 1", got)
	}
	// Disarmed core runs clean again.
	Disarm(core)
	core.Mem.ResetLocal()
	if _, err := core.Run(p); err != nil {
		t.Fatalf("post-disarm run: %v", err)
	}
}

func TestArmBitFlipCorruptsUB(t *testing.T) {
	inj := New(Config{Seed: 2, Rate: 1}, obs.NewRegistry())
	core := aicore.New(buffer.Config{}, nil)
	p, _ := addProgram(t, core, 64)
	inj.Arm(core, Fault{Kind: KindBitFlip, r: 99999})
	_, err := core.Run(p)
	var ee *ECCError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want ECCError", err)
	}
	mem := core.Mem.Mem(isa.UB)
	if ee.Offset < 0 || ee.Offset >= len(mem) {
		t.Fatalf("flip offset %d out of UB range %d", ee.Offset, len(mem))
	}
	if mem[ee.Offset]&(1<<ee.Bit) == 0 {
		// UB starts zeroed and the flip targets a bit the program may not
		// rewrite; the reported bit must really be visible in memory.
		t.Fatalf("UB byte %d bit %d not flipped", ee.Offset, ee.Bit)
	}
}

func TestArmStuckPipeHangsUntilCancel(t *testing.T) {
	inj := New(Config{Seed: 3, Rate: 1}, obs.NewRegistry())
	core := aicore.New(buffer.Config{}, nil)
	p, _ := addProgram(t, core, 64)
	cancel := make(chan struct{})
	core.Cancel = cancel
	inj.Arm(core, Fault{Kind: KindStuckPipe, r: 777})
	done := make(chan error, 1)
	go func() {
		_, err := core.Run(p)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stuck-pipe run returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case err := <-done:
		var se *StuckPipeError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want StuckPipeError", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled stuck-pipe run never returned")
	}
}

func TestArmDroppedFlagDeadlocks(t *testing.T) {
	inj := New(Config{Seed: 4, Rate: 1}, obs.NewRegistry())
	core := aicore.New(buffer.Config{}, nil)
	p, _ := addProgram(t, core, 64)
	cancel := make(chan struct{})
	core.Cancel = cancel
	inj.Arm(core, Fault{Kind: KindDroppedFlag, r: 5})
	if core.ReplayWith == nil {
		t.Fatal("DroppedFlag did not install ReplayWith")
	}
	done := make(chan error, 1)
	go func() {
		_, err := core.ReplayWith(p)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("dropped-flag run returned without cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel) // the watchdog reclaims the hung core
	var err error
	select {
	case err = <-done:
	case <-time.After(time.Second):
		t.Fatal("cancelled dropped-flag run never returned")
	}
	var dl *aicore.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if !dl.HasFlag {
		t.Fatalf("deadlock %v does not name the unsatisfied flag", dl)
	}
	if got := inj.Injected(KindDroppedFlag); got != 1 {
		t.Fatalf("faults_injected{droppedflag} = %d, want 1", got)
	}
}

func TestIsInjected(t *testing.T) {
	cases := []struct {
		err  error
		kind Kind
		ok   bool
	}{
		{&TransientError{Instr: 3}, KindTransient, true},
		{&ECCError{Buf: isa.UB}, KindBitFlip, true},
		{&StuckPipeError{Pipe: isa.PipeVector}, KindStuckPipe, true},
		{errors.New("compile error"), KindNone, false},
	}
	for _, c := range cases {
		kind, ok := IsInjected(c.err)
		if kind != c.kind || ok != c.ok {
			t.Errorf("IsInjected(%v) = %v, %v; want %v, %v", c.err, kind, ok, c.kind, c.ok)
		}
	}
}
