package aicore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
	"davinci/internal/tensor"
)

// Property: a row-banded Im2Col load produces exactly the fractals of the
// whole-tensor transform for its patch range, for arbitrary random layer
// configurations and fractal-aligned patch windows.
func TestQuickIm2ColRowBands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := isa.ConvParams{
			Ih: rng.Intn(20) + 6,
			Iw: rng.Intn(20) + 6,
			Kh: rng.Intn(3) + 1,
			Kw: rng.Intn(3) + 1,
			Sh: rng.Intn(3) + 1,
			Sw: rng.Intn(3) + 1,
		}
		if rng.Intn(2) == 0 {
			p.Pt = min(1, p.Kh-1)
			p.Pb, p.Pl, p.Pr = p.Pt, min(1, p.Kw-1), min(1, p.Kw-1)
		}
		if p.Validate() != nil {
			return true
		}
		in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
		in.FillRandom(rng, 8)
		spec := scu.Im2col(in, p)

		// Random fractal-aligned patch window.
		fracs := p.Fractals()
		f0 := rng.Intn(fracs)
		fb := rng.Intn(fracs-f0) + 1
		pa := f0 * isa.FractalPatches
		lo, hi := rowRange(p, pa, pa+fb*isa.FractalPatches)

		// Load only rows [lo, hi) into L1.
		core := New(buffer.Config{}, nil)
		rowB := p.Iw * tensor.C0 * fp16.Bytes
		band := tensor.New(1, 1, hi-lo, p.Iw, tensor.C0)
		copy(band.Data, in.Data[lo*rowB:hi*rowB])
		l1Addr, err := core.Mem.PlaceTensor(isa.L1, band)
		if err != nil {
			t.Log(err)
			return false
		}
		outBytes := p.Kh * p.Kw * fb * isa.FractalBytes
		ubAddr := core.Mem.Space(isa.UB).MustAlloc(outBytes)

		prog := cce.New("banded")
		prog.EmitIm2ColRange(l1Addr, isa.UB, ubAddr, p, 1, 0, pa, fb, lo, hi-lo)
		if _, err := core.Run(prog); err != nil {
			t.Logf("%+v band [%d,%d) patches %d+%d: %v", p, lo, hi, pa, fb*16, err)
			return false
		}
		got := core.Mem.ReadTensor(isa.UB, ubAddr, p.Kh, p.Kw, fb*isa.FractalPatches, tensor.C0)
		for xk := 0; xk < p.Kh; xk++ {
			for yk := 0; yk < p.Kw; yk++ {
				for pt := 0; pt < fb*isa.FractalPatches; pt++ {
					for c0 := 0; c0 < tensor.C0; c0++ {
						var want fp16.Float16
						if pa+pt < p.PaddedPatches() {
							want = spec.At(0, 0, xk, yk, pa+pt, c0)
						}
						if got.At(xk, yk, pt, c0) != want {
							t.Logf("%+v mismatch at (%d,%d,%d,%d)", p, xk, yk, pt, c0)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// rowRange mirrors the kernels' band computation (ops.patchRowRange).
func rowRange(p isa.ConvParams, pa, pb int) (lo, hi int) {
	_, ow := p.OutDims()
	if pb > p.Patches() {
		pb = p.Patches()
	}
	lo = (pa/ow)*p.Sh - p.Pt
	if lo < 0 {
		lo = 0
	}
	hi = ((pb-1)/ow)*p.Sh - p.Pt + p.Kh
	if hi > p.Ih {
		hi = p.Ih
	}
	return lo, hi
}

// Property: a row-banded Col2Im merge over a full patch set reproduces the
// whole-tensor col2im when the bands are stitched back together.
func TestQuickCol2ImRowBands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := isa.ConvParams{
			Ih: rng.Intn(14) + 8,
			Iw: rng.Intn(14) + 8,
			Kh: rng.Intn(2) + 2,
			Kw: rng.Intn(2) + 2,
			Sh: rng.Intn(2) + 1,
			Sw: rng.Intn(2) + 1,
		}
		if p.Validate() != nil {
			return true
		}
		cols := tensor.New(1, 1, p.Kh, p.Kw, p.PaddedPatches(), tensor.C0)
		for i := 0; i < cols.Len(); i++ {
			cols.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
		}
		want := scu.Col2im(cols, p, p.Ih, p.Iw)

		// Merge in two fractal bands with boundary-row accumulation.
		fracs := p.Fractals()
		split := rng.Intn(fracs) + 1
		if split >= fracs {
			split = fracs
		}
		out := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
		rowB := p.Iw * tensor.C0 * fp16.Bytes
		prevHi := 0
		for _, rangeFr := range [][2]int{{0, split}, {split, fracs}} {
			f0, f1 := rangeFr[0], rangeFr[1]
			if f0 >= f1 {
				continue
			}
			pa := f0 * isa.FractalPatches
			lo, hi := rowRange(p, pa, f1*isa.FractalPatches)
			core := New(buffer.Config{}, nil)
			// Source: the band's fractal slices, packed per (xk, yk).
			fb := f1 - f0
			src := tensor.New(p.Kh*p.Kw, fb*isa.FractalPatches, tensor.C0)
			for s := 0; s < p.Kh*p.Kw; s++ {
				for pt := 0; pt < fb*isa.FractalPatches; pt++ {
					for c0 := 0; c0 < tensor.C0; c0++ {
						src.Set(cols.At(0, 0, s/p.Kw, s%p.Kw, pa+pt, c0), s, pt, c0)
					}
				}
			}
			srcAddr, err := core.Mem.PlaceTensor(isa.UB, src)
			if err != nil {
				return false
			}
			dstAddr := core.Mem.Space(isa.UB).MustAlloc((hi - lo) * rowB)
			// Carry in partial sums from the previous band's overlap rows.
			overlap := prevHi - lo
			if overlap < 0 {
				overlap = 0
			}
			copy(core.Mem.Mem(isa.UB)[dstAddr:dstAddr+overlap*rowB], out.Data[lo*rowB:])
			core.Mem.ZeroRange(isa.UB, dstAddr+overlap*rowB, (hi-lo-overlap)*rowB)

			prog := cce.New("col2im-band")
			prog.EmitCol2ImRange(srcAddr, dstAddr, p, pa, fb, lo, hi-lo)
			if _, err := core.Run(prog); err != nil {
				t.Logf("%+v: %v", p, err)
				return false
			}
			copy(out.Data[lo*rowB:hi*rowB], core.Mem.Mem(isa.UB)[dstAddr:dstAddr+(hi-lo)*rowB])
			prevHi = hi
		}
		if tensor.MaxAbsDiff(out, want) != 0 {
			t.Logf("%+v split %d: stitched col2im diverges", p, split)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The SCU transpose must be an involution and match a plain Go transpose.
func TestTransposeInstr(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	core := New(buffer.Config{}, nil)
	src := tensor.New(3, isa.FractalPatches, isa.FractalC0) // 3 fractals
	src.FillRandom(rng, 4)
	l1Addr, err := core.Mem.PlaceTensor(isa.L1, src)
	if err != nil {
		t.Fatal(err)
	}
	dst := core.Mem.Space(isa.L0A).MustAlloc(3 * isa.FractalBytes)
	prog := cce.New("transpose")
	prog.Emit(&isa.TransposeInstr{SrcBuf: isa.L1, SrcAddr: l1Addr, DstBuf: isa.L0A, DstAddr: dst, Repeat: 3})
	if _, err := core.Run(prog); err != nil {
		t.Fatal(err)
	}
	got := core.Mem.ReadTensor(isa.L0A, dst, 3, isa.FractalPatches, isa.FractalC0)
	for f := 0; f < 3; f++ {
		for r := 0; r < 16; r++ {
			for c := 0; c < 16; c++ {
				if got.At(f, c, r) != src.At(f, r, c) {
					t.Fatalf("fractal %d (%d,%d) not transposed", f, r, c)
				}
			}
		}
	}
	// Validation rejects bad endpoints.
	bad := &isa.TransposeInstr{SrcBuf: isa.UB, DstBuf: isa.L0A, Repeat: 1}
	if err := bad.Validate(); err == nil {
		t.Error("transpose from UB accepted")
	}
	bad2 := &isa.TransposeInstr{SrcBuf: isa.L1, DstBuf: isa.UB, Repeat: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("transpose to UB accepted")
	}
}
