package aicore

import (
	"fmt"

	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
)

// RunExplicit executes prog under explicit synchronization semantics, the
// way real CCE C programs run: pipelines are ordered only by their own
// in-order issue, by pipe barriers, and by set_flag/wait_flag tokens — the
// implicit hazard scoreboard of Run is NOT consulted for timing. After
// scheduling, a race detector verifies that every data dependency in the
// program is ordered by the explicit schedule; a missing flag surfaces as
// a race error, exactly the bug class real CCE kernels suffer.
//
// Functional execution still happens in program order, which is valid for
// any race-free program.
func (c *Core) RunExplicit(prog *cce.Program) (*Stats, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if c.OnProgram != nil {
		c.OnProgram(prog)
	}
	if c.Strict {
		// Explicit semantics: cross-pipe ordering must come from flags
		// and barriers, so the full pass suite applies.
		if err := c.lintStrict(prog, lint.SyncExplicit); err != nil {
			return nil, err
		}
	}
	// Functional pass (program order).
	for idx, in := range prog.Instrs {
		if c.interrupted() {
			return nil, fmt.Errorf("aicore: %s instr %d: %w", prog.Name, idx, ErrInterrupted)
		}
		if c.OnInstr != nil {
			if err := c.OnInstr(idx, in); err != nil {
				return nil, fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
			}
		}
		if err := c.exec(in); err != nil {
			return nil, fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
		}
	}

	// Timing pass: event-driven over per-pipe queues.
	type item struct {
		idx int
		in  isa.Instr
	}
	type token struct {
		t      int64 // availability time
		setter int   // instruction index of the set_flag
	}
	var pipes [isa.NumPipes][]item
	for idx, in := range prog.Instrs {
		p := in.Pipe()
		pipes[p] = append(pipes[p], item{idx, in})
	}
	var heads [isa.NumPipes]int
	var pipeFree [isa.NumPipes]int64
	start := make([]int64, len(prog.Instrs))
	end := make([]int64, len(prog.Instrs))
	tokens := map[[3]int][]token{} // (src, dst, event) -> pending tokens
	completed := 0
	stats := &Stats{}
	var barrierFloor int64
	if c.Trace != nil {
		c.Trace.grow(len(prog.Instrs))
	}

	for completed < len(prog.Instrs) {
		progress := false
		for p := isa.Pipe(0); p < isa.NumPipes; p++ {
			for heads[p] < len(pipes[p]) {
				it := pipes[p][heads[p]]
				tr := newStallTracker()
				tr.propose(barrierFloor, StallBarrier, 0, -1)
				switch v := it.in.(type) {
				case *isa.WaitFlagInstr:
					key := [3]int{int(v.SrcPipe), int(v.DstPipe), v.Event}
					q := tokens[key]
					if len(q) == 0 {
						goto nextPipe // blocked on a token
					}
					tr.propose(q[0].t, StallFlagWait, 0, q[0].setter)
					tokens[key] = q[1:]
				case *isa.BarrierInstr:
					// A barrier waits for every earlier instruction.
					if completed < it.idx {
						goto nextPipe
					}
					for _, f := range pipeFree {
						tr.propose(f, StallBarrier, 0, -1)
					}
				}
				s := pipeFree[p]
				if tr.t > s {
					s = tr.t
				}
				e := s + it.in.Cycles(c.Cost)
				stall := tr.resolve(pipeFree[p])
				pipeFree[p] = e
				start[it.idx], end[it.idx] = s, e
				if c.Trace != nil {
					c.Trace.record(it.idx, it.in, s, e, stall)
				}
				if sf, ok := it.in.(*isa.SetFlagInstr); ok {
					key := [3]int{int(sf.SrcPipe), int(sf.DstPipe), sf.Event}
					tokens[key] = append(tokens[key], token{t: e, setter: it.idx})
				}
				if _, ok := it.in.(*isa.BarrierInstr); ok {
					barrierFloor = e
				}
				stats.PipeBusy[p] += it.in.Cycles(c.Cost)
				stats.PipeInstrs[p]++
				stats.Instrs++
				if cp, ok := it.in.(*isa.CopyInstr); ok {
					switch p {
					case isa.PipeMTE2:
						stats.BytesIn += int64(cp.Bytes())
					case isa.PipeMTE3:
						stats.BytesOut += int64(cp.Bytes())
					}
				}
				if e > stats.Cycles {
					stats.Cycles = e
				}
				completed++
				heads[p]++
				progress = true
			}
		nextPipe:
		}
		if !progress {
			dl := &DeadlockError{Program: prog.Name, Instr: -1}
			for p := isa.Pipe(0); p < isa.NumPipes; p++ {
				if heads[p] >= len(pipes[p]) {
					continue
				}
				it := pipes[p][heads[p]]
				if w, ok := it.in.(*isa.WaitFlagInstr); ok {
					dl.Pipe = p
					dl.Flag = [3]int{int(w.SrcPipe), int(w.DstPipe), w.Event}
					dl.HasFlag = true
					dl.Instr = it.idx
					break
				}
				if dl.Instr < 0 {
					// Fallback: a barrier blocked behind another pipe's
					// starved wait; still name a blocked pipe.
					dl.Pipe, dl.Instr = p, it.idx
				}
			}
			if c.HangOnDeadlock && c.Cancel != nil {
				// Hardware would spin on the wait forever: block until the
				// watchdog (or a run-wide abort) reclaims the core, then
				// surface the diagnosis.
				<-c.Cancel
			}
			return nil, dl
		}
	}

	// Race detection: every data dependency must be ordered by the
	// explicit schedule.
	if idx, prod, err := findRace(prog.Instrs, start, end); err != nil {
		return nil, fmt.Errorf("aicore: %s: data race between instr %d (%s) and instr %d (%s): %w",
			prog.Name, prod, prog.Instrs[prod], idx, prog.Instrs[idx], err)
	}
	return stats, nil
}

// DeadlockError reports that an explicitly synchronized program can make
// no progress: some pipe's next instruction is a wait_flag whose set_flag
// never arrives (e.g. because a fault dropped it). It names the blocked
// pipe and the unsatisfied flag so a watchdog trip is diagnosable instead
// of a silent hang.
type DeadlockError struct {
	// Program is the deadlocked program's name.
	Program string
	// Pipe is the pipeline blocked at the head of its queue.
	Pipe isa.Pipe
	// Flag is the (src pipe, dst pipe, event) triple of the unsatisfied
	// wait_flag; meaningful when HasFlag is true.
	Flag [3]int
	// HasFlag reports whether the blocked instruction is a wait_flag (a
	// barrier can also starve, transitively).
	HasFlag bool
	// Instr is the blocked instruction's index in the program.
	Instr int
}

func (e *DeadlockError) Error() string {
	if e.HasFlag {
		return fmt.Sprintf("aicore: %s deadlocked: pipe %v blocked at instr %d on wait_flag(%v->%v, ev%d) with no matching set_flag",
			e.Program, e.Pipe, e.Instr, isa.Pipe(e.Flag[0]), isa.Pipe(e.Flag[1]), e.Flag[2])
	}
	return fmt.Sprintf("aicore: %s deadlocked: pipe %v blocked at instr %d behind a starved wait_flag", e.Program, e.Pipe, e.Instr)
}

// findRace scans dependencies in program order and checks that the
// producer completed before the consumer started. Same-pipe pairs are
// ordered by in-order issue and skipped.
func findRace(instrs []isa.Instr, start, end []int64) (consumer, producer int, err error) {
	type access struct {
		idx    int
		pipe   isa.Pipe
		region isa.Region
	}
	var writes, reads []access
	for idx, in := range instrs {
		if _, ok := in.(*isa.BarrierInstr); ok {
			// Barriers order everything before them.
			writes, reads = nil, nil
			continue
		}
		pipe := in.Pipe()
		check := func(list []access, r isa.Region) (int, bool) {
			for k := len(list) - 1; k >= 0; k-- {
				a := list[k]
				if a.pipe != pipe && a.region.Overlaps(r) {
					if end[a.idx] > start[idx] {
						return a.idx, true
					}
				}
			}
			return 0, false
		}
		for _, r := range in.Reads() { // RAW
			if p, bad := check(writes, r); bad {
				return idx, p, fmt.Errorf("read of %v not ordered after write", r)
			}
		}
		for _, w := range in.Writes() { // WAW, WAR
			if p, bad := check(writes, w); bad {
				return idx, p, fmt.Errorf("write of %v not ordered after write", w)
			}
			if p, bad := check(reads, w); bad {
				return idx, p, fmt.Errorf("write of %v not ordered after read", w)
			}
		}
		for _, r := range in.Reads() {
			reads = append(reads, access{idx, pipe, r})
		}
		for _, w := range in.Writes() {
			writes = append(writes, access{idx, pipe, w})
		}
	}
	return 0, 0, nil
}
