package aicore

import (
	"errors"
	"testing"
	"time"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// TestRunInterrupted: a closed Cancel channel stops a run between
// instructions with a typed ErrInterrupted naming the program and index.
func TestRunInterrupted(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p, _, _ := buildChain(c)
	cancel := make(chan struct{})
	close(cancel)
	c.Cancel = cancel
	_, err := c.Run(p)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestOnInstrAborts: an OnInstr hook error aborts the run at exactly the
// chosen instruction, with the hook error preserved in the chain.
func TestOnInstrAborts(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p, _, _ := buildChain(c)
	sentinel := errors.New("injected")
	seen := -1
	c.OnInstr = func(idx int, in isa.Instr) error {
		if idx == 1 {
			seen = idx
			return sentinel
		}
		return nil
	}
	_, err := c.Run(p)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the hook's sentinel", err)
	}
	if seen != 1 {
		t.Fatalf("hook fired at %d, want 1", seen)
	}
}

// TestDeadlockErrorTyped: a starved wait_flag surfaces as *DeadlockError
// identifying the blocked pipe and the unsatisfied flag.
func TestDeadlockErrorTyped(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p := cce.New("starved")
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 3})
	_, err := c.RunExplicit(p)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !dl.HasFlag {
		t.Fatal("deadlock does not identify the wait_flag")
	}
	if dl.Pipe != isa.PipeVector || dl.Flag != [3]int{int(isa.PipeMTE2), int(isa.PipeVector), 3} {
		t.Fatalf("deadlock names pipe %v flag %v", dl.Pipe, dl.Flag)
	}
}

// TestHangOnDeadlock: with HangOnDeadlock set, a deadlocked program
// blocks (as spinning hardware would) until Cancel fires, then surfaces
// the same typed diagnosis.
func TestHangOnDeadlock(t *testing.T) {
	c := New(buffer.Config{}, nil)
	cancel := make(chan struct{})
	c.Cancel = cancel
	c.HangOnDeadlock = true
	p := cce.New("hang")
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	done := make(chan error, 1)
	go func() {
		_, err := c.RunExplicit(p)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case err := <-done:
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("err = %v, want *DeadlockError", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled hang never returned")
	}
}

// TestExecFlatInterrupted: the flattened replay path polls Cancel too, so
// memoized plan replays stay abortable.
func TestExecFlatInterrupted(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p, _, _ := buildChain(c)
	flat := Flatten(p)
	cancel := make(chan struct{})
	close(cancel)
	c.Cancel = cancel
	if err := c.ExecFlat(flat); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
