package aicore_test

import (
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// timingProg mixes hazards, flags and a barrier across four pipes so the
// static oracle has every scoreboard rule to reproduce.
func timingProg() *cce.Program {
	p := cce.New("timing")
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: 0, DstBuf: isa.UB, DstAddr: 0, NBurst: 4, BurstBytes: 256, SrcGap: 64})
	p.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 1})
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 1})
	p.Emit(&isa.VecInstr{Op: isa.VAdd, Dst: isa.Contig(isa.UB, 4096), Src0: isa.Contig(isa.UB, 0),
		Src1: isa.Contig(isa.UB, 256), Mask: isa.FullMask(), Repeat: 4})
	p.Emit(&isa.VecInstr{Op: isa.VMax, Dst: isa.Contig(isa.UB, 8192), Src0: isa.Contig(isa.UB, 4096),
		Src1: isa.Contig(isa.UB, 4096), Mask: isa.FullMask(), Repeat: 2})
	p.Emit(&isa.BarrierInstr{})
	p.Emit(&isa.CopyInstr{SrcBuf: isa.UB, SrcAddr: 8192, DstBuf: isa.GM, DstAddr: 8192, NBurst: 1, BurstBytes: 512})
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: 0, DstBuf: isa.UB, DstAddr: 0, NBurst: 1, BurstBytes: 1024})
	return p
}

// TestTimeMatchesRun pins the static cycle oracle to the simulator: Time
// must report exactly the makespan Run computes, with and without
// pipelining.
func TestTimeMatchesRun(t *testing.T) {
	for _, serialize := range []bool{false, true} {
		core := aicore.New(buffer.Config{}, nil)
		core.Serialize = serialize
		st, err := core.Run(timingProg())
		if err != nil {
			t.Fatalf("serialize=%v: %v", serialize, err)
		}
		if got := aicore.Time(timingProg(), nil, serialize); got != st.Cycles {
			t.Errorf("serialize=%v: Time = %d, Run = %d", serialize, got, st.Cycles)
		}
	}
}

// TestBoardIncrementalMatchesTime checks that placing instructions one by
// one on a Board reproduces the one-shot oracle, and that StartOf peeks
// without committing state.
func TestBoardIncrementalMatchesTime(t *testing.T) {
	prog := timingProg()
	b := aicore.NewBoard(nil)
	for idx, in := range prog.Instrs {
		peek := b.StartOf(in)
		again := b.StartOf(in)
		if peek != again {
			t.Fatalf("instr %d: StartOf not idempotent: %d then %d", idx, peek, again)
		}
		start, end := b.Place(in, idx)
		if start != peek {
			t.Errorf("instr %d: StartOf = %d but Place started at %d", idx, peek, start)
		}
		if end < start {
			t.Errorf("instr %d: end %d before start %d", idx, end, start)
		}
	}
	if want := aicore.Time(prog, nil, false); b.Cycles() != want {
		t.Errorf("Board cycles = %d, Time = %d", b.Cycles(), want)
	}
}
