package aicore

import (
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// board is the implicit-sync timing scoreboard extracted from schedule():
// per-pipe in-order issue, exact-region data hazards with bounded history,
// and barrier floors. schedule() drives it alongside functional execution;
// the static paths (Time, Board) drive it alone, so every start time they
// compute is identical to what Run/Replay would produce — including the
// conservative whole-buffer floors history folding introduces.
type board struct {
	cost         *isa.CostModel
	serialize    bool
	pipeFree     [isa.NumPipes]int64
	barrierFloor int64
	bufs         []bufTimes
	cycles       int64
}

func newBoard(cost *isa.CostModel, serialize bool) *board {
	return &board{cost: cost, serialize: serialize, bufs: make([]bufTimes, isa.NumBufs)}
}

// constraints proposes every start-time constraint the scoreboard imposes
// on in to tr: the standing barrier floor, the all-pipes join for barriers
// (and for every instruction under Serialize), and the RAW/WAW/WAR hazards
// against the recorded access history otherwise.
func (b *board) constraints(in isa.Instr, tr *stallTracker) {
	tr.propose(b.barrierFloor, StallBarrier, 0, -1)
	_, isBarrier := in.(*isa.BarrierInstr)
	if isBarrier || b.serialize {
		// Wait for everything issued so far (a barrier join; Serialize
		// imposes the same join before every instruction).
		tr.propose(b.cycles, StallBarrier, 0, -1)
		for _, f := range b.pipeFree {
			tr.propose(f, StallBarrier, 0, -1)
		}
		return
	}
	for _, r := range in.Reads() { // RAW
		bt := &b.bufs[r.Buf]
		t, p := bt.lastOverlap(bt.writes, r)
		tr.propose(t, StallRAW, r.Buf, p)
		tr.propose(bt.floorW, StallRAW, r.Buf, -1)
	}
	for _, w := range in.Writes() { // WAW and WAR
		bt := &b.bufs[w.Buf]
		t, p := bt.lastOverlap(bt.writes, w)
		tr.propose(t, StallWAW, w.Buf, p)
		t, p = bt.lastOverlap(bt.reads, w)
		tr.propose(t, StallWAR, w.Buf, p)
		tr.propose(bt.floorW, StallWAW, w.Buf, -1)
		tr.propose(bt.floorR, StallWAR, w.Buf, -1)
	}
}

// place issues in as instruction idx: it resolves the start time against
// the collected constraints, commits the access history, and returns the
// scheduled interval plus the attributed stall.
func (b *board) place(in isa.Instr, idx int, tr *stallTracker) (start, end int64, stall Stall) {
	pipe := in.Pipe()
	b.constraints(in, tr)
	start = b.pipeFree[pipe]
	if tr.t > start {
		start = tr.t
	}
	end = start + in.Cycles(b.cost)
	stall = tr.resolve(b.pipeFree[pipe])
	b.pipeFree[pipe] = end
	_, isBarrier := in.(*isa.BarrierInstr)
	if isBarrier {
		// Nothing may start before the barrier completes.
		b.barrierFloor = end
	} else {
		// Record accesses for later hazards.
		for _, r := range in.Reads() {
			bt := &b.bufs[r.Buf]
			bt.reads = append(bt.reads, interval{r.Off, r.End, end, idx})
			if len(bt.reads) > historyCap {
				bt.reads = foldOldest(bt.reads, &bt.floorR)
			}
		}
		for _, w := range in.Writes() {
			bt := &b.bufs[w.Buf]
			bt.writes = append(bt.writes, interval{w.Off, w.End, end, idx})
			if len(bt.writes) > historyCap {
				bt.writes = foldOldest(bt.writes, &bt.floorW)
			}
		}
	}
	if end > b.cycles {
		b.cycles = end
	}
	return start, end, stall
}

// startOf peeks at when in would start if issued next, without committing
// anything.
func (b *board) startOf(in isa.Instr) int64 {
	tr := newStallTracker()
	b.constraints(in, &tr)
	start := b.pipeFree[in.Pipe()]
	if tr.t > start {
		start = tr.t
	}
	return start
}

// Time statically computes the makespan Run/Replay would report for prog
// under the implicit-sync scoreboard — the exact same cycle count,
// including the bounded-history folding, because the timing model is
// data-independent. A nil cost model takes the calibrated default. The
// static optimizer (internal/opt) uses it as its cycle oracle.
func Time(prog *cce.Program, cost *isa.CostModel, serialize bool) int64 {
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	b := newBoard(cost, serialize)
	for idx, in := range prog.Instrs {
		tr := newStallTracker()
		b.place(in, idx, &tr)
	}
	return b.cycles
}

// Board is an incremental timing scoreboard for static schedulers: StartOf
// peeks at when an instruction would start if issued next, Place commits
// it. Issue instructions in the order the candidate program will list
// them and Cycles returns exactly the makespan Run/Replay would report
// for that program.
type Board struct{ b *board }

// NewBoard creates an empty scoreboard under the given cost model. A nil
// cost model takes the calibrated default.
func NewBoard(cost *isa.CostModel) *Board {
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	return &Board{b: newBoard(cost, false)}
}

// StartOf peeks at the start time in would get if issued next.
func (s *Board) StartOf(in isa.Instr) int64 { return s.b.startOf(in) }

// Place issues in as the next instruction and returns its scheduled
// interval. idx is the instruction's index in the candidate program (it
// only feeds stall attribution in traces; any monotone counter works).
func (s *Board) Place(in isa.Instr, idx int) (start, end int64) {
	tr := newStallTracker()
	start, end, _ = s.b.place(in, idx, &tr)
	return start, end
}

// Cycles returns the makespan of everything placed so far.
func (s *Board) Cycles() int64 { return s.b.cycles }
