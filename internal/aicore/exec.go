package aicore

import (
	"encoding/binary"
	"fmt"
	"math"

	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
)

// exec dispatches functional execution of one instruction.
func (c *Core) exec(in isa.Instr) error {
	switch v := in.(type) {
	case *isa.VecInstr:
		return c.execVec(v)
	case *isa.CopyInstr:
		return c.execCopy(v)
	case *isa.ConvCopyInstr:
		return c.execConvCopy(v)
	case *isa.Im2ColInstr:
		return c.execIm2Col(v)
	case *isa.Col2ImInstr:
		return c.execCol2Im(v)
	case *isa.MmadInstr:
		return c.execMmad(v)
	case *isa.TransposeInstr:
		return c.execTranspose(v)
	case *isa.ScalarInstr, *isa.BarrierInstr, *isa.SetFlagInstr, *isa.WaitFlagInstr:
		return nil
	default:
		return fmt.Errorf("unknown instruction type %T", in)
	}
}

func (c *Core) checkSpan(r isa.Region) error {
	mem := c.Mem.Mem(r.Buf)
	if r.Off < 0 || r.End > len(mem) {
		return fmt.Errorf("access [%d:%d) exceeds %v capacity %d", r.Off, r.End, r.Buf, len(mem))
	}
	return nil
}

func (c *Core) checkAll(in isa.Instr) error {
	for _, r := range in.Reads() {
		if err := c.checkSpan(r); err != nil {
			return err
		}
	}
	for _, w := range in.Writes() {
		if err := c.checkSpan(w); err != nil {
			return err
		}
	}
	return nil
}

// execVec executes a vector instruction lane by lane. Repeats run in
// order, and within a repeat lanes run in order, which gives the hardware's
// sequential-repeat semantics for reduction-style addressing (destination
// repeat stride 0).
func (c *Core) execVec(v *isa.VecInstr) error {
	if err := c.checkAll(v); err != nil {
		return err
	}
	dstMem := c.Mem.Mem(v.Dst.Buf)
	var s0Mem, s1Mem []byte
	if v.Op.IsUnary() || v.Op.IsBinary() {
		s0Mem = c.Mem.Mem(v.Src0.Buf)
	}
	if v.Op.IsBinary() {
		s1Mem = c.Mem.Mem(v.Src1.Buf)
	}
	for r := 0; r < v.Repeat; r++ {
		for b := 0; b < isa.BlocksPerRepeat; b++ {
			dBase := v.Dst.BlockAddr(r, b)
			var s0Base, s1Base int
			if s0Mem != nil {
				s0Base = v.Src0.BlockAddr(r, b)
			}
			if s1Mem != nil {
				s1Base = v.Src1.BlockAddr(r, b)
			}
			for e := 0; e < isa.ElemsPerBlock; e++ {
				lane := b*isa.ElemsPerBlock + e
				if !v.Mask.Bit(lane) {
					continue
				}
				var out fp16.Float16
				switch v.Op {
				case isa.VDup:
					out = v.Scalar
				case isa.VCopy:
					out = fp16.Load(s0Mem, s0Base+e*fp16.Bytes)
				case isa.VAdds:
					out = fp16.Add(fp16.Load(s0Mem, s0Base+e*fp16.Bytes), v.Scalar)
				case isa.VMuls:
					out = fp16.Mul(fp16.Load(s0Mem, s0Base+e*fp16.Bytes), v.Scalar)
				default:
					a := fp16.Load(s0Mem, s0Base+e*fp16.Bytes)
					bb := fp16.Load(s1Mem, s1Base+e*fp16.Bytes)
					switch v.Op {
					case isa.VAdd:
						out = fp16.Add(a, bb)
					case isa.VSub:
						out = fp16.Sub(a, bb)
					case isa.VMul:
						out = fp16.Mul(a, bb)
					case isa.VMax:
						out = fp16.Max(a, bb)
					case isa.VMin:
						out = fp16.Min(a, bb)
					case isa.VCmpEq:
						if fp16.Equal(a, bb) {
							out = fp16.One
						} else {
							out = fp16.Zero
						}
					default:
						return fmt.Errorf("unknown vector op %v", v.Op)
					}
				}
				fp16.Store(dstMem, dBase+e*fp16.Bytes, out)
			}
		}
	}
	return nil
}

func (c *Core) execCopy(m *isa.CopyInstr) error {
	if err := c.checkAll(m); err != nil {
		return err
	}
	src := c.Mem.Mem(m.SrcBuf)
	dst := c.Mem.Mem(m.DstBuf)
	sOff, dOff := m.SrcAddr, m.DstAddr
	for b := 0; b < m.NBurst; b++ {
		copy(dst[dOff:dOff+m.BurstBytes], src[sOff:sOff+m.BurstBytes])
		sOff += m.BurstBytes + m.SrcGap
		dOff += m.BurstBytes + m.DstGap
	}
	return nil
}

func (c *Core) execConvCopy(m *isa.ConvCopyInstr) error {
	if err := c.checkAll(m); err != nil {
		return err
	}
	src := c.Mem.Mem(isa.L0C)
	dst := c.Mem.Mem(isa.UB)
	for i := 0; i < m.Elems; i++ {
		f := math.Float32frombits(binary.LittleEndian.Uint32(src[m.SrcAddr+i*4:]))
		fp16.Store(dst, m.DstAddr+i*fp16.Bytes, fp16.FromFloat32(f))
	}
	return nil
}

// execIm2Col performs the SCU load transform: one fractal per repeat, with
// the positional parameters advancing according to the repeat mode
// (paper §III-C).
func (c *Core) execIm2Col(im *isa.Im2ColInstr) error {
	if err := c.checkAll(im); err != nil {
		return err
	}
	src := c.Mem.Mem(im.SrcBuf)
	dst := c.Mem.Mem(im.DstBuf)
	patches := im.P.Patches()
	rows := im.EffRows()
	c1, xk, yk, patch0 := im.C1Idx, im.Xk, im.Yk, im.Patch0

	for f := 0; f < im.Repeat; f++ {
		fracBase := im.DstAddr + f*isa.FractalBytes
		for row := 0; row < isa.FractalPatches; row++ {
			rowAddr := fracBase + row*isa.FractalC0*fp16.Bytes
			patch := patch0 + row
			if patch >= patches {
				zero16(dst, rowAddr)
				continue
			}
			h, w, pad := scu.SourceCoord(im.P, patch, xk, yk)
			if pad {
				zero16(dst, rowAddr)
				continue
			}
			if h < im.RowBase || h >= im.RowBase+rows {
				return fmt.Errorf("im2col patch %d row %d outside band [%d,%d)",
					patch, h, im.RowBase, im.RowBase+rows)
			}
			srcOff := im.SrcAddr + ((c1*rows+h-im.RowBase)*im.P.Iw+w)*isa.FractalC0*fp16.Bytes
			copy(dst[rowAddr:rowAddr+isa.FractalC0*fp16.Bytes], src[srcOff:srcOff+isa.FractalC0*fp16.Bytes])
		}
		// Advance positional parameters for the next automatic reissue.
		if im.RepeatMode == isa.Im2ColRepeatPatches {
			patch0 += isa.FractalPatches
			if patch0 >= im.P.PaddedPatches() {
				patch0 = 0
				c1, xk, yk = scu.KernelStep(im.P, c1, xk, yk)
			}
		} else {
			c1, xk, yk = scu.KernelStep(im.P, c1, xk, yk)
		}
		if c1 >= im.C1Len && f != im.Repeat-1 {
			return fmt.Errorf("im2col repeat walked past c1 extent %d", im.C1Len)
		}
	}
	return nil
}

// execCol2Im performs the vector-unit merge: per fractal, load the
// corresponding output positions, add, store back (paper Fig. 6). The tail
// rows of the last fractal and padding positions are discarded.
func (c *Core) execCol2Im(ci *isa.Col2ImInstr) error {
	if err := c.checkAll(ci); err != nil {
		return err
	}
	src := c.Mem.Mem(ci.SrcBuf)
	dst := c.Mem.Mem(ci.DstBuf)
	patches := ci.P.Patches()
	patch0 := ci.Patch0
	rows := ci.EffRows()

	for f := 0; f < ci.Repeat; f++ {
		fracBase := ci.SrcAddr + f*isa.FractalBytes
		for row := 0; row < isa.FractalPatches; row++ {
			patch := patch0 + row
			if patch >= patches {
				continue
			}
			h, w, pad := scu.SourceCoord(ci.P, patch, ci.Xk, ci.Yk)
			if pad {
				continue
			}
			if h < ci.RowBase || h >= ci.RowBase+rows {
				return fmt.Errorf("col2im patch %d row %d outside band [%d,%d)",
					patch, h, ci.RowBase, ci.RowBase+rows)
			}
			rowAddr := fracBase + row*isa.FractalC0*fp16.Bytes
			dstOff := ci.DstAddr + ((ci.C1Idx*rows+h-ci.RowBase)*ci.P.Iw+w)*isa.FractalC0*fp16.Bytes
			for e := 0; e < isa.FractalC0; e++ {
				sum := fp16.Add(fp16.Load(dst, dstOff+e*fp16.Bytes), fp16.Load(src, rowAddr+e*fp16.Bytes))
				fp16.Store(dst, dstOff+e*fp16.Bytes, sum)
			}
		}
		patch0 += isa.FractalPatches
	}
	return nil
}

// execMmad multiplies fractal matrices with fp32 accumulation in L0C.
// Fractal (i, j) of an (R x S)-fractal matrix sits at base + (i*S+j)*512;
// element (r, c) of a fractal is row-major.
func (c *Core) execMmad(mm *isa.MmadInstr) error {
	if err := c.checkAll(mm); err != nil {
		return err
	}
	a := c.Mem.Mem(isa.L0A)
	b := c.Mem.Mem(isa.L0B)
	cc := c.Mem.Mem(isa.L0C)
	const fp32Bytes = 4
	fracElems := isa.FractalPatches * isa.FractalC0

	for m := 0; m < mm.M; m++ {
		for n := 0; n < mm.N; n++ {
			cBase := mm.CAddr + (m*mm.N+n)*fracElems*fp32Bytes
			for r := 0; r < isa.FractalPatches; r++ {
				for col := 0; col < isa.FractalC0; col++ {
					cOff := cBase + (r*isa.FractalC0+col)*fp32Bytes
					var acc float32
					if mm.Accumulate {
						acc = math.Float32frombits(binary.LittleEndian.Uint32(cc[cOff:]))
					}
					for k := 0; k < mm.K; k++ {
						aBase := mm.AAddr + (m*mm.K+k)*isa.FractalBytes
						bBase := mm.BAddr + (k*mm.N+n)*isa.FractalBytes
						for j := 0; j < isa.FractalC0; j++ {
							av := fp16.ToFloat32(fp16.Load(a, aBase+(r*isa.FractalC0+j)*fp16.Bytes))
							bv := fp16.ToFloat32(fp16.Load(b, bBase+(j*isa.FractalC0+col)*fp16.Bytes))
							acc += av * bv
						}
					}
					binary.LittleEndian.PutUint32(cc[cOff:], math.Float32bits(acc))
				}
			}
		}
	}
	return nil
}

func zero16(b []byte, off int) {
	for i := 0; i < isa.FractalC0*fp16.Bytes; i++ {
		b[off+i] = 0
	}
}

// execTranspose transposes 16x16 Float16 tiles between buffers.
func (c *Core) execTranspose(tr *isa.TransposeInstr) error {
	if err := c.checkAll(tr); err != nil {
		return err
	}
	src := c.Mem.Mem(tr.SrcBuf)
	dst := c.Mem.Mem(tr.DstBuf)
	stride := tr.EffDstStride()
	for f := 0; f < tr.Repeat; f++ {
		sBase := tr.SrcAddr + f*isa.FractalBytes
		dBase := tr.DstAddr + f*stride
		for r := 0; r < isa.FractalPatches; r++ {
			for col := 0; col < isa.FractalC0; col++ {
				v := fp16.Load(src, sBase+(r*isa.FractalC0+col)*fp16.Bytes)
				fp16.Store(dst, dBase+(col*isa.FractalC0+r)*fp16.Bytes, v)
			}
		}
	}
	return nil
}
