package aicore

import (
	"fmt"

	"davinci/internal/isa"
)

// StallCause classifies why a scheduled instruction could not issue the
// moment its pipeline became free — the software counterpart of the
// per-unit stall counters the paper reads on the Ascend 910 (§VI). Every
// cycle of the makespan is either busy, attributed to exactly one of these
// causes, or idle (no instruction pending on the pipe), which is the
// accounting identity internal/obs asserts.
type StallCause uint8

const (
	// StallNone: the instruction issued as soon as it arrived.
	StallNone StallCause = iota
	// StallPipeBusy: the instruction waited only for its own pipeline's
	// previous instruction. That wait is the predecessor's busy time, so a
	// pipe-busy stall contributes zero gap cycles by construction.
	StallPipeBusy
	// StallRAW: a read had to wait for the last overlapping write of a
	// buffer region (true dependence). Buf and Producer identify the
	// blocking buffer and the producing instruction.
	StallRAW
	// StallWAR: a write had to wait for the last overlapping read.
	StallWAR
	// StallWAW: a write had to wait for the last overlapping write.
	StallWAW
	// StallFlagWait: a wait_flag blocked until its set_flag token became
	// available; Producer is the setter's instruction index.
	StallFlagWait
	// StallBarrier: the instruction waited on a pipe barrier joining all
	// pipelines (or, under Core.Serialize, on everything issued so far,
	// which has the same join semantics).
	StallBarrier
	// NumStallCauses sizes per-cause accumulation arrays.
	NumStallCauses
)

var stallNames = [...]string{"none", "pipe-busy", "raw", "war", "waw", "flag-wait", "barrier"}

func (c StallCause) String() string {
	if int(c) >= len(stallNames) {
		return fmt.Sprintf("StallCause(%d)", int(c))
	}
	return stallNames[c]
}

// IsHazard reports whether the cause is a data hazard (Buf is meaningful).
func (c StallCause) IsHazard() bool { return c == StallRAW || c == StallWAR || c == StallWAW }

// Stall records the binding constraint that delayed one instruction.
type Stall struct {
	// Cause is the constraint that determined the instruction's ready
	// time. When several constraints resolve at the same cycle the first
	// one proposed wins (deterministic for a deterministic scheduler).
	Cause StallCause
	// Cycles is the idle gap this instruction left on its own pipeline:
	// start − (previous completion on the pipe). Zero when the pipe itself
	// was the binding constraint. Summed per pipe, these gaps plus busy
	// time plus trailing idle equal the makespan exactly.
	Cycles int64
	// Buf is the buffer whose region blocked a hazard stall; meaningful
	// only when Cause.IsHazard().
	Buf isa.BufID
	// Producer is the instruction index of the blocking access (hazards)
	// or the token setter (flag waits); −1 when unknown — a barrier, or a
	// hazard against the folded history floor (see bufTimes).
	Producer int
}

func (s Stall) String() string {
	switch {
	case s.Cause.IsHazard() && s.Producer >= 0:
		return fmt.Sprintf("%s %v by #%d (%d cyc)", s.Cause, s.Buf, s.Producer, s.Cycles)
	case s.Cause.IsHazard():
		return fmt.Sprintf("%s %v (%d cyc)", s.Cause, s.Buf, s.Cycles)
	case s.Cause == StallFlagWait && s.Producer >= 0:
		return fmt.Sprintf("%s set by #%d (%d cyc)", s.Cause, s.Producer, s.Cycles)
	default:
		return fmt.Sprintf("%s (%d cyc)", s.Cause, s.Cycles)
	}
}

// stallTracker accumulates ready-time constraints during scheduling and
// remembers the binding (latest) one. Strictly later constraints win, so
// ties keep the first proposal and the attribution is deterministic.
type stallTracker struct {
	t        int64
	cause    StallCause
	buf      isa.BufID
	producer int
}

func newStallTracker() stallTracker { return stallTracker{producer: -1} }

func (s *stallTracker) propose(t int64, cause StallCause, buf isa.BufID, producer int) {
	if t > s.t {
		s.t, s.cause, s.buf, s.producer = t, cause, buf, producer
	}
}

// resolve closes the tracker against the pipe's own availability: if the
// tracked constraint lands after pipeFree the gap is attributed to it,
// otherwise the pipe itself was the gate (pipe-busy, zero gap).
func (s *stallTracker) resolve(pipeFree int64) Stall {
	if s.t <= pipeFree {
		if pipeFree > 0 {
			return Stall{Cause: StallPipeBusy, Producer: -1}
		}
		return Stall{Cause: StallNone, Producer: -1}
	}
	return Stall{Cause: s.cause, Cycles: s.t - pipeFree, Buf: s.buf, Producer: s.producer}
}
