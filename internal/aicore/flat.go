package aicore

import (
	"encoding/binary"
	"fmt"
	"math"

	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
)

// flatKind selects the primitive a flatOp performs.
type flatKind uint8

const (
	// fInstr falls back to generic execution of the original instruction.
	fInstr flatKind = iota
	// fMove copies n bytes (memmove semantics, like the burst copies it
	// replaces; only emitted when that matches the instruction order).
	fMove
	// fZero clears n bytes.
	fZero
	// fVec applies an element-wise vector op to n contiguous lanes.
	fVec
	// fVecMasked applies a vector op to one 16-lane block under a mask.
	fVecMasked
	// fAcc accumulates dst += src over n contiguous lanes (Col2Im merge).
	fAcc
	// fCvt converts n float32 elements to Float16 (L0C -> UB move).
	fCvt
)

// flatOp is one primitive data operation of a flattened program. Byte
// offsets are resolved; n counts lanes for fVec/fVecMasked/fAcc/fCvt and
// bytes for fMove/fZero.
type flatOp struct {
	kind   flatKind
	op     isa.VecOp
	dBuf   isa.BufID
	sBuf   isa.BufID
	s1Buf  isa.BufID
	dst    int
	src    int
	src1   int
	n      int
	scalar fp16.Float16
	msk16  uint16 // fVecMasked: the block's 16 mask bits
	idx    int    // originating instruction index, for error context
	instr  isa.Instr
}

// FlatProgram is a pre-flattened functional execution trace of a program:
// instruction decode, lane masking, repeat/block address arithmetic and the
// SCU's positional walk are resolved once into a linear list of primitive
// data operations, with adjacent operations coalesced whenever doing so
// preserves the exact elementary load/op/store order. Replaying the trace
// is bit-identical to interpreting the program instruction by instruction,
// but amortizes all per-lane bookkeeping — which is what makes cached plan
// replay cheap. Flattening never affects timing: cycle counts come from the
// scheduled (interpretive) pass and are memoized separately.
type FlatProgram struct {
	prog *cce.Program
	ops  []flatOp
}

// Flatten builds the functional trace of prog. It depends only on the
// instruction stream, so one FlatProgram may be replayed on any core whose
// buffers fit the program's footprint.
func Flatten(prog *cce.Program) *FlatProgram {
	fp := &FlatProgram{prog: prog}
	for idx, in := range prog.Instrs {
		switch v := in.(type) {
		case *isa.VecInstr:
			fp.flattenVec(idx, v)
		case *isa.CopyInstr:
			fp.flattenCopy(idx, v)
		case *isa.ConvCopyInstr:
			fp.ops = append(fp.ops, flatOp{
				kind: fCvt, dBuf: isa.UB, sBuf: isa.L0C,
				dst: v.DstAddr, src: v.SrcAddr, n: v.Elems, idx: idx,
			})
		case *isa.Im2ColInstr:
			fp.flattenIm2Col(idx, v)
		case *isa.Col2ImInstr:
			fp.flattenCol2Im(idx, v)
		case *isa.ScalarInstr, *isa.BarrierInstr, *isa.SetFlagInstr, *isa.WaitFlagInstr:
			// Functional no-ops: synchronization shapes the schedule, not
			// the data, and the schedule is memoized elsewhere.
		default:
			fp.fallback(idx, in)
		}
	}
	return fp
}

func (fp *FlatProgram) fallback(idx int, in isa.Instr) {
	fp.ops = append(fp.ops, flatOp{kind: fInstr, idx: idx, instr: in})
}

// maskBlock extracts the 16 mask bits covering block b's lanes.
func maskBlock(m isa.Mask, b int) uint16 {
	return uint16(m[b>>2] >> uint((b&3)*16))
}

// flattenVec expands a vector instruction block by block, in repeat order.
// Fully-masked blocks become fVec ops and merge with a contiguous
// predecessor: a merged tight loop executes the identical sequence of
// elementary load/op/store steps, so coalescing is always safe even for
// reduction-style (overlapping or in-place) addressing. Partially masked
// blocks stay per-block; fully disabled blocks are dropped.
func (fp *FlatProgram) flattenVec(idx int, v *isa.VecInstr) {
	unary, binary := v.Op.IsUnary(), v.Op.IsBinary()
	for r := 0; r < v.Repeat; r++ {
		for b := 0; b < isa.BlocksPerRepeat; b++ {
			sub := maskBlock(v.Mask, b)
			if sub == 0 {
				continue
			}
			op := flatOp{
				kind: fVec, op: v.Op,
				dBuf: v.Dst.Buf, dst: v.Dst.BlockAddr(r, b),
				n: isa.ElemsPerBlock, scalar: v.Scalar, idx: idx,
			}
			if unary || binary {
				op.sBuf = v.Src0.Buf
				op.src = v.Src0.BlockAddr(r, b)
			}
			if binary {
				op.s1Buf = v.Src1.Buf
				op.src1 = v.Src1.BlockAddr(r, b)
			}
			if sub != 0xffff {
				op.kind = fVecMasked
				op.msk16 = sub
				fp.ops = append(fp.ops, op)
				continue
			}
			if ln := len(fp.ops); ln > 0 {
				prev := &fp.ops[ln-1]
				if prev.kind == fVec && prev.op == v.Op && prev.scalar == v.Scalar &&
					prev.dBuf == op.dBuf && prev.dst+prev.n*fp16.Bytes == op.dst &&
					(!(unary || binary) || (prev.sBuf == op.sBuf && prev.src+prev.n*fp16.Bytes == op.src)) &&
					(!binary || (prev.s1Buf == op.s1Buf && prev.src1+prev.n*fp16.Bytes == op.src1)) {
					prev.n += isa.ElemsPerBlock
					continue
				}
			}
			fp.ops = append(fp.ops, op)
		}
	}
}

// appendMove emits an n-byte copy, merging with a contiguous predecessor
// only while the merged source and destination ranges stay disjoint — a
// larger memmove must not observe bytes an earlier burst wrote.
func (fp *FlatProgram) appendMove(idx int, dBuf, sBuf isa.BufID, dst, src, n int) {
	if ln := len(fp.ops); ln > 0 {
		prev := &fp.ops[ln-1]
		if prev.kind == fMove && prev.dBuf == dBuf && prev.sBuf == sBuf &&
			prev.dst+prev.n == dst && prev.src+prev.n == src {
			mn := prev.n + n
			if dBuf != sBuf || prev.dst+mn <= prev.src || prev.src+mn <= prev.dst {
				prev.n = mn
				return
			}
		}
	}
	fp.ops = append(fp.ops, flatOp{kind: fMove, dBuf: dBuf, sBuf: sBuf, dst: dst, src: src, n: n, idx: idx})
}

func (fp *FlatProgram) appendZero(idx int, dBuf isa.BufID, dst, n int) {
	if ln := len(fp.ops); ln > 0 {
		prev := &fp.ops[ln-1]
		if prev.kind == fZero && prev.dBuf == dBuf && prev.dst+prev.n == dst {
			prev.n += n
			return
		}
	}
	fp.ops = append(fp.ops, flatOp{kind: fZero, dBuf: dBuf, dst: dst, n: n, idx: idx})
}

func (fp *FlatProgram) flattenCopy(idx int, m *isa.CopyInstr) {
	sOff, dOff := m.SrcAddr, m.DstAddr
	for b := 0; b < m.NBurst; b++ {
		fp.appendMove(idx, m.DstBuf, m.SrcBuf, dOff, sOff, m.BurstBytes)
		sOff += m.BurstBytes + m.SrcGap
		dOff += m.BurstBytes + m.DstGap
	}
}

// flattenIm2Col resolves the SCU's positional walk into plain 32-byte row
// moves and pad zeroes. Any condition the interpreter would reject at run
// time falls back to the original instruction so the error surfaces
// identically.
func (fp *FlatProgram) flattenIm2Col(idx int, im *isa.Im2ColInstr) {
	start := len(fp.ops)
	patches := im.P.Patches()
	rows := im.EffRows()
	c1, xk, yk, patch0 := im.C1Idx, im.Xk, im.Yk, im.Patch0
	const rowBytes = isa.FractalC0 * fp16.Bytes

	for f := 0; f < im.Repeat; f++ {
		fracBase := im.DstAddr + f*isa.FractalBytes
		for row := 0; row < isa.FractalPatches; row++ {
			rowAddr := fracBase + row*rowBytes
			patch := patch0 + row
			if patch >= patches {
				fp.appendZero(idx, im.DstBuf, rowAddr, rowBytes)
				continue
			}
			h, w, pad := scu.SourceCoord(im.P, patch, xk, yk)
			if pad {
				fp.appendZero(idx, im.DstBuf, rowAddr, rowBytes)
				continue
			}
			if h < im.RowBase || h >= im.RowBase+rows {
				fp.ops = fp.ops[:start]
				fp.fallback(idx, im)
				return
			}
			srcOff := im.SrcAddr + ((c1*rows+h-im.RowBase)*im.P.Iw+w)*rowBytes
			fp.appendMove(idx, im.DstBuf, im.SrcBuf, rowAddr, srcOff, rowBytes)
		}
		if im.RepeatMode == isa.Im2ColRepeatPatches {
			patch0 += isa.FractalPatches
			if patch0 >= im.P.PaddedPatches() {
				patch0 = 0
				c1, xk, yk = scu.KernelStep(im.P, c1, xk, yk)
			}
		} else {
			c1, xk, yk = scu.KernelStep(im.P, c1, xk, yk)
		}
		if c1 >= im.C1Len && f != im.Repeat-1 {
			fp.ops = fp.ops[:start]
			fp.fallback(idx, im)
			return
		}
	}
}

// appendAcc emits a 16-lane accumulate, merging contiguous rows; a merged
// loop runs the identical read-add-write sequence, so merging is
// unconditionally order-preserving.
func (fp *FlatProgram) appendAcc(idx int, dBuf, sBuf isa.BufID, dst, src int) {
	if ln := len(fp.ops); ln > 0 {
		prev := &fp.ops[ln-1]
		if prev.kind == fAcc && prev.dBuf == dBuf && prev.sBuf == sBuf &&
			prev.dst+prev.n*fp16.Bytes == dst && prev.src+prev.n*fp16.Bytes == src {
			prev.n += isa.FractalC0
			return
		}
	}
	fp.ops = append(fp.ops, flatOp{kind: fAcc, dBuf: dBuf, sBuf: sBuf, dst: dst, src: src, n: isa.FractalC0, idx: idx})
}

func (fp *FlatProgram) flattenCol2Im(idx int, ci *isa.Col2ImInstr) {
	start := len(fp.ops)
	patches := ci.P.Patches()
	patch0 := ci.Patch0
	rows := ci.EffRows()
	const rowBytes = isa.FractalC0 * fp16.Bytes

	for f := 0; f < ci.Repeat; f++ {
		fracBase := ci.SrcAddr + f*isa.FractalBytes
		for row := 0; row < isa.FractalPatches; row++ {
			patch := patch0 + row
			if patch >= patches {
				continue
			}
			h, w, pad := scu.SourceCoord(ci.P, patch, ci.Xk, ci.Yk)
			if pad {
				continue
			}
			if h < ci.RowBase || h >= ci.RowBase+rows {
				fp.ops = fp.ops[:start]
				fp.fallback(idx, ci)
				return
			}
			rowAddr := fracBase + row*rowBytes
			dstOff := ci.DstAddr + ((ci.C1Idx*rows+h-ci.RowBase)*ci.P.Iw+w)*rowBytes
			fp.appendAcc(idx, ci.DstBuf, ci.SrcBuf, dstOff, rowAddr)
		}
		patch0 += isa.FractalPatches
	}
}

// ExecFlat functionally executes a flattened trace, in trace (= program)
// order. Like ExecOnly it performs no scheduling and records no timing;
// buffer contents afterwards are bit-identical to Run on the original
// program.
func (c *Core) ExecFlat(fp *FlatProgram) error {
	if c.OnProgram != nil {
		c.OnProgram(fp.prog)
	}
	for i := range fp.ops {
		op := &fp.ops[i]
		if c.interrupted() {
			return fmt.Errorf("aicore: %s instr %d: %w", fp.prog.Name, op.idx, ErrInterrupted)
		}
		if err := c.execFlat(op); err != nil {
			return fmt.Errorf("aicore: %s instr %d (%s): %w", fp.prog.Name, op.idx, fp.prog.Instrs[op.idx], err)
		}
	}
	return nil
}

func flatBounds(off, n, size int) error {
	if off < 0 || off+n > size {
		return fmt.Errorf("access [%d:%d) exceeds capacity %d", off, off+n, size)
	}
	return nil
}

func (c *Core) execFlat(op *flatOp) error {
	switch op.kind {
	case fInstr:
		return c.exec(op.instr)
	case fMove:
		dst := c.Mem.Mem(op.dBuf)
		src := c.Mem.Mem(op.sBuf)
		if err := flatBounds(op.dst, op.n, len(dst)); err != nil {
			return err
		}
		if err := flatBounds(op.src, op.n, len(src)); err != nil {
			return err
		}
		copy(dst[op.dst:op.dst+op.n], src[op.src:op.src+op.n])
	case fZero:
		dst := c.Mem.Mem(op.dBuf)
		if err := flatBounds(op.dst, op.n, len(dst)); err != nil {
			return err
		}
		clear(dst[op.dst : op.dst+op.n])
	case fCvt:
		src := c.Mem.Mem(op.sBuf)
		dst := c.Mem.Mem(op.dBuf)
		if err := flatBounds(op.src, op.n*4, len(src)); err != nil {
			return err
		}
		if err := flatBounds(op.dst, op.n*fp16.Bytes, len(dst)); err != nil {
			return err
		}
		for i := 0; i < op.n; i++ {
			f := math.Float32frombits(binary.LittleEndian.Uint32(src[op.src+i*4:]))
			fp16.Store(dst, op.dst+i*fp16.Bytes, fp16.FromFloat32(f))
		}
	case fAcc:
		dst := c.Mem.Mem(op.dBuf)
		src := c.Mem.Mem(op.sBuf)
		nb := op.n * fp16.Bytes
		if err := flatBounds(op.dst, nb, len(dst)); err != nil {
			return err
		}
		if err := flatBounds(op.src, nb, len(src)); err != nil {
			return err
		}
		d := dst[op.dst : op.dst+nb]
		fp16.AddSlice(d, d, src[op.src:op.src+nb])
	case fVec:
		return c.execFlatVec(op)
	case fVecMasked:
		return c.execFlatVecMasked(op)
	}
	return nil
}

// execFlatVec runs one coalesced full-mask vector span with a single op
// dispatch and a tight per-lane loop in original lane order.
func (c *Core) execFlatVec(op *flatOp) error {
	nb := op.n * fp16.Bytes
	d := c.Mem.Mem(op.dBuf)
	if err := flatBounds(op.dst, nb, len(d)); err != nil {
		return err
	}
	dst := d[op.dst : op.dst+nb]
	var s0, s1 []byte
	if op.op.IsUnary() || op.op.IsBinary() {
		m := c.Mem.Mem(op.sBuf)
		if err := flatBounds(op.src, nb, len(m)); err != nil {
			return err
		}
		s0 = m[op.src : op.src+nb]
	}
	if op.op.IsBinary() {
		m := c.Mem.Mem(op.s1Buf)
		if err := flatBounds(op.src1, nb, len(m)); err != nil {
			return err
		}
		s1 = m[op.src1 : op.src1+nb]
	}
	switch op.op {
	case isa.VDup:
		fp16.DupSlice(dst, op.scalar)
	case isa.VCopy:
		// The subslices alias the same backing arrays, so an overlapping
		// in-buffer copy must keep the per-lane forward order.
		if op.dBuf != op.sBuf || op.dst+nb <= op.src || op.src+nb <= op.dst {
			copy(dst, s0)
		} else {
			for i := 0; i < nb; i += fp16.Bytes {
				fp16.Store(dst, i, fp16.Load(s0, i))
			}
		}
	case isa.VAdds:
		fp16.AddsSlice(dst, s0, op.scalar)
	case isa.VMuls:
		fp16.MulsSlice(dst, s0, op.scalar)
	case isa.VAdd:
		fp16.AddSlice(dst, s0, s1)
	case isa.VSub:
		fp16.SubSlice(dst, s0, s1)
	case isa.VMul:
		fp16.MulSlice(dst, s0, s1)
	case isa.VMax:
		fp16.MaxSlice(dst, s0, s1)
	case isa.VMin:
		fp16.MinSlice(dst, s0, s1)
	case isa.VCmpEq:
		fp16.CmpEqSlice(dst, s0, s1)
	default:
		return fmt.Errorf("unknown vector op %v", op.op)
	}
	return nil
}

// execFlatVecMasked runs one partially masked 16-lane block.
func (c *Core) execFlatVecMasked(op *flatOp) error {
	const nb = isa.ElemsPerBlock * fp16.Bytes
	dst := c.Mem.Mem(op.dBuf)
	if err := flatBounds(op.dst, nb, len(dst)); err != nil {
		return err
	}
	var s0, s1 []byte
	if op.op.IsUnary() || op.op.IsBinary() {
		s0 = c.Mem.Mem(op.sBuf)
		if err := flatBounds(op.src, nb, len(s0)); err != nil {
			return err
		}
	}
	if op.op.IsBinary() {
		s1 = c.Mem.Mem(op.s1Buf)
		if err := flatBounds(op.src1, nb, len(s1)); err != nil {
			return err
		}
	}
	for e := 0; e < isa.ElemsPerBlock; e++ {
		if op.msk16>>uint(e)&1 == 0 {
			continue
		}
		var out fp16.Float16
		switch op.op {
		case isa.VDup:
			out = op.scalar
		case isa.VCopy:
			out = fp16.Load(s0, op.src+e*fp16.Bytes)
		case isa.VAdds:
			out = fp16.Add(fp16.Load(s0, op.src+e*fp16.Bytes), op.scalar)
		case isa.VMuls:
			out = fp16.Mul(fp16.Load(s0, op.src+e*fp16.Bytes), op.scalar)
		default:
			a := fp16.Load(s0, op.src+e*fp16.Bytes)
			b := fp16.Load(s1, op.src1+e*fp16.Bytes)
			switch op.op {
			case isa.VAdd:
				out = fp16.Add(a, b)
			case isa.VSub:
				out = fp16.Sub(a, b)
			case isa.VMul:
				out = fp16.Mul(a, b)
			case isa.VMax:
				out = fp16.Max(a, b)
			case isa.VMin:
				out = fp16.Min(a, b)
			case isa.VCmpEq:
				if fp16.Equal(a, b) {
					out = fp16.One
				} else {
					out = fp16.Zero
				}
			default:
				return fmt.Errorf("unknown vector op %v", op.op)
			}
		}
		fp16.Store(dst, op.dst+e*fp16.Bytes, out)
	}
	return nil
}
