package aicore

import (
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

// TestStrictRejectsMissingFlags: under explicit semantics, strict mode
// turns the missing-flag race into a deterministic pre-execution error,
// instead of depending on the dynamic schedule to expose it.
func TestStrictRejectsMissingFlags(t *testing.T) {
	c := New(buffer.Config{}, nil)
	c.Strict = true
	p, _, _ := buildChain(c)
	_, err := c.RunExplicit(p)
	if err == nil || !strings.Contains(err.Error(), "strict lint") {
		t.Fatalf("strict RunExplicit = %v, want a strict lint error", err)
	}
}

// TestStrictAcceptsSyncedProgram: strict mode must not reject a correctly
// synchronized kernel in either execution mode.
func TestStrictAcceptsSyncedProgram(t *testing.T) {
	c := New(buffer.Config{}, nil)
	c.Strict = true
	p, _, _ := buildChain(c)
	if _, err := c.RunExplicit(cce.AutoSync(p)); err != nil {
		t.Fatalf("strict RunExplicit rejected a synced chain: %v", err)
	}
	c2 := New(buffer.Config{}, nil)
	c2.Strict = true
	p2, _, _ := buildChain(c2)
	if _, err := c2.Run(p2); err != nil {
		t.Fatalf("strict Run rejected the raw chain: %v", err)
	}
}

// TestStrictRejectsOutOfBounds: an operand past the UB capacity is a
// bounds error in strict mode; without strict mode the simulator's own
// slice bounds would panic deep in execution instead.
func TestStrictRejectsOutOfBounds(t *testing.T) {
	c := New(buffer.Config{UBSize: 4096}, nil)
	c.Strict = true
	p := cce.New("oob")
	p.EmitCopy(isa.GM, 0, isa.UB, 4096-64, 256)
	_, err := c.Run(p)
	if err == nil || !strings.Contains(err.Error(), "strict lint") {
		t.Fatalf("strict Run = %v, want a strict lint error", err)
	}
}

// TestStrictUsesConfiguredCapacities: the same program is legal on a core
// with the default 256 KiB UB.
func TestStrictUsesConfiguredCapacities(t *testing.T) {
	c := New(buffer.Config{}, nil)
	c.Strict = true
	p := cce.New("fits")
	p.EmitCopy(isa.GM, 0, isa.UB, 4096-64, 256)
	p.EmitCopy(isa.UB, 4096-64, isa.GM, 4096, 256)
	if _, err := c.Run(p); err != nil {
		t.Fatalf("strict Run rejected an in-bounds program: %v", err)
	}
}

// TestOnProgramObservesRuns: the capture hook sees every program handed to
// both entry points.
func TestOnProgramObservesRuns(t *testing.T) {
	c := New(buffer.Config{}, nil)
	var seen []string
	c.OnProgram = func(p *cce.Program) { seen = append(seen, p.Name) }
	p, _, _ := buildChain(c)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunExplicit(cce.AutoSync(p)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "chain" || seen[1] != "chain+sync" {
		t.Errorf("OnProgram saw %v, want [chain chain+sync]", seen)
	}
}
