package aicore

import (
	"math/rand"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/scu"
	"davinci/internal/tensor"
)

func newCore() *Core { return New(buffer.Config{}, nil) }

func placeUB(t *testing.T, c *Core, x *tensor.Tensor) int {
	t.Helper()
	addr, err := c.Mem.PlaceTensor(isa.UB, x)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestElementwiseAdd(t *testing.T) {
	c := newCore()
	rng := rand.New(rand.NewSource(1))
	n := 1000 * 16 // block aligned, exercises full repeats + tail
	a := tensor.New(n)
	b := tensor.New(n)
	a.FillRandom(rng, 4)
	b.FillRandom(rng, 4)
	aAddr := placeUB(t, c, a)
	bAddr := placeUB(t, c, b)
	dAddr := c.Mem.Space(isa.UB).MustAlloc(n * fp16.Bytes)

	p := cce.New("add")
	p.EmitElementwise(isa.VAdd, isa.UB, dAddr, aAddr, bAddr, n)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	got := c.Mem.ReadTensor(isa.UB, dAddr, n)
	for i := 0; i < n; i++ {
		want := fp16.Add(a.AtFlat(i), b.AtFlat(i))
		if got.AtFlat(i) != want {
			t.Fatalf("elem %d = %#04x, want %#04x", i, got.AtFlat(i), want)
		}
	}
}

func TestVecOpsSemantics(t *testing.T) {
	ops := []struct {
		op   isa.VecOp
		want func(a, b fp16.Float16) fp16.Float16
	}{
		{isa.VAdd, fp16.Add},
		{isa.VSub, fp16.Sub},
		{isa.VMul, fp16.Mul},
		{isa.VMax, fp16.Max},
		{isa.VMin, fp16.Min},
		{isa.VCmpEq, func(a, b fp16.Float16) fp16.Float16 {
			if fp16.Equal(a, b) {
				return fp16.One
			}
			return fp16.Zero
		}},
	}
	rng := rand.New(rand.NewSource(2))
	for _, tc := range ops {
		c := newCore()
		a, b := tensor.New(128), tensor.New(128)
		for i := 0; i < 128; i++ { // small ints so VCmpEq hits equality
			a.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
			b.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4))))
		}
		aAddr := placeUB(t, c, a)
		bAddr := placeUB(t, c, b)
		dAddr := c.Mem.Space(isa.UB).MustAlloc(256)
		p := cce.New("op")
		p.EmitVec(tc.op, isa.Contig(isa.UB, dAddr), isa.Contig(isa.UB, aAddr), isa.Contig(isa.UB, bAddr), 0, isa.FullMask(), 1)
		if _, err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		got := c.Mem.ReadTensor(isa.UB, dAddr, 128)
		for i := 0; i < 128; i++ {
			if want := tc.want(a.AtFlat(i), b.AtFlat(i)); got.AtFlat(i) != want {
				t.Fatalf("%v elem %d = %#04x, want %#04x", tc.op, i, got.AtFlat(i), want)
			}
		}
	}
}

func TestScalarOpsAndDup(t *testing.T) {
	c := newCore()
	a := tensor.New(128)
	a.FillSeq()
	aAddr := placeUB(t, c, a)
	d1 := c.Mem.Space(isa.UB).MustAlloc(256)
	d2 := c.Mem.Space(isa.UB).MustAlloc(256)
	d3 := c.Mem.Space(isa.UB).MustAlloc(256)
	p := cce.New("scalar")
	p.EmitElementwiseScalar(isa.VAdds, isa.UB, d1, aAddr, 0, 128, fp16.FromFloat32(10))
	p.EmitElementwiseScalar(isa.VMuls, isa.UB, d2, aAddr, 0, 128, fp16.FromFloat32(0.5))
	p.EmitDup(isa.UB, d3, 128, fp16.FromFloat32(-3))
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got := c.Mem.ReadTensor(isa.UB, d1, 128).AtFlat(i).Float32(); got != float32(i+10) {
			t.Fatalf("vadds[%d] = %v", i, got)
		}
		if got := c.Mem.ReadTensor(isa.UB, d2, 128).AtFlat(i).Float32(); got != float32(i)/2 {
			t.Fatalf("vmuls[%d] = %v", i, got)
		}
		if got := c.Mem.ReadTensor(isa.UB, d3, 128).AtFlat(i).Float32(); got != -3 {
			t.Fatalf("dup[%d] = %v", i, got)
		}
	}
}

func TestMaskedLanesUntouched(t *testing.T) {
	c := newCore()
	a := tensor.New(128)
	a.Fill(fp16.One)
	aAddr := placeUB(t, c, a)
	d := c.Mem.Space(isa.UB).MustAlloc(256)
	c.Mem.FillRange(isa.UB, d, 128, fp16.FromFloat32(7))
	p := cce.New("mask")
	p.EmitVec(isa.VCopy, isa.Contig(isa.UB, d), isa.Contig(isa.UB, aAddr), isa.Operand{}, 0, isa.MaskFirstN(16), 1)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	out := c.Mem.ReadTensor(isa.UB, d, 128)
	for i := 0; i < 128; i++ {
		want := float32(7)
		if i < 16 {
			want = 1
		}
		if got := out.AtFlat(i).Float32(); got != want {
			t.Fatalf("lane %d = %v, want %v", i, got, want)
		}
	}
}

// Reduction-style addressing: destination repeat stride 0 accumulates
// sequentially across repeats (the standard maxpool lowering relies on it).
func TestRepeatStrideZeroReduction(t *testing.T) {
	c := newCore()
	a := tensor.New(4 * 128)
	a.FillSeq()
	aAddr := placeUB(t, c, a)
	d := c.Mem.Space(isa.UB).MustAlloc(256)
	c.Mem.FillRange(isa.UB, d, 128, fp16.NegativeInfinity)
	p := cce.New("reduce")
	dst := isa.Operand{Buf: isa.UB, Addr: d, BlkStride: 1, RepStride: 0}
	p.EmitVec(isa.VMax, dst, isa.Contig(isa.UB, aAddr), dst, 0, isa.FullMask(), 4)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	out := c.Mem.ReadTensor(isa.UB, d, 128)
	for i := 0; i < 128; i++ {
		want := float32(3*128 + i) // max over the 4 repeats
		if got := out.AtFlat(i).Float32(); got != want {
			t.Fatalf("lane %d = %v, want %v", i, got, want)
		}
	}
}

// EmitVec must split repeats beyond the cap and still compute the same
// result as one logical long instruction.
func TestEmitVecSplitEquivalence(t *testing.T) {
	c := newCore()
	n := 300 * 128 // 300 repeats > MaxRepeat
	a := tensor.New(n)
	rng := rand.New(rand.NewSource(5))
	a.FillRandom(rng, 2)
	aAddr := placeUB(t, c, a)
	d := c.Mem.Space(isa.UB).MustAlloc(n * fp16.Bytes)
	p := cce.New("split")
	p.EmitVec(isa.VMuls, isa.Contig(isa.UB, d), isa.Contig(isa.UB, aAddr), isa.Operand{}, fp16.FromFloat32(2), isa.FullMask(), 300)
	if got := p.Len(); got != 2 {
		t.Fatalf("expected 2 instructions after split, got %d", got)
	}
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	out := c.Mem.ReadTensor(isa.UB, d, n)
	for i := 0; i < n; i++ {
		if want := fp16.Mul(a.AtFlat(i), fp16.FromFloat32(2)); out.AtFlat(i) != want {
			t.Fatalf("elem %d mismatch", i)
		}
	}
}

func TestCopyBursts(t *testing.T) {
	c := newCore()
	src := tensor.New(64)
	src.FillSeq()
	gmAddr, _ := c.Mem.PlaceTensor(isa.GM, src)
	ubAddr := c.Mem.Space(isa.UB).MustAlloc(128)
	p := cce.New("copy")
	// Copy rows 0 and 2 (16 elems each) of a 4x16 tensor, skipping rows.
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: gmAddr, DstBuf: isa.UB, DstAddr: ubAddr,
		NBurst: 2, BurstBytes: 32, SrcGap: 32})
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	out := c.Mem.ReadTensor(isa.UB, ubAddr, 32)
	for i := 0; i < 16; i++ {
		if got := out.AtFlat(i).Float32(); got != float32(i) {
			t.Fatalf("burst0[%d] = %v", i, got)
		}
		if got := out.AtFlat(16 + i).Float32(); got != float32(32+i) {
			t.Fatalf("burst1[%d] = %v", i, got)
		}
	}
}

// The instruction-level Im2Col must agree with the whole-tensor transform
// specification in internal/scu across strides, kernels and padding.
func TestIm2ColMatchesSpec(t *testing.T) {
	cases := []isa.ConvParams{
		{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2},                              // Fig. 5
		{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2},                            // overlap
		{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 1, Sw: 1},                              // max overlap
		{Ih: 9, Iw: 9, Kh: 3, Kw: 3, Sh: 3, Sw: 3},                              // no overlap
		{Ih: 7, Iw: 7, Kh: 3, Kw: 3, Sh: 2, Sw: 2, Pt: 1, Pb: 1, Pl: 1, Pr: 1},  // padding
		{Ih: 5, Iw: 11, Kh: 2, Kw: 4, Sh: 1, Sw: 3, Pt: 0, Pb: 1, Pl: 2, Pr: 0}, // asymmetric
	}
	for _, cp := range cases {
		for _, c1Len := range []int{1, 2} {
			c := newCore()
			rng := rand.New(rand.NewSource(9))
			in := tensor.New(1, c1Len, cp.Ih, cp.Iw, tensor.C0)
			in.FillRandom(rng, 4)
			l1Addr, err := c.Mem.PlaceTensor(isa.L1, in)
			if err != nil {
				t.Fatal(err)
			}
			outBytes := c1Len * cp.Kh * cp.Kw * cp.PaddedPatches() * tensor.C0 * fp16.Bytes
			ubAddr := c.Mem.Space(isa.UB).MustAlloc(outBytes)
			p := cce.New("im2col")
			p.EmitIm2Col(l1Addr, isa.UB, ubAddr, cp, c1Len)
			if _, err := c.Run(p); err != nil {
				t.Fatalf("%+v: %v", cp, err)
			}
			got := c.Mem.ReadTensor(isa.UB, ubAddr, 1, c1Len, cp.Kh, cp.Kw, cp.PaddedPatches(), tensor.C0)
			want := scu.Im2col(in, cp)
			if tensor.MaxAbsDiff(got, want) != 0 {
				t.Errorf("params %+v c1=%d: instruction-level im2col diverges from spec", cp, c1Len)
			}
		}
	}
}

// The instruction-level Col2Im must agree with the whole-tensor transform.
func TestCol2ImMatchesSpec(t *testing.T) {
	cases := []isa.ConvParams{
		{Ih: 8, Iw: 8, Kh: 2, Kw: 2, Sh: 2, Sw: 2},
		{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2},
		{Ih: 7, Iw: 7, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1},
	}
	for _, cp := range cases {
		for _, c1Len := range []int{1, 2} {
			c := newCore()
			rng := rand.New(rand.NewSource(11))
			cols := tensor.New(1, c1Len, cp.Kh, cp.Kw, cp.PaddedPatches(), tensor.C0)
			for i := 0; i < cols.Len(); i++ {
				cols.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(5))))
			}
			srcAddr, err := c.Mem.PlaceTensor(isa.UB, cols)
			if err != nil {
				t.Fatal(err)
			}
			dstBytes := c1Len * cp.Ih * cp.Iw * tensor.C0 * fp16.Bytes
			dstAddr := c.Mem.Space(isa.UB).MustAlloc(dstBytes)
			p := cce.New("col2im")
			p.EmitDup(isa.UB, dstAddr, dstBytes/fp16.Bytes, fp16.Zero)
			p.EmitCol2Im(srcAddr, dstAddr, cp, c1Len)
			if _, err := c.Run(p); err != nil {
				t.Fatalf("%+v: %v", cp, err)
			}
			got := c.Mem.ReadTensor(isa.UB, dstAddr, 1, c1Len, cp.Ih, cp.Iw, tensor.C0)
			want := scu.Col2im(cols, cp, cp.Ih, cp.Iw)
			if tensor.MaxAbsDiff(got, want) != 0 {
				t.Errorf("params %+v c1=%d: instruction-level col2im diverges from spec", cp, c1Len)
			}
		}
	}
}

func TestMmadMatchesNaive(t *testing.T) {
	c := newCore()
	rng := rand.New(rand.NewSource(13))
	M, K, N := 2, 3, 2 // in fractals
	rows, inner, cols := M*16, K*16, N*16
	// Build plain row-major matrices, convert to fractal tiling.
	a := tensor.New(rows, inner)
	b := tensor.New(inner, cols)
	a.FillRandom(rng, 1)
	b.FillRandom(rng, 1)

	aFrac := tensor.New(M, K, 16, 16)
	bFrac := tensor.New(K, N, 16, 16)
	for i := 0; i < rows; i++ {
		for j := 0; j < inner; j++ {
			aFrac.Set(a.At(i, j), i/16, j/16, i%16, j%16)
		}
	}
	for i := 0; i < inner; i++ {
		for j := 0; j < cols; j++ {
			bFrac.Set(b.At(i, j), i/16, j/16, i%16, j%16)
		}
	}
	aAddr, _ := c.Mem.PlaceTensor(isa.L0A, aFrac)
	bAddr, _ := c.Mem.PlaceTensor(isa.L0B, bFrac)
	cAddr := c.Mem.Space(isa.L0C).MustAlloc(M * N * 256 * 4)
	ubAddr := c.Mem.Space(isa.UB).MustAlloc(M * N * 256 * 2)

	p := cce.New("mmad")
	p.Emit(&isa.MmadInstr{AAddr: aAddr, BAddr: bAddr, CAddr: cAddr, M: M, K: K, N: N})
	p.Emit(&isa.ConvCopyInstr{SrcAddr: cAddr, DstAddr: ubAddr, Elems: M * N * 256})
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	out := c.Mem.ReadTensor(isa.UB, ubAddr, M, N, 16, 16)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var want float32
			for k := 0; k < inner; k++ {
				want += a.At(i, k).Float32() * b.At(k, j).Float32()
			}
			got := out.At(i/16, j/16, i%16, j%16).Float32()
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			// One final rounding to fp16 on the fp32 accumulator.
			if diff > 0.05 {
				t.Fatalf("C[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestCapacityViolationReported(t *testing.T) {
	c := newCore()
	p := cce.New("overflow")
	p.EmitCopy(isa.GM, 0, isa.UB, buffer.DefaultUBSize-16, 64)
	if _, err := c.Run(p); err == nil {
		t.Fatal("write past UB capacity not reported")
	}
}

func TestHazardTiming(t *testing.T) {
	cm := isa.DefaultCostModel()
	// Two independent instructions on different pipes overlap...
	c := newCore()
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	b := ub.MustAlloc(4096)
	d := ub.MustAlloc(4096)
	p := cce.New("overlap")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)                                                                 // MTE2
	p.EmitVec(isa.VDup, isa.Contig(isa.UB, b), isa.Operand{}, isa.Operand{}, fp16.One, isa.FullMask(), 16) // VEC, independent
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	copyCost := (&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, NBurst: 1, BurstBytes: 4096}).Cycles(cm)
	dupCost := cm.VecIssue + 16*cm.VecPerRepeat
	if st.Cycles != max64(copyCost, dupCost) {
		t.Errorf("independent ops: cycles = %d, want %d", st.Cycles, max64(copyCost, dupCost))
	}

	// ...but a RAW dependency serializes them.
	c2 := newCore()
	ub2 := c2.Mem.Space(isa.UB)
	a2 := ub2.MustAlloc(4096)
	d2 := ub2.MustAlloc(4096)
	p2 := cce.New("raw")
	p2.EmitCopy(isa.GM, 0, isa.UB, a2, 4096)
	p2.EmitVec(isa.VCopy, isa.Contig(isa.UB, d2), isa.Contig(isa.UB, a2), isa.Operand{}, 0, isa.FullMask(), 16)
	st2, err := c2.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cycles != copyCost+dupCost {
		t.Errorf("RAW chain: cycles = %d, want %d", st2.Cycles, copyCost+dupCost)
	}
	_ = d
}

func TestSerializeModeNeverFaster(t *testing.T) {
	build := func() (*Core, *cce.Program) {
		c := newCore()
		ub := c.Mem.Space(isa.UB)
		p := cce.New("mix")
		for i := 0; i < 20; i++ {
			addr := ub.MustAlloc(2048)
			p.EmitCopy(isa.GM, i*2048, isa.UB, addr, 2048)
			p.EmitDup(isa.UB, addr, 1024, fp16.One)
		}
		return c, p
	}
	c1, p1 := build()
	st1, err := c1.Run(p1)
	if err != nil {
		t.Fatal(err)
	}
	c2, p2 := build()
	c2.Serialize = true
	st2, err := c2.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cycles < st1.Cycles {
		t.Errorf("serialized (%d) faster than overlapped (%d)", st2.Cycles, st1.Cycles)
	}
	if st1.Instrs != st2.Instrs {
		t.Error("instruction counts differ between modes")
	}
}

func TestBarrierSerializes(t *testing.T) {
	c := newCore()
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	b := ub.MustAlloc(4096)
	p := cce.New("barrier")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitBarrier()
	p.EmitDup(isa.UB, b, 1024, fp16.One)
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cm := isa.DefaultCostModel()
	copyCost := (&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, NBurst: 1, BurstBytes: 4096}).Cycles(cm)
	wantMin := copyCost + cm.Barrier + cm.VecIssue
	if st.Cycles < wantMin {
		t.Errorf("barrier did not serialize: %d < %d", st.Cycles, wantMin)
	}
}

func TestStatsAggregation(t *testing.T) {
	a := &Stats{Cycles: 100, Instrs: 5}
	b := &Stats{Cycles: 60, Instrs: 3}
	s := &Stats{}
	s.AddSerial(a)
	s.AddSerial(b)
	if s.Cycles != 160 || s.Instrs != 8 {
		t.Errorf("serial: %+v", s)
	}
	pp := &Stats{}
	pp.AddParallel(a)
	pp.AddParallel(b)
	if pp.Cycles != 100 || pp.Instrs != 8 {
		t.Errorf("parallel: %+v", pp)
	}
	if (&Stats{}).String() == "" {
		t.Error("empty stats string")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
