package aicore

import (
	"math/rand"
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/tensor"
)

// buildChain builds a program with a cross-pipe RAW chain:
// MTE2 load -> vector compute -> MTE3 store.
func buildChain(c *Core) (*cce.Program, int, int) {
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	d := ub.MustAlloc(4096)
	p := cce.New("chain")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitVec(isa.VMuls, isa.Contig(isa.UB, d), isa.Contig(isa.UB, a), isa.Operand{}, fp16.FromFloat32(2), isa.FullMask(), 16)
	p.EmitCopy(isa.UB, d, isa.GM, 65536, 4096)
	return p, a, d
}

func TestExplicitDetectsMissingFlags(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p, _, _ := buildChain(c)
	// No flags at all: the vector read races the MTE2 write.
	_, err := c.RunExplicit(p)
	if err == nil || !strings.Contains(err.Error(), "race") {
		t.Fatalf("expected race error, got %v", err)
	}
}

func TestAutoSyncMakesChainRaceFree(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p, _, _ := buildChain(c)
	synced := cce.AutoSync(p)
	if synced.Len() <= p.Len() {
		t.Fatalf("AutoSync inserted no flags (%d -> %d)", p.Len(), synced.Len())
	}
	st, err := c.RunExplicit(synced)
	if err != nil {
		t.Fatal(err)
	}
	// The explicit schedule must agree with the implicit scoreboard's
	// cycle count up to the flag costs.
	c2 := New(buffer.Config{}, nil)
	p2, _, _ := buildChain(c2)
	stImplicit, err := c2.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	flags := int64(synced.Len()-p.Len()) * c.Cost.Flag
	if st.Cycles < stImplicit.Cycles || st.Cycles > stImplicit.Cycles+flags+4 {
		t.Errorf("explicit %d vs implicit %d (+%d flag budget)", st.Cycles, stImplicit.Cycles, flags)
	}
}

// The explicit mode must produce identical functional results and pass the
// race detector on a real kernel-shaped program (an im2col maxpool tile).
func TestAutoSyncOnKernelProgram(t *testing.T) {
	cp := isa.ConvParams{Ih: 16, Iw: 16, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	build := func(c *Core) (*cce.Program, int, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(1))
		in := tensor.New(1, 1, 16, 16, tensor.C0)
		in.FillRandom(rng, 4)
		inGM, _ := c.Mem.PlaceTensor(isa.GM, in)
		l1, _ := c.Mem.Space(isa.L1).Alloc(in.Bytes())
		fracs := cp.Fractals()
		colUB := c.Mem.Space(isa.UB).MustAlloc(9 * fracs * isa.FractalBytes)
		outUB := c.Mem.Space(isa.UB).MustAlloc(fracs * isa.FractalBytes)
		outGM, _ := c.Mem.Space(isa.GM).Alloc(cp.Patches() * 32)

		p := cce.New("maxpool-tile")
		p.EmitCopy(isa.GM, inGM, isa.L1, l1, in.Bytes())
		p.EmitIm2ColRange(l1, isa.UB, colUB, cp, 1, 0, 0, fracs, 0, 0)
		p.EmitDup(isa.UB, outUB, fracs*16*16, fp16.NegativeInfinity)
		dst := isa.Contig(isa.UB, outUB)
		for s := 0; s < 9; s++ {
			src := isa.Contig(isa.UB, colUB+s*fracs*isa.FractalBytes)
			p.EmitVec(isa.VMax, dst, src, dst, 0, isa.FullMask(), fracs*2)
		}
		p.EmitCopy(isa.UB, outUB, isa.GM, outGM, cp.Patches()*32)
		return p, outGM, in
	}

	cRef := New(buffer.Config{}, nil)
	pRef, outRef, _ := build(cRef)
	if _, err := cRef.Run(pRef); err != nil {
		t.Fatal(err)
	}
	want := cRef.Mem.ReadTensor(isa.GM, outRef, cp.Patches(), tensor.C0)

	cEx := New(buffer.Config{}, nil)
	pEx, outEx, _ := build(cEx)
	st, err := cEx.RunExplicit(cce.AutoSync(pEx))
	if err != nil {
		t.Fatal(err)
	}
	got := cEx.Mem.ReadTensor(isa.GM, outEx, cp.Patches(), tensor.C0)
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Error("explicit-sync run diverges functionally")
	}
	if st.Cycles <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestExplicitDeadlockDetected(t *testing.T) {
	c := New(buffer.Config{}, nil)
	p := cce.New("deadlock")
	p.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	_, err := c.RunExplicit(p)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	bad := []isa.Instr{
		&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeVector, Event: 0},
		&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE2, Event: 16},
		&isa.WaitFlagInstr{SrcPipe: -1, DstPipe: isa.PipeMTE2, Event: 0},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad flag %d accepted", i)
		}
	}
	good := &isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 3}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if good.Pipe() != isa.PipeMTE2 {
		t.Error("set_flag issues on the source pipe")
	}
	w := &isa.WaitFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 3}
	if w.Pipe() != isa.PipeVector {
		t.Error("wait_flag issues on the destination pipe")
	}
}

// Independent work on two pipes must still overlap in explicit mode (flags
// only serialize what they connect).
func TestExplicitPreservesOverlap(t *testing.T) {
	c := New(buffer.Config{}, nil)
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(8192)
	b := ub.MustAlloc(8192)
	p := cce.New("independent")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 8192)                                                                 // MTE2
	p.EmitVec(isa.VDup, isa.Contig(isa.UB, b), isa.Operand{}, isa.Operand{}, fp16.One, isa.FullMask(), 32) // VEC
	st, err := c.RunExplicit(cce.AutoSync(p))
	if err != nil {
		t.Fatal(err)
	}
	cm := c.Cost
	copyCost := (&isa.CopyInstr{SrcBuf: isa.GM, DstBuf: isa.UB, NBurst: 1, BurstBytes: 8192}).Cycles(cm)
	if st.Cycles > copyCost+cm.Flag*2 {
		t.Errorf("independent work serialized: %d cycles vs copy %d", st.Cycles, copyCost)
	}
}
