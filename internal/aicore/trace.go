package aicore

import (
	"fmt"
	"io"

	"davinci/internal/isa"
)

// TraceEntry records one scheduled instruction.
type TraceEntry struct {
	Idx        int
	Pipe       isa.Pipe
	Start, End int64
	Text       string
}

// Trace collects the schedule of a run for visualization — the software
// counterpart of the per-unit hardware counters the paper reads (§VI).
// Attach one to Core.Trace before Run.
type Trace struct {
	Entries []TraceEntry
}

func (t *Trace) record(idx int, in isa.Instr, start, end int64) {
	t.Entries = append(t.Entries, TraceEntry{Idx: idx, Pipe: in.Pipe(), Start: start, End: end, Text: in.String()})
}

// Makespan returns the completion time of the last instruction.
func (t *Trace) Makespan() int64 {
	var m int64
	for _, e := range t.Entries {
		if e.End > m {
			m = e.End
		}
	}
	return m
}

// Utilization returns per-pipe busy fractions of the makespan.
func (t *Trace) Utilization() [isa.NumPipes]float64 {
	var busy [isa.NumPipes]int64
	for _, e := range t.Entries {
		busy[e.Pipe] += e.End - e.Start
	}
	var out [isa.NumPipes]float64
	if m := t.Makespan(); m > 0 {
		for p := range out {
			out[p] = float64(busy[p]) / float64(m)
		}
	}
	return out
}

// Gantt renders a character timeline per pipe: '#' for busy columns, '.'
// for idle, compressed to the given width.
func (t *Trace) Gantt(w io.Writer, width int) {
	if width < 8 {
		width = 8
	}
	m := t.Makespan()
	if m == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	util := t.Utilization()
	for p := isa.Pipe(0); p < isa.NumPipes; p++ {
		cols := make([]byte, width)
		for i := range cols {
			cols[i] = '.'
		}
		any := false
		for _, e := range t.Entries {
			if e.Pipe != p {
				continue
			}
			any = true
			lo := int(e.Start * int64(width) / m)
			hi := int((e.End*int64(width) + m - 1) / m)
			if hi > width {
				hi = width
			}
			if lo == hi && lo < width {
				hi = lo + 1
			}
			for i := lo; i < hi; i++ {
				cols[i] = '#'
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "%-6s |%s| %5.1f%%\n", p, cols, 100*util[p])
	}
	fmt.Fprintf(w, "%-6s  0%scycles %d\n", "", spaces(width-8), m)
}

func spaces(n int) string {
	if n < 1 {
		n = 1
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}
