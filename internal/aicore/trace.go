package aicore

import (
	"fmt"
	"io"

	"davinci/internal/isa"
)

// EntryKind distinguishes synchronization instructions in a trace, so
// exporters (internal/obs) can render flag edges and barrier joins without
// re-parsing instruction text.
type EntryKind uint8

const (
	// KindInstr is an ordinary instruction.
	KindInstr EntryKind = iota
	// KindSetFlag is a set_flag; Flag holds (src, dst, event).
	KindSetFlag
	// KindWaitFlag is a wait_flag; Flag holds (src, dst, event).
	KindWaitFlag
	// KindBarrier is a full pipe barrier.
	KindBarrier
)

// TraceEntry records one scheduled instruction.
type TraceEntry struct {
	Idx        int
	Pipe       isa.Pipe
	Start, End int64
	Text       string
	// Kind marks synchronization instructions (flags, barriers).
	Kind EntryKind
	// Flag is the (src pipe, dst pipe, event) triple for set/wait entries.
	Flag [3]int
	// Stall is the attributed reason this instruction waited, and the idle
	// gap it left on its pipe (see StallCause for the accounting identity).
	Stall Stall
}

// Trace collects the schedule of a run for visualization — the software
// counterpart of the per-unit hardware counters the paper reads (§VI).
// Attach one to Core.Trace before Run. A Trace accumulates entries across
// runs on the same core; call Reset between runs for one timeline per run
// (ops.Plan.Run does this automatically on tracing cores).
type Trace struct {
	Entries []TraceEntry
}

// Reset discards the recorded entries, keeping the backing capacity so a
// trace reused across replays of the same plan does not reallocate — and,
// more importantly, does not grow without bound.
func (t *Trace) Reset() { t.Entries = t.Entries[:0] }

// grow preallocates room for n more entries (one per instruction of the
// program about to be scheduled), so recording never reallocates mid-run.
func (t *Trace) grow(n int) {
	if free := cap(t.Entries) - len(t.Entries); free < n {
		entries := make([]TraceEntry, len(t.Entries), len(t.Entries)+n)
		copy(entries, t.Entries)
		t.Entries = entries
	}
}

func (t *Trace) record(idx int, in isa.Instr, start, end int64, stall Stall) {
	e := TraceEntry{Idx: idx, Pipe: in.Pipe(), Start: start, End: end, Text: in.String(), Stall: stall}
	switch v := in.(type) {
	case *isa.SetFlagInstr:
		e.Kind, e.Flag = KindSetFlag, [3]int{int(v.SrcPipe), int(v.DstPipe), v.Event}
	case *isa.WaitFlagInstr:
		e.Kind, e.Flag = KindWaitFlag, [3]int{int(v.SrcPipe), int(v.DstPipe), v.Event}
	case *isa.BarrierInstr:
		e.Kind = KindBarrier
	}
	t.Entries = append(t.Entries, e)
}

// Makespan returns the completion time of the last instruction.
func (t *Trace) Makespan() int64 {
	var m int64
	for _, e := range t.Entries {
		if e.End > m {
			m = e.End
		}
	}
	return m
}

// Utilization returns per-pipe busy fractions of the makespan.
func (t *Trace) Utilization() [isa.NumPipes]float64 {
	var busy [isa.NumPipes]int64
	for _, e := range t.Entries {
		busy[e.Pipe] += e.End - e.Start
	}
	var out [isa.NumPipes]float64
	if m := t.Makespan(); m > 0 {
		for p := range out {
			out[p] = float64(busy[p]) / float64(m)
		}
	}
	return out
}

// Gantt renders a character timeline per pipe: '#' for busy columns, '.'
// for idle, compressed to the given width.
func (t *Trace) Gantt(w io.Writer, width int) {
	if width < 8 {
		width = 8
	}
	m := t.Makespan()
	if m == 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	util := t.Utilization()
	for p := isa.Pipe(0); p < isa.NumPipes; p++ {
		cols := make([]byte, width)
		for i := range cols {
			cols[i] = '.'
		}
		any := false
		for _, e := range t.Entries {
			if e.Pipe != p {
				continue
			}
			any = true
			lo := int(e.Start * int64(width) / m)
			hi := int((e.End*int64(width) + m - 1) / m)
			// Clamp into [0, width): an entry starting at the makespan
			// boundary (Start == m, e.g. a zero-cost instruction after the
			// last busy cycle) rounds lo to width, which the hi clamp alone
			// would silently drop instead of rendering in the last column.
			if lo >= width {
				lo = width - 1
			}
			if hi > width {
				hi = width
			}
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi; i++ {
				cols[i] = '#'
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "%-6s |%s| %5.1f%%\n", p, cols, 100*util[p])
	}
	fmt.Fprintf(w, "%-6s  0%scycles %d\n", "", spaces(width-8), m)
}

func spaces(n int) string {
	if n < 1 {
		n = 1
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}
