package aicore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
)

// scalarVecModel is an independent interpretation of the vector
// instruction's addressing semantics, written as plainly as possible: it
// walks repeats, blocks and lanes and applies the op. The simulator's
// execVec must agree with it for arbitrary strides, masks and repeats.
func scalarVecModel(mem []byte, v *isa.VecInstr) {
	read := func(o isa.Operand, r, b, e int) fp16.Float16 {
		return fp16.Load(mem, o.Addr+(r*o.RepStride+b*o.BlkStride)*isa.BlockBytes+e*fp16.Bytes)
	}
	for r := 0; r < v.Repeat; r++ {
		for b := 0; b < isa.BlocksPerRepeat; b++ {
			for e := 0; e < isa.ElemsPerBlock; e++ {
				if !v.Mask.Bit(b*isa.ElemsPerBlock + e) {
					continue
				}
				var out fp16.Float16
				switch v.Op {
				case isa.VDup:
					out = v.Scalar
				case isa.VCopy:
					out = read(v.Src0, r, b, e)
				case isa.VAdds:
					out = fp16.Add(read(v.Src0, r, b, e), v.Scalar)
				case isa.VMuls:
					out = fp16.Mul(read(v.Src0, r, b, e), v.Scalar)
				case isa.VAdd:
					out = fp16.Add(read(v.Src0, r, b, e), read(v.Src1, r, b, e))
				case isa.VSub:
					out = fp16.Sub(read(v.Src0, r, b, e), read(v.Src1, r, b, e))
				case isa.VMul:
					out = fp16.Mul(read(v.Src0, r, b, e), read(v.Src1, r, b, e))
				case isa.VMax:
					out = fp16.Max(read(v.Src0, r, b, e), read(v.Src1, r, b, e))
				case isa.VMin:
					out = fp16.Min(read(v.Src0, r, b, e), read(v.Src1, r, b, e))
				case isa.VCmpEq:
					if fp16.Equal(read(v.Src0, r, b, e), read(v.Src1, r, b, e)) {
						out = fp16.One
					} else {
						out = fp16.Zero
					}
				}
				addr := v.Dst.Addr + (r*v.Dst.RepStride+b*v.Dst.BlkStride)*isa.BlockBytes + e*fp16.Bytes
				fp16.Store(mem, addr, out)
			}
		}
	}
}

// Property: execVec and the scalar model produce identical UB contents for
// random instructions (random ops, strides, masks, repeats, aliasing
// allowed within the same region family).
func TestQuickVecAddressing(t *testing.T) {
	const region = 64 << 10
	ops := []isa.VecOp{isa.VAdd, isa.VSub, isa.VMul, isa.VMax, isa.VMin, isa.VAdds, isa.VMuls, isa.VDup, isa.VCopy, isa.VCmpEq}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := ops[rng.Intn(len(ops))]
		repeat := rng.Intn(6) + 1

		randOperand := func() isa.Operand {
			// Keep spans inside the region: addr + (rep*RepStride +
			// 7*BlkStride + 1) * 32 <= region.
			blk := rng.Intn(4)  // 0..3
			rep := rng.Intn(12) // 0..11
			maxAddr := region - ((repeat-1)*rep+7*blk+1)*isa.BlockBytes
			return isa.Operand{
				Buf:       isa.UB,
				Addr:      rng.Intn(maxAddr/isa.BlockBytes) * isa.BlockBytes,
				BlkStride: blk,
				RepStride: rep,
			}
		}
		var mask isa.Mask
		mask[0], mask[1] = rng.Uint64(), rng.Uint64()
		v := &isa.VecInstr{
			Op:     op,
			Dst:    randOperand(),
			Src0:   randOperand(),
			Src1:   randOperand(),
			Scalar: fp16.FromFloat64(float64(rng.Intn(9)) - 4),
			Mask:   mask,
			Repeat: repeat,
		}

		// Two identical memories with random contents.
		core := New(buffer.Config{}, nil)
		ub := core.Mem.Mem(isa.UB)
		model := make([]byte, len(ub))
		for i := 0; i < region; i += 2 {
			h := fp16.FromFloat64(float64(rng.Intn(64)) - 32)
			fp16.Store(ub, i, h)
			fp16.Store(model, i, h)
		}
		core.Mem.Space(isa.UB).MustAlloc(region)

		p := cce.New("quick")
		p.Emit(v)
		if _, err := core.Run(p); err != nil {
			t.Logf("run failed: %v (%+v)", err, v)
			return false
		}
		scalarVecModel(model, v)
		for i := 0; i < region; i++ {
			if ub[i] != model[i] {
				t.Logf("byte %d differs for %+v", i, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
